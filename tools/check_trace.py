#!/usr/bin/env python3
"""Validate merged per-request trace files (and optionally the alert stream).

Checks, per trace file:
  * the file is valid JSON with an integer top-level "trace_id" > 0 and a
    "traceEvents" array (Chrome trace-event format, Perfetto-loadable);
  * thread_name metadata names every rank track ("rank 0".."rank R-1") and
    the "service" track when --expect-ranks is given;
  * every "X" (complete) event carries args.trace_id equal to the file's
    trace_id, a unique args.span_id, and an args.parent_span_id;
  * spans nest: a span whose parent is present in the file lies within its
    parent's [ts, ts + dur] interval (same-ring spans nest exactly; a small
    epsilon absorbs microsecond rounding in the export).

With --alerts, additionally validates the JSONL alert stream:
  * --expect-no-straggler: no straggler alert at all (clean-run smoke);
  * --expect-straggler-rank R: at least one straggler alert, every one of
    them blames rank R, and each carries a nonzero trace_id;
  * --max-straggler-per-trace N: at most N straggler alerts per trace_id.
    The detector fires once per rank per SOLVE, so pass 1 only when no job
    is resubmitted (a step-limited context alerts once per submission).

Usage:
  check_trace.py TRACE.json [TRACE2.json ...] [--expect-ranks R]
                 [--alerts ALERTS.jsonl]
                 [--expect-straggler-rank R | --expect-no-straggler]

Exits 0 when every check passes, 1 otherwise (each failure printed).
"""

import argparse
import json
import sys

NEST_EPS_US = 10.0  # microsecond-rounding allowance for containment


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def check_trace(path, expect_ranks, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, path, f"unreadable or invalid JSON: {e}")
        return

    trace_id = doc.get("trace_id")
    if not isinstance(trace_id, (int, float)) or int(trace_id) <= 0:
        fail(errors, path, f"missing or invalid top-level trace_id: {trace_id!r}")
        return
    trace_id = int(trace_id)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, path, "traceEvents missing or empty")
        return

    thread_names = {}
    spans = {}  # span_id -> (tid, start_us, end_us, name)
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "thread_name":
                thread_names[ev.get("tid")] = ev.get("args", {}).get("name")
            continue
        if ph != "X":
            fail(errors, path, f"event {i}: unexpected phase {ph!r}")
            continue
        args = ev.get("args", {})
        if int(args.get("trace_id", -1)) != trace_id:
            fail(errors, path,
                 f"event {i} ({ev.get('name')!r}): args.trace_id "
                 f"{args.get('trace_id')!r} != file trace_id {trace_id}")
        span_id = args.get("span_id")
        if not isinstance(span_id, (int, float)) or int(span_id) <= 0:
            fail(errors, path, f"event {i}: missing args.span_id")
            continue
        span_id = int(span_id)
        if "parent_span_id" not in args:
            fail(errors, path, f"event {i}: missing args.parent_span_id")
        if span_id in spans:
            fail(errors, path, f"duplicate span_id {span_id}")
            continue
        ts, dur = ev.get("ts"), ev.get("dur")
        if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)) or dur < 0:
            fail(errors, path, f"event {i}: bad ts/dur ({ts!r}, {dur!r})")
            continue
        spans[span_id] = (ev.get("tid"), float(ts), float(ts) + float(dur),
                          ev.get("name"), int(args.get("parent_span_id", 0)))

    if expect_ranks is not None:
        want = {f"rank {r}" for r in range(expect_ranks)} | {"service"}
        got = set(thread_names.values())
        if not want <= got:
            fail(errors, path, f"missing tracks: {sorted(want - got)} "
                 f"(have {sorted(got)})")

    for span_id, (_, start, end, name, parent) in spans.items():
        if parent == 0 or parent not in spans:
            continue  # root, or parent evicted from its ring
        _, pstart, pend, pname, _ = spans[parent]
        if start < pstart - NEST_EPS_US or end > pend + NEST_EPS_US:
            fail(errors, path,
                 f"span {span_id} ({name!r}, [{start:.1f}, {end:.1f}]us) "
                 f"escapes parent {parent} ({pname!r}, "
                 f"[{pstart:.1f}, {pend:.1f}]us)")

    if not spans:
        fail(errors, path, "no complete (ph=X) spans")


def check_alerts(path, expect_rank, expect_none, max_per_trace, errors):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail(errors, path, f"unreadable: {e}")
        return
    stragglers = []
    for i, line in enumerate(lines):
        try:
            alert = json.loads(line)
        except json.JSONDecodeError as e:
            fail(errors, path, f"line {i + 1}: invalid JSON: {e}")
            continue
        for key in ("family", "severity", "message", "trace_id", "rank",
                    "iteration", "value", "threshold"):
            if key not in alert:
                fail(errors, path, f"line {i + 1}: missing field {key!r}")
        if alert.get("family") == "straggler":
            stragglers.append(alert)

    if expect_none:
        if stragglers:
            fail(errors, path,
                 f"expected no straggler alerts, found {len(stragglers)}")
        return
    if expect_rank is None:
        return
    if not stragglers:
        fail(errors, path, "expected a straggler alert, found none")
        return
    per_trace = {}
    for alert in stragglers:
        if alert.get("rank") != expect_rank:
            fail(errors, path,
                 f"straggler alert blames rank {alert.get('rank')}, "
                 f"expected rank {expect_rank}")
        if not alert.get("trace_id"):
            fail(errors, path, "straggler alert carries no trace_id")
        per_trace[alert.get("trace_id")] = per_trace.get(
            alert.get("trace_id"), 0) + 1
    if max_per_trace is not None:
        for tid, count in per_trace.items():
            if count > max_per_trace:
                fail(errors, path,
                     f"{count} straggler alerts for trace {tid}, expected "
                     f"at most {max_per_trace}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", help="merged trace JSON files")
    ap.add_argument("--expect-ranks", type=int, default=None,
                    help="require rank 0..R-1 and service tracks")
    ap.add_argument("--alerts", default=None, help="JSONL alert stream")
    ap.add_argument("--expect-straggler-rank", type=int, default=None)
    ap.add_argument("--expect-no-straggler", action="store_true")
    ap.add_argument("--max-straggler-per-trace", type=int, default=None)
    args = ap.parse_args()

    errors = []
    for path in args.traces:
        check_trace(path, args.expect_ranks, errors)
    if args.alerts is not None:
        check_alerts(args.alerts, args.expect_straggler_rank,
                     args.expect_no_straggler, args.max_straggler_per_trace,
                     errors)

    if errors:
        for e in errors:
            print(f"FAIL {e}", file=sys.stderr)
        print(f"{len(errors)} check(s) failed", file=sys.stderr)
        return 1
    print(f"OK: {len(args.traces)} trace file(s)"
          + (" + alert stream" if args.alerts else "") + " validated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
