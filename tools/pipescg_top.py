#!/usr/bin/env python3
"""Live ops console for a running solver service.

Tails the Prometheus snapshot a MetricsSampler writes (--metrics-out /
--metrics-period-ms of examples/solver_service, or any Session wired with
set_observability) together with the JSONL alert stream (--alerts-out), and
renders a one-screen summary: queue depth, solve/expiry counters, the
straggler gauge, per-family alert totals, and the most recent alerts.

Plain ANSI repaint, stdlib only -- works over ssh, inside tmux, and in CI
logs (--once prints a single frame and exits, for smoke tests).

Usage:
  pipescg_top.py --metrics metrics.prom [--alerts alerts.jsonl]
                 [--interval 1.0] [--once] [--tail 8]
"""

import argparse
import json
import os
import sys
import time


def unescape_label(value):
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append("\n" if nxt == "n" else nxt)
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def parse_prometheus(text):
    """-> {family: [(labels_dict, value)]}, honoring escaped label values."""
    series = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            labels_text, _, value_text = rest.rpartition("} ")
            labels = {}
            i = 0
            while i < len(labels_text):
                eq = labels_text.find('="', i)
                if eq < 0:
                    break
                key = labels_text[i:eq]
                j = eq + 2
                raw = []
                while j < len(labels_text) and labels_text[j] != '"':
                    if labels_text[j] == "\\" and j + 1 < len(labels_text):
                        raw.append(labels_text[j:j + 2])
                        j += 2
                    else:
                        raw.append(labels_text[j])
                        j += 1
                labels[key] = unescape_label("".join(raw))
                i = j + 2  # skip closing quote and comma
        else:
            parts = line.rsplit(" ", 1)
            if len(parts) != 2:
                continue
            name, value_text = parts
            labels = {}
        try:
            value = float(value_text)
        except ValueError:
            continue
        series.setdefault(name.strip(), []).append((labels, value))
    return series


def read_alerts(path):
    if not path or not os.path.exists(path):
        return []
    alerts = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                alerts.append(json.loads(line))
            except json.JSONDecodeError:
                pass
    return alerts


def first_value(series, family, default=None):
    values = series.get(family)
    if not values:
        return default
    return values[0][1]


def render(metrics_path, alerts_path, tail):
    lines = []
    lines.append(f"pipescg_top  {time.strftime('%H:%M:%S')}   "
                 f"metrics: {metrics_path or '-'}   alerts: {alerts_path or '-'}")
    lines.append("=" * 78)

    series = {}
    if metrics_path and os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as f:
            series = parse_prometheus(f.read())
    elif metrics_path:
        lines.append(f"(waiting for {metrics_path} ...)")

    if series:
        depth = first_value(series, "pipescg_live_queue_depth", 0)
        solves = first_value(series, "pipescg_live_solves_total", 0)
        expired = first_value(series, "pipescg_live_expired_total", 0)
        straggler = first_value(series, "pipescg_anomaly_straggler_rank", -1)
        lines.append(f"queue depth {int(depth):>4}   solves {int(solves):>6}   "
                     f"expired {int(expired):>4}   straggler rank "
                     f"{int(straggler) if straggler >= 0 else '-'}")
        totals = series.get("pipescg_anomaly_alerts_total", [])
        if totals:
            counts = "   ".join(
                f"{labels.get('family', '?')}={int(v)}"
                for labels, v in sorted(totals,
                                        key=lambda s: s[0].get("family", "")))
            lines.append(f"alert totals: {counts}")
        p95 = None
        for labels, v in series.get(
                "pipescg_session_solve_latency_seconds", []):
            if labels.get("quantile") == "0.95":
                p95 = v
        if p95 is not None:
            lines.append(f"solve latency p95: {1e3 * p95:.2f} ms")

    alerts = read_alerts(alerts_path)
    if alerts_path:
        lines.append("-" * 78)
        lines.append(f"alerts ({len(alerts)} total, last {min(tail, len(alerts))}):")
        for alert in alerts[-tail:]:
            scope = f"rank {alert.get('rank')}" if alert.get("rank", -1) >= 0 \
                else f"trace {alert.get('trace_id')}"
            lines.append(f"  [{alert.get('severity', '?'):>8}] "
                         f"{alert.get('family', '?'):<18} {scope:<10} "
                         f"{alert.get('message', '')[:40]}")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--metrics", default=None, help=".prom snapshot to tail")
    ap.add_argument("--alerts", default=None, help="JSONL alert stream to tail")
    ap.add_argument("--interval", type=float, default=1.0,
                    help="refresh period in seconds")
    ap.add_argument("--once", action="store_true",
                    help="print one frame and exit (no repaint)")
    ap.add_argument("--tail", type=int, default=8,
                    help="recent alerts to show")
    args = ap.parse_args()
    if not args.metrics and not args.alerts:
        ap.error("nothing to watch: pass --metrics and/or --alerts")

    if args.once:
        print(render(args.metrics, args.alerts, args.tail))
        return 0
    try:
        while True:
            frame = render(args.metrics, args.alerts, args.tail)
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
