#!/usr/bin/env python3
"""Diff two JSON reports (bench BENCH_*.json or obs solve reports) key by key.

Usage: tools/diff_reports.py baseline.json candidate.json
           [--threshold 0.05] [--ignore REGEX] [--list-all]

Both files are flattened to dotted key paths (arrays index as [i]).  For
each key present in both files the relative delta is computed as

    |candidate - baseline| / max(|baseline|, |candidate|, eps)

for numbers, and exact equality for strings/booleans.  Keys whose path
matches --ignore (a regular expression, searched anywhere in the path) are
skipped.  Keys present in only one file are reported as ADDED/REMOVED and
count as failures, since the reports are designed to be key-stable.

Exits 0 when every compared key is within --threshold, 1 otherwise --
suitable as a CI gate against a checked-in baseline.  Absolute wall-clock
seconds never appear in BENCH_*.json (only modeled seconds and iteration
counts), so a small threshold absorbs cross-machine libm drift without
masking real regressions.
"""

import argparse
import json
import re
import sys

EPS = 1e-300


def flatten(value, prefix="", out=None):
    """Flatten nested dicts/lists into {dotted.path[i]: leaf} pairs."""
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key, child in value.items():
            flatten(child, f"{prefix}.{key}" if prefix else key, out)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            flatten(child, f"{prefix}[{i}]", out)
    else:
        out[prefix] = value
    return out


def relative_delta(a, b):
    if a == b:
        return 0.0
    return abs(b - a) / max(abs(a), abs(b), EPS)


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two JSON reports with a relative-delta gate")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max relative delta per numeric key "
                             "(default: 0.05)")
    parser.add_argument("--ignore", default="",
                        help="regex of key paths to skip (searched)")
    parser.add_argument("--list-all", action="store_true",
                        help="print every compared key, not just failures")
    args = parser.parse_args(argv[1:])

    with open(args.baseline, encoding="utf-8") as f:
        base = flatten(json.load(f))
    with open(args.candidate, encoding="utf-8") as f:
        cand = flatten(json.load(f))

    ignore = re.compile(args.ignore) if args.ignore else None

    def skipped(path):
        return ignore is not None and ignore.search(path)

    failures = 0
    compared = 0
    for path in sorted(set(base) | set(cand)):
        if skipped(path):
            continue
        if path not in cand:
            print(f"REMOVED {path} (baseline: {base[path]!r})")
            failures += 1
            continue
        if path not in base:
            print(f"ADDED   {path} (candidate: {cand[path]!r})")
            failures += 1
            continue
        a, b = base[path], cand[path]
        compared += 1
        numeric = (isinstance(a, (int, float)) and not isinstance(a, bool)
                   and isinstance(b, (int, float)) and not isinstance(b, bool))
        if numeric:
            delta = relative_delta(a, b)
            ok = delta <= args.threshold
            if not ok or args.list_all:
                print(f"{'ok    ' if ok else 'DELTA '} {path}: "
                      f"{a!r} -> {b!r} (rel {delta:.3g})")
            failures += 0 if ok else 1
        else:
            ok = a == b
            if not ok or args.list_all:
                print(f"{'ok    ' if ok else 'DIFF  '} {path}: {a!r} -> {b!r}")
            failures += 0 if ok else 1

    print(f"compared {compared} key(s), {failures} past threshold "
          f"{args.threshold}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
