#!/usr/bin/env python3
"""Diff two JSON reports (bench BENCH_*.json or obs solve reports) key by key.

Usage: tools/diff_reports.py baseline.json candidate.json
           [--threshold 0.05] [--class REGEX=THRESHOLD ...]
           [--ignore REGEX] [--list-all]

Both files are flattened to dotted key paths (arrays index as [i]).  For
each key present in both files the relative delta is computed as

    |candidate - baseline| / max(|baseline|, |candidate|, eps)

for numbers, and exact equality for strings/booleans.  Keys whose path
matches --ignore (a regular expression, searched anywhere in the path) are
skipped.  Keys present in only one file are reported as ADDED/REMOVED and
count as failures, since the reports are designed to be key-stable.

Per-key-class tolerances: each --class REGEX=THRESHOLD pairs a path regex
(searched anywhere in the dotted path) with its own relative threshold;
the FIRST matching --class wins, and keys matching no class fall back to
--threshold.  This lets CI hold exact quantities (iteration counts,
ratios) tight while giving modeled absolute seconds more slack:

    tools/diff_reports.py base.json cand.json --threshold 0.05 \\
        --class 'iterations|converged=0.0' \\
        --class 'ratios\\.=0.02' \\
        --class 'modeled_seconds|_seconds=0.10'

Exits 0 when every compared key is within its threshold, 1 otherwise --
suitable as a CI hard gate against a checked-in baseline.  Absolute
wall-clock seconds never appear in BENCH_*.json (only modeled seconds and
iteration counts), so small thresholds absorb cross-machine libm drift
without masking real regressions.
"""

import argparse
import json
import re
import sys

EPS = 1e-300


def flatten(value, prefix="", out=None):
    """Flatten nested dicts/lists into {dotted.path[i]: leaf} pairs."""
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key, child in value.items():
            flatten(child, f"{prefix}.{key}" if prefix else key, out)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            flatten(child, f"{prefix}[{i}]", out)
    else:
        out[prefix] = value
    return out


def relative_delta(a, b):
    if a == b:
        return 0.0
    return abs(b - a) / max(abs(a), abs(b), EPS)


def main(argv):
    parser = argparse.ArgumentParser(
        description="diff two JSON reports with a relative-delta gate")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max relative delta per numeric key "
                             "(default: 0.05)")
    parser.add_argument("--class", dest="classes", action="append",
                        default=[], metavar="REGEX=THRESHOLD",
                        help="per-key-class tolerance; repeatable, first "
                             "matching regex wins, others fall back to "
                             "--threshold")
    parser.add_argument("--abs-floor", type=float, default=1e-12,
                        help="values with |x| below this on both sides "
                             "compare equal; keeps catastrophic-cancellation "
                             "noise (1e-19 vs 0.0) from tripping the "
                             "relative gate (default: %(default)g)")
    parser.add_argument("--ignore", default="",
                        help="regex of key paths to skip (searched)")
    parser.add_argument("--list-all", action="store_true",
                        help="print every compared key, not just failures")
    args = parser.parse_args(argv[1:])

    with open(args.baseline, encoding="utf-8") as f:
        base = flatten(json.load(f))
    with open(args.candidate, encoding="utf-8") as f:
        cand = flatten(json.load(f))

    ignore = re.compile(args.ignore) if args.ignore else None

    classes = []
    for spec in args.classes:
        regex, sep, value = spec.rpartition("=")
        if not sep or not regex:
            parser.error(f"--class needs REGEX=THRESHOLD, got {spec!r}")
        classes.append((re.compile(regex), float(value)))

    def threshold_for(path):
        for regex, value in classes:
            if regex.search(path):
                return value
        return args.threshold

    def skipped(path):
        return ignore is not None and ignore.search(path)

    failures = 0
    compared = 0
    for path in sorted(set(base) | set(cand)):
        if skipped(path):
            continue
        if path not in cand:
            print(f"REMOVED {path} (baseline: {base[path]!r})")
            failures += 1
            continue
        if path not in base:
            print(f"ADDED   {path} (candidate: {cand[path]!r})")
            failures += 1
            continue
        a, b = base[path], cand[path]
        compared += 1
        numeric = (isinstance(a, (int, float)) and not isinstance(a, bool)
                   and isinstance(b, (int, float)) and not isinstance(b, bool))
        if numeric:
            if abs(a) < args.abs_floor and abs(b) < args.abs_floor:
                delta = 0.0
            else:
                delta = relative_delta(a, b)
            limit = threshold_for(path)
            ok = delta <= limit
            if not ok or args.list_all:
                print(f"{'ok    ' if ok else 'DELTA '} {path}: "
                      f"{a!r} -> {b!r} (rel {delta:.3g}, limit {limit:g})")
            failures += 0 if ok else 1
        else:
            ok = a == b
            if not ok or args.list_all:
                print(f"{'ok    ' if ok else 'DIFF  '} {path}: {a!r} -> {b!r}")
            failures += 0 if ok else 1

    print(f"compared {compared} key(s), {failures} past threshold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
