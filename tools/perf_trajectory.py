#!/usr/bin/env python3
"""Maintain the in-repo perf-trajectory history under bench/trajectory/.

Every bench-smoke CI run produces a wall-clock-free BENCH_<name>.json
(modeled seconds, iteration counts, ratio baselines).  This tool distills
each such file into one compact JSONL record and appends it to
bench/trajectory/<name>.jsonl, so the repository itself carries the
perf trajectory: `git log -p bench/trajectory/` shows exactly when an
iteration count, overlap efficiency, or kernel-trade ratio moved, and by
how much.

Usage:
    tools/perf_trajectory.py append BENCH_fig1.json [--dir bench/trajectory]
        [--commit SHA]
    tools/perf_trajectory.py show bench/trajectory/fig1.jsonl [--last N]

append  distill the bench JSON and append one record (commit defaults to
        GITHUB_SHA, then `git rev-parse --short HEAD`, then "local").
        Identical consecutive records are still appended -- the history is
        append-only and the commit field disambiguates.
show    print the history as a table: one row per record, one column per
        tracked scalar, so drift is visible without plotting.

The record keeps only trajectory-worthy scalars (per-method iterations and
overlap efficiency, the ratio baselines, speedup at the largest modeled
node count); no timestamps and no absolute wall-clock numbers, matching
the determinism contract of the rest of the observability surface.
"""

import argparse
import json
import os
import subprocess
import sys


def resolve_commit(explicit):
    if explicit:
        return explicit
    sha = os.environ.get("GITHUB_SHA", "")
    if sha:
        return sha[:12]
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "local"


def distill(doc):
    """Compact trajectory record from one BENCH_<name>.json document."""
    record = {
        "bench": doc.get("bench", "unknown"),
        "ranks": doc.get("ranks"),
    }
    methods = {}
    for name, entry in sorted(doc.get("methods", {}).items()):
        overlap = entry.get("overlap", {})
        methods[name] = {
            "iterations": entry.get("iterations"),
            "converged": entry.get("converged"),
            "overlap_efficiency": overlap.get("overlap_efficiency"),
        }
    record["methods"] = methods

    ratios = doc.get("ratios", {})
    if ratios:
        record["ratios"] = ratios

    scaling = doc.get("scaling", {})
    nodes = scaling.get("nodes", [])
    if nodes:
        record["max_nodes"] = nodes[-1]
        record["speedup_at_max_nodes"] = {
            m: curve[-1]
            for m, curve in sorted(scaling.get("speedup", {}).items())
            if curve
        }
    return record


def cmd_append(args):
    with open(args.bench_json, encoding="utf-8") as f:
        doc = json.load(f)
    record = distill(doc)
    record["commit"] = resolve_commit(args.commit)

    os.makedirs(args.dir, exist_ok=True)
    path = os.path.join(args.dir, f"{record['bench']}.jsonl")
    with open(path, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"appended {record['bench']} @ {record['commit']} to {path}")
    return 0


def cmd_show(args):
    with open(args.trajectory, encoding="utf-8") as f:
        records = [json.loads(line) for line in f if line.strip()]
    if args.last:
        records = records[-args.last:]
    if not records:
        print("no records")
        return 0

    # One column per method iteration count + overlap efficiency, plus each
    # scalar ratio; rows are records in append order.
    columns = []
    for rec in records:
        for m in rec.get("methods", {}):
            for col in (f"{m}.iters", f"{m}.eff"):
                if col not in columns:
                    columns.append(col)
        for family, values in rec.get("ratios", {}).items():
            if isinstance(values, dict):
                for key in values:
                    col = f"{family}.{key}"
                    if col not in columns:
                        columns.append(col)

    def cell(rec, col):
        if col.endswith(".iters"):
            m = rec.get("methods", {}).get(col[:-len(".iters")], {})
            v = m.get("iterations")
            return str(v) if v is not None else "-"
        if col.endswith(".eff"):
            m = rec.get("methods", {}).get(col[:-len(".eff")], {})
            v = m.get("overlap_efficiency")
            return f"{v:.3f}" if v is not None else "-"
        family, _, key = col.rpartition(".")
        v = rec.get("ratios", {}).get(family, {}).get(key)
        return f"{v:.3f}" if v is not None else "-"

    widths = {c: max(len(c), 8) for c in columns}
    header = "commit       " + " ".join(c.rjust(widths[c]) for c in columns)
    print(header)
    for rec in records:
        row = f"{rec.get('commit', '?'):<12} " + " ".join(
            cell(rec, c).rjust(widths[c]) for c in columns)
        print(row)
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="append/show the in-repo bench perf trajectory")
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append", help="distill a BENCH json and append")
    p_append.add_argument("bench_json")
    p_append.add_argument("--dir", default="bench/trajectory",
                          help="trajectory directory (default: %(default)s)")
    p_append.add_argument("--commit", default="",
                          help="commit id (default: GITHUB_SHA or git HEAD)")
    p_append.set_defaults(func=cmd_append)

    p_show = sub.add_parser("show", help="print a trajectory as a table")
    p_show.add_argument("trajectory")
    p_show.add_argument("--last", type=int, default=0,
                        help="only the last N records")
    p_show.set_defaults(func=cmd_show)

    args = parser.parse_args(argv[1:])
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
