#!/usr/bin/env python3
"""Check that relative links in the repo's markdown files resolve.

Usage: tools/check_markdown_links.py [file.md ...]
With no arguments, checks every tracked *.md file under the repo root.

Validates inline links/images `[text](target)` whose target is a relative
path: the referenced file or directory must exist (anchors and query
strings are stripped; pure-anchor, http(s)/mailto, and bare-domain targets
are skipped).  Exits non-zero listing every broken link.
"""

import os
import re
import subprocess
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> str:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


def markdown_files(root: str) -> list:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        capture_output=True, text=True, check=True, cwd=root)
    return [os.path.join(root, f) for f in out.stdout.split() if f]


def strip_code(text: str) -> str:
    """Remove fenced and inline code spans so example links are not checked."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def check_file(path: str) -> list:
    broken = []
    with open(path, encoding="utf-8") as f:
        text = strip_code(f.read())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        if "://" in target or target.startswith("ui.perfetto.dev"):
            continue
        resolved = target.split("#", 1)[0].split("?", 1)[0]
        if not resolved:
            continue
        candidate = os.path.normpath(
            os.path.join(os.path.dirname(path), resolved))
        if not os.path.exists(candidate):
            broken.append((path, target))
    return broken


def main(argv: list) -> int:
    root = repo_root()
    files = [os.path.abspath(f) for f in argv[1:]] or markdown_files(root)
    broken = []
    for f in files:
        broken.extend(check_file(f))
    for path, target in broken:
        print(f"BROKEN {os.path.relpath(path, root)}: ({target})")
    print(f"checked {len(files)} markdown file(s), "
          f"{len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
