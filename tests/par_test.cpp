// Tests for the SPMD runtime: partitioning, barriers, blocking and
// non-blocking allreduce, RMA windows, determinism, error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "pipescg/base/error.hpp"
#include "pipescg/par/comm.hpp"

namespace pipescg::par {
namespace {

TEST(BlockRangeTest, CoversEverythingExactlyOnce) {
  for (std::size_t n : {0ul, 1ul, 7ul, 100ul, 101ul}) {
    for (int p : {1, 2, 3, 8}) {
      std::size_t total = 0;
      std::size_t expected_begin = 0;
      for (int r = 0; r < p; ++r) {
        const RankRange range = block_range(n, r, p);
        EXPECT_EQ(range.begin, expected_begin);
        expected_begin = range.end;
        total += range.size();
      }
      EXPECT_EQ(total, n);
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(BlockRangeTest, BalancedWithinOne) {
  for (int r = 0; r < 5; ++r) {
    const RankRange range = block_range(13, r, 5);
    EXPECT_GE(range.size(), 2u);
    EXPECT_LE(range.size(), 3u);
  }
}

TEST(BlockRangeTest, InvalidArgsThrow) {
  EXPECT_THROW(block_range(10, -1, 4), Error);
  EXPECT_THROW(block_range(10, 4, 4), Error);
  EXPECT_THROW(block_range(10, 0, 0), Error);
}

class TeamSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(TeamSizeTest, AllRanksRunExactlyOnce) {
  const int p = GetParam();
  std::vector<std::atomic<int>> counts(static_cast<std::size_t>(p));
  Team::run(p, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), p);
    counts[static_cast<std::size_t>(comm.rank())].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST_P(TeamSizeTest, BlockingAllreduceSums) {
  const int p = GetParam();
  Team::run(p, [&](Comm& comm) {
    const double mine[2] = {static_cast<double>(comm.rank() + 1), 1.0};
    double out[2];
    comm.allreduce_sum(mine, out);
    EXPECT_DOUBLE_EQ(out[0], p * (p + 1) / 2.0);
    EXPECT_DOUBLE_EQ(out[1], static_cast<double>(p));
  });
}

TEST_P(TeamSizeTest, NonBlockingAllreduceOverlapsCompute) {
  const int p = GetParam();
  Team::run(p, [&](Comm& comm) {
    const double mine = 2.0;
    AllreduceRequest req = comm.iallreduce_sum(std::span(&mine, 1));
    // Useful work between post and wait; buffer reuse is legal after post.
    double local_work = 0.0;
    for (int i = 0; i < 1000; ++i) local_work += std::sqrt(i + comm.rank());
    EXPECT_GT(local_work, 0.0);
    double out = 0.0;
    comm.wait(req, std::span(&out, 1));
    EXPECT_DOUBLE_EQ(out, 2.0 * p);
  });
}

TEST_P(TeamSizeTest, ManySequentialAllreducesExerciseSlotRecycling) {
  const int p = GetParam();
  Team::run(p, [&](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      const double mine = static_cast<double>(round);
      double out = 0.0;
      comm.allreduce_sum(std::span(&mine, 1), std::span(&out, 1));
      ASSERT_DOUBLE_EQ(out, static_cast<double>(round) * p);
    }
  });
}

TEST_P(TeamSizeTest, MultipleInflightAllreduces) {
  const int p = GetParam();
  Team::run(p, [&](Comm& comm) {
    AllreduceRequest reqs[4];
    for (int i = 0; i < 4; ++i) {
      const double v = static_cast<double>(i + 1);
      reqs[i] = comm.iallreduce_sum(std::span(&v, 1));
    }
    for (int i = 3; i >= 0; --i) {  // out-of-order waits are fine
      double out = 0.0;
      comm.wait(reqs[i], std::span(&out, 1));
      EXPECT_DOUBLE_EQ(out, (i + 1.0) * p);
    }
  });
}

TEST_P(TeamSizeTest, BroadcastDistributesRootData) {
  const int p = GetParam();
  Team::run(p, [&](Comm& comm) {
    std::vector<double> data(3, 0.0);
    if (comm.rank() == p - 1) data = {1.5, 2.5, 3.5};
    comm.broadcast(data, p - 1);
    EXPECT_DOUBLE_EQ(data[0], 1.5);
    EXPECT_DOUBLE_EQ(data[2], 3.5);
  });
}

TEST_P(TeamSizeTest, AllreduceMax) {
  const int p = GetParam();
  Team::run(p, [&](Comm& comm) {
    const double m = comm.allreduce_max(static_cast<double>(comm.rank()));
    EXPECT_DOUBLE_EQ(m, static_cast<double>(p - 1));
  });
}

TEST_P(TeamSizeTest, RmaWindowsReadPeerData) {
  const int p = GetParam();
  Team::run(p, [&](Comm& comm) {
    std::vector<double> window(4);
    for (int i = 0; i < 4; ++i)
      window[static_cast<std::size_t>(i)] = comm.rank() * 10.0 + i;
    comm.expose(window);
    const int peer = (comm.rank() + 1) % p;
    double got[2];
    comm.peer_read(peer, 1, got);
    EXPECT_DOUBLE_EQ(got[0], peer * 10.0 + 1);
    EXPECT_DOUBLE_EQ(got[1], peer * 10.0 + 2);
    comm.close_epoch();
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, TeamSizeTest, ::testing::Values(1, 2, 3, 4, 7));

TEST(TeamTest, DeterministicReductionAcrossRuns) {
  // Sum of values whose floating-point sum is order-dependent; the fixed
  // tree order must give bit-identical results on every run.
  const int p = 4;
  double first = 0.0;
  for (int run = 0; run < 5; ++run) {
    double result = 0.0;
    Team::run(p, [&](Comm& comm) {
      const double mine = 1.0 / (1.0 + comm.rank() * 0.3333333333);
      double out = 0.0;
      comm.allreduce_sum(std::span(&mine, 1), std::span(&out, 1));
      if (comm.rank() == 0) result = out;
    });
    if (run == 0) {
      first = result;
    } else {
      EXPECT_EQ(result, first);  // bitwise
    }
  }
}

TEST(TeamTest, ExceptionInRankPropagates) {
  EXPECT_THROW(
      Team::run(3,
                [](Comm& comm) {
                  if (comm.rank() == 1) throw Error("rank 1 exploded");
                  // Other ranks must not deadlock; they do local work only.
                }),
      Error);
}

TEST(TeamTest, PayloadTooLargeThrows) {
  Team::run(1, [](Comm& comm) {
    std::vector<double> big(Team::kMaxPayload + 1, 1.0);
    std::vector<double> out(big.size());
    EXPECT_THROW(comm.allreduce_sum(big, out), Error);
  });
}

TEST(TeamTest, ZeroRanksRejected) {
  EXPECT_THROW(Team::run(0, [](Comm&) {}), Error);
}

TEST(TeamTest, AllreducePayloadMismatchThrows) {
  // Ranks disagreeing on the payload count of a collective is an ordering
  // contract violation: the violator must fail loudly at post time (and the
  // innocent peer's wait is bounded by the watchdog, not a hang).
  const ScopedWatchdog watchdog(500.0);
  EXPECT_THROW(
      Team::run(2,
                [](Comm& comm) {
                  std::vector<double> in(comm.rank() == 0 ? 2u : 3u, 1.0);
                  std::vector<double> out(4, 0.0);
                  comm.allreduce_sum(in, out);
                }),
      Error);
}

TEST(WatchdogTest, BarrierTimesOutWhenPeerNeverArrives) {
  const ScopedWatchdog watchdog(300.0);
  EXPECT_THROW(
      Team::run(3,
                [](Comm& comm) {
                  if (comm.rank() == 2) return;  // dead rank never arrives
                  comm.barrier();
                }),
      CommTimeout);
}

TEST(WatchdogTest, AllreduceWaitTimesOutWhenPeerNeverPosts) {
  const ScopedWatchdog watchdog(300.0);
  EXPECT_THROW(
      Team::run(2,
                [](Comm& comm) {
                  if (comm.rank() == 1) return;
                  const double v = 1.0;
                  double out = 0.0;
                  comm.allreduce_sum(std::span<const double>(&v, 1),
                                     std::span<double>(&out, 1));
                }),
      CommTimeout);
}

TEST(WatchdogTest, TimeoutCarriesRankAndStateDump) {
  const ScopedWatchdog watchdog(250.0);
  try {
    Team::run(2, [](Comm& comm) {
      if (comm.rank() == 1) return;
      comm.barrier();
    });
    FAIL() << "expected CommTimeout";
  } catch (const CommTimeout& e) {
    EXPECT_EQ(e.rank(), 0);
    const std::string what = e.what();
    EXPECT_NE(what.find("barrier"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  }
}

TEST(WatchdogTest, ScopedOverrideRestores) {
  const double before = comm_watchdog_ms();
  {
    const ScopedWatchdog watchdog(123.0);
    EXPECT_EQ(comm_watchdog_ms(), 123.0);
  }
  EXPECT_EQ(comm_watchdog_ms(), before);
}

}  // namespace
}  // namespace pipescg::par
