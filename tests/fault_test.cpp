// Fault-injection harness tests: spec grammar, checkpoint/rollback unit
// behaviour, and the fault matrix -- every fault kind against every
// pipelined s-step method on the real SPMD runtime.  The contract under
// test (DESIGN.md section 9): a faulty solve either converges after
// recovery or stops with a clean diagnostic; it never hangs and never
// reports convergence with a garbage iterate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pipescg/base/error.hpp"
#include "pipescg/fault/injector.hpp"
#include "pipescg/fault/recovery.hpp"
#include "pipescg/fault/spec.hpp"
#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/solver.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg {
namespace {

using fault::FaultKind;
using fault::FaultSpec;
using fault::FaultTarget;

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(FaultSpecTest, ParsesAllFieldsOfAnSdcSpec) {
  const FaultSpec spec =
      fault::parse_fault_spec("kind=sdc:rank=2:target=pc:iter=40:bits=3:seed=9");
  EXPECT_EQ(spec.kind, FaultKind::kSdc);
  EXPECT_EQ(spec.rank, 2);
  EXPECT_EQ(spec.target, FaultTarget::kPc);
  EXPECT_EQ(spec.iter, 40u);
  EXPECT_EQ(spec.bits, 3);
  EXPECT_EQ(spec.bit, -1);
  EXPECT_EQ(spec.seed, 9u);
}

TEST(FaultSpecTest, ExplicitBitOverridesBits) {
  const FaultSpec spec = fault::parse_fault_spec("kind=sdc:bit=61");
  EXPECT_EQ(spec.bit, 61);
}

TEST(FaultSpecTest, DefaultsApplied) {
  const FaultSpec spec = fault::parse_fault_spec("kind=slow:factor=8");
  EXPECT_EQ(spec.kind, FaultKind::kSlow);
  EXPECT_EQ(spec.rank, 0);
  EXPECT_EQ(spec.target, FaultTarget::kSpmv);
  EXPECT_EQ(spec.iter, 0u);
  EXPECT_DOUBLE_EQ(spec.factor, 8.0);
}

TEST(FaultSpecTest, StallDefaultsToAllreduceTarget) {
  const FaultSpec spec = fault::parse_fault_spec("kind=stall:ms=250");
  EXPECT_EQ(spec.target, FaultTarget::kAllreduce);
  EXPECT_DOUBLE_EQ(spec.ms, 250.0);
  // ...unless a target is named explicitly.
  EXPECT_EQ(fault::parse_fault_spec("kind=stall:target=halo").target,
            FaultTarget::kHalo);
}

TEST(FaultSpecTest, ParsesSemicolonSeparatedList) {
  const std::vector<FaultSpec> specs = fault::parse_fault_specs(
      "rank=1:kind=slow:factor=3 ; kind=sdc:target=spmv:iter=40:bit=61");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].kind, FaultKind::kSlow);
  EXPECT_EQ(specs[1].kind, FaultKind::kSdc);
  EXPECT_TRUE(fault::parse_fault_specs("").empty());
  EXPECT_TRUE(fault::parse_fault_specs(" ; ").empty());
}

TEST(FaultSpecTest, ToStringRoundTrips) {
  for (const char* text :
       {"kind=sdc:rank=1:target=pc:iter=7:bit=61:seed=3",
        "kind=sdc:rank=0:target=spmv:iter=2:bits=4:seed=99",
        "kind=slow:rank=2:factor=8", "kind=stall:iter=30:ms=500",
        "kind=die:rank=1:target=allreduce:iter=25"}) {
    const FaultSpec a = fault::parse_fault_spec(text);
    const FaultSpec b = fault::parse_fault_spec(fault::to_string(a));
    EXPECT_EQ(a.kind, b.kind) << text;
    EXPECT_EQ(a.rank, b.rank) << text;
    EXPECT_EQ(a.target, b.target) << text;
    EXPECT_EQ(a.iter, b.iter) << text;
    EXPECT_EQ(a.bits, b.bits) << text;
    EXPECT_EQ(a.bit, b.bit) << text;
    EXPECT_DOUBLE_EQ(a.factor, b.factor) << text;
    EXPECT_DOUBLE_EQ(a.ms, b.ms) << text;
    EXPECT_EQ(a.seed, b.seed) << text;
  }
}

TEST(FaultSpecTest, StrictParsingRejectsTypos) {
  EXPECT_THROW(fault::parse_fault_spec("rank=2:factor=8"), Error);  // no kind
  EXPECT_THROW(fault::parse_fault_spec("kind=bogus"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind=sdc:target=gpu"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind=sdc:frequency=2"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind=sdc:iter=abc"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind=sdc:bit=64"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind=sdc:bits=0"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind=slow:factor=0.5"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind=stall:ms=-1"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind=die:rank=-1"), Error);
  EXPECT_THROW(fault::parse_fault_spec("kind"), Error);  // not key=value
}

// ---------------------------------------------------------------------------
// RecoveryManager
// ---------------------------------------------------------------------------

TEST(RecoveryManagerTest, InactiveManagerDoesNothing) {
  fault::RecoveryManager r(/*enabled=*/false, /*max_recoveries=*/8);
  EXPECT_FALSE(r.active());
  EXPECT_FALSE(r.should_save(1.0));
  std::vector<double> x = {1.0, 2.0};
  r.save(x, 5, 0.5);
  EXPECT_FALSE(r.has_checkpoint());
  EXPECT_FALSE(r.admit_failure());
}

TEST(RecoveryManagerTest, SaveRestoreRoundTrips) {
  fault::RecoveryManager r(true, 8);
  std::vector<double> x = {1.0, 2.0, 3.0};
  r.save(x, 42, 0.25);
  ASSERT_TRUE(r.has_checkpoint());
  x = {-9.0, -9.0, -9.0};  // corrupted by a fault
  EXPECT_EQ(r.restore(x), 42u);
  EXPECT_EQ(x, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(r.checkpoint_rnorm(), 0.25);
}

TEST(RecoveryManagerTest, SavesOnlyFiniteImprovements) {
  fault::RecoveryManager r(true, 8);
  EXPECT_TRUE(r.should_save(1.0));  // no checkpoint yet
  std::vector<double> x = {0.0};
  r.save(x, 0, 1.0);
  EXPECT_FALSE(r.should_save(2.0));  // worse
  EXPECT_FALSE(r.should_save(1.0));  // no better
  EXPECT_TRUE(r.should_save(0.5));
  EXPECT_FALSE(r.should_save(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(r.should_save(std::numeric_limits<double>::infinity()));
}

TEST(RecoveryManagerTest, FailureBudgetExhausts) {
  fault::RecoveryManager r(true, /*max_recoveries=*/2);
  EXPECT_TRUE(r.admit_failure());
  EXPECT_TRUE(r.admit_failure());
  EXPECT_FALSE(r.admit_failure());  // budget spent
  EXPECT_EQ(r.recoveries(), 3u);
}

TEST(RecoveryManagerTest, DegradesAfterTwoNoProgressFailures) {
  fault::RecoveryManager r(true, 8);
  std::vector<double> x = {0.0};
  r.save(x, 0, 1.0);
  EXPECT_TRUE(r.admit_failure());     // progress had been made: consecutive=1
  EXPECT_FALSE(r.should_degrade());
  EXPECT_TRUE(r.admit_failure());     // no save since: consecutive=2
  EXPECT_TRUE(r.should_degrade());
  r.acknowledge_degrade();
  EXPECT_FALSE(r.should_degrade());
  r.save(x, 3, 0.5);                  // progress resets the streak
  EXPECT_TRUE(r.admit_failure());
  EXPECT_FALSE(r.should_degrade());
}

// ---------------------------------------------------------------------------
// Residual checkpoint NaN guard (shared by every solver driver)
// ---------------------------------------------------------------------------

TEST(CheckpointTest, NonFiniteResidualFlagsBreakdownAndStops) {
  krylov::SolveStats stats;
  krylov::SolverOptions opts;
  EXPECT_TRUE(krylov::detail::checkpoint(stats, opts, 1, 0.5));
  EXPECT_FALSE(stats.breakdown);
  EXPECT_FALSE(krylov::detail::checkpoint(
      stats, opts, 2, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(stats.breakdown);
  // Both checkpoints are recorded so the history shows where it died.
  ASSERT_EQ(stats.history.size(), 2u);
  EXPECT_TRUE(std::isnan(stats.history.back().second));
}

// ---------------------------------------------------------------------------
// Fault matrix on the SPMD runtime
// ---------------------------------------------------------------------------

struct FaultyResult {
  std::vector<double> x;
  krylov::SolveStats stats;
  std::size_t injected = 0;  // summed over ranks
};

// solve_spmd (see spmd_solver_test.cpp) plus a per-rank fault injector
// installed for the duration of the team body.
FaultyResult solve_with_faults(const std::string& method,
                               const sparse::CsrMatrix& a, int ranks,
                               const krylov::SolverOptions& opts,
                               const std::vector<FaultSpec>& specs) {
  const std::size_t n = a.rows();
  const sparse::Partition part(n, ranks);
  FaultyResult result;
  result.x.assign(n, 0.0);
  std::mutex mutex;

  par::Team::run(ranks, [&](par::Comm& comm) {
    fault::Injector injector(specs, comm.rank());
    const fault::Injector::Install install(specs.empty() ? nullptr
                                                         : &injector);

    const sparse::DistCsr dist(a, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());

    const std::vector<double> full_diag = a.diagonal();
    std::vector<double> local_diag(
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
    sparse::OperatorStats st = a.stats();
    precond::JacobiPreconditioner local_pc(std::move(local_diag), st);

    const bool use_pc = krylov::solver_uses_preconditioner(method);
    krylov::SpmdEngine engine(comm, dist, use_pc ? &local_pc : nullptr);

    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();

    const krylov::SolveStats stats =
        krylov::make_solver(method)->solve(engine, b, x, opts);
    {
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t i = 0; i < len; ++i) result.x[begin + i] = x[i];
      result.injected += injector.injected();
      if (comm.rank() == 0) result.stats = stats;
    }
  });
  return result;
}

// The solution of A x = A*ones is exactly ones, so "never false-converged"
// is checkable without a second operator application: a converged solve
// must have landed near the all-ones vector.
void expect_sane_outcome(const FaultyResult& r, const std::string& label) {
  if (r.stats.converged) {
    for (std::size_t i = 0; i < r.x.size(); ++i)
      ASSERT_NEAR(r.x[i], 1.0, 1e-2) << label << " i=" << i;
  } else {
    EXPECT_TRUE(r.stats.stagnated || r.stats.breakdown)
        << label << ": failed without a diagnostic flag";
  }
}

class FaultMatrixTest : public ::testing::TestWithParam<const char*> {
 protected:
  // Problem and fault indices mirror the empirically validated resilience
  // walkthrough (EXPERIMENTS.md): thermal2-like 32x32, rtol 1e-5, s = 3.
  sparse::CsrMatrix a_ = sparse::make_thermal2_like(32, 32);
  krylov::SolverOptions opts_;
  void SetUp() override {
    opts_.rtol = 1e-5;
    opts_.s = 3;
    opts_.max_iterations = 5000;
  }
};

TEST_P(FaultMatrixTest, SlowRankLeavesTrajectoryUntouched) {
  const std::string method = GetParam();
  const FaultyResult clean = solve_with_faults(method, a_, 3, opts_, {});
  const FaultyResult slow = solve_with_faults(
      method, a_, 3, opts_,
      fault::parse_fault_specs("rank=1:kind=slow:factor=3"));
  ASSERT_TRUE(clean.stats.converged) << method;
  ASSERT_TRUE(slow.stats.converged) << method;
  // A straggler perturbs timing only: same iteration history, same bits.
  EXPECT_EQ(slow.stats.history, clean.stats.history) << method;
  ASSERT_EQ(slow.x.size(), clean.x.size());
  for (std::size_t i = 0; i < clean.x.size(); ++i)
    ASSERT_EQ(slow.x[i], clean.x[i]) << method << " i=" << i;
  EXPECT_EQ(slow.stats.recoveries, 0u);
}

TEST_P(FaultMatrixTest, StalledAllreduceLeavesTrajectoryUntouched) {
  const std::string method = GetParam();
  const FaultyResult clean = solve_with_faults(method, a_, 3, opts_, {});
  const FaultyResult stalled = solve_with_faults(
      method, a_, 3, opts_,
      fault::parse_fault_specs("kind=stall:target=allreduce:iter=30:ms=50"));
  ASSERT_TRUE(stalled.stats.converged) << method;
  EXPECT_EQ(stalled.stats.history, clean.stats.history) << method;
  for (std::size_t i = 0; i < clean.x.size(); ++i)
    ASSERT_EQ(stalled.x[i], clean.x[i]) << method << " i=" << i;
  EXPECT_EQ(stalled.injected, 1u) << method;
}

TEST_P(FaultMatrixTest, SdcIsDetectedAndRecovered) {
  const std::string method = GetParam();
  const FaultyResult r = solve_with_faults(
      method, a_, 3, opts_,
      fault::parse_fault_specs("kind=sdc:target=spmv:iter=40:bit=61"));
  EXPECT_EQ(r.injected, 1u) << method;
  expect_sane_outcome(r, method + "/sdc");
  EXPECT_TRUE(r.stats.converged) << method << ": SDC should be survivable";
  EXPECT_GE(r.stats.recoveries, 1u)
      << method << ": corruption was never detected";
}

TEST_P(FaultMatrixTest, DeadRankNeverHangs) {
  const std::string method = GetParam();
  const par::ScopedWatchdog watchdog(800.0);
  // The dead rank's RankDeath (or a survivor's CommTimeout, whichever rank
  // is lowest) must surface as an exception; the watchdog bounds the wait.
  EXPECT_THROW(
      solve_with_faults(
          method, a_, 3, opts_,
          fault::parse_fault_specs("kind=die:rank=1:target=spmv:iter=10")),
      Error)
      << method;
}

INSTANTIATE_TEST_SUITE_P(Methods, FaultMatrixTest,
                         ::testing::Values("pipe-scg", "pipe-pscg", "hybrid"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(FaultDeterminismTest, SameSpecSameSeedSameTrajectory) {
  const sparse::CsrMatrix a = sparse::make_thermal2_like(32, 32);
  krylov::SolverOptions opts;
  opts.rtol = 1e-5;
  opts.s = 3;
  const std::vector<FaultSpec> specs =
      fault::parse_fault_specs("kind=sdc:target=spmv:iter=40:bits=2:seed=7");
  const FaultyResult r1 = solve_with_faults("pipe-pscg", a, 3, opts, specs);
  const FaultyResult r2 = solve_with_faults("pipe-pscg", a, 3, opts, specs);
  EXPECT_EQ(r1.injected, r2.injected);
  EXPECT_EQ(r1.stats.recoveries, r2.stats.recoveries);
  ASSERT_EQ(r1.stats.history.size(), r2.stats.history.size());
  for (std::size_t i = 0; i < r1.stats.history.size(); ++i) {
    EXPECT_EQ(r1.stats.history[i].first, r2.stats.history[i].first);
    EXPECT_EQ(r1.stats.history[i].second, r2.stats.history[i].second);  // bits
  }
  ASSERT_EQ(r1.x.size(), r2.x.size());
  for (std::size_t i = 0; i < r1.x.size(); ++i)
    ASSERT_EQ(r1.x[i], r2.x[i]) << "non-deterministic at " << i;
}

TEST(FaultCleanRunTest, RecoveryOnIsBitwiseIdenticalToRecoveryOff) {
  const sparse::CsrMatrix a = sparse::make_thermal2_like(16, 16);
  krylov::SolverOptions base;
  base.rtol = 1e-6;
  base.s = 3;
  for (const char* method : {"pipe-scg", "pipe-pscg", "scg-sspmv"}) {
    krylov::SolverOptions on = base, off = base;
    on.recovery = true;
    off.recovery = false;
    const FaultyResult with = solve_with_faults(method, a, 3, on, {});
    const FaultyResult without = solve_with_faults(method, a, 3, off, {});
    ASSERT_TRUE(with.stats.converged) << method;
    EXPECT_EQ(with.stats.iterations, without.stats.iterations) << method;
    EXPECT_EQ(with.stats.history, without.stats.history) << method;
    for (std::size_t i = 0; i < with.x.size(); ++i)
      ASSERT_EQ(with.x[i], without.x[i]) << method << " i=" << i;
    EXPECT_EQ(with.stats.recoveries, 0u) << method;
  }
}

// A solver without rollback machinery still owes the user a clean stop:
// pipecg hit by loud SDC must flag breakdown/stagnation, not iterate on
// NaNs forever or claim convergence.
TEST(FaultDiagnosticTest, PipecgWithoutRecoveryStopsCleanly) {
  const sparse::CsrMatrix a = sparse::make_thermal2_like(16, 16);
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  const FaultyResult r = solve_with_faults(
      "pipecg", a, 3, opts,
      fault::parse_fault_specs("kind=sdc:target=spmv:iter=10:bit=62"));
  EXPECT_EQ(r.injected, 1u);
  expect_sane_outcome(r, "pipecg/sdc");
}

}  // namespace
}  // namespace pipescg
