// Request-scoped tracing tests: span-ring eviction semantics, tracer scope
// nesting, the cross-rank merge (deterministic ordering under rank
// interleavings, clock-offset alignment, id propagation), the trace sink,
// and the driver-side checkpoint/recovery hooks.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "pipescg/fault/recovery.hpp"
#include "pipescg/krylov/solver.hpp"
#include "pipescg/obs/anomaly.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/tracing.hpp"

namespace pipescg::obs::tracing {
namespace {

std::string temp_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

TraceSpan make_span(std::string name, std::uint64_t id, std::uint64_t parent,
                    double start, double end) {
  TraceSpan s;
  s.name = std::move(name);
  s.span_id = id;
  s.parent_span_id = parent;
  s.start = start;
  s.end = end;
  return s;
}

// --- ring ------------------------------------------------------------------

TEST(SpanRingTest, EvictionKeepsNewestSpans) {
  SpanRing ring(4);
  for (int i = 0; i < 7; ++i)
    ring.push(make_span("s" + std::to_string(i), ring.mint(), 0,
                        static_cast<double>(i), static_cast<double>(i) + 0.5));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 3u);
  const std::vector<TraceSpan> spans = ring.spans();
  ASSERT_EQ(spans.size(), 4u);
  // The oldest three were evicted; retained spans keep push order.
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].name,
              "s" + std::to_string(i + 3));
}

TEST(SpanRingTest, MintedIdsEncodeTheTagAndNeverCollide) {
  SpanRing rank0(8, 0);
  SpanRing rank1(8, 1);
  const std::uint64_t a = rank0.mint();
  const std::uint64_t b = rank0.mint();
  const std::uint64_t c = rank1.mint();
  EXPECT_EQ(a, (std::uint64_t{1} << 32) + 1);
  EXPECT_EQ(b, (std::uint64_t{1} << 32) + 2);
  EXPECT_EQ(c, (std::uint64_t{2} << 32) + 1);
  EXPECT_NE(a, c);
}

// --- tracer ----------------------------------------------------------------

TEST(TracerTest, ScopesNestAndParentCorrectly) {
  SpanRing ring(64, 3);
  Tracer tracer(TraceContext{42, 7}, ring);
  EXPECT_EQ(tracer.current_parent(), 7u);
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    TraceScope outer(&tracer, "outer");
    outer_id = outer.span_id();
    EXPECT_EQ(tracer.current_parent(), outer_id);
    {
      TraceScope inner(&tracer, "inner");
      inner_id = inner.span_id();
      EXPECT_EQ(tracer.current_parent(), inner_id);
    }
    EXPECT_EQ(tracer.current_parent(), outer_id);
  }
  EXPECT_EQ(tracer.current_parent(), 7u);
  const std::vector<TraceSpan> spans = ring.spans();
  ASSERT_EQ(spans.size(), 2u);  // inner closes first
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].parent_span_id, outer_id);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].parent_span_id, 7u);
  EXPECT_LE(spans[1].start, spans[0].start);
  EXPECT_GE(spans[1].end, spans[0].end);
}

TEST(TracerTest, NullTracerScopesAreNoOps) {
  TraceScope scope(nullptr, "nothing");
  EXPECT_EQ(scope.span_id(), 0u);
}

TEST(TracerTest, CheckpointRecordsIterationAndRnormArgs) {
  SpanRing ring(64, 0);
  Tracer tracer(TraceContext{9, 0}, ring);
  tracer.checkpoint(3, 0.5);
  tracer.checkpoint(6, 0.25);
  const std::vector<TraceSpan> spans = ring.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "outer_iteration");
  ASSERT_EQ(spans[0].args.size(), 2u);
  EXPECT_EQ(spans[0].args[0].first, "iteration");
  EXPECT_DOUBLE_EQ(spans[0].args[0].second, 3.0);
  EXPECT_EQ(spans[0].args[1].first, "rnorm");
  EXPECT_DOUBLE_EQ(spans[0].args[1].second, 0.5);
  // Consecutive checkpoint spans tile the timeline: each starts where the
  // previous ended.
  EXPECT_DOUBLE_EQ(spans[1].start, spans[0].end);
}

// --- merge -----------------------------------------------------------------

// Fill a request trace with a fixed set of spans; `rank_first` flips which
// ring is populated first, modeling different rank execution interleavings.
RequestTrace fixed_trace(bool rank_first) {
  RequestTrace trace(TraceContext{1234, 0}, /*ranks=*/2, /*capacity=*/64);
  auto fill_rank0 = [&] {
    trace.rank_ring(0).push(make_span("rank_solve", (1ull << 32) + 1, 5,
                                      0.0, 1.0));
    trace.rank_ring(0).push(make_span("outer_iteration", (1ull << 32) + 2,
                                      (1ull << 32) + 1, 0.1, 0.4));
  };
  auto fill_rank1 = [&] {
    trace.rank_ring(1).push(make_span("rank_solve", (2ull << 32) + 1, 5,
                                      0.05, 0.95));
  };
  if (rank_first) {
    fill_rank0();
    fill_rank1();
  } else {
    fill_rank1();
    fill_rank0();
  }
  trace.service_ring().push(make_span("request", 5, 0, 0.0, 1.2));
  return trace;
}

TEST(MergeTest, DeterministicUnderRankInterleavings) {
  const json::Value a = merge_trace(fixed_trace(true));
  const json::Value b = merge_trace(fixed_trace(false));
  EXPECT_EQ(a.dump(2), b.dump(2));
}

TEST(MergeTest, AlignsClockOffsetsAcrossRings) {
  RequestTrace trace(TraceContext{77, 0}, /*ranks=*/2, /*capacity=*/16);
  trace.rank_ring(0).set_clock_offset(0.5);
  trace.rank_ring(1).set_clock_offset(2.0);
  // Both spans happened at the same ALIGNED instant, 2.5s after base, even
  // though their ring-relative times differ.
  trace.rank_ring(0).push(make_span("a", (1ull << 32) + 1, 0, 2.0, 2.25));
  trace.rank_ring(1).push(make_span("b", (2ull << 32) + 1, 0, 0.5, 0.75));
  const json::Value doc = merge_trace(trace);
  const json::Value& events = doc.at("traceEvents");
  double ts_a = -1.0, ts_b = -1.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& ev = events.at(i);
    if (!ev.contains("ts")) continue;
    if (ev.at("name").as_string() == "a") ts_a = ev.at("ts").as_number();
    if (ev.at("name").as_string() == "b") ts_b = ev.at("ts").as_number();
  }
  EXPECT_DOUBLE_EQ(ts_a, 2.5e6);
  EXPECT_DOUBLE_EQ(ts_b, 2.5e6);
}

TEST(MergeTest, EveryEventCarriesTheTraceIdAndUniqueSpanIds) {
  const json::Value doc = merge_trace(fixed_trace(true));
  EXPECT_DOUBLE_EQ(doc.at("trace_id").as_number(), 1234.0);
  const json::Value& events = doc.at("traceEvents");
  std::vector<double> ids;
  std::size_t x_events = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& ev = events.at(i);
    if (ev.at("ph").as_string() != "X") continue;
    ++x_events;
    const json::Value& args = ev.at("args");
    EXPECT_DOUBLE_EQ(args.at("trace_id").as_number(), 1234.0);
    ids.push_back(args.at("span_id").as_number());
  }
  EXPECT_EQ(x_events, 4u);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

TEST(MergeTest, NamesEveryRankTrackAndTheServiceTrack) {
  const json::Value doc = merge_trace(fixed_trace(true));
  const json::Value& events = doc.at("traceEvents");
  std::vector<std::string> names;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& ev = events.at(i);
    if (ev.at("ph").as_string() == "M" &&
        ev.at("name").as_string() == "thread_name")
      names.push_back(ev.at("args").at("name").as_string());
  }
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "rank 0");
  EXPECT_EQ(names[1], "rank 1");
  EXPECT_EQ(names[2], "service");
}

// --- sink ------------------------------------------------------------------

TEST(TraceSinkTest, WritesOneParsableFilePerRequest) {
  const std::string dir = temp_dir("pipescg_trace_sink_test");
  TraceSink sink(dir);
  const RequestTrace trace = fixed_trace(true);
  const std::string path = sink.write(trace);
  EXPECT_EQ(path, sink.path_for(1234));
  EXPECT_EQ(sink.written(), 1u);
  const json::Value doc = json::parse_file(path);
  EXPECT_DOUBLE_EQ(doc.at("trace_id").as_number(), 1234.0);
  std::filesystem::remove_all(dir);
}

// --- driver hooks ----------------------------------------------------------

TEST(HookTest, DetailCheckpointFeedsTheInstalledTracer) {
  SpanRing ring(64, 0);
  Tracer tracer(TraceContext{5, 0}, ring);
  krylov::SolveStats stats;
  krylov::SolverOptions opts;
  {
    Tracer::Install install(&tracer);
    EXPECT_TRUE(krylov::detail::checkpoint(stats, opts, 4, 0.125));
  }
  // Uninstalled: no further spans.
  EXPECT_TRUE(krylov::detail::checkpoint(stats, opts, 8, 0.0625));
  const std::vector<TraceSpan> spans = ring.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "outer_iteration");
  EXPECT_DOUBLE_EQ(spans[0].args[0].second, 4.0);
}

TEST(HookTest, RecoveryRollbackLeavesMarksOnTheTrace) {
  SpanRing ring(64, 0);
  Tracer tracer(TraceContext{6, 0}, ring);
  fault::RecoveryManager recovery(/*enabled=*/true, /*max_recoveries=*/4);
  std::vector<double> x = {1.0, 2.0, 3.0};
  recovery.save(x, 10, 0.5);
  x = {9.0, 9.0, 9.0};
  {
    Tracer::Install install(&tracer);
    EXPECT_TRUE(recovery.admit_failure());
    recovery.restore(x);
  }
  EXPECT_EQ(x[0], 1.0);
  const std::vector<TraceSpan> spans = ring.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "recovery_failure_admitted");
  EXPECT_EQ(spans[1].name, "recovery_rollback");
  EXPECT_DOUBLE_EQ(spans[1].args[0].second, 10.0);  // checkpoint iteration
  EXPECT_DOUBLE_EQ(spans[1].start, spans[1].end);   // instantaneous mark
}

}  // namespace
}  // namespace pipescg::obs::tracing
