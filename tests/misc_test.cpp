// Edge-path tests: timeline preconditioner halo pricing, 2D halo estimates,
// hybrid history continuity, large dot batches on the SPMD engine, window
// bounds checking in the runtime.
#include <gtest/gtest.h>

#include <cmath>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sim/timeline.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg {
namespace {

TEST(TimelineEdgeTest, PcHaloExchangesArePriced) {
  sim::MachineModel m;
  sparse::OperatorStats st;
  st.rows = 1 << 20;
  st.nnz = st.rows * 5;
  st.kind = sparse::GridKind::kGrid2d;
  st.nx = 1024;
  st.ny = 1024;
  st.halo_width = 1;

  sim::PcCostProfile with_halo;
  with_halo.flops = 1e6;
  with_halo.bytes = 1e7;
  with_halo.halo_exchanges = 4.0;
  with_halo.stats = st;
  sim::PcCostProfile without = with_halo;
  without.halo_exchanges = 0.0;

  auto seconds = [&](const sim::PcCostProfile& prof) {
    sim::EventTrace trace;
    const std::uint32_t idx = trace.register_pc(prof);
    sim::Event e;
    e.kind = sim::EventKind::kPcApply;
    e.index = idx;
    trace.record(e);
    return sim::Timeline(m).evaluate(trace, 960).seconds;
  };
  EXPECT_GT(seconds(with_halo), seconds(without));
  // At one rank there is no halo, so both cost the same.
  auto seconds_1rank = [&](const sim::PcCostProfile& prof) {
    sim::EventTrace trace;
    const std::uint32_t idx = trace.register_pc(prof);
    sim::Event e;
    e.kind = sim::EventKind::kPcApply;
    e.index = idx;
    trace.record(e);
    return sim::Timeline(m).evaluate(trace, 1).seconds;
  };
  EXPECT_DOUBLE_EQ(seconds_1rank(with_halo), seconds_1rank(without));
}

TEST(HaloEstimateTest, Grid2dSurfaceScalesAsSqrtOfLocalSize) {
  sparse::OperatorStats st;
  st.rows = 1 << 20;
  st.kind = sparse::GridKind::kGrid2d;
  st.nx = st.ny = 1024;
  st.halo_width = 1;
  const double h16 = st.halo_doubles_per_rank(16);
  const double h64 = st.halo_doubles_per_rank(64);
  // 4x more ranks -> local size /4 -> boundary /2.
  EXPECT_NEAR(h16 / h64, 2.0, 0.01);
  EXPECT_DOUBLE_EQ(st.halo_messages_per_rank(16), 4.0);
}

TEST(HybridHistoryTest, IterationIndicesAreMonotoneAcrossPhases) {
  const sparse::CsrMatrix a = sparse::make_ecology2_like(64, 64);
  precond::JacobiPreconditioner pc(a);
  krylov::SerialEngine engine(a, &pc);
  krylov::Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  krylov::Vec b = engine.new_vec();
  engine.apply_op(ones, b);
  krylov::Vec x = engine.new_vec();
  krylov::SolverOptions opts;
  opts.rtol = 1e-7;
  opts.max_iterations = 100000;
  const auto stats = krylov::make_solver("hybrid")->solve(engine, b, x, opts);
  ASSERT_TRUE(stats.converged);
  ASSERT_GE(stats.history.size(), 2u);
  for (std::size_t i = 1; i < stats.history.size(); ++i)
    EXPECT_GE(stats.history[i].first, stats.history[i - 1].first)
        << "history must stay monotone across the phase switch";
  EXPECT_EQ(stats.history.back().first, stats.iterations);
}

TEST(SpmdEdgeTest, LargeDotBatchWithinPayloadLimit) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 8, 8, "p");
  const sparse::Partition part(a.rows(), 2);
  par::Team::run(2, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    krylov::SpmdEngine engine(comm, dist);
    // s = 6-sized batch: 13 moments + 36 cross + 2 norms = 51 pairs.
    krylov::VecBlock block = engine.new_block(51);
    for (std::size_t k = 0; k < block.size(); ++k)
      for (std::size_t i = 0; i < block[k].size(); ++i)
        block[k][i] = static_cast<double>(k + 1);
    std::vector<krylov::DotPair> pairs;
    for (std::size_t k = 0; k < block.size(); ++k)
      pairs.push_back(krylov::DotPair{&block[k], &block[k]});
    std::vector<double> out(pairs.size());
    engine.dots(pairs, out);
    for (std::size_t k = 0; k < out.size(); ++k)
      ASSERT_NEAR(out[k],
                  static_cast<double>((k + 1) * (k + 1)) * a.rows(), 1e-9);
  });
}

TEST(RuntimeEdgeTest, PeerReadOutsideWindowThrows) {
  par::Team::run(2, [](par::Comm& comm) {
    std::vector<double> window(4, 1.0);
    comm.expose(window);
    double out[8];
    EXPECT_THROW(comm.peer_read(1 - comm.rank(), 2, out), Error);
    comm.close_epoch();
  });
}

TEST(RuntimeEdgeTest, WaitOnInactiveRequestThrows) {
  par::Team::run(1, [](par::Comm& comm) {
    const double v = 1.0;
    par::AllreduceRequest req = comm.iallreduce_sum(std::span(&v, 1));
    double out = 0.0;
    comm.wait(req, std::span(&out, 1));
    EXPECT_THROW(comm.wait(req, std::span(&out, 1)), Error);
  });
}

}  // namespace
}  // namespace pipescg
