// Hot-kernel contracts (DESIGN.md section 14): SELL-C-sigma applies are
// bitwise identical to the scalar CSR loop (serial, distributed, and through
// the matrix-powers kernel), the fused BLAS-1 kernels are bitwise identical
// to their unfused reference chains (including through full s-step solves
// over every basis family), the memory-pass counters pin the fusion claim
// (2s+ sweeps -> 1 per dot batch, 4 -> 1 per basis step), and the byte
// models the benches print are the SAME numbers the operators report.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/solver.hpp"
#include "pipescg/la/vector_kernels.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sparse/bytes_model.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/matrix_powers.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/sell_matrix.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace {

using namespace pipescg;
using sparse::CsrMatrix;
using sparse::DistCsr;
using sparse::MatrixPowers;
using sparse::Partition;
using sparse::SellMatrix;
using sparse::SparseFormat;

std::vector<double> random_vector(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

// Bitwise equality: EXPECT_EQ would let -0.0 == 0.0 slide; the identity
// contract is about the exact bit pattern the scalar loop produces.
void expect_bitwise(const std::vector<double>& a, const std::vector<double>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << what << " i=" << i << " a=" << a[i] << " b=" << b[i];
}

// --- SELL-C-sigma vs CSR -----------------------------------------------

// Serial identity across the matrix families the benches measure, at chunk
// heights that hit the specialized (4/8/16), generic (3, 5), and degenerate
// (1) kernels, with odd row counts so tail chunks have inactive lanes and
// ragged widths exercise the active-lane shrink.
TEST(SellMatrixTest, ApplyBitwiseMatchesCsr) {
  const CsrMatrix mats[] = {
      sparse::make_poisson125_csr(5),        // 125 rows, wide rows
      sparse::make_ecology2_like(23, 17),    // 391 rows, 5-pt
      sparse::make_thermal2_like(11, 13),    // 143 rows, 9-pt ragged edges
      sparse::make_serena_like(8),           // strongly varying row lengths
  };
  for (const CsrMatrix& a : mats) {
    const std::vector<double> x = random_vector(a.cols(), 42);
    std::vector<double> y_ref(a.rows());
    a.apply(x, y_ref);
    for (const std::size_t chunk : {1u, 3u, 4u, 5u, 8u, 16u}) {
      for (const std::size_t sigma : {0u, 8u, 64u}) {
        const SellMatrix sell(a, chunk, sigma);
        EXPECT_EQ(sell.nnz(), a.nnz());
        EXPECT_GE(sell.slots(), sell.nnz());
        std::vector<double> y(a.rows(), -1.0);
        sell.apply(x, y);
        expect_bitwise(y, y_ref, (a.name() + " sell apply").c_str());
      }
    }
  }
}

// Padded slots must never be READ.  Padded slots carry column index 0, so
// planting a NaN at x[0] poisons exactly what a masked (0 * x) kernel would
// touch: 0 * NaN is still NaN, so masking would smear NaN into every padded
// row, while the active-lane kernel leaves rows that never reference
// column 0 finite and bitwise equal to the CSR loop.
TEST(SellMatrixTest, PaddingIsNeverRead) {
  const CsrMatrix a = sparse::make_serena_like(8);
  const SellMatrix sell(a, 8, 0);
  ASSERT_GT(sell.slots(), sell.nnz()) << "test needs actual padding";
  std::vector<double> x = random_vector(a.cols(), 99);
  x[0] = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> y_ref(a.rows()), y(a.rows());
  a.apply(x, y_ref);
  sell.apply(x, y);
  bool some_row_is_finite = false;
  for (const double v : y_ref) some_row_is_finite |= !std::isnan(v);
  ASSERT_TRUE(some_row_is_finite) << "poison swallowed the whole matrix";
  expect_bitwise(y, y_ref, "poisoned padding");
}

class SellFormatRankTest : public ::testing::TestWithParam<int> {};

// DistCsr under --format sell: the distributed apply is bitwise identical
// to the CSR-format apply on every rank, including the ghost-column split.
TEST_P(SellFormatRankTest, DistCsrSellMatchesCsrBitwise) {
  const int p = GetParam();
  const CsrMatrix mats[] = {sparse::make_poisson125_csr(5),
                            sparse::make_ecology2_like(23, 17),
                            sparse::make_thermal2_like(11, 13)};
  for (const CsrMatrix& global : mats) {
    const std::size_t n = global.rows();
    const std::vector<double> x = random_vector(n, 7);
    const Partition part(n, p);
    std::vector<double> y_csr(n), y_sell(n);
    for (const SparseFormat format :
         {SparseFormat::kCsr, SparseFormat::kSell}) {
      std::vector<double>& y =
          format == SparseFormat::kSell ? y_sell : y_csr;
      par::Team::run(p, [&](par::Comm& comm) {
        const DistCsr dist(global, part, comm.rank(), format);
        EXPECT_EQ(dist.format(), format);
        const std::size_t begin = part.begin(comm.rank());
        const std::size_t len = part.local_size(comm.rank());
        std::vector<double> xl(
            x.begin() + static_cast<std::ptrdiff_t>(begin),
            x.begin() + static_cast<std::ptrdiff_t>(begin + len));
        std::vector<double> yl(len), ghosts;
        dist.apply(comm, xl, yl, ghosts);
        for (std::size_t i = 0; i < len; ++i) y[begin + i] = yl[i];
      });
    }
    expect_bitwise(y_sell, y_csr, (global.name() + " dist").c_str());
  }
}

// MatrixPowers under --format sell: the owned sweeps run through the SELL
// kernel, the ghost onion stays raw CSR; every depth's block output must be
// bitwise identical to the CSR-format block.
TEST_P(SellFormatRankTest, MatrixPowersSellMatchesCsrBitwise) {
  const int p = GetParam();
  const CsrMatrix global = sparse::make_thermal2_like(11, 13);
  const std::size_t n = global.rows();
  const std::vector<double> x = random_vector(n, 2026);
  const Partition part(n, p);
  const int depth = 4;
  std::vector<std::vector<double>> out_csr, out_sell;
  for (const SparseFormat format : {SparseFormat::kCsr, SparseFormat::kSell}) {
    auto& out = format == SparseFormat::kSell ? out_sell : out_csr;
    out.assign(static_cast<std::size_t>(depth), std::vector<double>(n));
    par::Team::run(p, [&](par::Comm& comm) {
      const MatrixPowers mpk(global, part, comm.rank(), depth, format);
      EXPECT_EQ(mpk.format(), format);
      const std::size_t begin = part.begin(comm.rank());
      const std::size_t len = part.local_size(comm.rank());
      const std::vector<double> xl(
          x.begin() + static_cast<std::ptrdiff_t>(begin),
          x.begin() + static_cast<std::ptrdiff_t>(begin + len));
      std::vector<std::vector<double>> local(
          static_cast<std::size_t>(depth), std::vector<double>(len));
      std::vector<std::span<double>> outs(local.begin(), local.end());
      MatrixPowers::Scratch scratch;
      mpk.apply(comm, xl, outs, scratch);
      for (std::size_t k = 0; k < local.size(); ++k)
        for (std::size_t i = 0; i < len; ++i) out[k][begin + i] = local[k][i];
    });
  }
  for (int k = 0; k < depth; ++k)
    expect_bitwise(out_sell[static_cast<std::size_t>(k)],
                   out_csr[static_cast<std::size_t>(k)], "mpk block");
}

INSTANTIATE_TEST_SUITE_P(Ranks, SellFormatRankTest, ::testing::Values(1, 2, 3));

// --- fused BLAS-1 kernels ----------------------------------------------

// dot_batch fused vs unfused, at lengths that leave a ragged tail block
// (kDotBlock is 2048) and pair counts covering one full s-step batch.
TEST(FusedKernelsTest, DotBatchBitwiseMatchesUnfused) {
  for (const std::size_t n : {1u, 7u, 2048u, 5000u, 100000u}) {
    for (const std::size_t pairs_n : {1u, 2u, 7u, 18u}) {
      std::vector<std::vector<double>> store(pairs_n + 1);
      for (std::size_t v = 0; v < store.size(); ++v)
        store[v] = random_vector(n, static_cast<unsigned>(100 + v));
      std::vector<la::DotView> views;
      for (std::size_t pr = 0; pr < pairs_n; ++pr)
        views.push_back(la::DotView{store[pr].data(), store[pr + 1].data()});
      std::vector<double> fused(pairs_n), unfused(pairs_n);
      {
        const la::FusedKernelsGuard guard(true);
        la::dot_batch(views, n, fused);
      }
      {
        const la::FusedKernelsGuard guard(false);
        la::dot_batch(views, n, unfused);
      }
      expect_bitwise(fused, unfused, "dot batch");
    }
  }
}

// shift_combine fused vs unfused across every guard combination (theta = 0,
// missing p2, gamma = 1 -- the monomial basis is all three at once) at
// tail-exercising lengths.
TEST(FusedKernelsTest, ShiftCombineBitwiseMatchesUnfused) {
  for (const std::size_t n : {1u, 37u, 4096u, 10001u}) {
    const std::vector<double> av = random_vector(n, 1);
    const std::vector<double> p1 = random_vector(n, 2);
    const std::vector<double> p2 = random_vector(n, 3);
    for (const double theta : {0.0, 0.8}) {
      for (const double sigma : {0.0, 0.3}) {
        for (const double gamma : {1.0, 2.5}) {
          for (const bool with_p2 : {false, true}) {
            std::vector<double> fused(n), unfused(n);
            {
              const la::FusedKernelsGuard guard(true);
              la::shift_combine(fused.data(), av.data(), theta, p1.data(),
                                sigma, with_p2 ? p2.data() : nullptr, gamma,
                                n);
            }
            {
              const la::FusedKernelsGuard guard(false);
              la::shift_combine(unfused.data(), av.data(), theta, p1.data(),
                                sigma, with_p2 ? p2.data() : nullptr, gamma,
                                n);
            }
            expect_bitwise(fused, unfused, "shift_combine");
          }
        }
      }
    }
  }
}

// axpy_pair must reproduce ((y + a1 x1) + a2 x2) exactly.
TEST(FusedKernelsTest, AxpyPairBitwiseMatchesTwoAxpys) {
  const std::size_t n = 3333;
  const std::vector<double> x1 = random_vector(n, 11);
  const std::vector<double> x2 = random_vector(n, 12);
  std::vector<double> y_pair = random_vector(n, 13);
  std::vector<double> y_ref = y_pair;
  la::axpy_pair(y_pair.data(), 0.7, x1.data(), -1.3, x2.data(), n);
  la::axpy(y_ref.data(), 0.7, x1.data(), n);
  la::axpy(y_ref.data(), -1.3, x2.data(), n);
  expect_bitwise(y_pair, y_ref, "axpy_pair");
}

// shift_combine_with_dots: the same-sweep dot partials must match dots
// computed after the fact.
TEST(FusedKernelsTest, ShiftCombineWithDotsMatchesSeparateDots) {
  const std::size_t n = 5000;
  const std::vector<double> av = random_vector(n, 21);
  const std::vector<double> p1 = random_vector(n, 22);
  const std::vector<double> p2 = random_vector(n, 23);
  const std::vector<double> o1 = random_vector(n, 24);
  const std::vector<double> o2 = random_vector(n, 25);
  const double* others[] = {o1.data(), o2.data()};
  std::vector<double> dst(n), partials(2);
  la::shift_combine_with_dots(dst.data(), av.data(), 0.5, p1.data(), 0.25,
                              p2.data(), 1.5, n, others, partials);
  std::vector<double> dst_ref(n), dots_ref(2);
  la::shift_combine(dst_ref.data(), av.data(), 0.5, p1.data(), 0.25,
                    p2.data(), 1.5, n);
  const la::DotView views[] = {{dst_ref.data(), o1.data()},
                               {dst_ref.data(), o2.data()}};
  la::dot_batch(views, n, dots_ref);
  expect_bitwise(dst, dst_ref, "with_dots dst");
  expect_bitwise(partials, dots_ref, "with_dots partials");
}

// --- end-to-end parity: s-step solves under the fusion toggle ----------

// The strongest form of the fusion contract: full s-step solves (the dot
// batches, the basis chains, the block combines) produce bitwise-identical
// iterates whether the fused kernels are on or off, for every basis family
// and s the paper sweeps.
TEST(FusedKernelsTest, SstepSolvesBitwiseInvariantUnderFusion) {
  const CsrMatrix a = sparse::make_poisson125_csr(5);
  const precond::JacobiPreconditioner pc(a);
  for (const char* method : {"pscg", "pipe-pscg"}) {
    for (const krylov::BasisType basis :
         {krylov::BasisType::kMonomial, krylov::BasisType::kNewton,
          krylov::BasisType::kChebyshev}) {
      for (const int s : {2, 4, 8}) {
        std::vector<std::vector<double>> solutions;
        std::vector<std::size_t> iterations;
        for (const bool fused : {true, false}) {
          const la::FusedKernelsGuard guard(fused);
          krylov::SerialEngine engine(a, &pc);
          krylov::Vec ones = engine.new_vec();
          for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
          krylov::Vec b = engine.new_vec();
          engine.apply_op(ones, b);
          krylov::Vec x = engine.new_vec();
          krylov::SolverOptions opts;
          opts.rtol = 1e-8;
          opts.s = s;
          opts.max_iterations = 400;
          opts.basis.type = basis;
          const auto stats =
              krylov::make_solver(method)->solve(engine, b, x, opts);
          solutions.emplace_back(x.data(), x.data() + x.size());
          iterations.push_back(stats.iterations);
        }
        EXPECT_EQ(iterations[0], iterations[1])
            << method << " basis=" << static_cast<int>(basis) << " s=" << s;
        expect_bitwise(solutions[0], solutions[1], method);
      }
    }
  }
}

// --- memory-pass counters ----------------------------------------------

// The headline claim, pinned: a fused dot batch is ONE pass regardless of
// pair count (unfused: one per pair), a fused basis step is ONE pass
// (unfused: copy + 2 axpys + scale = 4).
TEST(KernelStatsTest, FusionCollapsesMemoryPasses) {
  const std::size_t n = 4096;
  const std::vector<double> x = random_vector(n, 31);
  const std::vector<double> y = random_vector(n, 32);
  std::vector<la::DotView> views(18, la::DotView{x.data(), y.data()});
  std::vector<double> out(views.size());
  la::KernelStats& stats = la::kernel_stats();

  {
    const la::FusedKernelsGuard guard(false);
    stats.reset();
    la::dot_batch(views, n, out);
    EXPECT_EQ(stats.dot_batches, 1u);
    EXPECT_EQ(stats.dot_sweeps, views.size());
  }
  {
    const la::FusedKernelsGuard guard(true);
    stats.reset();
    la::dot_batch(views, n, out);
    EXPECT_EQ(stats.dot_batches, 1u);
    EXPECT_EQ(stats.dot_sweeps, 1u);
  }

  std::vector<double> dst(n);
  const std::vector<double> av = random_vector(n, 33);
  {
    const la::FusedKernelsGuard guard(false);
    stats.reset();
    la::shift_combine(dst.data(), av.data(), 0.5, x.data(), 0.25, y.data(),
                      1.5, n);
    EXPECT_EQ(stats.basis_steps, 1u);
    EXPECT_EQ(stats.basis_passes, 4u);  // copy + axpy + axpy + scale
  }
  {
    const la::FusedKernelsGuard guard(true);
    stats.reset();
    la::shift_combine(dst.data(), av.data(), 0.5, x.data(), 0.25, y.data(),
                      1.5, n);
    EXPECT_EQ(stats.basis_steps, 1u);
    EXPECT_EQ(stats.basis_passes, 1u);
  }
  // Monomial basis (all guards off) is a plain copy either way: one pass.
  {
    const la::FusedKernelsGuard guard(false);
    stats.reset();
    la::shift_combine(dst.data(), av.data(), 0.0, x.data(), 0.0, nullptr,
                      1.0, n);
    EXPECT_EQ(stats.basis_passes, 1u);
  }
}

// The engine dot batch routes through la::dot_batch: one sweep per batch
// fused, one per pair unfused -- this is the per-outer-iteration count the
// s-step drivers pay.
TEST(KernelStatsTest, EngineDotsAreOneSweepWhenFused) {
  const CsrMatrix a = sparse::make_ecology2_like(13, 11);
  krylov::SerialEngine engine(a);
  krylov::VecBlock block = engine.new_block(7);
  std::vector<krylov::DotPair> pairs;
  for (std::size_t i = 0; i < block.size(); ++i)
    pairs.push_back(krylov::DotPair{&block[i], &block[i]});
  std::vector<double> out(pairs.size());
  la::KernelStats& stats = la::kernel_stats();
  {
    const la::FusedKernelsGuard guard(true);
    stats.reset();
    engine.dots(pairs, out);
    EXPECT_EQ(stats.dot_sweeps, 1u);
  }
  {
    const la::FusedKernelsGuard guard(false);
    stats.reset();
    engine.dots(pairs, out);
    EXPECT_EQ(stats.dot_sweeps, pairs.size());
  }
}

// --- byte models --------------------------------------------------------

// bench_kernels, DistCsr, and SellMatrix must all report the SAME byte
// models (sparse/bytes_model.hpp) -- the dedup satellite.
TEST(BytesModelTest, OperatorsReportSharedModel) {
  const CsrMatrix a = sparse::make_thermal2_like(11, 13);

  const SellMatrix sell(a);
  const std::size_t chunks = (a.rows() + sell.chunk() - 1) / sell.chunk();
  EXPECT_EQ(sell.bytes_per_apply(),
            sparse::sell_apply_bytes(a.rows(), a.cols(), sell.slots(),
                                     chunks));

  for (const int p : {1, 2, 3}) {
    const Partition part(a.rows(), p);
    par::Team::run(p, [&](par::Comm& comm) {
      const DistCsr dist(a, part, comm.rank());
      EXPECT_EQ(dist.bytes_per_apply(),
                sparse::csr_apply_bytes(
                    dist.local_rows(),
                    dist.local_rows() + dist.ghost_count(),
                    dist.local_nnz()));
      const DistCsr dist_sell(a, part, comm.rank(), SparseFormat::kSell);
      // SELL format: int32 columns, padded slots -- fewer bytes than the
      // int64 CSR on these shapes (that is the point of the format).
      EXPECT_LT(dist_sell.bytes_per_apply(), dist.bytes_per_apply());
    });
  }
}

}  // namespace
