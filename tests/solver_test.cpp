// Solver correctness tests on the SerialEngine: every method must solve
// small SPD systems to tolerance, and the s-step variants must agree with
// plain PCG on the solution.
#include <gtest/gtest.h>

#include <cmath>

#include "pipescg/pipescg.hpp"

namespace pipescg {
namespace {

using krylov::NormType;
using krylov::SerialEngine;
using krylov::SolverOptions;
using krylov::SolveStats;
using krylov::Vec;

sparse::CsrMatrix poisson2d(std::size_t n) {
  return sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n,
                                    "poisson2d");
}

/// Solve with x* = ones as the manufactured solution; returns the stats and
/// max |x_i - 1|.
struct RunResult {
  SolveStats stats;
  double x_error;
};

RunResult run(const std::string& method, const sparse::CsrMatrix& a,
              const precond::Preconditioner* pc, SolverOptions opts) {
  sim::EventTrace trace;
  const precond::Preconditioner* effective =
      krylov::solver_uses_preconditioner(method) ? pc : nullptr;
  SerialEngine engine(a, effective, &trace);
  Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  Vec b = engine.new_vec();
  a.apply(ones.span(), b.span());
  Vec x = engine.new_vec();
  opts.compute_true_residual = true;
  RunResult result;
  result.stats = krylov::make_solver(method)->solve(engine, b, x, opts);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    err = std::max(err, std::abs(x[i] - 1.0));
  result.x_error = err;
  return result;
}

class AllMethodsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllMethodsTest, ConvergesOnPoisson2D) {
  const sparse::CsrMatrix a = poisson2d(24);
  precond::JacobiPreconditioner pc(a);
  SolverOptions opts;
  opts.rtol = 1e-8;
  opts.max_iterations = 5000;
  const RunResult r = run(GetParam(), a, &pc, opts);
  EXPECT_TRUE(r.stats.converged) << GetParam() << " did not converge";
  EXPECT_FALSE(r.stats.breakdown);
  // True residual should honor the tolerance within a modest safety factor
  // (recurred residuals drift below the true residual in pipelined methods).
  EXPECT_LT(r.stats.true_residual, 100 * opts.rtol * r.stats.b_norm)
      << GetParam();
  EXPECT_LT(r.x_error, 1e-5) << GetParam();
}

TEST_P(AllMethodsTest, IterationCountComparableToPcg) {
  const sparse::CsrMatrix a = poisson2d(16);
  precond::JacobiPreconditioner pc(a);
  SolverOptions opts;
  opts.rtol = 1e-6;
  opts.max_iterations = 5000;
  const RunResult ref = run("pcg", a, &pc, opts);
  const RunResult r = run(GetParam(), a, &pc, opts);
  ASSERT_TRUE(ref.stats.converged);
  ASSERT_TRUE(r.stats.converged) << GetParam();
  // Mathematically equivalent Krylov methods: iteration counts may differ by
  // the s-granularity of the convergence check plus finite-precision noise.
  EXPECT_LE(r.stats.iterations, 2 * ref.stats.iterations + 20) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Methods, AllMethodsTest,
    ::testing::Values("pcg", "pipecg", "pipecg3", "pipecg-oati", "scg",
                      "pscg", "scg-sspmv", "pipe-scg", "pipe-pscg", "hybrid"),
    [](const auto& info) {
      std::string n = info.param;
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

class SSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SSweepTest, PipePscgConvergesForEveryS) {
  const sparse::CsrMatrix a = poisson2d(20);
  precond::JacobiPreconditioner pc(a);
  SolverOptions opts;
  opts.rtol = 1e-7;
  opts.s = GetParam();
  opts.max_iterations = 5000;
  const RunResult r = run("pipe-pscg", a, &pc, opts);
  EXPECT_TRUE(r.stats.converged) << "s=" << GetParam();
  EXPECT_LT(r.x_error, 1e-4) << "s=" << GetParam();
}

TEST_P(SSweepTest, PipeScgConvergesForEveryS) {
  const sparse::CsrMatrix a = poisson2d(20);
  SolverOptions opts;
  opts.rtol = 1e-7;
  opts.s = GetParam();
  opts.max_iterations = 5000;
  const RunResult r = run("pipe-scg", a, nullptr, opts);
  EXPECT_TRUE(r.stats.converged) << "s=" << GetParam();
  EXPECT_LT(r.x_error, 1e-4) << "s=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(S, SSweepTest, ::testing::Values(1, 2, 3, 4, 5));

class NormFlavorTest : public ::testing::TestWithParam<NormType> {};

TEST_P(NormFlavorTest, PipePscgSupportsAllNorms) {
  const sparse::CsrMatrix a = poisson2d(16);
  precond::JacobiPreconditioner pc(a);
  SolverOptions opts;
  opts.rtol = 1e-7;
  opts.norm = GetParam();
  const RunResult r = run("pipe-pscg", a, &pc, opts);
  EXPECT_TRUE(r.stats.converged) << to_string(GetParam());
  EXPECT_LT(r.x_error, 1e-4);
}

TEST_P(NormFlavorTest, PcgSupportsAllNorms) {
  const sparse::CsrMatrix a = poisson2d(16);
  precond::JacobiPreconditioner pc(a);
  SolverOptions opts;
  opts.rtol = 1e-7;
  opts.norm = GetParam();
  const RunResult r = run("pcg", a, &pc, opts);
  EXPECT_TRUE(r.stats.converged);
}

INSTANTIATE_TEST_SUITE_P(Norms, NormFlavorTest,
                         ::testing::Values(NormType::kPreconditioned,
                                           NormType::kUnpreconditioned,
                                           NormType::kNatural),
                         [](const auto& info) { return to_string(info.param); });

TEST(SolverTest, ZeroRhsConvergesImmediately) {
  const sparse::CsrMatrix a = poisson2d(8);
  SerialEngine engine(a);
  Vec b = engine.new_vec();  // zero
  Vec x = engine.new_vec();
  SolverOptions opts;
  opts.atol = 1e-12;  // rtol * ||b|| = 0, atol takes over
  const SolveStats stats = krylov::make_solver("pcg")->solve(engine, b, x, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0u);
}

class InitialGuessTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InitialGuessTest, ExactGuessConvergesImmediately) {
  const sparse::CsrMatrix a = poisson2d(12);
  precond::JacobiPreconditioner pc(a);
  const std::string method = GetParam();
  SerialEngine engine(
      a, krylov::solver_uses_preconditioner(method) ? &pc : nullptr);
  Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  Vec b = engine.new_vec();
  a.apply(ones.span(), b.span());
  Vec x = engine.new_vec();
  engine.copy(ones, x);
  SolverOptions opts;
  opts.rtol = 1e-8;
  const SolveStats stats =
      krylov::make_solver(method)->solve(engine, b, x, opts);
  EXPECT_TRUE(stats.converged) << method;
  EXPECT_EQ(stats.iterations, 0u) << method;
}

TEST_P(InitialGuessTest, WarmStartDoesNotIncreaseIterationsMuch) {
  const sparse::CsrMatrix a = poisson2d(16);
  precond::JacobiPreconditioner pc(a);
  const std::string method = GetParam();
  auto solve_from = [&](double perturbation) {
    SerialEngine engine(
        a, krylov::solver_uses_preconditioner(method) ? &pc : nullptr);
    Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    Vec b = engine.new_vec();
    a.apply(ones.span(), b.span());
    Vec x = engine.new_vec();
    for (std::size_t i = 0; i < x.size(); ++i)
      x[i] = 1.0 - perturbation * (i % 7 == 0 ? 1.0 : 0.1);
    SolverOptions opts;
    opts.rtol = 1e-8;
    const SolveStats stats =
        krylov::make_solver(method)->solve(engine, b, x, opts);
    EXPECT_TRUE(stats.converged) << method;
    return stats.iterations;
  };
  const std::size_t warm = solve_from(1e-6);
  const std::size_t cold = solve_from(1.0);
  EXPECT_LT(warm, cold) << method;
}

INSTANTIATE_TEST_SUITE_P(
    Methods, InitialGuessTest,
    ::testing::Values("pcg", "pipecg", "pipecg-oati", "pscg", "scg-sspmv",
                      "pipe-scg", "pipe-pscg"),
    [](const auto& info) {
      std::string n = info.param;
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(SolverTest, HonorsInitialGuess) {
  const sparse::CsrMatrix a = poisson2d(12);
  SerialEngine engine(a);
  Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  Vec b = engine.new_vec();
  a.apply(ones.span(), b.span());
  Vec x = engine.new_vec();
  engine.copy(ones, x);  // exact solution as the initial guess
  SolverOptions opts;
  opts.rtol = 1e-10;
  const SolveStats stats =
      krylov::make_solver("pipe-pscg")->solve(engine, b, x, opts);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.iterations, 0u);
}

TEST(SolverTest, MaxIterationsRespected) {
  const sparse::CsrMatrix a = poisson2d(24);
  SerialEngine engine(a);
  Vec b = engine.new_vec();
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0;
  Vec x = engine.new_vec();
  SolverOptions opts;
  opts.rtol = 1e-14;
  opts.max_iterations = 6;
  const SolveStats stats = krylov::make_solver("pcg")->solve(engine, b, x, opts);
  EXPECT_FALSE(stats.converged);
  EXPECT_LE(stats.iterations, 6u);
}

TEST(SolverTest, HistoryIsRecordedAndDecreasesOverall) {
  const sparse::CsrMatrix a = poisson2d(20);
  precond::JacobiPreconditioner pc(a);
  SolverOptions opts;
  opts.rtol = 1e-8;
  const RunResult r = run("pipe-pscg", a, &pc, opts);
  ASSERT_GE(r.stats.history.size(), 3u);
  EXPECT_LT(r.stats.history.back().second, r.stats.history.front().second);
}

TEST(SolverTest, SpectrumEstimateTracksOperatorConditioning) {
  // Jacobi-preconditioned 5-pt Laplacian: lambda in (0, 2), kappa ~ known.
  const sparse::CsrMatrix a = poisson2d(20);
  precond::JacobiPreconditioner pc(a);
  SerialEngine engine(a, &pc);
  Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  Vec b = engine.new_vec();
  a.apply(ones.span(), b.span());
  Vec x = engine.new_vec();
  SolverOptions opts;
  opts.rtol = 1e-10;
  opts.estimate_spectrum = true;
  const SolveStats stats = krylov::make_solver("pcg")->solve(engine, b, x, opts);
  ASSERT_TRUE(stats.converged);
  EXPECT_GT(stats.lambda_min_est, 0.0);
  EXPECT_LT(stats.lambda_max_est, 2.01);  // D^{-1}A spectrum bound
  EXPECT_GT(stats.lambda_max_est, 1.5);
  // kappa(D^{-1}A) for the 20x20 5-pt Laplacian is ~180.
  EXPECT_GT(stats.condition_est, 50.0);
  EXPECT_LT(stats.condition_est, 400.0);
}

TEST(SolverTest, SpectrumEstimateOffByDefault) {
  const sparse::CsrMatrix a = poisson2d(8);
  SerialEngine engine(a);
  Vec b = engine.new_vec();
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0;
  Vec x = engine.new_vec();
  const SolveStats stats =
      krylov::make_solver("pcg")->solve(engine, b, x, SolverOptions{});
  EXPECT_LT(stats.condition_est, 0.0);
}

TEST(SolverTest, UnknownSolverNameThrows) {
  EXPECT_THROW(krylov::make_solver("bogus"), Error);
}

TEST(SolverTest, StagnationDetectionStopsPipelinedSstep) {
  // An extremely ill-conditioned problem at a tight tolerance: PIPE-PsCG's
  // recurred residual should stall before reaching it, and the detector
  // should fire rather than loop to max_iterations.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(48, 48);
  precond::JacobiPreconditioner pc(a);
  SolverOptions opts;
  opts.rtol = 1e-13;
  opts.detect_stagnation = true;
  opts.max_iterations = 200000;
  const RunResult r = run("pipe-pscg", a, &pc, opts);
  EXPECT_TRUE(r.stats.stagnated || r.stats.converged);
  EXPECT_LT(r.stats.iterations, opts.max_iterations);
}

TEST(SolverTest, HybridReachesTighterToleranceThanPipePscg) {
  const sparse::CsrMatrix a = sparse::make_ecology2_like(48, 48);
  precond::JacobiPreconditioner pc(a);
  SolverOptions opts;
  opts.rtol = 1e-9;
  opts.max_iterations = 100000;
  const RunResult hybrid = run("hybrid", a, &pc, opts);
  EXPECT_TRUE(hybrid.stats.converged)
      << "hybrid should reach what PIPE-PsCG alone may not";
}

}  // namespace
}  // namespace pipescg
