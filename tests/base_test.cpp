// Unit tests for base utilities: error handling, CLI parsing, RNG, timer.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "pipescg/base/cli.hpp"
#include "pipescg/base/error.hpp"
#include "pipescg/base/log.hpp"
#include "pipescg/base/rng.hpp"
#include "pipescg/base/timer.hpp"

namespace pipescg {
namespace {

TEST(ErrorTest, CheckThrowsWithContext) {
  try {
    PIPESCG_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("base_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(PIPESCG_CHECK(true, "never"));
}

TEST(ErrorTest, FailAlwaysThrows) {
  EXPECT_THROW(PIPESCG_FAIL("boom"), Error);
}

TEST(CliTest, ParsesOptionsAndFlags) {
  CliParser cli("prog", "test");
  cli.add_option("n", "10", "size");
  cli.add_option("tol", "1e-5", "tolerance");
  cli.add_option("name", "abc", "label");
  cli.add_flag("verbose", "talk");
  const char* argv[] = {"prog", "--n", "42", "--tol=2.5", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.integer("n"), 42);
  EXPECT_DOUBLE_EQ(cli.real("tol"), 2.5);
  EXPECT_EQ(cli.str("name"), "abc");
  EXPECT_TRUE(cli.flag("verbose"));
}

TEST(CliTest, DefaultsApplyWhenAbsent) {
  CliParser cli("prog", "test");
  cli.add_option("n", "7", "size");
  cli.add_flag("quiet", "hush");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.integer("n"), 7);
  EXPECT_FALSE(cli.flag("quiet"));
}

TEST(CliTest, RejectsUnknownOption) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--wat", "1"};
  EXPECT_THROW(cli.parse(3, argv), Error);
}

TEST(CliTest, RejectsMalformedNumbers) {
  CliParser cli("prog", "test");
  cli.add_option("n", "1", "size");
  const char* argv[] = {"prog", "--n", "abc"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_THROW(cli.integer("n"), Error);
}

TEST(CliTest, MissingValueThrows) {
  CliParser cli("prog", "test");
  cli.add_option("n", "1", "size");
  const char* argv[] = {"prog", "--n"};
  EXPECT_THROW(cli.parse(2, argv), Error);
}

TEST(CliTest, HelpReturnsFalseAndListsOptions) {
  CliParser cli("prog", "does things");
  cli.add_option("n", "1", "the size knob");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.help().find("the size knob"), std::string::npos);
}

TEST(CliTest, DuplicateRegistrationThrows) {
  CliParser cli("prog", "test");
  cli.add_option("n", "1", "size");
  EXPECT_THROW(cli.add_flag("n", "again"), Error);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(RngTest, NextBelowCoversRangeWithoutBias) {
  Rng rng(77);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(RngTest, NormalHasRoughlyUnitMoments) {
  Rng rng(4242);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng root(10);
  Rng s1 = root.split(1);
  Rng s2 = root.split(2);
  Rng s1_again = Rng(10).split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double e = t.seconds();
  EXPECT_GE(e, 0.005);
  EXPECT_LT(e, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.5);
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double total = 0.0;
  {
    ScopedTimer t(total);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_DOUBLE_EQ(total, 0.0);  // only added on destruction
  }
  const double after_first = total;
  EXPECT_GE(after_first, 0.002);
  {
    ScopedTimer t(total);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(total, after_first);  // accumulates across scopes
}

TEST(LogTest, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

TEST(LogTest, RankTagIsThreadLocal) {
  EXPECT_EQ(log_rank(), -1);  // untagged by default
  set_log_rank(3);
  EXPECT_EQ(log_rank(), 3);
  int other = 3;
  std::thread([&] { other = log_rank(); }).join();
  EXPECT_EQ(other, -1);  // tags do not leak across threads
  set_log_rank(-1);
  EXPECT_EQ(log_rank(), -1);
}

}  // namespace
}  // namespace pipescg
