// Unit tests for the small dense linear algebra used by the s-step scalar
// work and the multigrid coarse solver.
#include <gtest/gtest.h>

#include <cmath>

#include "pipescg/base/rng.hpp"
#include "pipescg/la/cholesky.hpp"
#include "pipescg/la/dense_matrix.hpp"
#include "pipescg/la/lu.hpp"
#include "pipescg/la/tridiagonal.hpp"

namespace pipescg::la {
namespace {

DenseMatrix random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

DenseMatrix random_spd(std::size_t n, std::uint64_t seed) {
  const DenseMatrix b = random_matrix(n, seed);
  DenseMatrix spd = b * b.transposed();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
  return spd;
}

TEST(DenseMatrixTest, IdentityAndMultiply) {
  const DenseMatrix eye = DenseMatrix::identity(4);
  const DenseMatrix a = random_matrix(4, 1);
  EXPECT_LT(DenseMatrix::max_abs_diff(a * eye, a), 1e-15);
  EXPECT_LT(DenseMatrix::max_abs_diff(eye * a, a), 1e-15);
}

TEST(DenseMatrixTest, MultiplyMatchesManual) {
  const DenseMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const DenseMatrix b(3, 2, {7, 8, 9, 10, 11, 12});
  const DenseMatrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(DenseMatrixTest, ShapeMismatchThrows) {
  const DenseMatrix a(2, 3);
  const DenseMatrix b(2, 3);
  EXPECT_THROW(a * b, Error);
  DenseMatrix c(3, 3);
  EXPECT_THROW(c.add_scaled(a, 1.0), Error);
}

TEST(DenseMatrixTest, TransposeInvolution) {
  const DenseMatrix a = random_matrix(5, 2);
  EXPECT_LT(DenseMatrix::max_abs_diff(a.transposed().transposed(), a), 1e-15);
}

TEST(DenseMatrixTest, ApplyMatchesMultiply) {
  const DenseMatrix a = random_matrix(6, 3);
  std::vector<double> x(6);
  Rng rng(4);
  for (auto& v : x) v = rng.uniform(-2, 2);
  const std::vector<double> y = a.apply(x);
  for (std::size_t i = 0; i < 6; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < 6; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(y[i], acc, 1e-14);
  }
}

TEST(DenseMatrixTest, SymmetrizeMakesSymmetric) {
  DenseMatrix a = random_matrix(5, 7);
  a.symmetrize();
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
}

class LuSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(LuSizeTest, SolvesRandomSystems) {
  const std::size_t n = static_cast<std::size_t>(GetParam());
  const DenseMatrix a = random_spd(n, 100 + n);
  Rng rng(5);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  const std::vector<double> b = a.apply(x_true);
  const std::vector<double> x = lu_solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizeTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33));

TEST(LuTest, RequiresPivoting) {
  // Zero leading pivot forces a row swap.
  const DenseMatrix a(2, 2, {0, 1, 1, 0});
  const std::vector<double> x = lu_solve(a, {3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(LuTest, SingularThrows) {
  const DenseMatrix a(2, 2, {1, 2, 2, 4});
  EXPECT_THROW(LuFactorization{a}, Error);
}

TEST(LuTest, DeterminantMatchesKnown) {
  const DenseMatrix a(2, 2, {3, 1, 4, 2});
  EXPECT_NEAR(LuFactorization(a).determinant(), 2.0, 1e-12);
  const DenseMatrix swap(2, 2, {0, 1, 1, 0});
  EXPECT_NEAR(LuFactorization(swap).determinant(), -1.0, 1e-12);
}

TEST(LuTest, MatrixRhsSolve) {
  const DenseMatrix a = random_spd(4, 9);
  const DenseMatrix x_true = random_matrix(4, 10);
  const DenseMatrix b = a * x_true;
  const DenseMatrix x = LuFactorization(a).solve(b);
  EXPECT_LT(DenseMatrix::max_abs_diff(x, x_true), 1e-9);
}

TEST(LuTest, DiagRcondSignalsConditioning) {
  const DenseMatrix good = DenseMatrix::identity(3);
  EXPECT_NEAR(LuFactorization(good).diag_rcond(), 1.0, 1e-12);
  DenseMatrix bad = DenseMatrix::identity(3);
  bad(2, 2) = 1e-14;
  EXPECT_LT(LuFactorization(bad).diag_rcond(), 1e-10);
}

TEST(CholeskyTest, SolvesSpdSystems) {
  const DenseMatrix a = random_spd(12, 21);
  Rng rng(6);
  std::vector<double> x_true(12);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  const std::vector<double> b = a.apply(x_true);
  const std::vector<double> x = CholeskyFactorization(a).solve(b);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(CholeskyTest, FactorReproducesMatrix) {
  const DenseMatrix a = random_spd(6, 33);
  const CholeskyFactorization chol(a);
  const DenseMatrix l = chol.lower();
  EXPECT_LT(DenseMatrix::max_abs_diff(l * l.transposed(), a), 1e-9);
}

TEST(CholeskyTest, RejectsIndefinite) {
  DenseMatrix a = DenseMatrix::identity(3);
  a(1, 1) = -1.0;
  EXPECT_THROW(CholeskyFactorization{a}, Error);
}

TEST(CholeskyTest, IsSpdPredicate) {
  EXPECT_TRUE(is_spd(random_spd(5, 3)));
  DenseMatrix asym = random_spd(5, 3);
  asym(0, 1) += 1.0;  // break symmetry
  EXPECT_FALSE(is_spd(asym));
  DenseMatrix indef = DenseMatrix::identity(4);
  indef(2, 2) = -4.0;
  EXPECT_FALSE(is_spd(indef));
}

TEST(CholeskyTest, ThrowsTypedNotSpdErrorWithPivotLocation) {
  DenseMatrix a = DenseMatrix::identity(3);
  a(1, 1) = -1.0;
  try {
    CholeskyFactorization chol(a);
    FAIL() << "expected NotSpdError";
  } catch (const NotSpdError& e) {
    EXPECT_EQ(e.pivot(), 1u);
    EXPECT_LT(e.pivot_value(), 0.0);
  }
}

TEST(CholeskyTest, TryFactorSoftFailsInsteadOfThrowing) {
  // SPD input: a factorization that solves.
  const DenseMatrix a = random_spd(8, 77);
  const auto chol = CholeskyFactorization::try_factor(a);
  ASSERT_TRUE(chol.has_value());
  Rng rng(5);
  std::vector<double> x_true(8);
  for (auto& v : x_true) v = rng.uniform(-1, 1);
  const std::vector<double> x = chol->solve(a.apply(x_true));
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);

  // Indefinite input: nullopt, no exception, no NaNs escaping.
  DenseMatrix indef = DenseMatrix::identity(4);
  indef(2, 2) = -4.0;
  EXPECT_FALSE(CholeskyFactorization::try_factor(indef).has_value());
}

TEST(CholeskyTest, TryFactorRelativePivotThresholdDetectsNearSingular) {
  // A Gram matrix whose columns have nearly collapsed: the trailing pivot
  // is ~1e-16 of the leading diagonal.  A plain factorization would accept
  // it (the pivot is still positive); the relative threshold rejects it.
  DenseMatrix g = DenseMatrix::identity(3);
  g(0, 0) = 1.0;
  g(1, 1) = 1.0;
  g(2, 2) = 1e-16;
  EXPECT_TRUE(CholeskyFactorization::try_factor(g).has_value());
  EXPECT_FALSE(CholeskyFactorization::try_factor(g, 1e-13).has_value());
  // Non-finite entries are a hard reject at any threshold.
  g(2, 2) = std::nan("");
  EXPECT_FALSE(CholeskyFactorization::try_factor(g).has_value());
}

TEST(TridiagonalTest, SturmCountsEigenvaluesBelowX) {
  // T = tridiag(-1, 2, -1), n = 4: eigenvalues 2 - 2 cos(k pi / 5).
  const std::vector<double> diag(4, 2.0), off(3, -1.0);
  EXPECT_EQ(tridiagonal_sturm_count(diag, off, 0.0), 0u);
  EXPECT_EQ(tridiagonal_sturm_count(diag, off, 1.0), 1u);
  EXPECT_EQ(tridiagonal_sturm_count(diag, off, 2.0), 2u);
  EXPECT_EQ(tridiagonal_sturm_count(diag, off, 5.0), 4u);
}

TEST(TridiagonalTest, ExtremeEigenvaluesMatchAnalytic) {
  const std::size_t n = 20;
  const std::vector<double> diag(n, 2.0), off(n - 1, -1.0);
  const auto [lmin, lmax] = tridiagonal_extreme_eigenvalues(diag, off);
  const double expected_min = 2.0 - 2.0 * std::cos(M_PI / (n + 1.0));
  const double expected_max =
      2.0 - 2.0 * std::cos(n * M_PI / (n + 1.0));
  EXPECT_NEAR(lmin, expected_min, 1e-8);
  EXPECT_NEAR(lmax, expected_max, 1e-8);
}

TEST(TridiagonalTest, DiagonalMatrixEigenvaluesAreDiagonal) {
  const std::vector<double> diag{3.0, -1.0, 7.0};
  const std::vector<double> off{0.0, 0.0};
  const auto [lmin, lmax] = tridiagonal_extreme_eigenvalues(diag, off);
  EXPECT_NEAR(lmin, -1.0, 1e-9);
  EXPECT_NEAR(lmax, 7.0, 1e-9);
}

}  // namespace
}  // namespace pipescg::la
