// Metrics-registry tests: Prometheus exposition determinism (escaping,
// label ordering, family/series sort), cross-rank registration against the
// profiler's uniformity contract, snapshot/report parity, fault-metric
// agreement with the JSON report fields, and sampler thread-safety (the
// test TSan certifies: rank threads record into atomic cells while the
// sampler renders snapshots).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "pipescg/base/error.hpp"
#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/report.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/stencil.hpp"

namespace pipescg::obs::metrics {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// --- exposition determinism ------------------------------------------------

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  Registry registry;
  registry.counter("pipescg_test_total", "h", {{"b", "2"}, {"a", "1"}}).inc();
  registry.counter("pipescg_test_total", "h", {{"a", "1"}, {"b", "2"}}).inc();
  const std::string text = registry.prometheus();
  // Both registrations hit the same cell, rendered once with sorted keys.
  EXPECT_NE(text.find("pipescg_test_total{a=\"1\",b=\"2\"} 2"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("{b="), std::string::npos) << text;
}

TEST(MetricsRegistryTest, EscapesLabelValuesAndHelp) {
  Registry registry;
  registry
      .gauge("pipescg_escape", "help with \\ and\nnewline",
             {{"path", "a\\b\"c\nd"}})
      .set(1.0);
  const std::string text = registry.prometheus();
  EXPECT_NE(text.find("# HELP pipescg_escape help with \\\\ and\\nnewline"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("{path=\"a\\\\b\\\"c\\nd\"} 1"), std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, FamiliesAndSeriesRenderSorted) {
  Registry registry;
  registry.gauge("pipescg_zz", "last", {}).set(1.0);
  registry.gauge("pipescg_aa", "first", {{"rank", "1"}}).set(2.0);
  registry.gauge("pipescg_aa", "first", {{"rank", "0"}}).set(3.0);
  const std::string text = registry.prometheus();
  const std::size_t aa = text.find("# HELP pipescg_aa");
  const std::size_t zz = text.find("# HELP pipescg_zz");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);
  EXPECT_LT(text.find("rank=\"0\""), text.find("rank=\"1\""));
}

TEST(MetricsRegistryTest, IdenticalRegistrationsRenderByteIdentical) {
  const auto build = [] {
    Registry registry;
    registry.counter("pipescg_c_total", "c", {{"method", "pipe-pscg"}})
        .add(41.0);
    registry.gauge("pipescg_g", "g", {}).set(2.5e-9);
    Histogram& h = registry.histogram("pipescg_h_seconds", "h", {});
    h.observe(3e-9);
    h.observe(1e-6);
    return registry.prometheus();
  };
  EXPECT_EQ(build(), build());
}

TEST(MetricsRegistryTest, TypeConflictThrows) {
  Registry registry;
  registry.counter("pipescg_typed_total", "h", {});
  EXPECT_THROW(registry.gauge("pipescg_typed_total", "h", {}), Error);
}

TEST(MetricsRegistryTest, HistogramExposesCumulativeBucketsAndQuantiles) {
  Registry registry;
  Histogram& h = registry.histogram("pipescg_lat_seconds", "h", {});
  for (int i = 0; i < 100; ++i) h.observe(1e-6);  // bucket [2^9, 2^10) ns
  h.observe(1e-3);
  const std::string text = registry.prometheus();
  EXPECT_NE(text.find("pipescg_lat_seconds_bucket{le=\"+Inf\"} 101"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pipescg_lat_seconds_count 101"), std::string::npos);
  const json::Value doc = registry.to_json();
  const json::Value& series =
      doc.at("pipescg_lat_seconds").at("series").at(std::size_t{0});
  EXPECT_EQ(series.at("count").as_number(), 101.0);
  const double p50 = series.at("p50_seconds").as_number();
  EXPECT_GE(p50, 512e-9);
  EXPECT_LT(p50, 1024e-9);
}

// --- cross-rank registration vs the profiler uniformity contract -----------

struct SpmdArtifacts {
  krylov::SolveStats stats;
  SolveProfile profile{3};
};

SpmdArtifacts run_spmd(const std::string& method, int ranks) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 14, 14, "p");
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  opts.max_iterations = 2000;

  SpmdArtifacts out;
  out.profile = SolveProfile(ranks);
  const sparse::Partition part(a.rows(), ranks);
  par::Team::run(ranks, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());
    const std::vector<double> full_diag = a.diagonal();
    std::vector<double> local_diag(
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
    precond::JacobiPreconditioner local_pc(std::move(local_diag), a.stats());
    krylov::SpmdEngine engine(comm, dist, &local_pc,
                              &out.profile.rank(comm.rank()));
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    const krylov::SolveStats st =
        krylov::make_solver(method)->solve(engine, b, x, opts);
    if (comm.rank() == 0) out.stats = st;
  });
  return out;
}

double series_value(const json::Value& doc, const std::string& family,
                    const std::string& label_key,
                    const std::string& label_value) {
  const json::Value& series = doc.at(family).at("series");
  for (std::size_t i = 0; i < series.size(); ++i) {
    const json::Value& entry = series.at(i);
    if (entry.at("labels").contains(label_key) &&
        entry.at("labels").at(label_key).as_string() == label_value)
      return entry.at("value").as_number();
  }
  ADD_FAILURE() << family << " has no series with " << label_key << "="
                << label_value;
  return -1.0;
}

TEST(MetricsRegistryTest, RegisterProfileMatchesCountersUniform) {
  const SpmdArtifacts art = run_spmd("pipe-pscg", 3);
  ASSERT_TRUE(art.profile.counters_uniform());

  Registry registry;
  register_profile(registry, art.profile);
  const json::Value doc = registry.to_json();

  EXPECT_EQ(doc.at("pipescg_counters_uniform")
                .at("series")
                .at(std::size_t{0})
                .at("value")
                .as_number(),
            1.0);
  EXPECT_EQ(doc.at("pipescg_ranks")
                .at("series")
                .at(std::size_t{0})
                .at("value")
                .as_number(),
            3.0);
  // The uniformity the gauge claims is visible in the per-rank series: the
  // kernel counters inside the uniformity contract agree across ranks.
  for (const char* family :
       {"pipescg_spmvs_total", "pipescg_pc_applies_total",
        "pipescg_allreduces_total", "pipescg_iterations_total"}) {
    const double r0 = series_value(doc, family, "rank", "0");
    EXPECT_EQ(series_value(doc, family, "rank", "1"), r0) << family;
    EXPECT_EQ(series_value(doc, family, "rank", "2"), r0) << family;
    EXPECT_EQ(r0, static_cast<double>([&] {
                const Profiler::Counters& c = art.profile.rank(0).counters();
                if (std::string(family) == "pipescg_spmvs_total")
                  return c.spmvs;
                if (std::string(family) == "pipescg_pc_applies_total")
                  return c.pc_applies;
                if (std::string(family) == "pipescg_allreduces_total")
                  return c.allreduces;
                return c.iterations;
              }()))
        << family;
  }
  // spmv_bytes is legitimately rank-dependent (row-block partition) and
  // outside the uniformity contract; it still lands per rank and is > 0.
  for (const char* rank : {"0", "1", "2"})
    EXPECT_GT(series_value(doc, "pipescg_spmv_bytes_total", "rank", rank),
              0.0);
}

// --- snapshot == report parity ---------------------------------------------

TEST(MetricsReportTest, SolveReportFoldsIdenticalSnapshot) {
  const SpmdArtifacts art = run_spmd("pipe-scg", 3);

  Registry registry;
  register_stats(registry, art.stats, {{"method", "pipe-scg"}});
  register_profile(registry, art.profile, {{"method", "pipe-scg"}});

  const json::Value report =
      solve_report(art.stats, &art.profile, nullptr, nullptr, &registry);
  ASSERT_TRUE(report.contains("metrics"));
  // The folded snapshot is exactly Registry::to_json -- same keys, same
  // ordering, same shortest-round-trip values.
  EXPECT_EQ(report.at("metrics"), registry.to_json());
  EXPECT_EQ(report.at("metrics").dump(), registry.to_json().dump());

  // And the two surfaces agree on the numbers themselves.
  const json::Value& metrics = report.at("metrics");
  EXPECT_EQ(metrics.at("pipescg_solve_iterations")
                .at("series")
                .at(std::size_t{0})
                .at("value")
                .as_number(),
            report.at("stats").at("iterations").as_number());
  EXPECT_EQ(metrics.at("pipescg_solve_final_rnorm")
                .at("series")
                .at(std::size_t{0})
                .at("value")
                .as_number(),
            report.at("stats").at("final_rnorm").as_number());
}

TEST(MetricsReportTest, FaultMetricsMatchReportFields) {
  krylov::SolveStats stats;
  stats.method = "pipe-pscg";
  stats.converged = true;
  stats.iterations = 77;
  stats.recoveries = 2;

  Registry registry;
  register_stats(registry, stats);
  register_fault(registry, /*injected_faults=*/3, stats.recoveries,
                 /*watchdog_trips=*/1);

  const json::Value report =
      solve_report(stats, nullptr, nullptr, nullptr, &registry);
  const json::Value& metrics = report.at("metrics");
  const auto value = [&](const char* family) {
    return metrics.at(family)
        .at("series")
        .at(std::size_t{0})
        .at("value")
        .as_number();
  };
  EXPECT_EQ(value("pipescg_fault_injected_total"), 3.0);
  EXPECT_EQ(value("pipescg_fault_recoveries_total"),
            report.at("stats").at("recoveries").as_number());
  EXPECT_EQ(value("pipescg_watchdog_trips_total"), 1.0);
  EXPECT_EQ(value("pipescg_solve_recoveries"),
            report.at("stats").at("recoveries").as_number());
}

// --- live solve gauges ------------------------------------------------------

TEST(LiveSolveTest, CheckpointHookUpdatesGauges) {
  Registry registry;
  LiveSolve live(registry, {{"method", "pipe-pscg"}});
  {
    const LiveSolve::Install install(&live);
    ASSERT_EQ(LiveSolve::current(), &live);
    LiveSolve::current()->checkpoint(12, 3.5e-7, 3, 1);
    LiveSolve::current()->checkpoint(15, 1.5e-7, 3, 1);
  }
  EXPECT_EQ(LiveSolve::current(), nullptr);
  const json::Value doc = registry.to_json();
  const auto value = [&](const char* family) {
    return doc.at(family)
        .at("series")
        .at(std::size_t{0})
        .at("value")
        .as_number();
  };
  EXPECT_EQ(value("pipescg_live_iteration"), 15.0);
  EXPECT_DOUBLE_EQ(value("pipescg_live_rnorm"), 1.5e-7);
  EXPECT_EQ(value("pipescg_live_s"), 3.0);
  EXPECT_EQ(value("pipescg_live_recoveries"), 1.0);
  EXPECT_EQ(value("pipescg_live_checkpoints_total"), 2.0);
}

TEST(LiveSolveTest, NullInstallIsNoOp) {
  const LiveSolve::Install install(nullptr);
  EXPECT_EQ(LiveSolve::current(), nullptr);
}

// --- sampler ---------------------------------------------------------------

TEST(MetricsSamplerTest, SnapshotsWhileRecordersRun) {
  Registry registry;
  Counter& work = registry.counter("pipescg_work_total", "w", {});
  Histogram& lat = registry.histogram("pipescg_work_seconds", "w", {});

  const std::string path = ::testing::TempDir() + "metrics_sampler.prom";
  MetricsSampler sampler(registry, path, /*period_ms=*/2.0);
  sampler.start();
  sampler.start();  // idempotent

  // Two recorder threads hammer the atomic cells while the sampler renders:
  // the data-race-freedom this exercises is what TSan certifies in CI.
  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < 2; ++t)
    recorders.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        work.add(1.0);
        lat.observe(1e-7);
      }
    });
  while (sampler.samples() < 3) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : recorders) t.join();
  sampler.stop();
  sampler.stop();  // idempotent

  EXPECT_GE(sampler.samples(), 3u);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("# TYPE pipescg_work_total counter"),
            std::string::npos)
      << text;
  // The final stop() flush renders the quiesced state exactly.
  EXPECT_NE(text.find("pipescg_work_total " +
                      json::number_to_string(work.value())),
            std::string::npos)
      << text;
  std::remove(path.c_str());
}

TEST(MetricsSamplerTest, FlushWritesAnImmediateSnapshot) {
  Registry registry;
  Counter& expired = registry.counter("pipescg_live_expired_total", "e", {});
  expired.add(3.0);

  const std::string path = ::testing::TempDir() + "metrics_flush.prom";
  std::remove(path.c_str());
  // Never started: only explicit flushes write, so the file content is
  // exactly the state at flush time -- the deadline-expiry path depends on
  // this to persist terminal counters without waiting out the period.
  MetricsSampler sampler(registry, path, /*period_ms=*/60'000.0);
  sampler.flush();
  EXPECT_EQ(sampler.samples(), 1u);
  EXPECT_NE(slurp(path).find("pipescg_live_expired_total 3"),
            std::string::npos);
  expired.add(1.0);
  sampler.flush();
  EXPECT_EQ(sampler.samples(), 2u);
  EXPECT_NE(slurp(path).find("pipescg_live_expired_total 4"),
            std::string::npos);
  std::remove(path.c_str());
}

// Unescape one Prometheus label value per the exposition-format rules --
// the inverse the scrape side (and tools/pipescg_top.py) applies.
std::string prometheus_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      const char next = s[++i];
      if (next == 'n') out += '\n';
      else out += next;  // \\ and \" map to the raw character
    } else {
      out += s[i];
    }
  }
  return out;
}

TEST(MetricsRegistryTest, HostileLabelValuesRoundTripThroughExposition) {
  // Every value a shell-injected matrix path or method name could smuggle
  // in: quotes, backslashes, newlines, and the ambiguous backslash-n pair.
  const std::vector<std::string> hostile = {
      "plain",
      "quote\"inside",
      "back\\slash",
      "new\nline",
      "literal\\n pair",
      "trailing backslash \\",
      "\"\\\n mixed \\\" end",
  };
  Registry registry;
  for (std::size_t i = 0; i < hostile.size(); ++i)
    registry
        .gauge("pipescg_hostile", "h",
               {{"idx", std::to_string(i)}, {"val", hostile[i]}})
        .set(1.0);
  const std::string text = registry.prometheus();

  // Pull each series' val="..." back out of the exposition text, honoring
  // escapes while scanning for the closing quote.
  std::vector<std::string> recovered(hostile.size());
  std::size_t pos = 0;
  std::size_t found = 0;
  while ((pos = text.find("idx=\"", pos)) != std::string::npos) {
    pos += 5;
    const std::size_t idx =
        static_cast<std::size_t>(std::stoul(text.substr(pos)));
    std::size_t v = text.find("val=\"", pos);
    ASSERT_NE(v, std::string::npos);
    v += 5;
    std::string raw;
    while (v < text.size() && text[v] != '"') {
      if (text[v] == '\\') raw += text[v++];
      ASSERT_LT(v, text.size());
      raw += text[v++];
    }
    ASSERT_LT(idx, recovered.size());
    recovered[idx] = prometheus_unescape(raw);
    ++found;
    pos = v;
  }
  EXPECT_EQ(found, hostile.size());
  for (std::size_t i = 0; i < hostile.size(); ++i)
    EXPECT_EQ(recovered[i], hostile[i]) << "value " << i;
  // A raw newline inside a label value would shear the line -- every series
  // must render on exactly one line for line-oriented scrapers.
  for (const char* needle : {"pipescg_hostile{"})
    for (pos = text.find(needle); pos != std::string::npos;
         pos = text.find(needle, pos + 1)) {
      const std::size_t eol = text.find('\n', pos);
      ASSERT_NE(eol, std::string::npos);
      EXPECT_NE(text.rfind("} ", eol), std::string::npos);
    }
}

}  // namespace
}  // namespace pipescg::obs::metrics
