// Tests for the machine model, event traces, timeline replay, and the
// Table-I cost formulas.
#include <gtest/gtest.h>

#include <sstream>

#include "pipescg/base/error.hpp"
#include "pipescg/sim/auto_tune.hpp"
#include "pipescg/sim/cost_table.hpp"
#include "pipescg/sim/machine_model.hpp"
#include "pipescg/sim/timeline.hpp"
#include "pipescg/sim/trace.hpp"

namespace pipescg::sim {
namespace {

sparse::OperatorStats grid3d_stats(std::size_t n, std::size_t nnz_per_row,
                                   int halo_width) {
  sparse::OperatorStats st;
  st.rows = n * n * n;
  st.nnz = st.rows * nnz_per_row;
  st.kind = sparse::GridKind::kGrid3d;
  st.nx = st.ny = st.nz = n;
  st.halo_width = halo_width;
  return st;
}

TEST(MachineModelTest, AllreduceGrowsWithRanks) {
  const MachineModel m = MachineModel::cray_xc40_like();
  double prev = 0.0;
  for (int nodes : {1, 10, 40, 80, 120}) {
    const double g = m.allreduce_seconds(m.ranks_for_nodes(nodes), 16);
    EXPECT_GT(g, prev);
    prev = g;
  }
  EXPECT_EQ(m.allreduce_seconds(1, 16), 0.0);
}

TEST(MachineModelTest, AllreduceGrowsWithPayload) {
  const MachineModel m;
  EXPECT_GT(m.allreduce_seconds(960, 4096), m.allreduce_seconds(960, 4));
}

TEST(MachineModelTest, NonBlockingPenaltyScalesIallreduce) {
  MachineModel m;
  // Default calibration: no end-to-end penalty.
  EXPECT_NEAR(m.iallreduce_seconds(960, 16), m.allreduce_seconds(960, 16),
              1e-15);
  // The knob scales the non-blocking latency only.
  m.nonblocking_penalty = 2.5;
  EXPECT_NEAR(m.iallreduce_seconds(960, 16) / m.allreduce_seconds(960, 16),
              2.5, 1e-12);
}

TEST(MachineModelTest, ComputeScalesDownWithRanks) {
  const MachineModel m;
  const double t1 = m.compute_seconds(1e9, 1e10, 24);
  const double t10 = m.compute_seconds(1e9, 1e10, 240);
  EXPECT_GT(t1, t10);
  EXPECT_NEAR(t1 / t10, 10.0, 4.0);  // roughly linear, modulo cache boost
}

TEST(MachineModelTest, SpmvIncludesHaloCostAtScale) {
  const MachineModel m;
  const sparse::OperatorStats st = grid3d_stats(100, 125, 2);
  const double one_rank = m.spmv_seconds(st, 1);
  EXPECT_GT(one_rank, 0.0);
  // At very large rank counts the per-rank compute vanishes but the halo
  // latency floor remains.
  const double many = m.spmv_seconds(st, 100000);
  EXPECT_GT(many, 2.0 * m.neigh_latency * 0.99);
}

TEST(TimelineTest, ComputeEventsAccumulate) {
  const MachineModel m;
  EventTrace trace;
  Event e;
  e.kind = EventKind::kCompute;
  e.flops = 1e9;
  e.bytes = 0.0;
  trace.record(e);
  trace.record(e);
  const Timeline timeline(m);
  const TimelineResult r = timeline.evaluate(trace, 1);
  EXPECT_NEAR(r.seconds, 2.0 * 1e9 / m.flop_rate, 1e-12);
  EXPECT_NEAR(r.compute_seconds, r.seconds, 1e-12);
}

TEST(TimelineTest, BlockingAllreduceAddsFullLatency) {
  const MachineModel m;
  EventTrace trace;
  Event post;
  post.kind = EventKind::kAllreducePost;
  post.id = 0;
  post.bytes = 8;   // doubles
  post.value = 1.0;  // blocking collective
  trace.record(post);
  Event wait;
  wait.kind = EventKind::kAllreduceWait;
  wait.id = 0;
  trace.record(wait);
  const Timeline timeline(m);
  const int ranks = 960;
  const TimelineResult r = timeline.evaluate(trace, ranks);
  EXPECT_NEAR(r.seconds,
              m.allreduce_seconds(ranks, 8) *
                  (1.0 /*wait*/),
              1e-9);
  EXPECT_GT(r.allreduce_wait_seconds, 0.0);
}

TEST(TimelineTest, OverlappedComputeHidesAllreduce) {
  const MachineModel m;
  const int ranks = 960;
  const double g = m.iallreduce_seconds(ranks, 8);  // non-blocking post

  // Post, then compute for 10x the allreduce latency, then wait: the wait
  // should cost (almost) nothing.
  EventTrace trace;
  Event post;
  post.kind = EventKind::kAllreducePost;
  post.id = 0;
  post.bytes = 8;
  trace.record(post);
  Event big;
  big.kind = EventKind::kCompute;
  big.flops = 10.0 * g * m.flop_rate * ranks;
  trace.record(big);
  Event wait;
  wait.kind = EventKind::kAllreduceWait;
  wait.id = 0;
  trace.record(wait);

  const Timeline timeline(m);
  const TimelineResult r = timeline.evaluate(trace, ranks);
  EXPECT_NEAR(r.allreduce_wait_seconds, 0.0, 1e-12);
  // Total = unoverlappable fraction + the compute block.
  EXPECT_NEAR(r.seconds, m.unoverlappable_fraction * g + 10.0 * g, 1e-9);
}

TEST(TimelineTest, WaitWithoutPostThrows) {
  EventTrace trace;
  Event wait;
  wait.kind = EventKind::kAllreduceWait;
  wait.id = 5;
  trace.record(wait);
  const Timeline timeline{MachineModel{}};
  EXPECT_THROW(timeline.evaluate(trace, 4), Error);
}

TEST(TimelineTest, MarksCarryTimeIterationResidual) {
  EventTrace trace;
  Event c;
  c.kind = EventKind::kCompute;
  c.flops = 1e9;
  trace.record(c);
  Event mark;
  mark.kind = EventKind::kIterationMark;
  mark.id = 3;
  mark.value = 0.25;
  trace.record(mark);
  const Timeline timeline{MachineModel{}};
  const TimelineResult r = timeline.evaluate(trace, 1);
  ASSERT_EQ(r.marks.size(), 1u);
  EXPECT_EQ(r.marks[0].iteration, 3u);
  EXPECT_DOUBLE_EQ(r.marks[0].residual, 0.25);
  EXPECT_GT(r.marks[0].time, 0.0);
}

TEST(TraceTest, CountersTallyEvents) {
  EventTrace trace;
  const std::uint32_t op = trace.register_operator(grid3d_stats(4, 7, 1));
  PcCostProfile pc;
  pc.name = "jacobi";
  const std::uint32_t pci = trace.register_pc(pc);
  for (int i = 0; i < 3; ++i) {
    Event e;
    e.kind = EventKind::kSpmv;
    e.index = op;
    trace.record(e);
  }
  Event p;
  p.kind = EventKind::kPcApply;
  p.index = pci;
  trace.record(p);
  Event post;
  post.kind = EventKind::kAllreducePost;
  trace.record(post);
  Event comp;
  comp.kind = EventKind::kCompute;
  comp.flops = 123.0;
  trace.record(comp);
  Event mark;
  mark.kind = EventKind::kIterationMark;
  mark.id = 5;
  trace.record(mark);

  const EventTrace::Counters c = trace.counters();
  EXPECT_EQ(c.spmvs, 3u);
  EXPECT_EQ(c.pc_applies, 1u);
  EXPECT_EQ(c.allreduces, 1u);
  EXPECT_EQ(c.iterations, 6u);
  EXPECT_DOUBLE_EQ(c.vector_flops, 123.0);
}

TEST(TraceTest, ClearResetsEventsAndRegistrations) {
  EventTrace trace;
  trace.register_operator(grid3d_stats(4, 7, 1));
  PcCostProfile pc;
  pc.name = "jacobi";
  trace.register_pc(pc);
  Event e;
  e.kind = EventKind::kSpmv;
  e.index = 0;
  trace.record(e);

  trace.clear();
  EXPECT_TRUE(trace.events().empty());
  EXPECT_TRUE(trace.operators().empty());
  EXPECT_TRUE(trace.pcs().empty());
  // Registration indices restart from zero after a full clear.
  EXPECT_EQ(trace.register_operator(grid3d_stats(4, 7, 1)), 0u);
}

TEST(TraceTest, ClearEventsKeepsRegistrations) {
  EventTrace trace;
  const std::uint32_t op = trace.register_operator(grid3d_stats(4, 7, 1));
  Event e;
  e.kind = EventKind::kSpmv;
  e.index = op;
  trace.record(e);

  trace.clear_events();
  EXPECT_TRUE(trace.events().empty());
  ASSERT_EQ(trace.operators().size(), 1u);  // index `op` is still valid
  trace.record(e);  // warm-up/measured reuse pattern
  EXPECT_EQ(trace.counters().spmvs, 1u);
}

TEST(CostTableTest, TableMatchesPaperAtS3) {
  // Spot-check the published Table I values for s = 3.
  EXPECT_DOUBLE_EQ(cost_row("pcg").allreduces(3), 9.0);
  EXPECT_DOUBLE_EQ(cost_row("pcg").flops(3), 36.0);
  EXPECT_DOUBLE_EQ(cost_row("pcg").memory(3), 4.0);
  EXPECT_DOUBLE_EQ(cost_row("pipecg").flops(3), 66.0);
  EXPECT_DOUBLE_EQ(cost_row("pipelcg").flops(3), 6.0 * 9 + 14 * 3);
  EXPECT_DOUBLE_EQ(cost_row("pipecg3").allreduces(3), 2.0);
  EXPECT_DOUBLE_EQ(cost_row("pipecg3").flops(3), 180.0);
  EXPECT_DOUBLE_EQ(cost_row("pipecg-oati").flops(3), 160.0);
  EXPECT_DOUBLE_EQ(cost_row("pscg").allreduces(3), 1.0);
  EXPECT_DOUBLE_EQ(cost_row("pscg").flops(3), 2.0 * 9 + 4 * 3 + 2);
  EXPECT_DOUBLE_EQ(cost_row("pscg").memory(3), 8.0);
  EXPECT_DOUBLE_EQ(cost_row("pipe-pscg").flops(3),
                   4.0 * 27 + 12.0 * 9 + 2.0 * 3 + 5);
  EXPECT_DOUBLE_EQ(cost_row("pipe-pscg").memory(3),
                   4.0 * 9 + 12.0 * 3 + 5);
}

TEST(CostTableTest, TimeFormulasCaptureOverlapRegimes) {
  const int s = 3;
  const double pc = 1.0, spmv = 2.0;
  // Compute-dominated: G small.
  {
    const double g = 0.1;
    EXPECT_DOUBLE_EQ(cost_row("pcg").time(s, g, pc, spmv),
                     s * (3 * g + pc + spmv));
    EXPECT_DOUBLE_EQ(cost_row("pipecg").time(s, g, pc, spmv), s * (pc + spmv));
    EXPECT_DOUBLE_EQ(cost_row("pipe-pscg").time(s, g, pc, spmv),
                     s * (pc + spmv));
  }
  // Allreduce-dominated: G huge -- PIPE-PsCG pays one G per s iterations,
  // PIPECG pays s, PCG pays 3s.
  {
    const double g = 1000.0;
    const double pipe_pscg = cost_row("pipe-pscg").time(s, g, pc, spmv);
    const double pipecg = cost_row("pipecg").time(s, g, pc, spmv);
    const double pcg = cost_row("pcg").time(s, g, pc, spmv);
    EXPECT_NEAR(pipecg / pipe_pscg, 3.0, 0.1);
    EXPECT_NEAR(pcg / pipe_pscg, 9.0, 0.2);
  }
}

TEST(AutoTuneTest, LargerSWinsOnlyAtScale) {
  // Fig. 3's finding, derived from the model: at small node counts small s
  // is best (FLOP overhead dominates); at large node counts the recommended
  // s grows (allreduce amortization pays).
  const MachineModel m = MachineModel::cray_xc40_like();
  const sparse::OperatorStats op = grid3d_stats(100, 125, 2);
  PcCostProfile pc;  // ~jacobi
  pc.flops = static_cast<double>(op.rows);
  pc.bytes = 24.0 * static_cast<double>(op.rows);
  pc.stats = op;

  const SRecommendation small = suggest_s(m, op, pc, m.ranks_for_nodes(2));
  const SRecommendation large = suggest_s(m, op, pc, m.ranks_for_nodes(140));
  EXPECT_LE(small.s, large.s);
  EXPECT_EQ(small.per_s_seconds.size(), 5u);
  // Per-iteration cost curves must be positive and finite.
  for (double t : large.per_s_seconds) EXPECT_GT(t, 0.0);
}

TEST(AutoTuneTest, PerIterationCostMatchesTimeFormulaShape) {
  const MachineModel m;
  const sparse::OperatorStats op = grid3d_stats(64, 125, 2);
  PcCostProfile pc;
  pc.stats = op;
  const int ranks = m.ranks_for_nodes(120);
  // Higher s divides the (dominant) allreduce across more iterations, so in
  // the G-dominated regime per-iteration cost must not increase much from
  // s = 1 to s = 3.
  const double t1 = pipe_pscg_seconds_per_iteration(m, op, pc, ranks, 1);
  const double t3 = pipe_pscg_seconds_per_iteration(m, op, pc, ranks, 3);
  EXPECT_LT(t3, t1);
  EXPECT_THROW(pipe_pscg_seconds_per_iteration(m, op, pc, ranks, 0), Error);
}

TEST(CostTableTest, UnknownMethodThrows) {
  EXPECT_THROW(cost_row("gmres"), Error);
}

TEST(CostTableTest, PrintsAllRows) {
  std::ostringstream os;
  print_cost_table(os, 3, 1e-4, 1e-5, 5e-5);
  const std::string s = os.str();
  for (const char* name : {"pcg", "pipecg", "pipelcg", "pipecg3",
                           "pipecg-oati", "pscg", "pipe-pscg"})
    EXPECT_NE(s.find(name), std::string::npos) << name;
}

}  // namespace
}  // namespace pipescg::sim
