// Observability tests: JSON round-trips, the thread-local profiler, the
// cross-engine kernel-counter parity that certifies the SPMD profiler
// counts the same work the serial EventTrace records, and the structure of
// the Chrome-trace / report exports (validated by parsing them back).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <thread>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/obs/chrome_trace.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/obs/report.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sim/timeline.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/stencil.hpp"

namespace pipescg::obs {
namespace {

// --- json ------------------------------------------------------------------

TEST(JsonTest, DumpParseRoundTrip) {
  json::Value doc = json::Value::object();
  doc.set("name", "pipe-pscg");
  doc.set("converged", true);
  doc.set("iterations", std::size_t{42});
  doc.set("rnorm", 1.25e-9);
  doc.set("nothing", json::Value());
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back(-2.5);
  arr.push_back("x\"y\\z\n\t");
  json::Value nested = json::Value::object();
  nested.set("k", json::Value::array());
  arr.push_back(std::move(nested));
  doc.set("list", std::move(arr));

  for (int indent : {-1, 0, 2}) {
    const json::Value back = json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
  }
}

TEST(JsonTest, PreservesInsertionOrder) {
  json::Value doc = json::Value::object();
  doc.set("zebra", 1);
  doc.set("alpha", 2);
  doc.set("zebra", 3);  // overwrite keeps the original slot
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_DOUBLE_EQ(doc.members()[0].second.as_number(), 3.0);
  EXPECT_EQ(doc.members()[1].first, "alpha");
}

TEST(JsonTest, ParsesEscapesAndNumbers) {
  const json::Value v =
      json::parse(R"({"s":"a\"b\\c\nA","n":[-1.5e-3,0,7]})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nA");
  EXPECT_DOUBLE_EQ(v.at("n").at(0).as_number(), -1.5e-3);
  EXPECT_DOUBLE_EQ(v.at("n").at(2).as_number(), 7.0);
}

TEST(JsonTest, NonFiniteSerializesAsNull) {
  json::Value doc = json::Value::array();
  doc.push_back(std::numeric_limits<double>::infinity());
  doc.push_back(std::numeric_limits<double>::quiet_NaN());
  const json::Value back = json::parse(doc.dump());
  EXPECT_TRUE(back.at(std::size_t{0}).is_null());
  EXPECT_TRUE(back.at(std::size_t{1}).is_null());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), Error);
  EXPECT_THROW(json::parse("{"), Error);
  EXPECT_THROW(json::parse("[1,]"), Error);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(json::parse("{'a':1}"), Error);
  EXPECT_THROW(json::parse("nulL"), Error);
}

TEST(JsonTest, AccessorsThrowOnTypeMismatch) {
  const json::Value v = json::parse("[1,2]");
  EXPECT_THROW(v.as_number(), Error);
  EXPECT_THROW(v.at("key"), Error);
  EXPECT_THROW(v.at(std::size_t{5}), Error);
}

// --- profiler --------------------------------------------------------------

TEST(ProfilerTest, SpanScopeRecordsAndNullIsNoop) {
  Profiler p(0, Profiler::Clock::now());
  { SpanScope span(&p, SpanKind::kSpmvLocal); }
  { SpanScope span(nullptr, SpanKind::kSpmvLocal); }  // must not crash
  ASSERT_EQ(p.spans().size(), 1u);
  EXPECT_EQ(p.spans()[0].kind, SpanKind::kSpmvLocal);
  EXPECT_GE(p.spans()[0].end, p.spans()[0].start);
  EXPECT_EQ(p.total(SpanKind::kSpmvLocal).count, 1u);
  EXPECT_EQ(p.total(SpanKind::kPcApply).count, 0u);
}

TEST(ProfilerTest, InstallIsThreadLocalAndRestores) {
#if !defined(PIPESCG_DISABLE_PROFILING)
  Profiler p(0, Profiler::Clock::now());
  EXPECT_EQ(Profiler::current(), nullptr);
  {
    Profiler::Install install(&p);
    EXPECT_EQ(Profiler::current(), &p);
    // Another thread must not see this thread's installation.
    Profiler* seen = &p;
    std::thread([&] { seen = Profiler::current(); }).join();
    EXPECT_EQ(seen, nullptr);
  }
  EXPECT_EQ(Profiler::current(), nullptr);
#endif
}

TEST(ProfilerTest, AggregateIsMinMedianMaxOverRanks) {
  SolveProfile profile(3);
  profile.rank(0).record(SpanKind::kDotLocal, 0.0, 1.0);
  profile.rank(1).record(SpanKind::kDotLocal, 0.0, 3.0);
  profile.rank(2).record(SpanKind::kDotLocal, 0.0, 7.0);
  const SolveProfile::Aggregate agg = profile.aggregate(SpanKind::kDotLocal);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.median, 3.0);
  EXPECT_DOUBLE_EQ(agg.max, 7.0);
  EXPECT_EQ(agg.count, 3u);
}

// --- cross-engine counter parity -------------------------------------------

struct ParityResult {
  sim::EventTrace::Counters serial;
  std::vector<Profiler::Counters> spmd;  // one per rank
  bool uniform = false;
};

ParityResult run_parity(const std::string& method, int ranks) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 12, 12, "p");
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  opts.max_iterations = 2000;
  const bool use_pc = krylov::solver_uses_preconditioner(method);
  ParityResult result;

  {
    sim::EventTrace trace;
    precond::JacobiPreconditioner pc(a);
    krylov::SerialEngine engine(a, use_pc ? &pc : nullptr, &trace);
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::make_solver(method)->solve(engine, b, x, opts);
    result.serial = trace.counters();
  }

  SolveProfile profile(ranks);
  const sparse::Partition part(a.rows(), ranks);
  par::Team::run(ranks, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());
    const std::vector<double> full_diag = a.diagonal();
    std::vector<double> local_diag(
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
    precond::JacobiPreconditioner local_pc(std::move(local_diag), a.stats());
    krylov::SpmdEngine engine(comm, dist, use_pc ? &local_pc : nullptr,
                              &profile.rank(comm.rank()));
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::make_solver(method)->solve(engine, b, x, opts);
  });
  for (int r = 0; r < ranks; ++r)
    result.spmd.push_back(profile.rank(r).counters());
  result.uniform = profile.counters_uniform();
  return result;
}

class CounterParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CounterParityTest, SpmdProfilerMatchesSerialEventTrace) {
  const ParityResult r = run_parity(GetParam(), 3);
  EXPECT_TRUE(r.uniform);
  for (const Profiler::Counters& c : r.spmd) {
    EXPECT_EQ(c.spmvs, r.serial.spmvs);
    EXPECT_EQ(c.pc_applies, r.serial.pc_applies);
    EXPECT_EQ(c.allreduces, r.serial.allreduces);
    EXPECT_EQ(c.iterations, r.serial.iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, CounterParityTest,
                         ::testing::Values("pcg", "pipe-scg", "pipe-pscg"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(CounterParityTest, SpmdRunRecordsCommAndSpmvSpans) {
  // A profiled PIPE-PsCG run must contain every instrumented span kind the
  // SPMD runtime exercises -- including the non-blocking allreduce wait spin
  // (PIPE-PsCG always posts via iallreduce and waits later).
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 12, 12, "p");
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  SolveProfile profile(2);
  const sparse::Partition part(a.rows(), 2);
  par::Team::run(2, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());
    const std::vector<double> full_diag = a.diagonal();
    std::vector<double> local_diag(
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
    precond::JacobiPreconditioner local_pc(std::move(local_diag), a.stats());
    krylov::SpmdEngine engine(comm, dist, &local_pc,
                              &profile.rank(comm.rank()));
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::make_solver("pipe-pscg")->solve(engine, b, x, opts);
  });
  for (const SpanKind kind :
       {SpanKind::kSpmvLocal, SpanKind::kHaloExpose, SpanKind::kHaloPeerRead,
        SpanKind::kHaloClose, SpanKind::kPcApply, SpanKind::kDotLocal,
        SpanKind::kAllreducePost, SpanKind::kAllreduceWaitNonblocking}) {
    EXPECT_GT(profile.aggregate(kind).count, 0u) << to_string(kind);
  }
}

// --- exporters -------------------------------------------------------------

TEST(ChromeTraceTest, BuildsValidTraceEventDocument) {
  SolveProfile profile(2);
  profile.rank(0).record(SpanKind::kSpmvLocal, 0.0, 1e-3);
  profile.rank(1).record(SpanKind::kPcApply, 1e-3, 2e-3);

  ChromeTraceBuilder builder;
  add_profile(builder, profile, /*pid=*/0, "measured");
  const json::Value doc = json::parse(builder.build().dump(2));

  ASSERT_TRUE(doc.contains("traceEvents"));
  const json::Value& events = doc.at("traceEvents");
  std::set<std::string> phases, names;
  std::set<double> tids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    phases.insert(e.at("ph").as_string());
    if (e.at("ph").as_string() == "X") {
      names.insert(e.at("name").as_string());
      tids.insert(e.at("tid").as_number());
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
  }
  EXPECT_TRUE(phases.count("M"));  // process/thread names
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(names.count("spmv_local"));
  EXPECT_TRUE(names.count("pc_apply"));
  EXPECT_EQ(tids.size(), 2u);  // one track per rank
}

TEST(ChromeTraceTest, ScheduleExportUsesModeledCategory) {
  std::vector<sim::ScheduledSpan> schedule;
  schedule.push_back({sim::ScheduledSpan::Kind::kSpmv, 0.0, 1e-3, 0, false});
  schedule.push_back(
      {sim::ScheduledSpan::Kind::kAllreduce, 1e-3, 2e-3, 1, true});
  ChromeTraceBuilder builder;
  add_schedule(builder, schedule, /*pid=*/3, "modeled");
  const json::Value doc = json::parse(builder.build().dump());
  bool saw_modeled = false;
  const json::Value& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    if (e.at("ph").as_string() == "X") {
      EXPECT_EQ(e.at("cat").as_string(), "modeled");
      EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 3.0);
      saw_modeled = true;
    }
  }
  EXPECT_TRUE(saw_modeled);
}

TEST(ReportTest, ProfileJsonHasAggregatesIncludingNonblockingWait) {
  SolveProfile profile(2);
  profile.rank(0).record(SpanKind::kAllreduceWaitNonblocking, 0.0, 2e-3);
  profile.rank(1).record(SpanKind::kAllreduceWaitNonblocking, 0.0, 4e-3);
  for (int r = 0; r < 2; ++r) {
    profile.rank(r).counters().spmvs = 5;
    profile.rank(r).counters().iterations = 4;
  }
  const json::Value doc = profile_to_json(profile);
  EXPECT_DOUBLE_EQ(doc.at("ranks").as_number(), 2.0);
  EXPECT_TRUE(doc.at("counters_uniform").as_bool());
  ASSERT_EQ(doc.at("per_rank").size(), 2u);
  const json::Value& agg = doc.at("aggregates");
  ASSERT_TRUE(agg.contains("allreduce_wait_nonblocking"));
  const json::Value& wait = agg.at("allreduce_wait_nonblocking");
  EXPECT_DOUBLE_EQ(wait.at("min_seconds").as_number(), 2e-3);
  EXPECT_DOUBLE_EQ(wait.at("max_seconds").as_number(), 4e-3);
  // Kinds with no spans are omitted for compactness...
  EXPECT_FALSE(agg.contains("spmv_local"));
  // ...except the non-blocking wait-spin headline, which is reported even
  // when it never fired (zero is the "perfect overlap" answer, not missing
  // data).
  const json::Value empty = profile_to_json(SolveProfile(1));
  ASSERT_TRUE(empty.at("aggregates").contains("allreduce_wait_nonblocking"));
  EXPECT_DOUBLE_EQ(empty.at("aggregates")
                       .at("allreduce_wait_nonblocking")
                       .at("max_seconds")
                       .as_number(),
                   0.0);
}

TEST(ReportTest, SolveReportCombinesStatsHistoryAndProfile) {
  krylov::SolveStats stats;
  stats.iterations = 3;
  stats.converged = true;
  stats.final_rnorm = 1e-9;
  stats.history = {{0, 1.0}, {1, 0.1}, {2, 0.01}, {3, 1e-9}};
  SolveProfile profile(1);
  const json::Value doc = solve_report(stats, &profile);
  EXPECT_TRUE(doc.at("stats").at("converged").as_bool());
  EXPECT_EQ(doc.at("stats").at("history").size(), 4u);
  EXPECT_TRUE(doc.contains("profile"));
  // Round-trip through the parser: the report is valid JSON.
  EXPECT_EQ(json::parse(doc.dump(2)), doc);
}

TEST(TimelineScheduleTest, CapturedScheduleMatchesEvaluatedTotals) {
  // Record a tiny real solve, then check that the captured schedule spans
  // the full modeled makespan and prices waits consistently.
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 10, 10, "p");
  sim::EventTrace trace;
  precond::JacobiPreconditioner pc(a);
  krylov::SerialEngine engine(a, &pc, &trace);
  krylov::Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  krylov::Vec b = engine.new_vec();
  engine.apply_op(ones, b);
  krylov::Vec x = engine.new_vec();
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  krylov::make_solver("pipe-pscg")->solve(engine, b, x, opts);

  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());
  std::vector<sim::ScheduledSpan> schedule;
  const sim::TimelineResult with = timeline.evaluate(trace, 8, &schedule);
  const sim::TimelineResult without = timeline.evaluate(trace, 8);
  EXPECT_DOUBLE_EQ(with.seconds, without.seconds);  // capture changes nothing
  ASSERT_FALSE(schedule.empty());
  double max_end = 0.0, wait = 0.0;
  for (const sim::ScheduledSpan& s : schedule) {
    EXPECT_GE(s.end, s.start);
    if (s.kind != sim::ScheduledSpan::Kind::kAllreduce)
      max_end = std::max(max_end, s.end);
    if (s.kind == sim::ScheduledSpan::Kind::kAllreduceWait)
      wait += s.end - s.start;
  }
  EXPECT_NEAR(max_end, with.seconds, 1e-12);
  EXPECT_NEAR(wait, with.allreduce_wait_seconds, 1e-12);
}

}  // namespace
}  // namespace pipescg::obs
