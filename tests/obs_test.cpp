// Observability tests: JSON round-trips, the thread-local profiler, the
// cross-engine kernel-counter parity that certifies the SPMD profiler
// counts the same work the serial EventTrace records, and the structure of
// the Chrome-trace / report exports (validated by parsing them back).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <thread>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/obs/anomaly.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/obs/analysis.hpp"
#include "pipescg/obs/chrome_trace.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/obs/report.hpp"
#include "pipescg/obs/telemetry.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sim/timeline.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/stencil.hpp"

namespace pipescg::obs {
namespace {

// --- json ------------------------------------------------------------------

TEST(JsonTest, DumpParseRoundTrip) {
  json::Value doc = json::Value::object();
  doc.set("name", "pipe-pscg");
  doc.set("converged", true);
  doc.set("iterations", std::size_t{42});
  doc.set("rnorm", 1.25e-9);
  doc.set("nothing", json::Value());
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back(-2.5);
  arr.push_back("x\"y\\z\n\t");
  json::Value nested = json::Value::object();
  nested.set("k", json::Value::array());
  arr.push_back(std::move(nested));
  doc.set("list", std::move(arr));

  for (int indent : {-1, 0, 2}) {
    const json::Value back = json::parse(doc.dump(indent));
    EXPECT_EQ(back, doc) << "indent=" << indent;
  }
}

TEST(JsonTest, PreservesInsertionOrder) {
  json::Value doc = json::Value::object();
  doc.set("zebra", 1);
  doc.set("alpha", 2);
  doc.set("zebra", 3);  // overwrite keeps the original slot
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "zebra");
  EXPECT_DOUBLE_EQ(doc.members()[0].second.as_number(), 3.0);
  EXPECT_EQ(doc.members()[1].first, "alpha");
}

TEST(JsonTest, ParsesEscapesAndNumbers) {
  const json::Value v =
      json::parse(R"({"s":"a\"b\\c\nA","n":[-1.5e-3,0,7]})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nA");
  EXPECT_DOUBLE_EQ(v.at("n").at(0).as_number(), -1.5e-3);
  EXPECT_DOUBLE_EQ(v.at("n").at(2).as_number(), 7.0);
}

TEST(JsonTest, NonFiniteSerializesAsNull) {
  json::Value doc = json::Value::array();
  doc.push_back(std::numeric_limits<double>::infinity());
  doc.push_back(std::numeric_limits<double>::quiet_NaN());
  const json::Value back = json::parse(doc.dump());
  EXPECT_TRUE(back.at(std::size_t{0}).is_null());
  EXPECT_TRUE(back.at(std::size_t{1}).is_null());
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), Error);
  EXPECT_THROW(json::parse("{"), Error);
  EXPECT_THROW(json::parse("[1,]"), Error);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), Error);
  EXPECT_THROW(json::parse("{'a':1}"), Error);
  EXPECT_THROW(json::parse("nulL"), Error);
}

TEST(JsonTest, AccessorsThrowOnTypeMismatch) {
  const json::Value v = json::parse("[1,2]");
  EXPECT_THROW(v.as_number(), Error);
  EXPECT_THROW(v.at("key"), Error);
  EXPECT_THROW(v.at(std::size_t{5}), Error);
}

// --- profiler --------------------------------------------------------------

TEST(ProfilerTest, SpanScopeRecordsAndNullIsNoop) {
  Profiler p(0, Profiler::Clock::now());
  { SpanScope span(&p, SpanKind::kSpmvLocal); }
  { SpanScope span(nullptr, SpanKind::kSpmvLocal); }  // must not crash
  ASSERT_EQ(p.spans().size(), 1u);
  EXPECT_EQ(p.spans()[0].kind, SpanKind::kSpmvLocal);
  EXPECT_GE(p.spans()[0].end, p.spans()[0].start);
  EXPECT_EQ(p.total(SpanKind::kSpmvLocal).count, 1u);
  EXPECT_EQ(p.total(SpanKind::kPcApply).count, 0u);
}

TEST(ProfilerTest, InstallIsThreadLocalAndRestores) {
#if !defined(PIPESCG_DISABLE_PROFILING)
  Profiler p(0, Profiler::Clock::now());
  EXPECT_EQ(Profiler::current(), nullptr);
  {
    Profiler::Install install(&p);
    EXPECT_EQ(Profiler::current(), &p);
    // Another thread must not see this thread's installation.
    Profiler* seen = &p;
    std::thread([&] { seen = Profiler::current(); }).join();
    EXPECT_EQ(seen, nullptr);
  }
  EXPECT_EQ(Profiler::current(), nullptr);
#endif
}

TEST(ProfilerTest, AggregateIsMinMedianMaxOverRanks) {
  SolveProfile profile(3);
  profile.rank(0).record(SpanKind::kDotLocal, 0.0, 1.0);
  profile.rank(1).record(SpanKind::kDotLocal, 0.0, 3.0);
  profile.rank(2).record(SpanKind::kDotLocal, 0.0, 7.0);
  const SolveProfile::Aggregate agg = profile.aggregate(SpanKind::kDotLocal);
  EXPECT_DOUBLE_EQ(agg.min, 1.0);
  EXPECT_DOUBLE_EQ(agg.median, 3.0);
  EXPECT_DOUBLE_EQ(agg.max, 7.0);
  EXPECT_EQ(agg.count, 3u);
}

// --- latency histograms ----------------------------------------------------

TEST(HistogramTest, QuantilesStayWithinObservedRange) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.add(1e-6);
  h.add(2e-6);
  h.add(4e-6);
  h.add(1e-3);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1e-3);
  EXPECT_NEAR(h.sum_seconds(), 1e-3 + 7e-6, 1e-15);
  for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), h.min_seconds()) << q;
    EXPECT_LE(h.quantile(q), h.max_seconds()) << q;
  }
  EXPECT_LE(h.quantile(0.5), h.quantile(0.99));  // monotone
  // The p99 of a distribution with one large outlier sits in the outlier's
  // factor-of-two bucket.
  EXPECT_GE(h.quantile(0.99), 1e-3 / 2.0);
}

TEST(HistogramTest, LogBucketsContainTheirSamples) {
  LatencyHistogram h;
  const double sample = 3.7e-5;  // 37000 ns -> bucket [32768, 65536) ns
  h.add(sample);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    ++hits;
    EXPECT_LE(LatencyHistogram::bucket_floor_seconds(i), sample);
    EXPECT_GT(2.0 * LatencyHistogram::bucket_floor_seconds(i), sample);
  }
  EXPECT_EQ(hits, 1u);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_floor_seconds(0), 1e-9);
}

TEST(HistogramTest, MergeAcrossRanksCombinesCountsAndExtrema) {
  SolveProfile profile(3);
  profile.rank(0).record(SpanKind::kDotLocal, 0.0, 1e-6);
  profile.rank(1).record(SpanKind::kDotLocal, 0.0, 8e-6);
  profile.rank(2).record(SpanKind::kDotLocal, 0.0, 1e-3);
  profile.rank(2).record(SpanKind::kDotLocal, 0.0, 2e-3);
  const LatencyHistogram merged =
      profile.merged_histogram(SpanKind::kDotLocal);
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_DOUBLE_EQ(merged.min_seconds(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.max_seconds(), 2e-3);
  EXPECT_NEAR(merged.sum_seconds(), 1e-6 + 8e-6 + 1e-3 + 2e-3, 1e-15);
  // merge() itself: merging an empty histogram changes nothing.
  LatencyHistogram copy = merged;
  copy.merge(LatencyHistogram{});
  EXPECT_EQ(copy.count(), merged.count());
  EXPECT_DOUBLE_EQ(copy.quantile(0.5), merged.quantile(0.5));
  // Other kinds stay empty; the composite halo-exchange histogram is
  // separate from the per-phase kinds.
  EXPECT_EQ(profile.merged_histogram(SpanKind::kSpmvLocal).count(), 0u);
  profile.rank(0).record_halo_exchange(5e-5);
  EXPECT_EQ(profile.merged_halo_exchange_histogram().count(), 1u);
  EXPECT_EQ(profile.merged_histogram(SpanKind::kHaloExpose).count(), 0u);
}

// --- convergence telemetry -------------------------------------------------

TEST(TelemetryTest, JsonlRoundTrip) {
  ConvergenceTelemetry t("pipe-scg");
  TelemetryRecord r;
  r.iteration = 6;
  r.rnorm = 1.5e-3;
  r.norm_flavor = "preconditioned";
  r.s = 3;
  r.recoveries = 1;
  r.alpha = {0.5, -0.25, 0.125};
  r.beta_fro = 2.75;
  t.record(r);
  r.iteration = 9;
  r.rnorm = 7.5e-4;
  t.record(r);

  const std::string text = t.to_jsonl();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
  const std::vector<TelemetryRecord> back =
      ConvergenceTelemetry::parse_jsonl(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].iteration, 6u);
  EXPECT_DOUBLE_EQ(back[0].rnorm, 1.5e-3);
  EXPECT_EQ(back[0].norm_flavor, "preconditioned");
  EXPECT_EQ(back[0].s, 3);
  EXPECT_EQ(back[0].recoveries, 1u);
  ASSERT_EQ(back[0].alpha.size(), 3u);
  EXPECT_DOUBLE_EQ(back[0].alpha[1], -0.25);
  EXPECT_DOUBLE_EQ(back[0].beta_fro, 2.75);
  EXPECT_EQ(back[1].iteration, 9u);
  // Every line carries the method label for multi-solve files.
  const json::Value line = json::parse(text.substr(0, text.find('\n')));
  EXPECT_EQ(line.at("method").as_string(), "pipe-scg");
  EXPECT_THROW(ConvergenceTelemetry::parse_jsonl("{broken\n"), Error);
}

TEST(TelemetryTest, GapFieldsRoundTripAndStayOffTheWireWhenUnset) {
  // Records from gap-check iterations carry true_rnorm/gap; every other
  // record omits the keys entirely so pre-gap-monitor JSONL consumers (and
  // byte-level diffs of runs with the monitor off) see unchanged lines.
  ConvergenceTelemetry t("pipe-pscg");
  TelemetryRecord checked;
  checked.iteration = 12;
  checked.rnorm = 2.0e-4;
  checked.true_rnorm = 2.5e-4;
  checked.gap = 0.2;
  t.record(checked);
  TelemetryRecord plain;
  plain.iteration = 15;
  plain.rnorm = 1.0e-4;
  t.record(plain);

  const std::string text = t.to_jsonl();
  const auto nl = text.find('\n');
  const json::Value first = json::parse(text.substr(0, nl));
  EXPECT_TRUE(first.contains("gap"));
  EXPECT_TRUE(first.contains("true_rnorm"));
  const json::Value second =
      json::parse(text.substr(nl + 1, text.size() - nl - 2));
  EXPECT_FALSE(second.contains("gap"));
  EXPECT_FALSE(second.contains("true_rnorm"));

  const std::vector<TelemetryRecord> back =
      ConvergenceTelemetry::parse_jsonl(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[0].true_rnorm, 2.5e-4);
  EXPECT_DOUBLE_EQ(back[0].gap, 0.2);
  EXPECT_DOUBLE_EQ(back[1].true_rnorm, -1.0);  // sentinel survives the trip
  EXPECT_DOUBLE_EQ(back[1].gap, -1.0);
}

TEST(TelemetryTest, RingBufferEvictsOldestAndKeepsChronologicalOrder) {
  ConvergenceTelemetry t("", /*capacity=*/3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    TelemetryRecord r;
    r.iteration = i;
    t.record(std::move(r));
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.dropped(), 2u);
  const std::vector<TelemetryRecord> recs = t.records();
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].iteration, 2u);
  EXPECT_EQ(recs[1].iteration, 3u);
  EXPECT_EQ(recs[2].iteration, 4u);
}

TEST(TelemetryTest, CheckpointHookIsThreadLocalAndNullSafe) {
  // With no sink installed the hook is a no-op (must not crash).
  telemetry_checkpoint(1, 1.0, "natural", 2, 0, {}, 0.0);
  ConvergenceTelemetry t;
  EXPECT_EQ(ConvergenceTelemetry::current(), nullptr);
  {
    const ConvergenceTelemetry::Install install(&t);
    EXPECT_EQ(ConvergenceTelemetry::current(), &t);
    const double alpha[] = {0.5};
    telemetry_checkpoint(3, 0.25, "natural", 2, 0, alpha, 1.0);
    // Another thread must not see this thread's installation.
    ConvergenceTelemetry* seen = &t;
    std::thread([&] { seen = ConvergenceTelemetry::current(); }).join();
    EXPECT_EQ(seen, nullptr);
  }
  EXPECT_EQ(ConvergenceTelemetry::current(), nullptr);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.records()[0].iteration, 3u);
  EXPECT_EQ(t.records()[0].norm_flavor, "natural");
}

// --- overlap analyzer ------------------------------------------------------

TEST(OverlapTest, HandBuiltTwoRankTraceHasKnownHiddenAndExposed) {
  SolveProfile profile(2);
  // Rank 0 posts [0,1], computes [1,5], waits [5,6]: 4 s hidden, 1 exposed.
  profile.rank(0).record(SpanKind::kAllreducePost, 0.0, 1.0);
  profile.rank(0).record(SpanKind::kSpmvLocal, 1.0, 5.0);
  profile.rank(0).record(SpanKind::kAllreduceWaitNonblocking, 5.0, 6.0);
  // Rank 1 posts [0,2] and spins [2,6]: nothing hidden, 4 s exposed.
  profile.rank(1).record(SpanKind::kAllreducePost, 0.0, 2.0);
  profile.rank(1).record(SpanKind::kAllreduceWaitNonblocking, 2.0, 6.0);

  const OverlapReport report = analyze_overlap(profile);
  EXPECT_EQ(report.ranks, 2);
  EXPECT_EQ(report.blocks, 1u);
  EXPECT_EQ(report.nonblocking_blocks, 1u);
  EXPECT_DOUBLE_EQ(report.per_rank[0].hidden_seconds, 4.0);
  EXPECT_DOUBLE_EQ(report.per_rank[0].exposed_seconds, 1.0);
  EXPECT_DOUBLE_EQ(report.per_rank[0].total_wait_seconds, 5.0);
  EXPECT_DOUBLE_EQ(report.per_rank[0].efficiency, 0.8);
  EXPECT_DOUBLE_EQ(report.per_rank[1].hidden_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.per_rank[1].exposed_seconds, 4.0);
  EXPECT_DOUBLE_EQ(report.per_rank[1].efficiency, 0.0);
  // Identity hidden + exposed == total holds globally by construction.
  EXPECT_DOUBLE_EQ(report.hidden_seconds, 4.0);
  EXPECT_DOUBLE_EQ(report.exposed_seconds, 5.0);
  EXPECT_DOUBLE_EQ(report.total_wait_seconds, 9.0);
  EXPECT_DOUBLE_EQ(report.efficiency, 4.0 / 9.0);
  EXPECT_DOUBLE_EQ(report.efficiency_over_ranks.min, 0.0);
  EXPECT_DOUBLE_EQ(report.efficiency_over_ranks.max, 0.8);
  EXPECT_DOUBLE_EQ(report.exposed_over_ranks.max, 4.0);
  // The summary is renderable and mentions the headline number.
  EXPECT_NE(overlap_summary(report).find("efficiency"), std::string::npos);
}

TEST(OverlapTest, CriticalPathJumpsToTheRankGatingTheCollective) {
  // Rank 1's late post [0,4] gates the allreduce both ranks wait on; the
  // walk must end-to-start attribute [4,6] to rank 0's wait+compute and jump
  // to rank 1 for the gating post.
  SolveProfile profile(2);
  profile.rank(0).record(SpanKind::kAllreducePost, 0.0, 1.0);
  profile.rank(0).record(SpanKind::kAllreduceWaitNonblocking, 1.0, 5.0);
  profile.rank(0).record(SpanKind::kSpmvLocal, 5.0, 6.0);
  profile.rank(1).record(SpanKind::kAllreducePost, 0.0, 4.0);
  profile.rank(1).record(SpanKind::kAllreduceWaitNonblocking, 4.0, 4.5);

  const OverlapReport report = analyze_overlap(profile);
  const CriticalPath& cp = report.critical_path;
  EXPECT_DOUBLE_EQ(cp.makespan, 6.0);
  EXPECT_EQ(cp.end_rank, 0);
  EXPECT_GE(cp.rank_switches, 1u);
  double attributed = cp.untracked_seconds;
  bool saw_post = false;
  for (const KindAttribution& a : cp.attribution) {
    if (a.kind == std::string(to_string(SpanKind::kAllreducePost)))
      saw_post = true;
    if (a.kind != "untracked") attributed += a.seconds;
  }
  EXPECT_TRUE(saw_post);  // rank 1's gating post is on the path
  // Every second of the makespan is attributed to some kind (or untracked).
  EXPECT_NEAR(attributed, cp.makespan, 1e-9);
}

TEST(OverlapTest, SpmdPipeScgRunShowsPositiveOverlapAndTelemetry) {
  // Acceptance check: a real toy PIPE-sCG SPMD run must measure nonzero
  // communication-hiding, satisfy hidden + exposed == total, and emit one
  // telemetry record per residual-history entry.
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 12, 12, "p");
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  opts.max_iterations = 2000;
  SolveProfile profile(2);
  ConvergenceTelemetry telem("pipe-scg");
  krylov::SolveStats stats;
  const sparse::Partition part(a.rows(), 2);
  par::Team::run(2, [&](par::Comm& comm) {
    const ConvergenceTelemetry::Install telemetry_install(
        comm.rank() == 0 ? &telem : nullptr);
    const sparse::DistCsr dist(a, part, comm.rank());
    krylov::SpmdEngine engine(comm, dist, nullptr,
                              &profile.rank(comm.rank()));
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    const auto st = krylov::make_solver("pipe-scg")->solve(engine, b, x, opts);
    if (comm.rank() == 0) stats = st;
  });

  const OverlapReport report = analyze_overlap(profile);
  EXPECT_GT(report.blocks, 0u);
  EXPECT_GT(report.nonblocking_blocks, 0u);
  EXPECT_GT(report.efficiency, 0.0);
  for (const RankOverlap& r : report.per_rank) {
    EXPECT_NEAR(r.hidden_seconds + r.exposed_seconds, r.total_wait_seconds,
                1e-12 * std::max(1.0, r.total_wait_seconds));
    for (const BlockOverlap& b : r.blocks)
      EXPECT_GE(b.total(), 0.0);
  }
  EXPECT_GT(report.critical_path.makespan, 0.0);
  ASSERT_FALSE(stats.history.empty());
  EXPECT_EQ(telem.size(), stats.history.size());
  const std::vector<TelemetryRecord> recs = telem.records();
  // Records mirror the residual history entry for entry.  The final history
  // value may differ: verified acceptance rewrites history.back() with the
  // true residual after the checkpoint fires, while telemetry keeps the
  // recurred estimate the solver actually steered by.
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].iteration, stats.history[i].first);
    if (i + 1 < recs.size())
      EXPECT_DOUBLE_EQ(recs[i].rnorm, stats.history[i].second);
  }
  EXPECT_EQ(recs.back().norm_flavor, krylov::to_string(opts.norm));
}

// --- drift report ----------------------------------------------------------

TEST(DriftTest, SignConventionAndEveryModeledKindPresent) {
  // Modeled: one 1 s SPMV.  Measured: the same span took 3 s, so
  // delta = measured - modeled = +2 (positive means slower than modeled).
  std::vector<sim::ScheduledSpan> schedule;
  schedule.push_back({sim::ScheduledSpan::Kind::kSpmv, 0.0, 1.0, 0, false});
  SolveProfile profile(1);
  profile.rank(0).record(SpanKind::kSpmvLocal, 0.0, 3.0);
  const OverlapReport overlap = analyze_overlap(profile);
  const DriftReport drift =
      drift_report(schedule, profile, overlap, /*relative_threshold=*/0.5);

  EXPECT_DOUBLE_EQ(drift.threshold, 0.5);
  EXPECT_DOUBLE_EQ(drift.modeled_makespan, 1.0);
  EXPECT_DOUBLE_EQ(drift.measured_makespan, 3.0);
  const std::set<std::string> expected = {"compute",       "spmv",
                                          "pc_apply",      "post_overhead",
                                          "allreduce",     "allreduce_wait"};
  std::set<std::string> seen;
  const DriftEntry* spmv = nullptr;
  const DriftEntry* pc = nullptr;
  for (const DriftEntry& e : drift.kinds) {
    seen.insert(e.kind);
    if (e.kind == "spmv") spmv = &e;
    if (e.kind == "pc_apply") pc = &e;
  }
  EXPECT_EQ(seen, expected);  // every ScheduledSpan::Kind has an entry
  ASSERT_NE(spmv, nullptr);
  EXPECT_DOUBLE_EQ(spmv->modeled_seconds, 1.0);
  EXPECT_DOUBLE_EQ(spmv->measured_seconds, 3.0);
  EXPECT_DOUBLE_EQ(spmv->delta, 2.0);
  EXPECT_DOUBLE_EQ(spmv->ratio, 3.0);
  EXPECT_TRUE(spmv->has_measured);
  EXPECT_TRUE(spmv->flagged);  // |2| > 0.5 * max(1, 3)
  // A kind at zero on both sides is present, unflagged, ratio 0.
  ASSERT_NE(pc, nullptr);
  EXPECT_DOUBLE_EQ(pc->delta, 0.0);
  EXPECT_DOUBLE_EQ(pc->ratio, 0.0);
  EXPECT_FALSE(pc->flagged);
  // JSON export carries the same kinds.
  const json::Value doc = drift_to_json(drift);
  for (const std::string& k : expected)
    EXPECT_TRUE(doc.at("kinds").contains(k)) << k;
  EXPECT_DOUBLE_EQ(
      doc.at("kinds").at("spmv").at("delta_seconds").as_number(), 2.0);
}

TEST(DriftTest, FasterThanModelGivesNegativeDelta) {
  std::vector<sim::ScheduledSpan> schedule;
  schedule.push_back({sim::ScheduledSpan::Kind::kPcApply, 0.0, 2.0, 0, false});
  SolveProfile profile(1);
  profile.rank(0).record(SpanKind::kPcApply, 0.0, 0.5);
  const OverlapReport overlap = analyze_overlap(profile);
  const DriftReport drift = drift_report(schedule, profile, overlap, 0.5);
  for (const DriftEntry& e : drift.kinds) {
    if (e.kind != "pc_apply") continue;
    EXPECT_DOUBLE_EQ(e.delta, -1.5);  // measured faster than modeled
    EXPECT_DOUBLE_EQ(e.ratio, 0.25);
    EXPECT_TRUE(e.flagged);
  }
}

// --- cross-engine counter parity -------------------------------------------

struct ParityResult {
  sim::EventTrace::Counters serial;
  std::vector<Profiler::Counters> spmd;  // one per rank
  bool uniform = false;
};

ParityResult run_parity(const std::string& method, int ranks) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 12, 12, "p");
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  opts.max_iterations = 2000;
  const bool use_pc = krylov::solver_uses_preconditioner(method);
  ParityResult result;

  {
    sim::EventTrace trace;
    precond::JacobiPreconditioner pc(a);
    krylov::SerialEngine engine(a, use_pc ? &pc : nullptr, &trace);
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::make_solver(method)->solve(engine, b, x, opts);
    result.serial = trace.counters();
  }

  SolveProfile profile(ranks);
  const sparse::Partition part(a.rows(), ranks);
  par::Team::run(ranks, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());
    const std::vector<double> full_diag = a.diagonal();
    std::vector<double> local_diag(
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
    precond::JacobiPreconditioner local_pc(std::move(local_diag), a.stats());
    krylov::SpmdEngine engine(comm, dist, use_pc ? &local_pc : nullptr,
                              &profile.rank(comm.rank()));
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::make_solver(method)->solve(engine, b, x, opts);
  });
  for (int r = 0; r < ranks; ++r)
    result.spmd.push_back(profile.rank(r).counters());
  result.uniform = profile.counters_uniform();
  return result;
}

class CounterParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CounterParityTest, SpmdProfilerMatchesSerialEventTrace) {
  const ParityResult r = run_parity(GetParam(), 3);
  EXPECT_TRUE(r.uniform);
  for (const Profiler::Counters& c : r.spmd) {
    EXPECT_EQ(c.spmvs, r.serial.spmvs);
    EXPECT_EQ(c.pc_applies, r.serial.pc_applies);
    EXPECT_EQ(c.allreduces, r.serial.allreduces);
    EXPECT_EQ(c.iterations, r.serial.iterations);
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, CounterParityTest,
                         ::testing::Values("pcg", "pipe-scg", "pipe-pscg"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(CounterParityTest, SpmdRunRecordsCommAndSpmvSpans) {
  // A profiled PIPE-PsCG run must contain every instrumented span kind the
  // SPMD runtime exercises -- including the non-blocking allreduce wait spin
  // (PIPE-PsCG always posts via iallreduce and waits later).
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 12, 12, "p");
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  SolveProfile profile(2);
  const sparse::Partition part(a.rows(), 2);
  par::Team::run(2, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());
    const std::vector<double> full_diag = a.diagonal();
    std::vector<double> local_diag(
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
    precond::JacobiPreconditioner local_pc(std::move(local_diag), a.stats());
    krylov::SpmdEngine engine(comm, dist, &local_pc,
                              &profile.rank(comm.rank()));
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::make_solver("pipe-pscg")->solve(engine, b, x, opts);
  });
  for (const SpanKind kind :
       {SpanKind::kSpmvLocal, SpanKind::kHaloExpose, SpanKind::kHaloPeerRead,
        SpanKind::kHaloClose, SpanKind::kPcApply, SpanKind::kDotLocal,
        SpanKind::kAllreducePost, SpanKind::kAllreduceWaitNonblocking}) {
    EXPECT_GT(profile.aggregate(kind).count, 0u) << to_string(kind);
  }
}

// --- exporters -------------------------------------------------------------

TEST(ChromeTraceTest, BuildsValidTraceEventDocument) {
  SolveProfile profile(2);
  profile.rank(0).record(SpanKind::kSpmvLocal, 0.0, 1e-3);
  profile.rank(1).record(SpanKind::kPcApply, 1e-3, 2e-3);

  ChromeTraceBuilder builder;
  add_profile(builder, profile, /*pid=*/0, "measured");
  const json::Value doc = json::parse(builder.build().dump(2));

  ASSERT_TRUE(doc.contains("traceEvents"));
  const json::Value& events = doc.at("traceEvents");
  std::set<std::string> phases, names;
  std::set<double> tids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    phases.insert(e.at("ph").as_string());
    if (e.at("ph").as_string() == "X") {
      names.insert(e.at("name").as_string());
      tids.insert(e.at("tid").as_number());
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
  }
  EXPECT_TRUE(phases.count("M"));  // process/thread names
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(names.count("spmv_local"));
  EXPECT_TRUE(names.count("pc_apply"));
  EXPECT_EQ(tids.size(), 2u);  // one track per rank
}

TEST(ChromeTraceTest, ScheduleExportUsesModeledCategory) {
  std::vector<sim::ScheduledSpan> schedule;
  schedule.push_back({sim::ScheduledSpan::Kind::kSpmv, 0.0, 1e-3, 0, false});
  schedule.push_back(
      {sim::ScheduledSpan::Kind::kAllreduce, 1e-3, 2e-3, 1, true});
  ChromeTraceBuilder builder;
  add_schedule(builder, schedule, /*pid=*/3, "modeled");
  const json::Value doc = json::parse(builder.build().dump());
  bool saw_modeled = false;
  const json::Value& events = doc.at("traceEvents");
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    if (e.at("ph").as_string() == "X") {
      EXPECT_EQ(e.at("cat").as_string(), "modeled");
      EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 3.0);
      saw_modeled = true;
    }
  }
  EXPECT_TRUE(saw_modeled);
}

TEST(ReportTest, ProfileJsonHasAggregatesIncludingNonblockingWait) {
  SolveProfile profile(2);
  profile.rank(0).record(SpanKind::kAllreduceWaitNonblocking, 0.0, 2e-3);
  profile.rank(1).record(SpanKind::kAllreduceWaitNonblocking, 0.0, 4e-3);
  for (int r = 0; r < 2; ++r) {
    profile.rank(r).counters().spmvs = 5;
    profile.rank(r).counters().iterations = 4;
  }
  const json::Value doc = profile_to_json(profile);
  EXPECT_DOUBLE_EQ(doc.at("ranks").as_number(), 2.0);
  EXPECT_TRUE(doc.at("counters_uniform").as_bool());
  ASSERT_EQ(doc.at("per_rank").size(), 2u);
  const json::Value& agg = doc.at("aggregates");
  ASSERT_TRUE(agg.contains("allreduce_wait_nonblocking"));
  const json::Value& wait = agg.at("allreduce_wait_nonblocking");
  EXPECT_DOUBLE_EQ(wait.at("min_seconds").as_number(), 2e-3);
  EXPECT_DOUBLE_EQ(wait.at("max_seconds").as_number(), 4e-3);
  // The report is key-stable: every span kind appears with explicit zeros
  // even when it never fired, so two reports diff structurally
  // (tools/diff_reports.py) without ADDED/REMOVED noise.
  for (std::size_t k = 0; k < kSpanKindCount; ++k)
    ASSERT_TRUE(agg.contains(to_string(static_cast<SpanKind>(k))))
        << to_string(static_cast<SpanKind>(k));
  EXPECT_DOUBLE_EQ(agg.at("spmv_local").at("count").as_number(), 0.0);
  EXPECT_TRUE(doc.contains("histograms"));
  EXPECT_TRUE(doc.at("histograms").contains("halo_exchange"));
  // Fault counters are explicit zeros too, at zero recoveries.
  ASSERT_TRUE(doc.contains("recoveries_over_ranks"));
  EXPECT_DOUBLE_EQ(doc.at("recoveries_over_ranks").at("max").as_number(),
                   0.0);
  const json::Value empty = profile_to_json(SolveProfile(1));
  ASSERT_TRUE(empty.at("aggregates").contains("allreduce_wait_nonblocking"));
  EXPECT_DOUBLE_EQ(empty.at("aggregates")
                       .at("allreduce_wait_nonblocking")
                       .at("max_seconds")
                       .as_number(),
                   0.0);
}

TEST(ReportTest, SolveReportCombinesStatsHistoryAndProfile) {
  krylov::SolveStats stats;
  stats.iterations = 3;
  stats.converged = true;
  stats.final_rnorm = 1e-9;
  stats.history = {{0, 1.0}, {1, 0.1}, {2, 0.01}, {3, 1e-9}};
  SolveProfile profile(1);
  const json::Value doc = solve_report(stats, &profile);
  EXPECT_TRUE(doc.at("stats").at("converged").as_bool());
  EXPECT_EQ(doc.at("stats").at("history").size(), 4u);
  EXPECT_TRUE(doc.contains("profile"));
  // Round-trip through the parser: the report is valid JSON.
  EXPECT_EQ(json::parse(doc.dump(2)), doc);
}

TEST(TimelineScheduleTest, CapturedScheduleMatchesEvaluatedTotals) {
  // Record a tiny real solve, then check that the captured schedule spans
  // the full modeled makespan and prices waits consistently.
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 10, 10, "p");
  sim::EventTrace trace;
  precond::JacobiPreconditioner pc(a);
  krylov::SerialEngine engine(a, &pc, &trace);
  krylov::Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  krylov::Vec b = engine.new_vec();
  engine.apply_op(ones, b);
  krylov::Vec x = engine.new_vec();
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  krylov::make_solver("pipe-pscg")->solve(engine, b, x, opts);

  const sim::Timeline timeline(sim::MachineModel::cray_xc40_like());
  std::vector<sim::ScheduledSpan> schedule;
  const sim::TimelineResult with = timeline.evaluate(trace, 8, &schedule);
  const sim::TimelineResult without = timeline.evaluate(trace, 8);
  EXPECT_DOUBLE_EQ(with.seconds, without.seconds);  // capture changes nothing
  ASSERT_FALSE(schedule.empty());
  double max_end = 0.0, wait = 0.0;
  for (const sim::ScheduledSpan& s : schedule) {
    EXPECT_GE(s.end, s.start);
    if (s.kind != sim::ScheduledSpan::Kind::kAllreduce)
      max_end = std::max(max_end, s.end);
    if (s.kind == sim::ScheduledSpan::Kind::kAllreduceWait)
      wait += s.end - s.start;
  }
  EXPECT_NEAR(max_end, with.seconds, 1e-12);
  EXPECT_NEAR(wait, with.allreduce_wait_seconds, 1e-12);
}

}  // namespace
}  // namespace pipescg::obs

// --- anomaly detectors ------------------------------------------------------

namespace pipescg::obs::anomaly {
namespace {

TEST(StragglerDetectorTest, BlamesTheRankWhoseWaitCollapses) {
  StragglerConfig cfg;
  cfg.window = 4;
  cfg.consecutive = 2;
  StragglerDetector det(4, cfg);
  // Rank 1 is the straggler: it never waits (everyone waits FOR it), so its
  // cumulative exposed wait barely grows while every peer's climbs.
  std::vector<double> cum(4, 0.0);
  std::size_t alerts = 0;
  Alert last;
  for (std::uint64_t it = 1; it <= 12; ++it) {
    for (int r = 0; r < 4; ++r) cum[static_cast<std::size_t>(r)] += (r == 1) ? 0.001 : 0.1;
    for (int r = 0; r < 4; ++r) det.publish(r, cum[static_cast<std::size_t>(r)]);
    if (std::optional<Alert> a = det.evaluate(it)) {
      ++alerts;
      last = *a;
    }
  }
  // Fires exactly once per rank per solve, blaming the right rank.
  EXPECT_EQ(alerts, 1u);
  EXPECT_EQ(last.family, "straggler");
  EXPECT_EQ(last.rank, 1);
  EXPECT_LE(last.value, -cfg.z_threshold);
  EXPECT_EQ(det.candidate(), 1);
}

TEST(StragglerDetectorTest, BalancedRanksNeverFire) {
  StragglerConfig cfg;
  cfg.window = 4;
  cfg.consecutive = 2;
  StragglerDetector det(4, cfg);
  std::vector<double> cum(4, 0.0);
  for (std::uint64_t it = 1; it <= 20; ++it) {
    for (int r = 0; r < 4; ++r) {
      cum[static_cast<std::size_t>(r)] += 0.1;
      det.publish(r, cum[static_cast<std::size_t>(r)]);
    }
    EXPECT_FALSE(det.evaluate(it).has_value());
  }
  EXPECT_EQ(det.candidate(), -1);
}

TEST(StragglerDetectorTest, TinyWaitsStayBelowTheMeanFloor) {
  StragglerConfig cfg;
  cfg.window = 2;
  cfg.consecutive = 1;
  StragglerDetector det(2, cfg);
  // Same 100:1 skew as a real straggler, but nanoseconds of total wait --
  // nothing worth blaming on an idle solve.
  double c0 = 0.0, c1 = 0.0;
  for (std::uint64_t it = 1; it <= 10; ++it) {
    c0 += 1e-7;
    c1 += 1e-9;
    det.publish(0, c0);
    det.publish(1, c1);
    EXPECT_FALSE(det.evaluate(it).has_value());
  }
}

TEST(StallDetectorTest, PlateauFiresAndRearmsAfterAFreshWindow) {
  StallConfig cfg;
  cfg.window = 4;
  StallDetector det(cfg);
  std::size_t alerts = 0;
  for (std::uint64_t it = 1; it <= 8; ++it) {
    if (std::optional<Alert> a = det.feed(it, 1.0)) {
      ++alerts;
      EXPECT_EQ(a->family, "convergence_stall");
      EXPECT_DOUBLE_EQ(a->value, 1.0);
      EXPECT_DOUBLE_EQ(a->threshold, 1.0 - cfg.min_improvement);
    }
  }
  // Window fills at feed 4 (fire), clears, refills by feed 8 (fire again).
  EXPECT_EQ(alerts, 2u);
}

TEST(StallDetectorTest, SteadyConvergenceIsSilent) {
  StallConfig cfg;
  cfg.window = 4;
  StallDetector det(cfg);
  double rnorm = 1.0;
  for (std::uint64_t it = 1; it <= 20; ++it) {
    EXPECT_FALSE(det.feed(it, rnorm).has_value());
    rnorm *= 0.5;
  }
}

TEST(StallDetectorTest, DivergenceIsTheDriversProblemNotAStall) {
  StallConfig cfg;
  cfg.window = 4;
  StallDetector det(cfg);
  double rnorm = 1.0;
  for (std::uint64_t it = 1; it <= 12; ++it) {
    EXPECT_FALSE(det.feed(it, rnorm).has_value());
    rnorm *= 3.0;  // 81x over any 4-wide window: divergence, stay silent
  }
}

TEST(QueuePressureMonitorTest, DepthAlertIsRisingEdgeOnly) {
  QueuePressureConfig cfg;
  cfg.depth_threshold = 8;
  QueuePressureMonitor mon(cfg);
  EXPECT_FALSE(mon.on_depth(7).has_value());
  std::optional<Alert> a = mon.on_depth(8);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->family, "queue_saturation");
  EXPECT_DOUBLE_EQ(a->value, 8.0);
  EXPECT_FALSE(mon.on_depth(30).has_value());  // still saturated: no repeat
  EXPECT_FALSE(mon.on_depth(3).has_value());   // falls below: re-arms
  EXPECT_TRUE(mon.on_depth(9).has_value());    // second rising edge fires
}

TEST(QueuePressureMonitorTest, DispatchHeadroomAndExpiry) {
  QueuePressureMonitor mon;
  // Plenty of headroom: quiet.
  EXPECT_FALSE(mon.on_dispatch(10.0, 0.5, false, 1).has_value());
  // Less headroom than the p95 solve latency: warning.
  std::optional<Alert> tight = mon.on_dispatch(0.1, 0.5, false, 2);
  ASSERT_TRUE(tight.has_value());
  EXPECT_EQ(tight->family, "deadline_pressure");
  EXPECT_EQ(tight->severity, "warning");
  EXPECT_EQ(tight->trace_id, 2u);
  // Already missed: critical.
  std::optional<Alert> missed = mon.on_dispatch(0.0, 0.5, true, 3);
  ASSERT_TRUE(missed.has_value());
  EXPECT_EQ(missed->severity, "critical");
}

TEST(AlertSinkTest, JsonlRoundTripsEveryFieldIncludingHostileText) {
  Alert a;
  a.family = "straggler";
  a.severity = "warning";
  a.message = "rank 3 \"slow\"\nwith back\\slash";
  a.trace_id = 7042;
  a.rank = 3;
  a.iteration = 96;
  a.value = -1.5;
  a.threshold = -1.2;
  AlertSink sink;  // memory-only
  sink.emit(a);
  Alert b;
  b.family = "deadline_pressure";
  b.severity = "critical";
  b.message = "deadline expired";
  b.trace_id = 7043;
  sink.emit(b);
  EXPECT_EQ(sink.emitted(), 2u);
  std::string text;
  for (const Alert& al : sink.alerts())
    text += AlertSink::to_json_line(al) + "\n";
  const std::vector<Alert> parsed = AlertSink::parse_jsonl(text);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].message, a.message);
  EXPECT_EQ(parsed[0].trace_id, 7042u);
  EXPECT_EQ(parsed[0].rank, 3);
  EXPECT_EQ(parsed[0].iteration, 96u);
  EXPECT_DOUBLE_EQ(parsed[0].value, -1.5);
  EXPECT_DOUBLE_EQ(parsed[0].threshold, -1.2);
  EXPECT_EQ(parsed[1].family, "deadline_pressure");
  EXPECT_EQ(parsed[1].severity, "critical");
}

TEST(MidSolveProbeTest, EmittedAlertsCarryTheTraceIdAndHitTheCallback) {
  StallConfig cfg;
  cfg.window = 2;
  StallDetector stall(cfg);
  AlertSink sink;
  static int callback_hits;
  callback_hits = 0;
  MidSolveProbe::Shared shared;
  shared.stall = &stall;
  shared.sink = &sink;
  shared.trace_id = 99;
  shared.on_alert = [](void* arg, const Alert& alert) {
    ++callback_hits;
    EXPECT_EQ(alert.trace_id, 99u);
    EXPECT_EQ(*static_cast<int*>(arg), 7);
  };
  static int cookie;
  cookie = 7;
  shared.on_alert_arg = &cookie;
  MidSolveProbe probe(&shared, /*rank=*/0);
  probe.on_checkpoint(1, 1.0);
  EXPECT_EQ(sink.emitted(), 0u);
  probe.on_checkpoint(2, 1.0);  // window=2 plateau fires
  ASSERT_EQ(sink.emitted(), 1u);
  EXPECT_EQ(sink.alerts()[0].trace_id, 99u);
  EXPECT_EQ(callback_hits, 1);
}

}  // namespace
}  // namespace pipescg::obs::anomaly
