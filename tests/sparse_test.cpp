// Tests for the sparse module: COO/CSR, Matrix Market I/O, stencils, the
// 125-point operator, surrogates, SpGEMM, partitioning, distributed SPMV.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "pipescg/base/rng.hpp"
#include "pipescg/la/cholesky.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/sparse/coo_builder.hpp"
#include "pipescg/sparse/csr_matrix.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/matrix_market.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/spgemm.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/stencil_operator.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::sparse {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

la::DenseMatrix to_dense_matrix(const CsrMatrix& m) {
  const std::vector<double> d = m.to_dense();
  la::DenseMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = d[i * m.cols() + j];
  return out;
}

TEST(CooBuilderTest, SumsDuplicates) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 0, -1.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.entry(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.entry(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(1, 1), 0.0);
}

TEST(CooBuilderTest, AddSymmetricMirrors) {
  CooBuilder b(3, 3);
  b.add_symmetric(0, 1, 2.0);
  b.add_symmetric(2, 2, 5.0);  // diagonal not duplicated
  const CsrMatrix m = b.build();
  EXPECT_DOUBLE_EQ(m.entry(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.entry(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.entry(2, 2), 5.0);
  EXPECT_EQ(m.nnz(), 3u);
}

TEST(CooBuilderTest, OutOfRangeThrows) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), Error);
}

TEST(CsrMatrixTest, ValidatesStructure) {
  // row_ptr not ending at nnz
  EXPECT_THROW(CsrMatrix(1, 1, {0, 2}, {0}, {1.0}), Error);
  // unsorted columns
  EXPECT_THROW(CsrMatrix(1, 2, {0, 2}, {1, 0}, {1.0, 2.0}), Error);
  // column out of range
  EXPECT_THROW(CsrMatrix(1, 1, {0, 1}, {1}, {1.0}), Error);
}

TEST(CsrMatrixTest, SpmvMatchesDense) {
  const CsrMatrix m = make_thermal2_like(9, 7);
  const std::vector<double> x = random_vector(m.rows(), 3);
  std::vector<double> y(m.rows());
  m.apply(x, y);
  const la::DenseMatrix d = to_dense_matrix(m);
  const std::vector<double> y_ref = d.apply(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(CsrMatrixTest, TransposeOfSymmetricIsIdentical) {
  const CsrMatrix m = make_ecology2_like(8, 9);
  const CsrMatrix t = m.transposed();
  EXPECT_EQ(m.nnz(), t.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_DOUBLE_EQ(m.entry(i, j), t.entry(i, j));
}

TEST(CsrMatrixTest, SymmetryErrorDetectsAsymmetry) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.5);
  b.add(1, 1, 1.0);
  EXPECT_NEAR(b.build().symmetry_error(), 0.5, 1e-14);
}

TEST(CsrMatrixTest, DiagonalExtraction) {
  const CsrMatrix m = assemble_stencil2d(stencil_poisson5(), 4, 4, "p");
  for (double d : m.diagonal()) EXPECT_DOUBLE_EQ(d, 4.0);
}

TEST(StencilTest, Assemble5PointMatchesManualLaplacian) {
  const CsrMatrix m = assemble_stencil2d(stencil_poisson5(), 3, 3, "p");
  // Center row (cell 4) couples to 4 neighbors.
  EXPECT_DOUBLE_EQ(m.entry(4, 4), 4.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 5), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 7), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 0), 0.0);
  // Corner row keeps only the in-domain couplings (Dirichlet truncation).
  EXPECT_DOUBLE_EQ(m.entry(0, 0), 4.0);
  EXPECT_EQ(m.row_ptr()[1] - m.row_ptr()[0], 3);
}

TEST(StencilTest, StencilPointCounts) {
  EXPECT_EQ(stencil_poisson5().point_count(), 5u);
  EXPECT_EQ(stencil_poisson9().point_count(), 9u);
  EXPECT_EQ(stencil_poisson7().point_count(), 7u);
  EXPECT_EQ(stencil_poisson27().point_count(), 27u);
  EXPECT_EQ(stencil_poisson125().point_count(), 125u);
}

TEST(StencilTest, AssembledOperatorsAreSymmetric) {
  EXPECT_LT(assemble_stencil2d(stencil_poisson9(), 6, 5, "s9").symmetry_error(),
            1e-14);
  EXPECT_LT(
      assemble_stencil3d(stencil_poisson27(), 5, 4, 3, "s27").symmetry_error(),
      1e-14);
}

TEST(StencilTest, Poisson125InteriorRowHas125Nonzeros) {
  const CsrMatrix m = make_poisson125_csr(7);
  // Center cell of the 7^3 grid is fully interior (reach 2).
  const std::size_t center = (3 * 7 + 3) * 7 + 3;
  EXPECT_EQ(m.row_ptr()[center + 1] - m.row_ptr()[center], 125);
  EXPECT_LT(m.symmetry_error(), 1e-13);
}

TEST(StencilTest, Poisson125IsSpd) {
  const CsrMatrix m = make_poisson125_csr(6);  // 216 rows: dense check ok
  EXPECT_TRUE(la::is_spd(to_dense_matrix(m), 1e-10));
}

TEST(StencilOperatorTest, MatchesAssembledCsr) {
  for (std::size_t n : {6ul, 8ul}) {
    const StencilOperator3D op(stencil_poisson125(), n, n, n, "op");
    const CsrMatrix m = make_poisson125_csr(n);
    const std::vector<double> x = random_vector(op.rows(), 17);
    std::vector<double> y_op(op.rows()), y_csr(op.rows());
    op.apply(x, y_op);
    m.apply(x, y_csr);
    for (std::size_t i = 0; i < y_op.size(); ++i)
      ASSERT_NEAR(y_op[i], y_csr[i], 1e-12) << "n=" << n << " i=" << i;
  }
}

TEST(StencilOperatorTest, StatsCarryGridMetadata) {
  const StencilOperator3D op(stencil_poisson125(), 8, 8, 8, "op");
  const OperatorStats st = op.stats();
  EXPECT_EQ(st.kind, GridKind::kGrid3d);
  EXPECT_EQ(st.halo_width, 2);
  EXPECT_EQ(st.rows, 512u);
  EXPECT_GT(st.halo_doubles_per_rank(4), 0.0);
  EXPECT_EQ(st.halo_doubles_per_rank(1), 0.0);
}

TEST(SurrogateTest, AllSurrogatesAreSpdAndSized) {
  struct Case {
    CsrMatrix m;
    std::size_t expected_rows;
    std::size_t max_nnz_per_row;
  };
  Case cases[] = {
      {make_ecology2_like(10, 12), 120u, 5u},
      {make_thermal2_like(10, 12), 120u, 9u},
      {make_serena_like(6), 216u, 27u},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.m.rows(), c.expected_rows) << c.m.name();
    EXPECT_LT(c.m.symmetry_error(), 1e-12) << c.m.name();
    EXPECT_LE(c.m.nnz(), c.expected_rows * c.max_nnz_per_row) << c.m.name();
    EXPECT_TRUE(la::is_spd(to_dense_matrix(c.m), 1e-9)) << c.m.name();
  }
}

TEST(SurrogateTest, DeterministicForFixedSeed) {
  const CsrMatrix a = make_thermal2_like(8, 8, 1e3, 42);
  const CsrMatrix b = make_thermal2_like(8, 8, 1e3, 42);
  EXPECT_EQ(a.nnz(), b.nnz());
  for (std::size_t k = 0; k < a.nnz(); ++k)
    EXPECT_EQ(a.values()[k], b.values()[k]);
  const CsrMatrix c = make_thermal2_like(8, 8, 1e3, 43);
  bool any_diff = false;
  for (std::size_t k = 0; k < std::min(a.nnz(), c.nnz()); ++k)
    any_diff |= a.values()[k] != c.values()[k];
  EXPECT_TRUE(any_diff);
}

TEST(MatrixMarketTest, RoundTripGeneral) {
  const CsrMatrix m = make_thermal2_like(6, 5);
  std::stringstream ss;
  write_matrix_market(ss, m);
  const CsrMatrix back = read_matrix_market(ss);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.nnz(), m.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_NEAR(back.entry(i, j), m.entry(i, j), 1e-12);
}

TEST(MatrixMarketTest, ParsesSymmetricFormat) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 1.5\n");
  const CsrMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m.entry(0, 1), -1.0);  // mirrored
  EXPECT_DOUBLE_EQ(m.entry(1, 0), -1.0);
  EXPECT_EQ(m.nnz(), 5u);
}

TEST(MatrixMarketTest, RejectsGarbage) {
  std::stringstream not_mm("hello world\n1 1 1\n");
  EXPECT_THROW(read_matrix_market(not_mm), Error);
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), Error);
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), Error);
}

TEST(SpgemmTest, MatchesDenseProduct) {
  const CsrMatrix a = make_thermal2_like(5, 6);
  const CsrMatrix b = make_ecology2_like(6, 5);
  const CsrMatrix c = multiply(a, b);
  const la::DenseMatrix ref = to_dense_matrix(a) * to_dense_matrix(b);
  EXPECT_LT(la::DenseMatrix::max_abs_diff(to_dense_matrix(c), ref), 1e-10);
}

TEST(SpgemmTest, GalerkinProductIsSymmetric) {
  const CsrMatrix a = assemble_stencil2d(stencil_poisson5(), 8, 8, "p");
  // Simple 2-to-1 aggregation prolongation.
  CooBuilder pb(64, 32);
  for (std::size_t i = 0; i < 64; ++i) pb.add(i, i / 2, 1.0);
  const CsrMatrix p = pb.build("P");
  const CsrMatrix ac = galerkin_product(a, p);
  EXPECT_EQ(ac.rows(), 32u);
  EXPECT_LT(ac.symmetry_error(), 1e-12);
  EXPECT_TRUE(la::is_spd(to_dense_matrix(ac), 1e-10));
}

TEST(PartitionTest, OwnerMatchesRanges) {
  const Partition part(101, 7);
  for (std::size_t i = 0; i < 101; ++i) {
    const int owner = part.owner(i);
    EXPECT_GE(i, part.begin(owner));
    EXPECT_LT(i, part.end(owner));
  }
  EXPECT_THROW(part.owner(101), Error);
}

class DistCsrTest : public ::testing::TestWithParam<int> {};

TEST_P(DistCsrTest, DistributedSpmvMatchesGlobal) {
  const int p = GetParam();
  const CsrMatrix global = make_thermal2_like(11, 13);
  const std::size_t n = global.rows();
  const std::vector<double> x = random_vector(n, 7);
  std::vector<double> y_ref(n);
  global.apply(x, y_ref);

  const Partition part(n, p);
  std::vector<double> y(n, 0.0);
  par::Team::run(p, [&](par::Comm& comm) {
    const DistCsr dist(global, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());
    std::vector<double> xl(x.begin() + static_cast<std::ptrdiff_t>(begin),
                           x.begin() + static_cast<std::ptrdiff_t>(begin + len));
    std::vector<double> yl(len), ghosts;
    dist.apply(comm, xl, yl, ghosts);
    for (std::size_t i = 0; i < len; ++i) y[begin + i] = yl[i];
  });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-12 * (1.0 + std::abs(y_ref[i])))
        << "p=" << p << " i=" << i;
}

TEST_P(DistCsrTest, GhostCountsAreReasonable) {
  const int p = GetParam();
  const CsrMatrix global = assemble_stencil2d(stencil_poisson5(), 10, 10, "g");
  const Partition part(global.rows(), p);
  par::Team::run(p, [&](par::Comm& comm) {
    const DistCsr dist(global, part, comm.rank());
    // 5-pt slab partition needs at most two neighbor rows of ghosts.
    EXPECT_LE(dist.ghost_count(), 2u * 10u);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistCsrTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace pipescg::sparse

// -- distributed stencil ------------------------------------------------

#include "pipescg/sparse/dist_stencil.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/stencil_operator.hpp"

namespace pipescg::sparse {
namespace {

class DistStencilTest : public ::testing::TestWithParam<int> {};

TEST_P(DistStencilTest, MatchesSerialStencilOperator) {
  const int ranks = GetParam();
  const std::size_t n = 12;
  const StencilOperator3D serial(stencil_poisson125(), n, n, n, "ref");
  const std::size_t total = serial.rows();
  std::vector<double> x(total), y_ref(total), y(total, 0.0);
  Rng rng(99);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  serial.apply(x, y_ref);

  par::Team::run(ranks, [&](par::Comm& comm) {
    DistStencil3D dist(stencil_poisson125(), n, n, n, comm.rank(),
                       comm.size());
    const std::size_t plane = n * n;
    const std::size_t begin = dist.z_begin() * plane;
    std::vector<double> xl(x.begin() + static_cast<std::ptrdiff_t>(begin),
                           x.begin() + static_cast<std::ptrdiff_t>(
                                           begin + dist.local_rows()));
    std::vector<double> yl(dist.local_rows());
    dist.apply(comm, xl, yl);
    for (std::size_t i = 0; i < yl.size(); ++i) y[begin + i] = yl[i];
  });
  for (std::size_t i = 0; i < total; ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-12 * (1.0 + std::abs(y_ref[i])))
        << "ranks=" << ranks << " i=" << i;
}

TEST_P(DistStencilTest, RepeatedAppliesAreConsistent) {
  const int ranks = GetParam();
  const std::size_t n = 10;
  par::Team::run(ranks, [&](par::Comm& comm) {
    DistStencil3D dist(stencil_poisson27(), n, n, n, comm.rank(),
                       comm.size());
    std::vector<double> x(dist.local_rows(), 1.0), y1(dist.local_rows()),
        y2(dist.local_rows());
    dist.apply(comm, x, y1);
    dist.apply(comm, x, y2);
    for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_EQ(y1[i], y2[i]);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistStencilTest, ::testing::Values(1, 2, 3, 4));

TEST(DistStencilTest, RejectsTooThinSlabs) {
  // 6 planes over 4 ranks -> some rank owns 1 plane < reach 2.
  EXPECT_THROW(DistStencil3D(stencil_poisson125(), 6, 6, 6, 3, 4), Error);
}

}  // namespace
}  // namespace pipescg::sparse

// -- matrix-powers kernel -------------------------------------------------

#include <cstdint>
#include <cstring>
#include <memory>

#include "pipescg/obs/profiler.hpp"
#include "pipescg/sparse/matrix_powers.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::sparse {
namespace {

// Bit-level ULP distance: map the IEEE-754 pattern to a monotonically
// ordered integer (the radix-sort float trick, sign-crossing safe), then
// difference.
std::uint64_t ulp_distance(double a, double b) {
  auto key = [](double x) {
    std::uint64_t u;
    std::memcpy(&u, &x, sizeof(u));
    return (u & 0x8000000000000000ULL) ? ~u : (u | 0x8000000000000000ULL);
  };
  const std::uint64_t ka = key(a), kb = key(b);
  return ka > kb ? ka - kb : kb - ka;
}

std::vector<double> random_vector_mpk(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

class MatrixPowersTest : public ::testing::TestWithParam<int> {};

// The s-block must match s chained DistCsr applies to <= 64 ULP (the
// acceptance bound); in fact the kernel stores every redundant ghost row in
// its owner's summation order, so the match is bitwise (distance 0) -- the
// ULP helper keeps the assertion meaningful if that ever regresses.
TEST_P(MatrixPowersTest, BlockMatchesRepeatedApply) {
  const int p = GetParam();
  const CsrMatrix mats[] = {make_thermal2_like(11, 13),
                            make_poisson125_csr(5)};
  for (const CsrMatrix& global : mats) {
    const std::size_t n = global.rows();
    const std::vector<double> x = random_vector_mpk(n, 2026);
    const Partition part(n, p);
    for (int depth = 1; depth <= 6; ++depth) {
      par::Team::run(p, [&](par::Comm& comm) {
        const DistCsr dist(global, part, comm.rank());
        const MatrixPowers mpk(global, part, comm.rank(), depth);
        const std::size_t begin = part.begin(comm.rank());
        const std::size_t len = part.local_size(comm.rank());
        const std::vector<double> xl(
            x.begin() + static_cast<std::ptrdiff_t>(begin),
            x.begin() + static_cast<std::ptrdiff_t>(begin + len));

        // Reference: depth chained halo exchanges.
        std::vector<std::vector<double>> ref(
            static_cast<std::size_t>(depth), std::vector<double>(len));
        std::vector<double> ghosts;
        for (std::size_t k = 0; k < ref.size(); ++k)
          dist.apply(comm, k == 0 ? xl : ref[k - 1], ref[k], ghosts);

        // One deep exchange + local sweeps.
        std::vector<std::vector<double>> out(
            static_cast<std::size_t>(depth), std::vector<double>(len));
        std::vector<std::span<double>> outs(out.begin(), out.end());
        MatrixPowers::Scratch scratch;
        mpk.apply(comm, xl, outs, scratch);

        for (std::size_t k = 0; k < ref.size(); ++k)
          for (std::size_t i = 0; i < len; ++i)
            ASSERT_LE(ulp_distance(out[k][i], ref[k][i]), 64u)
                << global.name() << " p=" << p << " depth=" << depth
                << " k=" << k << " i=" << begin + i << " mpk=" << out[k][i]
                << " ref=" << ref[k][i];
      });
    }
  }
}

// Shorter blocks through a deeper kernel reuse the same closure; results
// must not depend on the constructed depth.
TEST_P(MatrixPowersTest, ShortBlocksMatchThroughDeeperKernel) {
  const int p = GetParam();
  const CsrMatrix global = make_thermal2_like(9, 8);
  const std::size_t n = global.rows();
  const std::vector<double> x = random_vector_mpk(n, 11);
  const Partition part(n, p);
  par::Team::run(p, [&](par::Comm& comm) {
    const MatrixPowers deep(global, part, comm.rank(), 5);
    const MatrixPowers shallow(global, part, comm.rank(), 2);
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());
    const std::vector<double> xl(
        x.begin() + static_cast<std::ptrdiff_t>(begin),
        x.begin() + static_cast<std::ptrdiff_t>(begin + len));
    std::vector<std::vector<double>> a(2, std::vector<double>(len));
    std::vector<std::vector<double>> b(2, std::vector<double>(len));
    std::vector<std::span<double>> a_outs(a.begin(), a.end());
    std::vector<std::span<double>> b_outs(b.begin(), b.end());
    MatrixPowers::Scratch scratch;
    deep.apply(comm, xl, a_outs, scratch);
    shallow.apply(comm, xl, b_outs, scratch);
    for (std::size_t k = 0; k < 2; ++k)
      for (std::size_t i = 0; i < len; ++i)
        ASSERT_EQ(a[k][i], b[k][i]) << "k=" << k << " i=" << i;
  });
}

TEST_P(MatrixPowersTest, GhostClosureGrowsWithDepth) {
  const int p = GetParam();
  const CsrMatrix global = make_poisson125_csr(5);
  const Partition part(global.rows(), p);
  par::Team::run(p, [&](par::Comm& comm) {
    const DistCsr dist(global, part, comm.rank());
    std::size_t prev_ghosts = 0;
    for (int depth = 1; depth <= 4; ++depth) {
      const MatrixPowers mpk(global, part, comm.rank(), depth);
      EXPECT_EQ(mpk.local_rows(), dist.local_rows());
      EXPECT_GE(mpk.deep_ghost_count(), prev_ghosts);
      prev_ghosts = mpk.deep_ghost_count();
      if (depth == 1) {
        // Depth 1 degenerates to the plain halo: same closure, no
        // redundant rows.
        EXPECT_EQ(mpk.deep_ghost_count(), dist.ghost_count());
        EXPECT_EQ(mpk.ghost_row_count(), 0u);
        EXPECT_EQ(mpk.redundant_nnz(), 0u);
      } else if (comm.size() > 1) {
        EXPECT_GT(mpk.ghost_row_count(), 0u);
        EXPECT_GT(mpk.redundant_nnz(), 0u);
      }
    }
  });
}

// The headline contract: one halo-exchange epoch per s-SPMV block, versus
// one per SPMV on the chained path, with every rank agreeing on the epoch
// and block counts.
TEST(MatrixPowersTest, OneHaloEpochPerBlock) {
  const CsrMatrix global = make_thermal2_like(10, 9);
  const int ranks = 3;
  const int depth = 4;
  const Partition part(global.rows(), ranks);
  obs::SolveProfile profile(ranks);
  par::Team::run(ranks, [&](par::Comm& comm) {
    obs::Profiler::Install install(&profile.rank(comm.rank()));
    const DistCsr dist(global, part, comm.rank());
    const MatrixPowers mpk(global, part, comm.rank(), depth);
    const std::size_t len = part.local_size(comm.rank());
    std::vector<double> xl(len, 1.0);
    std::vector<std::vector<double>> out(
        static_cast<std::size_t>(depth), std::vector<double>(len));
    std::vector<std::span<double>> outs(out.begin(), out.end());
    MatrixPowers::Scratch scratch;
    mpk.apply(comm, xl, outs, scratch);          // 1 epoch, 1 block
    mpk.apply(comm, xl, outs, scratch);          // 1 epoch, 1 block
    std::vector<double> y(len), ghosts;
    dist.apply(comm, xl, y, ghosts);             // 1 epoch, 0 blocks
  });
  for (int r = 0; r < ranks; ++r) {
    const obs::Profiler::Counters& c = profile.rank(r).counters();
    EXPECT_EQ(c.halo_epochs, 3u) << "rank " << r;
    EXPECT_EQ(c.mpk_blocks, 2u) << "rank " << r;
    EXPECT_GT(c.halo_volume_doubles, 0u) << "rank " << r;
  }
}

class StencilPowersTest : public ::testing::TestWithParam<int> {};

// On the structured grid the powers path runs the same sweep kernel on the
// same values in the same order as chained applies -- bitwise identical.
// depth * reach = 6 ghost planes exceed the 3-plane slabs at 4 ranks, so
// the deep pull list spans multiple peers.
TEST_P(StencilPowersTest, PowersMatchChainedAppliesBitwise) {
  const int ranks = GetParam();
  const std::size_t n = 12;
  const int depth = 3;
  std::vector<double> x(n * n * n);
  Rng rng(5);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  par::Team::run(ranks, [&](par::Comm& comm) {
    DistStencil3D dist(stencil_poisson125(), n, n, n, comm.rank(),
                       comm.size(), depth);
    const std::size_t plane = n * n;
    const std::size_t begin = dist.z_begin() * plane;
    const std::vector<double> xl(
        x.begin() + static_cast<std::ptrdiff_t>(begin),
        x.begin() + static_cast<std::ptrdiff_t>(begin + dist.local_rows()));
    for (int count = 1; count <= depth; ++count) {
      std::vector<std::vector<double>> ref(
          static_cast<std::size_t>(count),
          std::vector<double>(dist.local_rows()));
      for (std::size_t k = 0; k < ref.size(); ++k)
        dist.apply(comm, k == 0 ? xl : ref[k - 1], ref[k]);
      std::vector<std::vector<double>> out(
          static_cast<std::size_t>(count),
          std::vector<double>(dist.local_rows()));
      std::vector<std::span<double>> outs(out.begin(), out.end());
      dist.apply_powers(comm, xl, outs);
      for (std::size_t k = 0; k < ref.size(); ++k)
        for (std::size_t i = 0; i < ref[k].size(); ++i)
          ASSERT_EQ(out[k][i], ref[k][i])
              << "ranks=" << ranks << " count=" << count << " k=" << k
              << " i=" << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, StencilPowersTest,
                         ::testing::Values(1, 2, 3, 4));

INSTANTIATE_TEST_SUITE_P(Ranks, MatrixPowersTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace pipescg::sparse
