// Tests for the sparse module: COO/CSR, Matrix Market I/O, stencils, the
// 125-point operator, surrogates, SpGEMM, partitioning, distributed SPMV.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "pipescg/base/rng.hpp"
#include "pipescg/la/cholesky.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/sparse/coo_builder.hpp"
#include "pipescg/sparse/csr_matrix.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/matrix_market.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/spgemm.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/stencil_operator.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::sparse {
namespace {

std::vector<double> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

la::DenseMatrix to_dense_matrix(const CsrMatrix& m) {
  const std::vector<double> d = m.to_dense();
  la::DenseMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = d[i * m.cols() + j];
  return out;
}

TEST(CooBuilderTest, SumsDuplicates) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  b.add(1, 0, -1.0);
  const CsrMatrix m = b.build();
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.entry(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.entry(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(1, 1), 0.0);
}

TEST(CooBuilderTest, AddSymmetricMirrors) {
  CooBuilder b(3, 3);
  b.add_symmetric(0, 1, 2.0);
  b.add_symmetric(2, 2, 5.0);  // diagonal not duplicated
  const CsrMatrix m = b.build();
  EXPECT_DOUBLE_EQ(m.entry(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.entry(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.entry(2, 2), 5.0);
  EXPECT_EQ(m.nnz(), 3u);
}

TEST(CooBuilderTest, OutOfRangeThrows) {
  CooBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), Error);
}

TEST(CsrMatrixTest, ValidatesStructure) {
  // row_ptr not ending at nnz
  EXPECT_THROW(CsrMatrix(1, 1, {0, 2}, {0}, {1.0}), Error);
  // unsorted columns
  EXPECT_THROW(CsrMatrix(1, 2, {0, 2}, {1, 0}, {1.0, 2.0}), Error);
  // column out of range
  EXPECT_THROW(CsrMatrix(1, 1, {0, 1}, {1}, {1.0}), Error);
}

TEST(CsrMatrixTest, SpmvMatchesDense) {
  const CsrMatrix m = make_thermal2_like(9, 7);
  const std::vector<double> x = random_vector(m.rows(), 3);
  std::vector<double> y(m.rows());
  m.apply(x, y);
  const la::DenseMatrix d = to_dense_matrix(m);
  const std::vector<double> y_ref = d.apply(x);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-12);
}

TEST(CsrMatrixTest, TransposeOfSymmetricIsIdentical) {
  const CsrMatrix m = make_ecology2_like(8, 9);
  const CsrMatrix t = m.transposed();
  EXPECT_EQ(m.nnz(), t.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_DOUBLE_EQ(m.entry(i, j), t.entry(i, j));
}

TEST(CsrMatrixTest, SymmetryErrorDetectsAsymmetry) {
  CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.5);
  b.add(1, 1, 1.0);
  EXPECT_NEAR(b.build().symmetry_error(), 0.5, 1e-14);
}

TEST(CsrMatrixTest, DiagonalExtraction) {
  const CsrMatrix m = assemble_stencil2d(stencil_poisson5(), 4, 4, "p");
  for (double d : m.diagonal()) EXPECT_DOUBLE_EQ(d, 4.0);
}

TEST(StencilTest, Assemble5PointMatchesManualLaplacian) {
  const CsrMatrix m = assemble_stencil2d(stencil_poisson5(), 3, 3, "p");
  // Center row (cell 4) couples to 4 neighbors.
  EXPECT_DOUBLE_EQ(m.entry(4, 4), 4.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 3), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 5), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 7), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(4, 0), 0.0);
  // Corner row keeps only the in-domain couplings (Dirichlet truncation).
  EXPECT_DOUBLE_EQ(m.entry(0, 0), 4.0);
  EXPECT_EQ(m.row_ptr()[1] - m.row_ptr()[0], 3);
}

TEST(StencilTest, StencilPointCounts) {
  EXPECT_EQ(stencil_poisson5().point_count(), 5u);
  EXPECT_EQ(stencil_poisson9().point_count(), 9u);
  EXPECT_EQ(stencil_poisson7().point_count(), 7u);
  EXPECT_EQ(stencil_poisson27().point_count(), 27u);
  EXPECT_EQ(stencil_poisson125().point_count(), 125u);
}

TEST(StencilTest, AssembledOperatorsAreSymmetric) {
  EXPECT_LT(assemble_stencil2d(stencil_poisson9(), 6, 5, "s9").symmetry_error(),
            1e-14);
  EXPECT_LT(
      assemble_stencil3d(stencil_poisson27(), 5, 4, 3, "s27").symmetry_error(),
      1e-14);
}

TEST(StencilTest, Poisson125InteriorRowHas125Nonzeros) {
  const CsrMatrix m = make_poisson125_csr(7);
  // Center cell of the 7^3 grid is fully interior (reach 2).
  const std::size_t center = (3 * 7 + 3) * 7 + 3;
  EXPECT_EQ(m.row_ptr()[center + 1] - m.row_ptr()[center], 125);
  EXPECT_LT(m.symmetry_error(), 1e-13);
}

TEST(StencilTest, Poisson125IsSpd) {
  const CsrMatrix m = make_poisson125_csr(6);  // 216 rows: dense check ok
  EXPECT_TRUE(la::is_spd(to_dense_matrix(m), 1e-10));
}

TEST(StencilOperatorTest, MatchesAssembledCsr) {
  for (std::size_t n : {6ul, 8ul}) {
    const StencilOperator3D op(stencil_poisson125(), n, n, n, "op");
    const CsrMatrix m = make_poisson125_csr(n);
    const std::vector<double> x = random_vector(op.rows(), 17);
    std::vector<double> y_op(op.rows()), y_csr(op.rows());
    op.apply(x, y_op);
    m.apply(x, y_csr);
    for (std::size_t i = 0; i < y_op.size(); ++i)
      ASSERT_NEAR(y_op[i], y_csr[i], 1e-12) << "n=" << n << " i=" << i;
  }
}

TEST(StencilOperatorTest, StatsCarryGridMetadata) {
  const StencilOperator3D op(stencil_poisson125(), 8, 8, 8, "op");
  const OperatorStats st = op.stats();
  EXPECT_EQ(st.kind, GridKind::kGrid3d);
  EXPECT_EQ(st.halo_width, 2);
  EXPECT_EQ(st.rows, 512u);
  EXPECT_GT(st.halo_doubles_per_rank(4), 0.0);
  EXPECT_EQ(st.halo_doubles_per_rank(1), 0.0);
}

TEST(SurrogateTest, AllSurrogatesAreSpdAndSized) {
  struct Case {
    CsrMatrix m;
    std::size_t expected_rows;
    std::size_t max_nnz_per_row;
  };
  Case cases[] = {
      {make_ecology2_like(10, 12), 120u, 5u},
      {make_thermal2_like(10, 12), 120u, 9u},
      {make_serena_like(6), 216u, 27u},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.m.rows(), c.expected_rows) << c.m.name();
    EXPECT_LT(c.m.symmetry_error(), 1e-12) << c.m.name();
    EXPECT_LE(c.m.nnz(), c.expected_rows * c.max_nnz_per_row) << c.m.name();
    EXPECT_TRUE(la::is_spd(to_dense_matrix(c.m), 1e-9)) << c.m.name();
  }
}

TEST(SurrogateTest, DeterministicForFixedSeed) {
  const CsrMatrix a = make_thermal2_like(8, 8, 1e3, 42);
  const CsrMatrix b = make_thermal2_like(8, 8, 1e3, 42);
  EXPECT_EQ(a.nnz(), b.nnz());
  for (std::size_t k = 0; k < a.nnz(); ++k)
    EXPECT_EQ(a.values()[k], b.values()[k]);
  const CsrMatrix c = make_thermal2_like(8, 8, 1e3, 43);
  bool any_diff = false;
  for (std::size_t k = 0; k < std::min(a.nnz(), c.nnz()); ++k)
    any_diff |= a.values()[k] != c.values()[k];
  EXPECT_TRUE(any_diff);
}

TEST(MatrixMarketTest, RoundTripGeneral) {
  const CsrMatrix m = make_thermal2_like(6, 5);
  std::stringstream ss;
  write_matrix_market(ss, m);
  const CsrMatrix back = read_matrix_market(ss);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.nnz(), m.nnz());
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      EXPECT_NEAR(back.entry(i, j), m.entry(i, j), 1e-12);
}

TEST(MatrixMarketTest, ParsesSymmetricFormat) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 1.5\n");
  const CsrMatrix m = read_matrix_market(ss);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_DOUBLE_EQ(m.entry(0, 1), -1.0);  // mirrored
  EXPECT_DOUBLE_EQ(m.entry(1, 0), -1.0);
  EXPECT_EQ(m.nnz(), 5u);
}

TEST(MatrixMarketTest, RejectsGarbage) {
  std::stringstream not_mm("hello world\n1 1 1\n");
  EXPECT_THROW(read_matrix_market(not_mm), Error);
  std::stringstream truncated(
      "%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(truncated), Error);
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), Error);
}

TEST(SpgemmTest, MatchesDenseProduct) {
  const CsrMatrix a = make_thermal2_like(5, 6);
  const CsrMatrix b = make_ecology2_like(6, 5);
  const CsrMatrix c = multiply(a, b);
  const la::DenseMatrix ref = to_dense_matrix(a) * to_dense_matrix(b);
  EXPECT_LT(la::DenseMatrix::max_abs_diff(to_dense_matrix(c), ref), 1e-10);
}

TEST(SpgemmTest, GalerkinProductIsSymmetric) {
  const CsrMatrix a = assemble_stencil2d(stencil_poisson5(), 8, 8, "p");
  // Simple 2-to-1 aggregation prolongation.
  CooBuilder pb(64, 32);
  for (std::size_t i = 0; i < 64; ++i) pb.add(i, i / 2, 1.0);
  const CsrMatrix p = pb.build("P");
  const CsrMatrix ac = galerkin_product(a, p);
  EXPECT_EQ(ac.rows(), 32u);
  EXPECT_LT(ac.symmetry_error(), 1e-12);
  EXPECT_TRUE(la::is_spd(to_dense_matrix(ac), 1e-10));
}

TEST(PartitionTest, OwnerMatchesRanges) {
  const Partition part(101, 7);
  for (std::size_t i = 0; i < 101; ++i) {
    const int owner = part.owner(i);
    EXPECT_GE(i, part.begin(owner));
    EXPECT_LT(i, part.end(owner));
  }
  EXPECT_THROW(part.owner(101), Error);
}

class DistCsrTest : public ::testing::TestWithParam<int> {};

TEST_P(DistCsrTest, DistributedSpmvMatchesGlobal) {
  const int p = GetParam();
  const CsrMatrix global = make_thermal2_like(11, 13);
  const std::size_t n = global.rows();
  const std::vector<double> x = random_vector(n, 7);
  std::vector<double> y_ref(n);
  global.apply(x, y_ref);

  const Partition part(n, p);
  std::vector<double> y(n, 0.0);
  par::Team::run(p, [&](par::Comm& comm) {
    const DistCsr dist(global, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());
    std::vector<double> xl(x.begin() + static_cast<std::ptrdiff_t>(begin),
                           x.begin() + static_cast<std::ptrdiff_t>(begin + len));
    std::vector<double> yl(len), ghosts;
    dist.apply(comm, xl, yl, ghosts);
    for (std::size_t i = 0; i < len; ++i) y[begin + i] = yl[i];
  });
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-12 * (1.0 + std::abs(y_ref[i])))
        << "p=" << p << " i=" << i;
}

TEST_P(DistCsrTest, GhostCountsAreReasonable) {
  const int p = GetParam();
  const CsrMatrix global = assemble_stencil2d(stencil_poisson5(), 10, 10, "g");
  const Partition part(global.rows(), p);
  par::Team::run(p, [&](par::Comm& comm) {
    const DistCsr dist(global, part, comm.rank());
    // 5-pt slab partition needs at most two neighbor rows of ghosts.
    EXPECT_LE(dist.ghost_count(), 2u * 10u);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistCsrTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace pipescg::sparse

// -- distributed stencil ------------------------------------------------

#include "pipescg/sparse/dist_stencil.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/stencil_operator.hpp"

namespace pipescg::sparse {
namespace {

class DistStencilTest : public ::testing::TestWithParam<int> {};

TEST_P(DistStencilTest, MatchesSerialStencilOperator) {
  const int ranks = GetParam();
  const std::size_t n = 12;
  const StencilOperator3D serial(stencil_poisson125(), n, n, n, "ref");
  const std::size_t total = serial.rows();
  std::vector<double> x(total), y_ref(total), y(total, 0.0);
  Rng rng(99);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  serial.apply(x, y_ref);

  par::Team::run(ranks, [&](par::Comm& comm) {
    DistStencil3D dist(stencil_poisson125(), n, n, n, comm.rank(),
                       comm.size());
    const std::size_t plane = n * n;
    const std::size_t begin = dist.z_begin() * plane;
    std::vector<double> xl(x.begin() + static_cast<std::ptrdiff_t>(begin),
                           x.begin() + static_cast<std::ptrdiff_t>(
                                           begin + dist.local_rows()));
    std::vector<double> yl(dist.local_rows());
    dist.apply(comm, xl, yl);
    for (std::size_t i = 0; i < yl.size(); ++i) y[begin + i] = yl[i];
  });
  for (std::size_t i = 0; i < total; ++i)
    ASSERT_NEAR(y[i], y_ref[i], 1e-12 * (1.0 + std::abs(y_ref[i])))
        << "ranks=" << ranks << " i=" << i;
}

TEST_P(DistStencilTest, RepeatedAppliesAreConsistent) {
  const int ranks = GetParam();
  const std::size_t n = 10;
  par::Team::run(ranks, [&](par::Comm& comm) {
    DistStencil3D dist(stencil_poisson27(), n, n, n, comm.rank(),
                       comm.size());
    std::vector<double> x(dist.local_rows(), 1.0), y1(dist.local_rows()),
        y2(dist.local_rows());
    dist.apply(comm, x, y1);
    dist.apply(comm, x, y2);
    for (std::size_t i = 0; i < y1.size(); ++i) ASSERT_EQ(y1[i], y2[i]);
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistStencilTest, ::testing::Values(1, 2, 3, 4));

TEST(DistStencilTest, RejectsTooThinSlabs) {
  // 6 planes over 4 ranks -> some rank owns 1 plane < reach 2.
  EXPECT_THROW(DistStencil3D(stencil_poisson125(), 6, 6, 6, 3, 4), Error);
}

}  // namespace
}  // namespace pipescg::sparse
