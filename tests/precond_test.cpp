// Preconditioner tests: correctness of each application, SPD/symmetry
// preservation (required by CG), and effectiveness (iteration reduction).
#include <gtest/gtest.h>

#include <cmath>

#include "pipescg/base/rng.hpp"
#include "pipescg/krylov/cg.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/la/cholesky.hpp"
#include "pipescg/precond/amg.hpp"
#include "pipescg/precond/chebyshev.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/precond/preconditioner.hpp"
#include "pipescg/precond/ssor.hpp"
#include "pipescg/sparse/coo_builder.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::precond {
namespace {

sparse::CsrMatrix poisson2d(std::size_t n) {
  return sparse::assemble_stencil2d(sparse::stencil_poisson5(), n, n, "p2d");
}

/// Symmetry check via random vectors: (x, M^{-1} y) == (y, M^{-1} x).
void expect_symmetric_apply(const Preconditioner& pc, std::uint64_t seed,
                            double tol) {
  const std::size_t n = pc.rows();
  Rng rng(seed);
  std::vector<double> x(n), y(n), mx(n), my(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1, 1);
    y[i] = rng.uniform(-1, 1);
  }
  pc.apply(x, mx);
  pc.apply(y, my);
  double x_my = 0.0, y_mx = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    x_my += x[i] * my[i];
    y_mx += y[i] * mx[i];
    scale += std::abs(x[i] * my[i]);
  }
  EXPECT_NEAR(x_my, y_mx, tol * (1.0 + scale)) << pc.name();
}

/// Positive definiteness spot check: (x, M^{-1} x) > 0 for random x.
void expect_positive_apply(const Preconditioner& pc, std::uint64_t seed) {
  const std::size_t n = pc.rows();
  Rng rng(seed);
  std::vector<double> x(n), mx(n);
  for (int trial = 0; trial < 5; ++trial) {
    for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform(-1, 1);
    pc.apply(x, mx);
    double quad = 0.0;
    for (std::size_t i = 0; i < n; ++i) quad += x[i] * mx[i];
    EXPECT_GT(quad, 0.0) << pc.name();
  }
}

std::size_t cg_iterations(const sparse::CsrMatrix& a,
                          const Preconditioner* pc) {
  krylov::SerialEngine engine(a, pc);
  krylov::Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  krylov::Vec b = engine.new_vec();
  a.apply(ones.span(), b.span());
  krylov::Vec x = engine.new_vec();
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  opts.max_iterations = 10000;
  const krylov::SolveStats stats =
      krylov::CgSolver().solve(engine, b, x, opts);
  EXPECT_TRUE(stats.converged);
  return stats.iterations;
}

TEST(JacobiTest, AppliesInverseDiagonal) {
  const sparse::CsrMatrix a = poisson2d(4);
  JacobiPreconditioner pc(a);
  std::vector<double> r(a.rows(), 8.0), u(a.rows());
  pc.apply(r, u);
  for (double v : u) EXPECT_DOUBLE_EQ(v, 2.0);  // diag = 4
}

TEST(JacobiTest, RejectsNonPositiveDiagonal) {
  sparse::CooBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(1, 1, -1.0);
  const sparse::CsrMatrix m = b.build();
  EXPECT_THROW(JacobiPreconditioner{m}, Error);
}

TEST(SsorTest, SolvesExactlyOnDiagonalMatrix) {
  // For a diagonal matrix SSOR reduces to the exact inverse.
  sparse::CooBuilder b(3, 3);
  b.add(0, 0, 2.0);
  b.add(1, 1, 4.0);
  b.add(2, 2, 8.0);
  const sparse::CsrMatrix m = b.build();
  SsorPreconditioner pc(m);
  std::vector<double> r{2.0, 4.0, 8.0}, u(3);
  pc.apply(r, u);
  EXPECT_NEAR(u[0], 1.0, 1e-14);
  EXPECT_NEAR(u[1], 1.0, 1e-14);
  EXPECT_NEAR(u[2], 1.0, 1e-14);
}

TEST(SsorTest, SymmetricAndPositive) {
  const sparse::CsrMatrix a = poisson2d(8);
  const SsorPreconditioner pc(a);
  expect_symmetric_apply(pc, 1, 1e-12);
  expect_positive_apply(pc, 2);
}

TEST(SsorTest, RejectsBadOmega) {
  const sparse::CsrMatrix a = poisson2d(4);
  EXPECT_THROW(SsorPreconditioner(a, 0.0), Error);
  EXPECT_THROW(SsorPreconditioner(a, 2.0), Error);
}

TEST(SsorTest, ReducesIterationsVsJacobi) {
  const sparse::CsrMatrix a = poisson2d(24);
  JacobiPreconditioner jacobi(a);
  SsorPreconditioner ssor(a);
  const std::size_t it_jacobi = cg_iterations(a, &jacobi);
  const std::size_t it_ssor = cg_iterations(a, &ssor);
  EXPECT_LT(it_ssor, it_jacobi);
}

TEST(ChebyshevTest, LambdaMaxEstimateIsAccurate) {
  // 5-pt Laplacian scaled by D^{-1}: lambda_max is a touch below 2.
  const sparse::CsrMatrix a = poisson2d(16);
  const double lmax = estimate_lambda_max(a, 30);
  EXPECT_GT(lmax, 1.5);
  EXPECT_LT(lmax, 2.05);
}

TEST(ChebyshevTest, SymmetricPositiveAndEffective) {
  const sparse::CsrMatrix a = poisson2d(16);
  const ChebyshevPreconditioner pc(a, /*degree=*/4);
  expect_symmetric_apply(pc, 3, 1e-11);
  expect_positive_apply(pc, 4);
  JacobiPreconditioner jacobi(a);
  EXPECT_LT(cg_iterations(a, &pc), cg_iterations(a, &jacobi));
}

TEST(AggregationTest, GeometricCoversAllRowsAndCoarsens) {
  const sparse::CsrMatrix a = poisson2d(9);
  const std::vector<std::size_t> agg = aggregate_geometric(a);
  ASSERT_EQ(agg.size(), 81u);
  std::size_t max_id = 0;
  for (std::size_t id : agg) max_id = std::max(max_id, id);
  EXPECT_EQ(max_id + 1, 25u);  // ceil(9/2)^2
}

TEST(AggregationTest, GreedyCoversAllRowsAndCoarsens) {
  const sparse::CsrMatrix a = poisson2d(12);
  const std::vector<std::size_t> agg = aggregate_greedy(a);
  ASSERT_EQ(agg.size(), 144u);
  std::size_t max_id = 0;
  for (std::size_t id : agg) max_id = std::max(max_id, id);
  EXPECT_LT(max_id + 1, 144u / 2);  // meaningful coarsening
}

TEST(MultigridTest, GeometricMgSolvesPoissonFast) {
  const sparse::CsrMatrix a = poisson2d(32);
  auto mg = make_geometric_mg(a);
  EXPECT_GE(mg->num_levels(), 3u);
  const std::size_t it = cg_iterations(a, mg.get());
  EXPECT_LT(it, 25u);  // MG-preconditioned CG: grid-size independent-ish
  JacobiPreconditioner jacobi(a);
  EXPECT_LT(it, cg_iterations(a, &jacobi) / 3);
}

TEST(MultigridTest, AmgSolvesJumpCoefficientProblem) {
  const sparse::CsrMatrix a = sparse::make_thermal2_like(24, 24);
  auto amg = make_amg(a);
  const std::size_t it = cg_iterations(a, amg.get());
  JacobiPreconditioner jacobi(a);
  EXPECT_LT(it, cg_iterations(a, &jacobi));
}

TEST(MultigridTest, SymmetricCycle) {
  const sparse::CsrMatrix a = poisson2d(12);
  auto mg = make_geometric_mg(a);
  expect_symmetric_apply(*mg, 5, 1e-10);
  expect_positive_apply(*mg, 6);
  auto amg = make_amg(a);
  expect_symmetric_apply(*amg, 7, 1e-10);
  expect_positive_apply(*amg, 8);
}

TEST(MultigridTest, OperatorComplexityIsBounded) {
  const sparse::CsrMatrix a = poisson2d(32);
  auto mg = make_geometric_mg(a);
  EXPECT_GT(mg->operator_complexity(), 1.0);
  EXPECT_LT(mg->operator_complexity(), 3.5);
}

TEST(MultigridTest, CostProfileScalesWithHierarchy) {
  const sparse::CsrMatrix a = poisson2d(24);
  auto mg = make_geometric_mg(a);
  const sim::PcCostProfile prof = mg->cost_profile();
  // A V-cycle costs several SPMV equivalents.
  EXPECT_GT(prof.flops, 2.0 * 2.0 * static_cast<double>(a.nnz()));
  EXPECT_GT(prof.halo_exchanges, 2.0);
}

TEST(FactoryTest, MakesAllKnownKinds) {
  const sparse::CsrMatrix a = poisson2d(12);
  for (const char* name : {"jacobi", "ssor", "chebyshev", "mg", "gamg"}) {
    auto pc = make_preconditioner(name, a);
    ASSERT_NE(pc, nullptr) << name;
    EXPECT_EQ(pc->rows(), a.rows()) << name;
    expect_positive_apply(*pc, 99);
  }
  EXPECT_THROW(make_preconditioner("ilu", a), Error);
}

TEST(FactoryTest, CostProfilesOrderedByExpense) {
  // Fig. 4's premise: jacobi << ssor < mg <= gamg in per-apply cost.
  const sparse::CsrMatrix a = poisson2d(24);
  const double jacobi = make_preconditioner("jacobi", a)->cost_profile().flops;
  const double ssor = make_preconditioner("ssor", a)->cost_profile().flops;
  const double mg = make_preconditioner("mg", a)->cost_profile().flops;
  EXPECT_LT(jacobi, ssor);
  EXPECT_LT(ssor, mg);
}

}  // namespace
}  // namespace pipescg::precond
