// Tests for the block-Jacobi composition and the solver monitor callback.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/block_jacobi.hpp"
#include "pipescg/precond/ssor.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::precond {
namespace {

TEST(DiagonalBlockTest, ExtractsExactSubmatrix) {
  const sparse::CsrMatrix a = sparse::make_thermal2_like(8, 8);
  const sparse::Partition part(a.rows(), 3);
  for (int rank = 0; rank < 3; ++rank) {
    const sparse::CsrMatrix block = extract_diagonal_block(a, part, rank);
    const std::size_t begin = part.begin(rank);
    ASSERT_EQ(block.rows(), part.local_size(rank));
    for (std::size_t i = 0; i < block.rows(); ++i)
      for (std::size_t j = 0; j < block.cols(); ++j)
        EXPECT_DOUBLE_EQ(block.entry(i, j), a.entry(begin + i, begin + j));
  }
}

TEST(DiagonalBlockTest, BlocksOfSpdMatrixAreSpd) {
  // Principal submatrices of an SPD matrix are SPD, so every inner
  // preconditioner that requires SPD input must accept them.
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson9(), 12, 12, "p9");
  const sparse::Partition part(a.rows(), 4);
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_NO_THROW({
      BlockJacobiPreconditioner pc(a, part, rank, "ssor");
      (void)pc;
    });
  }
}

TEST(BlockJacobiTest, SingleRankEqualsInnerPreconditioner) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 10, 10, "p");
  const sparse::Partition part(a.rows(), 1);
  BlockJacobiPreconditioner block(a, part, 0, "ssor");
  SsorPreconditioner plain(a);
  std::vector<double> r(a.rows()), u1(a.rows()), u2(a.rows());
  for (std::size_t i = 0; i < r.size(); ++i)
    r[i] = std::sin(0.3 * static_cast<double>(i));
  block.apply(r, u1);
  plain.apply(r, u2);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_DOUBLE_EQ(u1[i], u2[i]);
}

TEST(BlockJacobiTest, NameAndProfileReflectInner) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 8, 8, "p");
  const sparse::Partition part(a.rows(), 2);
  BlockJacobiPreconditioner pc(a, part, 0, "ssor");
  EXPECT_EQ(pc.name(), "block-jacobi(ssor)");
  EXPECT_DOUBLE_EQ(pc.cost_profile().halo_exchanges, 0.0);
}

TEST(BlockJacobiTest, SpmdSolveWithSsorBlocksConverges) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 16, 16, "p");
  const int ranks = 3;
  const sparse::Partition part(a.rows(), ranks);
  std::mutex mutex;
  bool all_converged = true;
  par::Team::run(ranks, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    BlockJacobiPreconditioner pc(a, part, comm.rank(), "ssor");
    krylov::SpmdEngine engine(comm, dist, &pc);
    krylov::Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    krylov::Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    krylov::Vec x = engine.new_vec();
    krylov::SolverOptions opts;
    opts.rtol = 1e-8;
    const auto stats =
        krylov::make_solver("pipe-pscg")->solve(engine, b, x, opts);
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      err = std::max(err, std::abs(x[i] - 1.0));
    std::lock_guard<std::mutex> lock(mutex);
    all_converged = all_converged && stats.converged && err < 1e-5;
  });
  EXPECT_TRUE(all_converged);
}

TEST(MonitorTest, FiresAtEveryCheckpointInOrder) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 12, 12, "p");
  for (const char* method : {"pcg", "pipecg", "pipe-pscg", "scg"}) {
    krylov::SerialEngine engine(a);
    krylov::Vec b = engine.new_vec();
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0;
    krylov::Vec x = engine.new_vec();
    krylov::SolverOptions opts;
    opts.rtol = 1e-7;
    std::vector<krylov::IterationInfo> seen;
    opts.monitor = [&seen](const krylov::IterationInfo& info) {
      seen.push_back(info);
    };
    const auto stats = krylov::make_solver(method)->solve(engine, b, x, opts);
    ASSERT_TRUE(stats.converged) << method;
    ASSERT_EQ(seen.size(), stats.history.size()) << method;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i].iteration, stats.history[i].first) << method;
      if (i > 0) {
        EXPECT_GE(seen[i].iteration, seen[i - 1].iteration);
      }
    }
  }
}

}  // namespace
}  // namespace pipescg::precond
