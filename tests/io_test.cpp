// File-level I/O tests: Matrix Market round trips through the filesystem,
// error paths for malformed files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "pipescg/base/error.hpp"
#include "pipescg/sparse/matrix_market.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::sparse {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "/" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(MatrixMarketFileTest, WriteThenReadRoundTrips) {
  const CsrMatrix m = make_serena_like(6);
  TempFile file("roundtrip.mtx");
  {
    std::ofstream out(file.path());
    ASSERT_TRUE(out.good());
    write_matrix_market(out, m);
  }
  const CsrMatrix back = read_matrix_market_file(file.path());
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.nnz(), m.nnz());
  const auto va = m.values();
  const auto vb = back.values();
  for (std::size_t k = 0; k < m.nnz(); ++k)
    EXPECT_NEAR(va[k], vb[k], 1e-15 * (1.0 + std::abs(va[k])));
}

TEST(MatrixMarketFileTest, LoadedMatrixBehavesLikeOriginal) {
  const CsrMatrix m = make_thermal2_like(9, 9);
  TempFile file("spmv.mtx");
  {
    std::ofstream out(file.path());
    write_matrix_market(out, m);
  }
  const CsrMatrix back = read_matrix_market_file(file.path());
  std::vector<double> x(m.rows());
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = 0.5 + 0.01 * static_cast<double>(i);
  std::vector<double> y1(m.rows()), y2(m.rows());
  m.apply(x, y1);
  back.apply(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(MatrixMarketFileTest, MalformedHeadersThrow) {
  struct Case {
    const char* label;
    const char* content;
  };
  const Case cases[] = {
      {"wrong banner", "%%NotMatrixMarket matrix coordinate real general\n"},
      {"array format", "%%MatrixMarket matrix array real general\n2 2\n1\n"},
      {"complex field",
       "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"},
      {"skew symmetry",
       "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 1\n"},
      {"index out of range",
       "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"},
  };
  for (const Case& c : cases) {
    TempFile file("bad.mtx");
    {
      std::ofstream out(file.path());
      out << c.content;
    }
    EXPECT_THROW(read_matrix_market_file(file.path()), Error) << c.label;
  }
}

TEST(MatrixMarketFileTest, IntegerFieldIsAccepted) {
  TempFile file("int.mtx");
  {
    std::ofstream out(file.path());
    out << "%%MatrixMarket matrix coordinate integer symmetric\n"
        << "2 2 2\n1 1 4\n2 1 -1\n";
  }
  const CsrMatrix m = read_matrix_market_file(file.path());
  EXPECT_DOUBLE_EQ(m.entry(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.entry(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m.entry(1, 0), -1.0);
}

}  // namespace
}  // namespace pipescg::sparse
