// Service-layer certification: the warm Session must be a pure cache (warm
// solves bitwise identical to cold ones, setup counters frozen after
// construction), the batched multi-RHS driver must be column-wise identical
// to independent solves, the persistent team must survive reuse AND a
// failed body, and the admission queue must batch without reordering.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "pipescg/base/error.hpp"
#include "pipescg/fault/spec.hpp"
#include "pipescg/obs/anomaly.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/tracing.hpp"
#include "pipescg/krylov/multi_rhs.hpp"
#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/service/queue.hpp"
#include "pipescg/service/session.hpp"
#include "pipescg/service/solve_context.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::service {
namespace {

sparse::CsrMatrix test_matrix(std::size_t n = 14) {
  return sparse::make_thermal2_like(n, n);
}

std::vector<double> test_rhs(const sparse::CsrMatrix& a, std::size_t j) {
  std::vector<double> xstar(a.rows());
  for (std::size_t i = 0; i < xstar.size(); ++i)
    xstar[i] = 1.0 + 0.5 * std::sin(static_cast<double>(i + 5 * j + 1));
  std::vector<double> b(a.rows(), 0.0);
  a.apply(xstar, b);
  return b;
}

krylov::SolverOptions test_opts() {
  krylov::SolverOptions opts;
  opts.rtol = 1e-8;
  opts.s = 3;
  return opts;
}

TEST(PersistentTeamTest, ReusesRanksAcrossRuns) {
  par::PersistentTeam team(3);
  EXPECT_EQ(team.size(), 3);
  std::atomic<int> visits{0};
  for (int run = 0; run < 4; ++run) {
    team.run([&](par::Comm& comm) {
      EXPECT_EQ(comm.size(), 3);
      // Collectives must work across repeated bodies on the SAME comms
      // (op-id lockstep persists between runs).
      const double v[] = {1.0 + comm.rank()};
      double sum[] = {0.0};
      comm.allreduce_sum(v, sum);
      EXPECT_DOUBLE_EQ(sum[0], 6.0);
      ++visits;
    });
  }
  EXPECT_EQ(team.runs(), 4u);
  EXPECT_EQ(visits.load(), 12);
}

TEST(PersistentTeamTest, RecoversAfterFailedBody) {
  par::PersistentTeam team(2);
  EXPECT_THROW(team.run([&](par::Comm& comm) {
                 if (comm.rank() == 1)
                   throw std::runtime_error("injected body failure");
                 // Rank 0 proceeds without collectives so the team joins.
               }),
               std::runtime_error);
  // A failed body may have broken collective lockstep; the team must have
  // recovered and serve subsequent runs.
  std::atomic<int> visits{0};
  team.run([&](par::Comm& comm) {
    const double v[] = {static_cast<double>(comm.rank())};
    double sum[] = {0.0};
    comm.allreduce_sum(v, sum);
    EXPECT_DOUBLE_EQ(sum[0], 1.0);
    ++visits;
  });
  EXPECT_EQ(visits.load(), 2);
}

TEST(SessionTest, WarmSolveBitwiseIdenticalToCold) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  const krylov::SolverOptions opts = test_opts();
  const std::vector<double> b = test_rhs(a, 0);

  // Cold: a fresh session, first solve.
  Session cold(a, config);
  SolveContext cold_ctx("scg-sspmv", b, opts);
  cold.solve(cold_ctx);
  ASSERT_EQ(cold_ctx.state(), JobState::kDone);
  ASSERT_TRUE(cold_ctx.converged());

  // Warm: the same session after unrelated traffic serves the same request.
  Session warm(a, config);
  SolveContext filler("scg-sspmv", test_rhs(a, 1), opts);
  warm.solve(filler);
  ASSERT_TRUE(filler.converged());
  SolveContext warm_ctx("scg-sspmv", b, opts);
  warm.solve(warm_ctx);
  ASSERT_TRUE(warm_ctx.converged());

  EXPECT_EQ(warm_ctx.stats().iterations, cold_ctx.stats().iterations);
  ASSERT_EQ(warm_ctx.x().size(), cold_ctx.x().size());
  for (std::size_t i = 0; i < warm_ctx.x().size(); ++i)
    EXPECT_EQ(warm_ctx.x()[i], cold_ctx.x()[i]) << "entry " << i;
}

TEST(SessionTest, SetupCountersFreezeAfterConstruction) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 3;
  config.mpk = true;
  Session session(a, config);

  const SetupCounters before = session.setup_counters();
  EXPECT_EQ(before.partition_builds, 1u);
  EXPECT_EQ(before.dist_builds, 3u);
  EXPECT_EQ(before.mpk_builds, 3u);
  EXPECT_EQ(before.pc_builds, 3u);
  EXPECT_EQ(before.team_spawns, 1u);
  EXPECT_EQ(before.warm_hits, 0u);
  EXPECT_GT(session.setup_seconds(), 0.0);

  for (std::size_t j = 0; j < 3; ++j) {
    SolveContext ctx("scg-sspmv", test_rhs(a, j), test_opts());
    session.solve(ctx);
    ASSERT_TRUE(ctx.converged());
  }

  // The cache contract: warm solves perform ZERO re-partitioning,
  // re-distribution, re-closure, or re-factorization, and never respawn
  // the team.
  const SetupCounters after = session.setup_counters();
  EXPECT_EQ(after.partition_builds, before.partition_builds);
  EXPECT_EQ(after.dist_builds, before.dist_builds);
  EXPECT_EQ(after.mpk_builds, before.mpk_builds);
  EXPECT_EQ(after.pc_builds, before.pc_builds);
  EXPECT_EQ(after.team_spawns, before.team_spawns);
  EXPECT_EQ(after.warm_hits, 3u);
  EXPECT_EQ(session.solves(), 3u);
  EXPECT_EQ(session.team_runs(), 3u);
}

TEST(SessionTest, NonBatchableMethodRunsOnWarmTeam) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);
  krylov::SolverOptions opts = test_opts();
  opts.replacement_period = 4;
  SolveContext ctx("pipe-pscg", test_rhs(a, 0), opts);
  session.solve(ctx);
  ASSERT_EQ(ctx.state(), JobState::kDone);
  EXPECT_TRUE(ctx.converged());
  EXPECT_EQ(ctx.stats().method, "pipe-pscg");
}

TEST(SessionTest, FailedJobLeavesSessionUsable) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);
  SolveContext bad("no-such-method", test_rhs(a, 0), test_opts());
  session.solve(bad);
  EXPECT_EQ(bad.state(), JobState::kFailed);
  EXPECT_FALSE(bad.error().empty());

  SolveContext good("scg-sspmv", test_rhs(a, 1), test_opts());
  session.solve(good);
  EXPECT_EQ(good.state(), JobState::kDone);
  EXPECT_TRUE(good.converged());
}

TEST(SessionTest, StepLimitedContextResumesToConvergence) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);
  const krylov::SolverOptions opts = test_opts();

  SolveContext limited("scg-sspmv", test_rhs(a, 0), opts);
  limited.set_step_limit(9);  // 3 outer iterations at s = 3 per submission
  std::size_t guard = 0;
  while (!limited.converged() && ++guard < 200) {
    session.solve(limited);
    ASSERT_EQ(limited.state(), JobState::kDone);
    ASSERT_LE(limited.stats().iterations, 9u);
  }
  EXPECT_TRUE(limited.converged());
  EXPECT_GT(limited.submissions(), 1u);

  // The resumed trajectory is a restarted CG, so iteration counts may
  // differ from one uninterrupted solve -- but the solution must satisfy
  // the same tolerance against the true residual.
  std::vector<double> r(a.rows(), 0.0);
  a.apply(limited.x(), r);
  double rnorm = 0.0;
  double bnorm = 0.0;
  const std::vector<double> b = test_rhs(a, 0);
  for (std::size_t i = 0; i < r.size(); ++i) {
    const double ri = b[i] - r[i];
    rnorm += ri * ri;
    bnorm += b[i] * b[i];
  }
  EXPECT_LT(std::sqrt(rnorm), 10.0 * opts.rtol * std::sqrt(bnorm));
}

TEST(MultiRhsTest, MatchesIndependentSolvesColumnWise) {
  const sparse::CsrMatrix a = test_matrix();
  const krylov::SolverOptions opts = test_opts();
  const std::size_t k = 3;
  ASSERT_LE(k, krylov::max_batch_columns(opts.s));

  // Independent reference solves on a serial engine.
  std::vector<std::vector<double>> x_ref(k);
  std::vector<krylov::SolveStats> stats_ref(k);
  for (std::size_t j = 0; j < k; ++j) {
    krylov::SerialEngine engine(a);
    krylov::Vec b = engine.new_vec();
    const std::vector<double> bj = test_rhs(a, j);
    for (std::size_t i = 0; i < bj.size(); ++i) b[i] = bj[i];
    krylov::Vec x = engine.new_vec();
    stats_ref[j] = krylov::make_solver("scg-sspmv")->solve(engine, b, x, opts);
    ASSERT_TRUE(stats_ref[j].converged);
    x_ref[j].assign(x.data(), x.data() + x.size());
  }

  // One batched solve, all k columns in lockstep with fused dot batches.
  krylov::SerialEngine engine(a);
  std::vector<krylov::Vec> bs;
  std::vector<krylov::Vec> xs;
  for (std::size_t j = 0; j < k; ++j) {
    krylov::Vec b = engine.new_vec();
    const std::vector<double> bj = test_rhs(a, j);
    for (std::size_t i = 0; i < bj.size(); ++i) b[i] = bj[i];
    bs.push_back(std::move(b));
    xs.push_back(engine.new_vec());
  }
  const std::vector<krylov::SolveStats> stats = krylov::scg_multi_solve(
      engine, std::span<const krylov::Vec>(bs), std::span<krylov::Vec>(xs),
      opts);

  ASSERT_EQ(stats.size(), k);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_TRUE(stats[j].converged) << "column " << j;
    EXPECT_EQ(stats[j].iterations, stats_ref[j].iterations) << "column " << j;
    EXPECT_EQ(stats[j].final_rnorm, stats_ref[j].final_rnorm)
        << "column " << j;
    for (std::size_t i = 0; i < x_ref[j].size(); ++i)
      ASSERT_EQ(xs[j][i], x_ref[j][i]) << "column " << j << " entry " << i;
  }
}

TEST(MultiRhsTest, SessionBatchMatchesIndependentSessionSolves) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  const krylov::SolverOptions opts = test_opts();
  const std::size_t k = 3;

  // Independent solves, each on a warm session.
  Session solo(a, config);
  std::vector<std::vector<double>> x_ref(k);
  std::vector<std::size_t> iters_ref(k);
  for (std::size_t j = 0; j < k; ++j) {
    SolveContext ctx("scg-sspmv", test_rhs(a, j), opts);
    solo.solve(ctx);
    ASSERT_TRUE(ctx.converged());
    x_ref[j] = ctx.x();
    iters_ref[j] = ctx.stats().iterations;
  }

  // The same requests as ONE batched team run.
  Session batched(a, config);
  std::vector<std::unique_ptr<SolveContext>> ctxs;
  std::vector<SolveContext*> ptrs;
  for (std::size_t j = 0; j < k; ++j) {
    ctxs.push_back(
        std::make_unique<SolveContext>("scg-sspmv", test_rhs(a, j), opts));
    ptrs.push_back(ctxs.back().get());
  }
  batched.solve_batch(ptrs);
  EXPECT_EQ(batched.team_runs(), 1u);
  EXPECT_EQ(batched.solves(), k);
  for (std::size_t j = 0; j < k; ++j) {
    ASSERT_EQ(ctxs[j]->state(), JobState::kDone);
    EXPECT_TRUE(ctxs[j]->converged());
    EXPECT_EQ(ctxs[j]->stats().iterations, iters_ref[j]) << "column " << j;
    for (std::size_t i = 0; i < x_ref[j].size(); ++i)
      ASSERT_EQ(ctxs[j]->x()[i], x_ref[j][i])
          << "column " << j << " entry " << i;
  }
}

TEST(MultiRhsTest, BatchWidthIsCappedByPayload) {
  // The fused payload k * (2s+1 + s^2) must fit one allreduce slot.
  const std::size_t cap3 = krylov::max_batch_columns(3);
  EXPECT_EQ(cap3, par::Team::kMaxPayload / (2 * 3 + 1 + 3 * 3));
  EXPECT_GE(cap3, 16u);
}

TEST(AdmissionQueueTest, BatchesLongestCompatiblePrefix) {
  const sparse::CsrMatrix a = test_matrix(8);
  const krylov::SolverOptions opts = test_opts();
  SolveContext a1("scg-sspmv", test_rhs(a, 0), opts);
  SolveContext a2("scg-sspmv", test_rhs(a, 1), opts);
  SolveContext other("pipe-pscg", test_rhs(a, 2), opts);
  SolveContext a3("scg-sspmv", test_rhs(a, 3), opts);

  EXPECT_TRUE(batchable(a1, a2));
  EXPECT_FALSE(batchable(a1, other));
  krylov::SolverOptions loose = opts;
  loose.rtol = 1e-4;
  SolveContext different_tol("scg-sspmv", test_rhs(a, 4), loose);
  EXPECT_FALSE(batchable(a1, different_tol));

  AdmissionQueue queue;
  queue.submit(&a1);
  queue.submit(&a2);
  queue.submit(&other);
  queue.submit(&a3);
  EXPECT_EQ(queue.pending(), 4u);
  EXPECT_EQ(a1.state(), JobState::kQueued);

  // FIFO with prefix batching: {a1, a2} pop together, `other` blocks a3
  // from jumping ahead, then each pops singly.
  const std::vector<SolveContext*> first = queue.next_batch(8);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], &a1);
  EXPECT_EQ(first[1], &a2);
  const std::vector<SolveContext*> second = queue.next_batch(8);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], &other);
  const std::vector<SolveContext*> third = queue.next_batch(8);
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0], &a3);
  EXPECT_TRUE(queue.next_batch(8).empty());
  EXPECT_EQ(queue.admitted(), 4u);
  EXPECT_EQ(queue.batches(), 1u);
}

TEST(AdmissionQueueTest, DrainExecutesMixedStream) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);
  const krylov::SolverOptions opts = test_opts();

  std::vector<std::unique_ptr<SolveContext>> stream;
  for (std::size_t j = 0; j < 3; ++j)
    stream.push_back(
        std::make_unique<SolveContext>("scg-sspmv", test_rhs(a, j), opts));
  stream.push_back(
      std::make_unique<SolveContext>("pipe-pscg", test_rhs(a, 3), opts));

  AdmissionQueue queue;
  for (auto& ctx : stream) queue.submit(ctx.get());
  const std::size_t executed = session.drain(queue);
  EXPECT_EQ(executed, 4u);
  EXPECT_EQ(queue.pending(), 0u);
  // 3 batchable jobs in one team run + 1 single = 2 runs.
  EXPECT_EQ(session.team_runs(), 2u);
  EXPECT_EQ(session.queue_latency().count(), 4u);
  for (const auto& ctx : stream) {
    EXPECT_EQ(ctx->state(), JobState::kDone);
    EXPECT_TRUE(ctx->converged());
  }
}

TEST(DeadlineTest, ExpiredJobIsDroppedWithDistinctTerminalState) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);

  SolveContext late("scg-sspmv", test_rhs(a, 0), test_opts());
  late.set_deadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  SolveContext fresh("scg-sspmv", test_rhs(a, 1), test_opts());
  fresh.set_deadline(std::chrono::steady_clock::now() +
                     std::chrono::hours(1));

  AdmissionQueue queue;
  queue.submit(&late);
  queue.submit(&fresh);
  const std::size_t executed = session.drain(queue);
  EXPECT_EQ(executed, 2u);  // both dequeued; one expired at dequeue

  EXPECT_EQ(late.state(), JobState::kExpired);
  EXPECT_STREQ(to_string(late.state()), "expired");
  EXPECT_FALSE(late.converged());
  EXPECT_EQ(late.submissions(), 0u);  // never ran on the team

  EXPECT_EQ(fresh.state(), JobState::kDone);
  EXPECT_TRUE(fresh.converged());

  EXPECT_EQ(session.expired(), 1u);
  EXPECT_EQ(session.solves(), 1u);
  const obs::metrics::SessionSnapshot snap = session.snapshot();
  EXPECT_EQ(snap.expired, 1u);
  obs::metrics::Registry registry;
  obs::metrics::register_session(registry, snap, {});
  EXPECT_NE(registry.prometheus().find("pipescg_session_expired_total"),
            std::string::npos);
}

TEST(DeadlineTest, ResumedChunksRecheckTheDeadline) {
  // A step-limited job whose deadline passes between submissions must not
  // be resubmitted past it: the resumed chunk expires instead of running.
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);

  SolveContext limited("scg-sspmv", test_rhs(a, 0), test_opts());
  limited.set_step_limit(3);  // one outer iteration per submission
  limited.set_deadline(std::chrono::steady_clock::now() +
                       std::chrono::hours(1));
  session.solve(limited);
  ASSERT_EQ(limited.state(), JobState::kDone);
  const std::size_t done_iterations = limited.total_iterations();
  EXPECT_GT(done_iterations, 0u);

  limited.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1));
  session.solve(limited);
  EXPECT_EQ(limited.state(), JobState::kExpired);
  // The partial iterate survives; no further work was spent on it.
  EXPECT_EQ(limited.total_iterations(), done_iterations);
  EXPECT_EQ(limited.submissions(), 1u);
  EXPECT_EQ(session.expired(), 1u);
}

TEST(SessionTest, StabilityDefaultsApplyWhenContextLeavesThemUnset) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  config.basis.type = krylov::BasisType::kChebyshev;
  config.gap_tol = 1e-3;
  Session session(a, config);

  // Context with default (monomial, monitor off) options inherits the
  // session's chebyshev basis and gap monitor.
  SolveContext ctx("scg-sspmv", test_rhs(a, 0), test_opts());
  session.solve(ctx);
  ASSERT_EQ(ctx.state(), JobState::kDone);
  ASSERT_TRUE(ctx.converged());
  EXPECT_EQ(ctx.stats().basis, "chebyshev");
  EXPECT_GT(ctx.stats().basis_lambda_max, 0.0);

  // A context that chose its own basis wins over the session default.
  krylov::SolverOptions own = test_opts();
  own.basis.type = krylov::BasisType::kNewton;
  SolveContext picky("scg-sspmv", test_rhs(a, 1), own);
  session.solve(picky);
  ASSERT_TRUE(picky.converged());
  EXPECT_EQ(picky.stats().basis, "newton");
}

TEST(SessionTest, SnapshotCarriesCountersAndHistograms) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);
  SolveContext ctx("scg-sspmv", test_rhs(a, 0), test_opts());
  session.solve(ctx);
  ASSERT_TRUE(ctx.converged());

  const obs::metrics::SessionSnapshot snap = session.snapshot();
  EXPECT_EQ(snap.ranks, 2);
  EXPECT_EQ(snap.solves, 1u);
  EXPECT_EQ(snap.dist_builds, 2u);
  EXPECT_EQ(snap.warm_hits, 1u);
  ASSERT_NE(snap.solve_latency, nullptr);
  EXPECT_EQ(snap.solve_latency->count(), 1u);

  obs::metrics::Registry registry;
  obs::metrics::register_session(registry, snap, {{"method", "scg-sspmv"}});
  const std::string text = registry.prometheus();
  EXPECT_NE(text.find("pipescg_session_solves_total"), std::string::npos);
  EXPECT_NE(text.find("pipescg_session_solve_latency_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("kind=\"dist\""), std::string::npos);
}

// --- observability: tracing + anomaly detection e2e ------------------------

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(ObservabilityTest, TracedRequestWritesOneMergedPerfettoFile) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pipescg_svc_traces").string();
  std::filesystem::remove_all(dir);
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);
  obs::tracing::TraceSink traces(dir);
  Observability obs;
  obs.traces = &traces;
  session.set_observability(obs);

  SolveContext ctx("scg-sspmv", test_rhs(a, 0), test_opts());
  session.solve(ctx);
  ASSERT_TRUE(ctx.converged());
  ASSERT_FALSE(ctx.trace_path().empty());
  EXPECT_EQ(ctx.trace_path(), traces.path_for(ctx.trace_id()));

  const obs::json::Value doc = obs::json::parse_file(ctx.trace_path());
  EXPECT_DOUBLE_EQ(doc.at("trace_id").as_number(),
                   static_cast<double>(ctx.trace_id()));
  const obs::json::Value& events = doc.at("traceEvents");

  // One named track per rank plus the service track.
  std::vector<std::string> tracks;
  double root_span_id = 0.0;
  std::size_t rank_solves = 0;
  std::size_t outer_iterations = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::json::Value& ev = events.at(i);
    if (ev.at("ph").as_string() == "M" &&
        ev.at("name").as_string() == "thread_name")
      tracks.push_back(ev.at("args").at("name").as_string());
    if (ev.at("ph").as_string() != "X") continue;
    // Every span links back to the request.
    EXPECT_DOUBLE_EQ(ev.at("args").at("trace_id").as_number(),
                     static_cast<double>(ctx.trace_id()));
    if (ev.at("name").as_string() == "request")
      root_span_id = ev.at("args").at("span_id").as_number();
  }
  ASSERT_EQ(tracks.size(), 3u);
  EXPECT_EQ(tracks[0], "rank 0");
  EXPECT_EQ(tracks[1], "rank 1");
  EXPECT_EQ(tracks[2], "service");
  ASSERT_NE(root_span_id, 0.0);
  // Every rank's root span nests directly under the request span, and each
  // rank recorded per-outer-iteration checkpoint spans.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::json::Value& ev = events.at(i);
    if (ev.at("ph").as_string() != "X") continue;
    if (ev.at("name").as_string() == "rank_solve") {
      ++rank_solves;
      EXPECT_DOUBLE_EQ(ev.at("args").at("parent_span_id").as_number(),
                       root_span_id);
    }
    if (ev.at("name").as_string() == "outer_iteration") ++outer_iterations;
  }
  EXPECT_EQ(rank_solves, 2u);
  EXPECT_GE(outer_iterations, 2u);
  std::filesystem::remove_all(dir);
}

TEST(ObservabilityTest, BatchedColumnsShareOneMergedTrace) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pipescg_batch_traces")
          .string();
  std::filesystem::remove_all(dir);
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);
  obs::tracing::TraceSink traces(dir);
  Observability obs;
  obs.traces = &traces;
  session.set_observability(obs);

  SolveContext c0("scg-sspmv", test_rhs(a, 0), test_opts());
  SolveContext c1("scg-sspmv", test_rhs(a, 1), test_opts());
  const std::vector<SolveContext*> ptrs = {&c0, &c1};
  session.solve_batch(ptrs);
  ASSERT_TRUE(c0.converged());
  ASSERT_TRUE(c1.converged());
  // The merged file is keyed by the batch head's id; every batched column
  // points at the same file.
  EXPECT_EQ(c0.trace_path(), traces.path_for(c0.trace_id()));
  EXPECT_EQ(c1.trace_path(), c0.trace_path());
  const obs::json::Value doc = obs::json::parse_file(c0.trace_path());
  EXPECT_DOUBLE_EQ(doc.at("trace_id").as_number(),
                   static_cast<double>(c0.trace_id()));
  std::filesystem::remove_all(dir);
}

TEST(ObservabilityTest, TracedSolveIsBitwiseIdenticalToUntraced) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pipescg_bitwise_traces")
          .string();
  std::filesystem::remove_all(dir);
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  const krylov::SolverOptions opts = test_opts();
  const std::vector<double> b = test_rhs(a, 0);

  Session plain(a, config);
  SolveContext bare("scg-sspmv", b, opts);
  plain.solve(bare);
  ASSERT_TRUE(bare.converged());

  Session observed(a, config);
  obs::tracing::TraceSink traces(dir);
  obs::anomaly::AlertSink alerts;
  obs::metrics::Registry registry;
  Observability obs;
  obs.traces = &traces;
  obs.alerts = &alerts;
  obs.registry = &registry;
  observed.set_observability(obs);
  SolveContext watched("scg-sspmv", b, opts);
  observed.solve(watched);
  ASSERT_TRUE(watched.converged());

  // The whole observability stack only READS measurements: identical
  // iteration count, identical final rnorm, bitwise-identical iterate.
  EXPECT_EQ(watched.stats().iterations, bare.stats().iterations);
  EXPECT_EQ(watched.stats().final_rnorm, bare.stats().final_rnorm);
  ASSERT_EQ(watched.x().size(), bare.x().size());
  for (std::size_t i = 0; i < watched.x().size(); ++i)
    ASSERT_EQ(watched.x()[i], bare.x()[i]) << "entry " << i;
  std::filesystem::remove_all(dir);
}

TEST(ObservabilityTest, SlowRankFaultRaisesExactlyOneStragglerAlert) {
  const sparse::CsrMatrix a = test_matrix(24);
  const krylov::SolverOptions opts = test_opts();
  obs::anomaly::StragglerConfig straggler;
  straggler.window = 4;
  straggler.consecutive = 2;
  straggler.min_mean_seconds = 1e-5;

  // Clean run first: balanced ranks must raise nothing.
  {
    SessionConfig config;
    config.ranks = 3;
    Session session(a, config);
    obs::anomaly::AlertSink alerts;
    Observability obs;
    obs.alerts = &alerts;
    obs.straggler = straggler;
    session.set_observability(obs);
    SolveContext ctx("scg-sspmv", test_rhs(a, 0), opts);
    session.solve(ctx);
    ASSERT_TRUE(ctx.converged());
    for (const obs::anomaly::Alert& alert : alerts.alerts())
      EXPECT_NE(alert.family, "straggler") << alert.message;
  }

  // Same solve with rank 1 computing 16x slower: its own waits collapse
  // while both peers spin on it, and the detector must blame exactly rank 1
  // exactly once.
  const std::string alerts_path =
      (std::filesystem::temp_directory_path() / "pipescg_alerts.jsonl")
          .string();
  SessionConfig config;
  config.ranks = 3;
  config.fault_specs =
      fault::parse_fault_specs("rank=1:kind=slow:factor=16");
  Session session(a, config);
  obs::anomaly::AlertSink alerts(alerts_path);
  Observability obs;
  obs.alerts = &alerts;
  obs.straggler = straggler;
  session.set_observability(obs);
  SolveContext ctx("scg-sspmv", test_rhs(a, 0), opts);
  session.solve(ctx);
  ASSERT_TRUE(ctx.converged());

  std::vector<obs::anomaly::Alert> straggler_alerts;
  for (const obs::anomaly::Alert& alert : alerts.alerts())
    if (alert.family == "straggler") straggler_alerts.push_back(alert);
  ASSERT_EQ(straggler_alerts.size(), 1u);
  EXPECT_EQ(straggler_alerts[0].rank, 1);
  EXPECT_EQ(straggler_alerts[0].trace_id, ctx.trace_id());
  EXPECT_LE(straggler_alerts[0].value, straggler_alerts[0].threshold);

  // The JSONL stream round-trips the same alert for the ops console.
  const std::vector<obs::anomaly::Alert> from_file =
      obs::anomaly::AlertSink::parse_jsonl(slurp(alerts_path));
  ASSERT_EQ(from_file.size(), alerts.emitted());
  bool found = false;
  for (const obs::anomaly::Alert& alert : from_file)
    if (alert.family == "straggler" && alert.rank == 1 &&
        alert.trace_id == ctx.trace_id())
      found = true;
  EXPECT_TRUE(found);
  std::remove(alerts_path.c_str());
}

TEST(ObservabilityTest, ExpiredJobFlushesTerminalMetricsAndAlerts) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);

  obs::metrics::Registry registry;
  const std::string prom_path =
      ::testing::TempDir() + "pipescg_expired.prom";
  std::remove(prom_path.c_str());
  obs::metrics::MetricsSampler sampler(registry, prom_path,
                                       /*period_ms=*/60'000.0);
  obs::anomaly::AlertSink alerts;
  Observability obs;
  obs.registry = &registry;
  obs.sampler = &sampler;
  obs.alerts = &alerts;
  session.set_observability(obs);

  SolveContext late("scg-sspmv", test_rhs(a, 0), test_opts());
  late.set_deadline(std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1));
  AdmissionQueue queue;
  queue.submit(&late);
  session.drain(queue);
  EXPECT_EQ(late.state(), JobState::kExpired);

  // The expiry flushed a snapshot immediately -- the sampler never ticked
  // on its own (60s period, never started), yet the terminal counter is on
  // disk.
  EXPECT_GE(sampler.samples(), 1u);
  EXPECT_NE(slurp(prom_path).find("pipescg_live_expired_total 1"),
            std::string::npos);

  // ...and the expiry raised a critical deadline_pressure alert carrying
  // the request's trace id.
  bool found = false;
  for (const obs::anomaly::Alert& alert : alerts.alerts())
    if (alert.family == "deadline_pressure" && alert.severity == "critical" &&
        alert.trace_id == late.trace_id())
      found = true;
  EXPECT_TRUE(found);
  std::remove(prom_path.c_str());
}

TEST(ObservabilityTest, QueueSaturationFiresOnTheRisingEdgeOnly) {
  const sparse::CsrMatrix a = test_matrix();
  SessionConfig config;
  config.ranks = 2;
  Session session(a, config);
  obs::anomaly::AlertSink alerts;
  Observability obs;
  obs.alerts = &alerts;
  obs.detectors = false;  // isolate the admission-side monitor
  obs.queue_pressure.depth_threshold = 2;
  session.set_observability(obs);

  std::vector<std::unique_ptr<SolveContext>> stream;
  for (std::size_t j = 0; j < 3; ++j)
    stream.push_back(std::make_unique<SolveContext>("scg-sspmv",
                                                    test_rhs(a, j),
                                                    test_opts()));
  AdmissionQueue queue;
  for (auto& ctx : stream) queue.submit(ctx.get());
  session.drain(queue);
  for (const auto& ctx : stream) ASSERT_TRUE(ctx->converged());

  std::size_t saturation = 0;
  for (const obs::anomaly::Alert& alert : alerts.alerts())
    if (alert.family == "queue_saturation") ++saturation;
  EXPECT_EQ(saturation, 1u);
}

}  // namespace
}  // namespace pipescg::service
