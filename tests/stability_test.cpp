// Tests for the finite-precision robustness layer of the pipelined s-step
// solvers: verified acceptance (no spurious convergence), residual
// replacement (truth anchoring), the divergence safeguard, and the Hybrid
// switch -- the machinery behind the paper's Section V discussion and the
// Hybrid-pipelined method of Section VI-B.
#include <gtest/gtest.h>

#include <cmath>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::krylov {
namespace {

struct Outcome {
  SolveStats stats;
  double true_rel_residual;  // ||b - A x|| / ||b||_2
};

Outcome run_case(const std::string& method, const sparse::CsrMatrix& a,
        SolverOptions opts) {
  precond::JacobiPreconditioner pc(a);
  SerialEngine engine(
      a, solver_uses_preconditioner(method) ? &pc : nullptr);
  Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  Vec b = engine.new_vec();
  engine.apply_op(ones, b);
  Vec x = engine.new_vec();
  opts.compute_true_residual = true;
  Outcome result;
  result.stats = make_solver(method)->solve(engine, b, x, opts);
  const double b2 = std::sqrt(engine.dot(b, b));
  result.true_rel_residual = result.stats.true_residual / b2;
  return result;
}

TEST(VerifiedAcceptanceTest, ConvergedImpliesTrueResidualHonorsTolerance) {
  // The ill-conditioned regime where recurred residuals can lie.  Whatever
  // the outcome, a `converged` verdict must be backed by the true residual.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(96, 96);
  for (const char* method : {"pipe-scg", "pipe-pscg"}) {
    for (double rtol : {1e-2, 1e-5}) {
      SolverOptions opts;
      opts.rtol = rtol;
      opts.max_iterations = 100000;
      const Outcome r = run_case(method, a, opts);
      if (r.stats.converged) {
        // The convergence test uses the preconditioned flavor; allow the
        // flavor conversion factor but demand the same order of magnitude.
        EXPECT_LT(r.stats.final_rnorm, rtol * r.stats.b_norm)
            << method << " rtol=" << rtol;
      } else {
        EXPECT_TRUE(r.stats.stagnated || r.stats.breakdown)
            << method << " rtol=" << rtol
            << ": non-convergence must be flagged";
      }
    }
  }
}

TEST(VerifiedAcceptanceTest, PipelinedVariantsDoNotLieOnEasyProblems) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 24, 24, "p");
  for (const char* method : {"pipe-scg", "pipe-pscg", "pipecg-oati"}) {
    SolverOptions opts;
    opts.rtol = 1e-9;
    const Outcome r = run_case(method, a, opts);
    ASSERT_TRUE(r.stats.converged) << method;
    EXPECT_LT(r.true_rel_residual, 1e-7) << method;
  }
}

TEST(ReplacementTest, DisabledReproducesPaperPureRecurrences) {
  // replacement_period = -1 must produce exactly s SPMVs per s iterations
  // in steady state (the paper's Alg. 5); the auto setting adds the
  // documented anchoring overhead.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(40, 40);
  auto spmvs_per_iter = [&](int period) {
    precond::JacobiPreconditioner pc(a);
    auto counters = [&](std::size_t iters) {
      sim::EventTrace trace;
      SerialEngine engine(a, &pc, &trace);
      Vec b = engine.new_vec();
      for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0;
      Vec x = engine.new_vec();
      SolverOptions opts;
      opts.rtol = 1e-30;
      opts.atol = 0.0;
      opts.max_iterations = iters;
      opts.replacement_period = period;
      make_solver("pipe-pscg")->solve(engine, b, x, opts);
      return trace.counters().spmvs;
    };
    return (static_cast<double>(counters(96)) - counters(48)) / 48.0;
  };
  EXPECT_NEAR(spmvs_per_iter(-1), 1.0, 0.02);      // pure: s per s
  EXPECT_GT(spmvs_per_iter(4), 1.15);              // anchoring overhead
}

TEST(ReplacementTest, TightAnchoringExtendsReachableTolerance) {
  // On the hard surrogate, pure recurrences stall early; period-4 anchoring
  // reaches tolerances the pure method cannot.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(96, 96);
  SolverOptions pure;
  pure.rtol = 1e-6;
  pure.max_iterations = 50000;
  pure.replacement_period = -1;
  SolverOptions anchored = pure;
  anchored.replacement_period = 4;
  const Outcome r_pure = run_case("pipe-pscg", a, pure);
  const Outcome r_anchored = run_case("pipe-pscg", a, anchored);
  EXPECT_TRUE(r_anchored.stats.converged);
  EXPECT_LT(r_anchored.true_rel_residual,
            std::max(r_pure.true_rel_residual, 1e-5));
}

TEST(HybridTest, SwitchesAfterStagnationAndConverges) {
  const sparse::CsrMatrix a = sparse::make_ecology2_like(96, 96);
  SolverOptions opts;
  opts.rtol = 1e-7;
  opts.max_iterations = 100000;
  const Outcome hybrid = run_case("hybrid", a, opts);
  EXPECT_TRUE(hybrid.stats.converged);
  EXPECT_LT(hybrid.stats.final_rnorm, opts.rtol * hybrid.stats.b_norm);
}

TEST(HybridTest, NoSwitchWhenPhaseOneSuffices) {
  // On a benign problem PIPE-PsCG converges directly; the hybrid must not
  // pay a second phase (iteration count equals the plain run's).
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 24, 24, "p");
  SolverOptions opts;
  opts.rtol = 1e-8;
  const Outcome plain = run_case("pipe-pscg", a, opts);
  SolverOptions hopts = opts;
  hopts.replacement_period = 4;  // hybrid phase 1 default
  const Outcome tuned_plain = run_case("pipe-pscg", a, hopts);
  const Outcome hybrid = run_case("hybrid", a, opts);
  ASSERT_TRUE(plain.stats.converged);
  ASSERT_TRUE(hybrid.stats.converged);
  EXPECT_EQ(hybrid.stats.iterations, tuned_plain.stats.iterations);
}

TEST(SafeguardTest, DivergenceIsFlaggedNotReturnedAsSuccess) {
  // Force the fragile regime: deep s, no replacement, tight tolerance.
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 20, 20, "p");
  SolverOptions opts;
  opts.rtol = 1e-10;
  opts.s = 6;
  opts.replacement_period = -1;
  opts.max_iterations = 50000;
  const Outcome r = run_case("pipe-pscg", a, opts);
  if (!r.stats.converged) {
    EXPECT_TRUE(r.stats.stagnated || r.stats.breakdown);
    EXPECT_LT(r.stats.iterations, opts.max_iterations);
  } else {
    EXPECT_LT(r.true_rel_residual, 1e-6);
  }
}

TEST(TrueNormTest, MatchesDirectComputation) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 10, 10, "p");
  precond::JacobiPreconditioner pc(a);
  SerialEngine engine(a, &pc);
  Vec b = engine.new_vec(), x = engine.new_vec();
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = std::sin(0.1 * static_cast<double>(i));
    x[i] = 0.01 * static_cast<double>(i);
  }
  Vec s1 = engine.new_vec(), s2 = engine.new_vec();
  const double unprec = sstep::true_flavored_norm(
      engine, b, x, NormType::kUnpreconditioned, s1, s2);
  // Direct: ||b - A x||.
  Vec ax = engine.new_vec(), r = engine.new_vec();
  engine.apply_op(x, ax);
  engine.waxpy(r, -1.0, ax, b);
  EXPECT_NEAR(unprec, std::sqrt(engine.dot(r, r)), 1e-12);
  // Preconditioned flavor: ||D^{-1} r||; natural: sqrt(r^T D^{-1} r).
  const double prec = sstep::true_flavored_norm(
      engine, b, x, NormType::kPreconditioned, s1, s2);
  const double natural = sstep::true_flavored_norm(
      engine, b, x, NormType::kNatural, s1, s2);
  Vec u = engine.new_vec();
  engine.apply_pc(r, u);
  EXPECT_NEAR(prec, std::sqrt(engine.dot(u, u)), 1e-12);
  EXPECT_NEAR(natural, std::sqrt(engine.dot(r, u)), 1e-12);
}

}  // namespace
}  // namespace pipescg::krylov
