// Tests for the finite-precision robustness layer of the pipelined s-step
// solvers: verified acceptance (no spurious convergence), residual
// replacement (truth anchoring), the divergence safeguard, and the Hybrid
// switch -- the machinery behind the paper's Section V discussion and the
// Hybrid-pipelined method of Section VI-B.
#include <gtest/gtest.h>

#include <cmath>

#include "pipescg/fault/recovery.hpp"
#include "pipescg/krylov/basis.hpp"
#include "pipescg/krylov/multi_rhs.hpp"
#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::krylov {
namespace {

struct Outcome {
  SolveStats stats;
  double true_rel_residual;  // ||b - A x|| / ||b||_2
};

Outcome run_case(const std::string& method, const sparse::CsrMatrix& a,
        SolverOptions opts) {
  precond::JacobiPreconditioner pc(a);
  SerialEngine engine(
      a, solver_uses_preconditioner(method) ? &pc : nullptr);
  Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  Vec b = engine.new_vec();
  engine.apply_op(ones, b);
  Vec x = engine.new_vec();
  opts.compute_true_residual = true;
  Outcome result;
  result.stats = make_solver(method)->solve(engine, b, x, opts);
  const double b2 = std::sqrt(engine.dot(b, b));
  result.true_rel_residual = result.stats.true_residual / b2;
  return result;
}

TEST(VerifiedAcceptanceTest, ConvergedImpliesTrueResidualHonorsTolerance) {
  // The ill-conditioned regime where recurred residuals can lie.  Whatever
  // the outcome, a `converged` verdict must be backed by the true residual.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(96, 96);
  for (const char* method : {"pipe-scg", "pipe-pscg"}) {
    for (double rtol : {1e-2, 1e-5}) {
      SolverOptions opts;
      opts.rtol = rtol;
      opts.max_iterations = 100000;
      const Outcome r = run_case(method, a, opts);
      if (r.stats.converged) {
        // The convergence test uses the preconditioned flavor; allow the
        // flavor conversion factor but demand the same order of magnitude.
        EXPECT_LT(r.stats.final_rnorm, rtol * r.stats.b_norm)
            << method << " rtol=" << rtol;
      } else {
        EXPECT_TRUE(r.stats.stagnated || r.stats.breakdown)
            << method << " rtol=" << rtol
            << ": non-convergence must be flagged";
      }
    }
  }
}

TEST(VerifiedAcceptanceTest, PipelinedVariantsDoNotLieOnEasyProblems) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 24, 24, "p");
  for (const char* method : {"pipe-scg", "pipe-pscg", "pipecg-oati"}) {
    SolverOptions opts;
    opts.rtol = 1e-9;
    const Outcome r = run_case(method, a, opts);
    ASSERT_TRUE(r.stats.converged) << method;
    EXPECT_LT(r.true_rel_residual, 1e-7) << method;
  }
}

TEST(ReplacementTest, DisabledReproducesPaperPureRecurrences) {
  // replacement_period = -1 must produce exactly s SPMVs per s iterations
  // in steady state (the paper's Alg. 5); the auto setting adds the
  // documented anchoring overhead.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(40, 40);
  auto spmvs_per_iter = [&](int period) {
    precond::JacobiPreconditioner pc(a);
    auto counters = [&](std::size_t iters) {
      sim::EventTrace trace;
      SerialEngine engine(a, &pc, &trace);
      Vec b = engine.new_vec();
      for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0;
      Vec x = engine.new_vec();
      SolverOptions opts;
      opts.rtol = 1e-30;
      opts.atol = 0.0;
      opts.max_iterations = iters;
      opts.replacement_period = period;
      make_solver("pipe-pscg")->solve(engine, b, x, opts);
      return trace.counters().spmvs;
    };
    return (static_cast<double>(counters(96)) - counters(48)) / 48.0;
  };
  EXPECT_NEAR(spmvs_per_iter(-1), 1.0, 0.02);      // pure: s per s
  EXPECT_GT(spmvs_per_iter(4), 1.15);              // anchoring overhead
}

TEST(ReplacementTest, TightAnchoringExtendsReachableTolerance) {
  // On the hard surrogate, pure recurrences stall early; period-4 anchoring
  // reaches tolerances the pure method cannot.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(96, 96);
  SolverOptions pure;
  pure.rtol = 1e-6;
  pure.max_iterations = 50000;
  pure.replacement_period = -1;
  SolverOptions anchored = pure;
  anchored.replacement_period = 4;
  const Outcome r_pure = run_case("pipe-pscg", a, pure);
  const Outcome r_anchored = run_case("pipe-pscg", a, anchored);
  EXPECT_TRUE(r_anchored.stats.converged);
  EXPECT_LT(r_anchored.true_rel_residual,
            std::max(r_pure.true_rel_residual, 1e-5));
}

TEST(HybridTest, SwitchesAfterStagnationAndConverges) {
  const sparse::CsrMatrix a = sparse::make_ecology2_like(96, 96);
  SolverOptions opts;
  opts.rtol = 1e-7;
  opts.max_iterations = 100000;
  const Outcome hybrid = run_case("hybrid", a, opts);
  EXPECT_TRUE(hybrid.stats.converged);
  EXPECT_LT(hybrid.stats.final_rnorm, opts.rtol * hybrid.stats.b_norm);
}

TEST(HybridTest, NoSwitchWhenPhaseOneSuffices) {
  // On a benign problem PIPE-PsCG converges directly; the hybrid must not
  // pay a second phase (iteration count equals the plain run's).
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 24, 24, "p");
  SolverOptions opts;
  opts.rtol = 1e-8;
  const Outcome plain = run_case("pipe-pscg", a, opts);
  SolverOptions hopts = opts;
  hopts.replacement_period = 4;  // hybrid phase 1 default
  const Outcome tuned_plain = run_case("pipe-pscg", a, hopts);
  const Outcome hybrid = run_case("hybrid", a, opts);
  ASSERT_TRUE(plain.stats.converged);
  ASSERT_TRUE(hybrid.stats.converged);
  EXPECT_EQ(hybrid.stats.iterations, tuned_plain.stats.iterations);
}

TEST(SafeguardTest, DivergenceIsFlaggedNotReturnedAsSuccess) {
  // Force the fragile regime: deep s, no replacement, tight tolerance.
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 20, 20, "p");
  SolverOptions opts;
  opts.rtol = 1e-10;
  opts.s = 6;
  opts.replacement_period = -1;
  opts.max_iterations = 50000;
  const Outcome r = run_case("pipe-pscg", a, opts);
  if (!r.stats.converged) {
    EXPECT_TRUE(r.stats.stagnated || r.stats.breakdown);
    EXPECT_LT(r.stats.iterations, opts.max_iterations);
  } else {
    EXPECT_LT(r.true_rel_residual, 1e-6);
  }
}

TEST(BasisTest, ShiftedBasesConvergeWhereMonomialStagnatesAtLargeS) {
  // The fig3 cliff: at s = 8 the monomial powers of the ill-conditioned
  // surrogate collapse onto the dominant eigenvector and the scalar work
  // stagnates even with period-16 anchoring; the Newton and Chebyshev
  // families keep the basis Gram matrix well conditioned and converge.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(64, 64);
  SolverOptions opts;
  opts.rtol = 1e-6;
  opts.s = 8;
  opts.max_iterations = 40000;
  opts.replacement_period = 16;
  opts.recovery = false;  // no degrade-s rescue: measure the basis itself

  const Outcome mono = run_case("pipe-pscg", a, opts);
  EXPECT_FALSE(mono.stats.converged) << "monomial s=8 unexpectedly converged";

  for (const BasisType type : {BasisType::kNewton, BasisType::kChebyshev}) {
    SolverOptions shifted = opts;
    shifted.basis.type = type;
    const Outcome r = run_case("pipe-pscg", a, shifted);
    EXPECT_TRUE(r.stats.converged) << to_string(type);
    EXPECT_LT(r.true_rel_residual, 1e-4) << to_string(type);
    EXPECT_EQ(r.stats.basis, to_string(type));
    EXPECT_GT(r.stats.basis_lambda_max, r.stats.basis_lambda_min);
  }
}

TEST(BasisTest, ShiftedBasisKeepsTheAllreduceSchedule) {
  // Same outer-iteration count => same collective count: the Gram payload
  // is wider, but the number of allreduces per outer iteration (and the
  // SPMV count) must not change -- that is the headline constraint of the
  // shifted-basis design.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(32, 32);
  auto counters = [&](BasisType type) {
    precond::JacobiPreconditioner pc(a);
    sim::EventTrace trace;
    SerialEngine engine(a, &pc, &trace);
    Vec b = engine.new_vec();
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0;
    Vec x = engine.new_vec();
    SolverOptions opts;
    opts.rtol = 1e-30;  // run to the iteration cap
    opts.atol = 0.0;
    opts.s = 4;
    opts.max_iterations = 64;  // 16 outer iterations
    opts.replacement_period = -1;
    opts.recovery = false;
    opts.basis.type = type;
    make_solver("pipe-pscg")->solve(engine, b, x, opts);
    return trace.counters();
  };
  const auto mono = counters(BasisType::kMonomial);
  const auto cheb = counters(BasisType::kChebyshev);
  EXPECT_EQ(cheb.allreduces, mono.allreduces + 10u)
      << "chebyshev may add only the SETUP dots of the power-iteration "
         "interval estimate (one per power iteration), never per-iteration "
         "collectives";
  EXPECT_EQ(cheb.spmvs, mono.spmvs + 10u)
      << "chebyshev may add only the 10 setup power-iteration SPMVs";
}

TEST(BasisTest, GapMonitoredSolveIsDeterministic) {
  // Residual replacement + gap monitoring must not introduce run-to-run
  // nondeterminism: two identical solves take bitwise-identical
  // trajectories.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(48, 48);
  SolverOptions opts;
  opts.rtol = 1e-6;
  opts.s = 6;
  opts.max_iterations = 30000;
  opts.basis.type = BasisType::kChebyshev;
  opts.replacement_period = 16;
  opts.gap_tol = 1e-2;
  opts.gap_check_period = 4;
  const Outcome first = run_case("pipe-pscg", a, opts);
  const Outcome second = run_case("pipe-pscg", a, opts);
  EXPECT_EQ(first.stats.iterations, second.stats.iterations);
  EXPECT_EQ(first.stats.final_rnorm, second.stats.final_rnorm);  // bitwise
  EXPECT_EQ(first.stats.replacements, second.stats.replacements);
  EXPECT_EQ(first.stats.gap_checks, second.stats.gap_checks);
  EXPECT_GT(first.stats.gap_checks, 0u);
  EXPECT_GE(first.stats.last_residual_gap, 0.0);
}

TEST(BasisTest, MultiRhsCarriesTheShiftedBasis) {
  // The batched driver must stay column-wise identical to single-RHS
  // scg-sspmv under a shifted basis.
  const sparse::CsrMatrix a = sparse::make_thermal2_like(14, 14);
  SolverOptions opts;
  opts.rtol = 1e-8;
  opts.s = 4;
  opts.basis.type = BasisType::kChebyshev;

  auto make_b = [&](SerialEngine& engine, std::size_t j) {
    Vec b = engine.new_vec();
    for (std::size_t i = 0; i < b.size(); ++i)
      b[i] = 1.0 + 0.5 * std::sin(0.3 * static_cast<double>(i + 7 * j));
    return b;
  };

  std::vector<SolveStats> ref(2);
  std::vector<std::vector<double>> x_ref(2);
  for (std::size_t j = 0; j < 2; ++j) {
    SerialEngine engine(a);
    Vec b = make_b(engine, j);
    Vec x = engine.new_vec();
    ref[j] = make_solver("scg-sspmv")->solve(engine, b, x, opts);
    ASSERT_TRUE(ref[j].converged);
    EXPECT_EQ(ref[j].basis, "chebyshev");
    x_ref[j].assign(x.data(), x.data() + x.size());
  }

  SerialEngine engine(a);
  std::vector<Vec> bs;
  std::vector<Vec> xs;
  for (std::size_t j = 0; j < 2; ++j) {
    bs.push_back(make_b(engine, j));
    xs.push_back(engine.new_vec());
  }
  const std::vector<SolveStats> stats = scg_multi_solve(
      engine, std::span<const Vec>(bs), std::span<Vec>(xs), opts);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(stats[j].converged) << "column " << j;
    EXPECT_EQ(stats[j].basis, "chebyshev");
    EXPECT_EQ(stats[j].iterations, ref[j].iterations) << "column " << j;
    EXPECT_EQ(stats[j].final_rnorm, ref[j].final_rnorm) << "column " << j;
    for (std::size_t i = 0; i < x_ref[j].size(); ++i)
      ASSERT_EQ(xs[j][i], x_ref[j][i]) << "column " << j << " entry " << i;
  }
}

TEST(GapMonitorTest, LadderEscalatesAfterTwoFailedReplacements) {
  SolveStats stats;
  sstep::GapMonitor monitor(0.1);
  ASSERT_TRUE(monitor.enabled());
  monitor.new_attempt();
  using Action = sstep::GapMonitor::Action;
  // Healthy check.
  EXPECT_EQ(monitor.observe(1.0, 1.0, stats), Action::kNone);
  // Gap opens: force a replacement.
  EXPECT_EQ(monitor.observe(2.0, 1.0, stats), Action::kReplace);
  // Still open after the replacement: one failed replacement, try again.
  EXPECT_EQ(monitor.observe(2.0, 1.0, stats), Action::kReplace);
  EXPECT_EQ(stats.failed_replacements, 1u);
  // Still open: two in a row failed -- escalate to degrade-s.
  EXPECT_EQ(monitor.observe(2.0, 1.0, stats), Action::kEscalate);
  EXPECT_EQ(stats.failed_replacements, 2u);
  EXPECT_EQ(stats.gap_checks, 4u);
  EXPECT_DOUBLE_EQ(stats.max_residual_gap, 1.0);
}

TEST(GapMonitorTest, HealthyCheckResetsTheFailureLadder) {
  SolveStats stats;
  sstep::GapMonitor monitor(0.1);
  using Action = sstep::GapMonitor::Action;
  EXPECT_EQ(monitor.observe(2.0, 1.0, stats), Action::kReplace);
  EXPECT_EQ(monitor.observe(2.0, 1.0, stats), Action::kReplace);
  // The second replacement worked: the streak resets, no escalation later.
  EXPECT_EQ(monitor.observe(1.0, 1.0, stats), Action::kNone);
  EXPECT_EQ(monitor.observe(2.0, 1.0, stats), Action::kReplace);
  EXPECT_EQ(monitor.observe(2.0, 1.0, stats), Action::kReplace);
  EXPECT_EQ(stats.failed_replacements, 2u);  // 1 + 1, never consecutive
  // new_attempt() clears the in-flight state after a rollback.
  monitor.new_attempt();
  EXPECT_EQ(monitor.observe(2.0, 1.0, stats), Action::kReplace);
}

TEST(GapMonitorTest, EscalationJumpsTheRecoveryManagerToDegrade) {
  const std::vector<double> x(4, 1.0);
  fault::RecoveryManager recovery(/*enabled=*/true, /*max_recoveries=*/8);
  recovery.save(x, 0, 1.0);
  // A normal first failure is not enough to degrade...
  EXPECT_TRUE(recovery.admit_failure());
  EXPECT_FALSE(recovery.should_degrade());
  // ...but an escalated one jumps straight to the threshold.
  recovery.save(x, 4, 0.5);
  recovery.escalate_degrade();
  EXPECT_TRUE(recovery.admit_failure());
  EXPECT_TRUE(recovery.should_degrade());
  recovery.acknowledge_degrade();
  EXPECT_FALSE(recovery.should_degrade());
}

TEST(GapMonitorTest, UnattainableGapToleranceDegradesSThroughRecovery) {
  // Force the escalation path end-to-end: an impossibly tight gap tolerance
  // means every check fails even right after a replacement, so the ladder
  // must escalate and the RecoveryManager must degrade s.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(48, 48);
  SolverOptions opts;
  opts.rtol = 1e-5;
  opts.s = 6;
  opts.max_iterations = 30000;
  opts.replacement_period = -1;
  opts.gap_tol = 1e-15;
  opts.gap_check_period = 1;
  const Outcome r = run_case("pipe-pscg", a, opts);
  EXPECT_GE(r.stats.failed_replacements, 2u);
  EXPECT_LT(r.stats.final_s, opts.s) << "escalation must degrade s";
  EXPECT_GT(r.stats.recoveries, 0u);
}

TEST(TrueNormTest, MatchesDirectComputation) {
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 10, 10, "p");
  precond::JacobiPreconditioner pc(a);
  SerialEngine engine(a, &pc);
  Vec b = engine.new_vec(), x = engine.new_vec();
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = std::sin(0.1 * static_cast<double>(i));
    x[i] = 0.01 * static_cast<double>(i);
  }
  Vec s1 = engine.new_vec(), s2 = engine.new_vec();
  const double unprec = sstep::true_flavored_norm(
      engine, b, x, NormType::kUnpreconditioned, s1, s2);
  // Direct: ||b - A x||.
  Vec ax = engine.new_vec(), r = engine.new_vec();
  engine.apply_op(x, ax);
  engine.waxpy(r, -1.0, ax, b);
  EXPECT_NEAR(unprec, std::sqrt(engine.dot(r, r)), 1e-12);
  // Preconditioned flavor: ||D^{-1} r||; natural: sqrt(r^T D^{-1} r).
  const double prec = sstep::true_flavored_norm(
      engine, b, x, NormType::kPreconditioned, s1, s2);
  const double natural = sstep::true_flavored_norm(
      engine, b, x, NormType::kNatural, s1, s2);
  Vec u = engine.new_vec();
  engine.apply_pc(r, u);
  EXPECT_NEAR(prec, std::sqrt(engine.dot(u, u)), 1e-12);
  EXPECT_NEAR(natural, std::sqrt(engine.dot(r, u)), 1e-12);
}

}  // namespace
}  // namespace pipescg::krylov
