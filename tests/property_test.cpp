// Property-based tests:
//  * cross-method agreement on random SPD problems (all methods solve the
//    same system to the same answer);
//  * steady-state kernel counts per iteration match the paper's Table I
//    accounting (SPMVs, PCs, allreduces) for every method;
//  * Galerkin/orthogonality invariants of the s-step scalar work.
#include <gtest/gtest.h>

#include <cmath>

#include "pipescg/base/rng.hpp"
#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/la/dense_matrix.hpp"
#include "pipescg/la/lu.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::krylov {
namespace {

struct ProblemCase {
  std::string method;
  std::uint64_t seed;
};

class RandomProblemTest : public ::testing::TestWithParam<ProblemCase> {};

TEST_P(RandomProblemTest, AllMethodsAgreeWithPcgSolution) {
  const auto [method, seed] = GetParam();
  // Well-conditioned operator (Dirichlet Poisson): this property is about
  // mathematical equivalence of the methods, not their finite-precision
  // stagnation floors on near-singular systems (those are covered by the
  // stagnation tests and the paper's Fig. 2 discussion).  The randomness is
  // in the manufactured solution.
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson9(), 15, 13, "p9");
  precond::JacobiPreconditioner pc(a);

  auto solve = [&](const std::string& m) {
    SerialEngine engine(a, solver_uses_preconditioner(m) ? &pc : nullptr);
    Rng rng(seed ^ 0xabcd);
    Vec x_true = engine.new_vec();
    for (std::size_t i = 0; i < x_true.size(); ++i)
      x_true[i] = rng.uniform(-2.0, 2.0);
    Vec b = engine.new_vec();
    engine.apply_op(x_true, b);
    Vec x = engine.new_vec();
    SolverOptions opts;
    opts.rtol = 1e-9;
    opts.max_iterations = 20000;
    const SolveStats stats = make_solver(m)->solve(engine, b, x, opts);
    EXPECT_TRUE(stats.converged) << m;
    std::vector<double> out(x.data(), x.data() + x.size());
    return out;
  };

  const std::vector<double> ref = solve("pcg");
  const std::vector<double> got = solve(method);
  double err = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    err = std::max(err, std::abs(ref[i] - got[i]));
    scale = std::max(scale, std::abs(ref[i]));
  }
  EXPECT_LT(err, 1e-4 * (1.0 + scale)) << method;
}

std::vector<ProblemCase> random_cases() {
  std::vector<ProblemCase> cases;
  for (const char* m :
       {"pipecg", "pipecg3", "pipecg-oati", "scg", "pscg", "scg-sspmv",
        "pipe-scg", "pipe-pscg", "hybrid"}) {
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
      cases.push_back(ProblemCase{m, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProblemTest,
                         ::testing::ValuesIn(random_cases()),
                         [](const auto& info) {
                           std::string n =
                               info.param.method + "_seed" +
                               std::to_string(info.param.seed);
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

// ---------------------------------------------------------------------------
// Steady-state kernel counts per CG-equivalent iteration (Table I check).
// Counts are measured as the *difference* between a long and a short run,
// which cancels the setup kernels exactly.
// ---------------------------------------------------------------------------

struct KernelBudget {
  std::string method;
  double spmv_per_iter;
  double pc_per_iter;
  double allreduce_per_iter;
};

class KernelCountTest : public ::testing::TestWithParam<KernelBudget> {};

sim::EventTrace::Counters run_counted(const std::string& method,
                                      std::size_t max_iters) {
  // A slowly converging problem so both runs stop on max_iterations.
  const sparse::CsrMatrix a = sparse::make_ecology2_like(40, 40);
  precond::JacobiPreconditioner pc(a);
  sim::EventTrace trace;
  SerialEngine engine(a,
                      solver_uses_preconditioner(method) ? &pc : nullptr,
                      &trace);
  Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  Vec b = engine.new_vec();
  engine.apply_op(ones, b);
  Vec x = engine.new_vec();
  SolverOptions opts;
  opts.rtol = 1e-30;  // never reached
  opts.atol = 0.0;
  opts.max_iterations = max_iters;
  opts.replacement_period = -1;  // pure recurrences for exact Table-I counts
  const SolveStats stats = make_solver(method)->solve(engine, b, x, opts);
  EXPECT_FALSE(stats.converged);
  return trace.counters();
}

TEST_P(KernelCountTest, SteadyStateCountsMatchTableI) {
  const KernelBudget budget = GetParam();
  const std::size_t short_iters = 30, long_iters = 90;
  const auto c_short = run_counted(budget.method, short_iters);
  const auto c_long = run_counted(budget.method, long_iters);
  const double iters = static_cast<double>(long_iters - short_iters);

  EXPECT_NEAR((static_cast<double>(c_long.spmvs) - c_short.spmvs) / iters,
              budget.spmv_per_iter, 0.05)
      << budget.method << " spmv";
  EXPECT_NEAR(
      (static_cast<double>(c_long.pc_applies) - c_short.pc_applies) / iters,
      budget.pc_per_iter, 0.05)
      << budget.method << " pc";
  EXPECT_NEAR(
      (static_cast<double>(c_long.allreduces) - c_short.allreduces) / iters,
      budget.allreduce_per_iter, 0.05)
      << budget.method << " allreduce";
}

INSTANTIATE_TEST_SUITE_P(
    TableI, KernelCountTest,
    ::testing::Values(
        // method, SPMV/iter, PC/iter, allreduce/iter (CG-equivalent iters)
        KernelBudget{"pcg", 1.0, 1.0, 3.0},
        KernelBudget{"pipecg", 1.0, 1.0, 1.0},  // m = M^{-1}w, n = A m
        KernelBudget{"scg", (3.0 + 1) / 3, 0.0, 1.0 / 3},
        KernelBudget{"pscg", (3.0 + 1) / 3, (3.0 + 1) / 3, 1.0 / 3},
        KernelBudget{"scg-sspmv", 1.0, 0.0, 1.0 / 3},
        KernelBudget{"pipe-scg", 1.0, 0.0, 1.0 / 3},
        KernelBudget{"pipe-pscg", 1.0, 1.0, 1.0 / 3},
        KernelBudget{"pipecg-oati", 1.0, 1.0, 1.0 / 2},
        KernelBudget{"pipecg3", 1.0, 1.0, 1.0 / 2}),
    [](const auto& info) {
      std::string n = info.param.method;
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

// ---------------------------------------------------------------------------
// Scalar-work invariant: on the first outer iteration the computed alpha is
// the Galerkin projection, so the new residual is orthogonal to the basis.
// ---------------------------------------------------------------------------

class ScalarWorkPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ScalarWorkPropertyTest, FirstStepResidualOrthogonalToBasis) {
  const int s = GetParam();
  const std::size_t n = 24;
  Rng rng(777 + static_cast<std::uint64_t>(s));
  // Small dense SPD A and random r.
  la::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
  a = a * a.transposed();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  std::vector<double> r(n);
  for (auto& v : r) v = rng.uniform(-1, 1);

  // Power basis and moments.
  std::vector<std::vector<double>> powers(2 * s + 1);
  powers[0] = r;
  for (int j = 1; j <= 2 * s; ++j)
    powers[static_cast<std::size_t>(j)] =
        a.apply(powers[static_cast<std::size_t>(j - 1)]);
  std::vector<double> moments(static_cast<std::size_t>(2 * s + 1));
  for (int j = 0; j <= 2 * s; ++j) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      acc += r[i] * powers[static_cast<std::size_t>(j)][i];
    moments[static_cast<std::size_t>(j)] = acc;
  }

  sstep::ScalarWork work(s);
  la::DenseMatrix zero_cross(static_cast<std::size_t>(s),
                             static_cast<std::size_t>(s));
  const auto result = work.step(moments, zero_cross);
  ASSERT_TRUE(result.ok);

  // r_new = r - sum_k alpha_k A^{k+1} r must be orthogonal to A^j r, j < s.
  std::vector<double> r_new = r;
  for (int k = 0; k < s; ++k)
    for (std::size_t i = 0; i < n; ++i)
      r_new[i] -= result.alpha[static_cast<std::size_t>(k)] *
                  powers[static_cast<std::size_t>(k + 1)][i];
  for (int j = 0; j < s; ++j) {
    double dot = 0.0, scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      dot += r_new[i] * powers[static_cast<std::size_t>(j)][i];
      scale += std::abs(powers[static_cast<std::size_t>(j)][i]);
    }
    EXPECT_NEAR(dot / (1.0 + scale), 0.0, 1e-9) << "s=" << s << " j=" << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, ScalarWorkPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(ScalarWorkTest, SingularMomentsReportBreakdown) {
  sstep::ScalarWork work(2);
  // r = 0 => all moments zero => singular W.
  const double moments[5] = {0, 0, 0, 0, 0};
  la::DenseMatrix cross(2, 2);
  const auto result = work.step(moments, cross);
  EXPECT_FALSE(result.ok);
}

TEST(ScalarWorkTest, NonFiniteInputsReportBreakdown) {
  sstep::ScalarWork work(2);
  const double moments[5] = {1, 2, std::nan(""), 3, 4};
  la::DenseMatrix cross(2, 2);
  EXPECT_FALSE(work.step(moments, cross).ok);
}

TEST(DotLayoutTest, OffsetsAreConsistent) {
  const sstep::DotLayout lp{3, true};
  EXPECT_EQ(lp.moment_count(), 7u);
  EXPECT_EQ(lp.cross_offset(), 7u);
  EXPECT_EQ(lp.cross_count(), 9u);
  EXPECT_EQ(lp.norm_offset(), 16u);
  EXPECT_EQ(lp.total(), 18u);
  const sstep::DotLayout lu{3, false};
  EXPECT_EQ(lu.total(), 16u);
}

}  // namespace
}  // namespace pipescg::krylov
