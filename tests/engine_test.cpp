// Tests for the engine layer: BLAS-1/block kernels, dot batches, trace
// recording, and Serial/SPMD engine equivalence at the kernel level.
#include <gtest/gtest.h>

#include <cmath>

#include "pipescg/base/rng.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::krylov {
namespace {

sparse::CsrMatrix test_matrix() {
  return sparse::assemble_stencil2d(sparse::stencil_poisson5(), 6, 6, "p");
}

Vec random_vec(Engine& engine, std::uint64_t seed) {
  Rng rng(seed);
  Vec v = engine.new_vec();
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.uniform(-1, 1);
  return v;
}

TEST(SerialEngineTest, Blas1KernelsMatchManual) {
  const sparse::CsrMatrix a = test_matrix();
  SerialEngine engine(a);
  Vec x = random_vec(engine, 1);
  Vec y = random_vec(engine, 2);
  Vec y0 = engine.new_vec();
  engine.copy(y, y0);

  engine.axpy(y, 2.5, x);
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_NEAR(y[i], y0[i] + 2.5 * x[i], 1e-15);

  Vec z = engine.new_vec();
  engine.waxpy(z, -1.0, x, y);  // z = y - x
  for (std::size_t i = 0; i < z.size(); ++i)
    EXPECT_NEAR(z[i], y[i] - x[i], 1e-15);

  engine.aypx(z, 0.5, x);  // z = x + 0.5 z
  Vec w = engine.new_vec();
  engine.set_all(w, 3.0);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_DOUBLE_EQ(w[i], 3.0);
  engine.scale(w, -2.0);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_DOUBLE_EQ(w[i], -6.0);
}

TEST(SerialEngineTest, DotBatchesMatchManual) {
  const sparse::CsrMatrix a = test_matrix();
  SerialEngine engine(a);
  Vec x = random_vec(engine, 3);
  Vec y = random_vec(engine, 4);
  double ref_xy = 0.0, ref_xx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ref_xy += x[i] * y[i];
    ref_xx += x[i] * x[i];
  }
  const DotPair pairs[2] = {{&x, &y}, {&x, &x}};
  double vals[2];
  engine.dots(pairs, vals);
  EXPECT_NEAR(vals[0], ref_xy, 1e-13);
  EXPECT_NEAR(vals[1], ref_xx, 1e-13);
  EXPECT_NEAR(engine.dot(x, y), ref_xy, 1e-13);
}

TEST(SerialEngineTest, BlockKernelsMatchManual) {
  const sparse::CsrMatrix a = test_matrix();
  SerialEngine engine(a);
  const std::size_t s = 3;
  VecBlock xb = engine.new_block(s);
  VecBlock yb = engine.new_block(s);
  for (std::size_t k = 0; k < s; ++k) {
    xb[k] = random_vec(engine, 10 + k);
    yb[k] = random_vec(engine, 20 + k);
  }
  VecBlock yb0 = engine.new_block(s);
  for (std::size_t k = 0; k < s; ++k) engine.copy(yb[k], yb0[k]);

  la::DenseMatrix b(s, s);
  Rng rng(30);
  for (std::size_t i = 0; i < s; ++i)
    for (std::size_t j = 0; j < s; ++j) b(i, j) = rng.uniform(-1, 1);

  engine.block_maxpy(yb, xb, b);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t i = 0; i < yb[j].size(); ++i) {
      double expect = yb0[j][i];
      for (std::size_t k = 0; k < s; ++k) expect += xb[k][i] * b(k, j);
      ASSERT_NEAR(yb[j][i], expect, 1e-13);
    }

  const double coeff[3] = {0.5, -1.5, 2.0};
  Vec base = random_vec(engine, 40);
  Vec out = engine.new_vec();
  engine.block_combine(out, base, xb, coeff);
  for (std::size_t i = 0; i < out.size(); ++i) {
    double expect = base[i];
    for (std::size_t k = 0; k < s; ++k) expect -= coeff[k] * xb[k][i];
    ASSERT_NEAR(out[i], expect, 1e-13);
  }

  Vec acc = engine.new_vec();
  engine.block_axpy(acc, xb, coeff);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    double expect = 0.0;
    for (std::size_t k = 0; k < s; ++k) expect += coeff[k] * xb[k][i];
    ASSERT_NEAR(acc[i], expect, 1e-13);
  }
}

TEST(SerialEngineTest, BlockCombineSupportsAliasedOutput) {
  const sparse::CsrMatrix a = test_matrix();
  SerialEngine engine(a);
  VecBlock t = engine.new_block(2);
  t[0] = random_vec(engine, 50);
  t[1] = random_vec(engine, 51);
  Vec base = random_vec(engine, 52);
  Vec expect = engine.new_vec();
  const double coeff[2] = {1.25, -0.5};
  engine.block_combine(expect, base, t, coeff);
  // Aliased: out == base.
  engine.block_combine(base, base, t, coeff);
  for (std::size_t i = 0; i < base.size(); ++i)
    ASSERT_DOUBLE_EQ(base[i], expect[i]);
}

TEST(SerialEngineTest, TraceRecordsKernelInvocations) {
  const sparse::CsrMatrix a = test_matrix();
  precond::JacobiPreconditioner pc(a);
  sim::EventTrace trace;
  SerialEngine engine(a, &pc, &trace);
  Vec x = random_vec(engine, 5);
  Vec y = engine.new_vec();
  engine.apply_op(x, y);
  engine.apply_op(y, x);
  engine.apply_pc(x, y);
  const DotPair p{&x, &y};
  double v;
  DotHandle h = engine.dot_post(std::span(&p, 1));
  engine.dot_wait(h, std::span(&v, 1));
  engine.mark_iteration(0, 1.0);

  const sim::EventTrace::Counters c = trace.counters();
  EXPECT_EQ(c.spmvs, 2u);
  EXPECT_EQ(c.pc_applies, 1u);
  EXPECT_EQ(c.allreduces, 1u);
  EXPECT_EQ(c.iterations, 1u);
}

TEST(SerialEngineTest, IdentityPcIsCopy) {
  const sparse::CsrMatrix a = test_matrix();
  SerialEngine engine(a);  // no preconditioner
  EXPECT_FALSE(engine.has_preconditioner());
  Vec x = random_vec(engine, 6);
  Vec y = engine.new_vec();
  engine.apply_pc(x, y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(SerialEngineTest, MismatchedPcThrows) {
  const sparse::CsrMatrix a = test_matrix();
  const sparse::CsrMatrix small =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 3, 3, "s");
  precond::JacobiPreconditioner pc(small);
  EXPECT_THROW(SerialEngine(a, &pc), Error);
}

class SpmdKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(SpmdKernelTest, DotsMatchSerialEngine) {
  const int p = GetParam();
  const sparse::CsrMatrix a = sparse::make_thermal2_like(9, 8);
  SerialEngine serial(a);
  Vec gx = random_vec(serial, 60);
  Vec gy = random_vec(serial, 61);
  const double ref = serial.dot(gx, gy);

  const sparse::Partition part(a.rows(), p);
  par::Team::run(p, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    SpmdEngine engine(comm, dist);
    Vec x = engine.new_vec(), y = engine.new_vec();
    const std::size_t begin = part.begin(comm.rank());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = gx[begin + i];
      y[i] = gy[begin + i];
    }
    EXPECT_NEAR(engine.dot(x, y), ref, 1e-11 * (1.0 + std::abs(ref)));
  });
}

TEST_P(SpmdKernelTest, SpmvMatchesSerialEngine) {
  const int p = GetParam();
  const sparse::CsrMatrix a = sparse::make_thermal2_like(9, 8);
  SerialEngine serial(a);
  Vec gx = random_vec(serial, 62);
  Vec gy = serial.new_vec();
  serial.apply_op(gx, gy);

  const sparse::Partition part(a.rows(), p);
  par::Team::run(p, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    SpmdEngine engine(comm, dist);
    Vec x = engine.new_vec(), y = engine.new_vec();
    const std::size_t begin = part.begin(comm.rank());
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = gx[begin + i];
    engine.apply_op(x, y);
    for (std::size_t i = 0; i < y.size(); ++i)
      ASSERT_NEAR(y[i], gy[begin + i], 1e-11 * (1.0 + std::abs(gy[begin + i])));
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, SpmdKernelTest, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace pipescg::krylov
