// Cross-engine validation: every solver must produce the same solution on
// the SpmdEngine (P thread-ranks, real halo exchange, real non-blocking
// allreduce) as on the SerialEngine.  This is the test that certifies the
// distributed implementation.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <mutex>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/matrix_powers.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/surrogates.hpp"

namespace pipescg::krylov {
namespace {

struct SpmdResult {
  std::vector<double> x;
  SolveStats stats;
};

SpmdResult solve_spmd(const std::string& method, const sparse::CsrMatrix& a,
                      int ranks, const SolverOptions& opts,
                      bool use_mpk = false) {
  const std::size_t n = a.rows();
  const sparse::Partition part(n, ranks);
  SpmdResult result;
  result.x.assign(n, 0.0);
  std::mutex stats_mutex;

  par::Team::run(ranks, [&](par::Comm& comm) {
    const sparse::DistCsr dist(a, part, comm.rank());
    const std::size_t begin = part.begin(comm.rank());
    const std::size_t len = part.local_size(comm.rank());

    // Rank-local Jacobi built from the local diagonal slice.
    const std::vector<double> full_diag = a.diagonal();
    std::vector<double> local_diag(
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
        full_diag.begin() + static_cast<std::ptrdiff_t>(begin + len));
    sparse::OperatorStats st = a.stats();
    precond::JacobiPreconditioner local_pc(std::move(local_diag), st);

    const bool use_pc = solver_uses_preconditioner(method);
    const std::unique_ptr<sparse::MatrixPowers> mpk =
        use_mpk ? std::make_unique<sparse::MatrixPowers>(a, part, comm.rank(),
                                                         opts.s)
                : nullptr;
    SpmdEngine engine(comm, dist, use_pc ? &local_pc : nullptr,
                      /*profiler=*/nullptr, mpk.get());

    // b = A * ones (assembled locally through the distributed operator).
    Vec ones = engine.new_vec();
    for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
    Vec b = engine.new_vec();
    engine.apply_op(ones, b);
    Vec x = engine.new_vec();

    const SolveStats stats = make_solver(method)->solve(engine, b, x, opts);
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      for (std::size_t i = 0; i < len; ++i) result.x[begin + i] = x[i];
      if (comm.rank() == 0) result.stats = stats;
    }
  });
  return result;
}

SpmdResult solve_serial(const std::string& method, const sparse::CsrMatrix& a,
                        const SolverOptions& opts) {
  precond::JacobiPreconditioner pc(a);
  const bool use_pc = solver_uses_preconditioner(method);
  SerialEngine engine(a, use_pc ? &pc : nullptr);
  Vec ones = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  Vec b = engine.new_vec();
  engine.apply_op(ones, b);
  Vec x = engine.new_vec();
  SpmdResult result;
  result.stats = make_solver(method)->solve(engine, b, x, opts);
  result.x.assign(x.data(), x.data() + x.size());
  return result;
}

struct Case {
  std::string method;
  int ranks;
};

class SpmdEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(SpmdEquivalenceTest, MatchesSerialEngine) {
  const Case c = GetParam();
  const sparse::CsrMatrix a =
      sparse::assemble_stencil2d(sparse::stencil_poisson5(), 14, 14, "p");
  SolverOptions opts;
  opts.rtol = 1e-8;
  opts.max_iterations = 2000;

  const SpmdResult serial = solve_serial(c.method, a, opts);
  const SpmdResult spmd = solve_spmd(c.method, a, c.ranks, opts);

  ASSERT_TRUE(serial.stats.converged);
  ASSERT_TRUE(spmd.stats.converged) << c.method << " p=" << c.ranks;
  // Reduction orders differ between the engines (serial full-index order vs
  // per-rank partials), so agreement is to rounding, not bitwise.
  EXPECT_EQ(spmd.stats.iterations, serial.stats.iterations)
      << c.method << " p=" << c.ranks;
  for (std::size_t i = 0; i < serial.x.size(); ++i)
    ASSERT_NEAR(spmd.x[i], serial.x[i], 1e-6)
        << c.method << " p=" << c.ranks << " i=" << i;
}

std::vector<Case> equivalence_cases() {
  std::vector<Case> cases;
  for (const char* m :
       {"pcg", "pipecg", "pipecg-oati", "scg", "pscg", "scg-sspmv",
        "pipe-scg", "pipe-pscg", "hybrid"}) {
    for (int p : {2, 4}) cases.push_back(Case{m, p});
  }
  cases.push_back(Case{"pcg", 7});
  cases.push_back(Case{"pipe-pscg", 7});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(MethodsByRanks, SpmdEquivalenceTest,
                         ::testing::ValuesIn(equivalence_cases()),
                         [](const auto& info) {
                           std::string n = info.param.method + "_p" +
                                           std::to_string(info.param.ranks);
                           for (char& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// Attaching a matrix-powers kernel must not change the solve at all: the
// fused s-block is bitwise identical to the chained SPMVs it replaces
// (redundant ghost rows recompute in their owner's summation order), so the
// trajectory -- iterations, convergence, and the solution vector -- is the
// same bit for bit.  Covers the two unpreconditioned s-step methods that
// fuse, plus pipe-pscg whose preconditioner keeps the kernel (correctly)
// disengaged.
TEST(SpmdSolverTest, MpkSolvesBitwiseIdenticalToChained) {
  const sparse::CsrMatrix a = sparse::make_poisson125_csr(5);
  SolverOptions opts;
  opts.rtol = 1e-8;
  opts.s = 3;
  for (const char* method : {"pipe-scg", "scg-sspmv", "pipe-pscg"}) {
    for (int ranks : {2, 3}) {
      const SpmdResult off = solve_spmd(method, a, ranks, opts, false);
      const SpmdResult on = solve_spmd(method, a, ranks, opts, true);
      ASSERT_TRUE(off.stats.converged) << method << " p=" << ranks;
      ASSERT_TRUE(on.stats.converged) << method << " p=" << ranks;
      EXPECT_EQ(on.stats.iterations, off.stats.iterations)
          << method << " p=" << ranks;
      for (std::size_t i = 0; i < off.x.size(); ++i)
        ASSERT_EQ(on.x[i], off.x[i])
            << method << " p=" << ranks << " i=" << i;
    }
  }
}

TEST(SpmdSolverTest, SpmdRunIsDeterministicAcrossRepeats) {
  const sparse::CsrMatrix a = sparse::make_thermal2_like(10, 10);
  SolverOptions opts;
  opts.rtol = 1e-8;
  const SpmdResult r1 = solve_spmd("pipe-pscg", a, 3, opts);
  const SpmdResult r2 = solve_spmd("pipe-pscg", a, 3, opts);
  ASSERT_EQ(r1.x.size(), r2.x.size());
  for (std::size_t i = 0; i < r1.x.size(); ++i)
    ASSERT_EQ(r1.x[i], r2.x[i]) << "non-deterministic at " << i;  // bitwise
}

}  // namespace
}  // namespace pipescg::krylov
