// Fault-specification grammar for the injection harness (see DESIGN.md
// section 9, "Fault model and recovery").
//
// A fault spec is a ';'-separated list of faults; each fault is a
// ':'-separated list of key=value fields:
//
//   rank=2:kind=slow:factor=8          rank 2 computes 8x slower
//   kind=sdc:target=spmv:iter=40:bits=1   flip 1 seeded bit in the output of
//                                         rank 0's 40th SPMV
//   kind=sdc:target=spmv:iter=40:bit=61   flip exactly bit 61 (deterministic
//                                         high-exponent corruption)
//   kind=stall:target=allreduce:iter=30:ms=500   delay rank 0's 30th
//                                         allreduce contribution by 500 ms
//   kind=die:rank=1:iter=25            rank 1 dies at its 25th SPMV
//
// Fields:
//   kind    slow | sdc | stall | die            (required)
//   rank    rank the fault applies to           (default 0)
//   target  spmv | pc | allreduce | halo        (default: spmv, except stall
//                                                which defaults to allreduce)
//   iter    0-based index of the targeted event on that rank (default 0);
//           events are counted per target kind, so `target=spmv:iter=40`
//           means the rank's 41st SPMV since the injector was installed
//   bits    sdc: number of seeded random bit flips (default 1)
//   bit     sdc: explicit bit index in [0, 63]; overrides `bits` (use a high
//           exponent bit, e.g. 61, for a corruption that is guaranteed to be
//           numerically loud)
//   factor  slow: compute slowdown multiplier (default 2)
//   ms      stall: injected delay in milliseconds (default 100)
//   seed    sdc: RNG stream seed for entry/bit selection (default 0x5eed)
//
// Parsing is strict: unknown keys, unknown kinds, and malformed numbers all
// raise pipescg::Error, so a typo in --fault-spec fails fast instead of
// silently injecting nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pipescg::fault {

enum class FaultKind : std::uint8_t { kSlow, kSdc, kStall, kDie };
enum class FaultTarget : std::uint8_t { kSpmv, kPc, kAllreduce, kHalo };

const char* to_string(FaultKind kind);
const char* to_string(FaultTarget target);

struct FaultSpec {
  FaultKind kind = FaultKind::kSdc;
  int rank = 0;
  FaultTarget target = FaultTarget::kSpmv;
  std::uint64_t iter = 0;       // 0-based targeted event index on `rank`
  int bits = 1;                 // sdc: seeded random bit flips
  int bit = -1;                 // sdc: explicit bit index (overrides bits)
  double factor = 2.0;          // slow: compute slowdown multiplier
  double ms = 100.0;            // stall: injected delay
  std::uint64_t seed = 0x5eed;  // sdc: rng stream seed

  /// True when this fault applies to events of `target` on `rank`.
  bool matches(int r, FaultTarget t) const {
    return rank == r && target == t;
  }
};

/// Parse one fault (a ':'-separated field list).
FaultSpec parse_fault_spec(const std::string& text);

/// Parse a ';'-separated list of faults.  Empty input => empty list.
std::vector<FaultSpec> parse_fault_specs(const std::string& text);

/// Canonical round-trippable rendering of a spec.
std::string to_string(const FaultSpec& spec);

}  // namespace pipescg::fault
