// Deterministic per-rank fault injector for the SPMD runtime.
//
// One Injector is constructed per rank thread from a shared parsed
// --fault-spec list and installed thread-locally (Injector::Install, the
// same pattern as obs::Profiler): the runtime's hook points -- par::Comm
// (allreduce post, halo exchange) and krylov::SpmdEngine (SPMV / PC output)
// -- consult Injector::current() and pay a single thread-local null check
// when no injector is installed, so a clean run is unperturbed.
//
// Every fault is deterministic: events are counted per (rank, target) and a
// fault fires exactly when its 0-based `iter` index comes up; SDC entry and
// bit selection come from a Rng seeded with spec.seed ^ rank.  The same
// --fault-spec therefore yields an identical corruption, an identical
// detection point, and an identical recovery trajectory on every run --
// which is what makes the fault-matrix tests assertable.
//
// Fault semantics:
//   slow   compute slowdown: SlowScope measures each wrapped kernel and
//          sleeps (factor - 1) x elapsed, making the rank `factor`x slower
//          at compute while leaving every value untouched (a straggler).
//   sdc    silent data corruption: flip bits in one entry of the targeted
//          kernel's output vector (single-shot, at event index `iter`).
//   stall  delay the targeted event by `ms` milliseconds (a late allreduce
//          contribution stretches every peer's wait spin).
//   die    throw RankDeath at the targeted event: the rank unwinds out of
//          the team body and stops participating; surviving ranks block in
//          collectives until the par::Comm watchdog converts their spin
//          into a CommTimeout diagnostic.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>

#include "pipescg/base/error.hpp"
#include "pipescg/base/rng.hpp"
#include "pipescg/fault/spec.hpp"

namespace pipescg::fault {

/// Thrown by a `kind=die` fault: the injected analogue of a rank crash.
class RankDeath : public Error {
 public:
  explicit RankDeath(const std::string& what) : Error(what) {}
};

class Injector {
 public:
  /// `specs` is the shared parsed --fault-spec list; `rank` selects which
  /// entries apply to this thread.
  Injector(std::vector<FaultSpec> specs, int rank);

  int rank() const { return rank_; }

  /// Combined compute slowdown for this rank (1.0 = no slow fault).
  double slow_factor() const { return slow_factor_; }

  /// Faults actually fired so far on this rank.
  std::size_t injected() const { return injected_; }

  // --- hook points (called by par::Comm / krylov::SpmdEngine) -------------
  /// Count one SPMV output and perturb it if a matching fault is due.
  void on_spmv(std::span<double> out) { on_event(FaultTarget::kSpmv, out); }
  /// Count one preconditioner application output.
  void on_pc(std::span<double> out) { on_event(FaultTarget::kPc, out); }
  /// Count one allreduce post (before the contribution is published).
  void on_allreduce_post() { on_event(FaultTarget::kAllreduce, {}); }
  /// Count one batched halo exchange.
  void on_halo_exchange() { on_event(FaultTarget::kHalo, {}); }

  // --- thread-local installation ------------------------------------------
  static Injector* current() { return tls_current_; }

  /// RAII: installs an injector as the calling thread's current() and
  /// restores the previous one on destruction.  nullptr is a no-op install.
  class Install {
   public:
    explicit Install(Injector* inj) : prev_(tls_current_) {
      tls_current_ = inj;
    }
    ~Install() { tls_current_ = prev_; }
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    Injector* prev_;
  };

 private:
  void on_event(FaultTarget target, std::span<double> out);
  void fire(const FaultSpec& spec, std::span<double> out);
  void corrupt(const FaultSpec& spec, std::span<double> out);

  static thread_local Injector* tls_current_;

  std::vector<FaultSpec> specs_;
  int rank_;
  double slow_factor_ = 1.0;
  std::uint64_t events_[4] = {0, 0, 0, 0};  // per-FaultTarget counters
  std::size_t injected_ = 0;
};

/// RAII compute-slowdown scope: measures the wrapped kernel and, when the
/// installed injector carries a `slow` fault for this rank, sleeps
/// (factor - 1) x elapsed on destruction.  Null-safe and free when no
/// injector (or no slow fault) is installed.
class SlowScope {
 public:
  explicit SlowScope(Injector* inj)
      : inj_(inj != nullptr && inj->slow_factor() > 1.0 ? inj : nullptr) {
    if (inj_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~SlowScope();
  SlowScope(const SlowScope&) = delete;
  SlowScope& operator=(const SlowScope&) = delete;

 private:
  Injector* inj_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace pipescg::fault
