#include "pipescg/fault/spec.hpp"

#include <cstdlib>
#include <sstream>

#include "pipescg/base/error.hpp"

namespace pipescg::fault {
namespace {

std::string trimmed(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

std::int64_t parse_int(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const long long r = std::strtoll(v.c_str(), &end, 0);
  PIPESCG_CHECK(end && *end == '\0' && !v.empty(),
                "fault spec: " + key + " expects an integer, got '" + v + "'");
  return static_cast<std::int64_t>(r);
}

double parse_real(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double r = std::strtod(v.c_str(), &end);
  PIPESCG_CHECK(end && *end == '\0' && !v.empty(),
                "fault spec: " + key + " expects a number, got '" + v + "'");
  return r;
}

FaultKind parse_kind(const std::string& v) {
  if (v == "slow") return FaultKind::kSlow;
  if (v == "sdc") return FaultKind::kSdc;
  if (v == "stall") return FaultKind::kStall;
  if (v == "die") return FaultKind::kDie;
  PIPESCG_FAIL("fault spec: unknown kind '" + v +
               "' (expected slow|sdc|stall|die)");
}

FaultTarget parse_target(const std::string& v) {
  if (v == "spmv") return FaultTarget::kSpmv;
  if (v == "pc") return FaultTarget::kPc;
  if (v == "allreduce") return FaultTarget::kAllreduce;
  if (v == "halo") return FaultTarget::kHalo;
  PIPESCG_FAIL("fault spec: unknown target '" + v +
               "' (expected spmv|pc|allreduce|halo)");
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSlow:
      return "slow";
    case FaultKind::kSdc:
      return "sdc";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kDie:
      return "die";
  }
  return "?";
}

const char* to_string(FaultTarget target) {
  switch (target) {
    case FaultTarget::kSpmv:
      return "spmv";
    case FaultTarget::kPc:
      return "pc";
    case FaultTarget::kAllreduce:
      return "allreduce";
    case FaultTarget::kHalo:
      return "halo";
  }
  return "?";
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  bool have_kind = false;
  bool have_target = false;
  for (const std::string& raw : split(text, ':')) {
    const std::string field = trimmed(raw);
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    PIPESCG_CHECK(eq != std::string::npos,
                  "fault spec: field '" + field + "' is not key=value");
    const std::string key = trimmed(field.substr(0, eq));
    const std::string value = trimmed(field.substr(eq + 1));
    if (key == "kind") {
      spec.kind = parse_kind(value);
      have_kind = true;
    } else if (key == "rank") {
      spec.rank = static_cast<int>(parse_int(key, value));
      PIPESCG_CHECK(spec.rank >= 0, "fault spec: rank must be >= 0");
    } else if (key == "target") {
      spec.target = parse_target(value);
      have_target = true;
    } else if (key == "iter") {
      const std::int64_t v = parse_int(key, value);
      PIPESCG_CHECK(v >= 0, "fault spec: iter must be >= 0");
      spec.iter = static_cast<std::uint64_t>(v);
    } else if (key == "bits") {
      spec.bits = static_cast<int>(parse_int(key, value));
      PIPESCG_CHECK(spec.bits >= 1 && spec.bits <= 64,
                    "fault spec: bits must be in [1, 64]");
    } else if (key == "bit") {
      spec.bit = static_cast<int>(parse_int(key, value));
      PIPESCG_CHECK(spec.bit >= 0 && spec.bit <= 63,
                    "fault spec: bit must be in [0, 63]");
    } else if (key == "factor") {
      spec.factor = parse_real(key, value);
      PIPESCG_CHECK(spec.factor >= 1.0, "fault spec: factor must be >= 1");
    } else if (key == "ms") {
      spec.ms = parse_real(key, value);
      PIPESCG_CHECK(spec.ms >= 0.0, "fault spec: ms must be >= 0");
    } else if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(parse_int(key, value));
    } else {
      PIPESCG_FAIL("fault spec: unknown key '" + key +
                   "' (kind|rank|target|iter|bits|bit|factor|ms|seed)");
    }
  }
  PIPESCG_CHECK(have_kind, "fault spec '" + text + "' is missing kind=");
  // A stall models a late collective contribution unless told otherwise.
  if (!have_target && spec.kind == FaultKind::kStall)
    spec.target = FaultTarget::kAllreduce;
  return spec;
}

std::vector<FaultSpec> parse_fault_specs(const std::string& text) {
  std::vector<FaultSpec> specs;
  for (const std::string& part : split(text, ';')) {
    if (trimmed(part).empty()) continue;
    specs.push_back(parse_fault_spec(part));
  }
  return specs;
}

std::string to_string(const FaultSpec& spec) {
  std::ostringstream os;
  os << "kind=" << to_string(spec.kind) << ":rank=" << spec.rank
     << ":target=" << to_string(spec.target) << ":iter=" << spec.iter;
  switch (spec.kind) {
    case FaultKind::kSdc:
      if (spec.bit >= 0)
        os << ":bit=" << spec.bit;
      else
        os << ":bits=" << spec.bits;
      os << ":seed=" << spec.seed;
      break;
    case FaultKind::kSlow:
      os << ":factor=" << spec.factor;
      break;
    case FaultKind::kStall:
      os << ":ms=" << spec.ms;
      break;
    case FaultKind::kDie:
      break;
  }
  return os.str();
}

}  // namespace pipescg::fault
