// Checkpoint/rollback machinery for the s-step solve drivers.
//
// The s-step and pipelined s-step methods detect three failure classes
// (see DESIGN.md section 9): a non-finite reduced dot batch (SDC or
// overflow reached the moments / Gram cross-block), a singular scalar-work
// system (breakdown), and runaway residual growth (divergence of the tower
// recurrences).  On any of them the driver rolls back to the last
// checkpoint and restarts its outer loop with the power basis rebuilt
// explicitly from the restored iterate; after repeated failures with no
// intervening progress it degrades s -> max(1, s-1), since s = 1 reduces
// the method to the (much more robust) pipelined-CG regime.
//
// A checkpoint is deliberately lightweight -- a raw copy of the local slice
// of x plus (iteration, residual norm) -- and is taken outside the Engine
// kernel interface so that checkpointing perturbs neither the numerical
// trajectory nor the cost model: a clean run with recovery enabled is
// bitwise identical to one with it disabled.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pipescg::fault {

class RecoveryManager {
 public:
  /// `enabled` gates everything (an inactive manager never saves and never
  /// admits a failure); `max_recoveries` bounds rollback-restart cycles.
  RecoveryManager(bool enabled, int max_recoveries)
      : enabled_(enabled), max_recoveries_(max_recoveries) {}

  bool active() const { return enabled_; }

  /// Whether `rnorm` is worth checkpointing: finite and an improvement over
  /// the stored checkpoint (or no checkpoint yet).
  bool should_save(double rnorm) const;

  /// Snapshot the local slice of x.  Raw copy: no engine kernels, no cost
  /// model, no counters.
  void save(std::span<const double> x, std::size_t iteration, double rnorm);

  bool has_checkpoint() const { return !x_.empty(); }

  /// Roll x back to the snapshot; returns the checkpoint's iteration count.
  std::size_t restore(std::span<double> x) const;

  double checkpoint_rnorm() const { return rnorm_; }

  /// Record a detected failure.  Returns false when the recovery budget is
  /// exhausted (the caller should stop with a diagnostic instead of rolling
  /// back).  Failures with no checkpoint saved since the previous failure
  /// count as consecutive -- the restart made no progress.
  bool admit_failure();

  /// Mark the NEXT admitted failure as a direct degrade-s request: the
  /// residual-gap monitor escalates here after two replacements in a row
  /// failed to close the predicted-vs-true gap, which is evidence the
  /// recurrences are unstable at the current depth -- rolling back and
  /// retrying at the same s would just reproduce the drift, so the ladder
  /// skips the "two consecutive no-progress failures" wait.
  void escalate_degrade() {
    if (enabled_) escalated_ = true;
  }

  /// Degrade s after two consecutive no-progress failures.
  bool should_degrade() const { return consecutive_ >= 2; }
  /// Reset the consecutive-failure count once the caller degraded s.
  void acknowledge_degrade() { consecutive_ = 0; }

  std::size_t recoveries() const { return recoveries_; }

 private:
  bool enabled_;
  int max_recoveries_;
  std::vector<double> x_;
  std::size_t iteration_ = 0;
  double rnorm_ = -1.0;
  std::size_t recoveries_ = 0;
  int consecutive_ = 0;
  bool saved_since_failure_ = false;
  bool escalated_ = false;
};

}  // namespace pipescg::fault
