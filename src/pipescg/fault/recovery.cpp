#include "pipescg/fault/recovery.hpp"

#include <algorithm>
#include <cmath>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/tracing.hpp"

namespace pipescg::fault {

bool RecoveryManager::should_save(double rnorm) const {
  if (!enabled_ || !std::isfinite(rnorm)) return false;
  return !has_checkpoint() || rnorm < rnorm_;
}

void RecoveryManager::save(std::span<const double> x, std::size_t iteration,
                           double rnorm) {
  if (!enabled_) return;
  x_.assign(x.begin(), x.end());
  iteration_ = iteration;
  rnorm_ = rnorm;
  saved_since_failure_ = true;
}

std::size_t RecoveryManager::restore(std::span<double> x) const {
  PIPESCG_CHECK(has_checkpoint(), "rollback without a checkpoint");
  PIPESCG_CHECK(x.size() == x_.size(), "rollback size mismatch");
  std::copy(x_.begin(), x_.end(), x.begin());
  // Traced requests see every rollback as an instantaneous mark on the
  // rank's track, so recovery attempts show up in the merged request trace.
  if (obs::tracing::Tracer* tracer = obs::tracing::Tracer::current())
    tracer->mark("recovery_rollback",
                 {{"iteration", static_cast<double>(iteration_)},
                  {"rnorm", rnorm_}});
  return iteration_;
}

bool RecoveryManager::admit_failure() {
  if (!enabled_) return false;
  ++recoveries_;
  if (obs::tracing::Tracer* tracer = obs::tracing::Tracer::current())
    tracer->mark("recovery_failure_admitted",
                 {{"recoveries", static_cast<double>(recoveries_)}});
  if (escalated_) {
    // Gap-monitor escalation: jump straight to the degrade-s threshold.
    consecutive_ = 2;
    escalated_ = false;
  } else {
    consecutive_ = saved_since_failure_ ? 1 : consecutive_ + 1;
  }
  saved_since_failure_ = false;
  return recoveries_ <= static_cast<std::size_t>(std::max(max_recoveries_, 0));
}

}  // namespace pipescg::fault
