#include "pipescg/fault/injector.hpp"

#include <cstring>
#include <sstream>
#include <thread>

namespace pipescg::fault {

thread_local Injector* Injector::tls_current_ = nullptr;

Injector::Injector(std::vector<FaultSpec> specs, int rank)
    : specs_(std::move(specs)), rank_(rank) {
  // Slow faults compose multiplicatively and are consulted per kernel via
  // SlowScope rather than per event, so fold them out of the event list.
  for (const FaultSpec& spec : specs_) {
    if (spec.kind == FaultKind::kSlow && spec.rank == rank_)
      slow_factor_ *= spec.factor;
  }
}

void Injector::on_event(FaultTarget target, std::span<double> out) {
  const std::uint64_t index = events_[static_cast<std::size_t>(target)]++;
  for (const FaultSpec& spec : specs_) {
    if (spec.kind == FaultKind::kSlow) continue;  // handled by SlowScope
    if (!spec.matches(rank_, target) || spec.iter != index) continue;
    fire(spec, out);
  }
}

void Injector::fire(const FaultSpec& spec, std::span<double> out) {
  switch (spec.kind) {
    case FaultKind::kStall:
      ++injected_;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          spec.ms));
      break;
    case FaultKind::kDie: {
      ++injected_;
      std::ostringstream os;
      os << "injected rank death: rank " << rank_ << " at "
         << to_string(spec.target) << " event " << spec.iter;
      throw RankDeath(os.str());
    }
    case FaultKind::kSdc:
      corrupt(spec, out);
      break;
    case FaultKind::kSlow:
      break;
  }
}

void Injector::corrupt(const FaultSpec& spec, std::span<double> out) {
  if (out.empty()) return;  // sdc only perturbs value-producing targets
  // Entry and bit choices are a pure function of (seed, rank), never of
  // wall-clock or addresses, so reruns corrupt identically.
  Rng rng(spec.seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                                                   rank_ + 1)));
  const std::size_t entry = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint64_t>(out.size())));
  std::uint64_t bitsrep;
  std::memcpy(&bitsrep, &out[entry], sizeof(bitsrep));
  if (spec.bit >= 0) {
    bitsrep ^= (1ull << spec.bit);
  } else {
    for (int b = 0; b < spec.bits; ++b)
      bitsrep ^= (1ull << rng.next_below(64));
  }
  std::memcpy(&out[entry], &bitsrep, sizeof(bitsrep));
  ++injected_;
}

SlowScope::~SlowScope() {
  if (inj_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  std::this_thread::sleep_for(elapsed * (inj_->slow_factor() - 1.0));
}

}  // namespace pipescg::fault
