#include "pipescg/krylov/spmd_engine.hpp"

#include "pipescg/base/error.hpp"

namespace pipescg::krylov {

SpmdEngine::SpmdEngine(par::Comm& comm, const sparse::DistCsr& dist,
                       const precond::Preconditioner* local_pc)
    : comm_(comm), dist_(dist), pc_(local_pc) {
  if (pc_ != nullptr) {
    PIPESCG_CHECK(pc_->rows() == dist_.local_rows(),
                  "local preconditioner must act on the local slice");
  }
}

void SpmdEngine::apply_op(const Vec& x, Vec& y) {
  dist_.apply(comm_, x.span(), y.span(), ghost_scratch_);
}

void SpmdEngine::apply_pc(const Vec& r, Vec& u) {
  if (pc_ == nullptr) {
    copy(r, u);
    return;
  }
  pc_->apply(r.span(), u.span());
}

DotHandle SpmdEngine::dot_post(std::span<const DotPair> pairs,
                               bool /*blocking*/) {
  const std::uint64_t id = next_dot_id_++;
  Pending& slot = pending_[id % kMaxPending];
  PIPESCG_CHECK(!slot.active, "too many in-flight dot batches");

  partials_.resize(pairs.size());
  const std::size_t n = local_size();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    PIPESCG_CHECK(pairs[p].x->size() == n && pairs[p].y->size() == n,
                  "dot size mismatch");
    const double* x = pairs[p].x->data();
    const double* y = pairs[p].y->data();
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
    partials_[p] = acc;
  }
  slot.request = comm_.iallreduce_sum(
      std::span<const double>(partials_.data(), partials_.size()));
  slot.active = true;

  DotHandle h;
  h.id = id;
  h.count = pairs.size();
  h.active = true;
  return h;
}

void SpmdEngine::dot_wait(DotHandle& handle, std::span<double> out) {
  PIPESCG_CHECK(handle.active, "dot_wait on inactive handle");
  Pending& slot = pending_[handle.id % kMaxPending];
  PIPESCG_CHECK(slot.active, "dot handle does not match a pending batch");
  comm_.wait(slot.request, out);
  slot.active = false;
  handle.active = false;
}

void SpmdEngine::mark_iteration(std::uint64_t, double) {
  // No trace on the SPMD engine; SolveStats carries the residual history.
}

void SpmdEngine::record_compute(double, double) {}

}  // namespace pipescg::krylov
