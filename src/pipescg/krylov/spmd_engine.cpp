#include "pipescg/krylov/spmd_engine.hpp"

#include "pipescg/base/error.hpp"
#include "pipescg/fault/injector.hpp"
#include "pipescg/la/vector_kernels.hpp"

namespace pipescg::krylov {

SpmdEngine::SpmdEngine(par::Comm& comm, const sparse::DistCsr& dist,
                       const precond::Preconditioner* local_pc,
                       obs::Profiler* profiler,
                       const sparse::MatrixPowers* mpk)
    : comm_(comm),
      dist_(dist),
      pc_(local_pc),
      profiler_(profiler),
      profiler_install_(profiler),
      mpk_(mpk) {
  if (pc_ != nullptr) {
    PIPESCG_CHECK(pc_->rows() == dist_.local_rows(),
                  "local preconditioner must act on the local slice");
  }
  if (mpk_ != nullptr) {
    PIPESCG_CHECK(mpk_->local_rows() == dist_.local_rows(),
                  "matrix-powers kernel must cover the same row block");
  }
}

void SpmdEngine::apply_op(const Vec& x, Vec& y) {
  // Halo and local-compute spans are recorded by par::Comm / DistCsr via
  // the thread-local profiler; only the kernel counter lives here.
  if (profiler_ != nullptr) ++profiler_->counters().spmvs;
  fault::Injector* inj = fault::Injector::current();
  fault::SlowScope slow(inj);
  dist_.apply(comm_, x.span(), y.span(), ghost_scratch_);
  if (inj != nullptr) inj->on_spmv(y.span());
}

void SpmdEngine::apply_op_powers(const Vec& x, std::span<Vec> outs) {
  // Fuse only blocks the kernel can serve and that actually save epochs
  // (>= 2 SPMVs); everything else falls back to the chained-apply default,
  // keeping --mpk off and single SPMVs bit-identical to the plain path.
  if (mpk_ == nullptr || outs.size() < 2 ||
      outs.size() > static_cast<std::size_t>(mpk_->depth())) {
    Engine::apply_op_powers(x, outs);
    return;
  }
  // Same SPMV accounting as outs.size() apply_op calls, so the serial /
  // SPMD counter cross-checks stay exact; the saved halo epochs show up in
  // halo_epochs and mpk_blocks instead.
  if (profiler_ != nullptr)
    profiler_->counters().spmvs += outs.size();
  fault::Injector* inj = fault::Injector::current();
  fault::SlowScope slow(inj);
  mpk_outs_.clear();
  for (Vec& out : outs) mpk_outs_.push_back(out.span());
  mpk_->apply(comm_, x.span(), mpk_outs_, mpk_scratch_);
  // Each fused output counts as one SPMV event, mirroring the chained path.
  if (inj != nullptr)
    for (Vec& out : outs) inj->on_spmv(out.span());
}

void SpmdEngine::apply_pc(const Vec& r, Vec& u) {
  if (pc_ == nullptr) {
    copy(r, u);
    return;
  }
  if (profiler_ != nullptr) ++profiler_->counters().pc_applies;
  obs::SpanScope span(profiler_, obs::SpanKind::kPcApply);
  fault::Injector* inj = fault::Injector::current();
  fault::SlowScope slow(inj);
  pc_->apply(r.span(), u.span());
  if (inj != nullptr) inj->on_pc(u.span());
}

DotHandle SpmdEngine::dot_post(std::span<const DotPair> pairs,
                               bool /*blocking*/) {
  const std::uint64_t id = next_dot_id_++;
  Pending& slot = pending_[id % kMaxPending];
  PIPESCG_CHECK(!slot.active, "too many in-flight dot batches");

  partials_.resize(pairs.size());
  const std::size_t n = local_size();
  {
    obs::SpanScope span(profiler_, obs::SpanKind::kDotLocal);
    dot_views_.clear();
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      PIPESCG_CHECK(pairs[p].x->size() == n && pairs[p].y->size() == n,
                    "dot size mismatch");
      dot_views_.push_back({pairs[p].x->data(), pairs[p].y->data()});
    }
    la::dot_batch(dot_views_, n, partials_);
  }
  if (profiler_ != nullptr) ++profiler_->counters().allreduces;
  slot.request = comm_.iallreduce_sum(
      std::span<const double>(partials_.data(), partials_.size()));
  slot.active = true;

  DotHandle h;
  h.id = id;
  h.count = pairs.size();
  h.active = true;
  return h;
}

void SpmdEngine::dot_wait(DotHandle& handle, std::span<double> out) {
  PIPESCG_CHECK(handle.active, "dot_wait on inactive handle");
  Pending& slot = pending_[handle.id % kMaxPending];
  PIPESCG_CHECK(slot.active, "dot handle does not match a pending batch");
  comm_.wait(slot.request, out);  // wait-spin span recorded by Comm
  slot.active = false;
  handle.active = false;
}

void SpmdEngine::mark_iteration(std::uint64_t iter, double /*rnorm*/) {
  // SolveStats carries the residual history; the profiler only needs the
  // CG-equivalent iteration count (same convention as sim::EventTrace).
  if (profiler_ != nullptr)
    profiler_->counters().iterations = static_cast<std::size_t>(iter) + 1;
}

void SpmdEngine::record_compute(double, double) {}

}  // namespace pipescg::krylov
