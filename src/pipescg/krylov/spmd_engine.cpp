#include "pipescg/krylov/spmd_engine.hpp"

#include "pipescg/base/error.hpp"

namespace pipescg::krylov {

SpmdEngine::SpmdEngine(par::Comm& comm, const sparse::DistCsr& dist,
                       const precond::Preconditioner* local_pc,
                       obs::Profiler* profiler)
    : comm_(comm),
      dist_(dist),
      pc_(local_pc),
      profiler_(profiler),
      profiler_install_(profiler) {
  if (pc_ != nullptr) {
    PIPESCG_CHECK(pc_->rows() == dist_.local_rows(),
                  "local preconditioner must act on the local slice");
  }
}

void SpmdEngine::apply_op(const Vec& x, Vec& y) {
  // Halo and local-compute spans are recorded by par::Comm / DistCsr via
  // the thread-local profiler; only the kernel counter lives here.
  if (profiler_ != nullptr) ++profiler_->counters().spmvs;
  dist_.apply(comm_, x.span(), y.span(), ghost_scratch_);
}

void SpmdEngine::apply_pc(const Vec& r, Vec& u) {
  if (pc_ == nullptr) {
    copy(r, u);
    return;
  }
  if (profiler_ != nullptr) ++profiler_->counters().pc_applies;
  obs::SpanScope span(profiler_, obs::SpanKind::kPcApply);
  pc_->apply(r.span(), u.span());
}

DotHandle SpmdEngine::dot_post(std::span<const DotPair> pairs,
                               bool /*blocking*/) {
  const std::uint64_t id = next_dot_id_++;
  Pending& slot = pending_[id % kMaxPending];
  PIPESCG_CHECK(!slot.active, "too many in-flight dot batches");

  partials_.resize(pairs.size());
  const std::size_t n = local_size();
  {
    obs::SpanScope span(profiler_, obs::SpanKind::kDotLocal);
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      PIPESCG_CHECK(pairs[p].x->size() == n && pairs[p].y->size() == n,
                    "dot size mismatch");
      const double* x = pairs[p].x->data();
      const double* y = pairs[p].y->data();
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
      partials_[p] = acc;
    }
  }
  if (profiler_ != nullptr) ++profiler_->counters().allreduces;
  slot.request = comm_.iallreduce_sum(
      std::span<const double>(partials_.data(), partials_.size()));
  slot.active = true;

  DotHandle h;
  h.id = id;
  h.count = pairs.size();
  h.active = true;
  return h;
}

void SpmdEngine::dot_wait(DotHandle& handle, std::span<double> out) {
  PIPESCG_CHECK(handle.active, "dot_wait on inactive handle");
  Pending& slot = pending_[handle.id % kMaxPending];
  PIPESCG_CHECK(slot.active, "dot handle does not match a pending batch");
  comm_.wait(slot.request, out);  // wait-spin span recorded by Comm
  slot.active = false;
  handle.active = false;
}

void SpmdEngine::mark_iteration(std::uint64_t iter, double /*rnorm*/) {
  // SolveStats carries the residual history; the profiler only needs the
  // CG-equivalent iteration count (same convention as sim::EventTrace).
  if (profiler_ != nullptr)
    profiler_->counters().iterations = static_cast<std::size_t>(iter) + 1;
}

void SpmdEngine::record_compute(double, double) {}

}  // namespace pipescg::krylov
