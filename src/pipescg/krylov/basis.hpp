// Shifted s-step basis support (monomial | Newton | Chebyshev).
//
// The s-step drivers historically built the monomial power basis
// S = [r, A r, ..., A^{2s} r], whose columns align with the dominant
// eigenvector at a rate of kappa per power: the basis Gram matrix loses a
// factor ~kappa of conditioning per column and the scalar work goes
// numerically singular long before the communication model says larger s
// should win (the fig3 cliff).  The classical fix (Philippe/Reichel;
// Hoemmen; Moufawad arXiv 1804.10629) replaces the powers with a shifted
// three-term polynomial family
//
//     x p_j(x) = gamma_j p_{j+1}(x) + theta_j p_j(x) + sigma_j p_{j-1}(x),
//     p_0 = 1,
//
// whose shifts are derived from an estimate [lambda_min, lambda_max] of the
// operator spectrum -- the same quantity precond::ChebyshevPreconditioner
// already computes:
//
//   * monomial:  gamma = 1, theta = sigma = 0  (p_j = x^j, the historical
//     basis; every recurrence below degenerates to the old code path);
//   * Newton:    sigma = 0, theta_j = Leja-ordered points on the interval,
//     gamma = (lambda_max - lambda_min) / 4 (the interval capacity, so
//     column norms stay O(1));
//   * Chebyshev: scaled-and-shifted Chebyshev polynomials on the interval,
//     gamma_0 = e, theta_j = c, gamma_j = sigma_j = e / 2 for j >= 1 with
//     c = (max + min) / 2, e = (max - min) / 2 -- the bounded-on-interval
//     family, the strongest conditioning fix of the three.
//
// Everything a driver needs beyond the recurrence itself is coordinate
// arithmetic precomputed here once per (spec, s): the expansion of
// p_j(x) * x * p_c(x) over {p_0, ..., p_{j+c+1}} seeds the pipelined power
// towers (for the monomial basis the expansion is the unit vector at
// j + c + 1, i.e. the old copy), and the basis Gram matrix G(j, k) replaces
// the 2s+1 moment vector in the single per-outer-iteration allreduce -- the
// SPMV count and the allreduce schedule are unchanged, only the payload
// grows from 2s+1 to (s+1)(s+2)/2 scalars.  See DESIGN.md section 13.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pipescg/krylov/engine.hpp"
#include "pipescg/krylov/vec.hpp"

namespace pipescg {
class CliParser;
}

namespace pipescg::krylov {

struct SolverOptions;

enum class BasisType { kMonomial, kNewton, kChebyshev };

/// "monomial"/"mono", "newton", "chebyshev"/"cheb" (case-sensitive); throws
/// pipescg::Error on anything else.
BasisType parse_basis_type(const std::string& name);
std::string to_string(BasisType type);

/// How an s-step driver should build its basis.  The shift interval may be
/// provided (e.g. from precond::ChebyshevPreconditioner::lambda_max()) or
/// left at 0 to be estimated at solve setup by resolve_basis() -- a few
/// deterministic power-iteration steps on the engine's operator, costing
/// setup-only collectives, never per-iteration ones.
struct BasisSpec {
  BasisType type = BasisType::kMonomial;
  double lambda_min = 0.0;  ///< <= 0: lambda_max / interval_ratio
  double lambda_max = 0.0;  ///< <= 0: estimate by power iteration at setup
  int power_iterations = 10;      ///< setup estimation budget
  double interval_ratio = 30.0;   ///< lambda_min fallback divisor
};

/// Resolve the shift interval of `spec` against the operator the engine
/// applies (M^{-1}A when `preconditioned`, else A): returns a copy with
/// lambda_min/lambda_max filled in.  Monomial specs and specs with explicit
/// bounds pass through untouched.  Deterministic: all-ones start vector,
/// fixed iteration count, Rayleigh-quotient estimate with a 5% safety
/// margin; the dots are blocking setup collectives.
BasisSpec resolve_basis(Engine& engine, const BasisSpec& spec,
                        bool preconditioned);

/// Shift coefficients and seed-expansion tables for one (spec, s).  Cheap to
/// construct (O(s^4) scalar work, no vectors, no communication); drivers
/// build one per attempt.
class ShiftedBasis {
 public:
  /// `spec` must be resolved (non-monomial types need a positive interval).
  ShiftedBasis(const BasisSpec& spec, int s);

  BasisType type() const { return type_; }
  bool monomial() const { return type_ == BasisType::kMonomial; }
  int s() const { return s_; }
  double lambda_min() const { return lambda_min_; }
  double lambda_max() const { return lambda_max_; }

  /// Recurrence coefficients for degree j -> j+1, j in [0, 2s).
  double gamma(int j) const { return gamma_[static_cast<std::size_t>(j)]; }
  double theta(int j) const { return theta_[static_cast<std::size_t>(j)]; }
  double sigma(int j) const { return sigma_[static_cast<std::size_t>(j)]; }

  /// Coordinates of p_j(x) * x * p_c(x) in {p_0, ..., p_{j+c+1}} (length
  /// j + c + 2), for j in [0, s], c in [0, s).  Seeds the pipelined power
  /// towers T[j] = p_j(A) A P and (j = 0) the AP block of sCG-sSPMV.
  std::span<const double> seed(int j, int c) const;

 private:
  BasisType type_;
  int s_;
  double lambda_min_ = 0.0, lambda_max_ = 0.0;
  std::vector<double> gamma_, theta_, sigma_;
  std::vector<std::vector<double>> seeds_;  // [(s+1) * s] tables
};

/// Non-owning degree-indexed view of a basis chain split across the main
/// block (degrees 0..lo->size()-1) and an optional extension block.
struct ChainView {
  VecBlock* lo = nullptr;
  VecBlock* hi = nullptr;

  Vec& operator[](std::size_t d) const {
    return d < lo->size() ? (*lo)[d] : (*hi)[d - lo->size()];
  }
  const Vec& at(std::size_t d) const { return (*this)[d]; }
};

/// Extend an unpreconditioned shifted chain: columns [first, first+count)
/// get p_d(A) applied to the chain's column 0 via the three-term recurrence
///   p_d = (A p_{d-1} - theta_{d-1} p_{d-1} - sigma_{d-1} p_{d-2}) / gamma_{d-1}.
/// One SPMV per new column -- the same count as the monomial power loop; no
/// matrix-powers fusion (the shift combinations interleave with the SPMVs).
void extend_chain(Engine& engine, const ShiftedBasis& basis, ChainView cols,
                  std::size_t first, std::size_t count, Vec& scratch);

/// Preconditioned twin chains w_d = M v_d (r-side) and v_d (u-side): the
/// SPMV extends the w side from v_{d-1}, the shift combination runs on the
/// w side, and one PC application produces v_d = M^{-1} w_d -- one SPMV plus
/// one PC per column, matching the monomial interleaved chain.
void extend_chain_pc(Engine& engine, const ShiftedBasis& basis, ChainView w,
                     ChainView v, std::size_t first, std::size_t count,
                     Vec& scratch);

/// dst = sum_d coeffs[d] * cols[d] (seed-expansion combination for the
/// tower columns; zero coefficients are skipped).
void combine_chain(Engine& engine, std::span<const double> coeffs,
                   ChainView cols, Vec& dst);

/// Apply the shared --basis / --replace-every / --gap-tol CLI options
/// (CliParser::add_stability_options) to `opts`.
void apply_stability_cli(const CliParser& cli, SolverOptions& opts);

}  // namespace pipescg::krylov
