// Preconditioned Conjugate Gradient (Hestenes & Stiefel), paper Algorithm 1.
//
// The baseline every figure normalizes against.  Three blocking allreduces
// per iteration -- (s, p), (u, r), and the norm -- matching the paper's
// Table I accounting (set SolverOptions::fuse_cg_dots to merge the latter
// two PETSc-style).
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class CgSolver final : public Solver {
 public:
  std::string name() const override { return "pcg"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
