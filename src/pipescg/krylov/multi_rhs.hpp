// Batched multi-RHS s-step CG: k independent systems A x_i = b_i against
// the SAME operator, advanced in lockstep with their per-iteration dot
// batches FUSED into one allreduce.
//
// This is the reduction-side analogue of the paper's s-step argument: an
// s-step method amortizes one global reduction over s iterations of one
// solve; the batched driver amortizes one global reduction over k *solves*.
// Per outer iteration every active column performs its own basis build
// (s SPMVs, one halo epoch each when a matrix-powers kernel is attached)
// and contributes its 2s+1 moments + s x s Gram cross block to a single
// widened payload of k * (2s+1 + s^2) doubles -- one allreduce latency paid
// where k independent solves would pay k.
//
// Column-wise equivalence: the fixed-order allreduce reduces every payload
// entry independently, so each column's reduced values -- and therefore its
// entire iterate trajectory -- are BITWISE IDENTICAL to the same solve run
// alone through ScgSspmvSolver (clean runs; the batched driver freezes a
// column on breakdown instead of rolling it back, so runs that would need
// fault recovery differ).  Columns that converge simply stop contributing
// to the payload while the rest keep iterating.
//
// Used by service::Session to batch compatible admission-queue requests;
// see DESIGN.md section 12.
#pragma once

#include <span>
#include <vector>

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

/// Largest k the batched driver accepts at block depth s: the fused payload
/// k * (2s+1 + s^2) must fit one par::Team allreduce (kMaxPayload doubles).
/// The two-argument overload accounts for a shifted (Newton/Chebyshev)
/// basis, whose Gram payload k * ((s+1)(s+2)/2 + s^2) is wider.
std::size_t max_batch_columns(int s);
std::size_t max_batch_columns(int s, bool shifted_basis);

/// Solve A x_i = b_i for every column i in lockstep (method "scg-sspmv",
/// paper Alg. 4, basis builds through Engine::apply_op_powers).  `bs` and
/// `xs` must have equal size <= max_batch_columns(opts.s); xs carries the
/// initial guesses and receives the solutions.  Returns one SolveStats per
/// column, each equivalent to an independent single-RHS solve (bitwise on
/// clean runs -- see the header comment).  Unlike the single-RHS drivers
/// the batched driver does not roll back on detected faults: a column whose
/// scalar work fails or whose residual goes non-finite is frozen with
/// breakdown flagged, and the remaining columns continue.
std::vector<SolveStats> scg_multi_solve(Engine& engine,
                                        std::span<const Vec> bs,
                                        std::span<Vec> xs,
                                        const SolverOptions& opts);

}  // namespace pipescg::krylov
