#include "pipescg/krylov/serial_engine.hpp"

#include "pipescg/base/error.hpp"
#include "pipescg/la/vector_kernels.hpp"

namespace pipescg::krylov {

SerialEngine::SerialEngine(const sparse::LinearOperator& a,
                           const precond::Preconditioner* pc,
                           sim::EventTrace* trace)
    : a_(a), pc_(pc), trace_(trace) {
  if (pc_ != nullptr) {
    PIPESCG_CHECK(pc_->rows() == a_.rows(),
                  "preconditioner/operator dimension mismatch");
  }
  if (trace_ != nullptr) {
    op_index_ = trace_->register_operator(a_.stats());
    if (pc_ != nullptr) pc_index_ = trace_->register_pc(pc_->cost_profile());
  }
}

void SerialEngine::apply_op(const Vec& x, Vec& y) {
  a_.apply(x.span(), y.span());
  if (trace_ != nullptr) {
    sim::Event e;
    e.kind = sim::EventKind::kSpmv;
    e.index = op_index_;
    trace_->record(e);
  }
}

void SerialEngine::apply_pc(const Vec& r, Vec& u) {
  if (pc_ == nullptr) {
    // Identity preconditioner: a copy, priced as stream traffic.
    copy(r, u);
    return;
  }
  pc_->apply(r.span(), u.span());
  if (trace_ != nullptr) {
    sim::Event e;
    e.kind = sim::EventKind::kPcApply;
    e.index = pc_index_;
    trace_->record(e);
  }
}

DotHandle SerialEngine::dot_post(std::span<const DotPair> pairs,
                                 bool blocking) {
  const std::uint64_t id = next_dot_id_++;
  std::vector<double>& values = pending_values_[id % kMaxPending];
  PIPESCG_CHECK(values.empty(), "too many in-flight dot batches");
  values.resize(pairs.size());
  const std::size_t n = local_size();
  dot_views_.clear();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    PIPESCG_CHECK(pairs[p].x->size() == n && pairs[p].y->size() == n,
                  "dot size mismatch");
    dot_views_.push_back({pairs[p].x->data(), pairs[p].y->data()});
  }
  la::dot_batch(dot_views_, n, values);
  if (trace_ != nullptr) {
    // Local reduction work...
    sim::Event work;
    work.kind = sim::EventKind::kCompute;
    work.flops = 2.0 * static_cast<double>(n) * pairs.size();
    work.bytes = 16.0 * static_cast<double>(n) * pairs.size();
    trace_->record(work);
    // ...then the allreduce post.
    sim::Event e;
    e.kind = sim::EventKind::kAllreducePost;
    e.id = id;
    e.bytes = static_cast<double>(pairs.size());  // payload in doubles
    e.value = blocking ? 1.0 : 0.0;
    trace_->record(e);
  }
  DotHandle h;
  h.id = id;
  h.count = pairs.size();
  h.active = true;
  return h;
}

void SerialEngine::dot_wait(DotHandle& handle, std::span<double> out) {
  PIPESCG_CHECK(handle.active, "dot_wait on inactive handle");
  std::vector<double>& values = pending_values_[handle.id % kMaxPending];
  PIPESCG_CHECK(values.size() == handle.count, "dot handle mismatch");
  PIPESCG_CHECK(out.size() >= handle.count, "dot output too small");
  for (std::size_t i = 0; i < handle.count; ++i) out[i] = values[i];
  values.clear();
  handle.active = false;
  if (trace_ != nullptr) {
    sim::Event e;
    e.kind = sim::EventKind::kAllreduceWait;
    e.id = handle.id;
    trace_->record(e);
  }
}

void SerialEngine::mark_iteration(std::uint64_t iter, double rnorm) {
  if (trace_ == nullptr) return;
  sim::Event e;
  e.kind = sim::EventKind::kIterationMark;
  e.id = iter;
  e.value = rnorm;
  trace_->record(e);
}

void SerialEngine::record_compute(double flops, double bytes) {
  if (trace_ == nullptr) return;
  sim::Event e;
  e.kind = sim::EventKind::kCompute;
  e.flops = flops;
  e.bytes = bytes;
  trace_->record(e);
}

}  // namespace pipescg::krylov
