#include "pipescg/krylov/registry.hpp"

#include "pipescg/base/error.hpp"
#include "pipescg/krylov/cg.hpp"
#include "pipescg/krylov/hybrid.hpp"
#include "pipescg/krylov/pipe_pscg.hpp"
#include "pipescg/krylov/pipe_scg.hpp"
#include "pipescg/krylov/pipecg.hpp"
#include "pipescg/krylov/pipecg3.hpp"
#include "pipescg/krylov/pipecg_oati.hpp"
#include "pipescg/krylov/pscg.hpp"
#include "pipescg/krylov/scg.hpp"
#include "pipescg/krylov/scg_sspmv.hpp"

namespace pipescg::krylov {

std::unique_ptr<Solver> make_solver(const std::string& name) {
  if (name == "pcg") return std::make_unique<CgSolver>();
  if (name == "pipecg") return std::make_unique<PipeCgSolver>();
  if (name == "pipecg3") return std::make_unique<PipeCg3Solver>();
  if (name == "pipecg-oati") return std::make_unique<PipeCgOatiSolver>();
  if (name == "scg") return std::make_unique<ScgSolver>();
  if (name == "pscg") return std::make_unique<PscgSolver>();
  if (name == "scg-sspmv") return std::make_unique<ScgSspmvSolver>();
  if (name == "pipe-scg") return std::make_unique<PipeScgSolver>();
  if (name == "pipe-pscg") return std::make_unique<PipePscgSolver>();
  if (name == "hybrid") return std::make_unique<HybridSolver>();
  PIPESCG_FAIL("unknown solver '" + name +
               "'; known: pcg pipecg pipecg3 pipecg-oati scg pscg scg-sspmv "
               "pipe-scg pipe-pscg hybrid");
}

std::vector<std::string> solver_names() {
  return {"pcg",  "pipecg",    "pipecg3",  "pipecg-oati", "scg",
          "pscg", "scg-sspmv", "pipe-scg", "pipe-pscg",   "hybrid"};
}

bool solver_uses_preconditioner(const std::string& name) {
  return name != "scg" && name != "scg-sspmv" && name != "pipe-scg";
}

}  // namespace pipescg::krylov
