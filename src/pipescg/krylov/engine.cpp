#include "pipescg/krylov/engine.hpp"

#include "pipescg/base/error.hpp"
#include "pipescg/la/vector_kernels.hpp"

// Cost-accounting note: the BLAS-1 entry points below route their arithmetic
// through the fused kernels in la/vector_kernels, but record_compute still
// charges the LOGICAL operation sequence (one event per axpy, one copy event,
// ...).  The recorded event trace is the solver's algorithmic work, stable
// across kernel-level fusion -- the same convention SpmdEngine uses for the
// matrix-powers kernel (s spmv counts for one fused block) -- so modeled
// baselines (BENCH_fig1) stay bitwise comparable while the measured fusion
// wins are gated separately via ratios.kernels.* (bench_kernels).

namespace pipescg::krylov {

void Engine::apply_op_powers(const Vec& x, std::span<Vec> outs) {
  if (outs.empty()) return;
  apply_op(x, outs[0]);
  for (std::size_t j = 1; j < outs.size(); ++j)
    apply_op(outs[j - 1], outs[j]);
}

void Engine::copy(const Vec& x, Vec& y) {
  PIPESCG_CHECK(x.size() == y.size(), "copy size mismatch");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i];
  record_compute(0.0, 16.0 * n * global_scale());
}

void Engine::set_all(Vec& x, double a) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) x[i] = a;
  record_compute(0.0, 8.0 * n * global_scale());
}

void Engine::scale(Vec& x, double a) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
  record_compute(1.0 * n * global_scale(), 16.0 * n * global_scale());
}

void Engine::axpy(Vec& y, double a, const Vec& x) {
  PIPESCG_CHECK(x.size() == y.size(), "axpy size mismatch");
  const std::size_t n = x.size();
  la::axpy(y.data(), a, x.data(), n);
  record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
}

void Engine::axpy_pair(Vec& y, double a1, const Vec& x1, double a2,
                       const Vec& x2) {
  PIPESCG_CHECK(x1.size() == y.size() && x2.size() == y.size(),
                "axpy_pair size mismatch");
  const std::size_t n = y.size();
  la::axpy_pair(y.data(), a1, x1.data(), a2, x2.data(), n);
  // Two logical axpys (same events the unfused pair records).
  record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
  record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
}

void Engine::aypx(Vec& y, double a, const Vec& x) {
  PIPESCG_CHECK(x.size() == y.size(), "aypx size mismatch");
  const std::size_t n = x.size();
  const double* xp = x.data();
  double* yp = y.data();
  for (std::size_t i = 0; i < n; ++i) yp[i] = xp[i] + a * yp[i];
  record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
}

void Engine::waxpy(Vec& z, double a, const Vec& y, const Vec& x) {
  PIPESCG_CHECK(x.size() == y.size() && x.size() == z.size(),
                "waxpy size mismatch");
  const std::size_t n = x.size();
  const double* xp = x.data();
  const double* yp = y.data();
  double* zp = z.data();
  for (std::size_t i = 0; i < n; ++i) zp[i] = xp[i] + a * yp[i];
  record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
}

void Engine::block_maxpy(VecBlock& y_block, const VecBlock& x_block,
                         const la::DenseMatrix& b) {
  PIPESCG_CHECK(b.rows() == x_block.size() && b.cols() == y_block.size(),
                "block_maxpy shape mismatch");
  for (std::size_t j = 0; j < y_block.size(); ++j) {
    Vec& y = y_block[j];
    // Pair consecutive nonzero-coefficient columns so each pass over y
    // accumulates two terms (axpy_pair); a leftover odd column falls back to
    // a single axpy.  Term order -- and hence rounding -- is unchanged.
    std::size_t pending = x_block.size();  // sentinel: no column pending
    for (std::size_t k = 0; k < x_block.size(); ++k) {
      if (b(k, j) == 0.0) continue;
      if (pending == x_block.size()) {
        pending = k;
        continue;
      }
      axpy_pair(y, b(pending, j), x_block[pending], b(k, j), x_block[k]);
      pending = x_block.size();
    }
    if (pending != x_block.size()) axpy(y, b(pending, j), x_block[pending]);
  }
}

void Engine::block_combine(Vec& out, const Vec& base, const VecBlock& block,
                           std::span<const double> coeff) {
  PIPESCG_CHECK(coeff.size() == block.size(), "block_combine shape mismatch");
  PIPESCG_CHECK(base.size() == out.size(), "block_combine size mismatch");
  const std::size_t n = out.size();
  // Fused loop: one pass over memory regardless of s.
  double* op = out.data();
  const double* bp = base.data();
  for (std::size_t i = 0; i < n; ++i) op[i] = bp[i];
  for (std::size_t k = 0; k < block.size(); ++k) {
    const double c = -coeff[k];
    const double* tk = block[k].data();
    for (std::size_t i = 0; i < n; ++i) op[i] += c * tk[i];
  }
  record_compute(2.0 * n * block.size() * global_scale(),
                 (16.0 + 8.0 * block.size()) * n * global_scale());
}

void Engine::block_axpy(Vec& y, const VecBlock& block,
                        std::span<const double> coeff) {
  PIPESCG_CHECK(coeff.size() == block.size(), "block_axpy shape mismatch");
  std::size_t k = 0;
  for (; k + 1 < block.size(); k += 2)
    axpy_pair(y, coeff[k], block[k], coeff[k + 1], block[k + 1]);
  if (k < block.size()) axpy(y, coeff[k], block[k]);
}

void Engine::shift_combine(Vec& dst, const Vec& av, double theta,
                           const Vec& p1, double sigma, const Vec* p2,
                           double gamma) {
  PIPESCG_CHECK(av.size() == dst.size() && p1.size() == dst.size(),
                "shift_combine size mismatch");
  PIPESCG_CHECK(p2 == nullptr || p2->size() == dst.size(),
                "shift_combine size mismatch");
  const std::size_t n = dst.size();
  la::shift_combine(dst.data(), av.data(), theta, p1.data(), sigma,
                    p2 == nullptr ? nullptr : p2->data(), gamma, n);
  // Logical event sequence of the unfused chain: copy, then one axpy per
  // active shift term, then the scale -- with the same guards.
  record_compute(0.0, 16.0 * n * global_scale());
  if (theta != 0.0)
    record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
  if (p2 != nullptr && sigma != 0.0)
    record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
  if (gamma != 1.0)
    record_compute(1.0 * n * global_scale(), 16.0 * n * global_scale());
}

}  // namespace pipescg::krylov
