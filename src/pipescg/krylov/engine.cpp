#include "pipescg/krylov/engine.hpp"

#include "pipescg/base/error.hpp"

namespace pipescg::krylov {

void Engine::apply_op_powers(const Vec& x, std::span<Vec> outs) {
  if (outs.empty()) return;
  apply_op(x, outs[0]);
  for (std::size_t j = 1; j < outs.size(); ++j)
    apply_op(outs[j - 1], outs[j]);
}

void Engine::copy(const Vec& x, Vec& y) {
  PIPESCG_CHECK(x.size() == y.size(), "copy size mismatch");
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = x[i];
  record_compute(0.0, 16.0 * n * global_scale());
}

void Engine::set_all(Vec& x, double a) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) x[i] = a;
  record_compute(0.0, 8.0 * n * global_scale());
}

void Engine::scale(Vec& x, double a) {
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) x[i] *= a;
  record_compute(1.0 * n * global_scale(), 16.0 * n * global_scale());
}

void Engine::axpy(Vec& y, double a, const Vec& x) {
  PIPESCG_CHECK(x.size() == y.size(), "axpy size mismatch");
  const std::size_t n = x.size();
  const double* xp = x.data();
  double* yp = y.data();
  for (std::size_t i = 0; i < n; ++i) yp[i] += a * xp[i];
  record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
}

void Engine::aypx(Vec& y, double a, const Vec& x) {
  PIPESCG_CHECK(x.size() == y.size(), "aypx size mismatch");
  const std::size_t n = x.size();
  const double* xp = x.data();
  double* yp = y.data();
  for (std::size_t i = 0; i < n; ++i) yp[i] = xp[i] + a * yp[i];
  record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
}

void Engine::waxpy(Vec& z, double a, const Vec& y, const Vec& x) {
  PIPESCG_CHECK(x.size() == y.size() && x.size() == z.size(),
                "waxpy size mismatch");
  const std::size_t n = x.size();
  const double* xp = x.data();
  const double* yp = y.data();
  double* zp = z.data();
  for (std::size_t i = 0; i < n; ++i) zp[i] = xp[i] + a * yp[i];
  record_compute(2.0 * n * global_scale(), 24.0 * n * global_scale());
}

void Engine::block_maxpy(VecBlock& y_block, const VecBlock& x_block,
                         const la::DenseMatrix& b) {
  PIPESCG_CHECK(b.rows() == x_block.size() && b.cols() == y_block.size(),
                "block_maxpy shape mismatch");
  for (std::size_t j = 0; j < y_block.size(); ++j) {
    Vec& y = y_block[j];
    for (std::size_t k = 0; k < x_block.size(); ++k) {
      const double bkj = b(k, j);
      if (bkj == 0.0) continue;
      axpy(y, bkj, x_block[k]);
    }
  }
}

void Engine::block_combine(Vec& out, const Vec& base, const VecBlock& block,
                           std::span<const double> coeff) {
  PIPESCG_CHECK(coeff.size() == block.size(), "block_combine shape mismatch");
  PIPESCG_CHECK(base.size() == out.size(), "block_combine size mismatch");
  const std::size_t n = out.size();
  // Fused loop: one pass over memory regardless of s.
  double* op = out.data();
  const double* bp = base.data();
  for (std::size_t i = 0; i < n; ++i) op[i] = bp[i];
  for (std::size_t k = 0; k < block.size(); ++k) {
    const double c = -coeff[k];
    const double* tk = block[k].data();
    for (std::size_t i = 0; i < n; ++i) op[i] += c * tk[i];
  }
  record_compute(2.0 * n * block.size() * global_scale(),
                 (16.0 + 8.0 * block.size()) * n * global_scale());
}

void Engine::block_axpy(Vec& y, const VecBlock& block,
                        std::span<const double> coeff) {
  PIPESCG_CHECK(coeff.size() == block.size(), "block_axpy shape mismatch");
  for (std::size_t k = 0; k < block.size(); ++k) axpy(y, coeff[k], block[k]);
}

}  // namespace pipescg::krylov
