// PIPE-sCG: Pipelined s-step Conjugate Gradient, unpreconditioned
// (paper Algorithm 5).
//
// One non-blocking allreduce per s iterations, overlapped with the s SPMVs
// that extend the monomial basis to A^{2s} r.  PIPE-PsCG with the identity
// preconditioner is mathematically identical; this dedicated implementation
// carries a single power basis (no r-side/u-side twins), halving the memory
// and the recurrence work, exactly as Alg. 5 does relative to Alg. 6.
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class PipeScgSolver final : public Solver {
 public:
  std::string name() const override { return "pipe-scg"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
