#include "pipescg/krylov/basis.hpp"

#include <algorithm>
#include <cmath>

#include "pipescg/base/cli.hpp"
#include "pipescg/base/error.hpp"
#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {
namespace {

// Chebyshev extreme points of [lo, hi] in Leja order: first the largest
// magnitude point, then greedily the candidate maximizing the product of
// distances to the points already chosen (evaluated in log space so long
// products neither overflow nor underflow).  Leja ordering keeps the Newton
// basis well-conditioned at every intermediate degree, not just the last.
std::vector<double> leja_points(double lo, double hi, std::size_t count) {
  const std::size_t m = std::max<std::size_t>(count, 1);
  std::vector<double> candidates(m);
  if (m == 1) {
    candidates[0] = hi;
  } else {
    const double c = 0.5 * (hi + lo);
    const double e = 0.5 * (hi - lo);
    for (std::size_t i = 0; i < m; ++i) {
      const double t = std::cos(M_PI * static_cast<double>(i) /
                                static_cast<double>(m - 1));
      candidates[i] = c + e * t;
    }
  }
  std::vector<double> ordered;
  ordered.reserve(m);
  std::vector<bool> used(m, false);
  // Start at the largest-magnitude candidate (the hi end for SPD spectra).
  std::size_t first = 0;
  for (std::size_t i = 1; i < m; ++i)
    if (std::abs(candidates[i]) > std::abs(candidates[first])) first = i;
  used[first] = true;
  ordered.push_back(candidates[first]);
  while (ordered.size() < count) {
    std::size_t best = m;
    double best_log = -1e300;
    for (std::size_t i = 0; i < m; ++i) {
      if (used[i]) continue;
      double log_prod = 0.0;
      for (double x : ordered) {
        const double d = std::abs(candidates[i] - x);
        log_prod += std::log(std::max(d, 1e-300));
      }
      if (best == m || log_prod > best_log) {
        best = i;
        best_log = log_prod;
      }
    }
    used[best] = true;
    ordered.push_back(candidates[best]);
  }
  return ordered;
}

}  // namespace

BasisType parse_basis_type(const std::string& name) {
  if (name == "mono" || name == "monomial") return BasisType::kMonomial;
  if (name == "newton") return BasisType::kNewton;
  if (name == "chebyshev" || name == "cheb") return BasisType::kChebyshev;
  PIPESCG_FAIL("unknown basis '" + name +
               "' (expected mono|newton|chebyshev)");
}

std::string to_string(BasisType type) {
  switch (type) {
    case BasisType::kMonomial:
      return "monomial";
    case BasisType::kNewton:
      return "newton";
    case BasisType::kChebyshev:
      return "chebyshev";
  }
  return "monomial";
}

BasisSpec resolve_basis(Engine& engine, const BasisSpec& spec,
                        bool preconditioned) {
  BasisSpec out = spec;
  if (out.type == BasisType::kMonomial) return out;
  if (out.lambda_max <= 0.0) {
    // Deterministic power iteration on the operator the basis recurrences
    // run in (M^{-1}A for the preconditioned drivers).  All-ones start
    // vector so the estimate is independent of the rank layout; one
    // 3-scalar blocking dot batch per step (setup-only collectives).
    Vec v = engine.new_vec();
    Vec av = engine.new_vec();
    Vec bv = engine.new_vec();
    engine.set_all(v, 1.0);
    double lambda = 1.0;
    const int iters = std::max(1, out.power_iterations);
    for (int it = 0; it < iters; ++it) {
      engine.apply_op(v, av);
      const Vec* w = &av;
      if (preconditioned && engine.has_preconditioner()) {
        engine.apply_pc(av, bv);
        w = &bv;
      }
      const DotPair pairs[3] = {{&v, w}, {&v, &v}, {w, w}};
      double vals[3] = {0.0, 0.0, 0.0};
      engine.dots(std::span<const DotPair>(pairs, 3),
                  std::span<double>(vals, 3));
      if (!(vals[1] > 0.0) || !std::isfinite(vals[0]) ||
          !std::isfinite(vals[2]))
        break;
      lambda = vals[0] / vals[1];
      const double wn = std::sqrt(vals[2]);
      if (!(wn > 0.0) || !std::isfinite(wn)) break;
      engine.copy(*w, v);
      engine.scale(v, 1.0 / wn);
    }
    // The Rayleigh quotient approaches lambda_max from below; a 5% margin
    // covers the truncated iteration (the shifts only need to bracket the
    // spectrum, not pin it).
    out.lambda_max = std::abs(lambda) * 1.05;
  }
  PIPESCG_CHECK(std::isfinite(out.lambda_max) && out.lambda_max > 0.0,
                "basis spectrum estimation failed (lambda_max <= 0)");
  if (out.lambda_min <= 0.0)
    out.lambda_min = out.lambda_max / std::max(out.interval_ratio, 1.0);
  if (out.lambda_min >= out.lambda_max)
    out.lambda_min = out.lambda_max / 30.0;
  return out;
}

ShiftedBasis::ShiftedBasis(const BasisSpec& spec, int s)
    : type_(spec.type), s_(s) {
  PIPESCG_CHECK(s >= 1 && s <= 16, "s must be in [1, 16]");
  const std::size_t degrees = static_cast<std::size_t>(2 * s);
  gamma_.assign(degrees, 1.0);
  theta_.assign(degrees, 0.0);
  sigma_.assign(degrees, 0.0);
  if (type_ != BasisType::kMonomial) {
    lambda_min_ = spec.lambda_min;
    lambda_max_ = spec.lambda_max;
    PIPESCG_CHECK(std::isfinite(lambda_min_) && std::isfinite(lambda_max_) &&
                      lambda_min_ > 0.0 && lambda_max_ > lambda_min_,
                  "shifted basis needs a resolved positive spectrum interval "
                  "(see resolve_basis)");
    const double c = 0.5 * (lambda_max_ + lambda_min_);
    const double e = 0.5 * (lambda_max_ - lambda_min_);
    if (type_ == BasisType::kChebyshev) {
      for (std::size_t j = 0; j < degrees; ++j) theta_[j] = c;
      gamma_[0] = e;
      for (std::size_t j = 1; j < degrees; ++j) {
        gamma_[j] = 0.5 * e;
        sigma_[j] = 0.5 * e;
      }
    } else {  // Newton
      const std::vector<double> pts = leja_points(lambda_min_, lambda_max_,
                                                  degrees);
      for (std::size_t j = 0; j < degrees; ++j) {
        theta_[j] = pts[j];
        gamma_[j] = 0.5 * e;  // interval capacity (max - min) / 4
      }
    }
  }

  // Seed tables: coordinates of p_j(x) * x * p_c(x), built by coordinate
  // arithmetic.  mul_x maps coords through the recurrence
  // x p_d = gamma_d p_{d+1} + theta_d p_d + sigma_d p_{d-1}.
  const auto mul_x = [&](const std::vector<double>& q) {
    std::vector<double> out(q.size() + 1, 0.0);
    for (std::size_t d = 0; d < q.size(); ++d) {
      if (q[d] == 0.0) continue;
      out[d + 1] += gamma_[d] * q[d];
      out[d] += theta_[d] * q[d];
      if (d > 0) out[d - 1] += sigma_[d] * q[d];
    }
    return out;
  };
  const std::size_t su = static_cast<std::size_t>(s);
  seeds_.resize((su + 1) * su);
  for (std::size_t c = 0; c < su; ++c) {
    // q_k = p_k(x) * (x p_c(x)); q_{k+1} = ((x - theta_k) q_k
    //                                       - sigma_k q_{k-1}) / gamma_k.
    std::vector<double> unit(c + 1, 0.0);
    unit[c] = 1.0;
    std::vector<double> q_prev;
    std::vector<double> q_cur = mul_x(unit);
    seeds_[c] = q_cur;  // j = 0
    for (std::size_t k = 0; k + 1 <= su; ++k) {
      std::vector<double> next = mul_x(q_cur);
      for (std::size_t d = 0; d < q_cur.size(); ++d)
        next[d] -= theta_[k] * q_cur[d];
      if (k > 0)
        for (std::size_t d = 0; d < q_prev.size(); ++d)
          next[d] -= sigma_[k] * q_prev[d];
      const double inv = 1.0 / gamma_[k];
      for (double& x : next) x *= inv;
      q_prev = std::move(q_cur);
      q_cur = std::move(next);
      seeds_[(k + 1) * su + c] = q_cur;
    }
  }
}

std::span<const double> ShiftedBasis::seed(int j, int c) const {
  const std::size_t su = static_cast<std::size_t>(s_);
  PIPESCG_CHECK(j >= 0 && j <= s_ && c >= 0 && c < s_,
                "seed index out of range");
  return seeds_[static_cast<std::size_t>(j) * su +
                static_cast<std::size_t>(c)];
}

void extend_chain(Engine& engine, const ShiftedBasis& basis, ChainView cols,
                  std::size_t first, std::size_t count, Vec& scratch) {
  for (std::size_t d = first; d < first + count; ++d) {
    const int k = static_cast<int>(d) - 1;
    engine.apply_op(cols[d - 1], scratch);
    // One fused pass over the epilogue: previously copy + up to two axpys +
    // scale, each a full sweep.  shift_combine replicates that chain's term
    // guards and arithmetic order exactly (bitwise-identical columns).
    engine.shift_combine(cols[d], scratch, basis.theta(k), cols[d - 1],
                         k > 0 ? basis.sigma(k) : 0.0,
                         k > 0 ? &cols[d - 2] : nullptr, basis.gamma(k));
  }
}

void extend_chain_pc(Engine& engine, const ShiftedBasis& basis, ChainView w,
                     ChainView v, std::size_t first, std::size_t count,
                     Vec& scratch) {
  for (std::size_t d = first; d < first + count; ++d) {
    const int k = static_cast<int>(d) - 1;
    engine.apply_op(v[d - 1], scratch);
    engine.shift_combine(w[d], scratch, basis.theta(k), w[d - 1],
                         k > 0 ? basis.sigma(k) : 0.0,
                         k > 0 ? &w[d - 2] : nullptr, basis.gamma(k));
    engine.apply_pc(w[d], v[d]);
  }
}

void combine_chain(Engine& engine, std::span<const double> coeffs,
                   ChainView cols, Vec& dst) {
  engine.set_all(dst, 0.0);
  // Pair consecutive nonzero terms so each pass over dst accumulates two
  // columns (term order, and hence rounding, unchanged).
  std::size_t pending = coeffs.size();  // sentinel: no term pending
  for (std::size_t d = 0; d < coeffs.size(); ++d) {
    if (coeffs[d] == 0.0) continue;
    if (pending == coeffs.size()) {
      pending = d;
      continue;
    }
    engine.axpy_pair(dst, coeffs[pending], cols[pending], coeffs[d], cols[d]);
    pending = coeffs.size();
  }
  if (pending != coeffs.size())
    engine.axpy(dst, coeffs[pending], cols[pending]);
}

void apply_stability_cli(const CliParser& cli, SolverOptions& opts) {
  opts.basis.type = parse_basis_type(cli.str("basis"));
  opts.replacement_period = static_cast<int>(cli.integer("replace-every"));
  opts.gap_tol = cli.real("gap-tol");
}

}  // namespace pipescg::krylov
