// sCG with s SPMVs (paper Algorithm 4, Section IV-A).
//
// The stepping stone between sCG and PIPE-sCG: the explicit residual
// r = b - A x is replaced by the recurrence r <- r - (A P) alpha, removing
// the extra SPMV (s instead of s+1 per outer iteration).  The allreduce is
// still blocking -- pipelining comes in Algorithm 5.
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class ScgSspmvSolver final : public Solver {
 public:
  std::string name() const override { return "scg-sspmv"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
