// Pipelined PCG (Ghysels & Vanroose 2014), the paper's reference [9].
//
// One non-blocking allreduce per iteration, overlapped with one PC and one
// SPMV by carrying the auxiliary recurrences w = A u, s = A p, q = M^{-1} s,
// z = A q.
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class PipeCgSolver final : public Solver {
 public:
  std::string name() const override { return "pipecg"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
