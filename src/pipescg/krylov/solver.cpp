#include "pipescg/krylov/solver.hpp"

#include <algorithm>
#include <cmath>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/anomaly.hpp"
#include "pipescg/obs/tracing.hpp"

namespace pipescg::krylov {

std::string to_string(NormType norm) {
  switch (norm) {
    case NormType::kPreconditioned:
      return "preconditioned";
    case NormType::kUnpreconditioned:
      return "unpreconditioned";
    case NormType::kNatural:
      return "natural";
  }
  return "?";
}

namespace detail {

double compute_b_norm(Engine& engine, const Vec& b, NormType norm) {
  if (norm == NormType::kUnpreconditioned || !engine.has_preconditioner())
    return std::sqrt(std::max(engine.dot(b, b), 0.0));
  Vec u = engine.new_vec();
  engine.apply_pc(b, u);
  const Vec& x = norm == NormType::kPreconditioned ? u : b;
  return std::sqrt(std::max(engine.dot(x, u), 0.0));
}

double threshold(const SolveStats& stats, const SolverOptions& opts) {
  return std::max(opts.rtol * stats.b_norm, opts.atol);
}

void finalize_stats(Engine& engine, const Vec& b, const Vec& x,
                    const SolverOptions& opts, SolveStats& stats) {
  if (!opts.compute_true_residual) return;
  Vec ax = engine.new_vec();
  engine.apply_op(x, ax);
  Vec r = engine.new_vec();
  engine.waxpy(r, -1.0, ax, b);  // r = b - Ax
  stats.true_residual = std::sqrt(std::max(engine.dot(r, r), 0.0));
}

bool checkpoint(SolveStats& stats, const SolverOptions& opts,
                std::size_t iteration, double rnorm) {
  stats.history.emplace_back(iteration, rnorm);
  // Request-scoped observers: the per-rank tracer records the checkpoint
  // span, the anomaly probe publishes this rank's exposed-wait total and
  // (on rank 0) runs the straggler/stall evaluations.  Both are pure
  // observers -- no collectives, no solver state -- so a monitored solve
  // iterates bitwise identically to a bare one.  Every driver (s-step,
  // pipelined, plain CG, batched multi-RHS) funnels through here.
  if (obs::tracing::Tracer* tracer = obs::tracing::Tracer::current())
    tracer->checkpoint(iteration, rnorm);
  if (obs::anomaly::MidSolveProbe* probe =
          obs::anomaly::MidSolveProbe::current())
    probe->on_checkpoint(iteration, rnorm);
  if (opts.monitor) opts.monitor(IterationInfo{iteration, rnorm});
  if (!std::isfinite(rnorm)) {
    stats.breakdown = true;
    return false;
  }
  return true;
}

bool StallDetector::update(double rnorm) {
  if (!std::isfinite(rnorm)) return true;
  if (best_ < 0.0 || rnorm < best_ * improvement_) {
    best_ = std::max(rnorm, 0.0);
    since_improvement_ = 0;
    return false;
  }
  ++since_improvement_;
  return since_improvement_ >= window_;
}

}  // namespace detail
}  // namespace pipescg::krylov
