// Engine: the execution substrate the solvers are written against.
//
// A solver sees the problem only through this interface:
//   * apply_op / apply_pc        -- SPMV and preconditioner application
//   * dot_post / dot_wait        -- batched dot products with non-blocking
//                                   allreduce semantics (post, overlap
//                                   compute, wait)
//   * BLAS-1 and block kernels   -- local vector work (no communication)
//
// Two engines implement it:
//   * SerialEngine -- whole vectors in one address space; optionally records
//     an EventTrace so the machine-model timeline can price the run at any
//     rank count (see sim/).
//   * SpmdEngine   -- rank-local slices on a par::Comm team; dots really do
//     post a non-blocking allreduce; SPMV does a real halo exchange.
//
// Both engines execute identical solver code, and tests assert they produce
// identical iterates, which validates the distributed implementation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pipescg/krylov/vec.hpp"
#include "pipescg/la/dense_matrix.hpp"

namespace pipescg::krylov {

/// One dot product (x, y) in a batch.
struct DotPair {
  const Vec* x;
  const Vec* y;
};

struct DotHandle {
  std::uint64_t id = 0;
  std::size_t count = 0;
  bool active = false;
};

class Engine {
 public:
  virtual ~Engine() = default;

  /// Rank-local vector length.
  virtual std::size_t local_size() const = 0;
  /// Global problem size.
  virtual std::size_t global_size() const = 0;

  /// Whether apply_pc is a real preconditioner (false => identity copy).
  virtual bool has_preconditioner() const = 0;

  Vec new_vec() const { return Vec(local_size()); }
  VecBlock new_block(std::size_t s) const {
    VecBlock b;
    b.reserve(s);
    for (std::size_t i = 0; i < s; ++i) b.emplace_back(local_size());
    return b;
  }

  // --- operator / preconditioner ---------------------------------------
  virtual void apply_op(const Vec& x, Vec& y) = 0;
  virtual void apply_pc(const Vec& r, Vec& u) = 0;

  // --- matrix powers ------------------------------------------------------
  /// Whether apply_op_powers fuses its power block into a single
  /// communication round (a matrix-powers kernel is attached, see
  /// sparse::MatrixPowers).  When false the default implementation chains
  /// apply_op calls, so s-step solvers call apply_op_powers unconditionally
  /// for unpreconditioned basis extensions; preconditioned extensions
  /// interleave apply_pc between SPMVs and cannot fuse, so they check this
  /// flag before restructuring their loops.
  virtual bool has_matrix_powers() const { return false; }
  /// outs[k] = A^{k+1} x, k = 0..outs.size()-1.  The default implementation
  /// is outs.size() chained apply_op calls -- bit-identical to a hand
  /// written power loop -- so overrides must preserve that contract up to
  /// their documented rounding (the MPK's redundant ghost rows may sum in a
  /// different order; see DESIGN.md section 8).
  virtual void apply_op_powers(const Vec& x, std::span<Vec> outs);

  // --- dot products ------------------------------------------------------
  /// Post the batch: computes local partials and starts the allreduce.
  /// `blocking` tags the collective for the cost model (a blocking
  /// MPI_Allreduce vs a non-blocking MPI_Iallreduce; the paper's async
  /// progress setup makes the two differ, see sim::MachineModel).
  virtual DotHandle dot_post(std::span<const DotPair> pairs,
                             bool blocking = false) = 0;
  /// Complete the batch; out.size() >= number of pairs posted.
  virtual void dot_wait(DotHandle& handle, std::span<double> out) = 0;
  /// Blocking convenience (tagged as a blocking collective).
  void dots(std::span<const DotPair> pairs, std::span<double> out) {
    DotHandle h = dot_post(pairs, /*blocking=*/true);
    dot_wait(h, out);
  }
  double dot(const Vec& x, const Vec& y) {
    const DotPair p{&x, &y};
    double v = 0.0;
    dots(std::span<const DotPair>(&p, 1), std::span<double>(&v, 1));
    return v;
  }

  // --- BLAS-1 (local, cost-tracked) --------------------------------------
  void copy(const Vec& x, Vec& y);
  void set_all(Vec& x, double a);
  void scale(Vec& x, double a);
  /// y += a x
  void axpy(Vec& y, double a, const Vec& x);
  /// y += a1 x1 + a2 x2, fused to one read-modify-write pass
  /// (la::axpy_pair; bitwise identical to the two separate axpys).
  void axpy_pair(Vec& y, double a1, const Vec& x1, double a2, const Vec& x2);
  /// y = x + a y
  void aypx(Vec& y, double a, const Vec& x);
  /// z = x + a y (z may alias x or y)
  void waxpy(Vec& z, double a, const Vec& y, const Vec& x);

  // --- block kernels for the s-step methods -------------------------------
  /// Y(:, j) += sum_k X(:, k) * B(k, j); B is (X.size() x Y.size()).
  void block_maxpy(VecBlock& y_block, const VecBlock& x_block,
                   const la::DenseMatrix& b);
  /// out = base - sum_k coeff[k] * block[k]  (out may alias base)
  void block_combine(Vec& out, const Vec& base, const VecBlock& block,
                     std::span<const double> coeff);
  /// y += sum_k coeff[k] * block[k]
  void block_axpy(Vec& y, const VecBlock& block,
                  std::span<const double> coeff);
  /// dst = (av - theta p1 [- sigma p2]) / gamma -- the shifted-basis
  /// three-term epilogue (krylov::extend_chain) fused to one pass
  /// (la::shift_combine).  p2 may be null (first recurrence step); the term
  /// guards match the unfused copy/axpy/axpy/scale chain exactly, so the
  /// result is bitwise identical to it.  dst must not alias the inputs.
  void shift_combine(Vec& dst, const Vec& av, double theta, const Vec& p1,
                     double sigma, const Vec* p2, double gamma);

  // --- instrumentation -----------------------------------------------------
  /// End of CG-equivalent iteration `iter` with residual norm `rnorm`.
  virtual void mark_iteration(std::uint64_t iter, double rnorm) = 0;

  /// Charge extra vector work to the cost model without performing it.
  /// Used by reconstructed baselines (PIPECG3/PIPECG-OATI) whose published
  /// Table-I FLOP counts exceed what this reconstruction executes.
  void charge(double flops, double bytes) { record_compute(flops, bytes); }

 protected:
  /// Cost hook: flops/bytes in *global* units for the work just performed.
  virtual void record_compute(double flops, double bytes) = 0;
  /// Scale factor turning local elements into global cost units (1 on the
  /// serial engine, global/local on SPMD ranks).
  virtual double global_scale() const = 0;
};

}  // namespace pipescg::krylov
