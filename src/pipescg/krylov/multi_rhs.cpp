#include "pipescg/krylov/multi_rhs.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/par/comm.hpp"

namespace pipescg::krylov {

using sstep::DotLayout;
using sstep::ScalarWork;

std::size_t max_batch_columns(int s) {
  return max_batch_columns(s, /*shifted_basis=*/false);
}

std::size_t max_batch_columns(int s, bool shifted_basis) {
  const DotLayout layout{s, /*preconditioned=*/false, shifted_basis};
  return par::Team::kMaxPayload / layout.total();
}

namespace {

// Everything one right-hand side carries through the lockstep loop.  The
// blocks mirror ScgSspmvSolver::solve exactly; only the dot batches are
// shared with the other columns.
struct Column {
  Column(Engine& engine, int s)
      : basis(engine.new_block(static_cast<std::size_t>(s) + 1)),
        basis_next(engine.new_block(static_cast<std::size_t>(s) + 1)),
        p_prev(engine.new_block(static_cast<std::size_t>(s))),
        p_cur(engine.new_block(static_cast<std::size_t>(s))),
        ap_prev(engine.new_block(static_cast<std::size_t>(s))),
        ap_cur(engine.new_block(static_cast<std::size_t>(s))),
        scalar_work(s) {}

  VecBlock basis, basis_next;
  VecBlock p_prev, p_cur;
  VecBlock ap_prev, ap_cur;
  ScalarWork scalar_work;
  SolveStats stats;
  std::vector<double> values;  // this column's slice of the fused batch
  double tol = 0.0;
  double rnorm = 0.0;
  std::size_t iterations = 0;
  std::size_t outer = 0;
  bool active = true;
};

}  // namespace

std::vector<SolveStats> scg_multi_solve(Engine& engine,
                                        std::span<const Vec> bs,
                                        std::span<Vec> xs,
                                        const SolverOptions& opts) {
  using namespace sstep;
  const std::size_t k = bs.size();
  PIPESCG_CHECK(k >= 1 && xs.size() == k,
                "scg_multi_solve needs matching, non-empty b/x column sets");
  const int s = opts.s;
  const std::size_t su = static_cast<std::size_t>(s);

  // Basis shifts resolved once for the whole batch: every column shares the
  // operator, so one power-iteration estimate serves all of them.
  const BasisSpec basis_spec =
      resolve_basis(engine, opts.basis, /*preconditioned=*/false);
  const ShiftedBasis sbasis(basis_spec, s);
  const bool shifted = !sbasis.monomial();

  const DotLayout layout{s, /*preconditioned=*/false, shifted};
  PIPESCG_CHECK(k <= max_batch_columns(s, shifted),
                "multi-RHS batch of " + std::to_string(k) +
                    " columns exceeds max_batch_columns(s=" +
                    std::to_string(s) + ") = " +
                    std::to_string(max_batch_columns(s, shifted)) +
                    " (fused payload would overflow one allreduce)");

  std::vector<Column> cols;
  cols.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    cols.emplace_back(engine, s);
    cols[i].stats.method = "scg-sspmv";
    cols[i].stats.final_s = s;
    cols[i].stats.basis = to_string(basis_spec.type);
    cols[i].stats.basis_lambda_min = basis_spec.lambda_min;
    cols[i].stats.basis_lambda_max = basis_spec.lambda_max;
    cols[i].values.assign(layout.total(), 0.0);
  }
  Vec scratch = engine.new_vec();

  // --- fused b-norm batch (mirrors detail::compute_b_norm per column) ----
  {
    std::vector<Vec> us;  // PC images, only for the preconditioned flavors
    us.reserve(k);
    std::vector<DotPair> pairs;
    pairs.reserve(k);
    const bool plain = opts.norm == NormType::kUnpreconditioned ||
                       !engine.has_preconditioner();
    for (std::size_t i = 0; i < k; ++i) {
      if (plain) {
        pairs.push_back(DotPair{&bs[i], &bs[i]});
      } else {
        us.emplace_back(engine.new_vec());
        engine.apply_pc(bs[i], us.back());
        const Vec& lhs =
            opts.norm == NormType::kPreconditioned ? us.back() : bs[i];
        pairs.push_back(DotPair{&lhs, &us.back()});
      }
    }
    std::vector<double> vals(k, 0.0);
    engine.dots(pairs, vals);
    for (std::size_t i = 0; i < k; ++i) {
      cols[i].stats.b_norm = std::sqrt(std::max(vals[i], 0.0));
      cols[i].tol = detail::threshold(cols[i].stats, opts);
    }
  }

  // --- initial residual and power basis per column ------------------------
  for (std::size_t i = 0; i < k; ++i) {
    Column& c = cols[i];
    {
      Vec ax = engine.new_vec();
      engine.apply_op(xs[i], ax);
      engine.waxpy(c.basis[0], -1.0, ax, bs[i]);
    }
    if (shifted)
      extend_chain(engine, sbasis, ChainView{&c.basis, nullptr}, 1, su,
                   scratch);
    else
      engine.apply_op_powers(c.basis[0],
                             std::span<Vec>(c.basis.data() + 1, su));
  }

  // Fused dot batch across the active columns: each contributes its full
  // DotLayout slice contiguously, so scattering the reduced payload back is
  // a fixed-stride copy.  Reused across iterations.
  std::vector<DotPair> fused;
  std::vector<double> fused_values;
  std::vector<Column*> batch_order;
  std::vector<DotPair> col_pairs;

  const auto reduce_active = [&](bool next_basis) {
    fused.clear();
    batch_order.clear();
    for (Column& c : cols) {
      if (!c.active) continue;
      if (shifted)
        build_gram_dot_pairs(next_basis ? c.basis_next : c.basis, c.ap_cur,
                             col_pairs);
      else
        build_dot_pairs(next_basis ? c.basis_next : c.basis, c.ap_cur,
                        col_pairs);
      fused.insert(fused.end(), col_pairs.begin(), col_pairs.end());
      batch_order.push_back(&c);
    }
    if (batch_order.empty()) return;
    fused_values.assign(fused.size(), 0.0);
    engine.dots(fused, fused_values);  // ONE allreduce for every column
    std::size_t offset = 0;
    for (Column* c : batch_order) {
      std::copy(fused_values.begin() + static_cast<std::ptrdiff_t>(offset),
                fused_values.begin() +
                    static_cast<std::ptrdiff_t>(offset + layout.total()),
                c->values.begin());
      offset += layout.total();
    }
  };

  reduce_active(/*next_basis=*/false);
  for (Column& c : cols) {
    c.rnorm = std::sqrt(std::max(layout.norm_sq(c.values, opts.norm), 0.0));
    if (!detail::checkpoint(c.stats, opts, 0, c.rnorm)) {
      c.active = false;  // non-finite initial batch: frozen, breakdown set
      continue;
    }
    if (c.rnorm < c.tol || c.iterations >= opts.max_iterations)
      c.active = false;
  }

  // --- lockstep outer loop ------------------------------------------------
  const auto any_active = [&] {
    return std::any_of(cols.begin(), cols.end(),
                       [](const Column& c) { return c.active; });
  };

  while (any_active()) {
    for (std::size_t i = 0; i < k; ++i) {
      Column& c = cols[i];
      if (!c.active) continue;
      const la::DenseMatrix cross = layout.cross(c.values);
      ScalarWork::Result sw =
          shifted ? c.scalar_work.step_gram(
                        sbasis,
                        std::span<const double>(c.values.data(),
                                                layout.tri_count()),
                        cross)
                  : c.scalar_work.step(
                        std::span<const double>(c.values.data(),
                                                layout.moment_count()),
                        cross);
      if (!sw.ok) {
        // No rollback in the batched driver: freeze this column with the
        // failure flagged and keep the others iterating.
        if (sw.gram_breakdown) ++c.stats.gram_breakdowns;
        c.stats.breakdown = true;
        c.stats.stagnated = true;
        c.active = false;
        continue;
      }

      // Direction block and AQ/AP recurrence (paper Alg. 4 lines 9-11).
      copy_block(engine, c.basis, c.p_cur, su);
      for (std::size_t j = 0; j < su; ++j) {
        if (shifted)
          combine_chain(engine, sbasis.seed(0, static_cast<int>(j)),
                        ChainView{&c.basis, nullptr}, c.ap_cur[j]);
        else
          engine.copy(c.basis[j + 1], c.ap_cur[j]);
      }
      if (c.outer > 0) {
        engine.block_maxpy(c.p_cur, c.p_prev, sw.b);
        engine.block_maxpy(c.ap_cur, c.ap_prev, sw.b);
      }

      // x and the recurred residual (Alg. 4 lines 12-13), then the basis
      // rebuild: s SPMVs, one halo epoch when an MPK is attached.
      engine.block_axpy(xs[i], c.p_cur, sw.alpha);
      engine.block_combine(c.basis_next[0], c.basis[0], c.ap_cur, sw.alpha);
      if (shifted)
        extend_chain(engine, sbasis, ChainView{&c.basis_next, nullptr}, 1, su,
                     scratch);
      else
        engine.apply_op_powers(c.basis_next[0],
                               std::span<Vec>(c.basis_next.data() + 1, su));
    }

    reduce_active(/*next_basis=*/true);

    for (Column& c : cols) {
      if (!c.active) continue;
      c.iterations += su;
      ++c.outer;
      c.rnorm = std::sqrt(std::max(layout.norm_sq(c.values, opts.norm), 0.0));
      if (!detail::checkpoint(c.stats, opts, c.iterations, c.rnorm)) {
        c.stats.stagnated = true;
        c.active = false;
        continue;
      }
      engine.mark_iteration(c.iterations - 1, c.rnorm);
      if (c.rnorm < c.tol || c.iterations >= opts.max_iterations) {
        c.active = false;
        continue;
      }
      std::swap(c.basis, c.basis_next);
      std::swap(c.p_prev, c.p_cur);
      std::swap(c.ap_prev, c.ap_cur);
    }
  }

  std::vector<SolveStats> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    Column& c = cols[i];
    c.stats.converged = c.rnorm < c.tol && !c.stats.breakdown;
    c.stats.iterations = c.iterations;
    c.stats.final_rnorm = c.rnorm;
    detail::finalize_stats(engine, bs[i], xs[i], opts, c.stats);
    out.push_back(std::move(c.stats));
  }
  return out;
}

}  // namespace pipescg::krylov
