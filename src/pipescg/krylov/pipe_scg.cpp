#include "pipescg/krylov/pipe_scg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/fault/recovery.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::krylov {
namespace {

enum class AttemptEnd { kDone, kFault };

}  // namespace

SolveStats PipeScgSolver::solve(Engine& engine, const Vec& b, Vec& x,
                                const SolverOptions& opts) const {
  using namespace sstep;
  SolveStats stats;
  stats.method = name();
  stats.b_norm = detail::compute_b_norm(engine, b, opts.norm);
  const double tol = detail::threshold(stats, opts);

  Vec scratch = engine.new_vec();
  Vec scratch2 = engine.new_vec();
  std::size_t iterations = 0;
  double rnorm = 0.0;

  // Basis shifts resolved once per solve; monomial passes through with no
  // kernels (see pipe_pscg.cpp).
  const BasisSpec basis_spec =
      resolve_basis(engine, opts.basis, /*preconditioned=*/false);
  stats.basis = to_string(basis_spec.type);
  stats.basis_lambda_min = basis_spec.lambda_min;
  stats.basis_lambda_max = basis_spec.lambda_max;

  GapMonitor gap_monitor(opts.gap_tol);
  const int gap_period = resolve_gap_period(opts);
  Vec gap_r = engine.new_vec();

  // Fault recovery (see pipe_pscg.cpp for the full rationale): verdicts
  // derive from the reduced dot batch, identical on all ranks, so rollback
  // stays in SPMD lockstep.
  fault::RecoveryManager recovery(opts.recovery, opts.max_recoveries);
  if (recovery.active())
    recovery.save(x.span(), 0, std::numeric_limits<double>::infinity());
  int cur_s = opts.s;
  TelemetrySnapshot telem;

  auto attempt = [&](int s_att) -> AttemptEnd {
    const std::size_t su = static_cast<std::size_t>(s_att);
    const ShiftedBasis sbasis(basis_spec, s_att);
    const bool shifted = !sbasis.monomial();
    gap_monitor.new_attempt();

    // Basis S[j] = p_j(A) r, j = 0..s, extension E = degrees s+1..2s
    // (monomial: plain powers A^j r).
    VecBlock basis = engine.new_block(su + 1),
             basis_next = engine.new_block(su + 1);
    VecBlock ext = engine.new_block(su), ext_next = engine.new_block(su);
    VecBlock p_prev = engine.new_block(su), p_cur = engine.new_block(su);
    // Towers t[j] = A^{j+1} P_cur, j = 0..s (t[0] = A P_cur).
    std::vector<VecBlock> t_prev, t_cur;
    for (std::size_t j = 0; j <= su; ++j) {
      t_prev.push_back(engine.new_block(su));
      t_cur.push_back(engine.new_block(su));
    }

    {
      Vec ax = engine.new_vec();
      engine.apply_op(x, ax);
      engine.waxpy(basis[0], -1.0, ax, b);  // r_0 = b - A x_0
    }
    if (shifted)
      extend_chain(engine, sbasis, ChainView{&basis, &ext}, 1, su, scratch);
    else
      engine.apply_op_powers(basis[0], std::span<Vec>(basis.data() + 1, su));

    const DotLayout layout{s_att, /*preconditioned=*/false, shifted};
    std::vector<DotPair> pairs;
    // One spare slot for the piggybacked gap-check dot.
    std::vector<double> values(layout.total() + 1);
    const std::span<const double> active(values.data(), layout.total());
    if (shifted)
      build_gram_dot_pairs(basis, t_cur[0], pairs);  // t_cur[0] zero: C = 0
    else
      build_dot_pairs(basis, t_cur[0], pairs);
    DotHandle handle = engine.dot_post(pairs);

    // Overlapped: extend the basis to degree 2s (paper Alg. 5 line 10).
    if (shifted)
      extend_chain(engine, sbasis, ChainView{&basis, &ext}, su + 1, su,
                   scratch);
    else
      engine.apply_op_powers(basis[su], std::span<Vec>(ext.data(), su));

    const int replacement_period = resolve_replacement_period(opts, s_att);

    ScalarWork scalar_work(s_att);
    detail::StallDetector stall(opts.stall_improvement, opts.stall_window);
    std::size_t outer = 0;
    detail::DivergenceDetector diverge(0.0);
    bool force_replace = false;
    bool gap_pending = false;

    for (;;) {
      engine.dot_wait(handle, values);
      // Fault gate: corrupted kernel output (SDC) or overflow surfaces in
      // the reduced batch as NaN/Inf; roll back instead of consuming it.
      // Only the active prefix is gated (the gap slot may be stale).
      if (recovery.active() && !batch_finite(active)) return AttemptEnd::kFault;
      rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
      if (gap_pending) {
        gap_pending = false;
        const double true_norm =
            std::sqrt(std::max(values[layout.total()], 0.0));
        if (std::isfinite(true_norm)) {
          const GapMonitor::Action act =
              gap_monitor.observe(rnorm, true_norm, stats);
          telem.note_gap(true_norm, gap_monitor.last_gap());
          if (act == GapMonitor::Action::kReplace) {
            force_replace = true;
          } else if (act == GapMonitor::Action::kEscalate) {
            if (recovery.active()) {
              recovery.escalate_degrade();
              return AttemptEnd::kFault;
            }
            stats.stagnated = true;
            break;
          }
        } else if (recovery.active()) {
          return AttemptEnd::kFault;
        }
      }
      telem.checkpoint(iterations, rnorm, opts, s_att, stats.recoveries);
      if (!detail::checkpoint(stats, opts, iterations, rnorm)) {
        if (recovery.active()) {
          stats.breakdown = false;  // rolling back, not stopping
          return AttemptEnd::kFault;
        }
        stats.stagnated = true;
        break;
      }
      if (iterations > 0) engine.mark_iteration(iterations - 1, rnorm);
      if (outer == 0) diverge = detail::DivergenceDetector(rnorm);

      if (rnorm < tol) {
        // Verified acceptance (see pipe_pscg.cpp): only the true residual
        // can declare convergence.  All norm flavors coincide here.
        const double true_norm = true_flavored_norm(
            engine, b, x, NormType::kUnpreconditioned, scratch, scratch2);
        rnorm = true_norm;
        stats.history.back().second = true_norm;
        if (true_norm < tol) {
          stats.converged = true;
          break;
        }
        force_replace = true;
      }
      if (iterations >= opts.max_iterations) break;
      if (diverge.update(rnorm)) {
        if (recovery.active()) return AttemptEnd::kFault;
        stats.stagnated = true;
        break;
      }
      if (recovery.should_save(rnorm))
        recovery.save(x.span(), iterations, rnorm);
      // Stagnation detection evaluates only *honest* residual checkpoints:
      // with replacement enabled those are the iterations right after a
      // truth anchoring (the pure recurred residual can keep "improving"
      // while the true residual stalls).
      const bool honest_checkpoint =
          replacement_period == 0 || outer == 0 ||
          ((outer - 1) % static_cast<std::size_t>(
                             std::max(replacement_period, 1))) == 0;
      if (opts.detect_stagnation && honest_checkpoint && stall.update(rnorm)) {
        stats.stagnated = true;
        break;
      }

      const la::DenseMatrix cross = layout.cross(values);
      ScalarWork::Result sw =
          shifted ? scalar_work.step_gram(
                        sbasis,
                        std::span<const double>(values.data(),
                                                layout.tri_count()),
                        cross)
                  : scalar_work.step(
                        std::span<const double>(values.data(),
                                                layout.moment_count()),
                        cross);
      if (!sw.ok) {
        if (sw.gram_breakdown) ++stats.gram_breakdowns;
        if (recovery.active()) return AttemptEnd::kFault;
        stats.breakdown = true;
        stats.stagnated = true;
        break;
      }
      telem.capture(sw);
      const bool first = outer == 0;

      // P_cur = S[0..s-1] + P_prev B  (paper Alg. 5 line 17).
      copy_block(engine, basis, p_cur, su);
      if (!first) engine.block_maxpy(p_cur, p_prev, sw.b);

      // Towers t_cur[j] = seed + t_prev[j] B (paper Alg. 5 lines 14-20).
      // Monomial seed column c of tower j is the degree-(j+1+c) basis
      // vector; shifted bases seed with the p_j * x * p_c expansion.
      for (std::size_t j = 0; j <= su; ++j) {
        for (std::size_t c = 0; c < su; ++c) {
          if (shifted) {
            combine_chain(engine, sbasis.seed(static_cast<int>(j),
                                              static_cast<int>(c)),
                          ChainView{&basis, &ext}, t_cur[j][c]);
          } else {
            const std::size_t idx = j + 1 + c;
            engine.copy(idx <= su ? basis[idx] : ext[idx - su - 1],
                        t_cur[j][c]);
          }
        }
        if (!first) engine.block_maxpy(t_cur[j], t_prev[j], sw.b);
      }

      // x update then basis recurrence (Alg. 5 lines 21-25); replacement
      // iterations rebuild the powers explicitly to reset recurrence drift.
      engine.block_axpy(x, p_cur, sw.alpha);
      const bool replace =
          force_replace ||
          (replacement_period > 0 && outer > 0 &&
           (outer % static_cast<std::size_t>(replacement_period)) == 0);
      force_replace = false;
      if (replace) {
        // Residual replacement: anchor to the true residual b - A x, then
        // rebuild the powers explicitly (resets recurrence drift and keeps
        // the reported residual honest).
        ++stats.replacements;
        engine.apply_op(x, scratch);
        engine.waxpy(basis_next[0], -1.0, scratch, b);
        if (shifted)
          extend_chain(engine, sbasis, ChainView{&basis_next, &ext_next}, 1,
                       su, scratch);
        else
          engine.apply_op_powers(basis_next[0],
                                 std::span<Vec>(basis_next.data() + 1, su));
      } else {
        for (std::size_t j = 0; j <= su; ++j)
          engine.block_combine(basis_next[j], basis[j], t_cur[j], sw.alpha);
      }

      // Gap monitor: true residual of the just-updated iterate, its norm
      // dot riding the batch below (all norm flavors coincide here).
      // Skipped on replacement iterations (vacuous comparison; see
      // pipe_pscg.cpp).
      const bool gap_due =
          gap_monitor.enabled() && !replace &&
          ((outer + 1) % static_cast<std::size_t>(gap_period)) == 0;
      if (gap_due) {
        engine.apply_op(x, scratch);
        engine.waxpy(gap_r, -1.0, scratch, b);
      }

      // Post dots for the next iteration (Alg. 5 lines 26-27)...
      if (shifted)
        build_gram_dot_pairs(basis_next, t_cur[0], pairs);
      else
        build_dot_pairs(basis_next, t_cur[0], pairs);
      if (gap_due) {
        pairs.push_back(DotPair{&gap_r, &gap_r});
        gap_pending = true;
      }
      handle = engine.dot_post(pairs);

      // ...overlapped with the s new SPMVs (Alg. 5 line 28), one halo
      // exchange for the whole extension when the engine has an MPK.
      if (shifted)
        extend_chain(engine, sbasis, ChainView{&basis_next, &ext_next},
                     su + 1, su, scratch);
      else
        engine.apply_op_powers(basis_next[su],
                               std::span<Vec>(ext_next.data(), su));

      std::swap(basis, basis_next);
      std::swap(ext, ext_next);
      std::swap(p_prev, p_cur);
      std::swap(t_prev, t_cur);
      iterations += su;
      ++outer;
    }
    return AttemptEnd::kDone;
  };

  for (;;) {
    if (attempt(cur_s) == AttemptEnd::kDone) break;
    if (!recovery.admit_failure()) {
      stats.breakdown = true;
      stats.stagnated = true;
      break;
    }
    iterations = recovery.restore(x.span());
    rnorm = recovery.checkpoint_rnorm();
    ++stats.recoveries;
    if (obs::Profiler* prof = obs::Profiler::current())
      ++prof->counters().recoveries;
    if (recovery.should_degrade() && cur_s > 1) {
      cur_s = std::max(1, cur_s - 1);
      recovery.acknowledge_degrade();
    }
  }

  // A solve that needed rollbacks and still failed to converge is a
  // stagnation (see pipe_pscg.cpp).
  if (!stats.converged && stats.recoveries > 0) stats.stagnated = true;

  stats.final_s = cur_s;
  stats.iterations = iterations;
  stats.final_rnorm = rnorm;
  detail::finalize_stats(engine, b, x, opts, stats);
  return stats;
}

}  // namespace pipescg::krylov
