#include "pipescg/krylov/pipe_scg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/fault/recovery.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::krylov {
namespace {

enum class AttemptEnd { kDone, kFault };

}  // namespace

SolveStats PipeScgSolver::solve(Engine& engine, const Vec& b, Vec& x,
                                const SolverOptions& opts) const {
  using namespace sstep;
  SolveStats stats;
  stats.method = name();
  stats.b_norm = detail::compute_b_norm(engine, b, opts.norm);
  const double tol = detail::threshold(stats, opts);

  Vec scratch = engine.new_vec();
  Vec scratch2 = engine.new_vec();
  std::size_t iterations = 0;
  double rnorm = 0.0;

  // Fault recovery (see pipe_pscg.cpp for the full rationale): verdicts
  // derive from the reduced dot batch, identical on all ranks, so rollback
  // stays in SPMD lockstep.
  fault::RecoveryManager recovery(opts.recovery, opts.max_recoveries);
  if (recovery.active())
    recovery.save(x.span(), 0, std::numeric_limits<double>::infinity());
  int cur_s = opts.s;
  TelemetrySnapshot telem;

  auto attempt = [&](int s_att) -> AttemptEnd {
    const std::size_t su = static_cast<std::size_t>(s_att);

    // Monomial powers S[j] = A^j r, j = 0..s, extended E = A^{s+1..2s} r.
    VecBlock basis = engine.new_block(su + 1),
             basis_next = engine.new_block(su + 1);
    VecBlock ext = engine.new_block(su), ext_next = engine.new_block(su);
    VecBlock p_prev = engine.new_block(su), p_cur = engine.new_block(su);
    // Towers t[j] = A^{j+1} P_cur, j = 0..s (t[0] = A P_cur).
    std::vector<VecBlock> t_prev, t_cur;
    for (std::size_t j = 0; j <= su; ++j) {
      t_prev.push_back(engine.new_block(su));
      t_cur.push_back(engine.new_block(su));
    }

    {
      Vec ax = engine.new_vec();
      engine.apply_op(x, ax);
      engine.waxpy(basis[0], -1.0, ax, b);  // r_0 = b - A x_0
    }
    engine.apply_op_powers(basis[0], std::span<Vec>(basis.data() + 1, su));

    const DotLayout layout{s_att, /*preconditioned=*/false};
    std::vector<DotPair> pairs;
    std::vector<double> values(layout.total());
    build_dot_pairs(basis, t_cur[0], pairs);  // t_cur[0] zero: C = 0
    DotHandle handle = engine.dot_post(pairs);

    // Overlapped: extend powers to A^{2s} r (paper Alg. 5 line 10).
    engine.apply_op_powers(basis[su], std::span<Vec>(ext.data(), su));

    const int replacement_period = resolve_replacement_period(opts, s_att);

    ScalarWork scalar_work(s_att);
    detail::StallDetector stall(opts.stall_improvement, opts.stall_window);
    std::size_t outer = 0;
    detail::DivergenceDetector diverge(0.0);
    bool force_replace = false;

    for (;;) {
      engine.dot_wait(handle, values);
      // Fault gate: corrupted kernel output (SDC) or overflow surfaces in
      // the reduced batch as NaN/Inf; roll back instead of consuming it.
      if (recovery.active() && !batch_finite(values)) return AttemptEnd::kFault;
      rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
      telem.checkpoint(iterations, rnorm, opts, s_att, stats.recoveries);
      if (!detail::checkpoint(stats, opts, iterations, rnorm)) {
        if (recovery.active()) {
          stats.breakdown = false;  // rolling back, not stopping
          return AttemptEnd::kFault;
        }
        stats.stagnated = true;
        break;
      }
      if (iterations > 0) engine.mark_iteration(iterations - 1, rnorm);
      if (outer == 0) diverge = detail::DivergenceDetector(rnorm);

      if (rnorm < tol) {
        // Verified acceptance (see pipe_pscg.cpp): only the true residual
        // can declare convergence.  All norm flavors coincide here.
        const double true_norm = true_flavored_norm(
            engine, b, x, NormType::kUnpreconditioned, scratch, scratch2);
        rnorm = true_norm;
        stats.history.back().second = true_norm;
        if (true_norm < tol) {
          stats.converged = true;
          break;
        }
        force_replace = true;
      }
      if (iterations >= opts.max_iterations) break;
      if (diverge.update(rnorm)) {
        if (recovery.active()) return AttemptEnd::kFault;
        stats.stagnated = true;
        break;
      }
      if (recovery.should_save(rnorm))
        recovery.save(x.span(), iterations, rnorm);
      // Stagnation detection evaluates only *honest* residual checkpoints:
      // with replacement enabled those are the iterations right after a
      // truth anchoring (the pure recurred residual can keep "improving"
      // while the true residual stalls).
      const bool honest_checkpoint =
          replacement_period == 0 || outer == 0 ||
          ((outer - 1) % static_cast<std::size_t>(
                             std::max(replacement_period, 1))) == 0;
      if (opts.detect_stagnation && honest_checkpoint && stall.update(rnorm)) {
        stats.stagnated = true;
        break;
      }

      const la::DenseMatrix cross = layout.cross(values);
      ScalarWork::Result sw = scalar_work.step(
          std::span<const double>(values.data(), layout.moment_count()),
          cross);
      if (!sw.ok) {
        if (recovery.active()) return AttemptEnd::kFault;
        stats.breakdown = true;
        stats.stagnated = true;
        break;
      }
      telem.capture(sw);
      const bool first = outer == 0;

      // P_cur = S[0..s-1] + P_prev B  (paper Alg. 5 line 17).
      copy_block(engine, basis, p_cur, su);
      if (!first) engine.block_maxpy(p_cur, p_prev, sw.b);

      // Towers t_cur[j] = [A^{j+1} r .. A^{j+s} r] + t_prev[j] B
      // (paper Alg. 5 lines 14-20).
      for (std::size_t j = 0; j <= su; ++j) {
        for (std::size_t c = 0; c < su; ++c) {
          const std::size_t idx = j + 1 + c;
          engine.copy(idx <= su ? basis[idx] : ext[idx - su - 1],
                      t_cur[j][c]);
        }
        if (!first) engine.block_maxpy(t_cur[j], t_prev[j], sw.b);
      }

      // x update then basis recurrence (Alg. 5 lines 21-25); replacement
      // iterations rebuild the powers explicitly to reset recurrence drift.
      engine.block_axpy(x, p_cur, sw.alpha);
      const bool replace =
          force_replace ||
          (replacement_period > 0 && outer > 0 &&
           (outer % static_cast<std::size_t>(replacement_period)) == 0);
      force_replace = false;
      if (replace) {
        // Residual replacement: anchor to the true residual b - A x, then
        // rebuild the powers explicitly (resets recurrence drift and keeps
        // the reported residual honest).
        engine.apply_op(x, scratch);
        engine.waxpy(basis_next[0], -1.0, scratch, b);
        engine.apply_op_powers(basis_next[0],
                               std::span<Vec>(basis_next.data() + 1, su));
      } else {
        for (std::size_t j = 0; j <= su; ++j)
          engine.block_combine(basis_next[j], basis[j], t_cur[j], sw.alpha);
      }

      // Post dots for the next iteration (Alg. 5 lines 26-27)...
      build_dot_pairs(basis_next, t_cur[0], pairs);
      handle = engine.dot_post(pairs);

      // ...overlapped with the s new SPMVs (Alg. 5 line 28), one halo
      // exchange for the whole extension when the engine has an MPK.
      engine.apply_op_powers(basis_next[su],
                             std::span<Vec>(ext_next.data(), su));

      std::swap(basis, basis_next);
      std::swap(ext, ext_next);
      std::swap(p_prev, p_cur);
      std::swap(t_prev, t_cur);
      iterations += su;
      ++outer;
    }
    return AttemptEnd::kDone;
  };

  for (;;) {
    if (attempt(cur_s) == AttemptEnd::kDone) break;
    if (!recovery.admit_failure()) {
      stats.breakdown = true;
      stats.stagnated = true;
      break;
    }
    iterations = recovery.restore(x.span());
    rnorm = recovery.checkpoint_rnorm();
    ++stats.recoveries;
    if (obs::Profiler* prof = obs::Profiler::current())
      ++prof->counters().recoveries;
    if (recovery.should_degrade() && cur_s > 1) {
      cur_s = std::max(1, cur_s - 1);
      recovery.acknowledge_degrade();
    }
  }

  // A solve that needed rollbacks and still failed to converge is a
  // stagnation (see pipe_pscg.cpp).
  if (!stats.converged && stats.recoveries > 0) stats.stagnated = true;

  stats.final_s = cur_s;
  stats.iterations = iterations;
  stats.final_rnorm = rnorm;
  detail::finalize_stats(engine, b, x, opts, stats);
  return stats;
}

}  // namespace pipescg::krylov
