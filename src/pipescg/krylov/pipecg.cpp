#include "pipescg/krylov/pipecg.hpp"

#include <cmath>
#include <optional>

#include "pipescg/base/error.hpp"

namespace pipescg::krylov {

SolveStats PipeCgSolver::solve(Engine& engine, const Vec& b, Vec& x,
                               const SolverOptions& opts) const {
  SolveStats stats;
  stats.method = name();
  stats.b_norm = detail::compute_b_norm(engine, b, opts.norm);

  Vec r = engine.new_vec();  // residual
  Vec u = engine.new_vec();  // M^{-1} r
  Vec w = engine.new_vec();  // A u
  Vec m = engine.new_vec();  // M^{-1} w
  Vec n = engine.new_vec();  // A m
  Vec p = engine.new_vec();  // direction
  Vec s = engine.new_vec();  // A p
  Vec q = engine.new_vec();  // M^{-1} s
  Vec z = engine.new_vec();  // A q
  Vec ax = engine.new_vec();

  engine.apply_op(x, ax);
  engine.waxpy(r, -1.0, ax, b);
  engine.apply_pc(r, u);
  engine.apply_op(u, w);

  const double tol_ref = detail::threshold(stats, opts);

  double gamma_prev = 0.0, alpha_prev = 0.0;
  double rnorm = 0.0;
  std::size_t iter = 0;
  // The pipelined recurrences have no self-correction: after an upset (SDC,
  // overflow) the residual can sit at a huge-but-finite plateau that the
  // NaN guard never sees.  Detect the runaway and stop with a diagnostic
  // instead of silently burning max_iterations.
  std::optional<detail::DivergenceDetector> diverge;
  bool done = false;
  while (!done) {
    // Post (gamma, delta, norm^2) and overlap with m = M^{-1} w, n = A m.
    const Vec& nx = opts.norm == NormType::kPreconditioned ? u : r;
    const Vec& ny = opts.norm == NormType::kUnpreconditioned ? r : u;
    const DotPair pairs[3] = {{&r, &u}, {&w, &u}, {&nx, &ny}};
    DotHandle h = engine.dot_post(std::span<const DotPair>(pairs, 3));

    engine.apply_pc(w, m);
    engine.apply_op(m, n);

    double vals[3];
    engine.dot_wait(h, std::span<double>(vals, 3));
    const double gamma = vals[0];
    const double delta = vals[1];
    rnorm = std::sqrt(std::max(vals[2], 0.0));
    if (!detail::checkpoint(stats, opts, iter, rnorm)) break;
    if (iter > 0) engine.mark_iteration(iter - 1, rnorm);
    if (!diverge) diverge.emplace(rnorm);
    if (diverge->update(rnorm)) {
      stats.stagnated = true;
      break;
    }

    if (rnorm < tol_ref) {
      stats.converged = true;
      break;
    }
    if (iter >= opts.max_iterations) break;

    double beta, alpha;
    if (iter == 0) {
      beta = 0.0;
      alpha = gamma / delta;
    } else {
      beta = gamma / gamma_prev;
      const double denom = delta - beta * gamma / alpha_prev;
      if (denom == 0.0 || !std::isfinite(denom)) {
        stats.breakdown = true;
        break;
      }
      alpha = gamma / denom;
    }
    if (!std::isfinite(alpha)) {
      stats.breakdown = true;
      break;
    }

    engine.aypx(z, beta, n);  // z = n + beta z
    engine.aypx(q, beta, m);  // q = m + beta q
    engine.aypx(p, beta, u);  // p = u + beta p
    engine.aypx(s, beta, w);  // s = w + beta s
    engine.axpy(x, alpha, p);
    engine.axpy(r, -alpha, s);
    engine.axpy(u, -alpha, q);
    engine.axpy(w, -alpha, z);

    gamma_prev = gamma;
    alpha_prev = alpha;
    ++iter;
  }

  stats.iterations = iter;
  stats.final_rnorm = rnorm;
  detail::finalize_stats(engine, b, x, opts, stats);
  return stats;
}

}  // namespace pipescg::krylov
