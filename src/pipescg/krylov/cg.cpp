#include "pipescg/krylov/cg.hpp"

#include <cmath>
#include <vector>

#include "pipescg/base/error.hpp"
#include "pipescg/la/tridiagonal.hpp"

namespace pipescg::krylov {

SolveStats CgSolver::solve(Engine& engine, const Vec& b, Vec& x,
                           const SolverOptions& opts) const {
  SolveStats stats;
  stats.method = name();
  stats.b_norm = detail::compute_b_norm(engine, b, opts.norm);

  Vec r = engine.new_vec();
  Vec u = engine.new_vec();
  Vec p = engine.new_vec();
  Vec s = engine.new_vec();
  Vec ax = engine.new_vec();

  // r0 = b - A x0; u0 = M^{-1} r0.
  engine.apply_op(x, ax);
  engine.waxpy(r, -1.0, ax, b);
  engine.apply_pc(r, u);

  auto residual_norms = [&](double& gamma, double& norm_sq) {
    // gamma = (u, r); norm_sq in the requested flavor.
    if (opts.fuse_cg_dots) {
      const Vec& nx = opts.norm == NormType::kPreconditioned ? u : r;
      const Vec& ny = opts.norm == NormType::kUnpreconditioned ? r : u;
      // Pairs: (u, r) and flavor norm; natural flavor reuses gamma.
      const DotPair pairs[2] = {{&u, &r}, {&nx, &ny}};
      double vals[2];
      engine.dots(std::span<const DotPair>(pairs, 2),
                  std::span<double>(vals, 2));
      gamma = vals[0];
      norm_sq = vals[1];
    } else {
      gamma = engine.dot(u, r);
      switch (opts.norm) {
        case NormType::kPreconditioned:
          norm_sq = engine.dot(u, u);
          break;
        case NormType::kUnpreconditioned:
          norm_sq = engine.dot(r, r);
          break;
        case NormType::kNatural:
          // One more allreduce anyway, to keep the Table-I count of 3.
          norm_sq = engine.dot(u, r);
          break;
      }
    }
  };

  double gamma = 0.0, norm_sq = 0.0;
  residual_norms(gamma, norm_sq);
  double rnorm = std::sqrt(std::max(norm_sq, 0.0));
  const double tol = detail::threshold(stats, opts);
  detail::checkpoint(stats, opts, 0, rnorm);

  double gamma_prev = 0.0;
  std::size_t iter = 0;
  // Lanczos coefficients for the spectrum estimate (CG's alphas/betas build
  // the Lanczos tridiagonal implicitly).
  std::vector<double> alphas, betas;
  while (rnorm >= tol && iter < opts.max_iterations) {
    const double beta = iter == 0 ? 0.0 : gamma / gamma_prev;
    // p = u + beta p
    engine.aypx(p, beta, u);
    // s = A p
    engine.apply_op(p, s);
    const double delta = engine.dot(s, p);
    if (delta <= 0.0 || !std::isfinite(delta)) {
      stats.breakdown = true;
      break;
    }
    const double alpha = gamma / delta;
    if (opts.estimate_spectrum) {
      alphas.push_back(alpha);
      betas.push_back(beta);
    }
    engine.axpy(x, alpha, p);
    engine.axpy(r, -alpha, s);
    engine.apply_pc(r, u);

    gamma_prev = gamma;
    residual_norms(gamma, norm_sq);
    rnorm = std::sqrt(std::max(norm_sq, 0.0));
    ++iter;
    if (!detail::checkpoint(stats, opts, iter, rnorm)) break;
    engine.mark_iteration(iter - 1, rnorm);
  }

  stats.iterations = iter;
  stats.final_rnorm = rnorm;
  stats.converged = rnorm < tol;
  if (opts.estimate_spectrum && alphas.size() >= 2) {
    // T(i,i) = 1/alpha_i + beta_i/alpha_{i-1};
    // T(i,i+1) = sqrt(beta_{i+1}) / alpha_i.
    const std::size_t m = alphas.size();
    std::vector<double> diag(m), off(m - 1);
    for (std::size_t i = 0; i < m; ++i) {
      diag[i] = 1.0 / alphas[i];
      if (i > 0) diag[i] += betas[i] / alphas[i - 1];
      if (i + 1 < m) off[i] = std::sqrt(betas[i + 1]) / alphas[i];
    }
    const auto [lmin, lmax] = la::tridiagonal_extreme_eigenvalues(diag, off);
    stats.lambda_min_est = lmin;
    stats.lambda_max_est = lmax;
    if (lmin > 0.0) stats.condition_est = lmax / lmin;
  }
  detail::finalize_stats(engine, b, x, opts, stats);
  return stats;
}

}  // namespace pipescg::krylov
