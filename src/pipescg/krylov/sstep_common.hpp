// Shared machinery for the s-step CG family (sCG, PsCG, sCG-sSPMV,
// PIPE-sCG, PIPE-PsCG, PIPECG-OATI, PIPECG3).
//
// Formulation (block-Gram; see DESIGN.md section 6): per outer iteration i
// the method builds a direction block P_i = S_i + P_{i-1} B_i from the
// monomial basis S_i = [r_i, A r_i, ..., A^{s-1} r_i] (preconditioned:
// V_i = [u_i, (M^{-1}A) u_i, ...]), where
//
//     B_i  solves  W_{i-1} B_i = -C_i,   C_i = (A P_{i-1})^T S_i
//     a_i  solves  W_i a_i = g_i,        g_i = (m_0, ..., m_{s-1})^T
//     W_i  = M_S + C_i^T B_i,            (M_S)_{jk} = m_{j+k+1}
//
// with moments m_j = (r_i, A^j r_i) (preconditioned: r^T (M^{-1}A)^j u).
// All scalars needed by an outer iteration are 2s+1 moments plus the s x s
// cross block C -- one allreduce, matching Alg. 2/3's single `vm` reduction.
// (The original Chronopoulos-Gear scalar recurrences eliminate C
// analytically; computing it as s^2 extra *local* dots in the same allreduce
// keeps the communication structure identical and is numerically more
// robust.  The identity B^T W_{i-1} B = -B^T C collapses the W update to the
// single cross term above.)
//
// The pipelined variants additionally carry the power "towers"
// T[j] = A^{j+1} P_i (preconditioned: (M^{-1}A)^{j+1} P_i and A-side twins),
// updated by recurrence, so the next basis S_{i+1}[j] = S_i[j] - T[j] a_i
// exists *before* any new SPMV -- the dot products post immediately and the
// s SPMVs (+ s PCs) that extend the power basis to A^{2s} r_{i+1} overlap
// the allreduce (paper Alg. 5/6/7).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pipescg/krylov/solver.hpp"
#include "pipescg/la/dense_matrix.hpp"
#include "pipescg/la/lu.hpp"

namespace pipescg::krylov::sstep {

/// The "Scalar Work" of Alg. 2 line 7: two s x s solves per outer iteration.
class ScalarWork {
 public:
  explicit ScalarWork(int s);

  struct Result {
    la::DenseMatrix b;          // s x s conjugation coefficients (beta's)
    std::vector<double> alpha;  // s step sizes
    bool ok = false;            // false on singular/non-finite scalar work
  };

  /// moments m_0..m_2s (size 2s+1), cross C (s x s, C(k,j) = (AP_prev[k],
  /// S_new[j])).  Maintains W_{i-1} across calls.
  Result step(std::span<const double> moments, const la::DenseMatrix& cross);

  bool first() const { return first_; }

 private:
  int s_;
  bool first_ = true;
  la::DenseMatrix w_prev_;
};

/// Layout of the single per-iteration dot batch.
struct DotLayout {
  int s;
  bool preconditioned;  // adds (r,r) and (u,u) norm dots

  std::size_t moment_count() const { return static_cast<std::size_t>(2 * s + 1); }
  std::size_t cross_offset() const { return moment_count(); }
  std::size_t cross_count() const { return static_cast<std::size_t>(s) * s; }
  std::size_t norm_offset() const { return cross_offset() + cross_count(); }
  std::size_t total() const {
    return norm_offset() + (preconditioned ? 2 : 0);
  }

  /// Residual norm^2 in the requested flavor from the reduced values.
  double norm_sq(std::span<const double> values, NormType norm) const;

  /// Extract the cross block C from the reduced values.
  la::DenseMatrix cross(std::span<const double> values) const;
};

/// Build the batch for the unpreconditioned methods: basis S has s+1
/// columns [r, A r, ..., A^s r]; ap has s columns A P_cur.
void build_dot_pairs(const VecBlock& s_basis, const VecBlock& ap,
                     std::vector<DotPair>& out);

/// Preconditioned: wb = r-side powers [(A M^{-1})^j r], v = u-side powers
/// [(M^{-1}A)^j u] (s+1 columns each); apr = A P_cur (s columns, r-side).
void build_dot_pairs(const VecBlock& wb, const VecBlock& v,
                     const VecBlock& apr, std::vector<DotPair>& out);

/// NaN/Inf guard on a reduced dot batch (the 2s+1 moments plus the Gram
/// cross block).  The reduced values are identical on all ranks, so every
/// rank reaches the same verdict without extra communication -- this is
/// what keeps the SPMD control flow consistent when the recovery layer
/// decides to roll back.
bool batch_finite(std::span<const double> values);

/// Resolve SolverOptions::replacement_period for depth s: explicit values
/// pass through; auto (0) uses period 16 at s <= 3 (cheap truth anchoring),
/// 4 at s = 4 and 1 at s >= 5 (measured stability limits of the
/// monomial-basis tower recurrences; see DESIGN.md).
int resolve_replacement_period(const SolverOptions& opts, int s);

/// True residual norm in the requested flavor: r = b - A x (one SPMV),
/// u = M^{-1} r when needed (one PC), one blocking dot.  Used for verified
/// acceptance: a pipelined method's recurred residual may cross the
/// threshold spuriously; convergence is only declared when the true
/// residual confirms it.
double true_flavored_norm(Engine& engine, const Vec& b, const Vec& x,
                          NormType norm, Vec& scratch_r, Vec& scratch_u);

/// Copy the first s columns of `src` into `dst` (block "slice" helper).
void copy_block(Engine& engine, const VecBlock& src, VecBlock& dst,
                std::size_t count);

/// Per-iteration convergence telemetry staging for the s-step drivers.
/// capture() snapshots the most recent scalar work (alpha step sizes and
/// ||B||_F); checkpoint() emits one obs telemetry record with that snapshot
/// -- drivers call it next to every detail::checkpoint so the JSONL stream
/// has exactly one record per residual-history entry.  Both are no-ops
/// (one thread-local check) when no telemetry sink is installed.
struct TelemetrySnapshot {
  std::vector<double> alpha;
  double beta_fro = 0.0;

  void capture(const ScalarWork::Result& sw);
  void checkpoint(std::uint64_t iteration, double rnorm,
                  const SolverOptions& opts, int cur_s,
                  std::size_t recoveries) const;
};

/// The preconditioned pipelined core (paper Alg. 6 + 7), parameterized so
/// PIPE-PsCG (s = opts.s), PIPECG-OATI (s = 2) and PIPECG3 (s = 2 + extra
/// charged FLOPs) share one implementation.
SolveStats pipe_pscg_core(Engine& engine, const Vec& b, Vec& x,
                          const SolverOptions& opts, int s,
                          const std::string& method_name,
                          double extra_flops_per_outer = 0.0);

}  // namespace pipescg::krylov::sstep
