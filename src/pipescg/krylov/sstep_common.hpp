// Shared machinery for the s-step CG family (sCG, PsCG, sCG-sSPMV,
// PIPE-sCG, PIPE-PsCG, PIPECG-OATI, PIPECG3).
//
// Formulation (block-Gram; see DESIGN.md section 6): per outer iteration i
// the method builds a direction block P_i = S_i + P_{i-1} B_i from the
// monomial basis S_i = [r_i, A r_i, ..., A^{s-1} r_i] (preconditioned:
// V_i = [u_i, (M^{-1}A) u_i, ...]), where
//
//     B_i  solves  W_{i-1} B_i = -C_i,   C_i = (A P_{i-1})^T S_i
//     a_i  solves  W_i a_i = g_i,        g_i = (m_0, ..., m_{s-1})^T
//     W_i  = M_S + C_i^T B_i,            (M_S)_{jk} = m_{j+k+1}
//
// with moments m_j = (r_i, A^j r_i) (preconditioned: r^T (M^{-1}A)^j u).
// All scalars needed by an outer iteration are 2s+1 moments plus the s x s
// cross block C -- one allreduce, matching Alg. 2/3's single `vm` reduction.
// (The original Chronopoulos-Gear scalar recurrences eliminate C
// analytically; computing it as s^2 extra *local* dots in the same allreduce
// keeps the communication structure identical and is numerically more
// robust.  The identity B^T W_{i-1} B = -B^T C collapses the W update to the
// single cross term above.)
//
// The pipelined variants additionally carry the power "towers"
// T[j] = A^{j+1} P_i (preconditioned: (M^{-1}A)^{j+1} P_i and A-side twins),
// updated by recurrence, so the next basis S_{i+1}[j] = S_i[j] - T[j] a_i
// exists *before* any new SPMV -- the dot products post immediately and the
// s SPMVs (+ s PCs) that extend the power basis to A^{2s} r_{i+1} overlap
// the allreduce (paper Alg. 5/6/7).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pipescg/krylov/basis.hpp"
#include "pipescg/krylov/solver.hpp"
#include "pipescg/la/dense_matrix.hpp"
#include "pipescg/la/lu.hpp"

namespace pipescg::krylov::sstep {

/// The "Scalar Work" of Alg. 2 line 7: two s x s solves per outer iteration.
class ScalarWork {
 public:
  explicit ScalarWork(int s);

  struct Result {
    la::DenseMatrix b;          // s x s conjugation coefficients (beta's)
    std::vector<double> alpha;  // s step sizes
    bool ok = false;            // false on singular/non-finite scalar work
    // The W system failed the SPD guard (la::CholeskyFactorization::
    // try_factor): the basis Gram matrix has numerically collapsed.  A
    // structured soft failure -- the caller rolls back / replaces instead of
    // iterating on the garbage an LU solve of a near-singular system would
    // produce.  Always false when `ok`.
    bool gram_breakdown = false;
  };

  /// Monomial basis: moments m_0..m_2s (size 2s+1), cross C (s x s,
  /// C(k,j) = (AP_prev[k], S_new[j])).  Maintains W_{i-1} across calls.
  Result step(std::span<const double> moments, const la::DenseMatrix& cross);

  /// Shifted basis: `tri` is the basis Gram upper triangle G(j,k) =
  /// (S[j], S[k]) for 0 <= j <= k <= s in DotLayout::gram_index order
  /// ((s+1)(s+2)/2 values); M_S and g are recovered through the three-term
  /// recurrence, N(j,k) = gamma_k G(j,k+1) + theta_k G(j,k) +
  /// sigma_k G(j,k-1) and g_j = G(0,j).  Degenerates to step() numbers for
  /// a monomial `basis`.
  Result step_gram(const ShiftedBasis& basis, std::span<const double> tri,
                   const la::DenseMatrix& cross);

  bool first() const { return first_; }

 private:
  Result solve_with(const la::DenseMatrix& m_s, std::span<const double> g,
                    const la::DenseMatrix& cross);

  int s_;
  bool first_ = true;
  la::DenseMatrix w_prev_;
};

/// Layout of the single per-iteration dot batch.
struct DotLayout {
  int s;
  bool preconditioned;  // adds (r,r) and (u,u) norm dots
  // Shifted (non-monomial) basis: the leading scalars are the basis Gram
  // upper triangle ((s+1)(s+2)/2 values) instead of the 2s+1 moments.
  // values[0] is G(0,0) = m_0 either way, so the norm flavors read the same
  // slots.  Still ONE allreduce per outer iteration -- only the payload
  // grows.
  bool gram = false;

  std::size_t moment_count() const { return static_cast<std::size_t>(2 * s + 1); }
  std::size_t tri_count() const {
    const std::size_t n = static_cast<std::size_t>(s) + 1;
    return n * (n + 1) / 2;
  }
  std::size_t scalar_count() const {
    return gram ? tri_count() : moment_count();
  }
  std::size_t cross_offset() const { return scalar_count(); }
  std::size_t cross_count() const { return static_cast<std::size_t>(s) * s; }
  std::size_t norm_offset() const { return cross_offset() + cross_count(); }
  std::size_t total() const {
    return norm_offset() + (preconditioned ? 2 : 0);
  }

  /// Position of G(j, k), j <= k <= s, in the leading triangle (row-major
  /// by j over the upper triangle).
  std::size_t gram_index(std::size_t j, std::size_t k) const {
    const std::size_t n = static_cast<std::size_t>(s) + 1;
    return j * n - j * (j - 1) / 2 + (k - j);
  }

  /// Residual norm^2 in the requested flavor from the reduced values.
  double norm_sq(std::span<const double> values, NormType norm) const;

  /// Extract the cross block C from the reduced values.
  la::DenseMatrix cross(std::span<const double> values) const;
};

/// Build the batch for the unpreconditioned methods: basis S has s+1
/// columns [r, A r, ..., A^s r]; ap has s columns A P_cur.
void build_dot_pairs(const VecBlock& s_basis, const VecBlock& ap,
                     std::vector<DotPair>& out);

/// Preconditioned: wb = r-side powers [(A M^{-1})^j r], v = u-side powers
/// [(M^{-1}A)^j u] (s+1 columns each); apr = A P_cur (s columns, r-side).
void build_dot_pairs(const VecBlock& wb, const VecBlock& v,
                     const VecBlock& apr, std::vector<DotPair>& out);

/// Shifted-basis batch (DotLayout::gram): Gram upper triangle
/// G(j,k) = (S[j], S[k]), j <= k, then the cross block -- same shape of
/// communication as the monomial batch, larger payload.
void build_gram_dot_pairs(const VecBlock& s_basis, const VecBlock& ap,
                          std::vector<DotPair>& out);

/// Preconditioned shifted-basis batch: G(j,k) = (wb[j], v[k]) = the
/// M-inner product of the u-side basis columns (wb[j] = M v[j]), j <= k;
/// cross and the two norm extras follow as in the monomial layout.
void build_gram_dot_pairs(const VecBlock& wb, const VecBlock& v,
                          const VecBlock& apr, std::vector<DotPair>& out);

/// NaN/Inf guard on a reduced dot batch (the 2s+1 moments plus the Gram
/// cross block).  The reduced values are identical on all ranks, so every
/// rank reaches the same verdict without extra communication -- this is
/// what keeps the SPMD control flow consistent when the recovery layer
/// decides to roll back.
bool batch_finite(std::span<const double> values);

/// Resolve SolverOptions::replacement_period for depth s: explicit values
/// pass through; auto (0) uses period 16 at s <= 3 (cheap truth anchoring),
/// 4 at s = 4 and 1 at s >= 5 (measured stability limits of the
/// monomial-basis tower recurrences; see DESIGN.md).
int resolve_replacement_period(const SolverOptions& opts, int s);

/// Resolve SolverOptions::gap_check_period: explicit values pass through,
/// auto (0) checks every 8 outer iterations.  Callers gate on
/// opts.gap_tol > 0 (the monitor master switch) separately.
int resolve_gap_period(const SolverOptions& opts);

/// Predicted-vs-true residual gap state machine (DESIGN.md section 13).
///
/// The s-step drivers feed it one (recurred, true) residual-norm pair per
/// gap check; it classifies the relative gap against the tolerance and
/// drives the van der Vorst escalation ladder:
///
///   gap <= tol                  -> kNone (healthy; failure streak resets)
///   gap  > tol, fresh           -> kReplace (force a residual replacement)
///   gap  > tol after a replace  -> failed replacement; kReplace again, or
///                                  kEscalate once TWO replacements in a row
///                                  failed to close the gap -- the caller
///                                  hands control to the RecoveryManager
///                                  degrade-s path.
///
/// The monitor outlives recovery attempts (it owns the failure history);
/// new_attempt() clears the in-flight state after a rollback so the fresh
/// attempt is not blamed for the old attempt's gap.
class GapMonitor {
 public:
  explicit GapMonitor(double tol) : tol_(tol) {}

  enum class Action { kNone, kReplace, kEscalate };

  bool enabled() const { return tol_ > 0.0; }

  /// Classify one gap check and record it into `stats` (gap_checks,
  /// last/max_residual_gap, failed_replacements).
  Action observe(double recurred_rnorm, double true_rnorm, SolveStats& stats);

  /// Relative gap of the most recent observe() (-1 before the first).
  double last_gap() const { return last_gap_; }

  void new_attempt() {
    awaiting_ = false;
    failures_ = 0;
  }

 private:
  double tol_;
  double last_gap_ = -1.0;
  bool awaiting_ = false;      // a gap-triggered replacement is in flight
  std::size_t failures_ = 0;   // consecutive replacements that didn't close it
};

/// True residual norm in the requested flavor: r = b - A x (one SPMV),
/// u = M^{-1} r when needed (one PC), one blocking dot.  Used for verified
/// acceptance: a pipelined method's recurred residual may cross the
/// threshold spuriously; convergence is only declared when the true
/// residual confirms it.
double true_flavored_norm(Engine& engine, const Vec& b, const Vec& x,
                          NormType norm, Vec& scratch_r, Vec& scratch_u);

/// Copy the first s columns of `src` into `dst` (block "slice" helper).
void copy_block(Engine& engine, const VecBlock& src, VecBlock& dst,
                std::size_t count);

/// Per-iteration convergence telemetry staging for the s-step drivers.
/// capture() snapshots the most recent scalar work (alpha step sizes and
/// ||B||_F); checkpoint() emits one obs telemetry record with that snapshot
/// -- drivers call it next to every detail::checkpoint so the JSONL stream
/// has exactly one record per residual-history entry.  Both are no-ops
/// (one thread-local check) when no telemetry sink is installed.
struct TelemetrySnapshot {
  std::vector<double> alpha;
  double beta_fro = 0.0;
  // Residual-gap monitor readings for the NEXT checkpoint only (set by
  // note_gap on the outer iteration where a gap check resolves; cleared
  // after the record is emitted so later records honestly report -1 = "no
  // check this iteration").
  double true_rnorm = -1.0;
  double residual_gap = -1.0;

  void capture(const ScalarWork::Result& sw);
  void note_gap(double true_norm, double gap) {
    true_rnorm = true_norm;
    residual_gap = gap;
  }
  void checkpoint(std::uint64_t iteration, double rnorm,
                  const SolverOptions& opts, int cur_s,
                  std::size_t recoveries);
};

/// The preconditioned pipelined core (paper Alg. 6 + 7), parameterized so
/// PIPE-PsCG (s = opts.s), PIPECG-OATI (s = 2) and PIPECG3 (s = 2 + extra
/// charged FLOPs) share one implementation.
SolveStats pipe_pscg_core(Engine& engine, const Vec& b, Vec& x,
                          const SolverOptions& opts, int s,
                          const std::string& method_name,
                          double extra_flops_per_outer = 0.0);

}  // namespace pipescg::krylov::sstep
