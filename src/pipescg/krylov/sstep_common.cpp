#include "pipescg/krylov/sstep_common.hpp"

#include <cmath>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/telemetry.hpp"

namespace pipescg::krylov::sstep {
namespace {

bool all_finite(const la::DenseMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m(i, j))) return false;
  return true;
}

bool all_finite(std::span<const double> v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

ScalarWork::ScalarWork(int s) : s_(s), w_prev_(0, 0) {
  PIPESCG_CHECK(s >= 1 && s <= 16, "s must be in [1, 16]");
}

ScalarWork::Result ScalarWork::step(std::span<const double> moments,
                                    const la::DenseMatrix& cross) {
  const std::size_t s = static_cast<std::size_t>(s_);
  PIPESCG_CHECK(moments.size() >= 2 * s + 1, "need 2s+1 moments");
  PIPESCG_CHECK(cross.rows() == s && cross.cols() == s, "cross must be s x s");

  Result result;
  result.b = la::DenseMatrix(s, s);
  result.alpha.assign(s, 0.0);
  if (!all_finite(moments) || !all_finite(cross)) return result;

  la::DenseMatrix m_s(s, s);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t k = 0; k < s; ++k) m_s(j, k) = moments[j + k + 1];

  la::DenseMatrix w(s, s);
  try {
    if (first_) {
      w = m_s;
    } else {
      // W_{i-1} B = -C
      la::DenseMatrix neg_c(s, s);
      for (std::size_t k = 0; k < s; ++k)
        for (std::size_t j = 0; j < s; ++j) neg_c(k, j) = -cross(k, j);
      la::LuFactorization lu_prev(w_prev_);
      result.b = lu_prev.solve(neg_c);
      // W = M_S + C^T B  (the B^T C + C^T B + B^T W B terms collapse since
      // W_{i-1} B = -C implies B^T W_{i-1} B = -B^T C).
      w = m_s;
      const la::DenseMatrix ct_b = cross.transposed() * result.b;
      w.add_scaled(ct_b, 1.0);
      w.symmetrize();
    }
    la::LuFactorization lu_w(w);
    std::vector<double> g(s);
    for (std::size_t j = 0; j < s; ++j) g[j] = moments[j];
    result.alpha = lu_w.solve(g);
  } catch (const Error&) {
    return result;  // singular scalar work => breakdown
  }
  if (!all_finite(result.b) ||
      !all_finite(std::span<const double>(result.alpha))) {
    return result;
  }
  w_prev_ = w;
  first_ = false;
  result.ok = true;
  return result;
}

double DotLayout::norm_sq(std::span<const double> values,
                          NormType norm) const {
  PIPESCG_CHECK(values.size() >= total(), "dot batch too small");
  if (!preconditioned) return values[0];  // all flavors coincide (u == r)
  switch (norm) {
    case NormType::kUnpreconditioned:
      return values[norm_offset()];
    case NormType::kPreconditioned:
      return values[norm_offset() + 1];
    case NormType::kNatural:
      return values[0];  // m_0 = (r, u)
  }
  return values[0];
}

la::DenseMatrix DotLayout::cross(std::span<const double> values) const {
  PIPESCG_CHECK(values.size() >= total(), "dot batch too small");
  const std::size_t su = static_cast<std::size_t>(s);
  la::DenseMatrix c(su, su);
  const std::size_t off = cross_offset();
  for (std::size_t k = 0; k < su; ++k)
    for (std::size_t j = 0; j < su; ++j) c(k, j) = values[off + k * su + j];
  return c;
}

void build_dot_pairs(const VecBlock& s_basis, const VecBlock& ap,
                     std::vector<DotPair>& out) {
  const std::size_t s = ap.size();
  PIPESCG_CHECK(s_basis.size() == s + 1, "basis must have s+1 columns");
  out.clear();
  // Moments m_j = (A^{j-j/2} r, A^{j/2} r), j = 0..2s.
  for (std::size_t j = 0; j <= 2 * s; ++j) {
    const std::size_t half = j / 2;
    out.push_back(DotPair{&s_basis[j - half], &s_basis[half]});
  }
  // Cross C(k, j) = (A P_cur[k], S_new[j]).
  for (std::size_t k = 0; k < s; ++k)
    for (std::size_t j = 0; j < s; ++j)
      out.push_back(DotPair{&ap[k], &s_basis[j]});
}

void build_dot_pairs(const VecBlock& wb, const VecBlock& v,
                     const VecBlock& apr, std::vector<DotPair>& out) {
  const std::size_t s = apr.size();
  PIPESCG_CHECK(wb.size() == s + 1 && v.size() == s + 1,
                "bases must have s+1 columns");
  out.clear();
  // Moments m_j = ((A M^{-1})^{j-j/2} r, (M^{-1}A)^{j/2} u)
  //             = r^T (M^{-1}A)^j u.
  for (std::size_t j = 0; j <= 2 * s; ++j) {
    const std::size_t half = j / 2;
    out.push_back(DotPair{&wb[j - half], &v[half]});
  }
  // Cross C(k, j) = ((A P_cur)[k], V_new[j]) = (P_cur^T A V_new)(k, j).
  for (std::size_t k = 0; k < s; ++k)
    for (std::size_t j = 0; j < s; ++j)
      out.push_back(DotPair{&apr[k], &v[j]});
  // Norm extras: unpreconditioned (r, r) and preconditioned (u, u).
  out.push_back(DotPair{&wb[0], &wb[0]});
  out.push_back(DotPair{&v[0], &v[0]});
}

double true_flavored_norm(Engine& engine, const Vec& b, const Vec& x,
                          NormType norm, Vec& scratch_r, Vec& scratch_u) {
  engine.apply_op(x, scratch_u);
  engine.waxpy(scratch_r, -1.0, scratch_u, b);  // r = b - A x
  const Vec* nx = &scratch_r;
  const Vec* ny = &scratch_r;
  if (norm != NormType::kUnpreconditioned && engine.has_preconditioner()) {
    engine.apply_pc(scratch_r, scratch_u);
    ny = &scratch_u;
    if (norm == NormType::kPreconditioned) nx = &scratch_u;
  }
  return std::sqrt(std::max(engine.dot(*nx, *ny), 0.0));
}

bool batch_finite(std::span<const double> values) {
  return all_finite(values);
}

int resolve_replacement_period(const SolverOptions& opts, int s) {
  if (opts.replacement_period > 0) return opts.replacement_period;
  if (opts.replacement_period < 0) return 0;
  // Auto: infrequent truth anchoring at s <= 3 (keeps the reported residual
  // honest at ~(s+1)/(16 s) extra kernel cost), tighter periods at the
  // depths where the monomial tower recurrences destabilize.
  if (s <= 3) return 16;
  return s == 4 ? 4 : 1;
}

void copy_block(Engine& engine, const VecBlock& src, VecBlock& dst,
                std::size_t count) {
  PIPESCG_CHECK(src.size() >= count && dst.size() >= count,
                "copy_block count exceeds block size");
  for (std::size_t j = 0; j < count; ++j) engine.copy(src[j], dst[j]);
}

void TelemetrySnapshot::capture(const ScalarWork::Result& sw) {
  if (obs::ConvergenceTelemetry::current() == nullptr) return;
  alpha = sw.alpha;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < sw.b.rows(); ++i)
    for (std::size_t j = 0; j < sw.b.cols(); ++j)
      sum_sq += sw.b(i, j) * sw.b(i, j);
  beta_fro = std::sqrt(sum_sq);
}

void TelemetrySnapshot::checkpoint(std::uint64_t iteration, double rnorm,
                                   const SolverOptions& opts, int cur_s,
                                   std::size_t recoveries) const {
  // Fire when either observer is installed: the JSONL telemetry sink or the
  // live metrics gauges (alpha/beta only reach the former; capture() stays
  // gated on it).
  if (obs::ConvergenceTelemetry::current() == nullptr &&
      obs::metrics::LiveSolve::current() == nullptr)
    return;
  obs::telemetry_checkpoint(iteration, rnorm, to_string(opts.norm), cur_s,
                            recoveries, alpha, beta_fro);
}

}  // namespace pipescg::krylov::sstep
