#include "pipescg/krylov/sstep_common.hpp"

#include <algorithm>
#include <cmath>

#include "pipescg/base/error.hpp"
#include "pipescg/la/cholesky.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/telemetry.hpp"

namespace pipescg::krylov::sstep {
namespace {

bool all_finite(const la::DenseMatrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m(i, j))) return false;
  return true;
}

bool all_finite(std::span<const double> v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace

ScalarWork::ScalarWork(int s) : s_(s), w_prev_(0, 0) {
  PIPESCG_CHECK(s >= 1 && s <= 16, "s must be in [1, 16]");
}

ScalarWork::Result ScalarWork::step(std::span<const double> moments,
                                    const la::DenseMatrix& cross) {
  const std::size_t s = static_cast<std::size_t>(s_);
  PIPESCG_CHECK(moments.size() >= 2 * s + 1, "need 2s+1 moments");
  if (!all_finite(moments)) {
    Result result;
    result.b = la::DenseMatrix(s, s);
    result.alpha.assign(s, 0.0);
    return result;
  }
  la::DenseMatrix m_s(s, s);
  for (std::size_t j = 0; j < s; ++j)
    for (std::size_t k = 0; k < s; ++k) m_s(j, k) = moments[j + k + 1];
  return solve_with(m_s, moments.subspan(0, s), cross);
}

ScalarWork::Result ScalarWork::step_gram(const ShiftedBasis& basis,
                                         std::span<const double> tri,
                                         const la::DenseMatrix& cross) {
  const std::size_t s = static_cast<std::size_t>(s_);
  PIPESCG_CHECK(basis.s() == s_, "basis depth mismatch");
  const DotLayout layout{s_, false, true};
  PIPESCG_CHECK(tri.size() >= layout.tri_count(),
                "need (s+1)(s+2)/2 Gram values");
  // Symmetric triangle access: G(j, k) = G(k, j).
  const auto g_at = [&](std::size_t j, std::size_t k) {
    return j <= k ? tri[layout.gram_index(j, k)]
                  : tri[layout.gram_index(k, j)];
  };
  // M_S(j, k) = (S[j], x S[k]) expanded through the three-term recurrence
  // x p_k = gamma_k p_{k+1} + theta_k p_k + sigma_k p_{k-1}; symmetrized
  // because the expansion is only symmetric in exact arithmetic.
  la::DenseMatrix m_s(s, s);
  for (std::size_t j = 0; j < s; ++j) {
    for (std::size_t k = 0; k < s; ++k) {
      const int ki = static_cast<int>(k);
      double v = basis.gamma(ki) * g_at(j, k + 1) +
                 basis.theta(ki) * g_at(j, k);
      if (k > 0) v += basis.sigma(ki) * g_at(j, k - 1);
      m_s(j, k) = v;
    }
  }
  m_s.symmetrize();
  std::vector<double> g(s);
  for (std::size_t j = 0; j < s; ++j) g[j] = g_at(0, j);
  return solve_with(m_s, g, cross);
}

ScalarWork::Result ScalarWork::solve_with(const la::DenseMatrix& m_s,
                                          std::span<const double> g,
                                          const la::DenseMatrix& cross) {
  const std::size_t s = static_cast<std::size_t>(s_);
  PIPESCG_CHECK(cross.rows() == s && cross.cols() == s, "cross must be s x s");

  Result result;
  result.b = la::DenseMatrix(s, s);
  result.alpha.assign(s, 0.0);
  if (!all_finite(m_s) || !all_finite(cross) || !all_finite(g)) return result;

  la::DenseMatrix w(s, s);
  try {
    if (first_) {
      w = m_s;
    } else {
      // W_{i-1} B = -C
      la::DenseMatrix neg_c(s, s);
      for (std::size_t k = 0; k < s; ++k)
        for (std::size_t j = 0; j < s; ++j) neg_c(k, j) = -cross(k, j);
      la::LuFactorization lu_prev(w_prev_);
      result.b = lu_prev.solve(neg_c);
      // W = M_S + C^T B  (the B^T C + C^T B + B^T W B terms collapse since
      // W_{i-1} B = -C implies B^T W_{i-1} B = -B^T C).
      w = m_s;
      const la::DenseMatrix ct_b = cross.transposed() * result.b;
      w.add_scaled(ct_b, 1.0);
      w.symmetrize();
    }
    // SPD guard: W = P^T A P is SPD whenever the direction block has full
    // rank, so a failed (near-singular-tolerant) Cholesky is a certificate
    // that the basis Gram has numerically collapsed.  Fail soft -- the LU
    // below would "succeed" and hand back huge garbage coefficients.  When
    // the guard passes the actual solves still run through LU, bitwise
    // identical to the historical path.
    la::DenseMatrix w_sym = w;
    w_sym.symmetrize();
    if (!la::CholeskyFactorization::try_factor(w_sym, 1e-13)) {
      result.gram_breakdown = true;
      return result;
    }
    la::LuFactorization lu_w(w);
    result.alpha = lu_w.solve(std::vector<double>(g.begin(), g.end()));
  } catch (const Error&) {
    return result;  // singular scalar work => breakdown
  }
  if (!all_finite(result.b) ||
      !all_finite(std::span<const double>(result.alpha))) {
    return result;
  }
  w_prev_ = w;
  first_ = false;
  result.ok = true;
  return result;
}

double DotLayout::norm_sq(std::span<const double> values,
                          NormType norm) const {
  PIPESCG_CHECK(values.size() >= total(), "dot batch too small");
  if (!preconditioned) return values[0];  // all flavors coincide (u == r)
  switch (norm) {
    case NormType::kUnpreconditioned:
      return values[norm_offset()];
    case NormType::kPreconditioned:
      return values[norm_offset() + 1];
    case NormType::kNatural:
      return values[0];  // m_0 = (r, u)
  }
  return values[0];
}

la::DenseMatrix DotLayout::cross(std::span<const double> values) const {
  PIPESCG_CHECK(values.size() >= total(), "dot batch too small");
  const std::size_t su = static_cast<std::size_t>(s);
  la::DenseMatrix c(su, su);
  const std::size_t off = cross_offset();
  for (std::size_t k = 0; k < su; ++k)
    for (std::size_t j = 0; j < su; ++j) c(k, j) = values[off + k * su + j];
  return c;
}

void build_dot_pairs(const VecBlock& s_basis, const VecBlock& ap,
                     std::vector<DotPair>& out) {
  const std::size_t s = ap.size();
  PIPESCG_CHECK(s_basis.size() == s + 1, "basis must have s+1 columns");
  out.clear();
  // Moments m_j = (A^{j-j/2} r, A^{j/2} r), j = 0..2s.
  for (std::size_t j = 0; j <= 2 * s; ++j) {
    const std::size_t half = j / 2;
    out.push_back(DotPair{&s_basis[j - half], &s_basis[half]});
  }
  // Cross C(k, j) = (A P_cur[k], S_new[j]).
  for (std::size_t k = 0; k < s; ++k)
    for (std::size_t j = 0; j < s; ++j)
      out.push_back(DotPair{&ap[k], &s_basis[j]});
}

void build_dot_pairs(const VecBlock& wb, const VecBlock& v,
                     const VecBlock& apr, std::vector<DotPair>& out) {
  const std::size_t s = apr.size();
  PIPESCG_CHECK(wb.size() == s + 1 && v.size() == s + 1,
                "bases must have s+1 columns");
  out.clear();
  // Moments m_j = ((A M^{-1})^{j-j/2} r, (M^{-1}A)^{j/2} u)
  //             = r^T (M^{-1}A)^j u.
  for (std::size_t j = 0; j <= 2 * s; ++j) {
    const std::size_t half = j / 2;
    out.push_back(DotPair{&wb[j - half], &v[half]});
  }
  // Cross C(k, j) = ((A P_cur)[k], V_new[j]) = (P_cur^T A V_new)(k, j).
  for (std::size_t k = 0; k < s; ++k)
    for (std::size_t j = 0; j < s; ++j)
      out.push_back(DotPair{&apr[k], &v[j]});
  // Norm extras: unpreconditioned (r, r) and preconditioned (u, u).
  out.push_back(DotPair{&wb[0], &wb[0]});
  out.push_back(DotPair{&v[0], &v[0]});
}

void build_gram_dot_pairs(const VecBlock& s_basis, const VecBlock& ap,
                          std::vector<DotPair>& out) {
  const std::size_t s = ap.size();
  PIPESCG_CHECK(s_basis.size() == s + 1, "basis must have s+1 columns");
  out.clear();
  // Gram upper triangle G(j, k) = (S[j], S[k]), j <= k <= s.
  for (std::size_t j = 0; j <= s; ++j)
    for (std::size_t k = j; k <= s; ++k)
      out.push_back(DotPair{&s_basis[j], &s_basis[k]});
  // Cross C(k, j) = (A P_cur[k], S_new[j]).
  for (std::size_t k = 0; k < s; ++k)
    for (std::size_t j = 0; j < s; ++j)
      out.push_back(DotPair{&ap[k], &s_basis[j]});
}

void build_gram_dot_pairs(const VecBlock& wb, const VecBlock& v,
                          const VecBlock& apr, std::vector<DotPair>& out) {
  const std::size_t s = apr.size();
  PIPESCG_CHECK(wb.size() == s + 1 && v.size() == s + 1,
                "bases must have s+1 columns");
  out.clear();
  // G(j, k) = (wb[j], v[k]) = v[j]^T M v[k]: the M-inner Gram of the u-side
  // basis (wb[j] = M v[j]), symmetric, so the upper triangle suffices.
  for (std::size_t j = 0; j <= s; ++j)
    for (std::size_t k = j; k <= s; ++k)
      out.push_back(DotPair{&wb[j], &v[k]});
  // Cross C(k, j) = ((A P_cur)[k], V_new[j]).
  for (std::size_t k = 0; k < s; ++k)
    for (std::size_t j = 0; j < s; ++j)
      out.push_back(DotPair{&apr[k], &v[j]});
  // Norm extras: unpreconditioned (r, r) and preconditioned (u, u).
  out.push_back(DotPair{&wb[0], &wb[0]});
  out.push_back(DotPair{&v[0], &v[0]});
}

double true_flavored_norm(Engine& engine, const Vec& b, const Vec& x,
                          NormType norm, Vec& scratch_r, Vec& scratch_u) {
  engine.apply_op(x, scratch_u);
  engine.waxpy(scratch_r, -1.0, scratch_u, b);  // r = b - A x
  const Vec* nx = &scratch_r;
  const Vec* ny = &scratch_r;
  if (norm != NormType::kUnpreconditioned && engine.has_preconditioner()) {
    engine.apply_pc(scratch_r, scratch_u);
    ny = &scratch_u;
    if (norm == NormType::kPreconditioned) nx = &scratch_u;
  }
  return std::sqrt(std::max(engine.dot(*nx, *ny), 0.0));
}

bool batch_finite(std::span<const double> values) {
  return all_finite(values);
}

int resolve_replacement_period(const SolverOptions& opts, int s) {
  if (opts.replacement_period > 0) return opts.replacement_period;
  if (opts.replacement_period < 0) return 0;
  // Auto: infrequent truth anchoring at s <= 3 (keeps the reported residual
  // honest at ~(s+1)/(16 s) extra kernel cost), tighter periods at the
  // depths where the monomial tower recurrences destabilize.  The shifted
  // bases exist precisely so the tower stays conditioned at large s, so
  // they keep the relaxed period everywhere -- the same assumption
  // sim::auto_tune prices when comparing bases.
  if (opts.basis.type != BasisType::kMonomial) return 16;
  if (s <= 3) return 16;
  return s == 4 ? 4 : 1;
}

int resolve_gap_period(const SolverOptions& opts) {
  return opts.gap_check_period > 0 ? opts.gap_check_period : 8;
}

GapMonitor::Action GapMonitor::observe(double recurred_rnorm,
                                       double true_rnorm, SolveStats& stats) {
  const double gap = std::abs(recurred_rnorm - true_rnorm) /
                     std::max(true_rnorm, 1e-300);
  last_gap_ = gap;
  ++stats.gap_checks;
  stats.last_residual_gap = gap;
  stats.max_residual_gap = std::max(stats.max_residual_gap, gap);
  if (!enabled() || !(gap > tol_)) {
    // Healthy (or a replacement just closed the gap): reset the ladder.
    awaiting_ = false;
    failures_ = 0;
    return Action::kNone;
  }
  if (awaiting_) {
    // The previous gap-triggered replacement did not close the gap.
    ++failures_;
    ++stats.failed_replacements;
    if (failures_ >= 2) {
      awaiting_ = false;
      return Action::kEscalate;
    }
  }
  awaiting_ = true;
  return Action::kReplace;
}

void copy_block(Engine& engine, const VecBlock& src, VecBlock& dst,
                std::size_t count) {
  PIPESCG_CHECK(src.size() >= count && dst.size() >= count,
                "copy_block count exceeds block size");
  for (std::size_t j = 0; j < count; ++j) engine.copy(src[j], dst[j]);
}

void TelemetrySnapshot::capture(const ScalarWork::Result& sw) {
  if (obs::ConvergenceTelemetry::current() == nullptr) return;
  alpha = sw.alpha;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < sw.b.rows(); ++i)
    for (std::size_t j = 0; j < sw.b.cols(); ++j)
      sum_sq += sw.b(i, j) * sw.b(i, j);
  beta_fro = std::sqrt(sum_sq);
}

void TelemetrySnapshot::checkpoint(std::uint64_t iteration, double rnorm,
                                   const SolverOptions& opts, int cur_s,
                                   std::size_t recoveries) {
  // Fire when either observer is installed: the JSONL telemetry sink or the
  // live metrics gauges (alpha/beta only reach the former; capture() stays
  // gated on it).  Gap fields are one-shot: consumed by this record, reset
  // to the -1 "no check" sentinel for the next one.
  const double tr = true_rnorm;
  const double gap = residual_gap;
  true_rnorm = -1.0;
  residual_gap = -1.0;
  if (obs::ConvergenceTelemetry::current() == nullptr &&
      obs::metrics::LiveSolve::current() == nullptr)
    return;
  obs::telemetry_checkpoint(iteration, rnorm, to_string(opts.norm), cur_s,
                            recoveries, alpha, beta_fro, tr, gap);
}

}  // namespace pipescg::krylov::sstep
