// PIPECG-OATI: One Allreduce per Two Iterations (Tiwari & Vadhiyar,
// HiPC 2020 -- the paper's reference [11]).
//
// Reconstruction: the original uses iteration combination plus
// non-recurrence computations to launch one non-blocking allreduce every two
// iterations and overlap it with two PCs and two SPMVs.  That communication
// and overlap structure is exactly the depth-2 instance of the pipelined
// preconditioned s-step core, which is what we run here (DESIGN.md,
// "Substitutions").  Table I's published FLOP count (80 N per two
// iterations) slightly exceeds this reconstruction's; the difference is
// charged to the cost model so modeled runtimes match the published
// accounting.
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class PipeCgOatiSolver final : public Solver {
 public:
  std::string name() const override { return "pipecg-oati"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
