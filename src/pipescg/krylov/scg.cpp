#include "pipescg/krylov/scg.hpp"

#include <cmath>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/krylov/sstep_common.hpp"

namespace pipescg::krylov {

SolveStats ScgSolver::solve(Engine& engine, const Vec& b, Vec& x,
                            const SolverOptions& opts) const {
  using namespace sstep;
  SolveStats stats;
  stats.method = name();
  stats.b_norm = detail::compute_b_norm(engine, b, opts.norm);
  const double tol = detail::threshold(stats, opts);
  const int s = opts.s;
  const std::size_t su = static_cast<std::size_t>(s);

  VecBlock basis = engine.new_block(su + 1),
           basis_next = engine.new_block(su + 1);
  VecBlock p_prev = engine.new_block(su), p_cur = engine.new_block(su);
  VecBlock ap_prev = engine.new_block(su), ap_cur = engine.new_block(su);

  // Setup: basis of r_0 (paper Alg. 2 lines 3-5).
  {
    Vec ax = engine.new_vec();
    engine.apply_op(x, ax);
    engine.waxpy(basis[0], -1.0, ax, b);
  }
  for (std::size_t j = 1; j <= su; ++j)
    engine.apply_op(basis[j - 1], basis[j]);

  const DotLayout layout{s, /*preconditioned=*/false};
  std::vector<DotPair> pairs;
  std::vector<double> values(layout.total());
  build_dot_pairs(basis, ap_cur, pairs);  // ap_cur zero: C = 0
  engine.dots(pairs, values);

  ScalarWork scalar_work(s);
  TelemetrySnapshot telem;
  std::size_t iterations = 0;
  double rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
  telem.checkpoint(0, rnorm, opts, s, stats.recoveries);
  detail::checkpoint(stats, opts, 0, rnorm);

  while (rnorm >= tol && iterations < opts.max_iterations) {
    const la::DenseMatrix cross = layout.cross(values);
    ScalarWork::Result sw = scalar_work.step(
        std::span<const double>(values.data(), layout.moment_count()), cross);
    if (!sw.ok) {
      stats.breakdown = true;
      stats.stagnated = true;
      break;
    }
    telem.capture(sw);
    // Direction block and its A-image (paper Alg. 2 lines 9-10; the A-image
    // recurrence adds only linear-combination work, no SPMV).
    copy_block(engine, basis, p_cur, su);
    for (std::size_t c = 0; c < su; ++c)
      engine.copy(basis[c + 1], ap_cur[c]);
    if (iterations > 0) {
      engine.block_maxpy(p_cur, p_prev, sw.b);
      engine.block_maxpy(ap_cur, ap_prev, sw.b);
    }

    // x_{i+1} = x_i + P alpha (Alg. 2 line 10).
    engine.block_axpy(x, p_cur, sw.alpha);

    // Explicit residual and basis rebuild: s+1 SPMVs (Alg. 2 lines 11-12).
    {
      Vec ax = engine.new_vec();
      engine.apply_op(x, ax);
      engine.waxpy(basis_next[0], -1.0, ax, b);
    }
    for (std::size_t j = 1; j <= su; ++j)
      engine.apply_op(basis_next[j - 1], basis_next[j]);

    // One blocking allreduce for all 2s+1 moments + cross (Alg. 2 line 13).
    build_dot_pairs(basis_next, ap_cur, pairs);
    engine.dots(pairs, values);

    iterations += su;
    rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
    telem.checkpoint(iterations, rnorm, opts, s, stats.recoveries);
    if (!detail::checkpoint(stats, opts, iterations, rnorm)) break;
    engine.mark_iteration(iterations - 1, rnorm);

    std::swap(basis, basis_next);
    std::swap(p_prev, p_cur);
    std::swap(ap_prev, ap_cur);
  }

  stats.converged = rnorm < tol;
  stats.iterations = iterations;
  stats.final_rnorm = rnorm;
  detail::finalize_stats(engine, b, x, opts, stats);
  return stats;
}

}  // namespace pipescg::krylov
