// SpmdEngine: runs the same solver code SPMD over a par::Comm team.
//
// Each rank owns a block of rows; apply_op performs a real halo exchange and
// dot_post/dot_wait use the runtime's genuinely non-blocking allreduce, so
// the dependency structure the paper exploits is exercised for real.  The
// preconditioner is rank-local (block-Jacobi composition), the standard
// distributed-memory treatment for the smoother-type preconditioners used
// here.
#pragma once

#include "pipescg/krylov/engine.hpp"
#include "pipescg/la/vector_kernels.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/preconditioner.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/matrix_powers.hpp"

namespace pipescg::krylov {

class SpmdEngine final : public Engine {
 public:
  /// `local_pc`, when given, must act on this rank's local slice
  /// (rows == dist.local_rows()); nullptr means identity.
  ///
  /// `profiler`, when given, is this rank's measurement sink (typically
  /// `solve_profile.rank(comm.rank())`): the engine records kernel counters
  /// and spans into it and installs it as the calling thread's
  /// obs::Profiler::current() for its own lifetime, so the runtime layers
  /// underneath (par::Comm halo/allreduce, DistCsr local SPMV) report into
  /// the same profiler.  Construct the engine on the rank's own thread.
  ///
  /// `mpk`, when given, is this rank's matrix-powers kernel for the same
  /// operator/partition; apply_op_powers then fuses power blocks of
  /// 2..mpk->depth() SPMVs into one halo exchange.  nullptr (the default)
  /// keeps every solver on the plain apply_op path, bit-identical to a
  /// build without the kernel.
  SpmdEngine(par::Comm& comm, const sparse::DistCsr& dist,
             const precond::Preconditioner* local_pc = nullptr,
             obs::Profiler* profiler = nullptr,
             const sparse::MatrixPowers* mpk = nullptr);

  std::size_t local_size() const override { return dist_.local_rows(); }
  std::size_t global_size() const override { return dist_.global_rows(); }
  bool has_preconditioner() const override { return pc_ != nullptr; }
  bool has_matrix_powers() const override { return mpk_ != nullptr; }

  void apply_op(const Vec& x, Vec& y) override;
  void apply_pc(const Vec& r, Vec& u) override;
  void apply_op_powers(const Vec& x, std::span<Vec> outs) override;

  DotHandle dot_post(std::span<const DotPair> pairs,
                     bool blocking = false) override;
  void dot_wait(DotHandle& handle, std::span<double> out) override;

  void mark_iteration(std::uint64_t iter, double rnorm) override;

  par::Comm& comm() { return comm_; }

 protected:
  void record_compute(double flops, double bytes) override;
  double global_scale() const override {
    return static_cast<double>(global_size()) /
           static_cast<double>(std::max<std::size_t>(local_size(), 1));
  }

 private:
  par::Comm& comm_;
  const sparse::DistCsr& dist_;
  const precond::Preconditioner* pc_;
  obs::Profiler* profiler_;
  obs::Profiler::Install profiler_install_;
  const sparse::MatrixPowers* mpk_;
  mutable std::vector<double> ghost_scratch_;
  sparse::MatrixPowers::Scratch mpk_scratch_;
  std::vector<std::span<double>> mpk_outs_;
  std::uint64_t next_dot_id_ = 0;
  static constexpr std::size_t kMaxPending = 8;
  struct Pending {
    par::AllreduceRequest request;
    bool active = false;
  };
  Pending pending_[kMaxPending];
  std::vector<double> partials_;
  // Scratch views for la::dot_batch (avoids a per-post allocation).
  std::vector<la::DotView> dot_views_;
};

}  // namespace pipescg::krylov
