// PIPE-PsCG: Pipelined Preconditioned s-step Conjugate Gradient
// (paper Algorithms 6 and 7 -- the primary contribution).
//
// One non-blocking allreduce per s CG-equivalent iterations, overlapped with
// the s PCs and s SPMVs that extend the power basis to (M^{-1}A)^{2s} u.
// Supports preconditioned, unpreconditioned, and natural residual norms
// without extra kernels (the norm dots ride in the same allreduce).
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class PipePscgSolver final : public Solver {
 public:
  std::string name() const override { return "pipe-pscg"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
