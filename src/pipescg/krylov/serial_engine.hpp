// SerialEngine: executes a solver on whole vectors in one address space and
// (optionally) records the event trace that the sim::Timeline replays to
// price the run at any rank count.
#pragma once

#include <cstdint>

#include "pipescg/krylov/engine.hpp"
#include "pipescg/la/vector_kernels.hpp"
#include "pipescg/precond/preconditioner.hpp"
#include "pipescg/sim/trace.hpp"
#include "pipescg/sparse/operator.hpp"

namespace pipescg::krylov {

class SerialEngine final : public Engine {
 public:
  /// `pc` may be nullptr (identity preconditioner).  `trace` may be nullptr
  /// (no recording).  Both must outlive the engine.
  SerialEngine(const sparse::LinearOperator& a,
               const precond::Preconditioner* pc = nullptr,
               sim::EventTrace* trace = nullptr);

  std::size_t local_size() const override { return a_.rows(); }
  std::size_t global_size() const override { return a_.rows(); }
  bool has_preconditioner() const override { return pc_ != nullptr; }

  void apply_op(const Vec& x, Vec& y) override;
  void apply_pc(const Vec& r, Vec& u) override;

  DotHandle dot_post(std::span<const DotPair> pairs,
                     bool blocking = false) override;
  void dot_wait(DotHandle& handle, std::span<double> out) override;

  void mark_iteration(std::uint64_t iter, double rnorm) override;

 protected:
  void record_compute(double flops, double bytes) override;
  double global_scale() const override { return 1.0; }

 private:
  const sparse::LinearOperator& a_;
  const precond::Preconditioner* pc_;
  sim::EventTrace* trace_;
  std::uint32_t op_index_ = 0;
  std::uint32_t pc_index_ = 0;
  std::uint64_t next_dot_id_ = 0;
  // Results of posted-but-unwaited batches (ring keyed by id).
  static constexpr std::size_t kMaxPending = 16;
  std::vector<double> pending_values_[kMaxPending];
  // Scratch views for la::dot_batch (avoids a per-post allocation).
  std::vector<la::DotView> dot_views_;
};

}  // namespace pipescg::krylov
