// Solver registry: name -> implementation, used by benches and examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

/// Known names: "pcg", "pipecg", "pipecg3", "pipecg-oati", "scg", "pscg",
/// "scg-sspmv", "pipe-scg", "pipe-pscg", "hybrid".  Throws on unknown names.
std::unique_ptr<Solver> make_solver(const std::string& name);

/// All registered solver names, in a stable presentation order.
std::vector<std::string> solver_names();

/// True for the methods that apply a preconditioner (sCG family minus the
/// unpreconditioned variants).
bool solver_uses_preconditioner(const std::string& name);

}  // namespace pipescg::krylov
