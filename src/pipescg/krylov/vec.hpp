// Vector type used by the solvers.
//
// A Vec is the rank-local part of a distributed vector: the whole vector on
// the SerialEngine, a block-row slice on the SpmdEngine.  Solvers never index
// across ranks; all cross-rank interaction goes through Engine collectives.
#pragma once

#include <cstddef>
#include <span>

#include "pipescg/la/vector_kernels.hpp"

namespace pipescg::krylov {

class Vec {
 public:
  Vec() = default;
  explicit Vec(std::size_t n) : data_(n, 0.0) {}

  std::size_t size() const { return data_.size(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::span<double> span() { return {data_.data(), data_.size()}; }
  std::span<const double> span() const { return {data_.data(), data_.size()}; }

 private:
  // 64-byte-aligned storage so the fused kernels (la/vector_kernels) run on
  // cache-line/AVX-512-aligned streams.
  la::AlignedDoubles data_;
};

/// A block of s column vectors (direction blocks, power bases).
using VecBlock = std::vector<Vec>;

}  // namespace pipescg::krylov
