// PIPECG3 (Eller & Gropp, SC'16 -- the paper's reference [10]).
//
// Reconstruction: the original pipelines PCG with three-term recurrence
// relations, launching one allreduce every two iterations and overlapping it
// with two PCs and two SPMVs.  Table I gives it the same time formula as
// PIPECG-OATI (ceil(s/2) * max(G, 2(PC+SPMV))) with higher FLOP (90 N per
// two iterations) and memory (25 vectors) counts.  We reconstruct it with
// the same depth-2 pipelined core and charge the published FLOP difference
// to the cost model; the original's reduced finite-precision accuracy
// (three-term recurrences, Gutknecht & Strakos) is discussed in DESIGN.md
// rather than simulated.
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class PipeCg3Solver final : public Solver {
 public:
  std::string name() const override { return "pipecg3"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
