#include "pipescg/krylov/pipecg3.hpp"

#include "pipescg/krylov/sstep_common.hpp"

namespace pipescg::krylov {

SolveStats PipeCg3Solver::solve(Engine& engine, const Vec& b, Vec& x,
                                const SolverOptions& opts) const {
  // Period-8 basis rebuild: less drift control than PIPECG-OATI's period 4,
  // reflecting the original PIPECG3's weaker finite-precision accuracy
  // (three-term recurrences).
  SolverOptions tuned = opts;
  if (tuned.replacement_period == 0) tuned.replacement_period = 8;
  // Published FLOP count is 90 N per outer iteration (2 CG steps).
  return sstep::pipe_pscg_core(engine, b, x, tuned, /*s=*/2, name(),
                               /*extra_flops_per_outer=*/24.0);
}

}  // namespace pipescg::krylov
