// Hybrid-pipelined method (paper Section VI-B, Table II).
//
// PIPE-PsCG advances the solution until its recurred residual stagnates
// (rounding noise floor of the s-step recurrences); the current iterate is
// then handed to PIPECG-OATI, which continues to the requested tolerance.
// This reaches PCG-level accuracy while spending most iterations in the
// cheaper one-allreduce-per-s-iterations regime.
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class HybridSolver final : public Solver {
 public:
  std::string name() const override { return "hybrid"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
