// PsCG: Preconditioned s-step Conjugate Gradient (paper Algorithm 3,
// after Chronopoulos & Gear's multiprocessor formulation).
//
// One blocking allreduce per outer iteration, s+1 PCs and s+1 SPMVs: the
// residual and the preconditioned power basis are recomputed explicitly.
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class PscgSolver final : public Solver {
 public:
  std::string name() const override { return "pscg"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
