#include "pipescg/krylov/pipe_pscg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/fault/recovery.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::krylov {
namespace sstep {
namespace {

// Extend the interleaved power chain w_j = A v_{j-1}, v_j = M^{-1} w_j for
// j = 1..w.size() from `seed` = v_0.  With a real preconditioner the M^{-1}
// between consecutive SPMVs makes the chain (M^{-1}A)^j seed -- no
// matrix-powers kernel can fuse that, so the loop stays interleaved.
// Without one, apply_pc is a plain copy, the chain degenerates to pure
// powers of A, and an attached MPK collapses the s halo exchanges into one;
// the apply_pc copies are kept so v_j stays a distinct vector and the
// pc_applies counter semantics are unchanged (a null-pc apply_pc does not
// count).  See DESIGN.md section 8.
void extend_power_chain(Engine& engine, const Vec& seed, std::span<Vec> w,
                        std::span<Vec> v) {
  if (engine.has_matrix_powers() && !engine.has_preconditioner()) {
    engine.apply_op_powers(seed, w);
    for (std::size_t j = 0; j < w.size(); ++j) engine.apply_pc(w[j], v[j]);
    return;
  }
  for (std::size_t j = 0; j < w.size(); ++j) {
    engine.apply_op(j == 0 ? seed : v[j - 1], w[j]);
    engine.apply_pc(w[j], v[j]);
  }
}

// One attempt either runs to a terminal state (converged / max iterations /
// unrecoverable diagnostic, all flagged in stats) or detects a fault the
// recovery layer can handle and asks the outer loop to roll back.
enum class AttemptEnd { kDone, kFault };

}  // namespace

SolveStats pipe_pscg_core(Engine& engine, const Vec& b, Vec& x,
                          const SolverOptions& opts, int s,
                          const std::string& method_name,
                          double extra_flops_per_outer) {
  SolveStats stats;
  stats.method = method_name;
  stats.b_norm = detail::compute_b_norm(engine, b, opts.norm);
  const double tol = detail::threshold(stats, opts);
  const double n_global = static_cast<double>(engine.global_size());

  Vec scratch = engine.new_vec();
  Vec scratch2 = engine.new_vec();
  std::vector<double> alpha;
  std::size_t iterations = 0;
  double rnorm = 0.0;

  // Resolve the basis shifts once per solve (setup-only collectives for the
  // non-monomial families; a monomial spec passes through with no kernels,
  // keeping default-configuration trajectories bitwise identical).
  const BasisSpec basis_spec =
      resolve_basis(engine, opts.basis, /*preconditioned=*/true);
  stats.basis = to_string(basis_spec.type);
  stats.basis_lambda_min = basis_spec.lambda_min;
  stats.basis_lambda_max = basis_spec.lambda_max;

  // Residual-gap monitor: lives outside the attempt loop so the failure
  // ladder survives rollbacks (an escalation is what *causes* the rollback).
  GapMonitor gap_monitor(opts.gap_tol);
  const int gap_period = resolve_gap_period(opts);
  Vec gap_r = engine.new_vec();
  Vec gap_u = engine.new_vec();

  // Fault recovery: every verdict below derives from the reduced dot batch,
  // which is identical on all ranks, so rollback decisions stay in SPMD
  // lockstep with no extra communication.  The initial save means there is
  // always a checkpoint to roll back to.
  fault::RecoveryManager recovery(opts.recovery, opts.max_recoveries);
  if (recovery.active())
    recovery.save(x.span(), 0, std::numeric_limits<double>::infinity());
  int cur_s = s;
  TelemetrySnapshot telem;

  // The whole solve body runs as one "attempt" at a fixed depth.  On a
  // detected fault (non-finite reduced batch, singular scalar work,
  // divergence) the attempt unwinds, x is rolled back, and a fresh attempt
  // rebuilds the power basis from the restored iterate -- possibly at a
  // degraded depth.  A clean run is a single attempt whose arithmetic is
  // identical to the historical non-recovering driver.
  auto attempt = [&](int s_att) -> AttemptEnd {
    const std::size_t su = static_cast<std::size_t>(s_att);
    const ShiftedBasis basis(basis_spec, s_att);
    const bool shifted = !basis.monomial();
    gap_monitor.new_attempt();

    // u-side powers v_j = (M^{-1}A)^j u and r-side powers
    // w_j = (A M^{-1})^j r, j = 0..s, plus extended powers j = s+1..2s.
    VecBlock v = engine.new_block(su + 1), v_next = engine.new_block(su + 1);
    VecBlock wb = engine.new_block(su + 1), wb_next = engine.new_block(su + 1);
    VecBlock ev = engine.new_block(su), ev_next = engine.new_block(su);
    VecBlock ew = engine.new_block(su), ew_next = engine.new_block(su);
    // Direction block (u-side) and power towers:
    //   tu[j] = (M^{-1}A)^{j+1} P_cur,  tr[j] = A (M^{-1}A)^j P_cur, j = 0..s.
    VecBlock p_prev = engine.new_block(su), p_cur = engine.new_block(su);
    std::vector<VecBlock> tu_prev, tu_cur, tr_prev, tr_cur;
    for (std::size_t j = 0; j <= su; ++j) {
      tu_prev.push_back(engine.new_block(su));
      tu_cur.push_back(engine.new_block(su));
      tr_prev.push_back(engine.new_block(su));
      tr_cur.push_back(engine.new_block(su));
    }

    // --- setup: r_0, u_0, power basis, first dot batch, extended powers --
    {
      Vec ax = engine.new_vec();
      engine.apply_op(x, ax);
      engine.waxpy(wb[0], -1.0, ax, b);  // w_0 = r_0 = b - A x_0
    }
    engine.apply_pc(wb[0], v[0]);  // v_0 = u_0 = M^{-1} r_0
    if (shifted) {
      extend_chain_pc(engine, basis, ChainView{&wb, &ew}, ChainView{&v, &ev},
                      1, su, scratch);
    } else {
      extend_power_chain(engine, v[0], std::span<Vec>(wb.data() + 1, su),
                         std::span<Vec>(v.data() + 1, su));
    }

    const DotLayout layout{s_att, /*preconditioned=*/true, shifted};
    std::vector<DotPair> pairs;
    // One spare slot for the piggybacked gap-check dot; on iterations with
    // no check pending only the leading layout.total() values are live.
    std::vector<double> values(layout.total() + 1);
    const std::span<const double> active(values.data(), layout.total());
    if (shifted)
      build_gram_dot_pairs(wb, v, tr_cur[0], pairs);  // tr_cur[0] zero: C = 0
    else
      build_dot_pairs(wb, v, tr_cur[0], pairs);
    DotHandle handle = engine.dot_post(pairs);

    // Overlapped with the first allreduce: extend powers to 2s
    // (paper Alg. 6 line 13).
    if (shifted) {
      extend_chain_pc(engine, basis, ChainView{&wb, &ew}, ChainView{&v, &ev},
                      su + 1, su, scratch);
    } else {
      extend_power_chain(engine, v[su], std::span<Vec>(ew.data(), su),
                         std::span<Vec>(ev.data(), su));
    }

    const int replacement_period = resolve_replacement_period(opts, s_att);

    ScalarWork scalar_work(s_att);
    detail::StallDetector stall(opts.stall_improvement, opts.stall_window);
    std::size_t outer = 0;
    double initial_rnorm = 0.0;
    detail::DivergenceDetector diverge(0.0);
    bool force_replace = false;
    bool gap_pending = false;

    for (;;) {
      engine.dot_wait(handle, values);
      // Fault gate: a corrupted kernel output (SDC) or overflow lands in
      // the moments / Gram cross-block as NaN or Inf.  Detect before the
      // values feed anything; the roll back reruns from the checkpoint.
      // Only the ACTIVE prefix is gated -- the spare gap slot holds a stale
      // value on iterations with no check pending.
      if (recovery.active() && !batch_finite(active)) return AttemptEnd::kFault;
      rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
      if (gap_pending) {
        // The true-residual dot posted last iteration resolved in the same
        // allreduce as this batch: both norms describe the CURRENT iterate,
        // so the comparison is apples-to-apples and cost zero extra
        // collectives.
        gap_pending = false;
        const double true_norm =
            std::sqrt(std::max(values[layout.total()], 0.0));
        if (std::isfinite(true_norm)) {
          const GapMonitor::Action act =
              gap_monitor.observe(rnorm, true_norm, stats);
          telem.note_gap(true_norm, gap_monitor.last_gap());
          if (act == GapMonitor::Action::kReplace) {
            force_replace = true;
          } else if (act == GapMonitor::Action::kEscalate) {
            if (recovery.active()) {
              // Two gap-triggered replacements failed to close the gap:
              // the recurrences are unstable at this depth.  Hand the
              // RecoveryManager a direct degrade-s request.
              recovery.escalate_degrade();
              return AttemptEnd::kFault;
            }
            stats.stagnated = true;
            break;
          }
        } else if (recovery.active()) {
          return AttemptEnd::kFault;
        }
      }
      telem.checkpoint(iterations, rnorm, opts, s_att, stats.recoveries);
      if (!detail::checkpoint(stats, opts, iterations, rnorm)) {
        if (recovery.active()) {
          stats.breakdown = false;  // rolling back, not stopping
          return AttemptEnd::kFault;
        }
        stats.stagnated = true;
        break;
      }
      if (iterations > 0)
        engine.mark_iteration(iterations - 1, rnorm);
      if (outer == 0) {
        initial_rnorm = rnorm;
        diverge = detail::DivergenceDetector(initial_rnorm);
      }

      if (rnorm < tol) {
        // Verified acceptance: the recurred residual can cross the threshold
        // spuriously (rounding drift); declare convergence only when the true
        // residual confirms it, otherwise re-anchor and keep iterating.
        const double true_norm = true_flavored_norm(engine, b, x, opts.norm,
                                                    scratch, scratch2);
        rnorm = true_norm;
        stats.history.back().second = true_norm;
        if (true_norm < tol) {
          stats.converged = true;
          break;
        }
        force_replace = true;
      }
      if (iterations >= opts.max_iterations) break;
      // Divergence safeguard: the recurred residual ran away (rounding in
      // the power-basis recurrences, or a silent fault).  Roll back when we
      // can, stop instead of amplifying further when we can't.
      if (diverge.update(rnorm)) {
        if (recovery.active()) return AttemptEnd::kFault;
        stats.stagnated = true;
        break;
      }
      // A genuinely improving iterate is worth checkpointing (raw copy; no
      // engine kernels, so clean-run trajectories are untouched).
      if (recovery.should_save(rnorm)) recovery.save(x.span(), iterations, rnorm);
      // Stagnation detection evaluates only *honest* residual checkpoints:
      // with replacement enabled those are the iterations right after a
      // truth anchoring (the pure recurred residual can keep "improving"
      // while the true residual stalls).
      const bool honest_checkpoint =
          replacement_period == 0 || outer == 0 ||
          ((outer - 1) % static_cast<std::size_t>(
                             std::max(replacement_period, 1))) == 0;
      if (opts.detect_stagnation && honest_checkpoint && stall.update(rnorm)) {
        stats.stagnated = true;
        break;
      }

      // Scalar work (two s x s LU solves behind an SPD Cholesky guard).
      const la::DenseMatrix cross = layout.cross(values);
      ScalarWork::Result sw =
          shifted ? scalar_work.step_gram(
                        basis,
                        std::span<const double>(values.data(),
                                                layout.tri_count()),
                        cross)
                  : scalar_work.step(
                        std::span<const double>(values.data(),
                                                layout.moment_count()),
                        cross);
      if (!sw.ok) {
        if (sw.gram_breakdown) ++stats.gram_breakdowns;
        if (recovery.active()) return AttemptEnd::kFault;
        stats.breakdown = true;
        stats.stagnated = true;
        break;
      }
      telem.capture(sw);
      alpha = sw.alpha;
      const bool first = outer == 0;

      // Direction block: P_cur = V[0..s-1] + P_prev B.
      copy_block(engine, v, p_cur, su);
      if (!first) engine.block_maxpy(p_cur, p_prev, sw.b);

      // Towers: tu_cur[j] seed + tu_prev[j] B (same on the r side with w).
      // Monomial seed column c of tower j is the basis vector of degree
      // j+1+c (a copy; index beyond s reads extended powers); a shifted
      // basis seeds with the expansion of p_j(x) * x * p_c(x) over the
      // chain -- degree <= j+c+1 <= 2s, exactly what basis+extension hold.
      for (std::size_t j = 0; j <= su; ++j) {
        for (std::size_t c = 0; c < su; ++c) {
          if (shifted) {
            combine_chain(engine, basis.seed(static_cast<int>(j),
                                             static_cast<int>(c)),
                          ChainView{&v, &ev}, tu_cur[j][c]);
            combine_chain(engine, basis.seed(static_cast<int>(j),
                                             static_cast<int>(c)),
                          ChainView{&wb, &ew}, tr_cur[j][c]);
          } else {
            const std::size_t idx = j + 1 + c;
            engine.copy(idx <= su ? v[idx] : ev[idx - su - 1], tu_cur[j][c]);
            engine.copy(idx <= su ? wb[idx] : ew[idx - su - 1], tr_cur[j][c]);
          }
        }
        if (!first) {
          engine.block_maxpy(tu_cur[j], tu_prev[j], sw.b);
          engine.block_maxpy(tr_cur[j], tr_prev[j], sw.b);
        }
      }

      // x_{i+1} = x_i + P_cur alpha.
      engine.block_axpy(x, p_cur, alpha);

      // New bases: normally pure recurrence (paper Alg. 6 lines 28-33, no
      // PC or SPMV); replacement iterations anchor the residual to the
      // truth (r = b - A x, van der Vorst-style residual replacement) and
      // rebuild the powers explicitly, resetting accumulated drift -- this
      // keeps the reported residual honest, which is what makes stagnation
      // *detectable* for the Hybrid switch.
      const bool replace =
          force_replace ||
          (replacement_period > 0 && outer > 0 &&
           (outer % static_cast<std::size_t>(replacement_period)) == 0);
      force_replace = false;
      if (replace) {
        ++stats.replacements;
        engine.apply_op(x, scratch);
        engine.waxpy(wb_next[0], -1.0, scratch, b);
        engine.apply_pc(wb_next[0], v_next[0]);
        if (shifted) {
          extend_chain_pc(engine, basis, ChainView{&wb_next, &ew_next},
                          ChainView{&v_next, &ev_next}, 1, su, scratch);
        } else {
          extend_power_chain(engine, v_next[0],
                             std::span<Vec>(wb_next.data() + 1, su),
                             std::span<Vec>(v_next.data() + 1, su));
        }
      } else {
        for (std::size_t j = 0; j <= su; ++j) {
          engine.block_combine(v_next[j], v[j], tu_cur[j], alpha);
          engine.block_combine(wb_next[j], wb[j], tr_cur[j], alpha);
        }
      }

      if (extra_flops_per_outer > 0.0) {
        engine.charge(extra_flops_per_outer * n_global,
                      extra_flops_per_outer * n_global * 8.0);
      }

      // Gap monitor: on due iterations measure the true residual of the
      // just-updated iterate (one SPMV + at most one PC) and ride its norm
      // dot on the batch below -- the allreduce schedule is untouched.
      // Skipped on replacement iterations: the basis was just anchored to
      // the truth, so the comparison would be vacuously zero and reset the
      // failure ladder without measuring recurrence health.
      const bool gap_due =
          gap_monitor.enabled() && !replace &&
          ((outer + 1) % static_cast<std::size_t>(gap_period)) == 0;
      const Vec* gx = &gap_r;
      const Vec* gy = &gap_r;
      if (gap_due) {
        engine.apply_op(x, scratch);
        engine.waxpy(gap_r, -1.0, scratch, b);
        if (opts.norm != NormType::kUnpreconditioned &&
            engine.has_preconditioner()) {
          engine.apply_pc(gap_r, gap_u);
          gy = &gap_u;
          if (opts.norm == NormType::kPreconditioned) gx = &gap_u;
        }
      }

      // Post the dots for the *next* iteration (moments + cross + norms)...
      if (shifted)
        build_gram_dot_pairs(wb_next, v_next, tr_cur[0], pairs);
      else
        build_dot_pairs(wb_next, v_next, tr_cur[0], pairs);
      if (gap_due) {
        pairs.push_back(DotPair{gx, gy});
        gap_pending = true;
      }
      handle = engine.dot_post(pairs);

      // ...and overlap the s PCs + s SPMVs that extend the powers to 2s
      // (paper Alg. 6 line 36 / Alg. 7 line 20).
      if (shifted) {
        extend_chain_pc(engine, basis, ChainView{&wb_next, &ew_next},
                        ChainView{&v_next, &ev_next}, su + 1, su, scratch);
      } else {
        extend_power_chain(engine, v_next[su],
                           std::span<Vec>(ew_next.data(), su),
                           std::span<Vec>(ev_next.data(), su));
      }

      std::swap(v, v_next);
      std::swap(wb, wb_next);
      std::swap(ev, ev_next);
      std::swap(ew, ew_next);
      std::swap(p_prev, p_cur);
      std::swap(tu_prev, tu_cur);
      std::swap(tr_prev, tr_cur);
      iterations += su;
      ++outer;
    }
    return AttemptEnd::kDone;
  };

  for (;;) {
    if (attempt(cur_s) == AttemptEnd::kDone) break;
    if (!recovery.admit_failure()) {
      // Recovery budget exhausted: report the failure honestly.
      stats.breakdown = true;
      stats.stagnated = true;
      break;
    }
    iterations = recovery.restore(x.span());
    rnorm = recovery.checkpoint_rnorm();
    ++stats.recoveries;
    if (obs::Profiler* prof = obs::Profiler::current())
      ++prof->counters().recoveries;
    if (recovery.should_degrade() && cur_s > 1) {
      cur_s = std::max(1, cur_s - 1);
      recovery.acknowledge_degrade();
    }
  }

  // A solve that needed rollbacks and still failed to reach the tolerance
  // is a stagnation: the recovery layer kept it alive past diagnostics the
  // non-recovering driver would have stopped on, so report the failure
  // class those diagnostics would have carried.
  if (!stats.converged && stats.recoveries > 0) stats.stagnated = true;

  stats.final_s = cur_s;
  stats.iterations = iterations;
  stats.final_rnorm = rnorm;
  detail::finalize_stats(engine, b, x, opts, stats);
  return stats;
}

}  // namespace sstep

SolveStats PipePscgSolver::solve(Engine& engine, const Vec& b, Vec& x,
                                 const SolverOptions& opts) const {
  return sstep::pipe_pscg_core(engine, b, x, opts, opts.s, name());
}

}  // namespace pipescg::krylov
