#include "pipescg/krylov/hybrid.hpp"

#include "pipescg/krylov/pipecg_oati.hpp"
#include "pipescg/krylov/sstep_common.hpp"

namespace pipescg::krylov {

SolveStats HybridSolver::solve(Engine& engine, const Vec& b, Vec& x,
                               const SolverOptions& opts) const {
  // Phase 1: PIPE-PsCG with stagnation detection on and tight truth
  // anchoring (period-4 residual replacement, like the "non-recurrence
  // computations" of PIPECG-OATI): the phase must make *real* progress for
  // the handoff to pay, and its stall must be detectable.
  SolverOptions phase1 = opts;
  phase1.detect_stagnation = true;
  if (phase1.replacement_period == 0) phase1.replacement_period = 4;
  SolveStats stats =
      sstep::pipe_pscg_core(engine, b, x, phase1, opts.s, name());
  if (stats.converged || stats.iterations >= opts.max_iterations) {
    stats.method = name();
    return stats;
  }
  if (stats.breakdown && stats.recoveries > 0) {
    // Phase 1 exhausted its recovery budget; the tail would inherit the
    // same fault environment, so report instead of thrashing.
    stats.method = name();
    return stats;
  }

  // Phase 2: PIPECG-OATI from the PIPE-PsCG iterate (paper: "we extract the
  // solution x* calculated by PIPE-PsCG and provide it as initial solution
  // to the PIPECG-OATI method").
  SolverOptions phase2 = opts;
  phase2.detect_stagnation = false;
  phase2.max_iterations = opts.max_iterations - stats.iterations;
  PipeCgOatiSolver oati;
  SolveStats tail = oati.solve(engine, b, x, phase2);

  // Merge the two phases into one report.
  SolveStats merged;
  merged.method = name();
  merged.converged = tail.converged;
  merged.stagnated = tail.stagnated;
  merged.breakdown = tail.breakdown;
  merged.iterations = stats.iterations + tail.iterations;
  merged.b_norm = stats.b_norm;
  merged.final_rnorm = tail.final_rnorm;
  merged.true_residual = tail.true_residual;
  merged.recoveries = stats.recoveries + tail.recoveries;
  merged.final_s = tail.final_s;
  merged.history = stats.history;
  for (const auto& [it, rnorm] : tail.history)
    merged.history.emplace_back(stats.iterations + it, rnorm);
  return merged;
}

}  // namespace pipescg::krylov
