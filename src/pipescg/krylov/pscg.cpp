#include "pipescg/krylov/pscg.hpp"

#include <cmath>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/krylov/sstep_common.hpp"

namespace pipescg::krylov {

SolveStats PscgSolver::solve(Engine& engine, const Vec& b, Vec& x,
                             const SolverOptions& opts) const {
  using namespace sstep;
  SolveStats stats;
  stats.method = name();
  stats.b_norm = detail::compute_b_norm(engine, b, opts.norm);
  const double tol = detail::threshold(stats, opts);
  const int s = opts.s;
  const std::size_t su = static_cast<std::size_t>(s);

  // u-side powers v_j = (M^{-1}A)^j u; r-side powers w_j = (A M^{-1})^j r.
  VecBlock v = engine.new_block(su + 1), v_next = engine.new_block(su + 1);
  VecBlock wb = engine.new_block(su + 1), wb_next = engine.new_block(su + 1);
  VecBlock p_prev = engine.new_block(su), p_cur = engine.new_block(su);
  VecBlock apr_prev = engine.new_block(su), apr_cur = engine.new_block(su);

  // Setup (paper Alg. 3 lines 3-6): s+1 PCs, s+1 SPMVs.
  {
    Vec ax = engine.new_vec();
    engine.apply_op(x, ax);
    engine.waxpy(wb[0], -1.0, ax, b);
  }
  engine.apply_pc(wb[0], v[0]);
  for (std::size_t j = 1; j <= su; ++j) {
    engine.apply_op(v[j - 1], wb[j]);
    engine.apply_pc(wb[j], v[j]);
  }

  const DotLayout layout{s, /*preconditioned=*/true};
  std::vector<DotPair> pairs;
  std::vector<double> values(layout.total());
  build_dot_pairs(wb, v, apr_cur, pairs);  // apr_cur zero: C = 0
  engine.dots(pairs, values);

  ScalarWork scalar_work(s);
  TelemetrySnapshot telem;
  std::size_t iterations = 0;
  double rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
  telem.checkpoint(0, rnorm, opts, s, stats.recoveries);
  detail::checkpoint(stats, opts, 0, rnorm);

  while (rnorm >= tol && iterations < opts.max_iterations) {
    const la::DenseMatrix cross = layout.cross(values);
    ScalarWork::Result sw = scalar_work.step(
        std::span<const double>(values.data(), layout.moment_count()), cross);
    if (!sw.ok) {
      stats.breakdown = true;
      stats.stagnated = true;
      break;
    }
    telem.capture(sw);

    // Direction block (u-side) and its A-image (r-side) by recurrence.
    copy_block(engine, v, p_cur, su);
    for (std::size_t c = 0; c < su; ++c)
      engine.copy(wb[c + 1], apr_cur[c]);  // A v_c = w_{c+1}
    if (iterations > 0) {
      engine.block_maxpy(p_cur, p_prev, sw.b);
      engine.block_maxpy(apr_cur, apr_prev, sw.b);
    }

    engine.block_axpy(x, p_cur, sw.alpha);

    // Explicit rebuild: r, u, then the power basis (Alg. 3 lines 12-14):
    // s+1 SPMVs and s+1 PCs per outer iteration.
    {
      Vec ax = engine.new_vec();
      engine.apply_op(x, ax);
      engine.waxpy(wb_next[0], -1.0, ax, b);
    }
    engine.apply_pc(wb_next[0], v_next[0]);
    for (std::size_t j = 1; j <= su; ++j) {
      engine.apply_op(v_next[j - 1], wb_next[j]);
      engine.apply_pc(wb_next[j], v_next[j]);
    }

    build_dot_pairs(wb_next, v_next, apr_cur, pairs);
    engine.dots(pairs, values);

    iterations += su;
    rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
    telem.checkpoint(iterations, rnorm, opts, s, stats.recoveries);
    if (!detail::checkpoint(stats, opts, iterations, rnorm)) break;
    engine.mark_iteration(iterations - 1, rnorm);

    std::swap(v, v_next);
    std::swap(wb, wb_next);
    std::swap(p_prev, p_cur);
    std::swap(apr_prev, apr_cur);
  }

  stats.converged = rnorm < tol;
  stats.iterations = iterations;
  stats.final_rnorm = rnorm;
  detail::finalize_stats(engine, b, x, opts, stats);
  return stats;
}

}  // namespace pipescg::krylov
