#include "pipescg/krylov/scg_sspmv.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/fault/recovery.hpp"
#include "pipescg/krylov/sstep_common.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::krylov {
namespace {

enum class AttemptEnd { kDone, kFault };

}  // namespace

SolveStats ScgSspmvSolver::solve(Engine& engine, const Vec& b, Vec& x,
                                 const SolverOptions& opts) const {
  using namespace sstep;
  SolveStats stats;
  stats.method = name();
  stats.b_norm = detail::compute_b_norm(engine, b, opts.norm);
  const double tol = detail::threshold(stats, opts);

  std::size_t iterations = 0;
  double rnorm = 0.0;

  // Basis shifts resolved once per solve; monomial passes through with no
  // kernels (see pipe_pscg.cpp).
  const BasisSpec basis_spec =
      resolve_basis(engine, opts.basis, /*preconditioned=*/false);
  stats.basis = to_string(basis_spec.type);
  stats.basis_lambda_min = basis_spec.lambda_min;
  stats.basis_lambda_max = basis_spec.lambda_max;

  // Gap monitor: this driver's dots are blocking, so a due check resolves
  // in the SAME batch (the true-residual dot rides the one collective the
  // outer iteration already performs) and a triggered replacement lands at
  // the next outer iteration's residual rebuild.
  GapMonitor gap_monitor(opts.gap_tol);
  const int gap_period = resolve_gap_period(opts);
  Vec gap_r = engine.new_vec();
  Vec scratch = engine.new_vec();

  // Fault recovery (see pipe_pscg.cpp for the full rationale): verdicts
  // derive from the reduced dot batch, identical on all ranks, so rollback
  // stays in SPMD lockstep.
  fault::RecoveryManager recovery(opts.recovery, opts.max_recoveries);
  if (recovery.active())
    recovery.save(x.span(), 0, std::numeric_limits<double>::infinity());
  int cur_s = opts.s;
  TelemetrySnapshot telem;

  auto attempt = [&](int s_att) -> AttemptEnd {
    const std::size_t su = static_cast<std::size_t>(s_att);
    const ShiftedBasis sbasis(basis_spec, s_att);
    const bool shifted = !sbasis.monomial();
    gap_monitor.new_attempt();

    VecBlock basis = engine.new_block(su + 1),
             basis_next = engine.new_block(su + 1);
    VecBlock p_prev = engine.new_block(su), p_cur = engine.new_block(su);
    VecBlock ap_prev = engine.new_block(su), ap_cur = engine.new_block(su);

    {
      Vec ax = engine.new_vec();
      engine.apply_op(x, ax);
      engine.waxpy(basis[0], -1.0, ax, b);
    }
    if (shifted)
      extend_chain(engine, sbasis, ChainView{&basis, nullptr}, 1, su,
                   scratch);
    else
      engine.apply_op_powers(basis[0], std::span<Vec>(basis.data() + 1, su));

    const DotLayout layout{s_att, /*preconditioned=*/false, shifted};
    std::vector<DotPair> pairs;
    // One spare slot for the piggybacked gap-check dot.
    std::vector<double> values(layout.total() + 1);
    const std::span<const double> active(values.data(), layout.total());
    if (shifted)
      build_gram_dot_pairs(basis, ap_cur, pairs);
    else
      build_dot_pairs(basis, ap_cur, pairs);
    engine.dots(pairs, values);
    if (recovery.active() && !batch_finite(active)) return AttemptEnd::kFault;

    ScalarWork scalar_work(s_att);
    std::size_t outer = 0;
    rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
    detail::DivergenceDetector diverge(rnorm);
    telem.checkpoint(iterations, rnorm, opts, s_att, stats.recoveries);
    if (!detail::checkpoint(stats, opts, iterations, rnorm)) {
      if (recovery.active()) {
        stats.breakdown = false;  // rolling back, not stopping
        return AttemptEnd::kFault;
      }
      stats.converged = false;
      return AttemptEnd::kDone;
    }

    bool force_replace = false;
    while (rnorm >= tol && iterations < opts.max_iterations) {
      const la::DenseMatrix cross = layout.cross(values);
      ScalarWork::Result sw =
          shifted ? scalar_work.step_gram(
                        sbasis,
                        std::span<const double>(values.data(),
                                                layout.tri_count()),
                        cross)
                  : scalar_work.step(
                        std::span<const double>(values.data(),
                                                layout.moment_count()),
                        cross);
      if (!sw.ok) {
        if (sw.gram_breakdown) ++stats.gram_breakdowns;
        if (recovery.active()) return AttemptEnd::kFault;
        stats.breakdown = true;
        stats.stagnated = true;
        break;
      }
      telem.capture(sw);
      if (recovery.should_save(rnorm))
        recovery.save(x.span(), iterations, rnorm);

      // Direction block and AQ/AP recurrence (paper Alg. 4 lines 9-11).
      // The AP seed column c is A p_c(A) r: the next basis vector for the
      // monomial family, the x * p_c seed expansion for a shifted one.
      copy_block(engine, basis, p_cur, su);
      for (std::size_t c = 0; c < su; ++c) {
        if (shifted)
          combine_chain(engine, sbasis.seed(0, static_cast<int>(c)),
                        ChainView{&basis, nullptr}, ap_cur[c]);
        else
          engine.copy(basis[c + 1], ap_cur[c]);
      }
      if (outer > 0) {
        engine.block_maxpy(p_cur, p_prev, sw.b);
        engine.block_maxpy(ap_cur, ap_prev, sw.b);
      }

      // x and the *recurred* residual (Alg. 4 lines 12-13): no SPMV here --
      // unless the gap monitor demanded a replacement, which re-anchors the
      // residual to the truth (one SPMV, van der Vorst).
      engine.block_axpy(x, p_cur, sw.alpha);
      engine.block_combine(basis_next[0], basis[0], ap_cur, sw.alpha);
      const bool replaced_now = force_replace;
      force_replace = false;
      if (replaced_now) {
        ++stats.replacements;
        engine.apply_op(x, scratch);
        engine.waxpy(basis_next[0], -1.0, scratch, b);
      }

      // Rebuild the powers from the (possibly re-anchored) residual: s
      // SPMVs (lines 14-15), fused into one halo exchange when an MPK is
      // attached (monomial only; shifted chains interleave combinations).
      if (shifted)
        extend_chain(engine, sbasis, ChainView{&basis_next, nullptr}, 1, su,
                     scratch);
      else
        engine.apply_op_powers(basis_next[0],
                               std::span<Vec>(basis_next.data() + 1, su));

      // Gap check: the true-residual dot rides the same blocking batch.
      // Skipped on replacement iterations -- the residual was just anchored
      // to the truth, so the comparison would be vacuously zero and reset
      // the failure ladder without measuring recurrence health.
      const bool gap_due =
          gap_monitor.enabled() && !replaced_now &&
          ((outer + 1) % static_cast<std::size_t>(gap_period)) == 0;
      if (gap_due) {
        engine.apply_op(x, scratch);
        engine.waxpy(gap_r, -1.0, scratch, b);
      }

      if (shifted)
        build_gram_dot_pairs(basis_next, ap_cur, pairs);
      else
        build_dot_pairs(basis_next, ap_cur, pairs);
      if (gap_due) pairs.push_back(DotPair{&gap_r, &gap_r});
      engine.dots(pairs, values);
      if (recovery.active() && !batch_finite(active))
        return AttemptEnd::kFault;

      iterations += su;
      ++outer;
      rnorm = std::sqrt(std::max(layout.norm_sq(values, opts.norm), 0.0));
      if (gap_due) {
        const double true_norm =
            std::sqrt(std::max(values[layout.total()], 0.0));
        if (std::isfinite(true_norm)) {
          const GapMonitor::Action act =
              gap_monitor.observe(rnorm, true_norm, stats);
          telem.note_gap(true_norm, gap_monitor.last_gap());
          if (act == GapMonitor::Action::kReplace) {
            force_replace = true;
          } else if (act == GapMonitor::Action::kEscalate) {
            if (recovery.active()) {
              recovery.escalate_degrade();
              return AttemptEnd::kFault;
            }
            stats.stagnated = true;
            break;
          }
        } else if (recovery.active()) {
          return AttemptEnd::kFault;
        }
      }
      telem.checkpoint(iterations, rnorm, opts, s_att, stats.recoveries);
      if (!detail::checkpoint(stats, opts, iterations, rnorm)) {
        if (recovery.active()) {
          stats.breakdown = false;
          return AttemptEnd::kFault;
        }
        stats.stagnated = true;
        break;
      }
      engine.mark_iteration(iterations - 1, rnorm);
      if (recovery.active() && diverge.update(rnorm))
        return AttemptEnd::kFault;

      std::swap(basis, basis_next);
      std::swap(p_prev, p_cur);
      std::swap(ap_prev, ap_cur);
    }

    stats.converged = rnorm < tol;
    return AttemptEnd::kDone;
  };

  for (;;) {
    if (attempt(cur_s) == AttemptEnd::kDone) break;
    if (!recovery.admit_failure()) {
      stats.breakdown = true;
      stats.stagnated = true;
      break;
    }
    iterations = recovery.restore(x.span());
    rnorm = recovery.checkpoint_rnorm();
    ++stats.recoveries;
    if (obs::Profiler* prof = obs::Profiler::current())
      ++prof->counters().recoveries;
    if (recovery.should_degrade() && cur_s > 1) {
      cur_s = std::max(1, cur_s - 1);
      recovery.acknowledge_degrade();
    }
  }

  // A solve that needed rollbacks and still failed to converge is a
  // stagnation (see pipe_pscg.cpp).
  if (!stats.converged && stats.recoveries > 0) stats.stagnated = true;

  stats.final_s = cur_s;
  stats.iterations = iterations;
  stats.final_rnorm = rnorm;
  detail::finalize_stats(engine, b, x, opts, stats);
  return stats;
}

}  // namespace pipescg::krylov
