#include "pipescg/krylov/pipecg_oati.hpp"

#include "pipescg/krylov/sstep_common.hpp"

namespace pipescg::krylov {

SolveStats PipeCgOatiSolver::solve(Engine& engine, const Vec& b, Vec& x,
                                   const SolverOptions& opts) const {
  // The original OATI owes its PCG-level accuracy to "non-recurrence
  // computations" -- selected quantities recomputed explicitly each
  // iteration.  The reconstruction mirrors that with a period-4 explicit
  // basis rebuild (kernels honestly recorded), which restores PCG-level
  // convergence on the ill-conditioned problems of Table II.
  SolverOptions tuned = opts;
  if (tuned.replacement_period == 0) tuned.replacement_period = 4;
  // Published FLOP count is 80 N per outer iteration (2 CG steps); the
  // depth-2 core executes ~66 N, so charge the remainder.
  return sstep::pipe_pscg_core(engine, b, x, tuned, /*s=*/2, name(),
                               /*extra_flops_per_outer=*/14.0);
}

}  // namespace pipescg::krylov
