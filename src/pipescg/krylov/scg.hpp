// sCG: the s-step Conjugate Gradient of Chronopoulos & Gear
// (paper Algorithm 2).
//
// One *blocking* allreduce per outer iteration (= s CG steps), s+1 SPMVs per
// outer iteration: the residual is recomputed explicitly as r = b - A x
// before the s basis powers are formed.
#pragma once

#include "pipescg/krylov/solver.hpp"

namespace pipescg::krylov {

class ScgSolver final : public Solver {
 public:
  std::string name() const override { return "scg"; }
  SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                   const SolverOptions& opts) const override;
};

}  // namespace pipescg::krylov
