// Solver framework: options, statistics, convergence tests.
//
// Conventions shared by all methods (following the paper, Section VI):
//  * the system is A x = b with SPD A (and SPD M when preconditioned);
//  * convergence:  ||res||_flavor < max(rtol * ||b||, atol)
//    where the flavor is the preconditioned (||u||), unpreconditioned
//    (||r||) or natural (sqrt((r, u))) residual norm -- one of PIPE-PsCG's
//    selling points is supporting all three without extra kernels;
//  * `iterations` counts CG-equivalent steps: one outer iteration of an
//    s-step method counts as s.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pipescg/krylov/basis.hpp"
#include "pipescg/krylov/engine.hpp"

namespace pipescg::krylov {

enum class NormType { kPreconditioned, kUnpreconditioned, kNatural };

std::string to_string(NormType norm);

/// Passed to SolverOptions::monitor at every residual checkpoint.
struct IterationInfo {
  std::size_t iteration;  // CG-equivalent iteration count so far
  double rnorm;           // residual norm in the convergence-test flavor
};

struct SolverOptions {
  double rtol = 1e-5;
  double atol = 1e-300;
  std::size_t max_iterations = 20000;  // CG-equivalent steps
  int s = 3;                           // depth for the s-step methods
  NormType norm = NormType::kPreconditioned;

  // s-step basis construction (monomial | Newton | Chebyshev; see
  // krylov/basis.hpp).  Shifted bases keep the basis Gram matrix
  // well-conditioned at depths where the monomial powers collapse, with the
  // same SPMV count and an unchanged allreduce schedule (the dot-batch
  // payload grows from 2s+1 to (s+1)(s+2)/2 scalars).  Unset interval
  // bounds are estimated at solve setup (resolve_basis).
  BasisSpec basis;

  // Stagnation detection (pipelined s-step variants; drives Hybrid).
  // Declared stagnated when the residual norm fails to improve by at least
  // `stall_improvement` over `stall_window` consecutive *honest* residual
  // checkpoints (truth-anchored iterations when replacement is active).
  bool detect_stagnation = false;
  double stall_improvement = 0.995;
  int stall_window = 12;

  // Pipelined s-step variants: rebuild the power basis explicitly from the
  // recurred residual every `replacement_period` outer iterations, bounding
  // the drift of the tower recurrences (reliable-update technique; costs s
  // extra SPMVs+PCs per replacement, honestly recorded in the trace).
  //   0  = auto: period 16 for s <= 3 (truth anchoring), 4 at s = 4,
  //        1 at s >= 5 (measured stability limits)
  //   <0 = always disabled (pure recurrences, exactly the paper's Alg. 5/6)
  //   >0 = explicit period
  int replacement_period = 0;

  // Residual gap monitor (s-step drivers): every `gap_check_period` outer
  // iterations compute the true residual b - A x (one extra SPMV, plus one
  // PC for the preconditioned flavors) and ride its norm dot on the NEXT
  // posted batch -- no extra allreduce, the per-outer-iteration collective
  // count is unchanged.  When |recurred - true| / true exceeds `gap_tol`
  // the driver forces a residual replacement (van der Vorst); when two
  // consecutive gap-triggered replacements fail to close the gap it
  // escalates to the RecoveryManager degrade-s path.  gap_tol <= 0
  // disables the monitor (default); gap_check_period 0 = auto (every 8
  // outer iterations).
  double gap_tol = 0.0;
  int gap_check_period = 0;

  // Compute ||b - A x|| at the end (costs one extra SPMV; off for benches
  // so traces stay clean).
  bool compute_true_residual = false;

  // PCG only: fuse the gamma and norm dot products into one allreduce
  // (PETSc-style).  Default false to match the paper's 3-allreduce count.
  bool fuse_cg_dots = false;

  // PCG only: estimate the extreme eigenvalues of the preconditioned
  // operator from the Lanczos tridiagonal that CG builds implicitly
  // (PETSc KSPSetComputeEigenvalues-style; free, no extra kernels).
  bool estimate_spectrum = false;

  // s-step / pipelined s-step drivers: checkpoint the iterate on residual
  // improvement and, when a fault is detected (non-finite reduced batch,
  // singular scalar work, runaway divergence), roll back to the checkpoint
  // and restart the outer loop instead of aborting.  A clean run with
  // recovery on is bitwise identical to one with it off (checkpoints are
  // raw copies outside the engine kernel interface).  After two consecutive
  // restarts with no progress the driver degrades s -> max(1, s-1).
  bool recovery = true;
  int max_recoveries = 8;  // rollback budget before giving up

  // Called at every residual checkpoint (PETSc KSPMonitor-style).  On the
  // SPMD engine the callback runs on every rank.
  std::function<void(const IterationInfo&)> monitor;
};

struct SolveStats {
  std::string method;
  bool converged = false;
  bool stagnated = false;   // residual stalled before reaching the tolerance
  bool breakdown = false;   // scalar-work failure (singular s x s system)
  std::size_t iterations = 0;
  double b_norm = 0.0;
  double final_rnorm = 0.0;  // in the convergence-test flavor
  double true_residual = -1.0;
  // Lanczos estimates of the preconditioned operator's extreme eigenvalues
  // and condition number (PCG with estimate_spectrum; -1 when not computed).
  double lambda_min_est = -1.0;
  double lambda_max_est = -1.0;
  double condition_est = -1.0;
  // Fault recovery (s-step drivers with SolverOptions::recovery): how many
  // rollback-restarts happened and the s the solver finished with (0 when
  // the method has no s parameter).
  std::size_t recoveries = 0;
  int final_s = 0;
  // Basis / residual-gap monitor telemetry (s-step drivers).  `basis` is
  // the basis family the solve ran with; the lambda bounds are the resolved
  // shift interval (0 for the monomial basis).  `replacements` counts every
  // residual replacement (scheduled, verified-acceptance and gap-triggered);
  // gap fields are -1 until the monitor performs a check.
  std::string basis;
  double basis_lambda_min = 0.0;
  double basis_lambda_max = 0.0;
  std::size_t replacements = 0;
  std::size_t gap_checks = 0;
  std::size_t failed_replacements = 0;
  std::size_t gram_breakdowns = 0;  // soft-failed non-SPD scalar-work solves
  double last_residual_gap = -1.0;
  double max_residual_gap = -1.0;
  // (CG-equivalent iteration, residual norm) at every check point.
  std::vector<std::pair<std::size_t, double>> history;
};

class Solver {
 public:
  virtual ~Solver() = default;
  virtual std::string name() const = 0;
  /// Solve A x = b starting from the provided x (initial guess).
  virtual SolveStats solve(Engine& engine, const Vec& b, Vec& x,
                           const SolverOptions& opts) const = 0;
};

namespace detail {

/// Convergence reference: ||b|| measured in the *same flavor* as the
/// residual norm the test uses (||M^{-1}b|| for the preconditioned norm,
/// sqrt(b^T M^{-1} b) for the natural norm), so rtol means the same thing
/// across flavors.  Costs one setup dot (plus one PC application for the
/// preconditioned/natural flavors).
double compute_b_norm(Engine& engine, const Vec& b, NormType norm);

/// Convergence threshold per the convention above.
double threshold(const SolveStats& stats, const SolverOptions& opts);

/// Fill stats.true_residual when requested.
void finalize_stats(Engine& engine, const Vec& b, const Vec& x,
                    const SolverOptions& opts, SolveStats& stats);

/// Append a residual checkpoint to the history and fire the monitor.
/// Returns false -- after flagging stats.breakdown -- when rnorm is not
/// finite: the recurrences have been destroyed (overflow, SDC, division by
/// a vanished scalar) and every subsequent iterate would be garbage, so
/// callers must stop (or roll back) instead of iterating on NaNs.
bool checkpoint(SolveStats& stats, const SolverOptions& opts,
                std::size_t iteration, double rnorm);

/// Divergence detector shared by the pipelined s-step drivers: tracks the
/// best residual norm seen and declares divergence when the current norm is
/// non-finite or has grown 1e4x past the best (plus an absolute allowance
/// of 1e3x the initial norm, so early wobble on hard problems is ignored).
class DivergenceDetector {
 public:
  explicit DivergenceDetector(double initial_rnorm)
      : initial_(initial_rnorm) {}

  /// Feed one residual norm; returns true when the solve has diverged.
  /// The best-so-far updates *before* the test, matching the historical
  /// inline guard: a new best never counts as divergence.
  bool update(double rnorm) {
    if (!std::isfinite(rnorm)) return true;
    if (best_ < 0.0 || rnorm < best_) best_ = rnorm;
    return rnorm > 1e4 * best_ + 1e3 * initial_;
  }

  double best() const { return best_; }

 private:
  double initial_;
  double best_ = -1.0;
};

/// Sliding-window stagnation detector.
class StallDetector {
 public:
  StallDetector(double improvement, int window)
      : improvement_(improvement), window_(window) {}

  /// Feed one residual norm; returns true once stagnation is declared.
  bool update(double rnorm);

 private:
  double improvement_;
  int window_;
  double best_ = -1.0;
  int since_improvement_ = 0;
};

}  // namespace detail
}  // namespace pipescg::krylov
