// In-process SPMD runtime: the library's substitute for MPI on this offline
// target (see DESIGN.md, "Substitutions").
//
// A Team spawns P ranks (one std::thread each) that execute the same function
// SPMD-style, communicating through a Comm handle.  The Comm provides the
// collective operations the solvers need:
//
//  * barrier()                        -- synchronization
//  * allreduce_sum()                  -- blocking allreduce (MPI_Allreduce)
//  * iallreduce_sum() / wait()        -- non-blocking allreduce
//                                        (MPI_Iallreduce + MPI_Wait)
//  * broadcast()                      -- MPI_Bcast
//  * expose() / peer_read()           -- RMA-style neighbor access used by
//                                        the distributed SPMV halo exchange
//                                        (models MPI_Get in an epoch)
//
// The non-blocking allreduce is genuinely non-blocking: posting stores the
// local contribution into a per-rank slot with a release publication and
// returns immediately; compute proceeds; wait() spins until all P ranks have
// contributed and then performs a *fixed-order* summation so results are
// bit-deterministic regardless of thread scheduling.
//
// Ordering contract (same as MPI): all ranks must post every collective --
// barrier, allreduce_sum/iallreduce_sum, broadcast, allreduce_max, expose/
// close_epoch, exchange -- in the same order, and matching posts must agree
// on their payload shape (the allreduce count; the exposed window length for
// the window-based collectives).  A bounded ring of in-flight operations
// provides backpressure; exceeding kMaxInflight outstanding unposted
// generations simply makes the poster spin until the slot is recycled.
// Violations are detected rather than silently corrupting: mismatched
// allreduce payload counts fail a cheap always-on check at post time
// (allreduce_max and broadcast ride on the window mechanism, whose
// peer_read bounds-check catches a mismatched window), and mismatched
// *ordering* deadlocks -- which the spin-loop watchdog below converts into
// a CommTimeout diagnostic instead of a hang.
//
// Watchdog: every spin loop in the runtime (barrier, allreduce wait,
// post backpressure) is bounded by a global watchdog timeout
// (set_comm_watchdog_ms, default 30 s).  A rank that spins past the
// deadline -- because a peer died, stalled indefinitely, or violated the
// ordering contract -- throws CommTimeout carrying a per-rank state dump
// (what it was waiting on, generation/slot, progress counters, and the
// rank's last profiler activity) instead of hanging the team forever.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "pipescg/base/error.hpp"

namespace pipescg::par {

class Team;

/// Thrown by a rank whose collective spin exceeded the watchdog timeout:
/// the in-process analogue of an MPI fault-tolerance error class
/// (MPIX_ERR_PROC_FAILED).  The message carries the rank's state dump.
class CommTimeout : public Error {
 public:
  CommTimeout(int rank, const std::string& what) : Error(what), rank_(rank) {}
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Watchdog timeout for the runtime's spin loops, in milliseconds.
/// <= 0 disables the watchdog (unbounded spins, the pre-fault-layer
/// behavior).  The default is 30000 ms -- far beyond any legitimate
/// collective on an in-process team, so clean runs never trip it.
void set_comm_watchdog_ms(double ms);
double comm_watchdog_ms();

/// Process-wide count of CommTimeout throws (watchdog trips) since start or
/// the last reset.  Exported as pipescg_watchdog_trips_total by
/// obs::metrics::register_fault, and the number the fault harness reports.
std::uint64_t comm_watchdog_trips();
void reset_comm_watchdog_trips();

/// RAII watchdog override (tests use short timeouts and must restore).
class ScopedWatchdog {
 public:
  explicit ScopedWatchdog(double ms) : prev_(comm_watchdog_ms()) {
    set_comm_watchdog_ms(ms);
  }
  ~ScopedWatchdog() { set_comm_watchdog_ms(prev_); }
  ScopedWatchdog(const ScopedWatchdog&) = delete;
  ScopedWatchdog& operator=(const ScopedWatchdog&) = delete;

 private:
  double prev_;
};

/// Handle for an in-flight non-blocking allreduce.
struct AllreduceRequest {
  std::uint64_t op_id = 0;
  std::size_t count = 0;
  bool active = false;
};

/// One pre-registered ghost pull of a batched halo exchange (see
/// Comm::exchange): `length` doubles starting at `remote_offset` within
/// `peer`'s exposed window land at `local_offset` within the puller's ghost
/// buffer.  Run lists are built once at operator-construction time and
/// replayed every exchange -- the in-process analogue of a persistent
/// MPI neighborhood collective (MPI_Neighbor_alltoallv with a cached
/// datatype, or a pre-registered RMA access pattern).
struct GhostPull {
  int peer = 0;                  ///< rank whose window is read
  std::size_t remote_offset = 0; ///< offset within the peer's local slice
  std::size_t local_offset = 0;  ///< offset within the ghost buffer
  std::size_t length = 0;        ///< doubles transferred
};

/// Contiguous [begin, end) row range owned by a rank.
struct RankRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Balanced block partition of n items over `size` ranks: the first
/// n % size ranks get one extra item.
RankRange block_range(std::size_t n, int rank, int size);

/// Per-rank communicator handle.  Not copyable; owned by the Team's rank loop
/// and passed to the SPMD body by reference.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  void barrier();

  /// Blocking sum-allreduce; in and out may alias.  All ranks must pass the
  /// same count (checked at post time; a mismatch throws on the violating
  /// rank and times out the others).
  void allreduce_sum(std::span<const double> in, std::span<double> out);

  /// Post a non-blocking sum-allreduce of `in`.  The contents of `in` are
  /// copied at post time; the caller may reuse the buffer immediately.
  AllreduceRequest iallreduce_sum(std::span<const double> in);

  /// Complete a previously posted iallreduce; writes the reduced values.
  void wait(AllreduceRequest& req, std::span<double> out);

  /// Broadcast `data` from `root` to all ranks.
  void broadcast(std::span<double> data, int root);

  /// Max-allreduce of a single value (used for convergence flags/norms).
  /// Rides on the window mechanism, so its payload sanity comes from
  /// peer_read's bounds check: a rank that posted a different collective in
  /// this slot exposes a window of the wrong length and every reader throws.
  double allreduce_max(double v);

  /// RMA-style exposure epoch: every rank publishes a read-only window, then
  /// after the collective call any rank may peer_read() from any window
  /// until close_epoch().  Models MPI_Win_fence + MPI_Get.
  ///
  /// Epoch semantics: expose() is collective and opens the epoch (a barrier
  /// guarantees every window is published); peer_read() may then be called
  /// any number of times against any rank; close_epoch() is collective and
  /// guarantees all reads completed before any window may change.  Ranks
  /// must not mutate their exposed buffer between expose() and
  /// close_epoch().
  void expose(std::span<const double> window);
  /// Read `out.size()` entries starting at `offset` within `peer`'s window.
  /// Only valid inside an expose()/close_epoch() epoch.
  void peer_read(int peer, std::size_t offset, std::span<double> out) const;
  /// Close the current exposure epoch (collective).
  void close_epoch();

  /// Batched halo exchange: ONE epoch that exposes `window` and executes a
  /// pre-registered pull list into `ghosts` -- expose, every pull, close.
  /// This is the primitive the distributed operators (sparse::DistCsr,
  /// sparse::DistStencil3D, sparse::MatrixPowers) use for their halo
  /// exchanges; the per-epoch cost is paid once regardless of how many runs
  /// or how deep a ghost region is pulled, which is exactly what the
  /// matrix-powers kernel exploits (one deep exchange per s-step block
  /// instead of s shallow ones).  Collective: every rank of the team must
  /// call it, each with its own run list (possibly empty).  Records
  /// halo_epochs / halo_messages / halo_volume_doubles into the calling
  /// thread's obs profiler.
  void exchange(std::span<const GhostPull> pulls,
                std::span<const double> window, std::span<double> ghosts);

  /// Convenience: this rank's block range of n items.
  RankRange my_range(std::size_t n) const {
    return block_range(n, rank_, size());
  }

 private:
  friend class Team;
  friend class PersistentTeam;
  Comm(Team* team, int rank) : team_(team), rank_(rank) {}
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  Team* team_;
  int rank_;
  std::uint64_t next_op_id_ = 0;
};

/// A team of P SPMD ranks.  Usage:
///
///   par::Team::run(4, [&](par::Comm& comm) { ... SPMD body ... });
///
/// The call returns when all ranks finish.  If any rank throws, the first
/// exception (by rank order) is rethrown on the calling thread after all
/// ranks have been joined.
class Team {
 public:
  static void run(int num_ranks, const std::function<void(Comm&)>& body);

  /// Maximum number of doubles per allreduce payload.
  static constexpr std::size_t kMaxPayload = 4096;
  /// Maximum in-flight allreduce generations before posting backpressures.
  static constexpr std::size_t kMaxInflight = 8;

 private:
  friend class Comm;
  friend class PersistentTeam;
  explicit Team(int num_ranks);

  struct Slot {
    std::atomic<std::uint64_t> generation{0};
    std::atomic<int> contributed{0};
    std::atomic<int> consumed{0};
    // Payload sanity tag: count + 1 of the current tenant, 0 = unset.  The
    // first contributor CAS-installs it; every later contributor verifies
    // its own count against it, so ranks disagreeing on an allreduce's
    // payload shape (a collective-ordering violation) fail loudly at post
    // time instead of summing garbage.  Cheap enough to keep on in release.
    std::atomic<std::uint64_t> count_tag{0};
    std::vector<double> contributions;  // P * kMaxPayload
  };

  int num_ranks_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::span<const double>> windows_;

  // Central barrier implemented with a sense-reversing counter so it can be
  // reused without C++20 std::barrier template/functor friction.
  std::atomic<int> barrier_count_{0};
  std::atomic<int> barrier_sense_{0};

  void barrier_impl(int rank);
  AllreduceRequest post_impl(Comm& comm, std::span<const double> in);
  void wait_impl(const AllreduceRequest& req, std::span<double> out, int rank);
};

/// A team of P SPMD ranks whose threads are spawned ONCE and reused across
/// bodies -- the service layer's substitute for Team::run, which pays a
/// thread spawn + join per solve.  A production MPI runtime keeps its ranks
/// alive for the lifetime of the job; this is the in-process analogue, and
/// it is what lets a warm service::Session amortize thread creation the
/// same way it amortizes partition/closure/preconditioner setup.
///
///   par::PersistentTeam team(4);
///   team.run([&](par::Comm& comm) { ... solve 1 ... });
///   team.run([&](par::Comm& comm) { ... solve 2 ... });  // same threads
///
/// Semantics match Team::run: run() blocks until every rank finished the
/// body, and if any rank threw, the first exception (by rank order) is
/// rethrown on the calling thread.  A body that throws does NOT poison the
/// team: the underlying collective state is recreated for the next run, so
/// a failed solve (e.g. a fault-injection CommTimeout) leaves the team
/// reusable.  run() itself is not thread-safe -- one submitter at a time
/// (the admission queue in service/ serializes submissions).
///
/// Each worker parks on a condition variable between bodies (no spinning,
/// no watchdog interaction while idle); per-run Comm objects carry fresh
/// op-id counters so every body observes the same collective-ordering state
/// it would under Team::run.
class PersistentTeam {
 public:
  explicit PersistentTeam(int num_ranks);
  ~PersistentTeam();
  PersistentTeam(const PersistentTeam&) = delete;
  PersistentTeam& operator=(const PersistentTeam&) = delete;

  int size() const { return num_ranks_; }

  /// Execute `body` SPMD on the persistent ranks; blocks until all finish.
  void run(const std::function<void(Comm&)>& body);

  /// Bodies executed so far -- the team-reuse counter the session's
  /// cached-setup tests assert on (threads spawned == size(), always).
  std::size_t runs() const { return runs_; }

 private:
  void worker(int rank);

  int num_ranks_;
  std::size_t runs_ = 0;

  std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t generation_ = 0;   // bumped per run(); workers chase it
  int done_count_ = 0;             // ranks finished with current generation
  bool shutdown_ = false;
  const std::function<void(Comm&)>* body_ = nullptr;
  // The Team's collective state (slot generations, op ids) persists across
  // bodies, so each rank keeps ONE Comm whose op-id counter advances for
  // the team's whole lifetime -- exactly like an MPI communicator.  Both
  // are recreated after a failed body: an exception can unwind a rank
  // mid-collective, which breaks the op-id lockstep for good.
  std::unique_ptr<Team> team_;
  std::vector<std::unique_ptr<Comm>> comms_;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> threads_;
};

}  // namespace pipescg::par
