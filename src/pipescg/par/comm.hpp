// In-process SPMD runtime: the library's substitute for MPI on this offline
// target (see DESIGN.md, "Substitutions").
//
// A Team spawns P ranks (one std::thread each) that execute the same function
// SPMD-style, communicating through a Comm handle.  The Comm provides the
// collective operations the solvers need:
//
//  * barrier()                        -- synchronization
//  * allreduce_sum()                  -- blocking allreduce (MPI_Allreduce)
//  * iallreduce_sum() / wait()        -- non-blocking allreduce
//                                        (MPI_Iallreduce + MPI_Wait)
//  * broadcast()                      -- MPI_Bcast
//  * expose() / peer_read()           -- RMA-style neighbor access used by
//                                        the distributed SPMV halo exchange
//                                        (models MPI_Get in an epoch)
//
// The non-blocking allreduce is genuinely non-blocking: posting stores the
// local contribution into a per-rank slot with a release publication and
// returns immediately; compute proceeds; wait() spins until all P ranks have
// contributed and then performs a *fixed-order* summation so results are
// bit-deterministic regardless of thread scheduling.
//
// Ordering contract (same as MPI): all ranks must post collectives in the
// same order.  A bounded ring of in-flight operations provides backpressure;
// exceeding kMaxInflight outstanding unposted generations simply makes the
// poster spin until the slot is recycled.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

namespace pipescg::par {

class Team;

/// Handle for an in-flight non-blocking allreduce.
struct AllreduceRequest {
  std::uint64_t op_id = 0;
  std::size_t count = 0;
  bool active = false;
};

/// One pre-registered ghost pull of a batched halo exchange (see
/// Comm::exchange): `length` doubles starting at `remote_offset` within
/// `peer`'s exposed window land at `local_offset` within the puller's ghost
/// buffer.  Run lists are built once at operator-construction time and
/// replayed every exchange -- the in-process analogue of a persistent
/// MPI neighborhood collective (MPI_Neighbor_alltoallv with a cached
/// datatype, or a pre-registered RMA access pattern).
struct GhostPull {
  int peer = 0;                  ///< rank whose window is read
  std::size_t remote_offset = 0; ///< offset within the peer's local slice
  std::size_t local_offset = 0;  ///< offset within the ghost buffer
  std::size_t length = 0;        ///< doubles transferred
};

/// Contiguous [begin, end) row range owned by a rank.
struct RankRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Balanced block partition of n items over `size` ranks: the first
/// n % size ranks get one extra item.
RankRange block_range(std::size_t n, int rank, int size);

/// Per-rank communicator handle.  Not copyable; owned by the Team's rank loop
/// and passed to the SPMD body by reference.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  void barrier();

  /// Blocking sum-allreduce; in and out may alias.  All ranks must pass the
  /// same count.
  void allreduce_sum(std::span<const double> in, std::span<double> out);

  /// Post a non-blocking sum-allreduce of `in`.  The contents of `in` are
  /// copied at post time; the caller may reuse the buffer immediately.
  AllreduceRequest iallreduce_sum(std::span<const double> in);

  /// Complete a previously posted iallreduce; writes the reduced values.
  void wait(AllreduceRequest& req, std::span<double> out);

  /// Broadcast `data` from `root` to all ranks.
  void broadcast(std::span<double> data, int root);

  /// Max-allreduce of a single value (used for convergence flags/norms).
  double allreduce_max(double v);

  /// RMA-style exposure epoch: every rank publishes a read-only window, then
  /// after the collective call any rank may peer_read() from any window
  /// until close_epoch().  Models MPI_Win_fence + MPI_Get.
  ///
  /// Epoch semantics: expose() is collective and opens the epoch (a barrier
  /// guarantees every window is published); peer_read() may then be called
  /// any number of times against any rank; close_epoch() is collective and
  /// guarantees all reads completed before any window may change.  Ranks
  /// must not mutate their exposed buffer between expose() and
  /// close_epoch().
  void expose(std::span<const double> window);
  /// Read `out.size()` entries starting at `offset` within `peer`'s window.
  /// Only valid inside an expose()/close_epoch() epoch.
  void peer_read(int peer, std::size_t offset, std::span<double> out) const;
  /// Close the current exposure epoch (collective).
  void close_epoch();

  /// Batched halo exchange: ONE epoch that exposes `window` and executes a
  /// pre-registered pull list into `ghosts` -- expose, every pull, close.
  /// This is the primitive the distributed operators (sparse::DistCsr,
  /// sparse::DistStencil3D, sparse::MatrixPowers) use for their halo
  /// exchanges; the per-epoch cost is paid once regardless of how many runs
  /// or how deep a ghost region is pulled, which is exactly what the
  /// matrix-powers kernel exploits (one deep exchange per s-step block
  /// instead of s shallow ones).  Collective: every rank of the team must
  /// call it, each with its own run list (possibly empty).  Records
  /// halo_epochs / halo_messages / halo_volume_doubles into the calling
  /// thread's obs profiler.
  void exchange(std::span<const GhostPull> pulls,
                std::span<const double> window, std::span<double> ghosts);

  /// Convenience: this rank's block range of n items.
  RankRange my_range(std::size_t n) const {
    return block_range(n, rank_, size());
  }

 private:
  friend class Team;
  Comm(Team* team, int rank) : team_(team), rank_(rank) {}
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  Team* team_;
  int rank_;
  std::uint64_t next_op_id_ = 0;
};

/// A team of P SPMD ranks.  Usage:
///
///   par::Team::run(4, [&](par::Comm& comm) { ... SPMD body ... });
///
/// The call returns when all ranks finish.  If any rank throws, the first
/// exception (by rank order) is rethrown on the calling thread after all
/// ranks have been joined.
class Team {
 public:
  static void run(int num_ranks, const std::function<void(Comm&)>& body);

  /// Maximum number of doubles per allreduce payload.
  static constexpr std::size_t kMaxPayload = 4096;
  /// Maximum in-flight allreduce generations before posting backpressures.
  static constexpr std::size_t kMaxInflight = 8;

 private:
  friend class Comm;
  explicit Team(int num_ranks);

  struct Slot {
    std::atomic<std::uint64_t> generation{0};
    std::atomic<int> contributed{0};
    std::atomic<int> consumed{0};
    std::size_t count = 0;  // payload length; written by first contributor
    std::vector<double> contributions;  // P * kMaxPayload
  };

  int num_ranks_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::span<const double>> windows_;

  // Central barrier implemented with a sense-reversing counter so it can be
  // reused without C++20 std::barrier template/functor friction.
  std::atomic<int> barrier_count_{0};
  std::atomic<int> barrier_sense_{0};

  void barrier_impl();
  AllreduceRequest post_impl(Comm& comm, std::span<const double> in);
  void wait_impl(const AllreduceRequest& req, std::span<double> out);
};

}  // namespace pipescg::par
