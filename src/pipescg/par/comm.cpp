#include "pipescg/par/comm.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>

#include "pipescg/base/error.hpp"
#include "pipescg/base/log.hpp"
#include "pipescg/fault/injector.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::par {
namespace {

std::atomic<double> g_watchdog_ms{30000.0};
std::atomic<std::uint64_t> g_watchdog_trips{0};

// Spin with progressively more yielding.  On oversubscribed machines (this
// target has a single core) pure spinning would serialize horribly, so we
// yield early and often.  pause() returns true once the watchdog deadline
// has passed, so every spin loop in the runtime is bounded: the caller
// composes a CommTimeout with its live state instead of hanging.  The clock
// is consulted only every 1024 yields, keeping the hot path untouched.
class Backoff {
 public:
  bool pause() {
    if (spins_ < 16) {
      ++spins_;
      return false;
    }
    std::this_thread::yield();
    if ((++yields_ & 1023u) != 0) return false;
    const double limit = g_watchdog_ms.load(std::memory_order_relaxed);
    if (limit <= 0.0) return false;  // watchdog disabled
    const auto now = std::chrono::steady_clock::now();
    if (!started_) {
      start_ = now;
      started_ = true;
      return false;
    }
    elapsed_ms_ =
        std::chrono::duration<double, std::milli>(now - start_).count();
    return elapsed_ms_ >= limit;
  }

  double elapsed_ms() const { return elapsed_ms_; }

 private:
  int spins_ = 0;
  std::uint32_t yields_ = 0;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_{};
  double elapsed_ms_ = 0.0;
};

// Compose the per-rank state dump and throw CommTimeout.  `where` names the
// spin loop; `detail` carries its live state (generation, slot, progress
// counters).  The calling thread's profiler, when installed, contributes
// its last recorded activity -- which iteration the rank reached and what
// kind of span it measured last -- so a post-mortem can tell a straggler
// from a dead peer.
[[noreturn]] void throw_comm_timeout(const char* where, int rank,
                                     double elapsed_ms,
                                     const std::string& detail) {
  std::ostringstream os;
  os << "comm watchdog: rank " << rank << " timed out after " << elapsed_ms
     << " ms in " << where;
  if (!detail.empty()) os << " (" << detail << ")";
  if (const obs::Profiler* prof = obs::Profiler::current()) {
    os << "; profiler: iterations=" << prof->counters().iterations
       << " spans=" << prof->spans().size();
    if (!prof->spans().empty())
      os << " last=" << obs::to_string(prof->spans().back().kind);
  }
  g_watchdog_trips.fetch_add(1, std::memory_order_relaxed);
  throw CommTimeout(rank, os.str());
}

// Tags the calling thread's log lines with its SPMD rank for the duration
// of the team body, so interleaved output is attributable.
class LogRankScope {
 public:
  explicit LogRankScope(int rank) : prev_(log_rank()) { set_log_rank(rank); }
  ~LogRankScope() { set_log_rank(prev_); }

 private:
  int prev_;
};

}  // namespace

void set_comm_watchdog_ms(double ms) {
  g_watchdog_ms.store(ms, std::memory_order_relaxed);
}

double comm_watchdog_ms() {
  return g_watchdog_ms.load(std::memory_order_relaxed);
}

std::uint64_t comm_watchdog_trips() {
  return g_watchdog_trips.load(std::memory_order_relaxed);
}

void reset_comm_watchdog_trips() {
  g_watchdog_trips.store(0, std::memory_order_relaxed);
}

RankRange block_range(std::size_t n, int rank, int size) {
  PIPESCG_CHECK(size > 0 && rank >= 0 && rank < size,
                "invalid rank/size in block_range");
  const std::size_t p = static_cast<std::size_t>(size);
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t begin = r * base + std::min(r, extra);
  const std::size_t len = base + (r < extra ? 1 : 0);
  return RankRange{begin, begin + len};
}

Team::Team(int num_ranks) : num_ranks_(num_ranks) {
  PIPESCG_CHECK(num_ranks >= 1, "team needs at least one rank");
  slots_.reserve(kMaxInflight);
  for (std::size_t i = 0; i < kMaxInflight; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->generation.store(i, std::memory_order_relaxed);
    slot->contributions.assign(
        static_cast<std::size_t>(num_ranks) * kMaxPayload, 0.0);
    slots_.push_back(std::move(slot));
  }
  windows_.assign(static_cast<std::size_t>(num_ranks), {});
}

void Team::barrier_impl(int rank) {
  const int sense = barrier_sense_.load(std::memory_order_relaxed);
  if (barrier_count_.fetch_add(1, std::memory_order_acq_rel) ==
      num_ranks_ - 1) {
    barrier_count_.store(0, std::memory_order_relaxed);
    barrier_sense_.store(1 - sense, std::memory_order_release);
  } else {
    Backoff backoff;
    while (barrier_sense_.load(std::memory_order_acquire) == sense) {
      if (backoff.pause()) {
        std::ostringstream os;
        os << "arrived=" << barrier_count_.load(std::memory_order_relaxed)
           << "/" << num_ranks_ << " sense=" << sense;
        throw_comm_timeout("barrier", rank, backoff.elapsed_ms(), os.str());
      }
    }
  }
}

AllreduceRequest Team::post_impl(Comm& comm, std::span<const double> in) {
  PIPESCG_CHECK(in.size() <= kMaxPayload,
                "allreduce payload exceeds Team::kMaxPayload");
  if (fault::Injector* inj = fault::Injector::current())
    inj->on_allreduce_post();
  const std::uint64_t id = comm.next_op_id_++;
  Slot& slot = *slots_[id % kMaxInflight];

  // Backpressure: wait until the slot has been fully recycled for this
  // generation (all ranks consumed the previous tenant).
  Backoff backoff;
  while (slot.generation.load(std::memory_order_acquire) != id) {
    if (backoff.pause()) {
      std::ostringstream os;
      os << "op=" << id << " slot=" << id % kMaxInflight << " slot_generation="
         << slot.generation.load(std::memory_order_relaxed);
      throw_comm_timeout("allreduce post backpressure", comm.rank(),
                         backoff.elapsed_ms(), os.str());
    }
  }

  // Payload sanity: the first contributor installs the count tag, every
  // later contributor must agree -- a mismatch means the ranks posted
  // different collectives into the same generation (ordering violation).
  const std::uint64_t tag = static_cast<std::uint64_t>(in.size()) + 1;
  std::uint64_t expected = 0;
  if (!slot.count_tag.compare_exchange_strong(expected, tag,
                                              std::memory_order_acq_rel)) {
    PIPESCG_CHECK(expected == tag,
                  "allreduce payload count mismatch across ranks: this rank "
                  "posted " + std::to_string(in.size()) + " doubles, a peer "
                  "posted " + std::to_string(expected - 1) +
                  " (collective-ordering contract violated; see par/comm.hpp)");
  }
  double* mine = slot.contributions.data() +
                 static_cast<std::size_t>(comm.rank()) * kMaxPayload;
  std::copy(in.begin(), in.end(), mine);
  slot.contributed.fetch_add(1, std::memory_order_release);

  AllreduceRequest req;
  req.op_id = id;
  req.count = in.size();
  req.active = true;
  return req;
}

void Team::wait_impl(const AllreduceRequest& req, std::span<double> out,
                     int rank) {
  Slot& slot = *slots_[req.op_id % kMaxInflight];
  Backoff backoff;
  while (slot.contributed.load(std::memory_order_acquire) != num_ranks_) {
    if (backoff.pause()) {
      std::ostringstream os;
      os << "op=" << req.op_id << " slot=" << req.op_id % kMaxInflight
         << " contributed="
         << slot.contributed.load(std::memory_order_relaxed) << "/"
         << num_ranks_;
      throw_comm_timeout("allreduce wait", rank, backoff.elapsed_ms(),
                         os.str());
    }
  }

  PIPESCG_CHECK(out.size() >= req.count, "allreduce output buffer too small");
  // Fixed-order reduction: deterministic result independent of scheduling.
  for (std::size_t j = 0; j < req.count; ++j) {
    double acc = 0.0;
    for (int r = 0; r < num_ranks_; ++r)
      acc += slot.contributions[static_cast<std::size_t>(r) * kMaxPayload + j];
    out[j] = acc;
  }

  // Last consumer recycles the slot for generation id + kMaxInflight.
  if (slot.consumed.fetch_add(1, std::memory_order_acq_rel) ==
      num_ranks_ - 1) {
    slot.consumed.store(0, std::memory_order_relaxed);
    slot.contributed.store(0, std::memory_order_relaxed);
    slot.count_tag.store(0, std::memory_order_relaxed);
    slot.generation.store(req.op_id + kMaxInflight,
                          std::memory_order_release);
  }
}

void Team::run(int num_ranks, const std::function<void(Comm&)>& body) {
  Team team(num_ranks);
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks), nullptr);

  if (num_ranks == 1) {
    LogRankScope log_rank(0);
    Comm comm(&team, 0);
    body(comm);
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&team, &body, &errors, r]() {
      try {
        LogRankScope log_rank(r);
        Comm comm(&team, r);
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

PersistentTeam::PersistentTeam(int num_ranks) : num_ranks_(num_ranks) {
  PIPESCG_CHECK(num_ranks >= 1, "persistent team needs at least one rank");
  team_.reset(new Team(num_ranks));
  comms_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r)
    comms_.emplace_back(new Comm(team_.get(), r));
  errors_.assign(static_cast<std::size_t>(num_ranks), nullptr);
  threads_.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r)
    threads_.emplace_back([this, r] { worker(r); });
}

PersistentTeam::~PersistentTeam() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void PersistentTeam::worker(int rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(Comm&)>* body = nullptr;
    Comm* comm = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      body = body_;
      comm = comms_[static_cast<std::size_t>(rank)].get();
    }
    try {
      LogRankScope log_rank(rank);
      (*body)(*comm);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      errors_[static_cast<std::size_t>(rank)] = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_count_;
    }
    cv_.notify_all();
  }
}

void PersistentTeam::run(const std::function<void(Comm&)>& body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PIPESCG_CHECK(body_ == nullptr,
                  "PersistentTeam::run is not reentrant (one submitter at "
                  "a time; see service::AdmissionQueue)");
    body_ = &body;
    done_count_ = 0;
    std::fill(errors_.begin(), errors_.end(), nullptr);
    ++generation_;
  }
  cv_.notify_all();

  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_count_ == num_ranks_; });
  body_ = nullptr;
  ++runs_;
  std::exception_ptr first = nullptr;
  for (auto& e : errors_)
    if (e != nullptr) {
      first = e;
      break;
    }
  if (first != nullptr) {
    // A rank unwound mid-collective: slot generations / op ids are out of
    // lockstep for good, so rebuild the collective state (fresh Team and
    // Comms) before the next body -- the team itself stays usable.
    team_.reset(new Team(num_ranks_));
    comms_.clear();
    for (int r = 0; r < num_ranks_; ++r)
      comms_.emplace_back(new Comm(team_.get(), r));
    lock.unlock();
    std::rethrow_exception(first);
  }
}

int Comm::size() const { return team_->num_ranks_; }

void Comm::barrier() { team_->barrier_impl(rank_); }

void Comm::allreduce_sum(std::span<const double> in, std::span<double> out) {
  // A blocking collective (MPI_Allreduce): the post..completion interval is
  // all wait-spin as far as the profiler is concerned.
  obs::Profiler* prof = obs::Profiler::current();
  AllreduceRequest req;
  {
    obs::SpanScope span(prof, obs::SpanKind::kAllreducePost);
    req = team_->post_impl(*this, in);
  }
  obs::SpanScope span(prof, obs::SpanKind::kAllreduceWaitBlocking);
  team_->wait_impl(req, out, rank_);
}

AllreduceRequest Comm::iallreduce_sum(std::span<const double> in) {
  obs::SpanScope span(obs::Profiler::current(),
                      obs::SpanKind::kAllreducePost);
  return team_->post_impl(*this, in);
}

void Comm::wait(AllreduceRequest& req, std::span<double> out) {
  PIPESCG_CHECK(req.active, "wait on inactive allreduce request");
  // Completion of an MPI_Iallreduce-style request: time measured here is
  // reduction latency the solver failed to hide behind compute.
  obs::SpanScope span(obs::Profiler::current(),
                      obs::SpanKind::kAllreduceWaitNonblocking);
  team_->wait_impl(req, out, rank_);
  req.active = false;
}

void Comm::broadcast(std::span<double> data, int root) {
  PIPESCG_CHECK(root >= 0 && root < size(), "broadcast root out of range");
  // Root exposes its buffer; everyone copies; epoch close synchronizes.
  expose(std::span<const double>(data.data(), data.size()));
  if (rank_ != root) peer_read(root, 0, data);
  close_epoch();
}

double Comm::allreduce_max(double v) {
  // Implemented on top of sum-allreduce machinery would change semantics;
  // use the window mechanism instead: everyone exposes, everyone maxes.
  expose(std::span<const double>(&v, 1));
  double m = v;
  for (int r = 0; r < size(); ++r) {
    double peer_v = 0.0;
    peer_read(r, 0, std::span<double>(&peer_v, 1));
    m = std::max(m, peer_v);
  }
  close_epoch();
  return m;
}

void Comm::expose(std::span<const double> window) {
  obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kHaloExpose);
  team_->windows_[static_cast<std::size_t>(rank_)] = window;
  team_->barrier_impl(rank_);  // opens the epoch: all windows published
}

void Comm::peer_read(int peer, std::size_t offset,
                     std::span<double> out) const {
  obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kHaloPeerRead);
  PIPESCG_CHECK(peer >= 0 && peer < size(), "peer_read peer out of range");
  const std::span<const double>& w =
      team_->windows_[static_cast<std::size_t>(peer)];
  PIPESCG_CHECK(offset + out.size() <= w.size(),
                "peer_read outside exposed window");
  std::copy(w.begin() + static_cast<std::ptrdiff_t>(offset),
            w.begin() + static_cast<std::ptrdiff_t>(offset + out.size()),
            out.begin());
}

void Comm::close_epoch() {
  obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kHaloClose);
  team_->barrier_impl(rank_);  // all reads done before windows may change
}

void Comm::exchange(std::span<const GhostPull> pulls,
                    std::span<const double> window,
                    std::span<double> ghosts) {
  if (fault::Injector* inj = fault::Injector::current())
    inj->on_halo_exchange();
  obs::Profiler* prof = obs::Profiler::current();
  const double t0 = prof != nullptr ? prof->now() : 0.0;
  expose(window);
  std::size_t volume = 0;
  for (const GhostPull& pull : pulls) {
    PIPESCG_CHECK(pull.local_offset + pull.length <= ghosts.size(),
                  "ghost pull outside the ghost buffer");
    peer_read(pull.peer, pull.remote_offset,
              ghosts.subspan(pull.local_offset, pull.length));
    volume += pull.length;
  }
  close_epoch();
  if (prof != nullptr) {
    // Whole-epoch latency sample (expose + peer reads + close) for the
    // halo-exchange histogram; the per-phase spans above stay disjoint.
    prof->record_halo_exchange(prof->now() - t0);
    obs::Profiler::Counters& c = prof->counters();
    ++c.halo_epochs;
    c.halo_messages += pulls.size();
    c.halo_volume_doubles += volume;
  }
}

}  // namespace pipescg::par
