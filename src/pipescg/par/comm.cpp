#include "pipescg/par/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "pipescg/base/error.hpp"
#include "pipescg/base/log.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::par {
namespace {

// Spin with progressively more yielding.  On oversubscribed machines (this
// target has a single core) pure spinning would serialize horribly, so we
// yield early and often.
class Backoff {
 public:
  void pause() {
    if (spins_ < 16) {
      ++spins_;
    } else {
      std::this_thread::yield();
    }
  }

 private:
  int spins_ = 0;
};

// Tags the calling thread's log lines with its SPMD rank for the duration
// of the team body, so interleaved output is attributable.
class LogRankScope {
 public:
  explicit LogRankScope(int rank) : prev_(log_rank()) { set_log_rank(rank); }
  ~LogRankScope() { set_log_rank(prev_); }

 private:
  int prev_;
};

}  // namespace

RankRange block_range(std::size_t n, int rank, int size) {
  PIPESCG_CHECK(size > 0 && rank >= 0 && rank < size,
                "invalid rank/size in block_range");
  const std::size_t p = static_cast<std::size_t>(size);
  const std::size_t r = static_cast<std::size_t>(rank);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  const std::size_t begin = r * base + std::min(r, extra);
  const std::size_t len = base + (r < extra ? 1 : 0);
  return RankRange{begin, begin + len};
}

Team::Team(int num_ranks) : num_ranks_(num_ranks) {
  PIPESCG_CHECK(num_ranks >= 1, "team needs at least one rank");
  slots_.reserve(kMaxInflight);
  for (std::size_t i = 0; i < kMaxInflight; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->generation.store(i, std::memory_order_relaxed);
    slot->contributions.assign(
        static_cast<std::size_t>(num_ranks) * kMaxPayload, 0.0);
    slots_.push_back(std::move(slot));
  }
  windows_.assign(static_cast<std::size_t>(num_ranks), {});
}

void Team::barrier_impl() {
  const int sense = barrier_sense_.load(std::memory_order_relaxed);
  if (barrier_count_.fetch_add(1, std::memory_order_acq_rel) ==
      num_ranks_ - 1) {
    barrier_count_.store(0, std::memory_order_relaxed);
    barrier_sense_.store(1 - sense, std::memory_order_release);
  } else {
    Backoff backoff;
    while (barrier_sense_.load(std::memory_order_acquire) == sense)
      backoff.pause();
  }
}

AllreduceRequest Team::post_impl(Comm& comm, std::span<const double> in) {
  PIPESCG_CHECK(in.size() <= kMaxPayload,
                "allreduce payload exceeds Team::kMaxPayload");
  const std::uint64_t id = comm.next_op_id_++;
  Slot& slot = *slots_[id % kMaxInflight];

  // Backpressure: wait until the slot has been fully recycled for this
  // generation (all ranks consumed the previous tenant).
  Backoff backoff;
  while (slot.generation.load(std::memory_order_acquire) != id)
    backoff.pause();

  slot.count = in.size();  // same value written by every rank
  double* mine = slot.contributions.data() +
                 static_cast<std::size_t>(comm.rank()) * kMaxPayload;
  std::copy(in.begin(), in.end(), mine);
  slot.contributed.fetch_add(1, std::memory_order_release);

  AllreduceRequest req;
  req.op_id = id;
  req.count = in.size();
  req.active = true;
  return req;
}

void Team::wait_impl(const AllreduceRequest& req, std::span<double> out) {
  Slot& slot = *slots_[req.op_id % kMaxInflight];
  Backoff backoff;
  while (slot.contributed.load(std::memory_order_acquire) != num_ranks_)
    backoff.pause();

  PIPESCG_CHECK(out.size() >= req.count, "allreduce output buffer too small");
  // Fixed-order reduction: deterministic result independent of scheduling.
  for (std::size_t j = 0; j < req.count; ++j) {
    double acc = 0.0;
    for (int r = 0; r < num_ranks_; ++r)
      acc += slot.contributions[static_cast<std::size_t>(r) * kMaxPayload + j];
    out[j] = acc;
  }

  // Last consumer recycles the slot for generation id + kMaxInflight.
  if (slot.consumed.fetch_add(1, std::memory_order_acq_rel) ==
      num_ranks_ - 1) {
    slot.consumed.store(0, std::memory_order_relaxed);
    slot.contributed.store(0, std::memory_order_relaxed);
    slot.generation.store(req.op_id + kMaxInflight,
                          std::memory_order_release);
  }
}

void Team::run(int num_ranks, const std::function<void(Comm&)>& body) {
  Team team(num_ranks);
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_ranks), nullptr);

  if (num_ranks == 1) {
    LogRankScope log_rank(0);
    Comm comm(&team, 0);
    body(comm);
    return;
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&team, &body, &errors, r]() {
      try {
        LogRankScope log_rank(r);
        Comm comm(&team, r);
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

int Comm::size() const { return team_->num_ranks_; }

void Comm::barrier() { team_->barrier_impl(); }

void Comm::allreduce_sum(std::span<const double> in, std::span<double> out) {
  // A blocking collective (MPI_Allreduce): the post..completion interval is
  // all wait-spin as far as the profiler is concerned.
  obs::Profiler* prof = obs::Profiler::current();
  AllreduceRequest req;
  {
    obs::SpanScope span(prof, obs::SpanKind::kAllreducePost);
    req = team_->post_impl(*this, in);
  }
  obs::SpanScope span(prof, obs::SpanKind::kAllreduceWaitBlocking);
  team_->wait_impl(req, out);
}

AllreduceRequest Comm::iallreduce_sum(std::span<const double> in) {
  obs::SpanScope span(obs::Profiler::current(),
                      obs::SpanKind::kAllreducePost);
  return team_->post_impl(*this, in);
}

void Comm::wait(AllreduceRequest& req, std::span<double> out) {
  PIPESCG_CHECK(req.active, "wait on inactive allreduce request");
  // Completion of an MPI_Iallreduce-style request: time measured here is
  // reduction latency the solver failed to hide behind compute.
  obs::SpanScope span(obs::Profiler::current(),
                      obs::SpanKind::kAllreduceWaitNonblocking);
  team_->wait_impl(req, out);
  req.active = false;
}

void Comm::broadcast(std::span<double> data, int root) {
  PIPESCG_CHECK(root >= 0 && root < size(), "broadcast root out of range");
  // Root exposes its buffer; everyone copies; epoch close synchronizes.
  expose(std::span<const double>(data.data(), data.size()));
  if (rank_ != root) peer_read(root, 0, data);
  close_epoch();
}

double Comm::allreduce_max(double v) {
  // Implemented on top of sum-allreduce machinery would change semantics;
  // use the window mechanism instead: everyone exposes, everyone maxes.
  expose(std::span<const double>(&v, 1));
  double m = v;
  for (int r = 0; r < size(); ++r) {
    double peer_v = 0.0;
    peer_read(r, 0, std::span<double>(&peer_v, 1));
    m = std::max(m, peer_v);
  }
  close_epoch();
  return m;
}

void Comm::expose(std::span<const double> window) {
  obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kHaloExpose);
  team_->windows_[static_cast<std::size_t>(rank_)] = window;
  team_->barrier_impl();  // opens the epoch: all windows published
}

void Comm::peer_read(int peer, std::size_t offset,
                     std::span<double> out) const {
  obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kHaloPeerRead);
  PIPESCG_CHECK(peer >= 0 && peer < size(), "peer_read peer out of range");
  const std::span<const double>& w =
      team_->windows_[static_cast<std::size_t>(peer)];
  PIPESCG_CHECK(offset + out.size() <= w.size(),
                "peer_read outside exposed window");
  std::copy(w.begin() + static_cast<std::ptrdiff_t>(offset),
            w.begin() + static_cast<std::ptrdiff_t>(offset + out.size()),
            out.begin());
}

void Comm::close_epoch() {
  obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kHaloClose);
  team_->barrier_impl();  // all reads done before windows may change
}

void Comm::exchange(std::span<const GhostPull> pulls,
                    std::span<const double> window,
                    std::span<double> ghosts) {
  expose(window);
  std::size_t volume = 0;
  for (const GhostPull& pull : pulls) {
    PIPESCG_CHECK(pull.local_offset + pull.length <= ghosts.size(),
                  "ghost pull outside the ghost buffer");
    peer_read(pull.peer, pull.remote_offset,
              ghosts.subspan(pull.local_offset, pull.length));
    volume += pull.length;
  }
  close_epoch();
  if (obs::Profiler* prof = obs::Profiler::current()) {
    obs::Profiler::Counters& c = prof->counters();
    ++c.halo_epochs;
    c.halo_messages += pulls.size();
    c.halo_volume_doubles += volume;
  }
}

}  // namespace pipescg::par
