#include "pipescg/sparse/stencil.hpp"

#include <cmath>

#include "pipescg/base/error.hpp"
#include "pipescg/sparse/coo_builder.hpp"

namespace pipescg::sparse {

std::size_t Stencil2D::point_count() const {
  std::size_t c = 0;
  for (double w : weights)
    if (w != 0.0) ++c;
  return c;
}

std::size_t Stencil3D::point_count() const {
  std::size_t c = 0;
  for (double w : weights)
    if (w != 0.0) ++c;
  return c;
}

Stencil2D stencil_poisson5() {
  Stencil2D st(1);
  st.at(0, 0) = 4.0;
  st.at(-1, 0) = st.at(1, 0) = st.at(0, -1) = st.at(0, 1) = -1.0;
  return st;
}

Stencil2D stencil_poisson9() {
  // Compact 9-point Laplacian: 8/3 center, -1/3 edge, -1/3 corner scaled.
  Stencil2D st(1);
  for (int dj = -1; dj <= 1; ++dj)
    for (int di = -1; di <= 1; ++di) {
      if (di == 0 && dj == 0) {
        st.at(di, dj) = 8.0 / 3.0;
      } else if (di == 0 || dj == 0) {
        st.at(di, dj) = -1.0 / 3.0;
      } else {
        st.at(di, dj) = -1.0 / 3.0;
      }
    }
  return st;
}

Stencil3D stencil_poisson7() {
  Stencil3D st(1);
  st.at(0, 0, 0) = 6.0;
  st.at(-1, 0, 0) = st.at(1, 0, 0) = -1.0;
  st.at(0, -1, 0) = st.at(0, 1, 0) = -1.0;
  st.at(0, 0, -1) = st.at(0, 0, 1) = -1.0;
  return st;
}

Stencil3D stencil_poisson27() {
  // Tensor-product of the 1D [-1, 2, -1] Laplacian with [1/8, 6/8, 1/8]
  // mass factors: A = K (x) M (x) M + M (x) K (x) M + M (x) M (x) K.
  // (Mass weight 1/8 rather than the FEM 1/6: the 1/6 choice makes the six
  // face couplings cancel exactly, collapsing the stencil to 21 points.)
  const double k[3] = {-1.0, 2.0, -1.0};
  const double m[3] = {1.0 / 8.0, 6.0 / 8.0, 1.0 / 8.0};
  Stencil3D st(1);
  for (int dk = -1; dk <= 1; ++dk)
    for (int dj = -1; dj <= 1; ++dj)
      for (int di = -1; di <= 1; ++di)
        st.at(di, dj, dk) = k[di + 1] * m[dj + 1] * m[dk + 1] +
                            m[di + 1] * k[dj + 1] * m[dk + 1] +
                            m[di + 1] * m[dj + 1] * k[dk + 1];
  return st;
}

CsrMatrix assemble_stencil2d(const Stencil2D& st, std::size_t nx,
                             std::size_t ny, const std::string& name) {
  PIPESCG_CHECK(nx > 0 && ny > 0, "grid dimensions must be positive");
  const std::size_t n = nx * ny;
  CooBuilder builder(n, n);
  builder.reserve(n * st.point_count());
  const int r = st.reach;
  for (std::size_t j = 0; j < ny; ++j) {
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t row = j * nx + i;
      for (int dj = -r; dj <= r; ++dj) {
        const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(j) + dj;
        if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(ny)) continue;
        for (int di = -r; di <= r; ++di) {
          const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i) + di;
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(nx)) continue;
          const double w = st.at(di, dj);
          if (w == 0.0) continue;
          builder.add(row,
                      static_cast<std::size_t>(jj) * nx +
                          static_cast<std::size_t>(ii),
                      w);
        }
      }
    }
  }
  CsrMatrix m = builder.build(name);
  m.set_grid_info(GridKind::kGrid2d, nx, ny, 1, st.reach);
  return m;
}

CsrMatrix assemble_stencil3d(const Stencil3D& st, std::size_t nx,
                             std::size_t ny, std::size_t nz,
                             const std::string& name) {
  PIPESCG_CHECK(nx > 0 && ny > 0 && nz > 0,
                "grid dimensions must be positive");
  const std::size_t n = nx * ny * nz;
  CooBuilder builder(n, n);
  builder.reserve(n * st.point_count());
  const int r = st.reach;
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        const std::size_t row = (k * ny + j) * nx + i;
        for (int dk = -r; dk <= r; ++dk) {
          const std::ptrdiff_t kk = static_cast<std::ptrdiff_t>(k) + dk;
          if (kk < 0 || kk >= static_cast<std::ptrdiff_t>(nz)) continue;
          for (int dj = -r; dj <= r; ++dj) {
            const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(j) + dj;
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(ny)) continue;
            for (int di = -r; di <= r; ++di) {
              const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i) + di;
              if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(nx)) continue;
              const double w = st.at(di, dj, dk);
              if (w == 0.0) continue;
              builder.add(row,
                          (static_cast<std::size_t>(kk) * ny +
                           static_cast<std::size_t>(jj)) *
                                  nx +
                              static_cast<std::size_t>(ii),
                          w);
            }
          }
        }
      }
    }
  }
  CsrMatrix m = builder.build(name);
  m.set_grid_info(GridKind::kGrid3d, nx, ny, nz, st.reach);
  return m;
}

}  // namespace pipescg::sparse
