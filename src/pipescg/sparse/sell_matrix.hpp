// SELL-C-sigma sparse matrix (Kreutzer et al., "A unified sparse matrix data
// format for efficient general sparse matrix-vector multiplication on modern
// processors with wide SIMD units").
//
// Rows are sorted by descending length inside windows of sigma rows, then
// grouped into chunks of C consecutive (sorted) rows; each chunk stores its
// entries column-major, padded to the chunk's widest row, so the SPMV inner
// loop runs C independent accumulators over contiguous memory -- exactly the
// shape a compiler auto-vectorizes.  Column indices are int32 (the remapped
// local index spaces of DistCsr/MatrixPowers are far below 2^31), cutting
// per-nonzero traffic from 16 to 12 bytes against the int64 CSR.
//
// Bitwise-identity contract (DESIGN.md section 14): the conversion keeps each
// row's entries in the SAME order as the source CSR, and the kernel tracks an
// "active row" count per chunk column so padded slots are never read -- no
// 0.0 * x arithmetic that could flip -0.0 signs or manufacture NaNs.  Every
// row therefore performs the exact additions the scalar CSR loop performs,
// making SellMatrix::apply bitwise identical to CsrMatrix::apply, which is
// what lets --format sell ride under solvers whose tests pin CSR results.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pipescg/sparse/csr_matrix.hpp"
#include "pipescg/sparse/format.hpp"
#include "pipescg/sparse/operator.hpp"

namespace pipescg::sparse {

class SellMatrix final : public LinearOperator {
 public:
  /// Chunk height: 8 doubles = one 64-byte cache line / AVX-512 register.
  static constexpr std::size_t kDefaultChunk = 8;

  SellMatrix() = default;

  /// Convert from CSR.  `chunk` is C; `sigma` the sort-window size in rows
  /// (0 picks 8 * C; it is rounded up to a multiple of C so windows never
  /// straddle chunks).  Row order *within* each source row is preserved.
  explicit SellMatrix(const CsrMatrix& csr, std::size_t chunk = kDefaultChunk,
                      std::size_t sigma = 0);

  std::size_t rows() const override { return nrows_; }
  std::size_t cols() const { return ncols_; }
  std::size_t nnz() const { return nnz_; }
  std::size_t chunk() const { return chunk_; }
  std::size_t sigma() const { return sigma_; }
  /// Stored slots including chunk padding (>= nnz).
  std::size_t slots() const { return vals_.size(); }
  /// Padding fraction: slots() / nnz -- 1.0 means no padding at all.
  double padding_ratio() const {
    return nnz_ == 0 ? 1.0
                     : static_cast<double>(vals_.size()) /
                           static_cast<double>(nnz_);
  }

  /// y = A x with x.size() == cols(), y.size() == rows().  Bitwise identical
  /// to the scalar CSR apply of the source matrix.
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// Split-source variant for DistCsr: columns < x_owned.size() read
  /// x_owned, the rest read ghosts[c - x_owned.size()] -- the same lookup
  /// DistCsr's scalar loop performs, so results stay bitwise identical.
  void apply_split(std::span<const double> x_owned,
                   std::span<const double> ghosts,
                   std::span<double> y) const;

  /// Bytes one apply moves (sparse::sell_apply_bytes over this shape).
  std::size_t bytes_per_apply() const { return bytes_per_apply_; }

  OperatorStats stats() const override { return stats_; }
  std::string name() const override { return name_; }

 private:
  std::size_t nrows_ = 0;
  std::size_t ncols_ = 0;
  std::size_t nnz_ = 0;
  std::size_t chunk_ = kDefaultChunk;
  std::size_t sigma_ = 0;
  std::size_t bytes_per_apply_ = 0;

  // chunk_ptr_[c] is the slot offset of chunk c; each chunk holds
  // width * C slots stored column-major (lane-contiguous), width =
  // (chunk_ptr_[c+1] - chunk_ptr_[c]) / C.
  std::vector<std::int64_t> chunk_ptr_;
  std::vector<std::int32_t> cols_;
  std::vector<double> vals_;
  // Sorted-row r holds source row perm_[r]; row_len_[r] is its length.
  // Rows are descending by length within every chunk (sigma-window sort),
  // which is what lets the kernel shrink the active-lane count instead of
  // reading padded slots.
  std::vector<std::uint32_t> perm_;
  std::vector<std::int32_t> row_len_;

  OperatorStats stats_;
  std::string name_;
};

}  // namespace pipescg::sparse
