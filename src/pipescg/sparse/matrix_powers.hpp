// Communication-avoiding matrix-powers kernel (MPK) for distributed CSR.
//
// The s-step solvers extend a monomial basis per outer iteration: s
// consecutive SPMVs y_k = A y_{k-1}.  Routed through DistCsr::apply that is
// s halo-exchange epochs -- s rounds of message latency per s-step block.
// This kernel performs the classic CA-Krylov trade (Demmel/Hoemmen "PA1";
// see DESIGN.md section 8): precompute the transitive depth-s closure of the
// ghost columns, pull that *deep* ghost region in ONE batched epoch
// (par::Comm::exchange), then run the s sweeps entirely locally, redundantly
// recomputing a shrinking onion of ghost rows so every sweep's inputs are
// available without further communication.
//
// Cost trade per s-block, relative to s DistCsr::apply calls:
//   communication:  1 x (epoch + runs(deep))    vs  s x (epoch + runs(1))
//   ghost volume:   sum of layers 1..s          vs  s x layer 1
//   extra compute:  sum_{l=1..s-1} (s-l) * nnz(ghost rows at layer l)
// which wins whenever message latency (the epoch) dominates the redundant
// flops -- the latency-dominated strong-scaling regime the paper targets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pipescg/par/comm.hpp"
#include "pipescg/sparse/csr_matrix.hpp"
#include "pipescg/sparse/format.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/sell_matrix.hpp"

namespace pipescg::sparse {

/// Depth-s matrix-powers kernel over a row-block partition of a square CSR
/// matrix.  Construction is local (every rank builds its own instance from
/// the replicated global structure, exactly like DistCsr); apply() is
/// collective over the team.
class MatrixPowers {
 public:
  /// Build rank `rank`'s kernel of depth `depth` (the largest s-block it can
  /// serve).  Precomputes the ghost-layer closure: BFS layers 1..depth of
  /// the column-adjacency graph seeded at this rank's rows, the remapped
  /// local CSR, the redundant ghost-row CSR (layers 1..depth-1, grouped by
  /// layer), and the coalesced pull list for the one deep exchange.
  /// `format` picks the storage of the OWNED sweep: kSell converts the
  /// remapped owned CSR to SELL-C-sigma (bitwise-identical results).  The
  /// redundant ghost-row onion stays raw CSR either way -- its rows are
  /// processed once per sweep in owner order and are far too few to repay a
  /// chunked layout.
  MatrixPowers(const CsrMatrix& global, const Partition& partition, int rank,
               int depth, SparseFormat format = SparseFormat::kCsr);

  /// Largest power block apply() can produce.
  int depth() const { return depth_; }
  /// Rows this rank owns.
  std::size_t local_rows() const { return nlocal_; }
  /// Doubles pulled by the one deep exchange (ghost layers 1..depth).
  std::size_t deep_ghost_count() const { return ghost_globals_.size(); }
  /// Coalesced ghost runs (messages) in the one exchange.
  std::size_t halo_messages() const { return pulls_.size(); }
  /// Redundantly stored ghost rows (layers 1..depth-1).
  std::size_t ghost_row_count() const { return ghost_row_target_.size(); }
  /// Owned-sweep storage format.
  SparseFormat format() const { return format_; }
  /// Total redundant nonzeros processed by one full-depth apply():
  /// layer-l rows are recomputed (depth - l) times.
  std::size_t redundant_nnz() const { return redundant_nnz_; }

  /// Bytes the local sweeps of one apply() with outs.size() == count move,
  /// from operator shape alone (owned CSR + redundant ghost-row onion +
  /// vector traffic) -- deterministic across reruns.  apply() accumulates
  /// exactly this into Profiler::Counters::spmv_bytes; bench_kernels uses it
  /// for measured GB/s.
  std::size_t bytes_per_block(std::size_t count) const;

  /// Reusable buffers for apply(); owned by the caller so apply() stays
  /// const and re-entrant per rank (mirrors DistCsr's ghost_scratch).
  struct Scratch {
    std::vector<double> cur;
    std::vector<double> next;
  };

  /// outs[k] = A^{k+1} x_local on this rank's rows, k = 0..outs.size()-1,
  /// with 1 <= outs.size() <= depth().  Collective: performs exactly one
  /// halo-exchange epoch on `comm` regardless of outs.size().  The exchange
  /// always pulls the full depth() closure (the pull list is persistent),
  /// so blocks shorter than depth() pay some unused volume; redundant
  /// ghost-row sweeps are trimmed to outs.size().  Results are bitwise
  /// identical to outs.size() chained DistCsr::apply calls: every redundant
  /// ghost row is stored in its owner's summation order, so the
  /// recomputation performs the exact same floating-point additions the
  /// owner performs on the chained path.
  void apply(par::Comm& comm, std::span<const double> x_local,
             std::span<const std::span<double>> outs, Scratch& scratch) const;

 private:
  Partition partition_;
  int rank_;
  int depth_;
  SparseFormat format_ = SparseFormat::kCsr;
  std::size_t nlocal_ = 0;

  // Ghost layers 1..depth, sorted by global id; level_[g] is the BFS layer
  // of ghost_globals_[g].
  std::vector<std::size_t> ghost_globals_;
  std::vector<int> level_;

  // Owned rows with columns remapped to [0, nlocal + deep_ghosts): owned
  // column c -> c - row_begin, ghost column -> nlocal + ghost index.
  CsrMatrix local_;
  SellMatrix sell_;  // SELL-C-sigma view of local_ (format_ == kSell only)
  // Redundant ghost rows (layers 1..depth-1) in (layer, global id) order,
  // same column remap but each row's entries ordered as its OWNER sums them
  // (bitwise-reproducible recomputation) -- raw CSR arrays rather than a
  // CsrMatrix, whose invariant requires sorted columns.  ghost_row_target_[i]
  // is where row i's result lands in the extended vector;
  // rows_through_layer_[l] is the number of ghost rows with layer <= l
  // (l = 0..depth-1), so the sweep for power k of an outs.size()==c block
  // processes rows [0, rows_through_layer_[c - k]).
  std::vector<CsrMatrix::Index> ghost_row_ptr_;
  std::vector<CsrMatrix::Index> ghost_cols_;
  std::vector<double> ghost_vals_;
  std::vector<std::size_t> ghost_row_target_;
  std::vector<std::size_t> rows_through_layer_;
  std::size_t redundant_nnz_ = 0;

  std::vector<par::GhostPull> pulls_;
};

}  // namespace pipescg::sparse
