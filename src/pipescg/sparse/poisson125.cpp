#include "pipescg/sparse/poisson125.hpp"

#include <string>

namespace pipescg::sparse {

Stencil3D stencil_poisson125() {
  // Pentadiagonal 1D factors, indices -2..2.
  const double k1[5] = {1.0 / 12.0, -16.0 / 12.0, 30.0 / 12.0, -16.0 / 12.0,
                        1.0 / 12.0};
  const double m1[5] = {1.0 / 120.0, 26.0 / 120.0, 66.0 / 120.0, 26.0 / 120.0,
                        1.0 / 120.0};
  Stencil3D st(2);
  for (int dk = -2; dk <= 2; ++dk)
    for (int dj = -2; dj <= 2; ++dj)
      for (int di = -2; di <= 2; ++di)
        st.at(di, dj, dk) =
            k1[di + 2] * m1[dj + 2] * m1[dk + 2] +
            m1[di + 2] * k1[dj + 2] * m1[dk + 2] +
            m1[di + 2] * m1[dj + 2] * k1[dk + 2];
  return st;
}

std::unique_ptr<StencilOperator3D> make_poisson125_operator(std::size_t n) {
  return std::make_unique<StencilOperator3D>(
      stencil_poisson125(), n, n, n,
      "poisson125_" + std::to_string(n) + "^3");
}

CsrMatrix make_poisson125_csr(std::size_t n) {
  return assemble_stencil3d(stencil_poisson125(), n, n, n,
                            "poisson125_" + std::to_string(n) + "^3");
}

}  // namespace pipescg::sparse
