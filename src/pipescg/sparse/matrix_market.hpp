// Matrix Market (.mtx) I/O for `coordinate real {general,symmetric}` files.
//
// The paper's SuiteSparse experiments (ecology2, thermal2, Serena) use this
// format; when the real files are available they can be dropped into the
// benches via --matrix, otherwise the synthetic surrogates from
// surrogates.hpp stand in (see DESIGN.md).
#pragma once

#include <iosfwd>
#include <string>

#include "pipescg/sparse/csr_matrix.hpp"

namespace pipescg::sparse {

/// Parse a Matrix Market stream.  Supported qualifiers:
/// `matrix coordinate real|integer general|symmetric`.
/// Symmetric files are expanded to full storage.
CsrMatrix read_matrix_market(std::istream& in, std::string name = "mtx");

/// Convenience file loader; throws pipescg::Error when unreadable.
CsrMatrix read_matrix_market_file(const std::string& path);

/// Write in `coordinate real general` format (1-based indices).
void write_matrix_market(std::ostream& out, const CsrMatrix& m);

}  // namespace pipescg::sparse
