// Local sparse-matrix storage format selector.
//
// The distributed operators (DistCsr, MatrixPowers) and the explicit-matrix
// examples/benches accept a SparseFormat so the local SPMV can run either as
// the scalar CSR loop or as the SELL-C-sigma kernel (sell_matrix.hpp).  Both
// formats produce bitwise-identical results (same per-row summation order),
// so the choice is purely a throughput knob -- see DESIGN.md section 14.
#pragma once

#include <string>

namespace pipescg::sparse {

enum class SparseFormat {
  kCsr,   // scalar compressed-sparse-row loop (the default)
  kSell,  // SELL-C-sigma chunks, vectorizable column-major storage
};

/// Parse "csr" | "sell"; throws on anything else.
SparseFormat parse_sparse_format(const std::string& name);

std::string to_string(SparseFormat format);

}  // namespace pipescg::sparse
