// Compressed Sparse Row matrix.
//
// The canonical explicit-matrix type of the library: square, real, and for
// the CG family expected to be symmetric positive definite (checked by
// helpers, not enforced at construction).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pipescg/sparse/operator.hpp"

namespace pipescg::sparse {

class CsrMatrix final : public LinearOperator {
 public:
  using Index = std::int64_t;

  CsrMatrix() = default;

  /// Takes ownership of CSR arrays.  row_ptr.size() == nrows + 1, column
  /// indices within [0, ncols); rows must be sorted by column and without
  /// duplicates (CooBuilder guarantees this).
  CsrMatrix(std::size_t nrows, std::size_t ncols,
            std::vector<Index> row_ptr, std::vector<Index> cols,
            std::vector<double> values, std::string name = "csr");

  std::size_t rows() const override { return nrows_; }
  std::size_t cols() const { return ncols_; }
  std::size_t nnz() const { return values_.size(); }

  std::span<const Index> row_ptr() const { return row_ptr_; }
  std::span<const Index> col_indices() const { return cols_; }
  std::span<const double> values() const { return values_; }
  std::span<double> mutable_values() { return values_; }

  void apply(std::span<const double> x, std::span<double> y) const override;

  OperatorStats stats() const override;
  std::string name() const override { return name_; }
  const CsrMatrix* as_csr() const override { return this; }

  /// Annotate grid geometry so the cost model prices halos correctly.
  void set_grid_info(GridKind kind, std::size_t nx, std::size_t ny,
                     std::size_t nz, int halo_width);

  /// Main diagonal (zero where absent).
  std::vector<double> diagonal() const;

  /// Entry lookup (binary search within the row); 0 when absent.
  double entry(std::size_t i, std::size_t j) const;

  /// Structural + numerical symmetry check: max |a_ij - a_ji|.
  double symmetry_error() const;

  /// Transpose (used by tests and AMG Galerkin products).
  CsrMatrix transposed() const;

  /// Row sums of |a_ij| off-diagonal (diagnostics, Chebyshev bounds).
  std::vector<double> offdiag_abs_row_sums() const;

  /// Dense conversion for small matrices in tests (throws if rows > limit).
  std::vector<double> to_dense(std::size_t limit = 2048) const;

 private:
  std::size_t nrows_ = 0;
  std::size_t ncols_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> cols_;
  std::vector<double> values_;
  std::string name_;
  GridKind kind_ = GridKind::kGeneral;
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  int halo_width_ = 1;
};

}  // namespace pipescg::sparse
