#include "pipescg/sparse/matrix_powers.hpp"

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/sparse/bytes_model.hpp"

namespace pipescg::sparse {
namespace {

// Remap a global column id into the extended index space [0, nlocal + G):
// owned columns keep their offset within the block, ghosts index the sorted
// deep-ghost list.
std::size_t remap_column(std::size_t col, std::size_t row_begin,
                         std::size_t row_end, std::size_t nlocal,
                         const std::vector<std::size_t>& ghost_globals) {
  if (col >= row_begin && col < row_end) return col - row_begin;
  const auto it =
      std::lower_bound(ghost_globals.begin(), ghost_globals.end(), col);
  PIPESCG_CHECK(it != ghost_globals.end() && *it == col,
                "matrix-powers column outside the ghost closure");
  return nlocal +
         static_cast<std::size_t>(it - ghost_globals.begin());
}

// Build one remapped CSR row, ordered exactly as the row's OWNER sums it:
// columns owned by the owner ascending, then the owner's ghosts ascending by
// global id.  Floating-point addition is not associative, so a redundant
// ghost row summed in any other order would drift a few ULP from the value
// its owner computes and ships on the chained path; with the owner's order
// every redundant recomputation performs the exact same additions, which is
// what makes an s-block bitwise identical to s chained applies.  For this
// rank's own rows (owner range == this rank's range) the key degenerates to
// the plain remapped-index sort DistCsr uses.
void append_remapped_row(const CsrMatrix& global, std::size_t row,
                         std::size_t row_begin, std::size_t row_end,
                         std::size_t owner_begin, std::size_t owner_end,
                         std::size_t nlocal,
                         const std::vector<std::size_t>& ghost_globals,
                         std::vector<std::tuple<std::uint64_t, CsrMatrix::Index,
                                                double>>& tmp,
                         std::vector<CsrMatrix::Index>& cols,
                         std::vector<double>& vals) {
  const auto rp = global.row_ptr();
  const auto ci = global.col_indices();
  const auto v = global.values();
  tmp.clear();
  for (auto k = rp[row]; k < rp[row + 1]; ++k) {
    const std::size_t col =
        static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
    const bool owner_owned = col >= owner_begin && col < owner_end;
    const std::uint64_t key =
        (owner_owned ? 0 : (std::uint64_t{1} << 63)) |
        static_cast<std::uint64_t>(col);
    tmp.emplace_back(key,
                     static_cast<CsrMatrix::Index>(remap_column(
                         col, row_begin, row_end, nlocal, ghost_globals)),
                     v[static_cast<std::size_t>(k)]);
  }
  std::sort(tmp.begin(), tmp.end());
  for (const auto& [key, c, val] : tmp) {
    cols.push_back(c);
    vals.push_back(val);
  }
}

}  // namespace

MatrixPowers::MatrixPowers(const CsrMatrix& global, const Partition& partition,
                           int rank, int depth, SparseFormat format)
    : partition_(partition), rank_(rank), depth_(depth), format_(format) {
  PIPESCG_CHECK(global.rows() == global.cols(),
                "matrix-powers operator must be square");
  PIPESCG_CHECK(global.rows() == partition.global_size(),
                "partition size mismatch");
  PIPESCG_CHECK(rank >= 0 && rank < partition.ranks(), "rank out of range");
  PIPESCG_CHECK(depth >= 1 && depth <= 16, "depth must be in [1, 16]");

  const std::size_t n = global.rows();
  const std::size_t row_begin = partition.begin(rank);
  const std::size_t row_end = partition.end(rank);
  nlocal_ = row_end - row_begin;
  const auto rp = global.row_ptr();
  const auto ci = global.col_indices();

  // BFS layering of the column-adjacency graph seeded at the owned block:
  // layer l holds the global ids first reachable in l hops.  Values of
  // layers 1..depth are pulled; rows of layers 1..depth-1 are recomputed
  // redundantly.
  std::vector<int> layer_of(n, -1);
  for (std::size_t i = row_begin; i < row_end; ++i) layer_of[i] = 0;
  std::vector<std::size_t> frontier;
  for (std::size_t i = row_begin; i < row_end; ++i) frontier.push_back(i);
  for (int layer = 1; layer <= depth; ++layer) {
    std::vector<std::size_t> next_frontier;
    for (const std::size_t row : frontier) {
      for (auto k = rp[row]; k < rp[row + 1]; ++k) {
        const std::size_t col =
            static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
        if (layer_of[col] < 0) {
          layer_of[col] = layer;
          next_frontier.push_back(col);
          ghost_globals_.push_back(col);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
  std::sort(ghost_globals_.begin(), ghost_globals_.end());
  level_.reserve(ghost_globals_.size());
  for (const std::size_t g : ghost_globals_)
    level_.push_back(layer_of[g]);

  // Remapped CSR of the owned rows over [0, nlocal + deep ghosts).
  const std::size_t ncols_ext = nlocal_ + ghost_globals_.size();
  std::vector<std::tuple<std::uint64_t, CsrMatrix::Index, double>> tmp;
  {
    std::vector<CsrMatrix::Index> lrp(nlocal_ + 1, 0);
    std::vector<CsrMatrix::Index> lci;
    std::vector<double> lv;
    for (std::size_t i = row_begin; i < row_end; ++i) {
      append_remapped_row(global, i, row_begin, row_end, row_begin, row_end,
                          nlocal_, ghost_globals_, tmp, lci, lv);
      lrp[i - row_begin + 1] = static_cast<CsrMatrix::Index>(lci.size());
    }
    local_ = CsrMatrix(nlocal_, ncols_ext, std::move(lrp), std::move(lci),
                       std::move(lv),
                       global.name() + "_mpk_rank" + std::to_string(rank));
  }
  if (format_ == SparseFormat::kSell) sell_ = SellMatrix(local_);

  // Redundant ghost rows in (layer, global id) order, grouped so a sweep can
  // process exactly the layers it still needs.  A layer-l row is recomputed
  // at sweeps k <= depth - l, hence (depth - l) times per full block.
  rows_through_layer_.assign(static_cast<std::size_t>(depth), 0);
  ghost_row_ptr_.assign(1, 0);
  for (int layer = 1; layer <= depth - 1; ++layer) {
    for (std::size_t g = 0; g < ghost_globals_.size(); ++g) {
      if (level_[g] != layer) continue;
      const int owner = partition.owner(ghost_globals_[g]);
      append_remapped_row(global, ghost_globals_[g], row_begin, row_end,
                          partition.begin(owner), partition.end(owner),
                          nlocal_, ghost_globals_, tmp, ghost_cols_,
                          ghost_vals_);
      ghost_row_ptr_.push_back(static_cast<CsrMatrix::Index>(
          ghost_cols_.size()));
      ghost_row_target_.push_back(nlocal_ + g);
      redundant_nnz_ +=
          static_cast<std::size_t>(depth - layer) *
          static_cast<std::size_t>(ghost_row_ptr_.back() -
                                   ghost_row_ptr_[ghost_row_ptr_.size() - 2]);
    }
    rows_through_layer_[static_cast<std::size_t>(layer)] =
        ghost_row_target_.size();
  }

  // Coalesce the deep ghost ids into per-owner contiguous pulls -- the
  // persistent run list replayed by every exchange.
  std::size_t g = 0;
  while (g < ghost_globals_.size()) {
    const int owner = partition.owner(ghost_globals_[g]);
    const std::size_t owner_begin = partition.begin(owner);
    std::size_t len = 1;
    while (g + len < ghost_globals_.size() &&
           ghost_globals_[g + len] == ghost_globals_[g] + len &&
           partition.owner(ghost_globals_[g + len]) == owner) {
      ++len;
    }
    pulls_.push_back(
        par::GhostPull{owner, ghost_globals_[g] - owner_begin, g, len});
    g += len;
  }
}

std::size_t MatrixPowers::bytes_per_block(std::size_t count) const {
  PIPESCG_CHECK(count >= 1 && count <= static_cast<std::size_t>(depth_),
                "matrix-powers block size exceeds kernel depth");
  // Every sweep streams the owned matrix plus the shrinking redundant
  // ghost-row onion, reads the extended vector, and writes its outputs --
  // the same per-sweep accounting as DistCsr::bytes_per_apply
  // (sparse/bytes_model.hpp).
  const std::size_t owned_bytes =
      format_ == SparseFormat::kSell
          ? sell_.bytes_per_apply()
          : csr_apply_bytes(nlocal_, nlocal_ + ghost_globals_.size(),
                            local_.nnz());
  std::size_t bytes = 0;
  for (std::size_t k = 1; k <= count; ++k) {
    const std::size_t grows = rows_through_layer_[count - k];
    const std::size_t gnnz = static_cast<std::size_t>(ghost_row_ptr_[grows]);
    bytes += owned_bytes +
             gnnz * (sizeof(double) + sizeof(CsrMatrix::Index)) +
             grows * (sizeof(CsrMatrix::Index) + sizeof(double));
  }
  return bytes;
}

void MatrixPowers::apply(par::Comm& comm, std::span<const double> x_local,
                         std::span<const std::span<double>> outs,
                         Scratch& scratch) const {
  const std::size_t count = outs.size();
  PIPESCG_CHECK(count >= 1 && count <= static_cast<std::size_t>(depth_),
                "matrix-powers block size exceeds kernel depth");
  PIPESCG_CHECK(x_local.size() == nlocal_, "matrix-powers input size mismatch");
  for (const std::span<double>& out : outs)
    PIPESCG_CHECK(out.size() == nlocal_,
                  "matrix-powers output size mismatch");

  const std::size_t next_size = nlocal_ + ghost_globals_.size();
  scratch.cur.resize(next_size);
  scratch.next.resize(next_size);
  std::copy(x_local.begin(), x_local.end(), scratch.cur.begin());

  // The one halo epoch of the whole block: pull ghost layers 1..depth.
  comm.exchange(pulls_, x_local,
                std::span<double>(scratch.cur).subspan(nlocal_));
  if (obs::Profiler* prof = obs::Profiler::current()) {
    ++prof->counters().mpk_blocks;
    prof->counters().spmv_bytes += bytes_per_block(count);
  }

  const auto sweep_rows = [](const CsrMatrix::Index* rp,
                             const CsrMatrix::Index* ci, const double* v,
                             std::size_t row_count,
                             const std::vector<double>& src, double* dst,
                             const std::size_t* targets) {
    for (std::size_t i = 0; i < row_count; ++i) {
      double acc = 0.0;
      for (auto k = rp[i]; k < rp[i + 1]; ++k)
        acc += v[static_cast<std::size_t>(k)] *
               src[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
      dst[targets == nullptr ? i : targets[i]] = acc;
    }
  };

  for (std::size_t k = 1; k <= count; ++k) {
    {
      obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kSpmvLocal);
      if (format_ == SparseFormat::kSell) {
        sell_.apply(scratch.cur,
                    std::span<double>(scratch.next.data(), nlocal_));
      } else {
        sweep_rows(local_.row_ptr().data(), local_.col_indices().data(),
                   local_.values().data(), nlocal_, scratch.cur,
                   scratch.next.data(), nullptr);
      }
      // Redundant onion: ghost rows still needed by the remaining sweeps
      // (layers 1..count-k).
      sweep_rows(ghost_row_ptr_.data(), ghost_cols_.data(),
                 ghost_vals_.data(), rows_through_layer_[count - k],
                 scratch.cur, scratch.next.data(), ghost_row_target_.data());
    }
    std::copy(scratch.next.begin(),
              scratch.next.begin() + static_cast<std::ptrdiff_t>(nlocal_),
              outs[k - 1].begin());
    std::swap(scratch.cur, scratch.next);
  }
}

}  // namespace pipescg::sparse
