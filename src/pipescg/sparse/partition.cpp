#include "pipescg/sparse/partition.hpp"

#include <algorithm>

#include "pipescg/base/error.hpp"

namespace pipescg::sparse {

Partition::Partition(std::size_t n, int ranks) : n_(n) {
  PIPESCG_CHECK(ranks >= 1, "partition needs at least one rank");
  offsets_.resize(static_cast<std::size_t>(ranks) + 1);
  for (int r = 0; r < ranks; ++r)
    offsets_[static_cast<std::size_t>(r)] = par::block_range(n, r, ranks).begin;
  offsets_[static_cast<std::size_t>(ranks)] = n;
}

int Partition::owner(std::size_t i) const {
  PIPESCG_CHECK(i < n_, "owner query out of range");
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), i);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

}  // namespace pipescg::sparse
