// Shared bytes-moved model for one local SPMV.
//
// One formula, used by DistCsr::bytes_per_apply, MatrixPowers::bytes_per_block
// and the bench_kernels GB/s accounting, so the measured-throughput gauges
// (pipescg_spmv_throughput_bytes_per_second) and the microbenchmark numbers
// can never drift apart: matrix structure streamed once, every source-vector
// entry read at least once, every output written once.  The numbers are
// derived from operator shape alone, hence deterministic across reruns.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pipescg::sparse {

/// Bytes one scalar-CSR apply moves: values (8 B) + column indices (8 B,
/// CsrMatrix::Index is int64) per nonzero, the row pointer once per row,
/// `cols_read` source entries read (owned + ghosts for a distributed slice,
/// simply ncols for a serial apply), `rows` results written.
inline std::size_t csr_apply_bytes(std::size_t rows, std::size_t cols_read,
                                   std::size_t nnz) {
  return nnz * (sizeof(double) + sizeof(std::int64_t)) +
         (rows + 1) * sizeof(std::int64_t) +
         cols_read * sizeof(double) + rows * sizeof(double);
}

/// Bytes one SELL-C-sigma apply moves: every stored slot (nonzeros plus the
/// chunk padding -- padding is streamed even though it is never multiplied)
/// carries an 8 B value and a 4 B int32 column, plus the per-chunk offsets,
/// per-row lengths and permutation, the source reads and the result writes.
/// `slots` includes padding; `chunks` = ceil(rows / C).
inline std::size_t sell_apply_bytes(std::size_t rows, std::size_t cols_read,
                                    std::size_t slots, std::size_t chunks) {
  return slots * (sizeof(double) + sizeof(std::int32_t)) +
         (chunks + 1) * sizeof(std::int64_t) +
         rows * (sizeof(std::int32_t) + sizeof(std::uint32_t)) +
         cols_read * sizeof(double) + rows * sizeof(double);
}

}  // namespace pipescg::sparse
