// Distributed matrix-free 3D stencil operator.
//
// The paper's primary workload (the 125-pt Poisson operator) distributed by
// z-slabs: each rank owns a contiguous range of z-planes and exchanges
// `reach` ghost planes with its up/down neighbors per apply -- the classic
// structured-grid halo pattern.  Matrix-free: no CSR storage, so the
// 100^3-scale problems fit easily.
//
// Use with the SpmdEngine through the DistStencilApplier adapter in tests/
// examples: vectors are the rank's owned planes, flattened.
#pragma once

#include <vector>

#include "pipescg/par/comm.hpp"
#include "pipescg/sparse/stencil.hpp"

namespace pipescg::sparse {

class DistStencil3D {
 public:
  /// Grid nx x ny x nz partitioned into `ranks` z-slabs; this instance is
  /// rank `rank`'s part.  Every rank must own at least `reach` planes
  /// (i.e. nz >= ranks * reach) so neighbor exchanges stay nearest-neighbor.
  DistStencil3D(Stencil3D stencil, std::size_t nx, std::size_t ny,
                std::size_t nz, int rank, int ranks);

  std::size_t local_rows() const { return nx_ * ny_ * local_planes(); }
  std::size_t global_rows() const { return nx_ * ny_ * nz_; }
  std::size_t local_planes() const { return z_end_ - z_begin_; }
  std::size_t z_begin() const { return z_begin_; }

  /// y_local = A x_local with ghost-plane exchange over `comm`.
  /// Collective: all ranks of the slab partition must call it.
  void apply(par::Comm& comm, std::span<const double> x_local,
             std::span<double> y_local);

  OperatorStats stats() const;

 private:
  double stencil_at(int di, int dj, int dk) const {
    return stencil_.at(di, dj, dk);
  }

  Stencil3D stencil_;
  std::size_t nx_, ny_, nz_;
  int rank_, ranks_;
  std::size_t z_begin_, z_end_;
  // Owned planes plus `reach` ghost planes on each side.
  std::vector<double> ghosted_;
};

}  // namespace pipescg::sparse
