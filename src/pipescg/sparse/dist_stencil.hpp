// Distributed matrix-free 3D stencil operator.
//
// The paper's primary workload (the 125-pt Poisson operator) distributed by
// z-slabs: each rank owns a contiguous range of z-planes and exchanges
// `reach` ghost planes with its up/down neighbors per apply -- the classic
// structured-grid halo pattern.  Matrix-free: no CSR storage, so the
// 100^3-scale problems fit easily.
//
// Besides the single-SPMV apply(), the operator supports a matrix-powers
// block apply_powers() (see DESIGN.md section 8): one deep exchange of
// depth * reach ghost planes per side, then `depth` stencil sweeps over a
// shrinking plane range with no further communication.  On a structured
// grid the ghost-layer closure is exactly "more planes", so unlike the
// general-CSR sparse::MatrixPowers no ghost-row structure is needed and the
// redundant compute is the closed-form sum of the onion plane counts.
#pragma once

#include <span>
#include <vector>

#include "pipescg/par/comm.hpp"
#include "pipescg/sparse/stencil.hpp"

namespace pipescg::sparse {

/// One rank's z-slab of a 3D stencil operator plus precomputed halo pull
/// lists for both single applies and depth-s matrix-powers blocks.
class DistStencil3D {
 public:
  /// Grid nx x ny x nz partitioned into `ranks` z-slabs; this instance is
  /// rank `rank`'s part.  Every rank must own at least `reach` planes
  /// (i.e. nz >= ranks * reach) so single-apply exchanges stay
  /// nearest-neighbor.  `powers_depth` is the largest matrix-powers block
  /// apply_powers() can serve (1 = powers disabled beyond plain apply); the
  /// deep ghost region of depth * reach planes per side may span multiple
  /// peer slabs -- the pull list handles that.
  DistStencil3D(Stencil3D stencil, std::size_t nx, std::size_t ny,
                std::size_t nz, int rank, int ranks, int powers_depth = 1);

  /// Rows this rank owns (owned planes, flattened).
  std::size_t local_rows() const { return nx_ * ny_ * local_planes(); }
  /// Rows of the global operator.
  std::size_t global_rows() const { return nx_ * ny_ * nz_; }
  /// Owned z-planes.
  std::size_t local_planes() const { return z_end_ - z_begin_; }
  /// First owned global z-plane.
  std::size_t z_begin() const { return z_begin_; }
  /// Largest block apply_powers() accepts.
  int powers_depth() const { return powers_depth_; }
  /// Doubles pulled by one deep exchange (both sides, clipped at the
  /// domain boundary).
  std::size_t deep_ghost_count() const;

  /// y_local = A x_local with ghost-plane exchange over `comm`.
  /// Collective: all ranks of the slab partition must call it.  Performs
  /// exactly one batched halo-exchange epoch (par::Comm::exchange).
  void apply(par::Comm& comm, std::span<const double> x_local,
             std::span<double> y_local);

  /// outs[k] = A^{k+1} x_local on the owned planes, k = 0..outs.size()-1,
  /// with 1 <= outs.size() <= powers_depth().  Collective; performs exactly
  /// one halo-exchange epoch pulling the full depth * reach ghost planes,
  /// then outs.size() local sweeps over a shrinking plane range.  Results
  /// are bitwise identical to outs.size() chained apply() calls: both paths
  /// run the same sweep kernel on the same values in the same order.
  void apply_powers(par::Comm& comm, std::span<const double> x_local,
                    std::span<const std::span<double>> outs);

  OperatorStats stats() const;

 private:
  double stencil_at(int di, int dj, int dk) const {
    return stencil_.at(di, dj, dk);
  }

  // Apply the stencil to global planes [gz_lo, gz_hi), reading plane gz of
  // the source at src + (gz - src_base_z) * nx * ny and writing plane gz of
  // the destination at dst + (gz - dst_base_z) * nx * ny.  x/y/z offsets
  // falling outside the global grid contribute nothing (Dirichlet
  // truncation), which also keeps never-pulled out-of-domain ghost planes
  // unread.
  void stencil_sweep(std::size_t gz_lo, std::size_t gz_hi,
                     std::ptrdiff_t src_base_z, const double* src,
                     std::ptrdiff_t dst_base_z, double* dst) const;

  Stencil3D stencil_;
  std::size_t nx_, ny_, nz_;
  int rank_, ranks_;
  std::size_t z_begin_, z_end_;
  int powers_depth_;
  // Owned planes plus `reach` ghost planes on each side (apply scratch).
  std::vector<double> ghosted_;
  // Owned planes plus powers_depth * reach ghost planes on each side
  // (apply_powers ping-pong scratch).
  std::vector<double> deep_cur_, deep_next_;
  // Persistent pull lists: depth-1 halo into ghosted_, depth-s halo into
  // the deep buffers.
  std::vector<par::GhostPull> pulls_;
  std::vector<par::GhostPull> deep_pulls_;
};

}  // namespace pipescg::sparse
