// Row-block partition bookkeeping shared by the distributed matrix and the
// SPMD engine: who owns which rows, and owner lookup for a global index.
#pragma once

#include <cstddef>
#include <vector>

#include "pipescg/par/comm.hpp"

namespace pipescg::sparse {

class Partition {
 public:
  Partition() = default;

  /// Balanced contiguous row blocks for `ranks` ranks over n rows: the
  /// first n % ranks blocks get one extra row.
  Partition(std::size_t n, int ranks);

  /// Total rows partitioned.
  std::size_t global_size() const { return n_; }
  /// Number of row blocks.
  int ranks() const { return static_cast<int>(offsets_.size()) - 1; }

  /// First global row owned by `rank`.
  std::size_t begin(int rank) const { return offsets_[rank]; }
  /// One past the last global row owned by `rank`.
  std::size_t end(int rank) const { return offsets_[rank + 1]; }
  /// Rows owned by `rank`.
  std::size_t local_size(int rank) const { return end(rank) - begin(rank); }

  /// Owner of global row `i` (binary search over offsets).
  int owner(std::size_t i) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> offsets_;  // ranks + 1 entries
};

}  // namespace pipescg::sparse
