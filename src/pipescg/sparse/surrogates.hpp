// Synthetic surrogates for the paper's SuiteSparse matrices.
//
// The offline environment has no SuiteSparse files; these generators produce
// SPD matrices matched in size, sparsity, and the two properties the paper's
// experiments exercise (see DESIGN.md "Substitutions"):
//  * ecology2-like: extremely ill-conditioned 5-pt 2D diffusion with smooth
//    plus jumpy conductances (landscape-resistance model).  Pipelined s-step
//    variants stagnate before rtol 1e-5, matching Fig. 2's use of 1e-2.
//  * thermal2-like: 9-pt unstructured-flavoured thermal diffusion with
//    material jumps (steady-state thermal problem, moderate conditioning).
//  * serena-like: 3D 27-pt structural-mechanics-flavoured operator with
//    stiff inclusions; highest nnz/row of the trio, giving the overlap
//    headroom Table II attributes to Serena.
//
// Every generator takes a scale knob so tests run tiny instances and benches
// run instances near the papers' dimensions.
#pragma once

#include <cstdint>

#include "pipescg/sparse/csr_matrix.hpp"

namespace pipescg::sparse {

/// 5-point anisotropic diffusion on an nx x ny grid with lognormal
/// conductance field; near-singular (Neumann-like + tiny shift).
CsrMatrix make_ecology2_like(std::size_t nx, std::size_t ny,
                             std::uint64_t seed = 20021);

/// 9-point diffusion with piecewise-constant jump coefficients of ratio
/// `jump` arranged in random blobs.
CsrMatrix make_thermal2_like(std::size_t nx, std::size_t ny,
                             double jump = 30.0, std::uint64_t seed = 20022);

/// 27-point 3D operator with stiff spherical inclusions.
CsrMatrix make_serena_like(std::size_t n, double stiff_ratio = 50.0,
                           std::uint64_t seed = 20023);

}  // namespace pipescg::sparse
