#include "pipescg/sparse/sell_matrix.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "pipescg/base/error.hpp"
#include "pipescg/sparse/bytes_model.hpp"

// The lane loops below have a compile-time trip count (the chunk height C),
// but -O2 alone does not unroll them -- and the unroll is the whole point:
// C independent accumulator chains instead of CSR's one serial reduction.
#if defined(__clang__)
#define PIPESCG_UNROLL_LANES _Pragma("clang loop unroll(full)")
#elif defined(__GNUC__)
#define PIPESCG_UNROLL_LANES _Pragma("GCC unroll 32")
#else
#define PIPESCG_UNROLL_LANES
#endif

namespace pipescg::sparse {
namespace {

// Upper bound on the chunk height so the accumulators fit on the stack.
constexpr std::size_t kMaxChunk = 64;

}  // namespace

SparseFormat parse_sparse_format(const std::string& name) {
  if (name == "csr") return SparseFormat::kCsr;
  if (name == "sell") return SparseFormat::kSell;
  PIPESCG_FAIL("unknown sparse format '" + name + "' (expected csr|sell)");
}

std::string to_string(SparseFormat format) {
  return format == SparseFormat::kSell ? "sell" : "csr";
}

SellMatrix::SellMatrix(const CsrMatrix& csr, std::size_t chunk,
                       std::size_t sigma)
    : nrows_(csr.rows()),
      ncols_(csr.cols()),
      nnz_(csr.nnz()),
      chunk_(chunk),
      stats_(csr.stats()),
      name_(csr.name() + "_sell") {
  PIPESCG_CHECK(chunk >= 1 && chunk <= kMaxChunk,
                "SELL chunk height out of range [1, 64]");
  PIPESCG_CHECK(ncols_ < static_cast<std::size_t>(
                             std::numeric_limits<std::int32_t>::max()),
                "SELL int32 column indices need cols < 2^31");
  if (sigma == 0) sigma = 8 * chunk_;
  // Windows must cover whole chunks, or a window boundary could leave an
  // ascending length pair inside a chunk and break the active-lane kernel.
  sigma_ = ((sigma + chunk_ - 1) / chunk_) * chunk_;

  const auto rp = csr.row_ptr();
  const auto ci = csr.col_indices();
  const auto v = csr.values();

  // Sort rows by descending length inside each sigma window.  stable_sort
  // keeps equal-length rows in source order, so the layout (and thus the
  // exact write order of y) is deterministic.
  perm_.resize(nrows_);
  std::iota(perm_.begin(), perm_.end(), 0u);
  const auto row_length = [&](std::uint32_t r) {
    return rp[r + 1] - rp[r];
  };
  for (std::size_t w = 0; w < nrows_; w += sigma_) {
    const std::size_t end = std::min(w + sigma_, nrows_);
    std::stable_sort(perm_.begin() + static_cast<std::ptrdiff_t>(w),
                     perm_.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return row_length(a) > row_length(b);
                     });
  }
  row_len_.resize(nrows_);
  for (std::size_t r = 0; r < nrows_; ++r)
    row_len_[r] = static_cast<std::int32_t>(row_length(perm_[r]));

  // Chunk layout: width = longest row in the chunk, C lanes even for the
  // tail chunk (the spare lanes are zero-length rows the kernel skips).
  const std::size_t chunks = (nrows_ + chunk_ - 1) / chunk_;
  chunk_ptr_.assign(chunks + 1, 0);
  for (std::size_t c = 0; c < chunks; ++c) {
    // Rows are descending within the chunk, so lane 0 is the widest.
    const std::int64_t width = c * chunk_ < nrows_ ? row_len_[c * chunk_] : 0;
    chunk_ptr_[c + 1] =
        chunk_ptr_[c] + width * static_cast<std::int64_t>(chunk_);
  }
  cols_.assign(static_cast<std::size_t>(chunk_ptr_[chunks]), 0);
  vals_.assign(static_cast<std::size_t>(chunk_ptr_[chunks]), 0.0);
  for (std::size_t r = 0; r < nrows_; ++r) {
    const std::size_t c = r / chunk_;
    const std::size_t lane = r % chunk_;
    const std::size_t base = static_cast<std::size_t>(chunk_ptr_[c]);
    const auto start = rp[perm_[r]];
    // Entries keep the source row's order: slot j of this lane is the j-th
    // CSR entry of the row, so the kernel's accumulation sequence matches
    // the scalar CSR loop addition for addition.
    for (std::int64_t j = 0; j < row_len_[r]; ++j) {
      const std::size_t slot =
          base + static_cast<std::size_t>(j) * chunk_ + lane;
      cols_[slot] = static_cast<std::int32_t>(
          ci[static_cast<std::size_t>(start + j)]);
      vals_[slot] = v[static_cast<std::size_t>(start + j)];
    }
  }

  bytes_per_apply_ = sell_apply_bytes(nrows_, ncols_, vals_.size(), chunks);
}

namespace {

// Kernel over a column-lookup functor (whole-vector or split owned/ghost
// source), specialized on a compile-time chunk height so the lane loop
// fully unrolls into C independent accumulator chains -- that unroll is the
// SELL payoff: the scalar CSR loop is one latency-chained serial reduction
// per row, this is C reductions in flight.  Each chunk splits into a
// rectangular fast path (every lane active through the chunk's shortest
// row, branch-free) and a ragged tail where the active-lane prefix shrinks.
// Rows in a chunk are descending by length, so the rows still active at
// slot column j form a prefix; shrinking `active` instead of masking means
// padded slots are never read -- no 0 * x arithmetic, hence bitwise
// identity with the CSR loop even under injected NaN/Inf values.
template <std::size_t C, typename Lookup>
void sell_apply_fixed(std::size_t nrows, const std::int64_t* chunk_ptr,
                      const std::int32_t* cols, const double* vals,
                      const std::uint32_t* perm, const std::int32_t* row_len,
                      Lookup&& lookup, std::span<double> y) {
  const std::size_t chunks = (nrows + C - 1) / C;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t r0 = c * C;
    const std::size_t lanes = std::min(C, nrows - r0);
    const std::int64_t width =
        (chunk_ptr[c + 1] - chunk_ptr[c]) / static_cast<std::int64_t>(C);
    const double* __restrict__ vslab =
        vals + static_cast<std::size_t>(chunk_ptr[c]);
    const std::int32_t* __restrict__ cslab =
        cols + static_cast<std::size_t>(chunk_ptr[c]);
    double acc[C];
    PIPESCG_UNROLL_LANES
    for (std::size_t l = 0; l < C; ++l) acc[l] = 0.0;
    const std::int64_t wmin = lanes == C ? row_len[r0 + C - 1] : 0;
    std::int64_t j = 0;
    for (; j < wmin; ++j) {
      const double* __restrict__ vcol = vslab + static_cast<std::size_t>(j) * C;
      const std::int32_t* __restrict__ ccol =
          cslab + static_cast<std::size_t>(j) * C;
      PIPESCG_UNROLL_LANES
      for (std::size_t l = 0; l < C; ++l)
        acc[l] += vcol[l] * lookup(static_cast<std::size_t>(ccol[l]));
    }
    std::size_t active = lanes;
    for (; j < width; ++j) {
      while (active > 0 && row_len[r0 + active - 1] <= j) --active;
      const double* __restrict__ vcol = vslab + static_cast<std::size_t>(j) * C;
      const std::int32_t* __restrict__ ccol =
          cslab + static_cast<std::size_t>(j) * C;
      for (std::size_t l = 0; l < active; ++l)
        acc[l] += vcol[l] * lookup(static_cast<std::size_t>(ccol[l]));
    }
    for (std::size_t l = 0; l < lanes; ++l) y[perm[r0 + l]] = acc[l];
  }
}

// Fallback for chunk heights without a specialization (same arithmetic,
// runtime lane bound).
template <typename Lookup>
void sell_apply_generic(std::size_t nrows, std::size_t chunk_height,
                        const std::int64_t* chunk_ptr,
                        const std::int32_t* cols, const double* vals,
                        const std::uint32_t* perm, const std::int32_t* row_len,
                        Lookup&& lookup, std::span<double> y) {
  const std::size_t chunks = (nrows + chunk_height - 1) / chunk_height;
  double acc[kMaxChunk];
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t r0 = c * chunk_height;
    const std::size_t lanes = std::min(chunk_height, nrows - r0);
    const std::int64_t width =
        (chunk_ptr[c + 1] - chunk_ptr[c]) /
        static_cast<std::int64_t>(chunk_height);
    for (std::size_t l = 0; l < lanes; ++l) acc[l] = 0.0;
    std::size_t active = lanes;
    const double* __restrict__ vslab =
        vals + static_cast<std::size_t>(chunk_ptr[c]);
    const std::int32_t* __restrict__ cslab =
        cols + static_cast<std::size_t>(chunk_ptr[c]);
    for (std::int64_t j = 0; j < width; ++j) {
      while (active > 0 && row_len[r0 + active - 1] <= j) --active;
      const double* __restrict__ vcol =
          vslab + static_cast<std::size_t>(j) * chunk_height;
      const std::int32_t* __restrict__ ccol =
          cslab + static_cast<std::size_t>(j) * chunk_height;
      for (std::size_t l = 0; l < active; ++l)
        acc[l] += vcol[l] * lookup(static_cast<std::size_t>(ccol[l]));
    }
    for (std::size_t l = 0; l < lanes; ++l) y[perm[r0 + l]] = acc[l];
  }
}

template <typename Lookup>
void sell_apply_impl(std::size_t nrows, std::size_t chunk_height,
                     const std::int64_t* chunk_ptr, const std::int32_t* cols,
                     const double* vals, const std::uint32_t* perm,
                     const std::int32_t* row_len, Lookup&& lookup,
                     std::span<double> y) {
  switch (chunk_height) {
    case 4:
      sell_apply_fixed<4>(nrows, chunk_ptr, cols, vals, perm, row_len,
                          std::forward<Lookup>(lookup), y);
      return;
    case 8:
      sell_apply_fixed<8>(nrows, chunk_ptr, cols, vals, perm, row_len,
                          std::forward<Lookup>(lookup), y);
      return;
    case 16:
      sell_apply_fixed<16>(nrows, chunk_ptr, cols, vals, perm, row_len,
                           std::forward<Lookup>(lookup), y);
      return;
    case 32:
      sell_apply_fixed<32>(nrows, chunk_ptr, cols, vals, perm, row_len,
                           std::forward<Lookup>(lookup), y);
      return;
    default:
      sell_apply_generic(nrows, chunk_height, chunk_ptr, cols, vals, perm,
                         row_len, std::forward<Lookup>(lookup), y);
  }
}

}  // namespace

void SellMatrix::apply(std::span<const double> x, std::span<double> y) const {
  PIPESCG_CHECK(x.size() == ncols_ && y.size() == nrows_,
                "sell spmv size mismatch");
  const double* __restrict__ xp = x.data();
  sell_apply_impl(nrows_, chunk_, chunk_ptr_.data(), cols_.data(),
                  vals_.data(), perm_.data(), row_len_.data(),
                  [xp](std::size_t cidx) { return xp[cidx]; }, y);
}

void SellMatrix::apply_split(std::span<const double> x_owned,
                             std::span<const double> ghosts,
                             std::span<double> y) const {
  PIPESCG_CHECK(x_owned.size() + ghosts.size() == ncols_ &&
                    y.size() == nrows_,
                "sell split spmv size mismatch");
  const double* __restrict__ xp = x_owned.data();
  const double* __restrict__ gp = ghosts.data();
  const std::size_t nowned = x_owned.size();
  sell_apply_impl(nrows_, chunk_, chunk_ptr_.data(), cols_.data(),
                  vals_.data(), perm_.data(), row_len_.data(),
                  [xp, gp, nowned](std::size_t cidx) {
                    return cidx < nowned ? xp[cidx] : gp[cidx - nowned];
                  },
                  y);
}

}  // namespace pipescg::sparse
