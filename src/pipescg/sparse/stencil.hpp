// Structured-grid stencil descriptions and CSR assembly.
//
// A StencilNd holds the weight cube w[di][dj][dk] for offsets in
// [-reach, reach]^d.  Dirichlet boundary conditions are imposed by
// truncation: offsets falling outside the grid are dropped (the classical
// "eliminate boundary unknowns" discretization, which keeps symmetry).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pipescg/sparse/csr_matrix.hpp"

namespace pipescg::sparse {

struct Stencil2D {
  int reach = 1;
  std::vector<double> weights;  // (2r+1)^2, row-major (dj, di)

  explicit Stencil2D(int r) : reach(r) {
    const std::size_t w = static_cast<std::size_t>(2 * r + 1);
    weights.assign(w * w, 0.0);
  }

  double& at(int di, int dj) {
    const int w = 2 * reach + 1;
    return weights[static_cast<std::size_t>((dj + reach) * w + (di + reach))];
  }
  double at(int di, int dj) const {
    const int w = 2 * reach + 1;
    return weights[static_cast<std::size_t>((dj + reach) * w + (di + reach))];
  }

  std::size_t point_count() const;
};

struct Stencil3D {
  int reach = 1;
  std::vector<double> weights;  // (2r+1)^3, (dk, dj, di) order

  explicit Stencil3D(int r) : reach(r) {
    const std::size_t w = static_cast<std::size_t>(2 * r + 1);
    weights.assign(w * w * w, 0.0);
  }

  double& at(int di, int dj, int dk) {
    const int w = 2 * reach + 1;
    return weights[static_cast<std::size_t>(((dk + reach) * w + (dj + reach)) *
                                                w +
                                            (di + reach))];
  }
  double at(int di, int dj, int dk) const {
    const int w = 2 * reach + 1;
    return weights[static_cast<std::size_t>(((dk + reach) * w + (dj + reach)) *
                                                w +
                                            (di + reach))];
  }

  std::size_t point_count() const;
};

/// Classic stencils.
Stencil2D stencil_poisson5();   //  5-pt 2D Laplacian
Stencil2D stencil_poisson9();   //  9-pt 2D Laplacian (compact)
Stencil3D stencil_poisson7();   //  7-pt 3D Laplacian
Stencil3D stencil_poisson27();  // 27-pt 3D Laplacian (compact)

/// Assemble the stencil into CSR on an nx x ny grid (Dirichlet truncation).
CsrMatrix assemble_stencil2d(const Stencil2D& st, std::size_t nx,
                             std::size_t ny, const std::string& name);

/// Assemble the stencil into CSR on an nx x ny x nz grid.
CsrMatrix assemble_stencil3d(const Stencil3D& st, std::size_t nx,
                             std::size_t ny, std::size_t nz,
                             const std::string& name);

}  // namespace pipescg::sparse
