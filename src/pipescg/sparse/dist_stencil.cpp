#include "pipescg/sparse/dist_stencil.hpp"

#include <algorithm>
#include <utility>

#include "pipescg/base/error.hpp"

namespace pipescg::sparse {

DistStencil3D::DistStencil3D(Stencil3D stencil, std::size_t nx,
                             std::size_t ny, std::size_t nz, int rank,
                             int ranks)
    : stencil_(std::move(stencil)), nx_(nx), ny_(ny), nz_(nz), rank_(rank),
      ranks_(ranks) {
  const par::RankRange range = par::block_range(nz, rank, ranks);
  z_begin_ = range.begin;
  z_end_ = range.end;
  const std::size_t reach = static_cast<std::size_t>(stencil_.reach);
  PIPESCG_CHECK(range.size() >= reach || ranks == 1,
                "each rank must own at least `reach` z-planes");
  ghosted_.assign((local_planes() + 2 * reach) * nx_ * ny_, 0.0);
}

void DistStencil3D::apply(par::Comm& comm, std::span<const double> x_local,
                          std::span<double> y_local) {
  PIPESCG_CHECK(x_local.size() == local_rows() &&
                    y_local.size() == local_rows(),
                "distributed stencil apply size mismatch");
  const std::size_t reach = static_cast<std::size_t>(stencil_.reach);
  const std::size_t plane = nx_ * ny_;

  // Stage owned planes into the center of the ghosted buffer.
  std::copy(x_local.begin(), x_local.end(),
            ghosted_.begin() + static_cast<std::ptrdiff_t>(reach * plane));

  // Ghost exchange: every rank exposes its owned slab; neighbors pull the
  // boundary planes they need (RMA-style, like the DistCsr halo).
  comm.expose(x_local);
  if (comm.size() > 1) {
    // Planes below (from rank - 1): the *last* `reach` planes of that rank.
    if (z_begin_ > 0) {
      const int peer = rank_ - 1;
      const par::RankRange peer_range =
          par::block_range(nz_, peer, ranks_);
      const std::size_t have =
          std::min<std::size_t>(reach, peer_range.size());
      const std::size_t offset = (peer_range.size() - have) * plane;
      comm.peer_read(peer, offset,
                     std::span<double>(ghosted_.data() +
                                           (reach - have) * plane,
                                       have * plane));
    }
    // Planes above (from rank + 1): the first `reach` planes of that rank.
    if (z_end_ < nz_) {
      const int peer = rank_ + 1;
      const par::RankRange peer_range =
          par::block_range(nz_, peer, ranks_);
      const std::size_t have =
          std::min<std::size_t>(reach, peer_range.size());
      comm.peer_read(
          peer, 0,
          std::span<double>(
              ghosted_.data() + (reach + local_planes()) * plane,
              have * plane));
    }
  }
  comm.close_epoch();

  // Apply the stencil on owned rows; x/y offsets are bounds-checked against
  // the global grid, z offsets read the ghosted buffer (global-z checked).
  const int r = stencil_.reach;
  for (std::size_t kz = 0; kz < local_planes(); ++kz) {
    const std::size_t gz = z_begin_ + kz;
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t i = 0; i < nx_; ++i) {
        double acc = 0.0;
        for (int dk = -r; dk <= r; ++dk) {
          const std::ptrdiff_t gkz = static_cast<std::ptrdiff_t>(gz) + dk;
          if (gkz < 0 || gkz >= static_cast<std::ptrdiff_t>(nz_)) continue;
          const std::size_t zslab =
              kz + static_cast<std::size_t>(r) +
              static_cast<std::size_t>(dk);
          for (int dj = -r; dj <= r; ++dj) {
            const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(j) + dj;
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(ny_)) continue;
            for (int di = -r; di <= r; ++di) {
              const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i) + di;
              if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(nx_)) continue;
              const double w = stencil_at(di, dj, dk);
              if (w == 0.0) continue;
              acc += w * ghosted_[(zslab * ny_ +
                                   static_cast<std::size_t>(jj)) *
                                      nx_ +
                                  static_cast<std::size_t>(ii)];
            }
          }
        }
        y_local[(kz * ny_ + j) * nx_ + i] = acc;
      }
    }
  }
}

OperatorStats DistStencil3D::stats() const {
  OperatorStats s;
  s.rows = global_rows();
  std::size_t taps = 0;
  for (double w : stencil_.weights)
    if (w != 0.0) ++taps;
  s.nnz = s.rows * taps;
  s.kind = GridKind::kGrid3d;
  s.nx = nx_;
  s.ny = ny_;
  s.nz = nz_;
  s.halo_width = stencil_.reach;
  return s;
}

}  // namespace pipescg::sparse
