#include "pipescg/sparse/dist_stencil.hpp"

#include <algorithm>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::sparse {
namespace {

int plane_owner(std::size_t gz, std::size_t nz, int ranks) {
  for (int r = 0; r < ranks; ++r)
    if (gz < par::block_range(nz, r, ranks).end) return r;
  PIPESCG_CHECK(false, "plane outside the grid");
  return -1;
}

// Pull list for ghost global planes [gz_lo, gz_hi) landing at
// (gz - buf_base_z) * plane within the ghost buffer, coalescing contiguous
// same-owner planes into one run.  The range may span multiple peer slabs
// (deep halos with depth * reach > slab thickness).
void append_plane_pulls(std::size_t gz_lo, std::size_t gz_hi,
                        std::ptrdiff_t buf_base_z, std::size_t plane,
                        std::size_t nz, int ranks,
                        std::vector<par::GhostPull>& pulls) {
  std::size_t gz = gz_lo;
  while (gz < gz_hi) {
    const int owner = plane_owner(gz, nz, ranks);
    const par::RankRange owner_range = par::block_range(nz, owner, ranks);
    const std::size_t run_end = std::min(gz_hi, owner_range.end);
    pulls.push_back(par::GhostPull{
        owner, (gz - owner_range.begin) * plane,
        static_cast<std::size_t>(static_cast<std::ptrdiff_t>(gz) -
                                 buf_base_z) *
            plane,
        (run_end - gz) * plane});
    gz = run_end;
  }
}

}  // namespace

DistStencil3D::DistStencil3D(Stencil3D stencil, std::size_t nx,
                             std::size_t ny, std::size_t nz, int rank,
                             int ranks, int powers_depth)
    : stencil_(std::move(stencil)), nx_(nx), ny_(ny), nz_(nz), rank_(rank),
      ranks_(ranks), powers_depth_(powers_depth) {
  const par::RankRange range = par::block_range(nz, rank, ranks);
  z_begin_ = range.begin;
  z_end_ = range.end;
  const std::size_t reach = static_cast<std::size_t>(stencil_.reach);
  PIPESCG_CHECK(range.size() >= reach || ranks == 1,
                "each rank must own at least `reach` z-planes");
  PIPESCG_CHECK(powers_depth >= 1 && powers_depth <= 16,
                "powers_depth must be in [1, 16]");
  const std::size_t plane = nx_ * ny_;
  ghosted_.assign((local_planes() + 2 * reach) * plane, 0.0);

  // Depth-1 pull list (apply): up to `reach` planes per side, clipped.
  append_plane_pulls(z_begin_ - std::min(reach, z_begin_), z_begin_,
                     static_cast<std::ptrdiff_t>(z_begin_) -
                         static_cast<std::ptrdiff_t>(reach),
                     plane, nz_, ranks_, pulls_);
  append_plane_pulls(z_end_, std::min(nz_, z_end_ + reach),
                     static_cast<std::ptrdiff_t>(z_begin_) -
                         static_cast<std::ptrdiff_t>(reach),
                     plane, nz_, ranks_, pulls_);

  // Depth-s pull list and ping-pong buffers (apply_powers): the deep ghost
  // region is powers_depth * reach planes per side, again clipped at the
  // domain boundary.  Never-pulled out-of-domain planes stay zero and the
  // sweep's global-z bounds check keeps them unread.
  const std::size_t deep = static_cast<std::size_t>(powers_depth_) * reach;
  deep_cur_.assign((local_planes() + 2 * deep) * plane, 0.0);
  deep_next_.assign(deep_cur_.size(), 0.0);
  const std::ptrdiff_t deep_base =
      static_cast<std::ptrdiff_t>(z_begin_) -
      static_cast<std::ptrdiff_t>(deep);
  append_plane_pulls(z_begin_ - std::min(deep, z_begin_), z_begin_,
                     deep_base, plane, nz_, ranks_, deep_pulls_);
  append_plane_pulls(z_end_, std::min(nz_, z_end_ + deep), deep_base, plane,
                     nz_, ranks_, deep_pulls_);
}

std::size_t DistStencil3D::deep_ghost_count() const {
  std::size_t total = 0;
  for (const par::GhostPull& pull : deep_pulls_) total += pull.length;
  return total;
}

void DistStencil3D::stencil_sweep(std::size_t gz_lo, std::size_t gz_hi,
                                  std::ptrdiff_t src_base_z,
                                  const double* src,
                                  std::ptrdiff_t dst_base_z,
                                  double* dst) const {
  const int r = stencil_.reach;
  const std::size_t plane = nx_ * ny_;
  for (std::size_t gz = gz_lo; gz < gz_hi; ++gz) {
    const std::size_t dst_plane =
        static_cast<std::size_t>(static_cast<std::ptrdiff_t>(gz) -
                                 dst_base_z);
    for (std::size_t j = 0; j < ny_; ++j) {
      for (std::size_t i = 0; i < nx_; ++i) {
        double acc = 0.0;
        for (int dk = -r; dk <= r; ++dk) {
          const std::ptrdiff_t gkz = static_cast<std::ptrdiff_t>(gz) + dk;
          if (gkz < 0 || gkz >= static_cast<std::ptrdiff_t>(nz_)) continue;
          const std::size_t zslab =
              static_cast<std::size_t>(gkz - src_base_z);
          for (int dj = -r; dj <= r; ++dj) {
            const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(j) + dj;
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(ny_)) continue;
            for (int di = -r; di <= r; ++di) {
              const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i) + di;
              if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(nx_)) continue;
              const double w = stencil_at(di, dj, dk);
              if (w == 0.0) continue;
              acc += w * src[(zslab * ny_ + static_cast<std::size_t>(jj)) *
                                 nx_ +
                             static_cast<std::size_t>(ii)];
            }
          }
        }
        dst[(dst_plane * ny_ + j) * nx_ + i] = acc;
      }
    }
  }
}

void DistStencil3D::apply(par::Comm& comm, std::span<const double> x_local,
                          std::span<double> y_local) {
  PIPESCG_CHECK(x_local.size() == local_rows() &&
                    y_local.size() == local_rows(),
                "distributed stencil apply size mismatch");
  const std::size_t reach = static_cast<std::size_t>(stencil_.reach);
  const std::size_t plane = nx_ * ny_;

  // Stage owned planes into the center of the ghosted buffer, then one
  // batched epoch pulls the boundary planes from the up/down neighbors.
  std::copy(x_local.begin(), x_local.end(),
            ghosted_.begin() + static_cast<std::ptrdiff_t>(reach * plane));
  comm.exchange(pulls_, x_local, ghosted_);

  obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kSpmvLocal);
  stencil_sweep(z_begin_, z_end_,
                static_cast<std::ptrdiff_t>(z_begin_) -
                    static_cast<std::ptrdiff_t>(reach),
                ghosted_.data(), static_cast<std::ptrdiff_t>(z_begin_),
                y_local.data());
}

void DistStencil3D::apply_powers(par::Comm& comm,
                                 std::span<const double> x_local,
                                 std::span<const std::span<double>> outs) {
  const std::size_t count = outs.size();
  PIPESCG_CHECK(count >= 1 &&
                    count <= static_cast<std::size_t>(powers_depth_),
                "stencil powers block exceeds powers_depth");
  PIPESCG_CHECK(x_local.size() == local_rows(),
                "stencil powers input size mismatch");
  for (const std::span<double>& out : outs)
    PIPESCG_CHECK(out.size() == local_rows(),
                  "stencil powers output size mismatch");
  const std::size_t reach = static_cast<std::size_t>(stencil_.reach);
  const std::size_t plane = nx_ * ny_;
  const std::size_t deep = static_cast<std::size_t>(powers_depth_) * reach;
  const std::ptrdiff_t deep_base =
      static_cast<std::ptrdiff_t>(z_begin_) -
      static_cast<std::ptrdiff_t>(deep);

  // The one halo epoch of the whole block: pull all deep ghost planes.
  std::copy(x_local.begin(), x_local.end(),
            deep_cur_.begin() + static_cast<std::ptrdiff_t>(deep * plane));
  comm.exchange(deep_pulls_, x_local, deep_cur_);
  if (obs::Profiler* prof = obs::Profiler::current())
    ++prof->counters().mpk_blocks;

  for (std::size_t k = 1; k <= count; ++k) {
    // Shrinking onion: sweep k still computes the ghost planes the
    // remaining sweeps need, (count - k) * reach per side.
    const std::size_t margin = (count - k) * reach;
    const std::size_t gz_lo = z_begin_ - std::min(margin, z_begin_);
    const std::size_t gz_hi = std::min(nz_, z_end_ + margin);
    {
      obs::SpanScope span(obs::Profiler::current(),
                          obs::SpanKind::kSpmvLocal);
      stencil_sweep(gz_lo, gz_hi, deep_base, deep_cur_.data(), deep_base,
                    deep_next_.data());
    }
    std::copy(deep_next_.begin() + static_cast<std::ptrdiff_t>(deep * plane),
              deep_next_.begin() +
                  static_cast<std::ptrdiff_t>((deep + local_planes()) *
                                              plane),
              outs[k - 1].begin());
    std::swap(deep_cur_, deep_next_);
  }
}

OperatorStats DistStencil3D::stats() const {
  OperatorStats s;
  s.rows = global_rows();
  std::size_t taps = 0;
  for (double w : stencil_.weights)
    if (w != 0.0) ++taps;
  s.nnz = s.rows * taps;
  s.kind = GridKind::kGrid3d;
  s.nx = nx_;
  s.ny = ny_;
  s.nz = nz_;
  s.halo_width = stencil_.reach;
  return s;
}

}  // namespace pipescg::sparse
