// The paper's primary workload: a 3D Poisson problem discretized with a
// 125-point stencil (Section VI-A).
//
// We realize the 125-point stencil as a fourth-order tensor-product
// operator A = K (x) M (x) M + M (x) K (x) M + M (x) M (x) K built from
// pentadiagonal 1D factors:
//   K = [1, -16, 30, -16, 1] / 12   (4th-order 1D Laplacian; SPD symbol
//                                    (c-1)(c-7)/3 >= 0)
//   M = [1, 26, 66, 26, 1] / 120    (quartic B-spline mass; symbol > 0)
// Both 1D symbols are nonnegative and not identically zero, so their
// Dirichlet truncations are SPD, and sums of Kronecker products of SPD
// factors are SPD.  Interior rows have exactly 5*5*5 = 125 nonzeros.
#pragma once

#include <cstddef>
#include <memory>

#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/stencil_operator.hpp"

namespace pipescg::sparse {

/// The 125-point stencil weights (reach 2).
Stencil3D stencil_poisson125();

/// Matrix-free operator on an n x n x n grid (used by the scaling benches).
std::unique_ptr<StencilOperator3D> make_poisson125_operator(std::size_t n);

/// Explicit CSR assembly (small grids: tests, preconditioner setup).
CsrMatrix make_poisson125_csr(std::size_t n);

}  // namespace pipescg::sparse
