#include "pipescg/sparse/surrogates.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "pipescg/base/error.hpp"
#include "pipescg/base/rng.hpp"
#include "pipescg/sparse/coo_builder.hpp"

namespace pipescg::sparse {
namespace {

// Smooth lognormal field: a few random plane waves plus white noise in the
// exponent.  Deterministic given the seed.
class LognormalField2D {
 public:
  LognormalField2D(std::size_t nx, std::size_t ny, double sigma_smooth,
                   double sigma_noise, std::uint64_t seed)
      : nx_(nx), ny_(ny), sigma_noise_(sigma_noise), rng_(seed) {
    Rng wave_rng = rng_.split(1);
    for (int w = 0; w < 6; ++w) {
      waves_.push_back(Wave{
          wave_rng.uniform(1.0, 6.0) * 2.0 * M_PI,
          wave_rng.uniform(1.0, 6.0) * 2.0 * M_PI,
          wave_rng.uniform(0.0, 2.0 * M_PI),
          sigma_smooth * wave_rng.uniform(0.3, 1.0),
      });
    }
  }

  double operator()(std::size_t i, std::size_t j) {
    const double x = static_cast<double>(i) / static_cast<double>(nx_);
    const double y = static_cast<double>(j) / static_cast<double>(ny_);
    double e = 0.0;
    for (const Wave& w : waves_)
      e += w.amp * std::sin(w.kx * x + w.ky * y + w.phase);
    // Per-cell white noise, hashed so the field is order-independent.
    Rng cell = rng_.split((static_cast<std::uint64_t>(j) << 32) | i);
    e += sigma_noise_ * cell.next_normal();
    return std::exp(e);
  }

 private:
  struct Wave {
    double kx, ky, phase, amp;
  };
  std::size_t nx_, ny_;
  double sigma_noise_;
  Rng rng_;
  std::vector<Wave> waves_;
};

double harmonic_mean(double a, double b) { return 2.0 * a * b / (a + b); }

}  // namespace

CsrMatrix make_ecology2_like(std::size_t nx, std::size_t ny,
                             std::uint64_t seed) {
  PIPESCG_CHECK(nx >= 4 && ny >= 4, "ecology2-like grid too small");
  const std::size_t n = nx * ny;
  LognormalField2D kappa(nx, ny, 1.4, 0.5, seed);

  // Cache the coefficient field (each cell queried up to 5 times otherwise).
  std::vector<double> field(n);
  double mean = 0.0;
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const double v = kappa(i, j);
      field[j * nx + i] = v;
      mean += v;
    }
  mean /= static_cast<double>(n);

  // Graph Laplacian over grid edges, grounded at the domain boundary (the
  // landscape-resistance circuit problems ecology2 comes from are grounded
  // at their terminals), plus a tiny zero-order term.  Very ill-conditioned
  // -- interior modes see only the weak boundary coupling -- but not
  // numerically singular.
  const double shift = 1e-10 * mean;
  CooBuilder builder(n, n);
  builder.reserve(5 * n);
  std::vector<double> diag(n, shift);
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i)
      if (i == 0 || j == 0 || i + 1 == nx || j + 1 == ny)
        diag[j * nx + i] += field[j * nx + i];
  auto add_edge = [&](std::size_t a, std::size_t b, double c) {
    builder.add(a, b, -c);
    builder.add(b, a, -c);
    diag[a] += c;
    diag[b] += c;
  };
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t cell = j * nx + i;
      if (i + 1 < nx)
        add_edge(cell, cell + 1,
                 harmonic_mean(field[cell], field[cell + 1]));
      if (j + 1 < ny)
        add_edge(cell, cell + nx,
                 harmonic_mean(field[cell], field[cell + nx]));
    }
  for (std::size_t c = 0; c < n; ++c) builder.add(c, c, diag[c]);
  CsrMatrix m = builder.build("ecology2_like_" + std::to_string(nx) + "x" +
                              std::to_string(ny));
  m.set_grid_info(GridKind::kGrid2d, nx, ny, 1, 1);
  return m;
}

CsrMatrix make_thermal2_like(std::size_t nx, std::size_t ny, double jump,
                             std::uint64_t seed) {
  PIPESCG_CHECK(nx >= 4 && ny >= 4, "thermal2-like grid too small");
  PIPESCG_CHECK(jump >= 1.0, "jump ratio must be >= 1");
  const std::size_t n = nx * ny;
  Rng rng(seed);

  // Piecewise-constant conductivity: random blobs of "hot" material.
  const int num_blobs = 24;
  struct Blob {
    double cx, cy, r2;
  };
  std::vector<Blob> blobs;
  for (int b = 0; b < num_blobs; ++b) {
    const double r = rng.uniform(0.03, 0.12);
    blobs.push_back(Blob{rng.next_double(), rng.next_double(), r * r});
  }
  auto conductivity = [&](std::size_t i, std::size_t j) {
    const double x = static_cast<double>(i) / static_cast<double>(nx);
    const double y = static_cast<double>(j) / static_cast<double>(ny);
    for (const Blob& b : blobs) {
      const double dx = x - b.cx, dy = y - b.cy;
      if (dx * dx + dy * dy < b.r2) return jump;
    }
    return 1.0;
  };
  std::vector<double> field(n);
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) field[j * nx + i] = conductivity(i, j);

  // 9-point coupling: axis edges weight 2/3, diagonal edges weight 1/6
  // (compact 9-pt Laplacian split as a graph Laplacian), harmonically
  // averaged material coefficient, a small reaction term, and fixed
  // temperature (Dirichlet) boundaries as in the steady-state thermal
  // problem thermal2 comes from.
  CooBuilder builder(n, n);
  builder.reserve(9 * n);
  std::vector<double> diag(n, 1e-6);
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i)
      if (i == 0 || j == 0 || i + 1 == nx || j + 1 == ny)
        diag[j * nx + i] += field[j * nx + i];
  auto add_edge = [&](std::size_t a, std::size_t b, double c) {
    builder.add(a, b, -c);
    builder.add(b, a, -c);
    diag[a] += c;
    diag[b] += c;
  };
  for (std::size_t j = 0; j < ny; ++j)
    for (std::size_t i = 0; i < nx; ++i) {
      const std::size_t cell = j * nx + i;
      const double fc = field[cell];
      if (i + 1 < nx)
        add_edge(cell, cell + 1,
                 (2.0 / 3.0) * harmonic_mean(fc, field[cell + 1]));
      if (j + 1 < ny)
        add_edge(cell, cell + nx,
                 (2.0 / 3.0) * harmonic_mean(fc, field[cell + nx]));
      if (i + 1 < nx && j + 1 < ny)
        add_edge(cell, cell + nx + 1,
                 (1.0 / 6.0) * harmonic_mean(fc, field[cell + nx + 1]));
      if (i > 0 && j + 1 < ny)
        add_edge(cell, cell + nx - 1,
                 (1.0 / 6.0) * harmonic_mean(fc, field[cell + nx - 1]));
    }
  for (std::size_t c = 0; c < n; ++c) builder.add(c, c, diag[c]);
  CsrMatrix m = builder.build("thermal2_like_" + std::to_string(nx) + "x" +
                              std::to_string(ny));
  m.set_grid_info(GridKind::kGrid2d, nx, ny, 1, 1);
  return m;
}

CsrMatrix make_serena_like(std::size_t n, double stiff_ratio,
                           std::uint64_t seed) {
  PIPESCG_CHECK(n >= 4, "serena-like grid too small");
  PIPESCG_CHECK(stiff_ratio >= 1.0, "stiff ratio must be >= 1");
  const std::size_t total = n * n * n;
  Rng rng(seed);

  const int num_inclusions = 16;
  struct Sphere {
    double cx, cy, cz, r2;
  };
  std::vector<Sphere> spheres;
  for (int s = 0; s < num_inclusions; ++s) {
    const double r = rng.uniform(0.05, 0.18);
    spheres.push_back(Sphere{rng.next_double(), rng.next_double(),
                             rng.next_double(), r * r});
  }
  auto stiffness = [&](std::size_t i, std::size_t j, std::size_t k) {
    const double x = static_cast<double>(i) / static_cast<double>(n);
    const double y = static_cast<double>(j) / static_cast<double>(n);
    const double z = static_cast<double>(k) / static_cast<double>(n);
    for (const Sphere& s : spheres) {
      const double dx = x - s.cx, dy = y - s.cy, dz = z - s.cz;
      if (dx * dx + dy * dy + dz * dz < s.r2) return stiff_ratio;
    }
    return 1.0;
  };

  std::vector<double> field(total);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i)
        field[(k * n + j) * n + i] = stiffness(i, j, k);

  // 27-point graph Laplacian: edge weight ~ 1/dist^2 class (faces 1,
  // edges 1/2, corners 1/3), material by harmonic mean, reaction 1e-4,
  // and clamped (Dirichlet) domain boundaries as in the structural
  // mechanics problem Serena comes from.
  CooBuilder builder(total, total);
  builder.reserve(27 * total);
  std::vector<double> diag(total, 1e-4);
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i)
        if (i == 0 || j == 0 || k == 0 || i + 1 == n || j + 1 == n ||
            k + 1 == n)
          diag[(k * n + j) * n + i] += field[(k * n + j) * n + i];
  auto add_edge = [&](std::size_t a, std::size_t b, double c) {
    builder.add(a, b, -c);
    builder.add(b, a, -c);
    diag[a] += c;
    diag[b] += c;
  };
  for (std::size_t k = 0; k < n; ++k)
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t cell = (k * n + j) * n + i;
        // Enumerate forward neighbors only; symmetry handled by add_edge.
        for (int dk = 0; dk <= 1; ++dk)
          for (int dj = (dk == 0 ? 0 : -1); dj <= 1; ++dj)
            for (int di = ((dk == 0 && dj == 0) ? 1 : -1); di <= 1; ++di) {
              const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i) + di;
              const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(j) + dj;
              const std::ptrdiff_t kk = static_cast<std::ptrdiff_t>(k) + dk;
              if (ii < 0 || jj < 0 || kk < 0 ||
                  ii >= static_cast<std::ptrdiff_t>(n) ||
                  jj >= static_cast<std::ptrdiff_t>(n) ||
                  kk >= static_cast<std::ptrdiff_t>(n))
                continue;
              const int dist = std::abs(di) + std::abs(dj) + std::abs(dk);
              const double geom = dist == 1 ? 1.0 : (dist == 2 ? 0.5 : 1.0 / 3);
              const std::size_t other =
                  (static_cast<std::size_t>(kk) * n +
                   static_cast<std::size_t>(jj)) *
                      n +
                  static_cast<std::size_t>(ii);
              add_edge(cell, other,
                       geom * harmonic_mean(field[cell], field[other]));
            }
      }
  for (std::size_t c = 0; c < total; ++c) builder.add(c, c, diag[c]);
  CsrMatrix m = builder.build("serena_like_" + std::to_string(n) + "^3");
  m.set_grid_info(GridKind::kGrid3d, n, n, n, 1);
  return m;
}

}  // namespace pipescg::sparse
