#include "pipescg/sparse/spgemm.hpp"

#include <algorithm>
#include <vector>

#include "pipescg/base/error.hpp"

namespace pipescg::sparse {

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b) {
  PIPESCG_CHECK(a.cols() == b.rows(), "spgemm shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();

  std::vector<CsrMatrix::Index> row_ptr(m + 1, 0);
  std::vector<CsrMatrix::Index> cols;
  std::vector<double> values;

  // Gustavson: dense accumulator with a touched-column list per row.
  std::vector<double> acc(n, 0.0);
  std::vector<CsrMatrix::Index> touched;
  std::vector<bool> seen(n, false);

  const auto arp = a.row_ptr();
  const auto aci = a.col_indices();
  const auto av = a.values();
  const auto brp = b.row_ptr();
  const auto bci = b.col_indices();
  const auto bv = b.values();

  for (std::size_t i = 0; i < m; ++i) {
    touched.clear();
    for (auto ka = arp[i]; ka < arp[i + 1]; ++ka) {
      const std::size_t k =
          static_cast<std::size_t>(aci[static_cast<std::size_t>(ka)]);
      const double aik = av[static_cast<std::size_t>(ka)];
      for (auto kb = brp[k]; kb < brp[k + 1]; ++kb) {
        const CsrMatrix::Index j = bci[static_cast<std::size_t>(kb)];
        const std::size_t ju = static_cast<std::size_t>(j);
        if (!seen[ju]) {
          seen[ju] = true;
          acc[ju] = 0.0;
          touched.push_back(j);
        }
        acc[ju] += aik * bv[static_cast<std::size_t>(kb)];
      }
    }
    std::sort(touched.begin(), touched.end());
    for (CsrMatrix::Index j : touched) {
      const std::size_t ju = static_cast<std::size_t>(j);
      cols.push_back(j);
      values.push_back(acc[ju]);
      seen[ju] = false;
    }
    row_ptr[i + 1] = static_cast<CsrMatrix::Index>(cols.size());
  }
  return CsrMatrix(m, n, std::move(row_ptr), std::move(cols),
                   std::move(values), a.name() + "*" + b.name());
}

CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p) {
  const CsrMatrix ap = multiply(a, p);
  const CsrMatrix pt = p.transposed();
  return multiply(pt, ap);
}

}  // namespace pipescg::sparse
