// Coordinate-format accumulator that finalizes into CSR.
//
// Duplicate (i, j) entries are summed, matching the usual finite-element
// assembly convention and Matrix Market semantics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "pipescg/sparse/csr_matrix.hpp"

namespace pipescg::sparse {

class CooBuilder {
 public:
  CooBuilder(std::size_t nrows, std::size_t ncols)
      : nrows_(nrows), ncols_(ncols) {}

  std::size_t nrows() const { return nrows_; }
  std::size_t ncols() const { return ncols_; }

  void reserve(std::size_t nnz_hint) { entries_.reserve(nnz_hint); }

  /// Append one entry; duplicates are summed at build().
  void add(std::size_t i, std::size_t j, double value);

  /// Append value at (i, j) and (j, i) (skipping the mirror when i == j).
  void add_symmetric(std::size_t i, std::size_t j, double value);

  std::size_t entry_count() const { return entries_.size(); }

  /// Sort, merge duplicates, and emit CSR.  The builder is left empty.
  CsrMatrix build(std::string name = "csr");

 private:
  struct Entry {
    std::size_t row;
    std::size_t col;
    double value;
  };

  std::size_t nrows_;
  std::size_t ncols_;
  std::vector<Entry> entries_;
};

}  // namespace pipescg::sparse
