// Abstract linear operator interface.
//
// Solvers see operators only through apply() plus metadata used by the
// machine-model timeline (see sim/) to price an SPMV at a given rank count.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace pipescg::sparse {

class CsrMatrix;

/// Geometry tag used by the cost model to estimate halo-exchange volume for
/// a row-block (slab) partition.
enum class GridKind {
  kGeneral,  // unstructured: halo estimated from bandwidth
  kGrid2d,   // nx * ny structured grid, slab partition along y
  kGrid3d,   // nx * ny * nz structured grid, slab partition along z
};

struct OperatorStats {
  std::size_t rows = 0;
  std::size_t nnz = 0;
  GridKind kind = GridKind::kGeneral;
  std::size_t nx = 0, ny = 0, nz = 0;
  // Number of grid layers a neighbor needs (stencil reach); e.g. 2 for a
  // 125-pt (5-wide) stencil, 1 for a 27-pt stencil.
  int halo_width = 1;

  /// Estimated doubles exchanged per rank per SPMV under a P-way row-block
  /// partition (both directions combined).
  double halo_doubles_per_rank(int num_ranks) const;
  /// Estimated number of neighbor messages per rank per SPMV.
  double halo_messages_per_rank(int num_ranks) const;
};

class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  virtual std::size_t rows() const = 0;

  /// y = A x.  x.size() == y.size() == rows().  x and y must not alias.
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;

  virtual OperatorStats stats() const = 0;

  virtual std::string name() const = 0;

  /// Explicit CSR view when available (preconditioner setup needs entries);
  /// nullptr for matrix-free operators.
  virtual const CsrMatrix* as_csr() const { return nullptr; }
};

}  // namespace pipescg::sparse
