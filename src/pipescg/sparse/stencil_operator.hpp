// Matrix-free application of a 3D stencil on a structured grid.
//
// The paper's main workload is a 125-point stencil on a 100^3 grid; storing
// that matrix in CSR costs ~1.5 GB, while the stencil operator applies it
// from 125 weights.  Assembly (stencil.hpp) and this operator agree exactly
// (tests verify), so the big benches use this and everything else uses CSR.
#pragma once

#include <string>

#include "pipescg/sparse/operator.hpp"
#include "pipescg/sparse/stencil.hpp"

namespace pipescg::sparse {

class StencilOperator3D final : public LinearOperator {
 public:
  /// Grid nx x ny x nz, row-major with x fastest; taps reaching outside the
  /// grid contribute nothing (Dirichlet truncation), matching assembly.
  StencilOperator3D(Stencil3D stencil, std::size_t nx, std::size_t ny,
                    std::size_t nz, std::string name);

  std::size_t rows() const override { return nx_ * ny_ * nz_; }

  /// y = A x, matrix-free: precomputed taps on the interior, per-point
  /// bounds-checked fallback on the boundary shell.
  void apply(std::span<const double> x, std::span<double> y) const override;

  OperatorStats stats() const override;
  std::string name() const override { return name_; }

  const Stencil3D& stencil() const { return stencil_; }
  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  std::size_t nz() const { return nz_; }

 private:
  void apply_checked_point(std::span<const double> x, std::span<double> y,
                           std::size_t i, std::size_t j, std::size_t k) const;

  Stencil3D stencil_;
  std::size_t nx_, ny_, nz_;
  std::string name_;
  // Precomputed nonzero offsets for the interior fast path.
  struct Tap {
    std::ptrdiff_t linear_offset;
    double weight;
  };
  std::vector<Tap> taps_;
  std::size_t nnz_per_interior_row_ = 0;
};

}  // namespace pipescg::sparse
