#include "pipescg/sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "pipescg/base/error.hpp"
#include "pipescg/sparse/coo_builder.hpp"

namespace pipescg::sparse {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in, std::string name) {
  std::string line;
  PIPESCG_CHECK(static_cast<bool>(std::getline(in, line)),
                "matrix market: empty stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  PIPESCG_CHECK(banner == "%%MatrixMarket", "matrix market: missing banner");
  PIPESCG_CHECK(lower(object) == "matrix", "matrix market: object not matrix");
  PIPESCG_CHECK(lower(format) == "coordinate",
                "matrix market: only coordinate format is supported");
  const std::string f = lower(field);
  PIPESCG_CHECK(f == "real" || f == "integer",
                "matrix market: only real/integer fields are supported");
  const std::string sym = lower(symmetry);
  PIPESCG_CHECK(sym == "general" || sym == "symmetric",
                "matrix market: only general/symmetric supported");

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  std::size_t nrows = 0, ncols = 0, nnz = 0;
  dims >> nrows >> ncols >> nnz;
  PIPESCG_CHECK(nrows > 0 && ncols > 0, "matrix market: bad dimensions line");

  CooBuilder builder(nrows, ncols);
  builder.reserve(sym == "symmetric" ? 2 * nnz : nnz);
  std::size_t read_count = 0;
  while (read_count < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    std::size_t i = 0, j = 0;
    double v = 0.0;
    entry >> i >> j >> v;
    PIPESCG_CHECK(i >= 1 && i <= nrows && j >= 1 && j <= ncols,
                  "matrix market: entry index out of range");
    if (sym == "symmetric") {
      builder.add_symmetric(i - 1, j - 1, v);
    } else {
      builder.add(i - 1, j - 1, v);
    }
    ++read_count;
  }
  PIPESCG_CHECK(read_count == nnz,
                "matrix market: fewer entries than header declared");
  return builder.build(std::move(name));
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  PIPESCG_CHECK(in.good(), "cannot open matrix market file: " + path);
  std::string name = path;
  if (auto pos = name.find_last_of('/'); pos != std::string::npos)
    name = name.substr(pos + 1);
  return read_matrix_market(in, name);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
  const auto rp = m.row_ptr();
  const auto ci = m.col_indices();
  const auto v = m.values();
  out.precision(17);
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (auto k = rp[i]; k < rp[i + 1]; ++k)
      out << (i + 1) << " " << (ci[static_cast<std::size_t>(k)] + 1) << " "
          << v[static_cast<std::size_t>(k)] << "\n";
}

}  // namespace pipescg::sparse
