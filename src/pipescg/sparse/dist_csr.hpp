// Distributed CSR matrix for the SPMD engine.
//
// Each rank owns a contiguous block of rows.  Off-block column references are
// satisfied through a halo exchange: at apply() time every rank exposes its
// local slice of x (RMA-style window, see par::Comm) and pulls the ghost
// entries it needs as precomputed contiguous runs (par::GhostPull), exactly
// the structure an MPI implementation would pack into neighbor messages.
//
// Column indices are remapped at construction: [0, nlocal) are owned entries
// of x, [nlocal, nlocal + nghost) index the rank's ghost buffer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "pipescg/par/comm.hpp"
#include "pipescg/sparse/csr_matrix.hpp"
#include "pipescg/sparse/format.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/sell_matrix.hpp"

namespace pipescg::sparse {

/// One rank's row block of a square CSR matrix plus the precomputed halo
/// structure needed to apply it.  Construction is local (every rank builds
/// its own instance from the replicated global structure); apply() is
/// collective over the team.
class DistCsr {
 public:
  /// Build this rank's slice of `global`.  Collective over the team only in
  /// the sense that every rank calls it; no communication happens here.
  /// `format` picks the local-apply storage: kCsr keeps the remapped CSR
  /// slice, kSell additionally converts it to SELL-C-sigma (bitwise-identical
  /// results, see sparse::SellMatrix) and applies that instead.
  DistCsr(const CsrMatrix& global, const Partition& partition, int rank,
          SparseFormat format = SparseFormat::kCsr);

  /// Rows this rank owns.
  std::size_t local_rows() const { return local_.rows(); }
  /// Rows of the global operator.
  std::size_t global_rows() const { return partition_.global_size(); }
  /// Distinct off-rank columns referenced by this rank's rows.
  std::size_t ghost_count() const { return ghost_globals_.size(); }

  std::size_t local_nnz() const { return local_.nnz(); }
  const Partition& partition() const { return partition_; }

  /// y_local = A_local [x_local; ghosts(x)].  Collective: performs one
  /// batched halo-exchange epoch on `comm` (par::Comm::exchange).
  /// x_local/y_local sized to this rank's rows.
  void apply(par::Comm& comm, std::span<const double> x_local,
             std::span<double> y_local, std::vector<double>& ghost_scratch) const;

  /// Total doubles this rank pulls per apply (halo volume, for diagnostics).
  std::size_t halo_volume() const { return ghost_globals_.size(); }
  /// Coalesced ghost runs (messages) this rank pulls per apply.
  std::size_t halo_messages() const { return pulls_.size(); }

  /// Bytes the local SPMV moves per apply, from operator shape alone
  /// (matrix structure streamed once + x/ghost reads + y writes; see
  /// sparse/bytes_model.hpp), so the number is deterministic and identical
  /// across reruns.  Accumulated into Profiler::Counters::spmv_bytes by
  /// apply(); measured throughput is this over measured kSpmvLocal seconds
  /// (metrics::register_profile).  Reflects the active format.
  std::size_t bytes_per_apply() const { return bytes_per_apply_; }

  /// Local-apply storage format.
  SparseFormat format() const { return format_; }

 private:
  Partition partition_;
  int rank_;
  SparseFormat format_ = SparseFormat::kCsr;
  CsrMatrix local_;  // ncols = local_rows + ghost_count, remapped indices
  SellMatrix sell_;  // SELL-C-sigma view of local_ (format_ == kSell only)
  std::vector<std::size_t> ghost_globals_;  // sorted global ids of ghosts
  std::vector<par::GhostPull> pulls_;  // persistent run list for exchange()
  std::size_t bytes_per_apply_ = 0;
};

}  // namespace pipescg::sparse
