#include "pipescg/sparse/stencil_operator.hpp"

#include <utility>

#include "pipescg/base/error.hpp"

namespace pipescg::sparse {

StencilOperator3D::StencilOperator3D(Stencil3D stencil, std::size_t nx,
                                     std::size_t ny, std::size_t nz,
                                     std::string name)
    : stencil_(std::move(stencil)),
      nx_(nx),
      ny_(ny),
      nz_(nz),
      name_(std::move(name)) {
  const int r = stencil_.reach;
  PIPESCG_CHECK(nx_ > static_cast<std::size_t>(2 * r) &&
                    ny_ > static_cast<std::size_t>(2 * r) &&
                    nz_ > static_cast<std::size_t>(2 * r),
                "grid too small for stencil reach");
  for (int dk = -r; dk <= r; ++dk)
    for (int dj = -r; dj <= r; ++dj)
      for (int di = -r; di <= r; ++di) {
        const double w = stencil_.at(di, dj, dk);
        if (w == 0.0) continue;
        taps_.push_back(Tap{
            (static_cast<std::ptrdiff_t>(dk) * static_cast<std::ptrdiff_t>(ny_) +
             dj) *
                    static_cast<std::ptrdiff_t>(nx_) +
                di,
            w});
      }
  nnz_per_interior_row_ = taps_.size();
}

void StencilOperator3D::apply_checked_point(std::span<const double> x,
                                            std::span<double> y, std::size_t i,
                                            std::size_t j,
                                            std::size_t k) const {
  const int r = stencil_.reach;
  double acc = 0.0;
  for (int dk = -r; dk <= r; ++dk) {
    const std::ptrdiff_t kk = static_cast<std::ptrdiff_t>(k) + dk;
    if (kk < 0 || kk >= static_cast<std::ptrdiff_t>(nz_)) continue;
    for (int dj = -r; dj <= r; ++dj) {
      const std::ptrdiff_t jj = static_cast<std::ptrdiff_t>(j) + dj;
      if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(ny_)) continue;
      for (int di = -r; di <= r; ++di) {
        const std::ptrdiff_t ii = static_cast<std::ptrdiff_t>(i) + di;
        if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(nx_)) continue;
        const double w = stencil_.at(di, dj, dk);
        if (w == 0.0) continue;
        acc += w * x[(static_cast<std::size_t>(kk) * ny_ +
                      static_cast<std::size_t>(jj)) *
                         nx_ +
                     static_cast<std::size_t>(ii)];
      }
    }
  }
  y[(k * ny_ + j) * nx_ + i] = acc;
}

void StencilOperator3D::apply(std::span<const double> x,
                              std::span<double> y) const {
  PIPESCG_CHECK(x.size() == rows() && y.size() == rows(),
                "stencil apply dimension mismatch");
  const std::size_t r = static_cast<std::size_t>(stencil_.reach);
  // Interior fast path.
  for (std::size_t k = r; k + r < nz_; ++k) {
    for (std::size_t j = r; j + r < ny_; ++j) {
      const std::size_t base = (k * ny_ + j) * nx_;
      for (std::size_t i = r; i + r < nx_; ++i) {
        const std::size_t idx = base + i;
        double acc = 0.0;
        for (const Tap& t : taps_)
          acc += t.weight *
                 x[static_cast<std::size_t>(
                     static_cast<std::ptrdiff_t>(idx) + t.linear_offset)];
        y[idx] = acc;
      }
    }
  }
  // Boundary shells (checked path).
  for (std::size_t k = 0; k < nz_; ++k) {
    const bool k_interior = (k >= r && k + r < nz_);
    for (std::size_t j = 0; j < ny_; ++j) {
      const bool j_interior = (j >= r && j + r < ny_);
      if (k_interior && j_interior) {
        for (std::size_t i = 0; i < r; ++i) apply_checked_point(x, y, i, j, k);
        for (std::size_t i = nx_ - r; i < nx_; ++i)
          apply_checked_point(x, y, i, j, k);
      } else {
        for (std::size_t i = 0; i < nx_; ++i) apply_checked_point(x, y, i, j, k);
      }
    }
  }
}

OperatorStats StencilOperator3D::stats() const {
  OperatorStats s;
  s.rows = rows();
  // Interior nnz dominates; good enough for cost modeling.
  s.nnz = rows() * nnz_per_interior_row_;
  s.kind = GridKind::kGrid3d;
  s.nx = nx_;
  s.ny = ny_;
  s.nz = nz_;
  s.halo_width = stencil_.reach;
  return s;
}

}  // namespace pipescg::sparse
