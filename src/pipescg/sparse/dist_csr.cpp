#include "pipescg/sparse/dist_csr.hpp"

#include <algorithm>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/sparse/bytes_model.hpp"

namespace pipescg::sparse {

DistCsr::DistCsr(const CsrMatrix& global, const Partition& partition, int rank,
                 SparseFormat format)
    : partition_(partition), rank_(rank), format_(format) {
  PIPESCG_CHECK(global.rows() == global.cols(),
                "distributed matrix must be square");
  PIPESCG_CHECK(global.rows() == partition.global_size(),
                "partition size mismatch");
  PIPESCG_CHECK(rank >= 0 && rank < partition.ranks(), "rank out of range");

  const std::size_t row_begin = partition.begin(rank);
  const std::size_t row_end = partition.end(rank);
  const std::size_t nlocal = row_end - row_begin;

  // Pass 1: collect ghost column ids (owned by other ranks).
  const auto rp = global.row_ptr();
  const auto ci = global.col_indices();
  const auto vals = global.values();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (auto k = rp[i]; k < rp[i + 1]; ++k) {
      const std::size_t col =
          static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
      if (col < row_begin || col >= row_end) ghost_globals_.push_back(col);
    }
  }
  std::sort(ghost_globals_.begin(), ghost_globals_.end());
  ghost_globals_.erase(
      std::unique(ghost_globals_.begin(), ghost_globals_.end()),
      ghost_globals_.end());

  // Pass 2: build the remapped local CSR.  Ghost lookups binary-search the
  // sorted ghost list directly instead of materializing a std::map (the map
  // dominated construction time on stencil-like matrices: one red-black-tree
  // node per ghost plus a log-n pointer chase per nonzero).
  std::vector<CsrMatrix::Index> lrp(nlocal + 1, 0);
  std::vector<CsrMatrix::Index> lci;
  std::vector<double> lv;
  // Owned columns map to col - row_begin, ghosts to nlocal + ghost index.
  // Global order within a row is not monotone under this map, so collect
  // and sort pairs; the scratch vector is hoisted out of the row loop.
  std::vector<std::pair<CsrMatrix::Index, double>> row_entries;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    row_entries.clear();
    for (auto k = rp[i]; k < rp[i + 1]; ++k) {
      const std::size_t col =
          static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
      CsrMatrix::Index mapped;
      if (col >= row_begin && col < row_end) {
        mapped = static_cast<CsrMatrix::Index>(col - row_begin);
      } else {
        const auto it = std::lower_bound(ghost_globals_.begin(),
                                         ghost_globals_.end(), col);
        mapped = static_cast<CsrMatrix::Index>(
            nlocal + static_cast<std::size_t>(it - ghost_globals_.begin()));
      }
      row_entries.emplace_back(mapped, vals[static_cast<std::size_t>(k)]);
    }
    std::sort(row_entries.begin(), row_entries.end());
    for (const auto& [c, v] : row_entries) {
      lci.push_back(c);
      lv.push_back(v);
    }
    lrp[i - row_begin + 1] = static_cast<CsrMatrix::Index>(lci.size());
  }
  local_ = CsrMatrix(nlocal, nlocal + ghost_globals_.size(), std::move(lrp),
                     std::move(lci), std::move(lv),
                     global.name() + "_rank" + std::to_string(rank));

  // Pass 3: coalesce ghosts into per-owner contiguous runs -- the persistent
  // pull list replayed by every halo exchange.
  std::size_t g = 0;
  while (g < ghost_globals_.size()) {
    const int owner = partition.owner(ghost_globals_[g]);
    const std::size_t owner_begin = partition.begin(owner);
    std::size_t len = 1;
    while (g + len < ghost_globals_.size() &&
           ghost_globals_[g + len] == ghost_globals_[g] + len &&
           partition.owner(ghost_globals_[g + len]) == owner) {
      ++len;
    }
    pulls_.push_back(
        par::GhostPull{owner, ghost_globals_[g] - owner_begin, g, len});
    g += len;
  }

  // Bytes-moved model of one local SPMV (sparse/bytes_model.hpp): matrix
  // structure streamed once, every owned/ghost x entry read at least once,
  // y written once.
  if (format_ == SparseFormat::kSell) {
    sell_ = SellMatrix(local_);
    bytes_per_apply_ = sell_.bytes_per_apply();
  } else {
    bytes_per_apply_ = csr_apply_bytes(nlocal, nlocal + ghost_globals_.size(),
                                       local_.nnz());
  }
}

void DistCsr::apply(par::Comm& comm, std::span<const double> x_local,
                    std::span<double> y_local,
                    std::vector<double>& ghost_scratch) const {
  PIPESCG_CHECK(x_local.size() == local_rows() && y_local.size() == local_rows(),
                "distributed spmv size mismatch");
  // Halo exchange: one batched epoch replaying the persistent pull list.
  ghost_scratch.resize(ghost_globals_.size());
  comm.exchange(pulls_, x_local, ghost_scratch);

  // Local SPMV on [x_local ; ghosts].
  if (obs::Profiler* prof = obs::Profiler::current())
    prof->counters().spmv_bytes += bytes_per_apply_;
  obs::SpanScope span(obs::Profiler::current(), obs::SpanKind::kSpmvLocal);
  if (format_ == SparseFormat::kSell) {
    sell_.apply_split(x_local, ghost_scratch, y_local);
    return;
  }
  const auto rp = local_.row_ptr();
  const auto ci = local_.col_indices();
  const auto v = local_.values();
  const std::size_t nlocal = local_rows();
  for (std::size_t i = 0; i < nlocal; ++i) {
    double acc = 0.0;
    for (auto k = rp[i]; k < rp[i + 1]; ++k) {
      const std::size_t c =
          static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
      const double xv =
          c < nlocal ? x_local[c] : ghost_scratch[c - nlocal];
      acc += v[static_cast<std::size_t>(k)] * xv;
    }
    y_local[i] = acc;
  }
}

}  // namespace pipescg::sparse
