#include "pipescg/sparse/csr_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/sparse/coo_builder.hpp"

namespace pipescg::sparse {

double OperatorStats::halo_doubles_per_rank(int num_ranks) const {
  if (num_ranks <= 1) return 0.0;
  const double local = std::max(static_cast<double>(rows) / num_ranks, 1.0);
  // Balanced Cartesian decomposition (what PETSc's DMDA would pick): ghost
  // shells of `halo_width` layers on every face of the local block.
  switch (kind) {
    case GridKind::kGrid2d: {
      const double side = std::sqrt(local);
      return 4.0 * halo_width * side;
    }
    case GridKind::kGrid3d: {
      const double side = std::cbrt(local);
      return 6.0 * halo_width * side * side;
    }
    case GridKind::kGeneral: {
      // Unstructured estimate: 2D-like boundary growth.
      return 4.0 * halo_width * std::sqrt(local);
    }
  }
  return 0.0;
}

double OperatorStats::halo_messages_per_rank(int num_ranks) const {
  if (num_ranks <= 1) return 0.0;
  return kind == GridKind::kGrid3d ? 6.0 : 4.0;
}

CsrMatrix::CsrMatrix(std::size_t nrows, std::size_t ncols,
                     std::vector<Index> row_ptr, std::vector<Index> cols,
                     std::vector<double> values, std::string name)
    : nrows_(nrows),
      ncols_(ncols),
      row_ptr_(std::move(row_ptr)),
      cols_(std::move(cols)),
      values_(std::move(values)),
      name_(std::move(name)) {
  PIPESCG_CHECK(row_ptr_.size() == nrows_ + 1, "row_ptr size must be rows+1");
  PIPESCG_CHECK(cols_.size() == values_.size(), "cols/values size mismatch");
  PIPESCG_CHECK(row_ptr_.front() == 0 &&
                    static_cast<std::size_t>(row_ptr_.back()) == cols_.size(),
                "row_ptr must start at 0 and end at nnz");
  for (std::size_t i = 0; i < nrows_; ++i) {
    PIPESCG_CHECK(row_ptr_[i] <= row_ptr_[i + 1], "row_ptr must be monotone");
    for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      PIPESCG_CHECK(cols_[static_cast<std::size_t>(k)] >= 0 &&
                        static_cast<std::size_t>(
                            cols_[static_cast<std::size_t>(k)]) < ncols_,
                    "column index out of range");
      if (k > row_ptr_[i]) {
        PIPESCG_CHECK(cols_[static_cast<std::size_t>(k - 1)] <
                          cols_[static_cast<std::size_t>(k)],
                      "columns must be strictly increasing within a row");
      }
    }
  }
}

void CsrMatrix::apply(std::span<const double> x, std::span<double> y) const {
  PIPESCG_CHECK(x.size() == ncols_ && y.size() == nrows_,
                "spmv dimension mismatch");
  const Index* rp = row_ptr_.data();
  const Index* ci = cols_.data();
  const double* v = values_.data();
  for (std::size_t i = 0; i < nrows_; ++i) {
    double acc = 0.0;
    for (Index k = rp[i]; k < rp[i + 1]; ++k)
      acc += v[k] * x[static_cast<std::size_t>(ci[k])];
    y[i] = acc;
  }
}

OperatorStats CsrMatrix::stats() const {
  OperatorStats s;
  s.rows = nrows_;
  s.nnz = nnz();
  s.kind = kind_;
  s.nx = nx_;
  s.ny = ny_;
  s.nz = nz_;
  s.halo_width = halo_width_;
  return s;
}

void CsrMatrix::set_grid_info(GridKind kind, std::size_t nx, std::size_t ny,
                              std::size_t nz, int halo_width) {
  kind_ = kind;
  nx_ = nx;
  ny_ = ny;
  nz_ = nz;
  halo_width_ = halo_width;
}

std::vector<double> CsrMatrix::diagonal() const {
  std::vector<double> d(nrows_, 0.0);
  for (std::size_t i = 0; i < nrows_; ++i)
    d[i] = entry(i, i);
  return d;
}

double CsrMatrix::entry(std::size_t i, std::size_t j) const {
  PIPESCG_CHECK(i < nrows_ && j < ncols_, "entry index out of range");
  const auto begin = cols_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = cols_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<Index>(j));
  if (it == end || *it != static_cast<Index>(j)) return 0.0;
  return values_[static_cast<std::size_t>(it - cols_.begin())];
}

double CsrMatrix::symmetry_error() const {
  PIPESCG_CHECK(nrows_ == ncols_, "symmetry check requires square matrix");
  const CsrMatrix t = transposed();
  double err = 0.0;
  // Same sparsity order after transpose-of-transpose invariance is not
  // guaranteed entry-by-entry, so compare via merged row walks.
  for (std::size_t i = 0; i < nrows_; ++i) {
    Index ka = row_ptr_[i], kb = t.row_ptr_[i];
    const Index ea = row_ptr_[i + 1], eb = t.row_ptr_[i + 1];
    while (ka < ea || kb < eb) {
      const Index ca = ka < ea ? cols_[static_cast<std::size_t>(ka)]
                               : static_cast<Index>(ncols_);
      const Index cb = kb < eb ? t.cols_[static_cast<std::size_t>(kb)]
                               : static_cast<Index>(ncols_);
      if (ca == cb) {
        err = std::max(err,
                       std::abs(values_[static_cast<std::size_t>(ka)] -
                                t.values_[static_cast<std::size_t>(kb)]));
        ++ka;
        ++kb;
      } else if (ca < cb) {
        err = std::max(err, std::abs(values_[static_cast<std::size_t>(ka)]));
        ++ka;
      } else {
        err = std::max(err, std::abs(t.values_[static_cast<std::size_t>(kb)]));
        ++kb;
      }
    }
  }
  return err;
}

CsrMatrix CsrMatrix::transposed() const {
  CooBuilder builder(ncols_, nrows_);
  for (std::size_t i = 0; i < nrows_; ++i)
    for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      builder.add(static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)]),
                  i, values_[static_cast<std::size_t>(k)]);
  CsrMatrix t = builder.build(name_ + "_T");
  t.set_grid_info(kind_, nx_, ny_, nz_, halo_width_);
  return t;
}

std::vector<double> CsrMatrix::offdiag_abs_row_sums() const {
  std::vector<double> s(nrows_, 0.0);
  for (std::size_t i = 0; i < nrows_; ++i)
    for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      if (static_cast<std::size_t>(cols_[static_cast<std::size_t>(k)]) != i)
        s[i] += std::abs(values_[static_cast<std::size_t>(k)]);
  return s;
}

std::vector<double> CsrMatrix::to_dense(std::size_t limit) const {
  PIPESCG_CHECK(nrows_ <= limit && ncols_ <= limit,
                "to_dense: matrix too large");
  std::vector<double> d(nrows_ * ncols_, 0.0);
  for (std::size_t i = 0; i < nrows_; ++i)
    for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      d[i * ncols_ + static_cast<std::size_t>(
                         cols_[static_cast<std::size_t>(k)])] =
          values_[static_cast<std::size_t>(k)];
  return d;
}

}  // namespace pipescg::sparse
