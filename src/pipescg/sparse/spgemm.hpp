// Sparse matrix-matrix products (SpGEMM) used by the multigrid setup:
// Galerkin coarse operators A_c = R A P with R = P^T.
#pragma once

#include "pipescg/sparse/csr_matrix.hpp"

namespace pipescg::sparse {

/// C = A * B.  Classical Gustavson row-merge algorithm.
CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b);

/// Galerkin triple product P^T A P.
CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p);

}  // namespace pipescg::sparse
