#include "pipescg/sparse/coo_builder.hpp"

#include <algorithm>

#include "pipescg/base/error.hpp"

namespace pipescg::sparse {

void CooBuilder::add(std::size_t i, std::size_t j, double value) {
  PIPESCG_CHECK(i < nrows_ && j < ncols_, "COO entry out of range");
  entries_.push_back(Entry{i, j, value});
}

void CooBuilder::add_symmetric(std::size_t i, std::size_t j, double value) {
  add(i, j, value);
  if (i != j) add(j, i, value);
}

CsrMatrix CooBuilder::build(std::string name) {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  std::vector<CsrMatrix::Index> row_ptr(nrows_ + 1, 0);
  std::vector<CsrMatrix::Index> cols;
  std::vector<double> values;
  cols.reserve(entries_.size());
  values.reserve(entries_.size());

  std::size_t k = 0;
  for (std::size_t i = 0; i < nrows_; ++i) {
    while (k < entries_.size() && entries_[k].row == i) {
      const std::size_t col = entries_[k].col;
      double acc = 0.0;
      while (k < entries_.size() && entries_[k].row == i &&
             entries_[k].col == col) {
        acc += entries_[k].value;
        ++k;
      }
      cols.push_back(static_cast<CsrMatrix::Index>(col));
      values.push_back(acc);
    }
    row_ptr[i + 1] = static_cast<CsrMatrix::Index>(cols.size());
  }
  entries_.clear();
  entries_.shrink_to_fit();
  return CsrMatrix(nrows_, ncols_, std::move(row_ptr), std::move(cols),
                   std::move(values), std::move(name));
}

}  // namespace pipescg::sparse
