// Session: solver-as-a-service over one operator.
//
// The runtime used to solve one system per process run: every solve paid
// partition construction, ghost-run discovery, matrix-powers closure, and
// preconditioner setup, then spawned (and joined) a team of rank threads.
// A Session makes that cost a ONE-TIME event: it caches everything about
// the operator that is independent of the right-hand side --
//
//   * the row-block sparse::Partition,
//   * each rank's sparse::DistCsr (remapped local CSR + GhostPull run
//     lists),
//   * each rank's depth-s sparse::MatrixPowers closure (optional),
//   * each rank's local preconditioner (block-Jacobi composition),
//   * the par::PersistentTeam of rank threads,
//
// and then serves any number of SolveContexts against that warm state.
// This is the same cost-shape argument the paper makes for the s-step
// methods themselves -- amortize a fixed cost (there: one reduction; here:
// operator setup and thread spawn) over many units of useful work -- and
// it is what makes a "heavy traffic" deployment viable: thousands of
// solves against a handful of operators.
//
// Cached-setup accounting: SetupCounters records every expensive build;
// tests assert the counters FREEZE after construction (a warm solve builds
// nothing), and bench_service reports the measured amortization.
//
// Ownership/thread-safety contract: see DESIGN.md section 12.  In short --
// the Session owns all cached state; a SolveContext owns its b/x/stats; at
// most one thread calls solve/solve_batch/drain at a time; rank threads
// never touch a context directly, only the slices the session hands them.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "pipescg/fault/spec.hpp"
#include "pipescg/krylov/solver.hpp"
#include "pipescg/obs/anomaly.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/obs/tracing.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/service/queue.hpp"
#include "pipescg/service/solve_context.hpp"
#include "pipescg/sparse/csr_matrix.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/matrix_powers.hpp"
#include "pipescg/sparse/partition.hpp"

namespace pipescg::service {

struct SessionConfig {
  int ranks = 2;                 ///< persistent rank-team size
  bool use_preconditioner = true;  ///< build rank-local Jacobi (block-Jacobi)
  bool mpk = false;              ///< build the depth-s MatrixPowers closure
  int s = 3;                     ///< closure depth == largest opts.s served

  // Session-wide stability defaults, applied to every served solve whose
  // own SolverOptions left the knob at its unset value (a context that set
  // one explicitly wins).  See krylov::SolverOptions for semantics.
  krylov::BasisSpec basis;       ///< s-step basis family served by default
  int replacement_period = 0;    ///< residual-replacement cadence (0 = auto)
  double gap_tol = 0.0;          ///< gap-monitor tolerance (<= 0 = off)
  int gap_check_period = 0;      ///< gap-check cadence (0 = auto)

  /// Deterministic fault injection on the rank team (tests / chaos drills):
  /// each rank thread installs a fault::Injector built from this list for
  /// the duration of every solve.  Empty (default) = no injection.
  std::vector<fault::FaultSpec> fault_specs;
};

/// Non-owning observability wiring for a Session.  Everything is optional
/// and composable: a trace sink turns on per-request distributed tracing, an
/// alert sink / registry turn on the online anomaly detectors and live
/// metric families, a sampler gets flushed on early-termination events
/// (deadline expiry) so the terminal snapshot is never lost.  All pointed-to
/// objects must outlive the session (or a reset via set_observability).
struct Observability {
  obs::tracing::TraceSink* traces = nullptr;
  obs::anomaly::AlertSink* alerts = nullptr;
  obs::metrics::Registry* registry = nullptr;
  obs::metrics::MetricsSampler* sampler = nullptr;

  /// Gate for the mid-solve detectors (straggler/stall); queue-pressure
  /// monitoring rides the alert sink regardless.
  bool detectors = true;
  obs::anomaly::StragglerConfig straggler;
  obs::anomaly::StallConfig stall;
  obs::anomaly::QueuePressureConfig queue_pressure;

  /// Span-ring capacity per rank track of a traced request.
  std::size_t trace_capacity = obs::tracing::SpanRing::kDefaultCapacity;
};

/// Counts of the expensive per-operator builds a Session performs.  All of
/// them happen in the constructor ("cold"); warm solves must not move any
/// build counter -- that is the cache contract the tests pin down.
struct SetupCounters {
  std::size_t partition_builds = 0;  ///< row-block partitions computed
  std::size_t dist_builds = 0;       ///< per-rank DistCsr constructions
  std::size_t mpk_builds = 0;        ///< per-rank MatrixPowers closures
  std::size_t pc_builds = 0;         ///< per-rank preconditioner setups
  std::size_t team_spawns = 0;       ///< rank-team thread spawns
  std::size_t warm_hits = 0;         ///< solves served entirely from cache
};

class Session {
 public:
  /// Cold setup: partitions `a`, builds every rank's distributed slice,
  /// ghost-run lists, optional matrix-powers closure and local
  /// preconditioner, and spawns the persistent rank team.  Everything the
  /// constructor builds is reused by every subsequent solve; setup_seconds()
  /// reports what it cost.
  Session(sparse::CsrMatrix a, SessionConfig config);

  int ranks() const { return config_.ranks; }
  std::size_t unknowns() const { return a_.rows(); }
  const SessionConfig& config() const { return config_; }
  const sparse::CsrMatrix& matrix() const { return a_; }

  /// Execute one job on the warm team.  Scatters ctx.b()/ctx.x() over the
  /// ranks, runs the context's method against the cached state, gathers the
  /// solution back, and updates the context's stats/state.  On a solver or
  /// runtime exception the context moves to kFailed with error() set; the
  /// session itself stays usable (the persistent team recovers its
  /// collective state).
  void solve(SolveContext& ctx);

  /// Execute k jobs as ONE batched multi-RHS solve (one s-step basis build
  /// cadence, dot batches widened to k columns; krylov::scg_multi_solve).
  /// All contexts must be mutually batchable(); a single-element span
  /// degenerates to solve().
  void solve_batch(std::span<SolveContext* const> ctxs);

  /// Drain the admission queue: repeatedly pop the next batchable run
  /// (capped at `max_batch` columns) and execute it, until the queue is
  /// empty.  Records per-job admission-wait latency.  Returns the number of
  /// jobs executed.
  std::size_t drain(AdmissionQueue& queue, std::size_t max_batch = 16);

  /// Install (or replace, or clear with {}) the session's observability
  /// wiring: request tracing, anomaly detection, live metric families,
  /// sampler flush-on-expiry.  Call between solves, not during one.
  void set_observability(Observability obs);
  const Observability& observability() const { return obs_; }

  // --- observability ------------------------------------------------------
  const SetupCounters& setup_counters() const { return counters_; }
  /// Wall seconds the constructor spent building the cached state.
  double setup_seconds() const { return setup_seconds_; }
  /// Jobs completed (single + batched columns).
  std::size_t solves() const { return solves_; }
  /// Jobs whose deadline passed before a submission could start (kExpired).
  std::size_t expired() const { return expired_; }
  /// Bodies executed on the persistent team (== solve calls + batch calls).
  std::size_t team_runs() const { return team_->runs(); }
  /// Wall-clock latency of every completed solve (p50/p95/p99 via
  /// LatencyHistogram::quantile); batched columns record the batch latency.
  const obs::LatencyHistogram& solve_latency() const { return solve_latency_; }
  /// Admission wait (submit -> execution start) of drained jobs.
  const obs::LatencyHistogram& queue_latency() const { return queue_latency_; }
  /// Flattened observable state for obs::metrics::register_session (the
  /// histogram pointers reference this session; keep it alive while used).
  obs::metrics::SessionSnapshot snapshot() const;

 private:
  // Everything one rank needs to construct its SpmdEngine, built once.
  struct RankState {
    std::unique_ptr<sparse::DistCsr> dist;
    std::unique_ptr<sparse::MatrixPowers> mpk;
    std::unique_ptr<precond::JacobiPreconditioner> pc;
  };

  // Shared body of solve/solve_batch: run `ctxs` (1 => single-RHS driver,
  // else scg_multi_solve) on the team and finalize every context.
  void execute(std::span<SolveContext* const> ctxs);

  // Route one alert through the sink and the pipescg_anomaly_* metrics.
  // Called from the service thread (queue/deadline alerts) and from rank
  // 0's thread mid-solve (straggler/stall, via the MidSolveProbe
  // trampoline); those never overlap -- the service thread is blocked in
  // team_->run() whenever rank threads execute.
  void emit_alert(const obs::anomaly::Alert& alert);

  // Live metric cells, registered by set_observability (null when no
  // registry is wired).
  struct LiveMetrics {
    obs::metrics::Counter* solves = nullptr;
    obs::metrics::Counter* expired = nullptr;
    obs::metrics::Gauge* queue_depth = nullptr;
    obs::metrics::Gauge* straggler_rank = nullptr;
    obs::metrics::Counter* alerts_straggler = nullptr;
    obs::metrics::Counter* alerts_stall = nullptr;
    obs::metrics::Counter* alerts_saturation = nullptr;
    obs::metrics::Counter* alerts_deadline = nullptr;
  };

  sparse::CsrMatrix a_;
  SessionConfig config_;
  sparse::Partition partition_;
  std::vector<RankState> rank_state_;
  std::unique_ptr<par::PersistentTeam> team_;

  SetupCounters counters_;
  double setup_seconds_ = 0.0;
  std::size_t solves_ = 0;
  std::size_t expired_ = 0;
  obs::LatencyHistogram solve_latency_;
  obs::LatencyHistogram queue_latency_;

  Observability obs_;
  LiveMetrics live_metrics_;
  obs::anomaly::QueuePressureMonitor queue_monitor_;
};

}  // namespace pipescg::service
