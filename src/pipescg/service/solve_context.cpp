#include "pipescg/service/solve_context.hpp"

#include "pipescg/base/error.hpp"

namespace pipescg::service {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kExpired:
      return "expired";
  }
  return "unknown";
}

void SolveContext::set_initial_guess(std::vector<double> x0) {
  PIPESCG_CHECK(x0.size() == b_.size(),
                "initial guess has " + std::to_string(x0.size()) +
                    " entries, right-hand side has " +
                    std::to_string(b_.size()));
  x_ = std::move(x0);
}

}  // namespace pipescg::service
