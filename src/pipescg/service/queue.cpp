#include "pipescg/service/queue.hpp"

#include <algorithm>

namespace pipescg::service {

bool batchable(const SolveContext& a, const SolveContext& b) {
  // Only scg-sspmv has a batched driver (krylov::scg_multi_solve); a step
  // limit makes iteration budgets diverge mid-batch, so limited jobs run
  // singly.
  if (a.method() != "scg-sspmv" || b.method() != "scg-sspmv") return false;
  if (a.step_limit() != 0 || b.step_limit() != 0) return false;
  const krylov::SolverOptions& oa = a.options();
  const krylov::SolverOptions& ob = b.options();
  return oa.s == ob.s && oa.rtol == ob.rtol && oa.atol == ob.atol &&
         oa.norm == ob.norm && oa.max_iterations == ob.max_iterations;
}

void AdmissionQueue::submit(SolveContext* ctx) {
  std::lock_guard<std::mutex> lock(mu_);
  ctx->state_ = JobState::kQueued;
  ctx->enqueued_at_ = std::chrono::steady_clock::now();
  queue_.push_back(ctx);
  ++admitted_;
}

std::size_t AdmissionQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::vector<SolveContext*> AdmissionQueue::next_batch(std::size_t max_batch) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SolveContext*> out;
  if (queue_.empty()) return out;
  out.push_back(queue_.front());
  queue_.pop_front();
  // Longest batchable PREFIX only: grouping never lets a job overtake an
  // incompatible earlier arrival.
  while (out.size() < std::max<std::size_t>(max_batch, 1) &&
         !queue_.empty() && batchable(*out.front(), *queue_.front())) {
    out.push_back(queue_.front());
    queue_.pop_front();
  }
  if (out.size() > 1) ++batches_;
  return out;
}

std::size_t AdmissionQueue::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

std::size_t AdmissionQueue::batches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

}  // namespace pipescg::service
