// AdmissionQueue: FIFO admission control in front of a Session.
//
// A production solver service receives requests from many producers and
// executes them on ONE warm rank team; the queue is the seam between the
// two.  Producers submit() SolveContexts (thread-safe); the session thread
// drains them (Session::drain), popping *runs of batchable jobs* so that k
// compatible requests against the same operator leave the queue as one
// multi-RHS solve (krylov::scg_multi_solve) -- the admission policy IS the
// batching policy.  Jobs that cannot batch (different method, tolerance, or
// block depth, or a method without a multi-RHS variant) pop singly and run
// back-to-back on the same warm team.
//
// FIFO fairness is preserved across batch boundaries: next_batch() only
// groups a *prefix* of the queue, so a job never overtakes an incompatible
// job that arrived before it.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "pipescg/service/solve_context.hpp"

namespace pipescg::service {

/// True when two contexts may share one multi-RHS batch: same method with a
/// batched driver ("scg-sspmv" is the one multi-RHS-capable method today)
/// and identical convergence contract (s, rtol, atol, norm, max_iterations,
/// no step limit).
bool batchable(const SolveContext& a, const SolveContext& b);

class AdmissionQueue {
 public:
  /// Admit a job (FIFO).  The context must outlive the queue entry and must
  /// not be enqueued twice; its state moves to kQueued.  Thread-safe.
  void submit(SolveContext* ctx);

  /// Jobs currently waiting.  Thread-safe.
  std::size_t pending() const;

  /// Pop the longest batchable prefix of the queue, capped at `max_batch`
  /// (>= 1).  Returns an empty vector when the queue is empty; a singleton
  /// when the head job cannot batch with its successor.  Thread-safe.
  std::vector<SolveContext*> next_batch(std::size_t max_batch);

  /// Jobs admitted since construction.
  std::size_t admitted() const;
  /// next_batch() calls that returned more than one job.
  std::size_t batches() const;

 private:
  mutable std::mutex mu_;
  std::deque<SolveContext*> queue_;
  std::size_t admitted_ = 0;
  std::size_t batches_ = 0;
};

}  // namespace pipescg::service
