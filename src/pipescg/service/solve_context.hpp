// SolveContext: one solve request as a resumable job.
//
// The krylov drivers are free functions over an Engine -- one call, one
// converged (or failed) solve.  The service layer wraps a request in a
// SolveContext that owns the *global* right-hand side and iterate, so the
// same job can be submitted to a Session repeatedly: every submission
// continues from the current iterate (Krylov solvers start from the
// provided initial guess), and `step_limit` bounds how many CG-equivalent
// iterations one submission may spend.  Resubmitting a partially converged
// context is a *restart* -- the Krylov space is rebuilt from the current
// residual, so iteration counts can differ from one uninterrupted solve --
// but the iterate trajectory is monotone in the same sense a restarted CG
// is, and a context left to run with step_limit == 0 is exactly the
// one-shot driver call.
//
// Thread-safety: a context belongs to one submitter at a time.  The Session
// mutates it while solving (see DESIGN.md section 12 for the full ownership
// contract); producers may build and enqueue contexts from other threads as
// long as each context is enqueued once.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pipescg/krylov/solver.hpp"
#include "pipescg/obs/tracing.hpp"

namespace pipescg::service {

/// Lifecycle of a SolveContext inside the service.
enum class JobState : std::uint8_t {
  kPending,  ///< constructed, not yet queued or solved
  kQueued,   ///< sitting in an AdmissionQueue
  kRunning,  ///< a Session is executing it on the rank team
  kDone,     ///< last submission finished (converged or budget exhausted)
  kFailed,   ///< the solve aborted (exception; see error())
  kExpired,  ///< deadline passed before a submission could start (terminal)
};

/// Stable lowercase name of a JobState ("pending", "queued", ...).
const char* to_string(JobState state);

class Session;
class AdmissionQueue;

class SolveContext {
 public:
  /// A job solving A x = b for the Session's operator A.  `method` is any
  /// krylov registry name; `b` is the GLOBAL right-hand side (the session
  /// scatters it over the rank team); the iterate starts at zero unless
  /// set_initial_guess() is called.
  SolveContext(std::string method, std::vector<double> b,
               krylov::SolverOptions opts)
      : method_(std::move(method)), opts_(opts), b_(std::move(b)),
        x_(b_.size(), 0.0) {}

  const std::string& method() const { return method_; }
  const krylov::SolverOptions& options() const { return opts_; }
  JobState state() const { return state_; }

  const std::vector<double>& b() const { return b_; }
  /// Current global iterate: the initial guess before the first submission,
  /// the (partial) solution after each one.
  const std::vector<double>& x() const { return x_; }
  void set_initial_guess(std::vector<double> x0);

  /// CG-equivalent iteration budget per submission; 0 (default) lets one
  /// submission run to opts.max_iterations.  The remaining overall budget
  /// is opts.max_iterations - total_iterations() regardless.
  void set_step_limit(std::size_t limit) { step_limit_ = limit; }
  std::size_t step_limit() const { return step_limit_; }

  /// Absolute deadline for STARTING work on this job.  The Session checks
  /// it when the job is dequeued and again before every resumed chunk of a
  /// step-limited solve; a submission that would begin after the deadline
  /// moves the context to the kExpired terminal state instead of running
  /// (work already done -- the current iterate -- is kept).  Unset by
  /// default: no deadline.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// Statistics of the most recent submission.
  const krylov::SolveStats& stats() const { return stats_; }
  /// CG-equivalent iterations accumulated over all submissions.
  std::size_t total_iterations() const { return total_iterations_; }
  /// Times this context has been executed by a Session.
  std::size_t submissions() const { return submissions_; }
  bool converged() const { return stats_.converged; }
  /// What() of the exception that aborted the last submission (kFailed).
  const std::string& error() const { return error_; }

  /// Process-unique trace id minted at construction; every span and alert
  /// this request produces carries it.  Batched columns keep their own ids
  /// (recorded as column annotations); the merged trace file is keyed by
  /// the batch head's id.
  std::uint64_t trace_id() const { return trace_.trace_id; }
  /// Path of the merged per-request trace written for the most recent
  /// traced submission (empty when tracing was off).
  const std::string& trace_path() const { return trace_path_; }

 private:
  friend class Session;
  friend class AdmissionQueue;

  std::string method_;
  krylov::SolverOptions opts_;
  std::vector<double> b_;
  std::vector<double> x_;
  std::size_t step_limit_ = 0;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;

  JobState state_ = JobState::kPending;
  obs::tracing::TraceContext trace_ = obs::tracing::new_trace();
  std::string trace_path_;
  krylov::SolveStats stats_;
  std::size_t total_iterations_ = 0;
  std::size_t submissions_ = 0;
  std::string error_;
  // Set by AdmissionQueue::submit; read by Session::drain for the
  // admission-wait latency histogram.
  std::chrono::steady_clock::time_point enqueued_at_{};
};

}  // namespace pipescg::service
