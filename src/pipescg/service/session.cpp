#include "pipescg/service/session.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>

#include "pipescg/base/error.hpp"
#include "pipescg/base/timer.hpp"
#include "pipescg/fault/injector.hpp"
#include "pipescg/krylov/multi_rhs.hpp"
#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/spmd_engine.hpp"

namespace pipescg::service {

Session::Session(sparse::CsrMatrix a, SessionConfig config)
    : a_(std::move(a)), config_(config) {
  PIPESCG_CHECK(config_.ranks >= 1, "Session needs at least one rank");
  PIPESCG_CHECK(config_.s >= 1, "Session closure depth s must be >= 1");
  PIPESCG_CHECK(a_.rows() >= static_cast<std::size_t>(config_.ranks),
                "operator has fewer rows than ranks");

  const WallTimer timer;
  partition_ = sparse::Partition(a_.rows(), config_.ranks);
  ++counters_.partition_builds;

  const std::vector<double> full_diag =
      config_.use_preconditioner ? a_.diagonal() : std::vector<double>{};
  rank_state_.resize(static_cast<std::size_t>(config_.ranks));
  for (int r = 0; r < config_.ranks; ++r) {
    RankState& rs = rank_state_[static_cast<std::size_t>(r)];
    rs.dist = std::make_unique<sparse::DistCsr>(a_, partition_, r);
    ++counters_.dist_builds;
    if (config_.mpk) {
      rs.mpk = std::make_unique<sparse::MatrixPowers>(a_, partition_, r,
                                                      config_.s);
      ++counters_.mpk_builds;
    }
    if (config_.use_preconditioner) {
      const std::size_t begin = partition_.begin(r);
      const std::size_t end = partition_.end(r);
      std::vector<double> local_diag(
          full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
          full_diag.begin() + static_cast<std::ptrdiff_t>(end));
      rs.pc = std::make_unique<precond::JacobiPreconditioner>(
          std::move(local_diag), a_.stats());
      ++counters_.pc_builds;
    }
  }

  team_ = std::make_unique<par::PersistentTeam>(config_.ranks);
  ++counters_.team_spawns;
  setup_seconds_ = timer.seconds();
}

obs::metrics::SessionSnapshot Session::snapshot() const {
  obs::metrics::SessionSnapshot s;
  s.ranks = config_.ranks;
  s.solves = solves_;
  s.team_runs = team_->runs();
  s.setup_seconds = setup_seconds_;
  s.partition_builds = counters_.partition_builds;
  s.dist_builds = counters_.dist_builds;
  s.mpk_builds = counters_.mpk_builds;
  s.pc_builds = counters_.pc_builds;
  s.team_spawns = counters_.team_spawns;
  s.warm_hits = counters_.warm_hits;
  s.expired = expired_;
  s.solve_latency = &solve_latency_;
  s.queue_latency = &queue_latency_;
  return s;
}

void Session::solve(SolveContext& ctx) {
  SolveContext* one[] = {&ctx};
  execute(one);
}

void Session::solve_batch(std::span<SolveContext* const> ctxs) {
  PIPESCG_CHECK(!ctxs.empty(), "solve_batch needs at least one context");
  for (std::size_t i = 1; i < ctxs.size(); ++i)
    PIPESCG_CHECK(batchable(*ctxs[0], *ctxs[i]),
                  "solve_batch contexts are not mutually batchable "
                  "(method/s/tolerance/norm/max_iterations must match, no "
                  "step limit)");
  execute(ctxs);
}

void Session::set_observability(Observability obs) {
  obs_ = obs;
  queue_monitor_ = obs::anomaly::QueuePressureMonitor(obs_.queue_pressure);
  live_metrics_ = LiveMetrics{};
  if (obs_.registry == nullptr) return;
  obs::metrics::Registry& reg = *obs_.registry;
  live_metrics_.solves = &reg.counter(
      "pipescg_live_solves_total", "Jobs completed by the session so far");
  live_metrics_.expired = &reg.counter(
      "pipescg_live_expired_total",
      "Jobs whose deadline passed before a submission could start");
  live_metrics_.queue_depth = &reg.gauge(
      "pipescg_live_queue_depth",
      "Admission-queue depth observed at the last drain round");
  live_metrics_.straggler_rank = &reg.gauge(
      "pipescg_anomaly_straggler_rank",
      "Rank currently suspected of straggling (-1 = none)");
  live_metrics_.straggler_rank->set(-1.0);
  auto alerts = [&reg](const char* family) -> obs::metrics::Counter* {
    return &reg.counter("pipescg_anomaly_alerts_total",
                        "Anomaly alerts emitted, by detector family",
                        {{"family", family}});
  };
  live_metrics_.alerts_straggler = alerts("straggler");
  live_metrics_.alerts_stall = alerts("convergence_stall");
  live_metrics_.alerts_saturation = alerts("queue_saturation");
  live_metrics_.alerts_deadline = alerts("deadline_pressure");
}

void Session::emit_alert(const obs::anomaly::Alert& alert) {
  if (obs_.alerts != nullptr) obs_.alerts->emit(alert);
  obs::metrics::Counter* counter = nullptr;
  if (alert.family == "straggler") counter = live_metrics_.alerts_straggler;
  else if (alert.family == "convergence_stall")
    counter = live_metrics_.alerts_stall;
  else if (alert.family == "queue_saturation")
    counter = live_metrics_.alerts_saturation;
  else if (alert.family == "deadline_pressure")
    counter = live_metrics_.alerts_deadline;
  if (counter != nullptr) counter->inc();
  if (alert.family == "straggler" &&
      live_metrics_.straggler_rank != nullptr)
    live_metrics_.straggler_rank->set(static_cast<double>(alert.rank));
}

std::size_t Session::drain(AdmissionQueue& queue, std::size_t max_batch) {
  std::size_t executed = 0;
  for (;;) {
    const std::size_t depth = queue.pending();
    if (live_metrics_.queue_depth != nullptr)
      live_metrics_.queue_depth->set(static_cast<double>(depth));
    if (obs_.alerts != nullptr || obs_.registry != nullptr) {
      if (std::optional<obs::anomaly::Alert> alert =
              queue_monitor_.on_depth(depth))
        emit_alert(*alert);
    }
    const std::vector<SolveContext*> batch = queue.next_batch(max_batch);
    if (batch.empty()) break;
    const auto start = std::chrono::steady_clock::now();
    for (const SolveContext* ctx : batch)
      queue_latency_.add(
          std::chrono::duration<double>(start - ctx->enqueued_at_).count());
    execute(batch);
    executed += batch.size();
  }
  if (live_metrics_.queue_depth != nullptr)
    live_metrics_.queue_depth->set(0.0);
  return executed;
}

void Session::execute(std::span<SolveContext* const> ctxs) {
  // Per-submission iteration budget: what max_iterations leaves after the
  // iterations earlier submissions already spent, clamped by step_limit.
  // Exhausted contexts complete immediately without touching the team.
  std::vector<SolveContext*> live;
  live.reserve(ctxs.size());
  std::size_t budget = std::numeric_limits<std::size_t>::max();
  const bool alerting = obs_.alerts != nullptr || obs_.registry != nullptr;
  bool any_expired = false;
  const auto now = std::chrono::steady_clock::now();
  for (SolveContext* ctx : ctxs) {
    PIPESCG_CHECK(ctx->b_.size() == a_.rows(),
                  "context right-hand side has " +
                      std::to_string(ctx->b_.size()) +
                      " entries, operator has " + std::to_string(a_.rows()) +
                      " rows");
    // Deadline check at the start of every submission: this covers both
    // dequeue (drain -> execute) and each resumed chunk of a step-limited
    // job.  An expired job keeps the iterate it has but never runs again.
    if (ctx->has_deadline_ && now > ctx->deadline_) {
      ctx->state_ = JobState::kExpired;
      ctx->error_ = "deadline exceeded before execution";
      ++expired_;
      any_expired = true;
      if (live_metrics_.expired != nullptr) live_metrics_.expired->inc();
      if (alerting) {
        if (std::optional<obs::anomaly::Alert> alert =
                queue_monitor_.on_dispatch(
                    /*headroom_seconds=*/0.0,
                    solve_latency_.quantile(0.95), /*expired=*/true,
                    ctx->trace_.trace_id))
          emit_alert(*alert);
      }
      continue;
    }
    if (ctx->has_deadline_ && alerting) {
      // Dispatching with less headroom than the session's observed p95
      // solve latency: the job will probably blow its deadline mid-queue
      // next time around -- warn while an operator can still shed load.
      const double headroom =
          std::chrono::duration<double>(ctx->deadline_ - now).count();
      if (std::optional<obs::anomaly::Alert> alert =
              queue_monitor_.on_dispatch(headroom,
                                         solve_latency_.quantile(0.95),
                                         /*expired=*/false,
                                         ctx->trace_.trace_id))
        emit_alert(*alert);
    }
    std::size_t remaining =
        ctx->opts_.max_iterations > ctx->total_iterations_
            ? ctx->opts_.max_iterations - ctx->total_iterations_
            : 0;
    if (ctx->step_limit_ > 0)
      remaining = std::min(remaining, ctx->step_limit_);
    if (remaining == 0) {
      ctx->state_ = JobState::kDone;
      continue;
    }
    budget = std::min(budget, remaining);
    ctx->state_ = JobState::kRunning;
    live.push_back(ctx);
  }
  // Deadline expiry is a terminal event the metrics file must reflect even
  // though no solve ran: flush the sampler so the last window is not
  // silently dropped (satellite of the observability contract).
  if (any_expired && obs_.sampler != nullptr) obs_.sampler->flush();
  if (live.empty()) return;

  const std::size_t k = live.size();
  krylov::SolverOptions opts = live[0]->opts_;
  opts.max_iterations = budget;
  // Session-wide stability defaults: knobs the context left unset inherit
  // the session's.  Applied uniformly to a batch (batchable() guarantees
  // the contexts share their convergence contract).
  if (opts.basis.type == krylov::BasisType::kMonomial)
    opts.basis = config_.basis;
  if (opts.replacement_period == 0)
    opts.replacement_period = config_.replacement_period;
  if (opts.gap_tol <= 0.0) opts.gap_tol = config_.gap_tol;
  if (opts.gap_check_period == 0)
    opts.gap_check_period = config_.gap_check_period;
  const std::string& method = live[0]->method_;
  const int ranks = config_.ranks;

  // --- per-request observability setup ------------------------------------
  // Tracing merges every rank's span ring into one Chrome trace per
  // request; the detectors need measured per-rank waits, so either one
  // turns the per-rank profilers on.  All of it only OBSERVES: no
  // collectives, no solver state, so the iterate trajectory is bitwise
  // identical with observability on or off.
  const bool tracing_on = obs_.traces != nullptr;
  const bool detectors_on = alerting && obs_.detectors && ranks >= 2;
  const bool profiling = tracing_on || detectors_on;
  const std::uint64_t req_trace_id = live[0]->trace_.trace_id;

  std::unique_ptr<obs::tracing::RequestTrace> rtrace;
  std::unique_ptr<obs::tracing::Tracer> svc_tracer;
  std::uint64_t root_id = 0;
  if (tracing_on) {
    // Base epoch: the earliest instant this request touched the service
    // (its enqueue, for drained jobs), so queue wait is on the trace.
    auto base = now;
    for (const SolveContext* ctx : live)
      if (ctx->enqueued_at_ != std::chrono::steady_clock::time_point{} &&
          ctx->enqueued_at_ < base)
        base = ctx->enqueued_at_;
    rtrace = std::make_unique<obs::tracing::RequestTrace>(
        live[0]->trace_, ranks, obs_.trace_capacity, base);
    root_id = rtrace->service_ring().mint();
    svc_tracer = std::make_unique<obs::tracing::Tracer>(
        obs::tracing::TraceContext{req_trace_id, root_id},
        rtrace->service_ring(), base);
    const double svc_offset = rtrace->service_ring().clock_offset();
    for (std::size_t c = 0; c < k; ++c) {
      const SolveContext* ctx = live[c];
      if (ctx->enqueued_at_ == std::chrono::steady_clock::time_point{})
        continue;
      const double enq =
          std::chrono::duration<double>(ctx->enqueued_at_ - base).count();
      svc_tracer->record(
          "queue_wait", enq - svc_offset, svc_tracer->now(),
          {{"column", static_cast<double>(c)},
           {"column_trace_id", static_cast<double>(ctx->trace_.trace_id)}});
    }
  }

  std::unique_ptr<obs::SolveProfile> profile;
  if (profiling) profile = std::make_unique<obs::SolveProfile>(ranks);
  std::vector<std::uint64_t> rank_roots(static_cast<std::size_t>(ranks), 0);

  std::unique_ptr<obs::anomaly::StragglerDetector> straggler;
  std::unique_ptr<obs::anomaly::StallDetector> stall;
  obs::anomaly::MidSolveProbe::Shared probe_shared;
  if (detectors_on) {
    straggler = std::make_unique<obs::anomaly::StragglerDetector>(
        ranks, obs_.straggler);
    stall = std::make_unique<obs::anomaly::StallDetector>(obs_.stall);
    probe_shared.straggler = straggler.get();
    probe_shared.stall = stall.get();
    probe_shared.sink = nullptr;  // alerts route through emit_alert below
    probe_shared.trace_id = req_trace_id;
    probe_shared.on_alert = [](void* arg,
                               const obs::anomaly::Alert& alert) {
      static_cast<Session*>(arg)->emit_alert(alert);
    };
    probe_shared.on_alert_arg = this;
  }

  const WallTimer timer;
  std::vector<krylov::SolveStats> stats(k);
  bool failed = false;
  std::string failure;
  try {
    team_->run([&](par::Comm& comm) {
      const int rank = comm.rank();
      const RankState& rs = rank_state_[static_cast<std::size_t>(rank)];
      const bool use_pc =
          rs.pc != nullptr && krylov::solver_uses_preconditioner(method);
      const sparse::MatrixPowers* mpk =
          rs.mpk != nullptr && opts.s <= rs.mpk->depth() ? rs.mpk.get()
                                                        : nullptr;

      // Deterministic fault injection (tests / chaos drills).
      std::optional<fault::Injector> injector;
      std::optional<fault::Injector::Install> injector_install;
      if (!config_.fault_specs.empty()) {
        injector.emplace(config_.fault_specs, rank);
        injector_install.emplace(&*injector);
      }

      // Request tracing: this rank's tracer records into its own ring of
      // the shared RequestTrace; the rank_solve scope is the rank's root
      // span, parented under the service-track request span.
      std::optional<obs::tracing::Tracer> tracer;
      std::optional<obs::tracing::Tracer::Install> tracer_install;
      if (rtrace != nullptr) {
        tracer.emplace(obs::tracing::TraceContext{req_trace_id, root_id},
                       rtrace->rank_ring(rank), rtrace->base_epoch());
        tracer_install.emplace(&*tracer);
      }
      obs::tracing::Tracer* tr = tracer ? &*tracer : nullptr;
      obs::tracing::TraceScope rank_scope(tr, "rank_solve");
      rank_roots[static_cast<std::size_t>(rank)] = rank_scope.span_id();

      std::optional<obs::anomaly::MidSolveProbe> probe;
      std::optional<obs::anomaly::MidSolveProbe::Install> probe_install;
      if (detectors_on) {
        probe.emplace(&probe_shared, rank);
        probe_install.emplace(&*probe);
      }

      krylov::SpmdEngine engine(
          comm, *rs.dist, use_pc ? rs.pc.get() : nullptr,
          profile != nullptr ? &profile->rank(rank) : nullptr, mpk);
      const std::size_t begin = partition_.begin(rank);
      const std::size_t len = partition_.local_size(rank);

      std::vector<krylov::Vec> bs;
      std::vector<krylov::Vec> xs;
      bs.reserve(k);
      xs.reserve(k);
      {
        obs::tracing::TraceScope scope(tr, "scatter");
        for (const SolveContext* ctx : live) {
          krylov::Vec b = engine.new_vec();
          krylov::Vec x = engine.new_vec();
          for (std::size_t i = 0; i < len; ++i) {
            b[i] = ctx->b_[begin + i];
            x[i] = ctx->x_[begin + i];
          }
          bs.push_back(std::move(b));
          xs.push_back(std::move(x));
        }
      }

      std::vector<krylov::SolveStats> local_stats;
      {
        obs::tracing::TraceScope scope(tr, "solve");
        if (k == 1) {
          local_stats.push_back(krylov::make_solver(method)->solve(
              engine, bs[0], xs[0], opts));
        } else {
          local_stats = krylov::scg_multi_solve(
              engine, std::span<const krylov::Vec>(bs),
              std::span<krylov::Vec>(xs), opts);
        }
      }

      // Every rank writes its own disjoint row slice of each iterate; the
      // replicated scalar stats are taken from rank 0.
      {
        obs::tracing::TraceScope scope(tr, "gather");
        for (std::size_t c = 0; c < k; ++c)
          for (std::size_t i = 0; i < len; ++i)
            live[c]->x_[begin + i] = xs[c][i];
      }
      if (rank == 0)
        for (std::size_t c = 0; c < k; ++c) stats[c] = std::move(local_stats[c]);
    });
  } catch (const std::exception& e) {
    // The persistent team has already recovered its collective state; the
    // jobs in flight are what failed.
    failed = true;
    failure = e.what();
  }
  const double seconds = timer.seconds();

  if (live_metrics_.straggler_rank != nullptr && straggler != nullptr)
    live_metrics_.straggler_rank->set(
        static_cast<double>(straggler->candidate()));

  if (rtrace != nullptr) {
    // Merge: measured kernel spans nest under each rank's root, the
    // service-track request span closes over everything, and the whole
    // request becomes one clock-aligned Perfetto file.
    if (profile != nullptr) rtrace->add_profile(*profile, rank_roots);
    obs::tracing::TraceSpan root;
    root.name = "request";
    root.span_id = root_id;
    root.parent_span_id = 0;
    root.start = -rtrace->service_ring().clock_offset();  // == base epoch
    root.end = svc_tracer->now();
    root.args = {{"columns", static_cast<double>(k)},
                 {"setup_cache_hit", 1.0},
                 {"failed", failed ? 1.0 : 0.0}};
    rtrace->service_ring().push(std::move(root));
    const std::string path = obs_.traces->write(*rtrace);
    for (SolveContext* ctx : live) ctx->trace_path_ = path;
  }

  if (failed) {
    for (SolveContext* ctx : live) {
      ctx->state_ = JobState::kFailed;
      ctx->error_ = failure;
      ++ctx->submissions_;
    }
    return;
  }

  for (std::size_t c = 0; c < k; ++c) {
    SolveContext* ctx = live[c];
    ctx->stats_ = std::move(stats[c]);
    ctx->total_iterations_ += ctx->stats_.iterations;
    ++ctx->submissions_;
    ctx->error_.clear();
    ctx->state_ = JobState::kDone;
    solve_latency_.add(seconds);
  }
  solves_ += k;
  counters_.warm_hits += k;
  if (live_metrics_.solves != nullptr)
    live_metrics_.solves->add(static_cast<double>(k));
}

}  // namespace pipescg::service
