#include "pipescg/service/session.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>
#include <mutex>

#include "pipescg/base/error.hpp"
#include "pipescg/base/timer.hpp"
#include "pipescg/krylov/multi_rhs.hpp"
#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/spmd_engine.hpp"

namespace pipescg::service {

Session::Session(sparse::CsrMatrix a, SessionConfig config)
    : a_(std::move(a)), config_(config) {
  PIPESCG_CHECK(config_.ranks >= 1, "Session needs at least one rank");
  PIPESCG_CHECK(config_.s >= 1, "Session closure depth s must be >= 1");
  PIPESCG_CHECK(a_.rows() >= static_cast<std::size_t>(config_.ranks),
                "operator has fewer rows than ranks");

  const WallTimer timer;
  partition_ = sparse::Partition(a_.rows(), config_.ranks);
  ++counters_.partition_builds;

  const std::vector<double> full_diag =
      config_.use_preconditioner ? a_.diagonal() : std::vector<double>{};
  rank_state_.resize(static_cast<std::size_t>(config_.ranks));
  for (int r = 0; r < config_.ranks; ++r) {
    RankState& rs = rank_state_[static_cast<std::size_t>(r)];
    rs.dist = std::make_unique<sparse::DistCsr>(a_, partition_, r);
    ++counters_.dist_builds;
    if (config_.mpk) {
      rs.mpk = std::make_unique<sparse::MatrixPowers>(a_, partition_, r,
                                                      config_.s);
      ++counters_.mpk_builds;
    }
    if (config_.use_preconditioner) {
      const std::size_t begin = partition_.begin(r);
      const std::size_t end = partition_.end(r);
      std::vector<double> local_diag(
          full_diag.begin() + static_cast<std::ptrdiff_t>(begin),
          full_diag.begin() + static_cast<std::ptrdiff_t>(end));
      rs.pc = std::make_unique<precond::JacobiPreconditioner>(
          std::move(local_diag), a_.stats());
      ++counters_.pc_builds;
    }
  }

  team_ = std::make_unique<par::PersistentTeam>(config_.ranks);
  ++counters_.team_spawns;
  setup_seconds_ = timer.seconds();
}

obs::metrics::SessionSnapshot Session::snapshot() const {
  obs::metrics::SessionSnapshot s;
  s.ranks = config_.ranks;
  s.solves = solves_;
  s.team_runs = team_->runs();
  s.setup_seconds = setup_seconds_;
  s.partition_builds = counters_.partition_builds;
  s.dist_builds = counters_.dist_builds;
  s.mpk_builds = counters_.mpk_builds;
  s.pc_builds = counters_.pc_builds;
  s.team_spawns = counters_.team_spawns;
  s.warm_hits = counters_.warm_hits;
  s.expired = expired_;
  s.solve_latency = &solve_latency_;
  s.queue_latency = &queue_latency_;
  return s;
}

void Session::solve(SolveContext& ctx) {
  SolveContext* one[] = {&ctx};
  execute(one);
}

void Session::solve_batch(std::span<SolveContext* const> ctxs) {
  PIPESCG_CHECK(!ctxs.empty(), "solve_batch needs at least one context");
  for (std::size_t i = 1; i < ctxs.size(); ++i)
    PIPESCG_CHECK(batchable(*ctxs[0], *ctxs[i]),
                  "solve_batch contexts are not mutually batchable "
                  "(method/s/tolerance/norm/max_iterations must match, no "
                  "step limit)");
  execute(ctxs);
}

std::size_t Session::drain(AdmissionQueue& queue, std::size_t max_batch) {
  std::size_t executed = 0;
  for (;;) {
    const std::vector<SolveContext*> batch = queue.next_batch(max_batch);
    if (batch.empty()) break;
    const auto start = std::chrono::steady_clock::now();
    for (const SolveContext* ctx : batch)
      queue_latency_.add(
          std::chrono::duration<double>(start - ctx->enqueued_at_).count());
    execute(batch);
    executed += batch.size();
  }
  return executed;
}

void Session::execute(std::span<SolveContext* const> ctxs) {
  // Per-submission iteration budget: what max_iterations leaves after the
  // iterations earlier submissions already spent, clamped by step_limit.
  // Exhausted contexts complete immediately without touching the team.
  std::vector<SolveContext*> live;
  live.reserve(ctxs.size());
  std::size_t budget = std::numeric_limits<std::size_t>::max();
  const auto now = std::chrono::steady_clock::now();
  for (SolveContext* ctx : ctxs) {
    PIPESCG_CHECK(ctx->b_.size() == a_.rows(),
                  "context right-hand side has " +
                      std::to_string(ctx->b_.size()) +
                      " entries, operator has " + std::to_string(a_.rows()) +
                      " rows");
    // Deadline check at the start of every submission: this covers both
    // dequeue (drain -> execute) and each resumed chunk of a step-limited
    // job.  An expired job keeps the iterate it has but never runs again.
    if (ctx->has_deadline_ && now > ctx->deadline_) {
      ctx->state_ = JobState::kExpired;
      ctx->error_ = "deadline exceeded before execution";
      ++expired_;
      continue;
    }
    std::size_t remaining =
        ctx->opts_.max_iterations > ctx->total_iterations_
            ? ctx->opts_.max_iterations - ctx->total_iterations_
            : 0;
    if (ctx->step_limit_ > 0)
      remaining = std::min(remaining, ctx->step_limit_);
    if (remaining == 0) {
      ctx->state_ = JobState::kDone;
      continue;
    }
    budget = std::min(budget, remaining);
    ctx->state_ = JobState::kRunning;
    live.push_back(ctx);
  }
  if (live.empty()) return;

  const std::size_t k = live.size();
  krylov::SolverOptions opts = live[0]->opts_;
  opts.max_iterations = budget;
  // Session-wide stability defaults: knobs the context left unset inherit
  // the session's.  Applied uniformly to a batch (batchable() guarantees
  // the contexts share their convergence contract).
  if (opts.basis.type == krylov::BasisType::kMonomial)
    opts.basis = config_.basis;
  if (opts.replacement_period == 0)
    opts.replacement_period = config_.replacement_period;
  if (opts.gap_tol <= 0.0) opts.gap_tol = config_.gap_tol;
  if (opts.gap_check_period == 0)
    opts.gap_check_period = config_.gap_check_period;
  const std::string& method = live[0]->method_;

  const WallTimer timer;
  std::vector<krylov::SolveStats> stats(k);
  try {
    team_->run([&](par::Comm& comm) {
      const int rank = comm.rank();
      const RankState& rs = rank_state_[static_cast<std::size_t>(rank)];
      const bool use_pc =
          rs.pc != nullptr && krylov::solver_uses_preconditioner(method);
      const sparse::MatrixPowers* mpk =
          rs.mpk != nullptr && opts.s <= rs.mpk->depth() ? rs.mpk.get()
                                                        : nullptr;
      krylov::SpmdEngine engine(comm, *rs.dist,
                                use_pc ? rs.pc.get() : nullptr,
                                /*profiler=*/nullptr, mpk);
      const std::size_t begin = partition_.begin(rank);
      const std::size_t len = partition_.local_size(rank);

      std::vector<krylov::Vec> bs;
      std::vector<krylov::Vec> xs;
      bs.reserve(k);
      xs.reserve(k);
      for (const SolveContext* ctx : live) {
        krylov::Vec b = engine.new_vec();
        krylov::Vec x = engine.new_vec();
        for (std::size_t i = 0; i < len; ++i) {
          b[i] = ctx->b_[begin + i];
          x[i] = ctx->x_[begin + i];
        }
        bs.push_back(std::move(b));
        xs.push_back(std::move(x));
      }

      std::vector<krylov::SolveStats> local_stats;
      if (k == 1) {
        local_stats.push_back(
            krylov::make_solver(method)->solve(engine, bs[0], xs[0], opts));
      } else {
        local_stats = krylov::scg_multi_solve(
            engine, std::span<const krylov::Vec>(bs),
            std::span<krylov::Vec>(xs), opts);
      }

      // Every rank writes its own disjoint row slice of each iterate; the
      // replicated scalar stats are taken from rank 0.
      for (std::size_t c = 0; c < k; ++c)
        for (std::size_t i = 0; i < len; ++i)
          live[c]->x_[begin + i] = xs[c][i];
      if (rank == 0)
        for (std::size_t c = 0; c < k; ++c) stats[c] = std::move(local_stats[c]);
    });
  } catch (const std::exception& e) {
    // The persistent team has already recovered its collective state; the
    // jobs in flight are what failed.
    for (SolveContext* ctx : live) {
      ctx->state_ = JobState::kFailed;
      ctx->error_ = e.what();
      ++ctx->submissions_;
    }
    return;
  }
  const double seconds = timer.seconds();

  for (std::size_t c = 0; c < k; ++c) {
    SolveContext* ctx = live[c];
    ctx->stats_ = std::move(stats[c]);
    ctx->total_iterations_ += ctx->stats_.iterations;
    ++ctx->submissions_;
    ctx->error_.clear();
    ctx->state_ = JobState::kDone;
    solve_latency_.add(seconds);
  }
  solves_ += k;
  counters_.warm_hits += k;
}

}  // namespace pipescg::service
