// Umbrella header: the public API of the pipescg library.
//
// pipescg reproduces "Pipelined Preconditioned s-step Conjugate Gradient
// Methods for Distributed Memory Systems" (Tiwari & Vadhiyar, IEEE CLUSTER
// 2021).  Typical use:
//
//   auto a = pipescg::sparse::make_poisson125_csr(32);
//   pipescg::precond::JacobiPreconditioner pc(a);
//   pipescg::krylov::SerialEngine engine(a, &pc);
//   auto b = /* rhs */;
//   pipescg::krylov::Vec x = engine.new_vec();
//   auto solver = pipescg::krylov::make_solver("pipe-pscg");
//   auto stats = solver->solve(engine, b, x, {});
//
// See README.md for the architecture overview and examples/ for runnable
// programs.
#pragma once

#include "pipescg/base/cli.hpp"
#include "pipescg/base/error.hpp"
#include "pipescg/base/log.hpp"
#include "pipescg/base/rng.hpp"
#include "pipescg/base/timer.hpp"
#include "pipescg/fault/injector.hpp"
#include "pipescg/fault/recovery.hpp"
#include "pipescg/fault/spec.hpp"
#include "pipescg/krylov/multi_rhs.hpp"
#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/krylov/solver.hpp"
#include "pipescg/krylov/spmd_engine.hpp"
#include "pipescg/la/cholesky.hpp"
#include "pipescg/obs/analysis.hpp"
#include "pipescg/obs/anomaly.hpp"
#include "pipescg/obs/chrome_trace.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/metrics.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/obs/report.hpp"
#include "pipescg/obs/telemetry.hpp"
#include "pipescg/obs/tracing.hpp"
#include "pipescg/la/dense_matrix.hpp"
#include "pipescg/la/lu.hpp"
#include "pipescg/par/comm.hpp"
#include "pipescg/precond/amg.hpp"
#include "pipescg/precond/chebyshev.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/precond/multigrid.hpp"
#include "pipescg/precond/preconditioner.hpp"
#include "pipescg/precond/ssor.hpp"
#include "pipescg/service/queue.hpp"
#include "pipescg/service/session.hpp"
#include "pipescg/service/solve_context.hpp"
#include "pipescg/sim/auto_tune.hpp"
#include "pipescg/sim/cost_table.hpp"
#include "pipescg/sim/machine_model.hpp"
#include "pipescg/sim/timeline.hpp"
#include "pipescg/sim/trace.hpp"
#include "pipescg/sparse/coo_builder.hpp"
#include "pipescg/sparse/csr_matrix.hpp"
#include "pipescg/sparse/bytes_model.hpp"
#include "pipescg/sparse/dist_csr.hpp"
#include "pipescg/sparse/dist_stencil.hpp"
#include "pipescg/sparse/format.hpp"
#include "pipescg/sparse/matrix_market.hpp"
#include "pipescg/sparse/matrix_powers.hpp"
#include "pipescg/sparse/partition.hpp"
#include "pipescg/sparse/poisson125.hpp"
#include "pipescg/sparse/sell_matrix.hpp"
#include "pipescg/sparse/spgemm.hpp"
#include "pipescg/sparse/stencil.hpp"
#include "pipescg/sparse/stencil_operator.hpp"
#include "pipescg/sparse/surrogates.hpp"
