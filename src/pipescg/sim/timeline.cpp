#include "pipescg/sim/timeline.hpp"

#include <algorithm>
#include <unordered_map>

#include "pipescg/base/error.hpp"

namespace pipescg::sim {

TimelineResult Timeline::evaluate(const EventTrace& trace, int ranks) const {
  PIPESCG_CHECK(ranks >= 1, "timeline needs at least one rank");
  TimelineResult result;
  double t = 0.0;

  struct Pending {
    double start;
    double g;
  };
  std::unordered_map<std::uint64_t, Pending> pending;

  const auto& ops = trace.operators();
  const auto& pcs = trace.pcs();

  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kCompute: {
        const double dt = machine_.compute_seconds(e.flops, e.bytes, ranks);
        t += dt;
        result.compute_seconds += dt;
        break;
      }
      case EventKind::kSpmv: {
        PIPESCG_CHECK(e.index < ops.size(), "spmv event: unknown operator");
        const double dt = machine_.spmv_seconds(ops[e.index], ranks);
        t += dt;
        result.compute_seconds += dt;
        break;
      }
      case EventKind::kPcApply: {
        PIPESCG_CHECK(e.index < pcs.size(), "pc event: unknown profile");
        const PcCostProfile& pc = pcs[e.index];
        double dt = machine_.compute_seconds(pc.flops, pc.bytes, ranks);
        if (ranks > 1 && pc.halo_exchanges > 0.0) {
          const double halo =
              pc.stats.halo_messages_per_rank(ranks) * machine_.neigh_latency +
              8.0 * pc.stats.halo_doubles_per_rank(ranks) / machine_.link_bw;
          dt += pc.halo_exchanges * halo;
        }
        t += dt;
        result.compute_seconds += dt;
        break;
      }
      case EventKind::kAllreducePost: {
        const auto doubles = static_cast<std::size_t>(e.bytes);
        const bool blocking = e.value > 0.5;
        const double g = blocking
                             ? machine_.allreduce_seconds(ranks, doubles)
                             : machine_.iallreduce_seconds(ranks, doubles);
        pending[e.id] = Pending{t, g};
        result.allreduce_total_seconds += g;
        if (!blocking) {
          // Async-progress software overhead charged to the poster.
          const double ovh = machine_.unoverlappable_fraction * g;
          t += ovh;
          result.compute_seconds += ovh;
        }
        break;
      }
      case EventKind::kAllreduceWait: {
        const auto it = pending.find(e.id);
        PIPESCG_CHECK(it != pending.end(), "wait without matching post");
        const double done = it->second.start + it->second.g;
        if (done > t) {
          result.allreduce_wait_seconds += done - t;
          t = done;
        }
        pending.erase(it);
        break;
      }
      case EventKind::kIterationMark: {
        result.marks.push_back(TimelineResult::Mark{t, e.id, e.value});
        break;
      }
    }
  }
  result.seconds = t;
  return result;
}

}  // namespace pipescg::sim
