#include "pipescg/sim/timeline.hpp"

#include <algorithm>
#include <unordered_map>

#include "pipescg/base/error.hpp"

namespace pipescg::sim {

const char* to_string(ScheduledSpan::Kind kind) {
  switch (kind) {
    case ScheduledSpan::Kind::kCompute:
      return "compute";
    case ScheduledSpan::Kind::kSpmv:
      return "spmv";
    case ScheduledSpan::Kind::kPcApply:
      return "pc_apply";
    case ScheduledSpan::Kind::kPostOverhead:
      return "post_overhead";
    case ScheduledSpan::Kind::kAllreduce:
      return "allreduce";
    case ScheduledSpan::Kind::kAllreduceWait:
      return "allreduce_wait";
  }
  return "?";
}

TimelineResult Timeline::evaluate(const EventTrace& trace, int ranks,
                                  std::vector<ScheduledSpan>* schedule) const {
  PIPESCG_CHECK(ranks >= 1, "timeline needs at least one rank");
  TimelineResult result;
  double t = 0.0;

  struct Pending {
    double start;
    double g;
    bool blocking;
  };
  std::unordered_map<std::uint64_t, Pending> pending;

  const auto emit = [schedule](ScheduledSpan::Kind kind, double start,
                               double end, std::uint64_t id = 0,
                               bool blocking = false) {
    if (schedule != nullptr && end > start)
      schedule->push_back(ScheduledSpan{kind, start, end, id, blocking});
  };

  const auto& ops = trace.operators();
  const auto& pcs = trace.pcs();

  for (const Event& e : trace.events()) {
    switch (e.kind) {
      case EventKind::kCompute: {
        const double dt = machine_.compute_seconds(e.flops, e.bytes, ranks);
        emit(ScheduledSpan::Kind::kCompute, t, t + dt);
        t += dt;
        result.compute_seconds += dt;
        break;
      }
      case EventKind::kSpmv: {
        PIPESCG_CHECK(e.index < ops.size(), "spmv event: unknown operator");
        const double dt = machine_.spmv_seconds(ops[e.index], ranks);
        emit(ScheduledSpan::Kind::kSpmv, t, t + dt);
        t += dt;
        result.compute_seconds += dt;
        break;
      }
      case EventKind::kPcApply: {
        PIPESCG_CHECK(e.index < pcs.size(), "pc event: unknown profile");
        const PcCostProfile& pc = pcs[e.index];
        double dt = machine_.compute_seconds(pc.flops, pc.bytes, ranks);
        if (ranks > 1 && pc.halo_exchanges > 0.0) {
          const double halo =
              pc.stats.halo_messages_per_rank(ranks) * machine_.neigh_latency +
              8.0 * pc.stats.halo_doubles_per_rank(ranks) / machine_.link_bw;
          dt += pc.halo_exchanges * halo;
        }
        emit(ScheduledSpan::Kind::kPcApply, t, t + dt);
        t += dt;
        result.compute_seconds += dt;
        break;
      }
      case EventKind::kAllreducePost: {
        const auto doubles = static_cast<std::size_t>(e.bytes);
        const bool blocking = e.value > 0.5;
        const double g = blocking
                             ? machine_.allreduce_seconds(ranks, doubles)
                             : machine_.iallreduce_seconds(ranks, doubles);
        pending[e.id] = Pending{t, g, blocking};
        result.allreduce_total_seconds += g;
        if (!blocking) {
          // Async-progress software overhead charged to the poster.
          const double ovh = machine_.unoverlappable_fraction * g;
          emit(ScheduledSpan::Kind::kPostOverhead, t, t + ovh, e.id);
          t += ovh;
          result.compute_seconds += ovh;
        }
        break;
      }
      case EventKind::kAllreduceWait: {
        const auto it = pending.find(e.id);
        PIPESCG_CHECK(it != pending.end(), "wait without matching post");
        const double done = it->second.start + it->second.g;
        emit(ScheduledSpan::Kind::kAllreduce, it->second.start, done, e.id,
             it->second.blocking);
        if (done > t) {
          emit(ScheduledSpan::Kind::kAllreduceWait, t, done, e.id,
               it->second.blocking);
          result.allreduce_wait_seconds += done - t;
          t = done;
        }
        pending.erase(it);
        break;
      }
      case EventKind::kIterationMark: {
        result.marks.push_back(TimelineResult::Mark{t, e.id, e.value});
        break;
      }
    }
  }
  result.seconds = t;
  return result;
}

}  // namespace pipescg::sim
