// Automatic s selection -- the paper's future work, implemented.
//
// "We plan to devise a model which would give the optimum s value when the
//  linear system dimensions, the number of cores [...] and the desired
//  accuracy are given to it as input." (paper Section VII)
//
// The machine model prices one CG-equivalent iteration of PIPE-PsCG at
// depth s:
//
//   t(s) = [ kappa G(s) + max((1 - kappa) G(s), s (PC + SPMV) + V(s)) ] / s
//
// where G(s) is the non-blocking allreduce latency for the depth-s dot
// batch (payload (2s+1) + s^2 + 2 doubles), V(s) the recurrence vector work
// (Table I: (4s^3 + 12s^2 + 2s + 5) N flops per s iterations), plus the
// stability-anchoring kernels the implementation adds at s >= 4 (DESIGN.md
// section 6).  suggest_s() returns the arg-min over the stable range.
#pragma once

#include "pipescg/sim/machine_model.hpp"
#include "pipescg/sim/trace.hpp"

namespace pipescg::sim {

struct SRecommendation {
  int s = 3;
  double seconds_per_iteration = 0.0;     // modeled, at the chosen s
  std::vector<double> per_s_seconds;      // index i -> s = i + 1
};

/// Modeled seconds per CG-equivalent iteration of PIPE-PsCG at depth `s`.
/// `include_anchoring` adds this implementation's stability-replacement
/// kernels; pass false for the paper's pure-recurrence cost (used by the
/// Fig. 3 model-view, which exhibits the paper's s-crossover).
/// `shifted_basis` models a Newton/Chebyshev basis (krylov::BasisSpec): the
/// dot-batch payload widens to the Gram triangle (s+1)(s+2)/2 + s^2 + 2,
/// and the anchoring cadence stays at the relaxed period 16 for EVERY s --
/// the conditioning penalty that forces period 4/1 on the monomial basis at
/// s >= 4 is what the shifted family removes.
double pipe_pscg_seconds_per_iteration(const MachineModel& machine,
                                       const sparse::OperatorStats& stats,
                                       const PcCostProfile& pc, int ranks,
                                       int s, bool include_anchoring = true,
                                       bool shifted_basis = false);

/// Best depth for the given operator/preconditioner/node count, over
/// s in [1, max_s] (default stability-capped at 5; a shifted basis makes
/// larger max_s worth asking about).
SRecommendation suggest_s(const MachineModel& machine,
                          const sparse::OperatorStats& stats,
                          const PcCostProfile& pc, int ranks, int max_s = 5,
                          bool shifted_basis = false);

struct FormatRecommendation {
  sparse::SparseFormat format = sparse::SparseFormat::kCsr;
  double csr_seconds = 0.0;   // modelled local SPMV, CSR storage
  double sell_seconds = 0.0;  // modelled local SPMV, SELL-C-sigma storage
  /// csr_seconds / sell_seconds (> 1 favours SELL).
  double sell_speedup = 1.0;
};

/// Pick the local-sweep storage format for the operator at `ranks` ranks by
/// pricing both layouts with MachineModel::local_spmv_seconds.  On the
/// bandwidth roofline this reduces to the traffic ratio 16 B/nnz versus
/// padding * 12 B/nnz, so SELL wins unless padding exceeds ~4/3 -- but very
/// small per-rank slices are flop-bound, where the layouts tie and the
/// recommendation stays CSR (no conversion cost for no win).
FormatRecommendation suggest_format(const MachineModel& machine,
                                    const sparse::OperatorStats& stats,
                                    int ranks);

}  // namespace pipescg::sim
