// Solver event traces.
//
// A solver run on the SerialEngine records the exact sequence of kernel
// invocations and allreduce post/wait points.  The sequence is independent of
// the simulated rank count (the numerics are identical however the vectors
// are partitioned), so a single solve yields the timing for *every* node
// count via Timeline::evaluate -- this is what lets the benches sweep 1..140
// nodes from one solve per method.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pipescg/sparse/operator.hpp"

namespace pipescg::sim {

enum class EventKind : std::uint8_t {
  kCompute,        // generic vector work: flops + bytes
  kSpmv,           // one SPMV of operator `index`
  kPcApply,        // one preconditioner application of profile `index`
  kAllreducePost,  // allreduce posted: id + payload doubles; value == 1.0
                   // marks a *blocking* collective (MPI_Allreduce), 0.0 a
                   // non-blocking one (MPI_Iallreduce)
  kAllreduceWait,  // wait on allreduce `id`
  kIterationMark,  // end of CG-equivalent iteration `iter`, residual `value`
};

struct Event {
  EventKind kind;
  std::uint64_t id = 0;       // allreduce id or iteration number
  double flops = 0.0;         // kCompute
  double bytes = 0.0;         // kCompute / payload doubles for posts
  std::uint32_t index = 0;    // operator / pc profile index
  double value = 0.0;         // residual norm for iteration marks
};

/// Cost profile of a preconditioner application, in whole-problem units.
struct PcCostProfile {
  std::string name = "identity";
  double flops = 0.0;
  double bytes = 0.0;
  // Communication per apply, expressed as equivalent SPMV halo exchanges
  // (e.g. SSOR ~ 1, MG V-cycle ~ 2 x levels).
  double halo_exchanges = 0.0;
  // Stats used to size those halo exchanges (usually the operator's).
  sparse::OperatorStats stats;
};

class EventTrace {
 public:
  /// Register metadata; returns the index events refer to.
  std::uint32_t register_operator(const sparse::OperatorStats& stats);
  std::uint32_t register_pc(const PcCostProfile& profile);

  void record(const Event& e) { events_.push_back(e); }

  const std::vector<Event>& events() const { return events_; }
  const std::vector<sparse::OperatorStats>& operators() const {
    return operators_;
  }
  const std::vector<PcCostProfile>& pcs() const { return pcs_; }

  /// Reset the trace to a pristine state: events *and* registered
  /// operator/PC metadata are discarded, so indices handed out by earlier
  /// register_* calls become invalid.  An engine holding such indices must
  /// not keep recording into a cleared trace -- use clear_events() to drop
  /// the event list while keeping registrations valid (e.g. to reuse one
  /// engine for a warm-up solve followed by a measured solve).
  void clear() {
    events_.clear();
    operators_.clear();
    pcs_.clear();
  }
  void clear_events() { events_.clear(); }

  /// Kernel counters (cross-checked against Table I in tests/benches).
  struct Counters {
    std::size_t spmvs = 0;
    std::size_t pc_applies = 0;
    std::size_t allreduces = 0;
    std::size_t iterations = 0;  // CG-equivalent iterations
    double vector_flops = 0.0;   // VMA + dot flops (excl. SPMV/PC)
  };
  Counters counters() const;

 private:
  std::vector<Event> events_;
  std::vector<sparse::OperatorStats> operators_;
  std::vector<PcCostProfile> pcs_;
};

}  // namespace pipescg::sim
