#include "pipescg/sim/auto_tune.hpp"

#include <algorithm>

#include "pipescg/base/error.hpp"

namespace pipescg::sim {

double pipe_pscg_seconds_per_iteration(const MachineModel& machine,
                                       const sparse::OperatorStats& stats,
                                       const PcCostProfile& pc, int ranks,
                                       int s, bool include_anchoring,
                                       bool shifted_basis) {
  PIPESCG_CHECK(s >= 1, "s must be positive");
  const double n = static_cast<double>(stats.rows);

  const double spmv = machine.spmv_seconds(stats, ranks);
  double pc_apply = machine.compute_seconds(pc.flops, pc.bytes, ranks);
  if (ranks > 1 && pc.halo_exchanges > 0.0) {
    pc_apply += pc.halo_exchanges *
                (pc.stats.halo_messages_per_rank(ranks) *
                     machine.neigh_latency +
                 8.0 * pc.stats.halo_doubles_per_rank(ranks) /
                     machine.link_bw);
  }

  // Dot batch: (2s+1) moments + s^2 cross + 2 norms for the monomial basis;
  // a shifted basis reduces the Gram upper triangle instead of the moment
  // vector, widening the payload to (s+1)(s+2)/2 + s^2 + 2.
  const std::size_t payload =
      shifted_basis
          ? static_cast<std::size_t>((s + 1) * (s + 2) / 2 + s * s + 2)
          : static_cast<std::size_t>(2 * s + 1 + s * s + 2);
  const double g = machine.iallreduce_seconds(ranks, payload);

  // Recurrence vector work per s iterations (Table I) as stream traffic.
  const double flops =
      (4.0 * s * s * s + 12.0 * s * s + 2.0 * s + 5.0) * n;
  const double vector_work =
      machine.compute_seconds(flops, 8.0 * flops, ranks);

  // Stability anchoring (DESIGN.md): extra (s+1) SPMVs + PCs every
  // `period` outer iterations.
  // A shifted basis keeps the basis Gram matrix well conditioned at large
  // s, so the aggressive period-4/1 anchoring the monomial powers need at
  // s >= 4 relaxes back to the period-16 cadence for every depth.
  double anchoring = 0.0;
  if (include_anchoring) {
    const int period =
        shifted_basis ? 16 : (s <= 3 ? 16 : (s == 4 ? 4 : 1));
    anchoring = (s + 1.0) * (spmv + pc_apply) / period;
  }

  const double overlap_compute = s * (pc_apply + spmv) + vector_work;
  const double per_outer = machine.unoverlappable_fraction * g +
                           std::max((1.0 - machine.unoverlappable_fraction) * g,
                                    overlap_compute) +
                           anchoring;
  return per_outer / s;
}

SRecommendation suggest_s(const MachineModel& machine,
                          const sparse::OperatorStats& stats,
                          const PcCostProfile& pc, int ranks, int max_s,
                          bool shifted_basis) {
  PIPESCG_CHECK(max_s >= 1 && max_s <= 16, "max_s out of range");
  SRecommendation rec;
  rec.per_s_seconds.reserve(static_cast<std::size_t>(max_s));
  double best = 1e300;
  for (int s = 1; s <= max_s; ++s) {
    const double t = pipe_pscg_seconds_per_iteration(
        machine, stats, pc, ranks, s, /*include_anchoring=*/true,
        shifted_basis);
    rec.per_s_seconds.push_back(t);
    if (t < best) {
      best = t;
      rec.s = s;
      rec.seconds_per_iteration = t;
    }
  }
  return rec;
}

FormatRecommendation suggest_format(const MachineModel& machine,
                                    const sparse::OperatorStats& stats,
                                    int ranks) {
  FormatRecommendation rec;
  rec.csr_seconds =
      machine.local_spmv_seconds(stats, ranks, sparse::SparseFormat::kCsr);
  rec.sell_seconds =
      machine.local_spmv_seconds(stats, ranks, sparse::SparseFormat::kSell);
  rec.sell_speedup = rec.csr_seconds / rec.sell_seconds;
  rec.format = rec.sell_speedup > 1.0 ? sparse::SparseFormat::kSell
                                      : sparse::SparseFormat::kCsr;
  return rec;
}

}  // namespace pipescg::sim
