// Analytic cost comparison of the PCG variants -- the paper's Table I.
//
// Every row carries both the formula strings as printed in the paper and
// evaluators so the benches can print the table for a concrete (s, G, PC,
// SPMV) operating point and cross-check the counters recorded from the real
// solver implementations.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "pipescg/sim/machine_model.hpp"
#include "pipescg/sparse/operator.hpp"

namespace pipescg::sim {

struct CostRow {
  std::string method;
  std::string allreduces_formula;  // per s iterations
  std::string time_formula;        // per s iterations
  std::string flops_formula;       // x N, per s iterations
  std::string memory_formula;      // vectors (excluding x and b)

  std::function<double(int s)> allreduces;
  // time(s, G, PC, SPMV) in the same unit as its inputs
  std::function<double(int s, double g, double pc, double spmv)> time;
  std::function<double(int s)> flops;
  std::function<double(int s)> memory;
};

/// The seven methods of Table I, in the paper's order.
std::vector<CostRow> cost_table();

/// Look up one row by method name ("pcg", "pipecg", "pipelcg", "pipecg3",
/// "pipecg-oati", "pscg", "pipe-pscg").  Throws on unknown names.
const CostRow& cost_row(const std::string& method);

/// Render the table for a concrete operating point.
void print_cost_table(std::ostream& os, int s, double g, double pc,
                      double spmv);

/// Render the matrix-powers trade: for s = 1..6, the modelled time of s
/// chained SPMVs (s halo epochs) versus one depth-s block (one epoch plus
/// redundant ghost-row compute; MachineModel::spmv_block_seconds) at the
/// given rank count, with the speedup.  The block wins for s >= 2 whenever
/// message latency dominates the redundant flops.
void print_spmv_block_table(std::ostream& os, const MachineModel& machine,
                            const sparse::OperatorStats& stats, int ranks);

/// Render the local-sweep format trade: modelled CSR (16 B/nnz int64
/// indices) versus SELL-C-sigma (padding * 12 B/nnz int32 indices) seconds
/// per local SPMV at the given rank count
/// (MachineModel::local_spmv_seconds), with the speedup.
void print_format_table(std::ostream& os, const MachineModel& machine,
                        const sparse::OperatorStats& stats, int ranks);

}  // namespace pipescg::sim
