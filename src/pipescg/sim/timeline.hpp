// Timeline replay: turn an EventTrace into elapsed seconds for P ranks.
//
// One representative rank clock is advanced through the trace (the SPMD
// ranks are symmetric under a balanced partition):
//
//   compute/spmv/pc : t += kernel cost at `ranks`
//   post(id)        : start[id] = t; non-blocking posts also charge the
//                     unoverlappable fraction of G (async progress cost)
//   wait(id)        : t = max(t, start[id] + G)
// where G is the blocking or non-blocking collective latency per the
// event's tag (see sim::MachineModel::nonblocking_penalty)
//
// so overlap falls out of the *recorded structure*: whatever compute the
// solver actually issued between post and wait hides that much of G.
#pragma once

#include <vector>

#include "pipescg/sim/machine_model.hpp"
#include "pipescg/sim/trace.hpp"

namespace pipescg::sim {

/// One scheduled interval on the modeled rank's clock, produced when
/// Timeline::evaluate is asked to keep its schedule.  This is the modeled
/// analogue of an obs::Span: obs::chrome_trace renders both in the same
/// trace-event format so a Perfetto view can compare them side by side.
struct ScheduledSpan {
  enum class Kind {
    kCompute,        // generic vector work
    kSpmv,           // one SPMV
    kPcApply,        // one preconditioner application
    kPostOverhead,   // unoverlappable fraction of a non-blocking post
    kAllreduce,      // the collective in flight (post time .. completion)
    kAllreduceWait,  // rank stalled waiting for a collective
  };
  Kind kind;
  double start = 0.0;  // seconds on the modeled rank clock
  double end = 0.0;
  std::uint64_t id = 0;  // allreduce id for the allreduce kinds
  bool blocking = false;
};

const char* to_string(ScheduledSpan::Kind kind);

struct TimelineResult {
  double seconds = 0.0;
  double compute_seconds = 0.0;     // kernels incl. unoverlappable post cost
  double allreduce_wait_seconds = 0.0;  // time actually stalled in waits
  double allreduce_total_seconds = 0.0; // sum of G over all allreduces
  // (time, iteration, residual) at every iteration mark; drives Fig. 5.
  struct Mark {
    double time;
    std::uint64_t iteration;
    double residual;
  };
  std::vector<Mark> marks;
};

class Timeline {
 public:
  explicit Timeline(MachineModel machine) : machine_(machine) {}

  /// Replay `trace` at `ranks`.  When `schedule` is non-null, additionally
  /// append every priced interval (kernels, post overheads, in-flight
  /// collectives, wait stalls) so exporters can render the modeled timeline.
  TimelineResult evaluate(const EventTrace& trace, int ranks,
                          std::vector<ScheduledSpan>* schedule = nullptr) const;

  /// Convenience: seconds at `nodes` full nodes.
  double seconds_at_nodes(const EventTrace& trace, int nodes) const {
    return evaluate(trace, machine_.ranks_for_nodes(nodes)).seconds;
  }

  const MachineModel& machine() const { return machine_; }

 private:
  MachineModel machine_;
};

}  // namespace pipescg::sim
