// Timeline replay: turn an EventTrace into elapsed seconds for P ranks.
//
// One representative rank clock is advanced through the trace (the SPMD
// ranks are symmetric under a balanced partition):
//
//   compute/spmv/pc : t += kernel cost at `ranks`
//   post(id)        : start[id] = t; non-blocking posts also charge the
//                     unoverlappable fraction of G (async progress cost)
//   wait(id)        : t = max(t, start[id] + G)
// where G is the blocking or non-blocking collective latency per the
// event's tag (see sim::MachineModel::nonblocking_penalty)
//
// so overlap falls out of the *recorded structure*: whatever compute the
// solver actually issued between post and wait hides that much of G.
#pragma once

#include <vector>

#include "pipescg/sim/machine_model.hpp"
#include "pipescg/sim/trace.hpp"

namespace pipescg::sim {

struct TimelineResult {
  double seconds = 0.0;
  double compute_seconds = 0.0;     // kernels incl. unoverlappable post cost
  double allreduce_wait_seconds = 0.0;  // time actually stalled in waits
  double allreduce_total_seconds = 0.0; // sum of G over all allreduces
  // (time, iteration, residual) at every iteration mark; drives Fig. 5.
  struct Mark {
    double time;
    std::uint64_t iteration;
    double residual;
  };
  std::vector<Mark> marks;
};

class Timeline {
 public:
  explicit Timeline(MachineModel machine) : machine_(machine) {}

  TimelineResult evaluate(const EventTrace& trace, int ranks) const;

  /// Convenience: seconds at `nodes` full nodes.
  double seconds_at_nodes(const EventTrace& trace, int nodes) const {
    return evaluate(trace, machine_.ranks_for_nodes(nodes)).seconds;
  }

  const MachineModel& machine() const { return machine_; }

 private:
  MachineModel machine_;
};

}  // namespace pipescg::sim
