// Analytic machine model of a Cray-XC40-like distributed-memory system.
//
// The paper measures on SahasraT (1376 nodes x 24 cores, Aries interconnect,
// cray-mpich with DMAPP async progress).  We price each solver kernel for a
// given rank count with a roofline-flavoured model:
//
//   kernel time   = max(flops / flop_rate, bytes / mem_bw_effective)
//   SPMV          = kernel time + neighbor messages (halo exchange)
//   allreduce     = (lat_base + lat_hop * ceil(log2 R)^hop_exponent
//                    + bytes_beta * bytes * ceil(log2 R))
//   non-blocking  = an `unoverlappable_fraction` of the allreduce cost is
//                   charged as compute at post time (models the async
//                   progress engine stealing cycles: the paper needed
//                   MPICH_NEMESIS_ASYNC_PROGRESS=1, which is known to add
//                   software overhead); the remainder proceeds concurrently
//                   and wait() advances the clock to max(now, post + G).
//
// The hop_exponent > 1 default reflects measured Cray allreduce behaviour
// under async progress at scale (super-logarithmic growth); together with
// the roofline these defaults reproduce the crossover structure of the
// paper's Figs. 1-4 (see EXPERIMENTS.md for the calibration record).
#pragma once

#include <cstddef>
#include <string>

#include "pipescg/sparse/format.hpp"
#include "pipescg/sparse/operator.hpp"

namespace pipescg::sim {

struct MachineModel {
  // Topology.
  int cores_per_node = 24;

  // Compute roofline, per core.
  double flop_rate = 2.0e9;        // sustained flop/s on sparse kernels
  double mem_bw = 2.8e9;           // bytes/s per core (node bw / cores)
  double cache_boost = 2.0;        // bw multiplier when the per-node working
  double llc_bytes = 3.0e7;        // set fits in the last-level cache

  // Network: neighbor (halo) messages.
  double neigh_latency = 1.5e-6;   // per message
  double link_bw = 8.0e9;          // bytes/s per rank for halo payloads

  // Network: allreduce (blocking MPI_Allreduce, vendor-tuned).
  double lat_base = 5.0e-6;        // fixed software cost per allreduce
  double lat_hop = 0.7e-6;         // per ceil(log2 R)^hop_exponent
  double hop_exponent = 2.0;
  double bytes_beta = 4.0e-10;     // per byte per hop

  // Non-blocking allreduce (MPI_Iallreduce with the async progress engine
  // the paper enables via MPICH_NEMESIS_ASYNC_PROGRESS): optionally slower
  // end-to-end than the tuned blocking collective by `nonblocking_penalty`
  // (1.0 = no penalty; raise it to study async-progress overhead -- see the
  // ablation in bench_fig1), and a fraction of it cannot be hidden
  // (progress threads steal cycles).
  double nonblocking_penalty = 1.0;
  double unoverlappable_fraction = 0.15;

  /// Total ranks for a node count.
  int ranks_for_nodes(int nodes) const { return nodes * cores_per_node; }

  /// Time for a pure compute kernel on one rank of `ranks`.
  /// `total_flops`/`total_bytes` are whole-problem quantities; the kernel is
  /// assumed perfectly partitioned.
  double compute_seconds(double total_flops, double total_bytes,
                         int ranks) const;

  /// Local compute portion of one SPMV (roofline, no halo terms).
  double spmv_compute_seconds(const sparse::OperatorStats& stats,
                              int ranks) const;

  // Format pricing.  spmv_compute_seconds above is the historical 12 B/nnz
  // calibration every existing bench/report is pinned to; it stays untouched.
  // The per-format model below prices the LOCAL sweep with honest traffic:
  // CSR moves 16 B/nnz (8 B value + 8 B int64 index), SELL-C-sigma moves
  // sell_padding * 12 B/nnz (8 B value + 4 B int32 index, scaled by the
  // expected chunk-padding overhead).  Only the new format advisories
  // (sim::suggest_format, print_format_table) consume it.
  double sell_padding = 1.03;  // slots/nnz after the sigma-window sort

  /// Local sweep time of one SPMV stored in `format` at `ranks` ranks.
  double local_spmv_seconds(const sparse::OperatorStats& stats, int ranks,
                            sparse::SparseFormat format) const;

  /// One SPMV of an operator with the given stats at `ranks` ranks:
  /// compute + one halo exchange (messages * latency + volume / bandwidth).
  double spmv_seconds(const sparse::OperatorStats& stats, int ranks) const;

  /// An s-SPMV matrix-powers block (sparse::MatrixPowers) at `ranks` ranks:
  ///   s * compute + redundant_flop(s) + 1 * (alpha + beta * deep_halo)
  /// versus s * (compute + alpha + beta * halo) for s chained spmv_seconds.
  /// The depth-s ghost region is modelled as s stacked depth-1 halos (exact
  /// for slab-partitioned stencils, a good estimate for banded CSR), so the
  /// deep volume is s * halo_doubles and the redundant ghost rows number
  /// sum_{l=1..s-1} (s-l) * halo_doubles = s(s-1)/2 * halo_doubles, each
  /// recomputed at the operator's average row cost.  Message latency is
  /// paid ONCE -- the whole point of the kernel.
  double spmv_block_seconds(const sparse::OperatorStats& stats, int ranks,
                            int s) const;

  /// Blocking allreduce of `doubles` values across `ranks` ranks.
  double allreduce_seconds(int ranks, std::size_t doubles) const;

  // One-time session setup (service::Session): partitioning, per-rank
  // distributed-CSR remap + ghost-run discovery, the optional depth-s
  // matrix-powers closure, preconditioner setup, and spawning the rank
  // team.  Modelled as structure-streaming passes over the operator (the
  // builds are pointer-chasing over nnz, priced at the memory roofline with
  // `setup_pass_factor` passes) plus a per-rank thread/communicator spawn
  // cost.  Deliberately coarse -- its role is the amortization story, not
  // kernel-level fidelity.
  double setup_pass_factor = 3.0;   // structure passes per build
  double spawn_per_rank = 50.0e-6;  // thread + communicator spawn

  /// Wall cost of the cold Session setup for an operator with `stats` at
  /// `ranks` ranks.  `s_depth` > 1 adds the matrix-powers closure (one more
  /// structure pass per ghost layer); `with_pc` adds the diagonal pass.
  double setup_seconds(const sparse::OperatorStats& stats, int ranks,
                       int s_depth, bool with_pc) const;

  /// Per-solve cost once the setup is amortized over `solves` requests:
  ///   solve_seconds + setup / solves.
  /// The break-even request count against a cold per-solve setup is
  /// setup / solve_seconds -- the service-layer analogue of the paper's
  /// s-step latency-amortization argument.
  static double amortized_solve_seconds(double setup_s, double solve_s,
                                        std::size_t solves) {
    return solve_s + (solves == 0 ? setup_s
                                  : setup_s / static_cast<double>(solves));
  }

  /// End-to-end latency of the non-blocking allreduce.
  double iallreduce_seconds(int ranks, std::size_t doubles) const {
    return nonblocking_penalty * allreduce_seconds(ranks, doubles);
  }

  /// Descriptive label for reports.
  std::string describe() const;

  /// The default calibration used by the benches.
  static MachineModel cray_xc40_like() { return MachineModel{}; }
};

}  // namespace pipescg::sim
