#include "pipescg/sim/machine_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pipescg::sim {

double MachineModel::compute_seconds(double total_flops, double total_bytes,
                                     int ranks) const {
  const double flops = total_flops / ranks;
  const double bytes = total_bytes / ranks;
  // Cache regime: working set per *node* vs last-level cache.
  const double bytes_per_node = total_bytes * cores_per_node / ranks;
  const double bw = bytes_per_node <= llc_bytes ? mem_bw * cache_boost : mem_bw;
  return std::max(flops / flop_rate, bytes / bw);
}

double MachineModel::spmv_compute_seconds(const sparse::OperatorStats& stats,
                                          int ranks) const {
  const double nnz = static_cast<double>(stats.nnz);
  const double n = static_cast<double>(stats.rows);
  // CSR traffic: 12 bytes per nonzero (value + index) + vector streams.
  return compute_seconds(2.0 * nnz, 12.0 * nnz + 8.0 * 2.0 * n, ranks);
}

double MachineModel::local_spmv_seconds(const sparse::OperatorStats& stats,
                                        int ranks,
                                        sparse::SparseFormat format) const {
  const double nnz = static_cast<double>(stats.nnz);
  const double n = static_cast<double>(stats.rows);
  const double matrix_bytes = format == sparse::SparseFormat::kSell
                                  ? sell_padding * 12.0 * nnz
                                  : 16.0 * nnz;
  return compute_seconds(2.0 * nnz, matrix_bytes + 8.0 * 2.0 * n, ranks);
}

double MachineModel::spmv_seconds(const sparse::OperatorStats& stats,
                                  int ranks) const {
  double t = spmv_compute_seconds(stats, ranks);
  if (ranks > 1) {
    const double halo_doubles = stats.halo_doubles_per_rank(ranks);
    const double msgs = stats.halo_messages_per_rank(ranks);
    t += msgs * neigh_latency + 8.0 * halo_doubles / link_bw;
  }
  return t;
}

double MachineModel::spmv_block_seconds(const sparse::OperatorStats& stats,
                                        int ranks, int s) const {
  double t = s * spmv_compute_seconds(stats, ranks);
  if (ranks > 1) {
    const double halo_doubles = stats.halo_doubles_per_rank(ranks);
    const double msgs = stats.halo_messages_per_rank(ranks);
    // Redundant ghost-row recompute: layer l is ~halo_doubles rows redone
    // (s - l) times, at the operator's average per-row cost.
    const double redundant_rows =
        0.5 * s * (s - 1.0) * halo_doubles;
    const double nnz_per_row = static_cast<double>(stats.nnz) /
                               static_cast<double>(stats.rows);
    t += compute_seconds(redundant_rows * 2.0 * nnz_per_row * ranks,
                         redundant_rows * (12.0 * nnz_per_row + 16.0) * ranks,
                         ranks);
    // One epoch for the whole block: latency once, deep volume streamed.
    t += msgs * neigh_latency + 8.0 * (s * halo_doubles) / link_bw;
  }
  return t;
}

double MachineModel::allreduce_seconds(int ranks, std::size_t doubles) const {
  if (ranks <= 1) return 0.0;
  // Continuous log2: tree depth effects average out over many collectives,
  // and the quantized ceil() produces staircase scaling curves.
  const double hops = std::log2(static_cast<double>(ranks));
  return lat_base + lat_hop * std::pow(hops, hop_exponent) +
         bytes_beta * 8.0 * static_cast<double>(doubles) * hops;
}

double MachineModel::setup_seconds(const sparse::OperatorStats& stats,
                                   int ranks, int s_depth, bool with_pc) const {
  const double nnz = static_cast<double>(stats.nnz);
  const double n = static_cast<double>(stats.rows);
  // Structure bytes of one full pass: CSR values+indices plus row pointers.
  const double structure_bytes = 12.0 * nnz + 8.0 * n;
  double passes = setup_pass_factor;  // partition + remap + ghost discovery
  if (s_depth > 1) {
    // Matrix-powers closure: one BFS layer pass per extra depth level over
    // the halo neighbourhood; bounded by a full structure pass each.
    passes += static_cast<double>(s_depth - 1);
  }
  if (with_pc) passes += 0.5;  // diagonal extraction + inversion
  // Builds are bandwidth-bound pointer chasing, not flops.
  double t = compute_seconds(0.0, passes * structure_bytes, ranks);
  t += spawn_per_rank * static_cast<double>(ranks);
  return t;
}

std::string MachineModel::describe() const {
  std::ostringstream os;
  os << "MachineModel{cores/node=" << cores_per_node
     << ", flop_rate=" << flop_rate << ", mem_bw=" << mem_bw
     << ", lat_hop=" << lat_hop << ", hop_exp=" << hop_exponent
     << ", unoverlappable=" << unoverlappable_fraction << "}";
  return os.str();
}

}  // namespace pipescg::sim
