#include "pipescg/sim/trace.hpp"

#include "pipescg/base/error.hpp"

namespace pipescg::sim {

std::uint32_t EventTrace::register_operator(
    const sparse::OperatorStats& stats) {
  operators_.push_back(stats);
  return static_cast<std::uint32_t>(operators_.size() - 1);
}

std::uint32_t EventTrace::register_pc(const PcCostProfile& profile) {
  pcs_.push_back(profile);
  return static_cast<std::uint32_t>(pcs_.size() - 1);
}

EventTrace::Counters EventTrace::counters() const {
  Counters c;
  for (const Event& e : events_) {
    switch (e.kind) {
      case EventKind::kSpmv:
        ++c.spmvs;
        break;
      case EventKind::kPcApply:
        ++c.pc_applies;
        break;
      case EventKind::kAllreducePost:
        ++c.allreduces;
        break;
      case EventKind::kCompute:
        c.vector_flops += e.flops;
        break;
      case EventKind::kIterationMark:
        c.iterations = static_cast<std::size_t>(e.id) + 1;
        break;
      case EventKind::kAllreduceWait:
        break;
    }
  }
  return c;
}

}  // namespace pipescg::sim
