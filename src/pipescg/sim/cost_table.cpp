#include "pipescg/sim/cost_table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "pipescg/base/error.hpp"

namespace pipescg::sim {
namespace {

double half_up(int s) { return std::ceil(static_cast<double>(s) / 2.0); }

}  // namespace

std::vector<CostRow> cost_table() {
  std::vector<CostRow> rows;

  rows.push_back(CostRow{
      "pcg", "3s", "s(3G + PC + SPMV)", "12s", "4",
      [](int s) { return 3.0 * s; },
      [](int s, double g, double pc, double spmv) {
        return s * (3.0 * g + pc + spmv);
      },
      [](int s) { return 12.0 * s; },
      [](int) { return 4.0; }});

  rows.push_back(CostRow{
      "pipecg", "s", "s max(G, PC + SPMV)", "22s", "9",
      [](int s) { return 1.0 * s; },
      [](int s, double g, double pc, double spmv) {
        return s * std::max(g, pc + spmv);
      },
      [](int s) { return 22.0 * s; },
      [](int) { return 9.0; }});

  rows.push_back(CostRow{
      "pipelcg", "s", "max(G, s(PC + SPMV))", "6s^2 + 14s", "14",
      [](int s) { return 1.0 * s; },
      [](int s, double g, double pc, double spmv) {
        return std::max(g, s * (pc + spmv));
      },
      [](int s) { return 6.0 * s * s + 14.0 * s; },
      [](int) { return 14.0; }});

  rows.push_back(CostRow{
      "pipecg3", "ceil(s/2)", "ceil(s/2) max(G, 2(PC + SPMV))",
      "90 ceil(s/2)", "25",
      [](int s) { return half_up(s); },
      [](int s, double g, double pc, double spmv) {
        return half_up(s) * std::max(g, 2.0 * (pc + spmv));
      },
      [](int s) { return 90.0 * half_up(s); },
      [](int) { return 25.0; }});

  rows.push_back(CostRow{
      "pipecg-oati", "ceil(s/2)", "ceil(s/2) max(G, 2(PC + SPMV))",
      "80 ceil(s/2)", "19",
      [](int s) { return half_up(s); },
      [](int s, double g, double pc, double spmv) {
        return half_up(s) * std::max(g, 2.0 * (pc + spmv));
      },
      [](int s) { return 80.0 * half_up(s); },
      [](int) { return 19.0; }});

  rows.push_back(CostRow{
      "pscg", "1", "G + (s+1)(PC + SPMV)", "2s^2 + 4s + 2", "2s + 2",
      [](int) { return 1.0; },
      [](int s, double g, double pc, double spmv) {
        return g + (s + 1.0) * (pc + spmv);
      },
      [](int s) { return 2.0 * s * s + 4.0 * s + 2.0; },
      [](int s) { return 2.0 * s + 2.0; }});

  rows.push_back(CostRow{
      "pipe-pscg", "1", "max(G, s(PC + SPMV))", "4s^3 + 12s^2 + 2s + 5",
      "4s^2 + 12s + 5",
      [](int) { return 1.0; },
      [](int s, double g, double pc, double spmv) {
        return std::max(g, s * (pc + spmv));
      },
      [](int s) {
        return 4.0 * s * s * s + 12.0 * s * s + 2.0 * s + 5.0;
      },
      [](int s) { return 4.0 * s * s + 12.0 * s + 5.0; }});

  return rows;
}

const CostRow& cost_row(const std::string& method) {
  static const std::vector<CostRow> rows = cost_table();
  for (const CostRow& r : rows)
    if (r.method == method) return r;
  PIPESCG_FAIL("unknown cost-table method '" + method + "'");
}

void print_cost_table(std::ostream& os, int s, double g, double pc,
                      double spmv) {
  os << "Table I: cost per " << s << " iterations"
     << "  (G=" << g << "s, PC=" << pc << "s, SPMV=" << spmv << "s)\n";
  os << "method        #allr   time[s]      FLOPSxN   memory[vec]   formula\n";
  for (const CostRow& r : cost_table()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-13s %5.0f   %-12.4g %-9.0f %-13.0f %s\n",
                  r.method.c_str(), r.allreduces(s), r.time(s, g, pc, spmv),
                  r.flops(s), r.memory(s), r.time_formula.c_str());
    os << buf;
  }
}

void print_spmv_block_table(std::ostream& os, const MachineModel& machine,
                            const sparse::OperatorStats& stats, int ranks) {
  os << "Matrix-powers kernel vs chained SPMVs (modelled, " << ranks
     << " ranks, " << stats.rows << " rows)\n";
  os << "  s   s x SPMV[s]   MPK block[s]  speedup\n";
  for (int s = 1; s <= 6; ++s) {
    const double singles = s * machine.spmv_seconds(stats, ranks);
    const double block = machine.spmv_block_seconds(stats, ranks, s);
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  %d   %-12.4g  %-12.4g  %.2fx\n", s,
                  singles, block, singles / block);
    os << buf;
  }
}

void print_format_table(std::ostream& os, const MachineModel& machine,
                        const sparse::OperatorStats& stats, int ranks) {
  const double csr =
      machine.local_spmv_seconds(stats, ranks, sparse::SparseFormat::kCsr);
  const double sell =
      machine.local_spmv_seconds(stats, ranks, sparse::SparseFormat::kSell);
  os << "Local SPMV format (modelled, " << ranks << " ranks, " << stats.rows
     << " rows, " << stats.nnz << " nnz)\n";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "  csr   %-12.4g (16 B/nnz)\n", csr);
  os << buf;
  std::snprintf(buf, sizeof(buf), "  sell  %-12.4g (%.2f x 12 B/nnz)\n", sell,
                machine.sell_padding);
  os << buf;
  std::snprintf(buf, sizeof(buf), "  speedup %.2fx\n", csr / sell);
  os << buf;
}

}  // namespace pipescg::sim
