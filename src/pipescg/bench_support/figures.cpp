#include "pipescg/bench_support/figures.hpp"

#include <cstdio>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/chrome_trace.hpp"
#include "pipescg/obs/report.hpp"

namespace pipescg::bench {

krylov::Vec make_rhs(krylov::Engine& engine,
                     const sparse::LinearOperator& a) {
  krylov::Vec ones = engine.new_vec();
  krylov::Vec b = engine.new_vec();
  for (std::size_t i = 0; i < ones.size(); ++i) ones[i] = 1.0;
  a.apply(ones.span(), b.span());
  return b;
}

std::unique_ptr<precond::JacobiPreconditioner> make_stencil_jacobi(
    const sparse::StencilOperator3D& op) {
  const double center = op.stencil().at(0, 0, 0);
  PIPESCG_CHECK(center > 0.0, "stencil center weight must be positive");
  std::vector<double> diag(op.rows(), center);
  return std::make_unique<precond::JacobiPreconditioner>(std::move(diag),
                                                         op.stats());
}

RunRecord run_method(const std::string& method,
                     const sparse::LinearOperator& a,
                     const precond::Preconditioner* pc,
                     const krylov::SolverOptions& opts) {
  RunRecord record;
  record.method = method;
  const precond::Preconditioner* effective_pc =
      krylov::solver_uses_preconditioner(method) ? pc : nullptr;
  krylov::SerialEngine engine(a, effective_pc, &record.trace);
  krylov::Vec b = make_rhs(engine, a);
  krylov::Vec x = engine.new_vec();  // x0 = 0
  std::unique_ptr<krylov::Solver> solver = krylov::make_solver(method);
  record.stats = solver->solve(engine, b, x, opts);
  return record;
}

std::vector<int> node_sweep(int max_nodes, int step) {
  std::vector<int> nodes{1};
  for (int n = step; n <= max_nodes; n += step) nodes.push_back(n);
  return nodes;
}

ScalingReport make_scaling_report(const std::vector<RunRecord>& runs,
                                  const sim::Timeline& timeline,
                                  const std::vector<int>& nodes,
                                  const std::string& baseline_method) {
  ScalingReport report;
  report.nodes = nodes;
  for (const RunRecord& run : runs) {
    report.methods.push_back(run.method);
    std::vector<double> secs;
    secs.reserve(nodes.size());
    for (int n : nodes) secs.push_back(timeline.seconds_at_nodes(run.trace, n));
    report.seconds.push_back(std::move(secs));
    if (run.method == baseline_method)
      report.baseline_seconds = timeline.seconds_at_nodes(run.trace, 1);
  }
  PIPESCG_CHECK(report.baseline_seconds > 0.0,
                "baseline method '" + baseline_method + "' missing from runs");
  return report;
}

void print_scaling_report(const ScalingReport& report,
                          const std::string& title) {
  std::printf("\n%s\n", title.c_str());
  std::printf("speedup vs %s@1node (higher is better)\n", "pcg");
  std::printf("%-6s", "nodes");
  for (const std::string& m : report.methods) std::printf(" %12s", m.c_str());
  std::printf("\n");
  for (std::size_t ni = 0; ni < report.nodes.size(); ++ni) {
    std::printf("%-6d", report.nodes[ni]);
    for (std::size_t mi = 0; mi < report.methods.size(); ++mi)
      std::printf(" %12.2f", report.speedup(mi, ni));
    std::printf("\n");
  }
}

void write_scaling_csv(const ScalingReport& report,
                       const std::string& path) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  PIPESCG_CHECK(f != nullptr, "cannot open CSV output: " + path);
  std::fprintf(f, "nodes");
  for (const std::string& m : report.methods)
    std::fprintf(f, ",%s", m.c_str());
  std::fprintf(f, "\n");
  for (std::size_t ni = 0; ni < report.nodes.size(); ++ni) {
    std::fprintf(f, "%d", report.nodes[ni]);
    for (std::size_t mi = 0; mi < report.methods.size(); ++mi)
      std::fprintf(f, ",%.6g", report.speedup(mi, ni));
    std::fprintf(f, "\n");
  }
  std::fclose(f);
}

void print_run_summaries(const std::vector<RunRecord>& runs) {
  std::printf("\nconvergence summary\n");
  std::printf("%-14s %10s %14s %10s %6s\n", "method", "iters", "final_rnorm",
              "conv", "flags");
  for (const RunRecord& run : runs) {
    const auto& s = run.stats;
    std::printf("%-14s %10zu %14.4e %10s %s%s\n", run.method.c_str(),
                s.iterations, s.final_rnorm, s.converged ? "yes" : "no",
                s.stagnated ? "stagnated " : "",
                s.breakdown ? "breakdown" : "");
  }
}

void print_run_counters(const std::vector<RunRecord>& runs) {
  std::printf("\nkernel counters\n");
  std::printf("%-14s %10s %12s %12s %12s %14s\n", "method", "spmvs",
              "pc_applies", "allreduces", "iterations", "vector_flops");
  for (const RunRecord& run : runs) {
    const sim::EventTrace::Counters c = run.trace.counters();
    std::printf("%-14s %10zu %12zu %12zu %12zu %14.4e\n", run.method.c_str(),
                c.spmvs, c.pc_applies, c.allreduces, c.iterations,
                c.vector_flops);
  }
}

void write_modeled_trace(const std::vector<RunRecord>& runs,
                         const sim::Timeline& timeline, int nodes,
                         const std::string& path) {
  if (path.empty()) return;
  const int ranks = timeline.machine().ranks_for_nodes(nodes);
  obs::ChromeTraceBuilder builder;
  int pid = 0;
  for (const RunRecord& run : runs) {
    std::vector<sim::ScheduledSpan> schedule;
    timeline.evaluate(run.trace, ranks, &schedule);
    obs::add_schedule(builder, schedule, pid,
                      run.method + " @ " + std::to_string(nodes) +
                          " nodes (modeled)");
    ++pid;
  }
  obs::json::write_file(path, builder.build());
  std::printf("wrote modeled Chrome trace (%d nodes, %d ranks) to %s\n",
              nodes, ranks, path.c_str());
}

void write_bench_report(const std::vector<RunRecord>& runs,
                        const ScalingReport& report, const std::string& title,
                        const std::string& path) {
  if (path.empty()) return;
  obs::json::Value doc = obs::json::Value::object();
  doc.set("title", title);

  obs::json::Value methods = obs::json::Value::array();
  for (const RunRecord& run : runs) {
    obs::json::Value entry = obs::solve_report(run.stats, nullptr);
    entry.set("trace_counters", obs::counters_to_json(run.trace.counters()));
    methods.push_back(std::move(entry));
  }
  doc.set("methods", std::move(methods));

  obs::json::Value scaling = obs::json::Value::object();
  obs::json::Value nodes = obs::json::Value::array();
  for (int n : report.nodes) nodes.push_back(n);
  scaling.set("nodes", std::move(nodes));
  scaling.set("baseline_seconds", report.baseline_seconds);
  obs::json::Value per_method = obs::json::Value::object();
  for (std::size_t mi = 0; mi < report.methods.size(); ++mi) {
    obs::json::Value entry = obs::json::Value::object();
    obs::json::Value seconds = obs::json::Value::array();
    obs::json::Value speedups = obs::json::Value::array();
    for (std::size_t ni = 0; ni < report.nodes.size(); ++ni) {
      seconds.push_back(report.seconds[mi][ni]);
      speedups.push_back(report.speedup(mi, ni));
    }
    entry.set("modeled_seconds", std::move(seconds));
    entry.set("speedup", std::move(speedups));
    per_method.set(report.methods[mi], std::move(entry));
  }
  scaling.set("methods", std::move(per_method));
  doc.set("scaling", std::move(scaling));

  obs::json::write_file(path, doc);
  std::printf("wrote bench report to %s\n", path.c_str());
}

ModeledOverlap modeled_overlap(const RunRecord& run,
                               const sim::Timeline& timeline, int ranks) {
  const sim::TimelineResult result = timeline.evaluate(run.trace, ranks);
  ModeledOverlap o;
  o.seconds = result.seconds;
  o.compute_seconds = result.compute_seconds;
  o.allreduce_total_seconds = result.allreduce_total_seconds;
  o.exposed_wait_seconds = result.allreduce_wait_seconds;
  o.hidden_seconds =
      result.allreduce_total_seconds - result.allreduce_wait_seconds;
  o.efficiency = result.allreduce_total_seconds > 0.0
                     ? o.hidden_seconds / result.allreduce_total_seconds
                     : 1.0;
  return o;
}

void print_modeled_overlap(const std::vector<RunRecord>& runs,
                           const sim::Timeline& timeline, int ranks) {
  std::printf(
      "modeled overlap at %d ranks (hidden = collective time not spent in "
      "waits):\n",
      ranks);
  std::printf("  %-12s %12s %12s %12s %10s\n", "method", "total(s)",
              "hidden(s)", "exposed(s)", "overlap%");
  for (const RunRecord& run : runs) {
    const ModeledOverlap o = modeled_overlap(run, timeline, ranks);
    std::printf("  %-12s %12.3e %12.3e %12.3e %9.1f%%\n", run.method.c_str(),
                o.allreduce_total_seconds, o.hidden_seconds,
                o.exposed_wait_seconds, 100.0 * o.efficiency);
  }
}

void write_bench_json(const std::string& bench_name,
                      const std::vector<RunRecord>& runs,
                      const ScalingReport& report,
                      const sim::Timeline& timeline, int ranks,
                      const sparse::OperatorStats& op_stats,
                      const std::string& path) {
  if (path.empty()) return;
  obs::json::Value doc = obs::json::Value::object();
  doc.set("bench", bench_name);
  doc.set("ranks", ranks);

  obs::json::Value methods = obs::json::Value::object();
  for (const RunRecord& run : runs) {
    obs::json::Value entry = obs::json::Value::object();
    entry.set("converged", run.stats.converged);
    entry.set("iterations", run.stats.iterations);
    entry.set("final_rnorm", run.stats.final_rnorm);
    entry.set("recoveries", run.stats.recoveries);
    entry.set("trace_counters", obs::counters_to_json(run.trace.counters()));

    const ModeledOverlap o = modeled_overlap(run, timeline, ranks);
    obs::json::Value overlap = obs::json::Value::object();
    overlap.set("modeled_seconds", o.seconds);
    overlap.set("compute_seconds", o.compute_seconds);
    overlap.set("allreduce_total_seconds", o.allreduce_total_seconds);
    overlap.set("exposed_wait_seconds", o.exposed_wait_seconds);
    overlap.set("hidden_seconds", o.hidden_seconds);
    overlap.set("overlap_efficiency", o.efficiency);
    entry.set("overlap", std::move(overlap));
    methods.set(run.method, std::move(entry));
  }
  doc.set("methods", std::move(methods));

  obs::json::Value scaling = obs::json::Value::object();
  obs::json::Value nodes = obs::json::Value::array();
  for (int n : report.nodes) nodes.push_back(n);
  scaling.set("nodes", std::move(nodes));
  obs::json::Value per_method = obs::json::Value::object();
  for (std::size_t mi = 0; mi < report.methods.size(); ++mi) {
    obs::json::Value speedups = obs::json::Value::array();
    for (std::size_t ni = 0; ni < report.nodes.size(); ++ni)
      speedups.push_back(report.speedup(mi, ni));
    per_method.set(report.methods[mi], std::move(speedups));
  }
  scaling.set("speedup", std::move(per_method));
  doc.set("scaling", std::move(scaling));

  // Ratio baselines: dimensionless, so a machine-model recalibration that
  // rescales every absolute modeled time leaves them (nearly) fixed.  These
  // are the keys the CI diff gate holds to the tightest tolerance.
  obs::json::Value ratios = obs::json::Value::object();
  {
    // One depth-s matrix-powers block vs s chained SPMVs (one halo epoch vs
    // s) at this bench's rank count -- the paper's core kernel trade.
    const sim::MachineModel& machine = timeline.machine();
    obs::json::Value block = obs::json::Value::object();
    for (int s = 2; s <= 5; ++s) {
      const double chained = s * machine.spmv_seconds(op_stats, ranks);
      const double blocked = machine.spmv_block_seconds(op_stats, ranks, s);
      block.set("s" + std::to_string(s),
                blocked > 0.0 ? chained / blocked : 0.0);
    }
    ratios.set("block_vs_chained_spmv_speedup", std::move(block));
  }
  {
    obs::json::Value efficiency = obs::json::Value::object();
    obs::json::Value comm_share = obs::json::Value::object();
    for (const RunRecord& run : runs) {
      const ModeledOverlap o = modeled_overlap(run, timeline, ranks);
      efficiency.set(run.method, o.efficiency);
      comm_share.set(run.method, o.compute_seconds > 0.0
                                     ? o.allreduce_total_seconds /
                                           o.compute_seconds
                                     : 0.0);
    }
    ratios.set("overlap_efficiency", std::move(efficiency));
    ratios.set("allreduce_to_compute", std::move(comm_share));
  }
  {
    // Stability: per-method robustness telemetry (basis family, residual
    // replacements, gap-monitor activity).  Counts, not times, so they are
    // machine-independent like the other ratio keys.
    obs::json::Value stability = obs::json::Value::object();
    for (const RunRecord& run : runs) {
      obs::json::Value e = obs::json::Value::object();
      e.set("basis", run.stats.basis);
      e.set("replacements", run.stats.replacements);
      e.set("gap_checks", run.stats.gap_checks);
      e.set("failed_replacements", run.stats.failed_replacements);
      e.set("gram_breakdowns", run.stats.gram_breakdowns);
      e.set("max_gap", run.stats.max_residual_gap);
      stability.set(run.method, std::move(e));
    }
    ratios.set("stability", std::move(stability));
  }
  doc.set("ratios", std::move(ratios));

  obs::json::write_file(path, doc);
  std::printf("wrote bench json to %s\n", path.c_str());
}

}  // namespace pipescg::bench
