// Shared harness for the per-figure/per-table benchmark binaries.
//
// Reproduction recipe (paper Section VI-A): b = A x* with x* = ones, x0 = 0;
// run each method once on the SerialEngine with trace recording; replay the
// trace through the machine-model timeline for every node count in the
// sweep; report speedups relative to PCG on one node -- exactly how the
// paper's figures are normalized.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pipescg/krylov/registry.hpp"
#include "pipescg/krylov/serial_engine.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/precond/preconditioner.hpp"
#include "pipescg/sim/timeline.hpp"
#include "pipescg/sparse/operator.hpp"
#include "pipescg/sparse/stencil_operator.hpp"

namespace pipescg::bench {

/// One solver run: convergence statistics plus the recorded event trace.
struct RunRecord {
  std::string method;
  krylov::SolveStats stats;
  sim::EventTrace trace;
};

/// RHS convention of the paper: b = A * ones.
krylov::Vec make_rhs(krylov::Engine& engine, const sparse::LinearOperator& a);

/// Jacobi preconditioner for a matrix-free stencil operator (the diagonal of
/// a truncated stencil is the center weight everywhere).
std::unique_ptr<precond::JacobiPreconditioner> make_stencil_jacobi(
    const sparse::StencilOperator3D& op);

/// Run `method` to convergence on the serial engine, recording the trace.
/// `pc` may be nullptr; unpreconditioned methods ignore it.
RunRecord run_method(const std::string& method,
                     const sparse::LinearOperator& a,
                     const precond::Preconditioner* pc,
                     const krylov::SolverOptions& opts);

/// Node counts used by the strong-scaling figures.
std::vector<int> node_sweep(int max_nodes, int step = 10);

/// Strong-scaling report: modeled seconds per (method, node count) and
/// speedups relative to `baseline_method` at 1 node (paper convention).
struct ScalingReport {
  std::vector<int> nodes;
  std::vector<std::string> methods;
  // seconds[m][n] for methods[m] at nodes[n]
  std::vector<std::vector<double>> seconds;
  double baseline_seconds = 0.0;  // baseline method at 1 node

  double speedup(std::size_t method_index, std::size_t node_index) const {
    return baseline_seconds / seconds[method_index][node_index];
  }
};

ScalingReport make_scaling_report(const std::vector<RunRecord>& runs,
                                  const sim::Timeline& timeline,
                                  const std::vector<int>& nodes,
                                  const std::string& baseline_method);

/// Print the report as a speedup table (rows: nodes, columns: methods).
void print_scaling_report(const ScalingReport& report,
                          const std::string& title);

/// Write the report as CSV (nodes, then one speedup column per method);
/// empty path is a no-op.  This is the machine-readable form of a figure.
void write_scaling_csv(const ScalingReport& report, const std::string& path);

/// Print convergence summaries (iterations, final residual, flags).
void print_run_summaries(const std::vector<RunRecord>& runs);

/// Print each run's kernel counters (the --profile console output of the
/// bench harnesses).
void print_run_counters(const std::vector<RunRecord>& runs);

/// Write the machine-model schedule of every run at `nodes` nodes as one
/// Chrome trace-event JSON file -- one trace process per method, so the
/// methods' overlap structure can be compared side by side in Perfetto.
/// Empty path is a no-op.
void write_modeled_trace(const std::vector<RunRecord>& runs,
                         const sim::Timeline& timeline, int nodes,
                         const std::string& path);

/// Write a structured JSON report: per-method solve stats, kernel counters,
/// and the modeled scaling table.  Empty path is a no-op.
void write_bench_report(const std::vector<RunRecord>& runs,
                        const ScalingReport& report, const std::string& title,
                        const std::string& path);

/// Modeled communication-hiding summary of one run at `ranks`, derived from
/// the timeline replay: the collective seconds that were NOT spent stalled
/// in waits were hidden under compute, so
///   efficiency = 1 - wait / total  (1.0 when the trace has no allreduces).
struct ModeledOverlap {
  double seconds = 0.0;
  double compute_seconds = 0.0;
  double allreduce_total_seconds = 0.0;
  double exposed_wait_seconds = 0.0;
  double hidden_seconds = 0.0;
  double efficiency = 0.0;
};

ModeledOverlap modeled_overlap(const RunRecord& run,
                               const sim::Timeline& timeline, int ranks);

/// Per-method modeled overlap table at `ranks` (--analyze console output).
void print_modeled_overlap(const std::vector<RunRecord>& runs,
                           const sim::Timeline& timeline, int ranks);

/// Machine-readable BENCH_<name>.json: per-method convergence counters,
/// modeled seconds and overlap efficiency at `ranks`, the scaling speedup
/// curves, and a "ratios" section of wall-clock-robust ratio baselines --
/// block-vs-chained SPMV speedup (MachineModel::spmv_block_seconds vs s
/// chained spmv_seconds, from `op_stats`, for s = 2..5) and per-method
/// hidden/exposed overlap efficiency.  Ratios survive machine-speed changes
/// that shift absolute modeled seconds, so they are the quantities the CI
/// hard gate (tools/diff_reports.py) holds tightest.  Deliberately
/// wall-clock-free so files produced on different machines diff
/// meaningfully.  Empty path is a no-op.
void write_bench_json(const std::string& bench_name,
                      const std::vector<RunRecord>& runs,
                      const ScalingReport& report,
                      const sim::Timeline& timeline, int ranks,
                      const sparse::OperatorStats& op_stats,
                      const std::string& path);

}  // namespace pipescg::bench
