#include "pipescg/precond/preconditioner.hpp"

#include "pipescg/base/error.hpp"
#include "pipescg/precond/amg.hpp"
#include "pipescg/precond/chebyshev.hpp"
#include "pipescg/precond/jacobi.hpp"
#include "pipescg/precond/ssor.hpp"

namespace pipescg::precond {

std::unique_ptr<Preconditioner> make_preconditioner(
    const std::string& name, const sparse::CsrMatrix& a) {
  if (name == "jacobi") return std::make_unique<JacobiPreconditioner>(a);
  if (name == "ssor" || name == "sor")
    return std::make_unique<SsorPreconditioner>(a);
  if (name == "chebyshev")
    return std::make_unique<ChebyshevPreconditioner>(a);
  if (name == "mg") return make_geometric_mg(a);
  if (name == "amg" || name == "gamg") return make_amg(a);
  PIPESCG_FAIL("unknown preconditioner '" + name +
               "'; known: jacobi ssor chebyshev mg gamg");
}

}  // namespace pipescg::precond
