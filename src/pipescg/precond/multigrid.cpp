#include "pipescg/precond/multigrid.hpp"

#include <cmath>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/sparse/coo_builder.hpp"
#include "pipescg/sparse/spgemm.hpp"

namespace pipescg::precond {
namespace {

using sparse::CsrMatrix;

/// Tentative prolongation from an aggregation map: column agg(i) gets
/// 1/sqrt(|aggregate|) in row i (normalized piecewise-constant basis).
CsrMatrix tentative_prolongation(const std::vector<std::size_t>& agg,
                                 std::size_t num_aggregates) {
  std::vector<std::size_t> sizes(num_aggregates, 0);
  for (std::size_t a : agg) ++sizes[a];
  sparse::CooBuilder builder(agg.size(), num_aggregates);
  builder.reserve(agg.size());
  for (std::size_t i = 0; i < agg.size(); ++i)
    builder.add(i, agg[i], 1.0 / std::sqrt(static_cast<double>(sizes[agg[i]])));
  return builder.build("P_tent");
}

/// P = (I - omega D^{-1} A) P_tent.
CsrMatrix smooth_prolongation(const CsrMatrix& a, const CsrMatrix& p_tent,
                              double damping) {
  const double lmax = estimate_lambda_max(a);
  const double omega = damping / lmax;
  const std::vector<double> diag = a.diagonal();

  // S = D^{-1} A scaled by omega, as CSR.
  std::vector<CsrMatrix::Index> rp(a.row_ptr().begin(), a.row_ptr().end());
  std::vector<CsrMatrix::Index> ci(a.col_indices().begin(),
                                   a.col_indices().end());
  std::vector<double> v(a.values().begin(), a.values().end());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (auto k = rp[i]; k < rp[i + 1]; ++k)
      v[static_cast<std::size_t>(k)] *= omega / diag[i];
  const CsrMatrix scaled(a.rows(), a.cols(), std::move(rp), std::move(ci),
                         std::move(v), "wDinvA");

  const CsrMatrix sp = sparse::multiply(scaled, p_tent);
  // P = P_tent - sp (merge through a COO builder).
  sparse::CooBuilder builder(p_tent.rows(), p_tent.cols());
  builder.reserve(p_tent.nnz() + sp.nnz());
  auto add_all = [&builder](const CsrMatrix& m, double scale) {
    const auto mrp = m.row_ptr();
    const auto mci = m.col_indices();
    const auto mv = m.values();
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (auto k = mrp[i]; k < mrp[i + 1]; ++k)
        builder.add(i,
                    static_cast<std::size_t>(mci[static_cast<std::size_t>(k)]),
                    scale * mv[static_cast<std::size_t>(k)]);
  };
  add_all(p_tent, 1.0);
  add_all(sp, -1.0);
  return builder.build("P_smoothed");
}

}  // namespace

std::vector<std::size_t> aggregate_geometric(const sparse::CsrMatrix& a) {
  const sparse::OperatorStats st = a.stats();
  PIPESCG_CHECK(st.kind != sparse::GridKind::kGeneral,
                "geometric aggregation needs grid metadata");
  const std::size_t nx = st.nx, ny = st.ny;
  const std::size_t nz = st.kind == sparse::GridKind::kGrid3d ? st.nz : 1;
  PIPESCG_CHECK(nx * ny * nz == a.rows(), "grid metadata inconsistent");
  const std::size_t cx = (nx + 1) / 2, cy = (ny + 1) / 2;
  std::vector<std::size_t> agg(a.rows());
  for (std::size_t k = 0; k < nz; ++k)
    for (std::size_t j = 0; j < ny; ++j)
      for (std::size_t i = 0; i < nx; ++i)
        agg[(k * ny + j) * nx + i] = ((k / 2) * cy + (j / 2)) * cx + (i / 2);
  return agg;
}

std::vector<std::size_t> aggregate_greedy(const sparse::CsrMatrix& a,
                                          double theta) {
  const std::size_t n = a.rows();
  const std::vector<double> diag = a.diagonal();
  const auto rp = a.row_ptr();
  const auto ci = a.col_indices();
  const auto v = a.values();
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  std::vector<std::size_t> agg(n, kUnset);
  std::size_t next_agg = 0;

  auto is_strong = [&](std::size_t i, std::size_t k) {
    const std::size_t j =
        static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
    if (j == i) return false;
    const double aij = v[static_cast<std::size_t>(k)];
    return std::abs(aij) > theta * std::sqrt(diag[i] * diag[j]);
  };

  // Pass 1: seed aggregates from nodes whose strong neighborhood is free.
  for (std::size_t i = 0; i < n; ++i) {
    if (agg[i] != kUnset) continue;
    bool free_neighborhood = true;
    for (auto k = rp[i]; k < rp[i + 1]; ++k) {
      if (is_strong(i, static_cast<std::size_t>(k)) &&
          agg[static_cast<std::size_t>(
              ci[static_cast<std::size_t>(k)])] != kUnset) {
        free_neighborhood = false;
        break;
      }
    }
    if (!free_neighborhood) continue;
    agg[i] = next_agg;
    for (auto k = rp[i]; k < rp[i + 1]; ++k)
      if (is_strong(i, static_cast<std::size_t>(k)))
        agg[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])] =
            next_agg;
    ++next_agg;
  }
  // Pass 2: attach leftovers to a strongly-connected neighbor aggregate.
  for (std::size_t i = 0; i < n; ++i) {
    if (agg[i] != kUnset) continue;
    for (auto k = rp[i]; k < rp[i + 1]; ++k) {
      const std::size_t j =
          static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
      if (is_strong(i, static_cast<std::size_t>(k)) && agg[j] != kUnset) {
        agg[i] = agg[j];
        break;
      }
    }
  }
  // Pass 3: any remaining isolated nodes become singletons.
  for (std::size_t i = 0; i < n; ++i)
    if (agg[i] == kUnset) agg[i] = next_agg++;
  return agg;
}

MultigridPreconditioner::MultigridPreconditioner(const sparse::CsrMatrix& a,
                                                 AggregationFn aggregate,
                                                 Options options,
                                                 std::string name)
    : fine_(a), name_(std::move(name)), options_(options) {
  PIPESCG_CHECK(a.rows() == a.cols(), "multigrid requires a square matrix");
  fine_smoother_ = std::make_unique<ChebyshevPreconditioner>(
      fine_, options_.smoother_degree);
  fine_scratch_.resize(fine_.rows());

  const sparse::CsrMatrix* current = &fine_;
  for (int level = 1; level < options_.max_levels; ++level) {
    if (current->rows() <= options_.coarse_size) break;
    std::vector<std::size_t> agg = aggregate(*current);
    std::size_t num_agg = 0;
    for (std::size_t id : agg) num_agg = std::max(num_agg, id + 1);
    if (num_agg >= current->rows()) break;  // no coarsening progress

    CsrMatrix p = tentative_prolongation(agg, num_agg);
    if (options_.smoothed_prolongation)
      p = smooth_prolongation(*current, p, options_.prolongation_damping);

    Level lvl;
    lvl.a = sparse::galerkin_product(*current, p);
    // Propagate coarse grid metadata so geometric aggregation can recurse.
    const sparse::OperatorStats st = current->stats();
    if (st.kind != sparse::GridKind::kGeneral) {
      const std::size_t cx = (st.nx + 1) / 2, cy = (st.ny + 1) / 2;
      const std::size_t cz =
          st.kind == sparse::GridKind::kGrid3d ? (st.nz + 1) / 2 : 1;
      if (cx * cy * cz == lvl.a.rows())
        lvl.a.set_grid_info(st.kind, cx, cy, cz, st.halo_width);
    }
    lvl.prolongation = std::move(p);
    lvl.r.resize(lvl.a.rows());
    lvl.u.resize(lvl.a.rows());
    lvl.scratch.resize(lvl.a.rows());
    coarse_.push_back(std::move(lvl));
    current = &coarse_.back().a;
  }
  // Smoothers for intermediate coarse levels; direct solve on the last.
  for (std::size_t l = 0; l + 1 < coarse_.size(); ++l) {
    coarse_[l].smoother = std::make_unique<ChebyshevPreconditioner>(
        coarse_[l].a, options_.smoother_degree);
  }
  const sparse::CsrMatrix& last = coarse_.empty() ? fine_ : coarse_.back().a;
  PIPESCG_CHECK(last.rows() <= 4096,
                "coarsest level too large for a dense direct solve");
  la::DenseMatrix dense(last.rows(), last.cols());
  const auto lrp = last.row_ptr();
  const auto lci = last.col_indices();
  const auto lv = last.values();
  for (std::size_t i = 0; i < last.rows(); ++i)
    for (auto k = lrp[i]; k < lrp[i + 1]; ++k)
      dense(i, static_cast<std::size_t>(lci[static_cast<std::size_t>(k)])) =
          lv[static_cast<std::size_t>(k)];
  dense.symmetrize();
  coarse_solver_ = std::make_unique<la::CholeskyFactorization>(dense);
}

std::size_t MultigridPreconditioner::rows() const { return fine_.rows(); }

const sparse::CsrMatrix& MultigridPreconditioner::matrix_at(
    std::size_t level) const {
  return level == 0 ? fine_ : coarse_[level - 1].a;
}

const ChebyshevPreconditioner& MultigridPreconditioner::smoother_at(
    std::size_t level) const {
  return level == 0 ? *fine_smoother_ : *coarse_[level - 1].smoother;
}

void MultigridPreconditioner::cycle(std::size_t level,
                                    std::span<const double> r,
                                    std::span<double> u) const {
  const std::size_t last = coarse_.size();
  if (level == last) {
    // Coarsest: direct solve.
    const std::vector<double> rhs(r.begin(), r.end());
    const std::vector<double> sol = coarse_solver_->solve(rhs);
    std::copy(sol.begin(), sol.end(), u.begin());
    return;
  }
  const sparse::CsrMatrix& a = matrix_at(level);
  const sparse::CsrMatrix& p = coarse_[level].prolongation;
  std::vector<double>& cr = coarse_[level].r;
  std::vector<double>& cu = coarse_[level].u;
  std::vector<double>& scratch =
      level == 0 ? fine_scratch_ : coarse_[level - 1].scratch;

  // Pre-smooth: u = Cheb(r) (zero initial guess folded into the smoother).
  smoother_at(level).apply(r, u);

  // Coarse-grid correction on the residual r - A u.
  a.apply(u, scratch);
  for (std::size_t i = 0; i < a.rows(); ++i) scratch[i] = r[i] - scratch[i];
  // Restrict with P^T: cr = P^T scratch.
  std::fill(cr.begin(), cr.end(), 0.0);
  {
    const auto prp = p.row_ptr();
    const auto pci = p.col_indices();
    const auto pv = p.values();
    for (std::size_t i = 0; i < p.rows(); ++i)
      for (auto k = prp[i]; k < prp[i + 1]; ++k)
        cr[static_cast<std::size_t>(pci[static_cast<std::size_t>(k)])] +=
            pv[static_cast<std::size_t>(k)] * scratch[i];
  }
  cycle(level + 1, cr, cu);
  // Prolong and correct: u += P cu.
  {
    const auto prp = p.row_ptr();
    const auto pci = p.col_indices();
    const auto pv = p.values();
    for (std::size_t i = 0; i < p.rows(); ++i) {
      double acc = 0.0;
      for (auto k = prp[i]; k < prp[i + 1]; ++k)
        acc += pv[static_cast<std::size_t>(k)] *
               cu[static_cast<std::size_t>(pci[static_cast<std::size_t>(k)])];
      u[i] += acc;
    }
  }

  // Post-smooth (symmetric cycle): u += Cheb(r - A u).  The smoother reads
  // its input while writing a separate output, so a fresh buffer is needed
  // for the correction.
  a.apply(u, scratch);
  for (std::size_t i = 0; i < a.rows(); ++i) scratch[i] = r[i] - scratch[i];
  std::vector<double> post(a.rows());
  smoother_at(level).apply(scratch, post);
  for (std::size_t i = 0; i < a.rows(); ++i) u[i] += post[i];
}

void MultigridPreconditioner::apply(std::span<const double> r,
                                    std::span<double> u) const {
  PIPESCG_CHECK(r.size() == fine_.rows() && u.size() == fine_.rows(),
                "multigrid apply size mismatch");
  cycle(0, r, u);
}

double MultigridPreconditioner::operator_complexity() const {
  double total = static_cast<double>(fine_.nnz());
  for (const Level& l : coarse_) total += static_cast<double>(l.a.nnz());
  return total / static_cast<double>(fine_.nnz());
}

sim::PcCostProfile MultigridPreconditioner::cost_profile() const {
  sim::PcCostProfile profile;
  profile.name = name_;
  const int d = options_.smoother_degree;
  double flops = 0.0, bytes = 0.0, halos = 0.0;
  for (std::size_t level = 0; level <= coarse_.size(); ++level) {
    const sparse::CsrMatrix& a = matrix_at(level);
    const double nnz = static_cast<double>(a.nnz());
    const double n = static_cast<double>(a.rows());
    if (level == coarse_.size()) {
      flops += n * n;  // dense triangular solves
      bytes += 8.0 * n * n;
      break;
    }
    // Two smoother applications (degree d SPMVs each) + 2 residuals +
    // restriction + prolongation.
    const double pnnz = static_cast<double>(coarse_[level].prolongation.nnz());
    flops += 2.0 * d * (2.0 * nnz + 6.0 * n) + 2.0 * (2.0 * nnz + n) +
             2.0 * 2.0 * pnnz;
    bytes += (2.0 * d + 2.0) * (12.0 * nnz + 16.0 * n) + 2.0 * 12.0 * pnnz;
    halos += 2.0 * d + 2.0;
  }
  profile.flops = flops;
  profile.bytes = bytes;
  profile.halo_exchanges = halos;
  profile.stats = fine_.stats();
  return profile;
}

}  // namespace pipescg::precond
