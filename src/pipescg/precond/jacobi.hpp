// Jacobi (diagonal) preconditioner: u = D^{-1} r.
//
// The paper's default preconditioner for the strong-scaling experiments
// (Figs. 1-3); no communication, one vector pass per application.
#pragma once

#include <vector>

#include "pipescg/precond/preconditioner.hpp"

namespace pipescg::precond {

/// Jacobi (diagonal) preconditioner: u = D^{-1} r.  The paper's default
/// for the strong-scaling experiments (Figs. 1-3); no communication, one
/// vector pass per application.
class JacobiPreconditioner final : public Preconditioner {
 public:
  /// Extracts the diagonal of `a`; no reference to `a` is retained.
  explicit JacobiPreconditioner(const sparse::CsrMatrix& a);

  /// Direct construction from a diagonal (lets matrix-free operators and
  /// rank-local slices provide their diagonal without a CSR matrix).
  JacobiPreconditioner(std::vector<double> diagonal,
                       sparse::OperatorStats stats);

  void apply(std::span<const double> r, std::span<double> u) const override;
  std::size_t rows() const override { return inv_diag_.size(); }
  std::string name() const override { return "jacobi"; }
  sim::PcCostProfile cost_profile() const override;

 private:
  void invert_diagonal(const std::vector<double>& diagonal);

  std::vector<double> inv_diag_;
  sparse::OperatorStats stats_;
};

}  // namespace pipescg::precond
