// Preconditioner interface.
//
// A preconditioner applies u = M^{-1} r.  For the CG family M must be SPD;
// every implementation in precond/ preserves symmetry (Jacobi, SSOR with
// symmetric sweeps, multigrid with symmetric cycling, smoothed-aggregation
// AMG with symmetric smoothers).
//
// cost_profile() describes the per-application work for the machine-model
// timeline (flops/bytes in whole-problem units plus halo-exchange count).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "pipescg/sim/trace.hpp"
#include "pipescg/sparse/csr_matrix.hpp"

namespace pipescg::precond {

/// Interface for u = M^{-1} r.  For the CG family M must be SPD; every
/// implementation in precond/ preserves symmetry.  Implementations are
/// rank-local by construction — distribution happens by composition
/// (BlockJacobiPreconditioner), never inside an apply.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// u = M^{-1} r.  r and u must not alias.
  virtual void apply(std::span<const double> r, std::span<double> u) const = 0;

  /// Number of rows (= size of the vectors apply() accepts).
  virtual std::size_t rows() const = 0;

  /// Registry-style name ("jacobi", "ssor", ...), used in reports.
  virtual std::string name() const = 0;

  /// Per-application cost (flops/bytes in whole-problem units plus
  /// halo-exchange count) for the machine-model timeline.
  virtual sim::PcCostProfile cost_profile() const = 0;
};

/// Factory by name: "jacobi", "ssor", "chebyshev", "mg", "amg".
/// Throws on unknown names.  `a` must outlive the result for ssor/chebyshev.
std::unique_ptr<Preconditioner> make_preconditioner(
    const std::string& name, const sparse::CsrMatrix& a);

}  // namespace pipescg::precond
