// Convenience constructors for the two multigrid flavours of the paper's
// Fig. 4: "MG" (geometric aggregation) and "GAMG" (smoothed-aggregation AMG
// on the strength graph).
#pragma once

#include <memory>

#include "pipescg/precond/multigrid.hpp"

namespace pipescg::precond {

/// Geometric multigrid; requires grid metadata on `a` (assembled stencils
/// carry it).  Falls back to greedy aggregation below the first level only
/// if the coarse metadata stops matching.
std::unique_ptr<MultigridPreconditioner> make_geometric_mg(
    const sparse::CsrMatrix& a,
    MultigridPreconditioner::Options options = {});

/// Smoothed-aggregation AMG (strength-graph greedy aggregation).
std::unique_ptr<MultigridPreconditioner> make_amg(
    const sparse::CsrMatrix& a,
    MultigridPreconditioner::Options options = {});

}  // namespace pipescg::precond
