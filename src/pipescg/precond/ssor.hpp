// SSOR (Symmetric Successive Over-Relaxation) preconditioner.
//
//   M = 1/(omega (2 - omega)) (D + omega L) D^{-1} (D + omega U)
//
// Symmetric (hence SPD-preserving for CG) for any omega in (0, 2); the
// application is one forward and one backward triangular sweep.  This is the
// "SOR" configuration of the paper's Fig. 4 (PETSc's PCSOR defaults to the
// symmetric variant for CG).
#pragma once

#include "pipescg/precond/preconditioner.hpp"

namespace pipescg::precond {

/// SSOR preconditioner, M = 1/(w(2-w)) (D + wL) D^{-1} (D + wU):
/// symmetric (hence SPD-preserving for CG) for any omega in (0, 2); one
/// forward plus one backward triangular sweep per application.  The "SOR"
/// configuration of the paper's Fig. 4.
class SsorPreconditioner final : public Preconditioner {
 public:
  /// Keeps a reference to `a`; the matrix must outlive the preconditioner.
  explicit SsorPreconditioner(const sparse::CsrMatrix& a, double omega = 1.0);

  void apply(std::span<const double> r, std::span<double> u) const override;
  std::size_t rows() const override { return a_.rows(); }
  std::string name() const override { return "ssor"; }
  sim::PcCostProfile cost_profile() const override;

 private:
  const sparse::CsrMatrix& a_;
  double omega_;
  std::vector<double> diag_;
  mutable std::vector<double> scratch_;
};

}  // namespace pipescg::precond
