#include "pipescg/precond/amg.hpp"

namespace pipescg::precond {

std::unique_ptr<MultigridPreconditioner> make_geometric_mg(
    const sparse::CsrMatrix& a, MultigridPreconditioner::Options options) {
  AggregationFn agg = [](const sparse::CsrMatrix& m) {
    if (m.stats().kind != sparse::GridKind::kGeneral)
      return aggregate_geometric(m);
    return aggregate_greedy(m);
  };
  return std::make_unique<MultigridPreconditioner>(a, std::move(agg), options,
                                                   "mg");
}

std::unique_ptr<MultigridPreconditioner> make_amg(
    const sparse::CsrMatrix& a, MultigridPreconditioner::Options options) {
  AggregationFn agg = [](const sparse::CsrMatrix& m) {
    return aggregate_greedy(m);
  };
  return std::make_unique<MultigridPreconditioner>(a, std::move(agg), options,
                                                   "gamg");
}

}  // namespace pipescg::precond
