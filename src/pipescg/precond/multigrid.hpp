// Multigrid V-cycle preconditioner via (smoothed) aggregation.
//
// One framework covers the paper's Fig. 4 "MG" and "GAMG" configurations:
//  * MG   -- geometric aggregation: 2x coarsening per grid dimension, using
//            the structured-grid metadata carried by assembled stencils;
//  * GAMG -- greedy strength-graph aggregation (smoothed aggregation AMG).
//
// Coarse operators are Galerkin products A_c = P^T A P; the smoother is a
// fixed-degree Chebyshev iteration (no inner dot products -- the standard
// choice when allreduces are the thing being avoided); the coarsest level
// is solved directly with a dense Cholesky factorization.  The cycle is
// symmetric (pre- and post-smoothing with the same smoother), so the
// preconditioner is SPD and safe for every CG variant in the library.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "pipescg/la/cholesky.hpp"
#include "pipescg/precond/chebyshev.hpp"
#include "pipescg/precond/preconditioner.hpp"

namespace pipescg::precond {

/// Maps each fine row to an aggregate id in [0, num_aggregates).
using AggregationFn =
    std::function<std::vector<std::size_t>(const sparse::CsrMatrix&)>;

/// Geometric aggregation: 2x2(x2) grid blocks.  Requires grid metadata on
/// the matrix; throws otherwise.  Coarse matrices keep coarse grid metadata
/// so the coarsening recurses geometrically.
std::vector<std::size_t> aggregate_geometric(const sparse::CsrMatrix& a);

/// Greedy strength-based aggregation (smoothed-aggregation AMG style):
/// strong when |a_ij| > theta * sqrt(a_ii a_jj).
std::vector<std::size_t> aggregate_greedy(const sparse::CsrMatrix& a,
                                          double theta = 0.08);

/// Multigrid V-cycle via (smoothed) aggregation.  One framework covers
/// the paper's Fig. 4 "MG" (geometric aggregation) and "GAMG"
/// (strength-graph aggregation) configurations.  Coarse operators are
/// Galerkin products P^T A P, the smoother is fixed-degree Chebyshev (no
/// inner dot products), the coarsest level is a dense Cholesky solve, and
/// the cycle is symmetric — so the preconditioner is SPD and safe for
/// every CG variant in the library.
class MultigridPreconditioner final : public Preconditioner {
 public:
  /// Hierarchy construction knobs; the defaults reproduce Fig. 4.
  struct Options {
    int max_levels = 12;
    std::size_t coarse_size = 100;  // direct solve at or below this
    int smoother_degree = 2;        // Chebyshev degree per pre/post smooth
    double prolongation_damping = 0.66;  // omega in P = (I - w D^{-1}A) P_t
    bool smoothed_prolongation = true;
  };

  /// Keeps a reference to `a` (the fine operator); `a` must outlive this.
  MultigridPreconditioner(const sparse::CsrMatrix& a, AggregationFn aggregate,
                          Options options, std::string name);

  void apply(std::span<const double> r, std::span<double> u) const override;
  std::size_t rows() const override;
  std::string name() const override { return name_; }
  sim::PcCostProfile cost_profile() const override;

  /// Levels in the hierarchy, fine grid included.
  std::size_t num_levels() const { return 1 + coarse_.size(); }
  /// Operator complexity: sum of nnz over levels / fine nnz.
  double operator_complexity() const;

 private:
  struct Level {
    sparse::CsrMatrix a;            // coarse operator (levels >= 1)
    sparse::CsrMatrix prolongation; // from this level to the finer one above
    std::unique_ptr<ChebyshevPreconditioner> smoother;  // on `a`
    mutable std::vector<double> r, u, scratch;
  };

  void cycle(std::size_t level, std::span<const double> r,
             std::span<double> u) const;
  const sparse::CsrMatrix& matrix_at(std::size_t level) const;
  const ChebyshevPreconditioner& smoother_at(std::size_t level) const;

  const sparse::CsrMatrix& fine_;
  std::string name_;
  Options options_;
  std::unique_ptr<ChebyshevPreconditioner> fine_smoother_;
  std::vector<Level> coarse_;  // level l+1 data at index l
  std::unique_ptr<la::CholeskyFactorization> coarse_solver_;
  mutable std::vector<double> fine_scratch_;
};

}  // namespace pipescg::precond
