#include "pipescg/precond/block_jacobi.hpp"

#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/sparse/coo_builder.hpp"

namespace pipescg::precond {

sparse::CsrMatrix extract_diagonal_block(const sparse::CsrMatrix& a,
                                         const sparse::Partition& partition,
                                         int rank) {
  PIPESCG_CHECK(a.rows() == partition.global_size(),
                "partition does not match matrix");
  const std::size_t begin = partition.begin(rank);
  const std::size_t end = partition.end(rank);
  const std::size_t nlocal = end - begin;

  sparse::CooBuilder builder(nlocal, nlocal);
  const auto rp = a.row_ptr();
  const auto ci = a.col_indices();
  const auto v = a.values();
  for (std::size_t i = begin; i < end; ++i) {
    for (auto k = rp[i]; k < rp[i + 1]; ++k) {
      const std::size_t col =
          static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
      if (col >= begin && col < end)
        builder.add(i - begin, col - begin, v[static_cast<std::size_t>(k)]);
    }
  }
  sparse::CsrMatrix block =
      builder.build(a.name() + "_block" + std::to_string(rank));
  // Grid metadata does not survive block extraction meaningfully.
  return block;
}

BlockJacobiPreconditioner::BlockJacobiPreconditioner(
    const sparse::CsrMatrix& global, const sparse::Partition& partition,
    int rank,
    const std::function<std::unique_ptr<Preconditioner>(
        const sparse::CsrMatrix&)>& inner_factory)
    : block_(extract_diagonal_block(global, partition, rank)) {
  inner_ = inner_factory(block_);
  PIPESCG_CHECK(inner_ != nullptr, "inner preconditioner factory returned null");
  PIPESCG_CHECK(inner_->rows() == block_.rows(),
                "inner preconditioner size mismatch");
}

BlockJacobiPreconditioner::BlockJacobiPreconditioner(
    const sparse::CsrMatrix& global, const sparse::Partition& partition,
    int rank, const std::string& inner_name)
    : BlockJacobiPreconditioner(
          global, partition, rank,
          [&inner_name](const sparse::CsrMatrix& m) {
            return make_preconditioner(inner_name, m);
          }) {}

void BlockJacobiPreconditioner::apply(std::span<const double> r,
                                      std::span<double> u) const {
  inner_->apply(r, u);
}

std::string BlockJacobiPreconditioner::name() const {
  return "block-jacobi(" + inner_->name() + ")";
}

sim::PcCostProfile BlockJacobiPreconditioner::cost_profile() const {
  sim::PcCostProfile p = inner_->cost_profile();
  p.name = name();
  p.halo_exchanges = 0.0;  // block-diagonal: no communication per apply
  return p;
}

}  // namespace pipescg::precond
