// Chebyshev polynomial preconditioner / smoother.
//
// Applies k steps of the Chebyshev iteration for A z = r on the interval
// [lambda_max / ratio, lambda_max], with lambda_max estimated by power
// iteration at setup.  Communication-free apart from the SPMVs inside (no
// inner dot products), which is why it is the standard smoother choice for
// communication-sensitive multigrid; also usable standalone.
#pragma once

#include <memory>

#include "pipescg/precond/preconditioner.hpp"
#include "pipescg/sparse/operator.hpp"

namespace pipescg::precond {

/// Power-iteration estimate of the largest eigenvalue of D^{-1}A (Jacobi-
/// scaled operator), the quantity Chebyshev smoothing needs.
double estimate_lambda_max(const sparse::CsrMatrix& a, int iterations = 20,
                           std::uint64_t seed = 7777);

/// Chebyshev polynomial preconditioner / smoother: k steps of the
/// Chebyshev iteration for A z = r on [lambda_max/ratio, lambda_max].
/// Communication-free apart from the SPMVs inside (no inner dot
/// products), which is why it is the standard smoother for
/// communication-sensitive multigrid; also usable standalone.
class ChebyshevPreconditioner final : public Preconditioner {
 public:
  /// Keeps a reference to `a`.  `degree` SPMVs per application; the target
  /// interval is [lambda_max/eig_ratio, lambda_max * safety].
  explicit ChebyshevPreconditioner(const sparse::CsrMatrix& a, int degree = 4,
                                   double eig_ratio = 30.0);

  void apply(std::span<const double> r, std::span<double> u) const override;
  std::size_t rows() const override { return a_.rows(); }
  std::string name() const override { return "chebyshev"; }
  sim::PcCostProfile cost_profile() const override;

  /// The power-iteration spectrum estimate the interval was built from.
  double lambda_max() const { return lambda_max_; }

 private:
  const sparse::CsrMatrix& a_;
  int degree_;
  double lambda_min_, lambda_max_;
  std::vector<double> inv_diag_;
  mutable std::vector<double> z_, az_, p_;
};

}  // namespace pipescg::precond
