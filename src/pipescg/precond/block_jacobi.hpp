// Block-Jacobi composition: the standard way to run a serial preconditioner
// on a distributed matrix.  Each rank extracts its diagonal block
// A[begin:end, begin:end] and applies any serial preconditioner to it; the
// global preconditioner is block-diagonal, hence SPD whenever the inner
// preconditioner is, and needs no communication per application.
//
// This is how the SPMD engine runs SSOR/Chebyshev/MG: PETSc does the same
// (PCBJACOBI wrapping PCSOR etc.) for the paper's experiments.
#pragma once

#include <functional>
#include <memory>

#include "pipescg/precond/preconditioner.hpp"
#include "pipescg/sparse/partition.hpp"

namespace pipescg::precond {

/// Extract the square diagonal block A[rows, rows] owned by `rank`.
sparse::CsrMatrix extract_diagonal_block(const sparse::CsrMatrix& a,
                                         const sparse::Partition& partition,
                                         int rank);

/// Block-Jacobi composition: each rank applies a serial inner
/// preconditioner to its diagonal block A[begin:end, begin:end].  The
/// global preconditioner is block-diagonal — SPD whenever the inner one
/// is — and needs no communication per application.  This is how the SPMD
/// engine runs SSOR/Chebyshev/MG (PETSc's PCBJACOBI plays the same role
/// in the paper's experiments).
class BlockJacobiPreconditioner final : public Preconditioner {
 public:
  /// Builds `inner_factory(local_block)` on this rank's diagonal block.
  /// The factory is the same `make_preconditioner`-style callable used
  /// serially, e.g. [](const CsrMatrix& m) { return make_preconditioner(
  /// "ssor", m); }.
  BlockJacobiPreconditioner(
      const sparse::CsrMatrix& global, const sparse::Partition& partition,
      int rank,
      const std::function<std::unique_ptr<Preconditioner>(
          const sparse::CsrMatrix&)>& inner_factory);

  /// Convenience: inner preconditioner by registry name.
  BlockJacobiPreconditioner(const sparse::CsrMatrix& global,
                            const sparse::Partition& partition, int rank,
                            const std::string& inner_name);

  void apply(std::span<const double> r, std::span<double> u) const override;
  std::size_t rows() const override { return block_.rows(); }
  std::string name() const override;
  sim::PcCostProfile cost_profile() const override;

  const Preconditioner& inner() const { return *inner_; }

 private:
  sparse::CsrMatrix block_;
  std::unique_ptr<Preconditioner> inner_;
};

}  // namespace pipescg::precond
