#include "pipescg/precond/ssor.hpp"

#include <cmath>

#include "pipescg/base/error.hpp"

namespace pipescg::precond {

SsorPreconditioner::SsorPreconditioner(const sparse::CsrMatrix& a,
                                       double omega)
    : a_(a), omega_(omega), diag_(a.diagonal()) {
  PIPESCG_CHECK(a.rows() == a.cols(), "SSOR requires a square matrix");
  PIPESCG_CHECK(omega > 0.0 && omega < 2.0, "SSOR requires omega in (0, 2)");
  for (double d : diag_)
    PIPESCG_CHECK(d > 0.0 && std::isfinite(d),
                  "SSOR requires a positive diagonal (SPD matrix)");
  scratch_.resize(a.rows());
}

void SsorPreconditioner::apply(std::span<const double> r,
                               std::span<double> u) const {
  const std::size_t n = a_.rows();
  PIPESCG_CHECK(r.size() == n && u.size() == n, "SSOR apply size mismatch");
  const auto rp = a_.row_ptr();
  const auto ci = a_.col_indices();
  const auto v = a_.values();
  std::vector<double>& z = scratch_;

  // Forward sweep: (D/omega + L) z = r.
  for (std::size_t i = 0; i < n; ++i) {
    double acc = r[i];
    for (auto k = rp[i]; k < rp[i + 1]; ++k) {
      const std::size_t j =
          static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
      if (j >= i) break;  // columns sorted: strictly-lower part first
      acc -= v[static_cast<std::size_t>(k)] * z[j];
    }
    z[i] = acc * omega_ / diag_[i];
  }
  // Diagonal scaling by D / (omega (2 - omega)) then backward sweep:
  // (D/omega + U) u = D z / (omega (2 - omega)) * ... combining constants,
  // u solves (D/omega + U) u = (1/(2 - omega)) D z / omega^0 ... we fold the
  // scalar so that M^{-1} = omega(2-omega) (D+omega U)^{-1} D (D+omega L)^{-1}.
  const double scale = (2.0 - omega_) / omega_;
  for (std::size_t i = 0; i < n; ++i) z[i] *= diag_[i] * scale;
  // Backward sweep: (D/omega + U) u = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = z[ii];
    for (auto k = rp[ii + 1]; k-- > rp[ii];) {
      const std::size_t j =
          static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
      if (j <= ii) break;  // strictly-upper part is at the row tail
      acc -= v[static_cast<std::size_t>(k)] * u[j];
    }
    u[ii] = acc * omega_ / diag_[ii];
  }
}

sim::PcCostProfile SsorPreconditioner::cost_profile() const {
  sim::PcCostProfile p;
  p.name = name();
  const double nnz = static_cast<double>(a_.nnz());
  const double n = static_cast<double>(a_.rows());
  // Two triangular sweeps touch every nonzero once plus diagonal work.
  p.flops = 2.0 * nnz + 4.0 * n;
  p.bytes = 12.0 * nnz + 5.0 * 8.0 * n;
  p.halo_exchanges = 1.0;  // block-SSOR neighbor coupling per apply
  p.stats = a_.stats();
  return p;
}

}  // namespace pipescg::precond
