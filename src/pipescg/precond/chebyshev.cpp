#include "pipescg/precond/chebyshev.hpp"

#include <cmath>

#include "pipescg/base/error.hpp"
#include "pipescg/base/rng.hpp"

namespace pipescg::precond {

double estimate_lambda_max(const sparse::CsrMatrix& a, int iterations,
                           std::uint64_t seed) {
  const std::size_t n = a.rows();
  PIPESCG_CHECK(n > 0, "empty matrix");
  std::vector<double> diag = a.diagonal();
  std::vector<double> x(n), y(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) x[i] = rng.uniform(-1.0, 1.0);

  double lambda = 1.0;
  for (int it = 0; it < iterations; ++it) {
    // y = D^{-1} A x
    a.apply(x, y);
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] /= diag[i];
      norm_sq += y[i] * y[i];
    }
    const double norm = std::sqrt(norm_sq);
    PIPESCG_CHECK(norm > 0.0 && std::isfinite(norm),
                  "power iteration broke down");
    lambda = norm;
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / norm;
  }
  return lambda;
}

ChebyshevPreconditioner::ChebyshevPreconditioner(const sparse::CsrMatrix& a,
                                                 int degree, double eig_ratio)
    : a_(a), degree_(degree) {
  PIPESCG_CHECK(degree >= 1, "Chebyshev degree must be >= 1");
  PIPESCG_CHECK(eig_ratio > 1.0, "eig_ratio must exceed 1");
  const double lmax = estimate_lambda_max(a);
  lambda_max_ = 1.1 * lmax;  // safety: power iteration underestimates
  lambda_min_ = lambda_max_ / eig_ratio;
  std::vector<double> diag = a.diagonal();
  inv_diag_.resize(diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) inv_diag_[i] = 1.0 / diag[i];
  z_.resize(a.rows());
  az_.resize(a.rows());
  p_.resize(a.rows());
}

void ChebyshevPreconditioner::apply(std::span<const double> r,
                                    std::span<double> u) const {
  const std::size_t n = a_.rows();
  PIPESCG_CHECK(r.size() == n && u.size() == n,
                "Chebyshev apply size mismatch");
  // Chebyshev iteration on (D^{-1}A) u = D^{-1} r over
  // [lambda_min, lambda_max], u_0 = 0 (standard smoother recurrence; see
  // Saad, Iterative Methods, sec. 12.3).
  const double theta = 0.5 * (lambda_max_ + lambda_min_);
  const double delta = 0.5 * (lambda_max_ - lambda_min_);
  const double sigma1 = theta / delta;

  // d_0 = D^{-1} r / theta;  u_1 = d_0.
  for (std::size_t i = 0; i < n; ++i) {
    p_[i] = r[i] * inv_diag_[i] / theta;
    u[i] = p_[i];
  }
  double rho_prev = 1.0 / sigma1;
  for (int k = 1; k < degree_; ++k) {
    // z = D^{-1}(r - A u_k), the Jacobi-scaled residual of the correction.
    a_.apply(u, az_);
    for (std::size_t i = 0; i < n; ++i)
      z_[i] = (r[i] - az_[i]) * inv_diag_[i];
    const double rho = 1.0 / (2.0 * sigma1 - rho_prev);
    // d_k = rho_k rho_{k-1} d_{k-1} + (2 rho_k / delta) z;  u += d_k.
    const double c1 = rho * rho_prev;
    const double c2 = 2.0 * rho / delta;
    for (std::size_t i = 0; i < n; ++i) {
      p_[i] = c1 * p_[i] + c2 * z_[i];
      u[i] += p_[i];
    }
    rho_prev = rho;
  }
}

sim::PcCostProfile ChebyshevPreconditioner::cost_profile() const {
  sim::PcCostProfile p;
  p.name = name();
  const double nnz = static_cast<double>(a_.nnz());
  const double n = static_cast<double>(a_.rows());
  p.flops = degree_ * (2.0 * nnz + 6.0 * n);
  p.bytes = degree_ * (12.0 * nnz + 6.0 * 8.0 * n);
  p.halo_exchanges = static_cast<double>(degree_);
  p.stats = a_.stats();
  return p;
}

}  // namespace pipescg::precond
