#include "pipescg/precond/jacobi.hpp"

#include <cmath>
#include <utility>

#include "pipescg/base/error.hpp"

namespace pipescg::precond {

JacobiPreconditioner::JacobiPreconditioner(const sparse::CsrMatrix& a)
    : stats_(a.stats()) {
  invert_diagonal(a.diagonal());
}

JacobiPreconditioner::JacobiPreconditioner(std::vector<double> diagonal,
                                           sparse::OperatorStats stats)
    : stats_(stats) {
  invert_diagonal(diagonal);
}

void JacobiPreconditioner::invert_diagonal(
    const std::vector<double>& diagonal) {
  inv_diag_.resize(diagonal.size());
  for (std::size_t i = 0; i < diagonal.size(); ++i) {
    PIPESCG_CHECK(diagonal[i] > 0.0 && std::isfinite(diagonal[i]),
                  "Jacobi requires a positive diagonal (SPD matrix)");
    inv_diag_[i] = 1.0 / diagonal[i];
  }
}

void JacobiPreconditioner::apply(std::span<const double> r,
                                 std::span<double> u) const {
  PIPESCG_CHECK(r.size() == inv_diag_.size() && u.size() == inv_diag_.size(),
                "Jacobi apply size mismatch");
  for (std::size_t i = 0; i < inv_diag_.size(); ++i) u[i] = r[i] * inv_diag_[i];
}

sim::PcCostProfile JacobiPreconditioner::cost_profile() const {
  sim::PcCostProfile p;
  p.name = name();
  const double n = static_cast<double>(rows());
  p.flops = n;
  p.bytes = 24.0 * n;
  p.halo_exchanges = 0.0;
  p.stats = stats_;
  return p;
}

}  // namespace pipescg::precond
