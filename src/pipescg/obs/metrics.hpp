// Unified metrics registry: one typed, queryable surface over every signal
// the runtime produces.
//
// Before this layer the repo's quantitative story lived in four ad-hoc
// formats: obs::Profiler::Counters (per-rank struct), per-kind
// LatencyHistograms, fault/recovery counts scattered through SolveStats and
// JSON reports, and the BENCH_*.json bench summaries.  The registry gives
// them one schema -- counters, gauges, and histograms carrying label sets
// (method, s, ranks, rank, span_kind, kernel) -- and two deterministic
// exporters:
//
//   * Prometheus text exposition (node_exporter textfile-collector
//     compatible, no timestamps): families sorted by name, series sorted by
//     rendered label set, values rendered shortest-round-trip
//     (json::number_to_string).  Two identical solves therefore produce
//     byte-identical expositions for every metric that is not wall-clock
//     derived; by naming convention all wall-clock-derived metrics carry a
//     `_seconds` or `_per_second` suffix, so `grep -v` on those two
//     suffixes yields the deterministic subset (the CI byte-identity gate).
//
//   * A key-stable JSON snapshot (same ordering contract) folded into
//     obs::solve_report, so one report file carries stats, profile, overlap,
//     drift, AND the metric surface a dashboard would scrape.
//
// Thread-safety contract: cell handles returned by the registry are stable
// for the registry's lifetime and their mutators are lock-free atomics, so
// rank threads record concurrently while the MetricsSampler renders
// snapshots from its own thread -- the design TSan validates in
// tests/metrics_test.cpp.  Registration (name -> family lookup) takes a
// mutex and belongs on the setup path, not in kernels.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pipescg/obs/json.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::krylov {
struct SolveStats;
}

namespace pipescg::obs::metrics {

/// Label set attached to one series.  Keys are sorted at registration, so
/// two call sites naming the same labels in different orders address the
/// same series and render identically.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone event/quantity count.  `double` payload so byte totals and
/// fractional modeled quantities fit; additions are CAS loops, reads are
/// single atomic loads.
class Counter {
 public:
  void add(double delta);
  void inc() { add(1.0); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time value (last write wins).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed distribution, mirroring obs::LatencyHistogram's bucket
/// geometry (bucket i holds seconds in [2^i, 2^(i+1)) ns) but with atomic
/// cells so observation and sampling can overlap.  Exported as a Prometheus
/// histogram: cumulative `_bucket{le=...}` series for non-empty buckets,
/// plus `_sum` and `_count`.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = LatencyHistogram::kBuckets;

  void observe(double seconds);
  /// Bulk import of an already-merged profiler histogram.
  void merge_from(const LatencyHistogram& h);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The registry: named metric families, each holding labeled series.  A
/// family's type is fixed by its first registration; re-registering the same
/// (name, labels) returns the existing cell, and registering a name with a
/// conflicting type throws.
class Registry {
 public:
  // Out-of-line: Family/Series are complete in metrics.cpp only.
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Handles are valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       Labels labels = {});

  /// Prometheus text exposition, version 0.0.4.  Deterministic: families
  /// sorted by name, series sorted by rendered label set, no timestamps.
  std::string prometheus() const;

  /// Key-stable JSON snapshot:
  ///   {"<family>": {"type", "help", "series":
  ///       [{"labels": {...}, "value": ...} |
  ///        {"labels": {...}, "count", "sum_seconds", "p50/p95/p99"...]}}
  /// with the same family/series ordering as the exposition.
  json::Value to_json() const;

  /// Write prometheus() to `path` atomically (tmp file + rename), the
  /// textfile-collector handshake: a scraper never reads a torn file.
  void write_textfile(const std::string& path) const;

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Series;
  struct Family;

  Series& series(const std::string& name, const std::string& help, Type type,
                 Labels&& labels);

  mutable std::mutex mu_;  // guards the maps, not the cells
  std::map<std::string, std::unique_ptr<Family>> families_;
};

/// Periodic snapshot thread: every `period_ms` it renders the registry and
/// writes the exposition to `path` (atomic replace), so a long solve is
/// observable while running -- point a node_exporter textfile collector (or
/// `watch cat`) at the file.  start()/stop() are idempotent; the destructor
/// stops.  Reads only atomic cells, so it is data-race-free against
/// recording rank threads (TSan-checked).
class MetricsSampler {
 public:
  MetricsSampler(const Registry& registry, std::string path, double period_ms);
  ~MetricsSampler();
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  void start();
  void stop();
  /// Render and write one snapshot NOW, regardless of the period -- the
  /// service layer calls this when a job terminates early (deadline expiry)
  /// so the terminal state is never lost to the sampling window.  Safe from
  /// any thread; I/O failures degrade to a missed sample.
  void flush();
  /// Snapshots written so far (final stop() flush included).
  std::size_t samples() const { return samples_.load(std::memory_order_relaxed); }

 private:
  void run();

  const Registry& registry_;
  std::string path_;
  double period_ms_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool running_ = false;
  std::atomic<std::size_t> samples_{0};
};

// --- bridges from the existing observability surfaces -----------------------

/// SolveStats as registry metrics (iterations, convergence flags, residual
/// norms, recoveries, final s), all under `base` labels.
void register_stats(Registry& registry, const krylov::SolveStats& stats,
                    const Labels& base = {});

/// A measured SolveProfile as registry metrics: per-rank kernel counters
/// (label rank="r"), per-span-kind measured seconds/span counts, cross-rank
/// latency histograms, the counters_uniform cross-check gauge, and measured
/// kernel throughput gauges (bytes moved from operator shape, see
/// Profiler::Counters::spmv_bytes, divided by measured spmv_local seconds).
void register_profile(Registry& registry, const SolveProfile& profile,
                      const Labels& base = {});

/// Fault-harness state as registry metrics: injected faults, recoveries,
/// and comm-watchdog trips (par::comm_watchdog_trips()).  The same numbers
/// the JSON reports carry -- tests assert the two surfaces agree.
void register_fault(Registry& registry, std::size_t injected_faults,
                    std::size_t recoveries, std::size_t watchdog_trips,
                    const Labels& base = {});

/// One service::Session's observable state, flattened to plain fields so obs
/// does not depend on the service layer (the session fills this in
/// Session-land; bench_service and the metrics bridge consume it here).
/// The histogram pointers may be null; when set they must outlive the
/// register_session call (merge_from copies the buckets).
struct SessionSnapshot {
  int ranks = 0;
  std::size_t solves = 0;        ///< jobs completed (single + batched columns)
  std::size_t team_runs = 0;     ///< bodies executed on the persistent team
  double setup_seconds = 0.0;    ///< wall cost of the one cold setup
  // Setup-build counters (service::SetupCounters): frozen after the session
  // constructor on the cache contract the tests pin down.
  std::size_t partition_builds = 0;
  std::size_t dist_builds = 0;
  std::size_t mpk_builds = 0;
  std::size_t pc_builds = 0;
  std::size_t team_spawns = 0;
  std::size_t warm_hits = 0;     ///< solves served entirely from cache
  std::size_t expired = 0;       ///< jobs dropped past their deadline
  const LatencyHistogram* solve_latency = nullptr;  ///< per-solve wall clock
  const LatencyHistogram* queue_latency = nullptr;  ///< admission wait
};

/// A SessionSnapshot as registry metrics: setup-build counters (label
/// kind="partition|dist|mpk|pc|team"), warm-hit/solve/team-run totals, the
/// setup cost gauge, and the solve-latency / queue-wait histograms.  All
/// wall-clock series carry the `_seconds` suffix per the determinism
/// convention above.
void register_session(Registry& registry, const SessionSnapshot& snapshot,
                      const Labels& base = {});

// --- live solve monitoring --------------------------------------------------

/// Mid-solve gauges fed from the s-step drivers' checkpoint hook
/// (obs::telemetry_checkpoint forwards here): current iteration, residual
/// norm, block size s, recovery count and -- when the residual-gap monitor
/// is on -- the latest predicted-vs-true gap (`pipescg_residual_gap`),
/// updated atomically so the MetricsSampler exposes a running solve's
/// trajectory, not just its post-mortem.  Install on the rank-0 thread
/// (same discipline as ConvergenceTelemetry: the scalar recurrences are
/// replicated, so one rank suffices and the gauges stay single-writer).
class LiveSolve {
 public:
  LiveSolve(Registry& registry, const Labels& base = {});

  /// `gap` < 0 = no gap check resolved at this checkpoint (the gauge keeps
  /// its previous value; -1 initially = monitor silent so far).
  void checkpoint(std::uint64_t iteration, double rnorm, int s,
                  std::uint64_t recoveries, double gap = -1.0);

  static LiveSolve* current() { return tls_current_; }

  /// RAII thread-local install; `l` may be nullptr (no-op install).
  class Install {
   public:
    explicit Install(LiveSolve* l);
    ~Install();
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    LiveSolve* prev_;
  };

 private:
  static thread_local LiveSolve* tls_current_;

  Gauge& iteration_;
  Gauge& rnorm_;
  Gauge& s_;
  Gauge& recoveries_;
  Gauge& gap_;
  Counter& checkpoints_;
};

}  // namespace pipescg::obs::metrics
