// Measured per-rank profiling for the SPMD runtime.
//
// The analytic machine model (sim/) prices a *recorded* serial trace; this
// is the complementary instrument: low-overhead wall-clock measurement of
// what the real par::Team execution did, per rank, decomposed the way the
// pipelined-CG literature diagnoses overlap quality -- local SPMV compute,
// halo-exchange epochs, PC applies, dot local partials, allreduce posts,
// and (the key signal) time spent spinning in allreduce waits, split
// blocking vs non-blocking.  A non-blocking wait that measures near zero
// means the solver fully hid the reduction behind compute; growth of that
// bucket is an overlap regression.
//
// Usage: a SolveProfile owns one Profiler per rank with a shared epoch.
// Each rank thread installs its Profiler (Profiler::Install, done by
// SpmdEngine's constructor when a profiler is passed), and the runtime's
// instrumentation points (par::Comm, sparse::DistCsr, SpmdEngine) record
// into Profiler::current() -- a thread-local pointer, so recording needs no
// synchronization and a disabled run costs one thread-local null check per
// hook.  Defining PIPESCG_DISABLE_PROFILING makes current() a constexpr
// nullptr and compiles every hook out entirely.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pipescg::obs {

/// What a measured span covers.  Kept deliberately close to the runtime's
/// actual instrumentation points rather than abstract phases.
enum class SpanKind : std::uint8_t {
  kSpmvLocal,       // local CSR compute of a distributed SPMV (no comm)
  kHaloExpose,      // expose(): window publication + epoch-open barrier
  kHaloPeerRead,    // peer_read(): pulling one ghost run
  kHaloClose,       // close_epoch(): epoch-close barrier
  kPcApply,         // rank-local preconditioner application
  kDotLocal,        // local partial reduction of a dot batch
  kAllreducePost,   // posting an allreduce (copy + publish)
  kAllreduceWaitBlocking,     // spin inside a blocking allreduce
  kAllreduceWaitNonblocking,  // spin completing an MPI_Iallreduce-style wait:
                              // the overlap-quality signal
  kCount_  // sentinel
};

constexpr std::size_t kSpanKindCount = static_cast<std::size_t>(SpanKind::kCount_);

/// Stable snake_case name (used as the Chrome-trace event name and as the
/// JSON report key).
const char* to_string(SpanKind kind);

struct Span {
  SpanKind kind;
  double start;  // seconds since the profile epoch
  double end;
};

/// Log-bucketed latency histogram: bucket i holds durations in
/// [2^i, 2^(i+1)) nanoseconds, so 64 buckets cover sub-nanosecond spins up
/// to centuries with a single shift per add.  Quantiles interpolate
/// geometrically inside the bucket -- accurate to a factor of 2^(1/count)
/// which is plenty for p50/p95/p99 tail diagnosis, and mergeable across
/// ranks without storing individual samples.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void add(double seconds);
  void merge(const LatencyHistogram& other);

  std::size_t count() const { return count_; }
  double sum_seconds() const { return sum_; }
  double min_seconds() const { return count_ == 0 ? 0.0 : min_; }
  double max_seconds() const { return max_; }
  double mean_seconds() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  /// q in [0, 1]; returns 0 when empty.  quantile(0.5) is the p50.
  double quantile(double q) const;

  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  /// Lower edge of bucket i in seconds (2^i ns).
  static double bucket_floor_seconds(std::size_t i);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Profiler {
 public:
  using Clock = std::chrono::steady_clock;

  Profiler(int rank, Clock::time_point epoch) : rank_(rank), epoch_(epoch) {}

  int rank() const { return rank_; }

  /// The clock instant span times are relative to (shared by all ranks of a
  /// SolveProfile); tracing::RequestTrace::add_profile uses it to align
  /// profiler spans with request spans recorded against a different epoch.
  Clock::time_point epoch() const { return epoch_; }

  /// Seconds since the profile epoch (shared by all ranks of a
  /// SolveProfile, so spans from different ranks share a timebase).
  double now() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  void record(SpanKind kind, double start, double end) {
    spans_.push_back(Span{kind, start, end});
    histograms_[static_cast<std::size_t>(kind)].add(end - start);
  }

  /// Latency distribution of every span of `kind` recorded so far.
  const LatencyHistogram& histogram(SpanKind kind) const {
    return histograms_[static_cast<std::size_t>(kind)];
  }

  /// Whole-epoch latency of batched halo exchanges (expose + all peer reads
  /// + close), recorded by par::Comm::exchange as one composite sample --
  /// the per-phase spans above stay disjoint so kind totals never
  /// double-count.
  void record_halo_exchange(double seconds) {
    halo_exchange_histogram_.add(seconds);
  }
  const LatencyHistogram& halo_exchange_histogram() const {
    return halo_exchange_histogram_;
  }

  /// Engine-level kernel counters, mirroring sim::EventTrace::Counters so a
  /// measured SPMD run can be cross-checked against a recorded serial trace.
  ///
  /// The halo_* counters account for batched halo-exchange epochs
  /// (par::Comm::exchange): one epoch per distributed SPMV, or one per
  /// s-step *block* when the matrix-powers kernel is active -- comparing
  /// halo_epochs against spmvs is how communication avoidance is verified
  /// (see EXPERIMENTS.md, "Measuring communication avoidance").  They are
  /// per-rank quantities: boundary ranks pull fewer messages/doubles than
  /// interior ranks, so they are deliberately excluded from the
  /// SolveProfile::counters_uniform() cross-rank check.
  struct Counters {
    std::size_t spmvs = 0;
    std::size_t pc_applies = 0;
    std::size_t allreduces = 0;
    std::size_t iterations = 0;  // CG-equivalent iterations
    std::size_t mpk_blocks = 0;  // matrix-powers s-blocks executed
    std::size_t recoveries = 0;  // fault-recovery rollback-restarts
    std::size_t halo_epochs = 0;          // batched exchange epochs
    std::size_t halo_messages = 0;        // ghost runs pulled (per rank)
    std::size_t halo_volume_doubles = 0;  // ghost doubles pulled (per rank)
    std::size_t spmv_bytes = 0;  // bytes moved by local SPMV compute, from
                                 // operator shape (matrix structure + vector
                                 // traffic); rank-dependent like halo_*, so
                                 // also outside the uniformity contract.
                                 // Feeds the measured-throughput gauges
                                 // (metrics::register_profile).
  };
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

  const std::vector<Span>& spans() const { return spans_; }

  /// Accumulated seconds and span count for one kind.
  struct KindTotal {
    double seconds = 0.0;
    std::size_t count = 0;
  };
  KindTotal total(SpanKind kind) const;

  // --- thread-local installation ------------------------------------------

#if defined(PIPESCG_DISABLE_PROFILING)
  static constexpr Profiler* current() { return nullptr; }
#else
  static Profiler* current() { return tls_current_; }
#endif

  /// RAII: installs a profiler as the calling thread's Profiler::current()
  /// and restores the previous one on destruction.  `p` may be nullptr (a
  /// no-op install), which lets call sites install unconditionally.
  class Install {
   public:
    explicit Install(Profiler* p);
    ~Install();
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    Profiler* prev_;
  };

 private:
  static thread_local Profiler* tls_current_;

  int rank_;
  Clock::time_point epoch_;
  std::vector<Span> spans_;
  std::array<LatencyHistogram, kSpanKindCount> histograms_;
  LatencyHistogram halo_exchange_histogram_;
  Counters counters_;
};

/// RAII span capture into a (possibly null) profiler: measures from
/// construction to destruction.  The null check is the only cost when
/// profiling is off.
class SpanScope {
 public:
  SpanScope(Profiler* p, SpanKind kind) : p_(p), kind_(kind) {
    if (p_ != nullptr) start_ = p_->now();
  }
  ~SpanScope() {
    if (p_ != nullptr) p_->record(kind_, start_, p_->now());
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Profiler* p_;
  SpanKind kind_;
  double start_ = 0.0;
};

/// One whole-solve measurement: a Profiler per rank sharing an epoch, built
/// before par::Team::run and harvested after it returns (rank threads only
/// touch their own profiler, so no synchronization is needed).
class SolveProfile {
 public:
  explicit SolveProfile(int ranks);

  int ranks() const { return static_cast<int>(profilers_.size()); }
  Profiler& rank(int r) { return profilers_[static_cast<std::size_t>(r)]; }
  const Profiler& rank(int r) const {
    return profilers_[static_cast<std::size_t>(r)];
  }

  /// min/median/max over ranks of the accumulated seconds of `kind`.
  struct Aggregate {
    double min = 0.0;
    double median = 0.0;
    double max = 0.0;
    std::size_t count = 0;  // total spans across ranks
  };
  Aggregate aggregate(SpanKind kind) const;

  /// Histogram of `kind` merged across all ranks (for cross-rank p50/p95/p99
  /// in reports).
  LatencyHistogram merged_histogram(SpanKind kind) const;
  LatencyHistogram merged_halo_exchange_histogram() const;

  /// True when every rank recorded identical kernel counters (they must,
  /// since SPMD ranks execute the same solver control flow).
  bool counters_uniform() const;

  /// One-line-per-kind human summary (for --profile console output).
  std::string summary() const;

 private:
  std::vector<Profiler> profilers_;
};

}  // namespace pipescg::obs
