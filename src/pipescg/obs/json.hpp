// Minimal JSON value: build, serialize, parse.
//
// The observability exporters (chrome_trace, report) construct their output
// as a Value tree and dump() it, and the tests parse() the emitted files
// back, so "everything we write is valid JSON" is enforced structurally
// rather than by string discipline.  Deliberately small: doubles only (JSON
// has one number type), insertion-ordered objects, no escapes beyond the
// JSON-required set, non-finite numbers serialize as null (JSON has no
// Inf/NaN).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pipescg::obs::json {

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double v) : type_(Type::kNumber), number_(v) {}
  Value(int v) : type_(Type::kNumber), number_(v) {}
  Value(std::int64_t v)
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Value(std::size_t v)
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Value(const char* s) : type_(Type::kString), string_(s) {}

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw pipescg::Error on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;

  // --- array ---------------------------------------------------------------
  void push_back(Value v);
  std::size_t size() const;  // array or object element count
  const Value& at(std::size_t i) const;
  Value& at(std::size_t i) {
    return const_cast<Value&>(static_cast<const Value&>(*this).at(i));
  }

  // --- object (insertion-ordered) -----------------------------------------
  /// Insert or overwrite `key`.
  void set(const std::string& key, Value v);
  bool contains(const std::string& key) const;
  /// Lookup; throws if the key is absent.
  const Value& at(const std::string& key) const;
  Value& at(const std::string& key) {
    return const_cast<Value&>(static_cast<const Value&>(*this).at(key));
  }
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Serialize.  indent < 0: compact single line; otherwise pretty-print
  /// with `indent` spaces per level.
  std::string dump(int indent = -1) const;

  bool operator==(const Value& other) const;

 private:
  void dump_impl(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Shortest-round-trip decimal rendering of a finite double: the fewest
/// significant digits whose strtod() recovers the exact bit pattern, with
/// integers printed exactly.  Every numeric emitter in the observability
/// layer (JSON dumps, Prometheus exposition, trajectory entries) routes
/// through this so that equal doubles always render as equal bytes and
/// baseline diffs are never formatting noise.
std::string number_to_string(double v);

/// Parse a complete JSON document (rejects trailing garbage).  Throws
/// pipescg::Error with position context on malformed input.
Value parse(std::string_view text);

/// Write `v.dump(2)` to `path` (with trailing newline); throws on I/O error.
void write_file(const std::string& path, const Value& v);

/// Read and parse `path`; throws on I/O or parse error.
Value parse_file(const std::string& path);

}  // namespace pipescg::obs::json
