#include "pipescg/obs/anomaly.hpp"

#include <cmath>
#include <fstream>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::obs::anomaly {

// --- AlertSink --------------------------------------------------------------

AlertSink::AlertSink(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  // Truncate at construction so one run's stream is self-contained; emits
  // then append.
  std::ofstream os(path_, std::ios::binary | std::ios::trunc);
  PIPESCG_CHECK(os.good(), "cannot open alerts output file " + path_);
}

std::string AlertSink::to_json_line(const Alert& alert) {
  json::Value v = json::Value::object();
  v.set("family", alert.family);
  v.set("severity", alert.severity);
  v.set("message", alert.message);
  v.set("trace_id", alert.trace_id);
  v.set("rank", alert.rank);
  v.set("iteration", alert.iteration);
  v.set("value", alert.value);
  v.set("threshold", alert.threshold);
  return v.dump(-1);
}

void AlertSink::emit(const Alert& alert) {
  std::lock_guard<std::mutex> lock(mu_);
  alerts_.push_back(alert);
  if (path_.empty()) return;
  std::ofstream os(path_, std::ios::binary | std::ios::app);
  PIPESCG_CHECK(os.good(), "cannot append to alerts output file " + path_);
  os << to_json_line(alert) << '\n';
  os.flush();
}

std::size_t AlertSink::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_.size();
}

std::vector<Alert> AlertSink::alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_;
}

std::vector<Alert> AlertSink::parse_jsonl(std::string_view text) {
  std::vector<Alert> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const json::Value v = json::parse(line);
    Alert a;
    a.family = v.at("family").as_string();
    a.severity = v.at("severity").as_string();
    a.message = v.at("message").as_string();
    a.trace_id = static_cast<std::uint64_t>(v.at("trace_id").as_number());
    a.rank = static_cast<int>(v.at("rank").as_number());
    a.iteration = static_cast<std::uint64_t>(v.at("iteration").as_number());
    a.value = v.at("value").as_number();
    a.threshold = v.at("threshold").as_number();
    out.push_back(std::move(a));
  }
  return out;
}

// --- StragglerDetector ------------------------------------------------------

StragglerDetector::StragglerDetector(int ranks, StragglerConfig config)
    : config_(config), cum_(static_cast<std::size_t>(ranks)),
      fired_(static_cast<std::size_t>(ranks), false) {
  PIPESCG_CHECK(ranks >= 2, "straggler detection needs at least two ranks");
  PIPESCG_CHECK(config_.window >= 1, "straggler window must be >= 1");
}

void StragglerDetector::publish(int rank, double cum_wait_seconds) {
  cum_[static_cast<std::size_t>(rank)].v.store(cum_wait_seconds,
                                               std::memory_order_relaxed);
}

std::optional<Alert> StragglerDetector::evaluate(std::uint64_t iteration) {
  const std::size_t p = cum_.size();
  std::vector<double> cur(p);
  for (std::size_t r = 0; r < p; ++r)
    cur[r] = cum_[r].v.load(std::memory_order_relaxed);
  history_.push_back(cur);
  if (history_.size() > config_.window + 1) history_.pop_front();
  if (history_.size() < 2) return std::nullopt;

  // Wait accumulated per rank over the trailing window.
  const std::vector<double>& base = history_.front();
  std::vector<double> delta(p);
  double mean = 0.0;
  double max_wait = 0.0;
  for (std::size_t r = 0; r < p; ++r) {
    delta[r] = cur[r] - base[r];
    if (delta[r] < 0.0) delta[r] = 0.0;
    mean += delta[r];
    max_wait = std::max(max_wait, delta[r]);
  }
  mean /= static_cast<double>(p);
  if (mean < config_.min_mean_seconds) {
    streak_rank_ = -1;
    streak_ = 0;
    return std::nullopt;
  }
  double var = 0.0;
  for (std::size_t r = 0; r < p; ++r)
    var += (delta[r] - mean) * (delta[r] - mean);
  const double sd = std::sqrt(var / static_cast<double>(p));
  if (sd <= 0.0) {
    streak_rank_ = -1;
    streak_ = 0;
    return std::nullopt;
  }
  // The straggler is the rank whose wait is anomalously LOW: everyone else
  // spins waiting for its late contributions, so ITS waits collapse.
  std::size_t rmin = 0;
  for (std::size_t r = 1; r < p; ++r)
    if (delta[r] < delta[rmin]) rmin = r;
  const double z = (delta[rmin] - mean) / sd;
  const bool suspect = z <= -config_.z_threshold &&
                       delta[rmin] <= config_.dominance * max_wait;
  if (!suspect) {
    streak_rank_ = -1;
    streak_ = 0;
    return std::nullopt;
  }
  if (static_cast<int>(rmin) == streak_rank_) {
    ++streak_;
  } else {
    streak_rank_ = static_cast<int>(rmin);
    streak_ = 1;
  }
  if (streak_ < config_.consecutive || fired_[rmin]) return std::nullopt;
  fired_[rmin] = true;
  Alert alert;
  alert.family = "straggler";
  alert.severity = "warning";
  alert.message = "rank " + std::to_string(rmin) +
                  " is straggling: its exposed wait is " +
                  std::to_string(z) + " sigma below the rank mean over the "
                  "trailing window (peers are spinning on its "
                  "contributions)";
  alert.rank = static_cast<int>(rmin);
  alert.iteration = iteration;
  alert.value = z;
  alert.threshold = -config_.z_threshold;
  return alert;
}

// --- StallDetector ----------------------------------------------------------

StallDetector::StallDetector(StallConfig config) : config_(config) {
  PIPESCG_CHECK(config_.window >= 2, "stall window must be >= 2");
}

std::optional<Alert> StallDetector::feed(std::uint64_t iteration,
                                         double rnorm) {
  if (!std::isfinite(rnorm) || rnorm <= 0.0) {
    window_.clear();
    return std::nullopt;
  }
  window_.push_back(rnorm);
  if (window_.size() > config_.window) window_.pop_front();
  if (window_.size() < config_.window) return std::nullopt;
  const double start = window_.front();
  const double ratio = rnorm / start;
  // Runaway growth is divergence -- the drivers' own detector owns it.
  if (ratio > config_.divergence_factor) return std::nullopt;
  if (ratio < 1.0 - config_.min_improvement) return std::nullopt;
  window_.clear();  // re-arm only after a fresh full window
  Alert alert;
  alert.family = "convergence_stall";
  alert.severity = "warning";
  alert.message = "residual norm plateaued: " + std::to_string(ratio) +
                  "x over the last " + std::to_string(config_.window) +
                  " checkpoints (not diverging, just not converging)";
  alert.iteration = iteration;
  alert.value = ratio;
  alert.threshold = 1.0 - config_.min_improvement;
  return alert;
}

// --- QueuePressureMonitor ---------------------------------------------------

QueuePressureMonitor::QueuePressureMonitor(QueuePressureConfig config)
    : config_(config) {}

std::optional<Alert> QueuePressureMonitor::on_depth(std::size_t depth) {
  if (depth < config_.depth_threshold) {
    saturated_ = false;
    return std::nullopt;
  }
  if (saturated_) return std::nullopt;  // rising edge only
  saturated_ = true;
  Alert alert;
  alert.family = "queue_saturation";
  alert.severity = "warning";
  alert.message = "admission queue depth " + std::to_string(depth) +
                  " reached the saturation threshold";
  alert.value = static_cast<double>(depth);
  alert.threshold = static_cast<double>(config_.depth_threshold);
  return alert;
}

std::optional<Alert> QueuePressureMonitor::on_dispatch(
    double headroom_seconds, double p95_solve_seconds, bool expired,
    std::uint64_t trace_id) {
  const double needed = config_.headroom_factor * p95_solve_seconds;
  if (!expired && headroom_seconds >= needed) return std::nullopt;
  Alert alert;
  alert.family = "deadline_pressure";
  alert.severity = expired ? "critical" : "warning";
  alert.message =
      expired ? "deadline expired before execution could start"
              : "deadline headroom " + std::to_string(headroom_seconds) +
                    "s is below the observed p95 solve latency";
  alert.trace_id = trace_id;
  alert.value = headroom_seconds;
  alert.threshold = needed;
  return alert;
}

// --- MidSolveProbe ----------------------------------------------------------

thread_local MidSolveProbe* MidSolveProbe::tls_current_ = nullptr;

void MidSolveProbe::on_checkpoint(std::uint64_t iteration, double rnorm) {
  if (shared_ == nullptr) return;
  if (StragglerDetector* det = shared_->straggler) {
    if (const Profiler* prof = Profiler::current()) {
      const double wait =
          prof->total(SpanKind::kAllreduceWaitBlocking).seconds +
          prof->total(SpanKind::kAllreduceWaitNonblocking).seconds +
          prof->total(SpanKind::kHaloExpose).seconds +
          prof->total(SpanKind::kHaloPeerRead).seconds +
          prof->total(SpanKind::kHaloClose).seconds;
      det->publish(rank_, wait);
    }
    if (rank_ == 0) {
      if (std::optional<Alert> alert = det->evaluate(iteration))
        emit(std::move(*alert));
    }
  }
  if (rank_ == 0 && shared_->stall != nullptr) {
    if (std::optional<Alert> alert = shared_->stall->feed(iteration, rnorm))
      emit(std::move(*alert));
  }
}

void MidSolveProbe::emit(Alert alert) {
  if (alert.trace_id == 0) alert.trace_id = shared_->trace_id;
  if (shared_->sink != nullptr) shared_->sink->emit(alert);
  if (shared_->on_alert != nullptr)
    shared_->on_alert(shared_->on_alert_arg, alert);
}

MidSolveProbe::Install::Install(MidSolveProbe* p) : prev_(tls_current_) {
  if (p != nullptr) tls_current_ = p;
}

MidSolveProbe::Install::~Install() { tls_current_ = prev_; }

}  // namespace pipescg::obs::anomaly
