#include "pipescg/obs/report.hpp"

#include <algorithm>
#include <vector>

#include "pipescg/obs/metrics.hpp"

namespace pipescg::obs {

json::Value stats_to_json(const krylov::SolveStats& stats) {
  json::Value v = json::Value::object();
  v.set("method", stats.method);
  v.set("converged", stats.converged);
  v.set("stagnated", stats.stagnated);
  v.set("breakdown", stats.breakdown);
  v.set("iterations", stats.iterations);
  v.set("recoveries", stats.recoveries);
  v.set("final_s", stats.final_s);
  v.set("b_norm", stats.b_norm);
  v.set("final_rnorm", stats.final_rnorm);
  v.set("true_residual", stats.true_residual);
  v.set("basis", stats.basis);
  if (stats.basis_lambda_max > 0.0) {
    v.set("basis_lambda_min", stats.basis_lambda_min);
    v.set("basis_lambda_max", stats.basis_lambda_max);
  }
  // Stability section: emitted zero-or-not so reports diff key-for-key
  // (gaps stay at the -1 sentinel when the monitor never ran).
  {
    json::Value gap = json::Value::object();
    gap.set("checks", stats.gap_checks);
    gap.set("replacements", stats.replacements);
    gap.set("failed_replacements", stats.failed_replacements);
    gap.set("gram_breakdowns", stats.gram_breakdowns);
    gap.set("last_gap", stats.last_residual_gap);
    gap.set("max_gap", stats.max_residual_gap);
    v.set("residual_gap", std::move(gap));
  }
  if (stats.condition_est > 0.0) {
    v.set("lambda_min_est", stats.lambda_min_est);
    v.set("lambda_max_est", stats.lambda_max_est);
    v.set("condition_est", stats.condition_est);
  }
  json::Value history = json::Value::array();
  for (const auto& [iter, rnorm] : stats.history) {
    json::Value point = json::Value::array();
    point.push_back(iter);
    point.push_back(rnorm);
    history.push_back(std::move(point));
  }
  v.set("history", std::move(history));
  return v;
}

json::Value counters_to_json(const Profiler::Counters& counters) {
  json::Value v = json::Value::object();
  v.set("spmvs", counters.spmvs);
  v.set("pc_applies", counters.pc_applies);
  v.set("allreduces", counters.allreduces);
  v.set("iterations", counters.iterations);
  v.set("mpk_blocks", counters.mpk_blocks);
  v.set("recoveries", counters.recoveries);
  v.set("halo_epochs", counters.halo_epochs);
  v.set("halo_messages", counters.halo_messages);
  v.set("halo_volume_doubles", counters.halo_volume_doubles);
  v.set("spmv_bytes", counters.spmv_bytes);
  return v;
}

json::Value counters_to_json(const sim::EventTrace::Counters& counters) {
  json::Value v = json::Value::object();
  v.set("spmvs", counters.spmvs);
  v.set("pc_applies", counters.pc_applies);
  v.set("allreduces", counters.allreduces);
  v.set("iterations", counters.iterations);
  v.set("vector_flops", counters.vector_flops);
  return v;
}

json::Value histogram_to_json(const LatencyHistogram& h) {
  json::Value v = json::Value::object();
  v.set("count", h.count());
  v.set("sum_seconds", h.sum_seconds());
  v.set("min_seconds", h.min_seconds());
  v.set("p50_seconds", h.quantile(0.50));
  v.set("p95_seconds", h.quantile(0.95));
  v.set("p99_seconds", h.quantile(0.99));
  v.set("max_seconds", h.max_seconds());
  return v;
}

json::Value profile_to_json(const SolveProfile& profile) {
  json::Value v = json::Value::object();
  v.set("ranks", profile.ranks());
  v.set("counters_uniform", profile.counters_uniform());

  // Every kind is emitted everywhere below, zero or not: reports from runs
  // that exercised different span kinds (e.g. zero recoveries, no halo
  // traffic) must still diff key-for-key.
  json::Value per_rank = json::Value::array();
  for (int r = 0; r < profile.ranks(); ++r) {
    const Profiler& p = profile.rank(r);
    json::Value rank = json::Value::object();
    rank.set("rank", r);
    rank.set("counters", counters_to_json(p.counters()));
    json::Value kinds = json::Value::object();
    for (std::size_t k = 0; k < kSpanKindCount; ++k) {
      const SpanKind kind = static_cast<SpanKind>(k);
      const Profiler::KindTotal t = p.total(kind);
      json::Value entry = json::Value::object();
      entry.set("seconds", t.seconds);
      entry.set("count", t.count);
      kinds.set(to_string(kind), std::move(entry));
    }
    rank.set("spans", std::move(kinds));
    per_rank.push_back(std::move(rank));
  }
  v.set("per_rank", std::move(per_rank));

  // min/median/max over ranks for every kind.
  json::Value aggregates = json::Value::object();
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    const SolveProfile::Aggregate a = profile.aggregate(kind);
    json::Value entry = json::Value::object();
    entry.set("count", a.count);
    entry.set("min_seconds", a.min);
    entry.set("median_seconds", a.median);
    entry.set("max_seconds", a.max);
    aggregates.set(to_string(kind), std::move(entry));
  }
  v.set("aggregates", std::move(aggregates));

  // min/median/max over ranks of the fault-recovery counter, explicit even
  // when every rank recorded zero.
  {
    std::vector<double> rec;
    rec.reserve(static_cast<std::size_t>(profile.ranks()));
    for (int r = 0; r < profile.ranks(); ++r)
      rec.push_back(static_cast<double>(profile.rank(r).counters().recoveries));
    std::sort(rec.begin(), rec.end());
    json::Value entry = json::Value::object();
    entry.set("min", rec.empty() ? 0.0 : rec.front());
    entry.set("median", rec.empty() ? 0.0 : rec[rec.size() / 2]);
    entry.set("max", rec.empty() ? 0.0 : rec.back());
    v.set("recoveries_over_ranks", std::move(entry));
  }

  // Cross-rank latency histograms: all span kinds plus the composite
  // whole-epoch halo exchange sampled by par::Comm::exchange.
  json::Value histograms = json::Value::object();
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    histograms.set(to_string(kind),
                   histogram_to_json(profile.merged_histogram(kind)));
  }
  histograms.set("halo_exchange",
                 histogram_to_json(profile.merged_halo_exchange_histogram()));
  v.set("histograms", std::move(histograms));
  return v;
}

json::Value overlap_to_json(const OverlapReport& report) {
  json::Value v = json::Value::object();
  v.set("ranks", report.ranks);
  v.set("blocks", report.blocks);
  v.set("nonblocking_blocks", report.nonblocking_blocks);
  v.set("hidden_seconds", report.hidden_seconds);
  v.set("exposed_seconds", report.exposed_seconds);
  v.set("total_wait_seconds", report.total_wait_seconds);
  v.set("efficiency", report.efficiency);

  auto mmm = [](const MinMedMax& m) {
    json::Value e = json::Value::object();
    e.set("min", m.min);
    e.set("median", m.median);
    e.set("max", m.max);
    return e;
  };
  v.set("efficiency_over_ranks", mmm(report.efficiency_over_ranks));
  v.set("exposed_over_ranks", mmm(report.exposed_over_ranks));

  json::Value per_rank = json::Value::array();
  for (const RankOverlap& ro : report.per_rank) {
    json::Value e = json::Value::object();
    e.set("rank", ro.rank);
    e.set("blocks", ro.blocks.size());
    e.set("hidden_seconds", ro.hidden_seconds);
    e.set("exposed_seconds", ro.exposed_seconds);
    e.set("total_wait_seconds", ro.total_wait_seconds);
    e.set("efficiency", ro.efficiency);
    per_rank.push_back(std::move(e));
  }
  v.set("per_rank", std::move(per_rank));

  const CriticalPath& cp = report.critical_path;
  json::Value path = json::Value::object();
  path.set("makespan_seconds", cp.makespan);
  path.set("end_rank", cp.end_rank);
  path.set("rank_switches", cp.rank_switches);
  path.set("untracked_seconds", cp.untracked_seconds);
  json::Value attribution = json::Value::array();
  for (const KindAttribution& a : cp.attribution) {
    json::Value e = json::Value::object();
    e.set("kind", a.kind);
    e.set("seconds", a.seconds);
    e.set("spans", a.spans);
    attribution.push_back(std::move(e));
  }
  path.set("attribution", std::move(attribution));
  v.set("critical_path", std::move(path));
  return v;
}

json::Value drift_to_json(const DriftReport& report) {
  json::Value v = json::Value::object();
  v.set("threshold", report.threshold);
  v.set("modeled_makespan_seconds", report.modeled_makespan);
  v.set("measured_makespan_seconds", report.measured_makespan);
  json::Value kinds = json::Value::object();
  for (const DriftEntry& e : report.kinds) {
    json::Value entry = json::Value::object();
    entry.set("modeled_seconds", e.modeled_seconds);
    entry.set("measured_seconds", e.measured_seconds);
    entry.set("has_measured", e.has_measured);
    entry.set("delta_seconds", e.delta);
    entry.set("ratio", e.ratio);
    entry.set("flagged", e.flagged);
    if (!e.note.empty()) entry.set("note", e.note);
    kinds.set(e.kind, std::move(entry));
  }
  v.set("kinds", std::move(kinds));
  return v;
}

json::Value solve_report(const krylov::SolveStats& stats,
                         const SolveProfile* profile,
                         const OverlapReport* overlap,
                         const DriftReport* drift,
                         const metrics::Registry* registry) {
  json::Value v = json::Value::object();
  v.set("method", stats.method);
  v.set("stats", stats_to_json(stats));
  if (profile != nullptr) v.set("profile", profile_to_json(*profile));
  if (overlap != nullptr) v.set("overlap", overlap_to_json(*overlap));
  if (drift != nullptr) v.set("drift", drift_to_json(*drift));
  if (registry != nullptr) v.set("metrics", registry->to_json());
  return v;
}

}  // namespace pipescg::obs
