#include "pipescg/obs/report.hpp"

namespace pipescg::obs {

json::Value stats_to_json(const krylov::SolveStats& stats) {
  json::Value v = json::Value::object();
  v.set("method", stats.method);
  v.set("converged", stats.converged);
  v.set("stagnated", stats.stagnated);
  v.set("breakdown", stats.breakdown);
  v.set("iterations", stats.iterations);
  v.set("recoveries", stats.recoveries);
  v.set("final_s", stats.final_s);
  v.set("b_norm", stats.b_norm);
  v.set("final_rnorm", stats.final_rnorm);
  v.set("true_residual", stats.true_residual);
  if (stats.condition_est > 0.0) {
    v.set("lambda_min_est", stats.lambda_min_est);
    v.set("lambda_max_est", stats.lambda_max_est);
    v.set("condition_est", stats.condition_est);
  }
  json::Value history = json::Value::array();
  for (const auto& [iter, rnorm] : stats.history) {
    json::Value point = json::Value::array();
    point.push_back(iter);
    point.push_back(rnorm);
    history.push_back(std::move(point));
  }
  v.set("history", std::move(history));
  return v;
}

json::Value counters_to_json(const Profiler::Counters& counters) {
  json::Value v = json::Value::object();
  v.set("spmvs", counters.spmvs);
  v.set("pc_applies", counters.pc_applies);
  v.set("allreduces", counters.allreduces);
  v.set("iterations", counters.iterations);
  v.set("mpk_blocks", counters.mpk_blocks);
  v.set("recoveries", counters.recoveries);
  v.set("halo_epochs", counters.halo_epochs);
  v.set("halo_messages", counters.halo_messages);
  v.set("halo_volume_doubles", counters.halo_volume_doubles);
  return v;
}

json::Value counters_to_json(const sim::EventTrace::Counters& counters) {
  json::Value v = json::Value::object();
  v.set("spmvs", counters.spmvs);
  v.set("pc_applies", counters.pc_applies);
  v.set("allreduces", counters.allreduces);
  v.set("iterations", counters.iterations);
  v.set("vector_flops", counters.vector_flops);
  return v;
}

json::Value profile_to_json(const SolveProfile& profile) {
  json::Value v = json::Value::object();
  v.set("ranks", profile.ranks());
  v.set("counters_uniform", profile.counters_uniform());

  json::Value per_rank = json::Value::array();
  for (int r = 0; r < profile.ranks(); ++r) {
    const Profiler& p = profile.rank(r);
    json::Value rank = json::Value::object();
    rank.set("rank", r);
    rank.set("counters", counters_to_json(p.counters()));
    json::Value kinds = json::Value::object();
    for (std::size_t k = 0; k < kSpanKindCount; ++k) {
      const SpanKind kind = static_cast<SpanKind>(k);
      const Profiler::KindTotal t = p.total(kind);
      if (t.count == 0) continue;
      json::Value entry = json::Value::object();
      entry.set("seconds", t.seconds);
      entry.set("count", t.count);
      kinds.set(to_string(kind), std::move(entry));
    }
    rank.set("spans", std::move(kinds));
    per_rank.push_back(std::move(rank));
  }
  v.set("per_rank", std::move(per_rank));

  // min/median/max over ranks for every kind, always including the
  // non-blocking wait-spin aggregate (the overlap-quality headline) even
  // when zero.
  json::Value aggregates = json::Value::object();
  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    const SolveProfile::Aggregate a = profile.aggregate(kind);
    if (a.count == 0 && kind != SpanKind::kAllreduceWaitNonblocking) continue;
    json::Value entry = json::Value::object();
    entry.set("count", a.count);
    entry.set("min_seconds", a.min);
    entry.set("median_seconds", a.median);
    entry.set("max_seconds", a.max);
    aggregates.set(to_string(kind), std::move(entry));
  }
  v.set("aggregates", std::move(aggregates));
  return v;
}

json::Value solve_report(const krylov::SolveStats& stats,
                         const SolveProfile* profile) {
  json::Value v = json::Value::object();
  v.set("method", stats.method);
  v.set("stats", stats_to_json(stats));
  if (profile != nullptr) v.set("profile", profile_to_json(*profile));
  return v;
}

}  // namespace pipescg::obs
