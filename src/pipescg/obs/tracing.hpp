// Request-scoped distributed tracing for the service layer.
//
// The per-solve Profiler (obs/profiler.hpp) answers "what did the kernels
// of ONE solve cost"; this layer answers the operator's question: "what
// happened to REQUEST 7042, end to end".  Every service::SolveContext mints
// a TraceContext (a process-unique trace_id plus the parent span under
// which its work nests), and that context propagates through every layer a
// request crosses:
//
//   AdmissionQueue enqueue  ->  queue_wait span on the service track
//   Session dispatch        ->  request/dispatch/gather spans (service track)
//   each PersistentTeam rank->  a rank_solve span per rank, with
//                               per-outer-iteration checkpoint spans and the
//                               rank's measured kernel spans (allreduce
//                               waits, halo phases) nested inside
//   RecoveryManager         ->  recovery_* marks when a rollback fires
//
// Each rank thread records into its OWN fixed-capacity SpanRing -- a
// single-writer ring with no locks and no allocation after construction, so
// tracing never perturbs rank lockstep (the bitwise-identity contract:
// a traced solve iterates identically to an untraced one).  When the
// request completes, the service thread merges every ring into ONE
// clock-aligned Chrome/Perfetto trace file: each ring carries the offset of
// its local clock epoch from the request's base epoch, merge_trace()
// applies it, sorts deterministically, and stamps every event's args with
// {trace_id, span_id, parent_span_id} so alerts (obs/anomaly.hpp) can link
// back to the exact span.
//
// Span-id scheme: ids are minted per ring as (ring_tag + 1) * 2^32 + seq,
// so ids from different ranks never collide, stay below 2^53 (exact in the
// JSON double), and encode which track minted them.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "pipescg/obs/json.hpp"

namespace pipescg::obs {
class SolveProfile;
}

namespace pipescg::obs::tracing {

/// The propagated identity of one request: which trace spans belong to and
/// the span they nest under at the current layer.  Copied (not referenced)
/// across threads -- each layer re-parents by value.
struct TraceContext {
  std::uint64_t trace_id = 0;        ///< 0 = no trace (untraced request)
  std::uint64_t parent_span_id = 0;  ///< 0 = root of the trace
  bool valid() const { return trace_id != 0; }
};

/// Mint a fresh process-unique trace context (atomic counter, starts at 1).
TraceContext new_trace();

/// One completed span.  Times are seconds since the OWNING RING's clock
/// epoch; merge_trace() aligns them to the request base via the ring's
/// clock_offset.  `args` is a small set of numeric annotations rendered
/// into the Chrome event's args object (iteration numbers, rnorm, cache
/// hit flags...).
struct TraceSpan {
  std::string name;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  double start = 0.0;
  double end = 0.0;
  std::vector<std::pair<std::string, double>> args;
};

/// Fixed-capacity single-writer span ring.  Exactly one thread pushes at a
/// time (the owning rank thread during the solve, the service thread during
/// merge); eviction keeps the NEWEST spans -- when the ring is full the
/// oldest span is overwritten and dropped() counts it, so a pathologically
/// long solve degrades to "most recent window" instead of unbounded memory.
class SpanRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 8192;

  /// `tag` scopes minted span ids (rank index, or ranks for the service
  /// track) so ids from different rings never collide.
  explicit SpanRing(std::size_t capacity = kDefaultCapacity,
                    std::uint64_t tag = 0);

  std::uint64_t tag() const { return tag_; }
  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return size_; }
  std::size_t dropped() const { return dropped_; }

  /// Next span id for this ring: (tag + 1) * 2^32 + sequence.
  std::uint64_t mint();

  void push(TraceSpan span);

  /// Retained spans in push order (oldest retained first).
  std::vector<TraceSpan> spans() const;

  /// Seconds the owning clock's epoch sits AFTER the request base epoch;
  /// merge_trace() adds it to every span time.  Settable directly so tests
  /// can model skewed clocks.
  void set_clock_offset(double seconds) { clock_offset_ = seconds; }
  double clock_offset() const { return clock_offset_; }

 private:
  std::vector<TraceSpan> ring_;
  std::uint64_t tag_;
  std::uint64_t next_seq_ = 0;
  std::size_t head_ = 0;     // oldest retained slot once full
  std::size_t size_ = 0;
  std::size_t dropped_ = 0;
  double clock_offset_ = 0.0;
};

/// Per-thread span recorder, installed thread-locally on each rank for the
/// duration of a request (the same Install idiom as Profiler /
/// ConvergenceTelemetry: instrumentation points pay one null check when
/// tracing is off).  Owns a parent stack seeded with the request context's
/// parent span; TraceScope pushes/pops it so nested scopes parent
/// correctly.
class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Records into `ring`; the tracer's own epoch is Clock::now() at
  /// construction and the ring's clock_offset is set to (epoch - base), so
  /// spans merge clock-aligned against the request's base epoch.
  Tracer(TraceContext ctx, SpanRing& ring, Clock::time_point base);

  /// Test/offline constructor: explicit epoch, ring offset left untouched.
  Tracer(TraceContext ctx, SpanRing& ring);

  const TraceContext& context() const { return ctx_; }
  SpanRing& ring() { return ring_; }

  /// Seconds since this tracer's epoch.
  double now() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  /// Innermost open scope (or the request context's parent span).
  std::uint64_t current_parent() const { return parents_.back(); }

  /// Record a completed span under the current parent; returns its id.
  std::uint64_t record(std::string name, double start, double end,
                       std::vector<std::pair<std::string, double>> args = {});

  /// Instantaneous annotation (zero-duration span) under the current
  /// parent: recovery marks, cache-hit stamps.
  std::uint64_t mark(std::string name,
                     std::vector<std::pair<std::string, double>> args = {});

  /// Called by obs::telemetry_checkpoint on every rank at every outer
  /// iteration: records an `outer_iteration` span covering the time since
  /// the previous checkpoint (or since installation for the first one),
  /// annotated with the iteration count and residual norm.
  void checkpoint(std::uint64_t iteration, double rnorm);

  static Tracer* current() { return tls_current_; }

  class Install {
   public:
    explicit Install(Tracer* t);
    ~Install();
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    Tracer* prev_;
  };

 private:
  friend class TraceScope;
  static thread_local Tracer* tls_current_;

  TraceContext ctx_;
  SpanRing& ring_;
  Clock::time_point epoch_;
  std::vector<std::uint64_t> parents_;
  double last_checkpoint_ = 0.0;
};

/// RAII nested span: construction opens it (minting the id immediately so
/// children observe the right parent), destruction records it.  Null-safe:
/// a null tracer makes every operation a no-op, so call sites install
/// unconditionally.
class TraceScope {
 public:
  TraceScope(Tracer* t, std::string name);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// The minted span id (0 when the tracer is null).
  std::uint64_t span_id() const { return span_id_; }

 private:
  Tracer* t_;
  std::string name_;
  std::uint64_t span_id_ = 0;
  double start_ = 0.0;
};

/// All the rings of one request: one per rank plus one for the service
/// thread (tag == ranks), sharing one base epoch.  Built by the Session
/// when a traced request starts; rank threads each write their own ring, so
/// the structure needs no locks.
class RequestTrace {
 public:
  using Clock = std::chrono::steady_clock;

  RequestTrace(TraceContext ctx, int ranks,
               std::size_t capacity = SpanRing::kDefaultCapacity,
               Clock::time_point base = Clock::now());

  const TraceContext& context() const { return ctx_; }
  int ranks() const { return static_cast<int>(rings_.size()) - 1; }
  Clock::time_point base_epoch() const { return base_; }

  SpanRing& rank_ring(int r) { return rings_[static_cast<std::size_t>(r)]; }
  const SpanRing& rank_ring(int r) const {
    return rings_[static_cast<std::size_t>(r)];
  }
  /// The service thread's track (queue wait, dispatch, gather).
  SpanRing& service_ring() { return rings_.back(); }
  const SpanRing& service_ring() const { return rings_.back(); }

  /// Convert a measured SolveProfile into rank-track spans: each rank's
  /// kernel spans (spmv_local, allreduce_wait_*, halo_*) become children of
  /// that rank's root span `rank_roots[r]`, clock-aligned from the profile
  /// epoch.  Call after the team run returns (single-threaded).
  void add_profile(const SolveProfile& profile,
                   std::span<const std::uint64_t> rank_roots);

 private:
  TraceContext ctx_;
  Clock::time_point base_;
  std::vector<SpanRing> rings_;
};

/// Merge every ring of a request into one Chrome trace-event document:
/// {"trace_id", "displayTimeUnit", "traceEvents": [...]} with process 0
/// named for the request, one named thread per rank plus "service", all
/// span times aligned to the request base epoch, and events ordered
/// deterministically by (tid, aligned start, span_id) -- the same rings
/// merge to byte-identical JSON regardless of how rank execution
/// interleaved.
json::Value merge_trace(const RequestTrace& trace);

/// merge_trace + atomic-ish write to `path`.
void write_merged_trace(const RequestTrace& trace, const std::string& path);

/// Directory of per-request trace files: write() renders one request to
/// `<dir>/trace_<trace_id>.json`.  Thread-safe (the service layer may run
/// sessions from several threads).
class TraceSink {
 public:
  explicit TraceSink(std::string dir);

  const std::string& dir() const { return dir_; }
  std::string path_for(std::uint64_t trace_id) const;

  /// Returns the written path.
  std::string write(const RequestTrace& trace);

  std::size_t written() const;

 private:
  std::string dir_;
  mutable std::mutex mu_;
  std::size_t written_ = 0;
};

}  // namespace pipescg::obs::tracing
