#include "pipescg/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "pipescg/base/error.hpp"

namespace pipescg::obs::json {
namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no Inf/NaN
    return;
  }
  out += number_to_string(v);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    PIPESCG_CHECK(pos_ == text_.size(),
                  "json: trailing garbage at offset " + std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    PIPESCG_FAIL("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::string parse_string_raw() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case 'r':
            out += '\r';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                fail("bad \\u escape digit");
            }
            // ASCII only (all this library ever emits); others -> UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_value() {
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string_raw());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    return parse_number();
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
        ++pos_;
      digits();
    }
    if (!any) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    return Value(v);
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push_back(parse_value());
      const char c = peek();
      if (c == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string_raw();
      expect(':');
      v.set(key, parse_value());
      const char c = peek();
      if (c == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string number_to_string(double v) {
  PIPESCG_CHECK(std::isfinite(v), "number_to_string: non-finite value");
  // Integers (the common case for counters/ids) print exactly.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest round-trip: the fewest significant digits strtod() maps back to
  // the same bit pattern.  17 always round-trips for IEEE doubles, so the
  // loop terminates; most values need far fewer (0.1 renders as "0.1", not
  // "0.10000000000000001"), which is what keeps baseline diffs and
  // trajectory entries free of formatting noise.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool Value::as_bool() const {
  PIPESCG_CHECK(type_ == Type::kBool, "json: not a bool");
  return bool_;
}

double Value::as_number() const {
  PIPESCG_CHECK(type_ == Type::kNumber, "json: not a number");
  return number_;
}

const std::string& Value::as_string() const {
  PIPESCG_CHECK(type_ == Type::kString, "json: not a string");
  return string_;
}

void Value::push_back(Value v) {
  PIPESCG_CHECK(type_ == Type::kArray, "json: push_back on non-array");
  array_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  PIPESCG_FAIL("json: size() on non-container");
}

const Value& Value::at(std::size_t i) const {
  PIPESCG_CHECK(type_ == Type::kArray, "json: indexed access on non-array");
  PIPESCG_CHECK(i < array_.size(), "json: array index out of range");
  return array_[i];
}

void Value::set(const std::string& key, Value v) {
  PIPESCG_CHECK(type_ == Type::kObject, "json: set on non-object");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

bool Value::contains(const std::string& key) const {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_)
    if (k == key) return true;
  return false;
}

const Value& Value::at(const std::string& key) const {
  PIPESCG_CHECK(type_ == Type::kObject, "json: keyed access on non-object");
  for (const auto& [k, v] : object_)
    if (k == key) return v;
  PIPESCG_FAIL("json: missing key '" + key + "'");
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  PIPESCG_CHECK(type_ == Type::kObject, "json: members() on non-object");
  return object_;
}

bool Value::operator==(const Value& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return array_ == other.array_;
    case Type::kObject:
      return object_ == other.object_;
  }
  return false;
}

void Value::dump_impl(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ')
             : std::string();
  const std::string close_pad =
      pretty ? std::string(static_cast<std::size_t>(indent * depth), ' ')
             : std::string();
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";

  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_impl(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        append_escaped(out, object_[i].first);
        out += colon;
        object_[i].second.dump_impl(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

void write_file(const std::string& path, const Value& v) {
  std::ofstream out(path);
  PIPESCG_CHECK(out.good(), "cannot open '" + path + "' for writing");
  out << v.dump(2) << "\n";
  out.close();
  PIPESCG_CHECK(out.good(), "error writing '" + path + "'");
}

Value parse_file(const std::string& path) {
  std::ifstream in(path);
  PIPESCG_CHECK(in.good(), "cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace pipescg::obs::json
