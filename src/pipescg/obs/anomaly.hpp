// Online anomaly detection for the service layer.
//
// Post-mortem reports (obs/report.hpp) explain a solve after it finished;
// the detectors here watch it WHILE it runs, at the same outer-iteration
// checkpoint boundaries the telemetry layer already uses, and publish
// structured alerts an operator can act on mid-flight.  Three families,
// matching the production failure modes of pipelined s-step methods
// (exposed reductions under system noise; silent convergence stagnation;
// admission backlog blowing deadlines):
//
//   straggler        one rank computing slower than its peers.  Detected
//                    from the OTHER ranks' point of view: every rank
//                    publishes its cumulative allreduce-wait + halo seconds
//                    at each checkpoint (relaxed atomic store of its own
//                    slot); rank 0 computes a rolling per-rank z-score over
//                    the trailing window.  The straggler is the rank whose
//                    wait is anomalously LOW -- it arrives late everywhere,
//                    so it never waits, while every peer spins waiting for
//                    its contribution.
//   convergence_stall the residual norm plateaus over a window without the
//                    growth that marks divergence (divergence already has a
//                    detector in the drivers; a stall is the quiet failure
//                    the related work warns about).
//   queue_saturation / deadline_pressure -- admission-side: queue depth
//                    crossing a threshold (rising edge), and jobs reaching
//                    execution with less deadline headroom than the
//                    session's observed p95 solve latency (or already
//                    expired).
//
// Alerts are appended as JSONL to --alerts-out and counted in
// pipescg_anomaly_* metric families; every alert carries the trace_id of
// the request that raised it, linking alert -> merged Perfetto trace.
//
// Numerical-trajectory contract: detectors only READ measurements; they
// add no collectives and never touch solver state, so a monitored solve
// iterates bitwise identically to an unmonitored one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pipescg::obs::anomaly {

/// One structured alert.  `value` / `threshold` carry the measurement that
/// tripped the detector (z-score, plateau ratio, queue depth...) so the
/// JSONL stream is machine-actionable, not just prose.
struct Alert {
  std::string family;    ///< "straggler" | "convergence_stall" |
                         ///< "queue_saturation" | "deadline_pressure"
  std::string severity;  ///< "warning" | "critical"
  std::string message;
  std::uint64_t trace_id = 0;  ///< request that raised it (0 = none)
  int rank = -1;               ///< offending rank (-1 = not rank-scoped)
  std::uint64_t iteration = 0;
  double value = 0.0;
  double threshold = 0.0;
};

/// Thread-safe alert stream: every emit() appends one JSON line to `path`
/// (flushed immediately, so `tail -f` and the ops console see alerts live)
/// and keeps an in-memory copy for tests and end-of-run summaries.  An
/// empty path keeps the stream memory-only.
class AlertSink {
 public:
  explicit AlertSink(std::string path = {});

  const std::string& path() const { return path_; }
  void emit(const Alert& alert);
  std::size_t emitted() const;
  std::vector<Alert> alerts() const;

  static std::string to_json_line(const Alert& alert);
  static std::vector<Alert> parse_jsonl(std::string_view text);

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::vector<Alert> alerts_;
};

// --- straggler --------------------------------------------------------------

struct StragglerConfig {
  /// Z-score the candidate's window wait must sit BELOW the rank mean by.
  /// Note the hard bound: a single outlier among P ranks can reach at most
  /// |z| = sqrt(P - 1) (1.0 at P = 2, 1.41 at P = 3), so this is
  /// deliberately far below the textbook 3-sigma.
  double z_threshold = 1.2;
  /// ...and its wait must also be at most this fraction of the max rank
  /// wait in the window (guards the z-score against near-uniform noise).
  double dominance = 0.25;
  /// Mean per-rank wait accumulated over the window must exceed this many
  /// seconds before any evaluation fires -- an idle or tiny solve has
  /// nothing worth blaming.
  double min_mean_seconds = 1e-4;
  /// Checkpoints per rolling window.
  std::size_t window = 8;
  /// Consecutive evaluations that must blame the SAME rank.
  int consecutive = 3;
};

/// Rolling per-rank z-score straggler detector.  publish() is called by any
/// rank thread for its own slot (relaxed atomic store, no locks, no
/// collectives); evaluate() is called by rank 0 only and owns all rolling
/// state, so the only cross-thread traffic is the atomic slots.
class StragglerDetector {
 public:
  StragglerDetector(int ranks, StragglerConfig config = {});

  int ranks() const { return static_cast<int>(cum_.size()); }
  const StragglerConfig& config() const { return config_; }

  /// Rank `r` publishes its cumulative exposed-wait seconds (allreduce wait
  /// + halo phases) since the solve started.
  void publish(int rank, double cum_wait_seconds);

  /// Rank 0 only: snapshot all slots, update the rolling window, and return
  /// an alert if a straggler is confirmed.  Fires at most once per rank per
  /// solve.
  std::optional<Alert> evaluate(std::uint64_t iteration);

  /// Rank currently under suspicion (-1 when none): feeds the
  /// pipescg_anomaly_straggler_rank gauge.
  int candidate() const { return streak_rank_; }

 private:
  struct Slot {
    alignas(64) std::atomic<double> v{0.0};
  };
  StragglerConfig config_;
  std::vector<Slot> cum_;
  // Rolling state, touched only by evaluate() (rank 0):
  std::deque<std::vector<double>> history_;
  int streak_rank_ = -1;
  int streak_ = 0;
  std::vector<bool> fired_;
};

// --- convergence stall ------------------------------------------------------

struct StallConfig {
  /// Checkpoints per plateau window.
  std::size_t window = 24;
  /// Relative improvement over the window below which progress counts as
  /// stalled: fires when rnorm_now >= rnorm_window_start * (1 - this).
  double min_improvement = 0.05;
  /// Growth beyond this factor is divergence, not a stall -- the drivers'
  /// own divergence detector owns that case, so we stay silent.
  double divergence_factor = 10.0;
};

/// Residual-plateau detector over the checkpoint stream (rank 0 feeds it).
class StallDetector {
 public:
  explicit StallDetector(StallConfig config = {});

  const StallConfig& config() const { return config_; }

  std::optional<Alert> feed(std::uint64_t iteration, double rnorm);

 private:
  StallConfig config_;
  std::deque<double> window_;
};

// --- queue pressure ---------------------------------------------------------

struct QueuePressureConfig {
  /// Queue depth at drain time that counts as saturated (rising edge).
  std::size_t depth_threshold = 32;
  /// Deadline headroom below `headroom_factor * p95 solve latency` at
  /// execution start raises deadline_pressure.
  double headroom_factor = 1.0;
};

/// Admission-side monitor, driven from the service thread (no
/// synchronization needed).
class QueuePressureMonitor {
 public:
  explicit QueuePressureMonitor(QueuePressureConfig config = {});

  const QueuePressureConfig& config() const { return config_; }

  /// Queue depth observed at the top of a drain round.  Rising-edge alert:
  /// fires when depth crosses the threshold, re-arms when it falls below.
  std::optional<Alert> on_depth(std::size_t depth);

  /// A job with a deadline is about to execute with `headroom_seconds`
  /// left, against an observed p95 solve latency.  `expired` marks a job
  /// that already missed (the kExpired path).
  std::optional<Alert> on_dispatch(double headroom_seconds,
                                   double p95_solve_seconds, bool expired,
                                   std::uint64_t trace_id);

 private:
  QueuePressureConfig config_;
  bool saturated_ = false;
};

// --- mid-solve probe --------------------------------------------------------

/// Per-rank-thread glue installed for the duration of a monitored solve
/// (the same thread-local Install idiom as Profiler/Tracer).  Each
/// checkpoint: every rank publishes its own profiler's exposed-wait total
/// to the shared StragglerDetector; rank 0 additionally runs the straggler
/// evaluation and the stall detector and emits any resulting alerts to the
/// sink.  Alert counters live in the service layer (see
/// service::Session::set_observability), reached via the emit callback
/// captured in `on_alert`.
class MidSolveProbe {
 public:
  struct Shared {
    StragglerDetector* straggler = nullptr;  ///< shared across ranks
    StallDetector* stall = nullptr;          ///< rank 0 only
    AlertSink* sink = nullptr;
    std::uint64_t trace_id = 0;
    /// Optional hook run (on rank 0's thread) after each emitted alert --
    /// the service layer bumps pipescg_anomaly_* metrics here.
    void (*on_alert)(void* arg, const Alert& alert) = nullptr;
    void* on_alert_arg = nullptr;
  };

  MidSolveProbe(Shared* shared, int rank) : shared_(shared), rank_(rank) {}

  int rank() const { return rank_; }

  /// Called from obs::telemetry_checkpoint on the owning rank thread.
  void on_checkpoint(std::uint64_t iteration, double rnorm);

  static MidSolveProbe* current() { return tls_current_; }

  class Install {
   public:
    explicit Install(MidSolveProbe* p);
    ~Install();
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    MidSolveProbe* prev_;
  };

 private:
  void emit(Alert alert);

  static thread_local MidSolveProbe* tls_current_;
  Shared* shared_;
  int rank_;
};

}  // namespace pipescg::obs::anomaly
