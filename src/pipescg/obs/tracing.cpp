#include "pipescg/obs/tracing.hpp"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/profiler.hpp"

namespace pipescg::obs::tracing {

TraceContext new_trace() {
  static std::atomic<std::uint64_t> next{1};
  TraceContext ctx;
  ctx.trace_id = next.fetch_add(1, std::memory_order_relaxed);
  return ctx;
}

// --- SpanRing ---------------------------------------------------------------

SpanRing::SpanRing(std::size_t capacity, std::uint64_t tag) : tag_(tag) {
  PIPESCG_CHECK(capacity > 0, "span ring capacity must be positive");
  ring_.resize(capacity);
}

std::uint64_t SpanRing::mint() {
  return (tag_ + 1) * (std::uint64_t{1} << 32) + ++next_seq_;
}

void SpanRing::push(TraceSpan span) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = std::move(span);
    ++size_;
    return;
  }
  // Full: overwrite the oldest retained span (newest-kept eviction).
  ring_[head_] = std::move(span);
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<TraceSpan> SpanRing::spans() const {
  std::vector<TraceSpan> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

// --- Tracer -----------------------------------------------------------------

thread_local Tracer* Tracer::tls_current_ = nullptr;

Tracer::Tracer(TraceContext ctx, SpanRing& ring, Clock::time_point base)
    : ctx_(ctx), ring_(ring), epoch_(Clock::now()) {
  ring_.set_clock_offset(
      std::chrono::duration<double>(epoch_ - base).count());
  parents_.push_back(ctx_.parent_span_id);
}

Tracer::Tracer(TraceContext ctx, SpanRing& ring)
    : ctx_(ctx), ring_(ring), epoch_(Clock::now()) {
  parents_.push_back(ctx_.parent_span_id);
}

std::uint64_t Tracer::record(
    std::string name, double start, double end,
    std::vector<std::pair<std::string, double>> args) {
  TraceSpan span;
  span.name = std::move(name);
  span.span_id = ring_.mint();
  span.parent_span_id = current_parent();
  span.start = start;
  span.end = end;
  span.args = std::move(args);
  const std::uint64_t id = span.span_id;
  ring_.push(std::move(span));
  return id;
}

std::uint64_t Tracer::mark(std::string name,
                           std::vector<std::pair<std::string, double>> args) {
  const double t = now();
  return record(std::move(name), t, t, std::move(args));
}

void Tracer::checkpoint(std::uint64_t iteration, double rnorm) {
  const double t = now();
  record("outer_iteration", last_checkpoint_, t,
         {{"iteration", static_cast<double>(iteration)}, {"rnorm", rnorm}});
  last_checkpoint_ = t;
}

Tracer::Install::Install(Tracer* t) : prev_(tls_current_) {
  if (t != nullptr) tls_current_ = t;
}

Tracer::Install::~Install() { tls_current_ = prev_; }

// --- TraceScope -------------------------------------------------------------

TraceScope::TraceScope(Tracer* t, std::string name) : t_(t) {
  if (t_ == nullptr) return;
  name_ = std::move(name);
  span_id_ = t_->ring_.mint();
  start_ = t_->now();
  t_->parents_.push_back(span_id_);
  // Checkpoint spans measure time since the previous checkpoint; the first
  // one inside a fresh scope must not reach back before the scope opened
  // (it would escape its parent in the merged trace).
  t_->last_checkpoint_ = start_;
}

TraceScope::~TraceScope() {
  if (t_ == nullptr) return;
  t_->parents_.pop_back();
  TraceSpan span;
  span.name = std::move(name_);
  span.span_id = span_id_;
  span.parent_span_id = t_->current_parent();
  span.start = start_;
  span.end = t_->now();
  t_->ring_.push(std::move(span));
}

// --- RequestTrace -----------------------------------------------------------

RequestTrace::RequestTrace(TraceContext ctx, int ranks, std::size_t capacity,
                           Clock::time_point base)
    : ctx_(ctx), base_(base) {
  PIPESCG_CHECK(ranks >= 1, "RequestTrace needs at least one rank");
  rings_.reserve(static_cast<std::size_t>(ranks) + 1);
  for (int r = 0; r <= ranks; ++r)
    rings_.emplace_back(capacity, static_cast<std::uint64_t>(r));
}

void RequestTrace::add_profile(const SolveProfile& profile,
                               std::span<const std::uint64_t> rank_roots) {
  const int nr = std::min(ranks(), profile.ranks());
  PIPESCG_CHECK(rank_roots.size() >= static_cast<std::size_t>(nr),
                "add_profile needs a root span id per rank");
  for (int r = 0; r < nr; ++r) {
    const Profiler& prof = profile.rank(r);
    SpanRing& ring = rank_ring(r);
    // Profiler span times are relative to the profile epoch; re-express them
    // relative to this ring's clock so the ring's offset aligns them.
    const double prof_offset =
        std::chrono::duration<double>(prof.epoch() - base_).count() -
        ring.clock_offset();
    for (const Span& s : prof.spans()) {
      TraceSpan span;
      span.name = to_string(s.kind);
      span.span_id = ring.mint();
      span.parent_span_id = rank_roots[static_cast<std::size_t>(r)];
      span.start = s.start + prof_offset;
      span.end = s.end + prof_offset;
      ring.push(std::move(span));
    }
  }
}

// --- merge ------------------------------------------------------------------

json::Value merge_trace(const RequestTrace& trace) {
  struct Event {
    int tid;
    double start;  // aligned seconds
    double end;
    const TraceSpan* span;
  };
  std::vector<std::vector<TraceSpan>> ring_spans;
  std::vector<Event> events;
  const int tracks = trace.ranks() + 1;
  ring_spans.reserve(static_cast<std::size_t>(tracks));
  for (int t = 0; t < tracks; ++t) {
    const SpanRing& ring = t < trace.ranks() ? trace.rank_ring(t)
                                             : trace.service_ring();
    ring_spans.push_back(ring.spans());
    for (const TraceSpan& s : ring_spans.back()) {
      events.push_back(Event{t, s.start + ring.clock_offset(),
                             s.end + ring.clock_offset(), &s});
    }
  }
  // Deterministic order independent of rank interleaving: span data alone
  // decides the output (span ids break start-time ties per track).
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.start != b.start) return a.start < b.start;
                     return a.span->span_id < b.span->span_id;
                   });

  json::Value doc = json::Value::object();
  doc.set("trace_id", static_cast<double>(trace.context().trace_id));
  doc.set("displayTimeUnit", "ms");
  json::Value list = json::Value::array();
  {
    json::Value meta = json::Value::object();
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("name", "process_name");
    json::Value args = json::Value::object();
    args.set("name", "request " +
                         std::to_string(trace.context().trace_id));
    meta.set("args", std::move(args));
    list.push_back(std::move(meta));
  }
  for (int t = 0; t < tracks; ++t) {
    json::Value meta = json::Value::object();
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", t);
    meta.set("name", "thread_name");
    json::Value args = json::Value::object();
    args.set("name", t < trace.ranks() ? "rank " + std::to_string(t)
                                       : std::string("service"));
    meta.set("args", std::move(args));
    list.push_back(std::move(meta));
  }
  for (const Event& e : events) {
    json::Value ev = json::Value::object();
    ev.set("ph", "X");
    ev.set("pid", 0);
    ev.set("tid", e.tid);
    ev.set("name", e.span->name);
    ev.set("cat", "request");
    ev.set("ts", e.start * 1e6);
    ev.set("dur", (e.end - e.start) * 1e6);
    json::Value args = json::Value::object();
    args.set("trace_id", static_cast<double>(trace.context().trace_id));
    args.set("span_id", static_cast<double>(e.span->span_id));
    args.set("parent_span_id",
             static_cast<double>(e.span->parent_span_id));
    for (const auto& [key, value] : e.span->args) args.set(key, value);
    ev.set("args", std::move(args));
    list.push_back(std::move(ev));
  }
  doc.set("traceEvents", std::move(list));
  return doc;
}

void write_merged_trace(const RequestTrace& trace, const std::string& path) {
  json::write_file(path, merge_trace(trace));
}

// --- TraceSink --------------------------------------------------------------

TraceSink::TraceSink(std::string dir) : dir_(std::move(dir)) {
  PIPESCG_CHECK(!dir_.empty(), "trace sink directory must be non-empty");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  PIPESCG_CHECK(!ec, "cannot create trace directory " + dir_);
}

std::string TraceSink::path_for(std::uint64_t trace_id) const {
  return dir_ + "/trace_" + std::to_string(trace_id) + ".json";
}

std::string TraceSink::write(const RequestTrace& trace) {
  const std::string path = path_for(trace.context().trace_id);
  const json::Value doc = merge_trace(trace);
  std::lock_guard<std::mutex> lock(mu_);
  json::write_file(path, doc);
  ++written_;
  return path;
}

std::size_t TraceSink::written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return written_;
}

}  // namespace pipescg::obs::tracing
