// Overlap analyzer: turn measured per-rank spans into answers.
//
// The profiler (obs/profiler.hpp) records what each rank did; this layer
// reconstructs the cross-rank dependency structure and computes the three
// quantities the pipelined s-step CG literature uses to judge a pipelining
// *result* rather than a pipelining *claim*:
//
//  * Overlap efficiency -- for every allreduce, FIFO-pair its post span with
//    its wait span on each rank.  The window from post-end to wait-start is
//    HIDDEN latency (the rank was doing SPMV/PC/dot compute while the
//    collective was in flight); wait-start to wait-end is EXPOSED latency
//    (the rank spun).  hidden + exposed == total by construction, and
//    efficiency = hidden / total.  In the s-step drivers each non-blocking
//    pair is one s-step block (one MPI_Iallreduce per s iterations), so the
//    per-pair records double as per-block records.
//
//  * Per-rank imbalance -- min/median/max over ranks of efficiency and
//    exposed seconds; a wide spread means one slow rank is serializing the
//    collective for everyone.
//
//  * Critical path -- a backward walk from the globally last span end,
//    jumping ranks at collective joins: an allreduce completes when the
//    LAST rank publishes its contribution (ordering contract: all ranks
//    post every collective in the same order, so the k-th post on each rank
//    is the same operation), and a halo expose/close barrier releases when
//    the last rank arrives.  The walk attributes every second of the
//    makespan to a span kind (gaps between instrumented spans count as
//    "untracked"), which names the kind actually gating the solve.
//
// The drift report closes the loop with sim/: replay the recorded serial
// EventTrace through sim::Timeline at the same rank count and compare each
// modeled ScheduledSpan::Kind against its measured counterpart.  Sign
// convention: delta = measured - modeled, so positive delta means the real
// run was SLOWER than the model predicted.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "pipescg/obs/profiler.hpp"
#include "pipescg/sim/timeline.hpp"

namespace pipescg::obs {

/// One post->wait pairing of an allreduce on one rank.  For the pipelined
/// s-step drivers a non-blocking pair is one s-step block.
struct BlockOverlap {
  std::size_t index = 0;  // allreduce index on this rank, in post order
  bool nonblocking = false;  // wait span was kAllreduceWaitNonblocking
  double post_end = 0.0;
  double wait_start = 0.0;
  double wait_end = 0.0;
  double hidden() const { return wait_start - post_end; }
  double exposed() const { return wait_end - wait_start; }
  double total() const { return wait_end - post_end; }
};

struct RankOverlap {
  int rank = 0;
  std::vector<BlockOverlap> blocks;
  double hidden_seconds = 0.0;
  double exposed_seconds = 0.0;
  double total_wait_seconds = 0.0;  // == hidden + exposed
  double efficiency = 0.0;          // hidden / total; 0 when no pairs
};

struct MinMedMax {
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
};

/// Seconds of the critical path spent in one span kind.
struct KindAttribution {
  std::string kind;  // obs::to_string(SpanKind), or "untracked"
  double seconds = 0.0;
  std::size_t spans = 0;
};

struct CriticalPath {
  double makespan = 0.0;  // latest span end over all ranks
  int end_rank = 0;       // rank owning that last span
  std::size_t rank_switches = 0;  // cross-rank jumps taken by the walk
  double untracked_seconds = 0.0;
  std::vector<KindAttribution> attribution;  // sorted by seconds, descending
};

struct OverlapReport {
  int ranks = 0;
  std::vector<RankOverlap> per_rank;
  std::size_t blocks = 0;              // pairs per rank (uniform)
  std::size_t nonblocking_blocks = 0;  // of which overlapped-style waits
  // Sums over ranks.
  double hidden_seconds = 0.0;
  double exposed_seconds = 0.0;
  double total_wait_seconds = 0.0;
  double efficiency = 0.0;  // sum(hidden) / sum(total)
  // Imbalance across ranks.
  MinMedMax efficiency_over_ranks;
  MinMedMax exposed_over_ranks;
  CriticalPath critical_path;
};

/// Reconstruct the span DAG from a measured profile and analyze it.
OverlapReport analyze_overlap(const SolveProfile& profile);

/// One-screen human summary (totals, imbalance, critical-path top kinds);
/// used by runtime_tour's --analyze console output.
std::string overlap_summary(const OverlapReport& report);

/// Modeled-vs-measured comparison for one ScheduledSpan kind.
struct DriftEntry {
  std::string kind;  // sim::to_string(ScheduledSpan::Kind)
  double modeled_seconds = 0.0;
  double measured_seconds = 0.0;
  bool has_measured = false;  // false: no faithful measured counterpart
  double delta = 0.0;         // measured - modeled (positive: run slower)
  double ratio = 0.0;         // measured / modeled (0 when modeled == 0)
  bool flagged = false;       // relative drift above threshold
  std::string note;           // coverage caveats, empty when exact
};

struct DriftReport {
  double threshold = 0.0;  // relative-drift flag level
  double modeled_makespan = 0.0;
  double measured_makespan = 0.0;
  std::vector<DriftEntry> kinds;  // one entry per ScheduledSpan::Kind
};

/// Compare a modeled schedule (sim::Timeline::evaluate with schedule
/// capture, at the measured rank count) against the measured profile.
/// Measured seconds are the median over ranks of each kind's mapped span
/// totals; `overlap` supplies the post->completion allreduce windows that
/// the raw spans cannot express.  Kinds with |measured - modeled| >
/// relative_threshold * max(|modeled|, |measured|) are flagged.
DriftReport drift_report(std::span<const sim::ScheduledSpan> schedule,
                         const SolveProfile& profile,
                         const OverlapReport& overlap,
                         double relative_threshold = 0.5);

}  // namespace pipescg::obs
