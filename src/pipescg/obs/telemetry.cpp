#include "pipescg/obs/telemetry.hpp"

#include <fstream>
#include <utility>

#include "pipescg/base/error.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/metrics.hpp"

namespace pipescg::obs {

void telemetry_checkpoint(std::uint64_t iteration, double rnorm,
                          std::string_view norm_flavor, int s,
                          std::uint64_t recoveries,
                          std::span<const double> alpha, double beta_fro,
                          double true_rnorm, double gap) {
  if (metrics::LiveSolve* live = metrics::LiveSolve::current())
    live->checkpoint(iteration, rnorm, s, recoveries, gap);
  ConvergenceTelemetry* sink = ConvergenceTelemetry::current();
  if (sink == nullptr) return;
  TelemetryRecord rec;
  rec.iteration = iteration;
  rec.rnorm = rnorm;
  rec.norm_flavor = std::string(norm_flavor);
  rec.s = s;
  rec.recoveries = recoveries;
  rec.alpha.assign(alpha.begin(), alpha.end());
  rec.beta_fro = beta_fro;
  rec.true_rnorm = true_rnorm;
  rec.gap = gap;
  sink->record(std::move(rec));
}

thread_local ConvergenceTelemetry* ConvergenceTelemetry::tls_current_ =
    nullptr;

ConvergenceTelemetry::ConvergenceTelemetry(std::string method,
                                           std::size_t capacity)
    : method_(std::move(method)), capacity_(capacity) {
  PIPESCG_CHECK(capacity_ > 0, "telemetry ring capacity must be positive");
}

void ConvergenceTelemetry::record(TelemetryRecord rec) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot and advance the ring head.
  ring_[head_] = std::move(rec);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TelemetryRecord> ConvergenceTelemetry::records() const {
  std::vector<TelemetryRecord> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::string ConvergenceTelemetry::to_jsonl() const {
  std::string out;
  for (const TelemetryRecord& rec : records()) {
    json::Value v = json::Value::object();
    if (!method_.empty()) v.set("method", method_);
    v.set("iter", rec.iteration);
    v.set("rnorm", rec.rnorm);
    v.set("norm", rec.norm_flavor);
    v.set("s", rec.s);
    v.set("recoveries", rec.recoveries);
    json::Value alpha = json::Value::array();
    for (double a : rec.alpha) alpha.push_back(a);
    v.set("alpha", std::move(alpha));
    v.set("beta_fro", rec.beta_fro);
    if (rec.gap >= 0.0) {
      v.set("true_rnorm", rec.true_rnorm);
      v.set("gap", rec.gap);
    }
    out += v.dump(-1);
    out += '\n';
  }
  return out;
}

void ConvergenceTelemetry::write_jsonl(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  PIPESCG_CHECK(os.good(), "cannot open telemetry output file");
  os << to_jsonl();
  PIPESCG_CHECK(os.good(), "telemetry write failed");
}

std::vector<TelemetryRecord> ConvergenceTelemetry::parse_jsonl(
    std::string_view text) {
  std::vector<TelemetryRecord> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    const json::Value v = json::parse(line);
    TelemetryRecord rec;
    rec.iteration = static_cast<std::uint64_t>(v.at("iter").as_number());
    rec.rnorm = v.at("rnorm").as_number();
    rec.norm_flavor = v.at("norm").as_string();
    rec.s = static_cast<int>(v.at("s").as_number());
    rec.recoveries =
        static_cast<std::uint64_t>(v.at("recoveries").as_number());
    const json::Value& alpha = v.at("alpha");
    for (std::size_t i = 0; i < alpha.size(); ++i)
      rec.alpha.push_back(alpha.at(i).as_number());
    rec.beta_fro = v.at("beta_fro").as_number();
    if (v.contains("gap")) {
      rec.true_rnorm = v.at("true_rnorm").as_number();
      rec.gap = v.at("gap").as_number();
    }
    out.push_back(std::move(rec));
  }
  return out;
}

ConvergenceTelemetry::Install::Install(ConvergenceTelemetry* t)
    : prev_(tls_current_) {
  if (t != nullptr) tls_current_ = t;
}

ConvergenceTelemetry::Install::~Install() { tls_current_ = prev_; }

}  // namespace pipescg::obs
