// Structured JSON solve reports.
//
// One report combines everything a post-hoc analysis needs about a solve:
// the SolveStats (convergence flags, iterations, spectrum estimates), the
// full residual history, and -- when the run was profiled -- per-rank
// measured kernel totals with min/median/max-over-ranks aggregates,
// including the non-blocking allreduce wait-spin time that quantifies
// overlap quality.
#pragma once

#include <string>

#include "pipescg/krylov/solver.hpp"
#include "pipescg/obs/analysis.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/sim/trace.hpp"

namespace pipescg::obs {

namespace metrics {
class Registry;
}

/// SolveStats (+ history) as a JSON object.
json::Value stats_to_json(const krylov::SolveStats& stats);

/// Counters as a JSON object (shared shape between the measured profiler
/// counters and sim::EventTrace::Counters, so reports can juxtapose them).
json::Value counters_to_json(const Profiler::Counters& counters);
json::Value counters_to_json(const sim::EventTrace::Counters& counters);

/// Per-rank totals and cross-rank aggregates of a measured profile,
/// including per-kind latency histograms merged across ranks.  Every span
/// kind appears in per-rank spans, aggregates, and histograms even at zero
/// count, so reports from different runs diff key-for-key.
json::Value profile_to_json(const SolveProfile& profile);

/// One histogram as {"count", "p50/p95/p99_seconds", ...}.
json::Value histogram_to_json(const LatencyHistogram& h);

/// Overlap-analyzer output: totals, per-rank summaries (block details stay
/// in the C++ structs), imbalance, and the critical-path attribution.
json::Value overlap_to_json(const OverlapReport& report);

/// Drift report: one entry per modeled ScheduledSpan kind.  Sign
/// convention: delta = measured - modeled (positive: run slower than model).
json::Value drift_to_json(const DriftReport& report);

/// Full solve report:
///   {"method", "stats": {...}, "profile": {...}?, "overlap": {...}?,
///    "drift": {...}?, "metrics": {...}?}.
/// `profile`, `overlap`, `drift`, and `registry` may be nullptr (serial /
/// unprofiled / unanalyzed / unmetered runs).  When a metrics registry is
/// passed, its key-stable JSON snapshot (metrics::Registry::to_json) is
/// folded in, so one report carries the same surface a scraper sees.
json::Value solve_report(const krylov::SolveStats& stats,
                         const SolveProfile* profile,
                         const OverlapReport* overlap = nullptr,
                         const DriftReport* drift = nullptr,
                         const metrics::Registry* registry = nullptr);

}  // namespace pipescg::obs
