// Structured JSON solve reports.
//
// One report combines everything a post-hoc analysis needs about a solve:
// the SolveStats (convergence flags, iterations, spectrum estimates), the
// full residual history, and -- when the run was profiled -- per-rank
// measured kernel totals with min/median/max-over-ranks aggregates,
// including the non-blocking allreduce wait-spin time that quantifies
// overlap quality.
#pragma once

#include <string>

#include "pipescg/krylov/solver.hpp"
#include "pipescg/obs/json.hpp"
#include "pipescg/obs/profiler.hpp"
#include "pipescg/sim/trace.hpp"

namespace pipescg::obs {

/// SolveStats (+ history) as a JSON object.
json::Value stats_to_json(const krylov::SolveStats& stats);

/// Counters as a JSON object (shared shape between the measured profiler
/// counters and sim::EventTrace::Counters, so reports can juxtapose them).
json::Value counters_to_json(const Profiler::Counters& counters);
json::Value counters_to_json(const sim::EventTrace::Counters& counters);

/// Per-rank totals and cross-rank aggregates of a measured profile.
json::Value profile_to_json(const SolveProfile& profile);

/// Full solve report: {"method", "stats": {...}, "profile": {...}?}.
/// `profile` may be nullptr (serial / unprofiled runs).
json::Value solve_report(const krylov::SolveStats& stats,
                         const SolveProfile* profile);

}  // namespace pipescg::obs
