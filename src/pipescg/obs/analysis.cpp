#include "pipescg/obs/analysis.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <sstream>

namespace pipescg::obs {

namespace {

constexpr double kEps = 1e-12;

bool is_allreduce_wait(SpanKind k) {
  return k == SpanKind::kAllreduceWaitBlocking ||
         k == SpanKind::kAllreduceWaitNonblocking;
}

// Per-rank view of a profile: spans sorted by start (per-rank spans are
// sequential and non-overlapping, so this is also end order), plus the
// per-kind orderings used to match collectives across ranks.
struct RankSpans {
  std::vector<Span> sorted;
  std::vector<double> ends;  // sorted[i].end, for binary search
  std::vector<std::size_t> posts;    // indices into sorted, in time order
  std::vector<std::size_t> waits;    // allreduce waits (both kinds)
  std::vector<std::size_t> exposes;  // kHaloExpose
  std::vector<std::size_t> closes;   // kHaloClose
};

std::vector<RankSpans> index_profile(const SolveProfile& profile) {
  std::vector<RankSpans> out(static_cast<std::size_t>(profile.ranks()));
  for (int r = 0; r < profile.ranks(); ++r) {
    RankSpans& rs = out[static_cast<std::size_t>(r)];
    rs.sorted = profile.rank(r).spans();
    std::stable_sort(rs.sorted.begin(), rs.sorted.end(),
                     [](const Span& a, const Span& b) {
                       return a.start < b.start;
                     });
    rs.ends.reserve(rs.sorted.size());
    for (std::size_t i = 0; i < rs.sorted.size(); ++i) {
      const Span& s = rs.sorted[i];
      rs.ends.push_back(s.end);
      if (s.kind == SpanKind::kAllreducePost) rs.posts.push_back(i);
      if (is_allreduce_wait(s.kind)) rs.waits.push_back(i);
      if (s.kind == SpanKind::kHaloExpose) rs.exposes.push_back(i);
      if (s.kind == SpanKind::kHaloClose) rs.closes.push_back(i);
    }
  }
  return out;
}

// Ordinal of sorted-index `idx` within the (ascending) index list `order`.
std::size_t ordinal_of(const std::vector<std::size_t>& order,
                       std::size_t idx) {
  const auto it = std::lower_bound(order.begin(), order.end(), idx);
  return static_cast<std::size_t>(it - order.begin());
}

MinMedMax min_med_max(std::vector<double> v) {
  MinMedMax m;
  if (v.empty()) return m;
  std::sort(v.begin(), v.end());
  m.min = v.front();
  m.max = v.back();
  m.median = v[v.size() / 2];
  return m;
}

// Backward walk from the globally last span end.  At collective joins the
// walk jumps to the rank that actually determined the completion time: for
// the k-th allreduce, the last rank to finish its k-th post; for the k-th
// halo expose/close barrier, the last rank to arrive (latest span start).
// Index-based matching is valid by the SPMD ordering contract -- every rank
// posts every collective and opens/closes every epoch in the same order.
CriticalPath walk_critical_path(const std::vector<RankSpans>& ranks) {
  CriticalPath cp;
  const std::size_t nranks = ranks.size();
  std::size_t total_spans = 0;
  for (std::size_t r = 0; r < nranks; ++r) {
    total_spans += ranks[r].sorted.size();
    if (!ranks[r].sorted.empty() && ranks[r].ends.back() > cp.makespan) {
      cp.makespan = ranks[r].ends.back();
      cp.end_rank = static_cast<int>(r);
    }
  }
  if (total_spans == 0) return cp;

  // Cross-rank matching needs the k-th collective to exist on every rank.
  std::size_t n_posts = ranks[0].posts.size();
  std::size_t n_exposes = ranks[0].exposes.size();
  std::size_t n_closes = ranks[0].closes.size();
  for (const RankSpans& rs : ranks) {
    n_posts = std::min(n_posts, rs.posts.size());
    n_exposes = std::min(n_exposes, rs.exposes.size());
    n_closes = std::min(n_closes, rs.closes.size());
  }

  std::array<double, kSpanKindCount> seconds{};
  std::array<std::size_t, kSpanKindCount> counts{};
  double t = cp.makespan;
  std::size_t r = static_cast<std::size_t>(cp.end_rank);
  // Each step either consumes one span or jumps backward in time; the guard
  // bounds pathological traces (overlapping hand-built spans).
  std::size_t guard = 4 * total_spans + 16;

  while (t > kEps && guard-- > 0) {
    const RankSpans& rs = ranks[r];
    const auto it =
        std::upper_bound(rs.ends.begin(), rs.ends.end(), t + kEps);
    if (it == rs.ends.begin()) break;  // nothing earlier on this rank
    const std::size_t idx = static_cast<std::size_t>(it - rs.ends.begin()) - 1;
    const Span& s = rs.sorted[idx];
    if (s.end < t - kEps) {
      // Gap between instrumented spans: rank-local vector work, scalar
      // work, or scheduler noise.  Attributed as untracked.
      cp.untracked_seconds += t - s.end;
      t = s.end;
      continue;
    }
    const std::size_t k = static_cast<std::size_t>(s.kind);
    if (is_allreduce_wait(s.kind)) {
      const std::size_t ord = ordinal_of(rs.waits, idx);
      if (ord < n_posts) {
        // Completion was gated by the last contribution to arrive.
        std::size_t q = r;
        double ready = 0.0;
        for (std::size_t p = 0; p < nranks; ++p) {
          const double pe = ranks[p].sorted[ranks[p].posts[ord]].end;
          if (pe > ready) {
            ready = pe;
            q = p;
          }
        }
        ready = std::min(ready, t);
        if (q != r && ready > s.start + kEps) {
          seconds[k] += t - ready;
          ++counts[k];
          t = ready;
          r = q;
          ++cp.rank_switches;
          continue;
        }
      }
    } else if (s.kind == SpanKind::kHaloExpose ||
               s.kind == SpanKind::kHaloClose) {
      const bool expose = s.kind == SpanKind::kHaloExpose;
      const std::size_t ord =
          ordinal_of(expose ? rs.exposes : rs.closes, idx);
      if (ord < (expose ? n_exposes : n_closes)) {
        // Barrier epochs release when the last rank arrives.
        std::size_t q = r;
        double arrive = 0.0;
        for (std::size_t p = 0; p < nranks; ++p) {
          const auto& order = expose ? ranks[p].exposes : ranks[p].closes;
          const double st = ranks[p].sorted[order[ord]].start;
          if (st > arrive) {
            arrive = st;
            q = p;
          }
        }
        arrive = std::min(arrive, t);
        if (q != r && arrive > s.start + kEps) {
          seconds[k] += t - arrive;
          ++counts[k];
          t = arrive;
          r = q;
          ++cp.rank_switches;
          continue;
        }
      }
    }
    seconds[k] += t - s.start;
    ++counts[k];
    t = s.start;
  }
  if (t > kEps) cp.untracked_seconds += t;

  for (std::size_t k = 0; k < kSpanKindCount; ++k) {
    if (counts[k] == 0) continue;
    cp.attribution.push_back(KindAttribution{
        to_string(static_cast<SpanKind>(k)), seconds[k], counts[k]});
  }
  if (cp.untracked_seconds > 0.0)
    cp.attribution.push_back(
        KindAttribution{"untracked", cp.untracked_seconds, 0});
  std::stable_sort(cp.attribution.begin(), cp.attribution.end(),
                   [](const KindAttribution& a, const KindAttribution& b) {
                     return a.seconds > b.seconds;
                   });
  return cp;
}

}  // namespace

OverlapReport analyze_overlap(const SolveProfile& profile) {
  OverlapReport report;
  report.ranks = profile.ranks();
  const std::vector<RankSpans> ranks = index_profile(profile);

  std::vector<double> efficiencies;
  std::vector<double> exposed;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    const RankSpans& rs = ranks[r];
    RankOverlap ro;
    ro.rank = static_cast<int>(r);
    // FIFO pairing: the i-th wait completes the i-th post.  Valid because
    // the runtime has bounded in-flight slots consumed in order and every
    // driver waits in post order (a blocking allreduce is simply a pair
    // whose wait starts at post end, i.e. hidden ~ 0).
    const std::size_t pairs = std::min(rs.posts.size(), rs.waits.size());
    for (std::size_t i = 0; i < pairs; ++i) {
      const Span& post = rs.sorted[rs.posts[i]];
      const Span& wait = rs.sorted[rs.waits[i]];
      BlockOverlap b;
      b.index = i;
      b.nonblocking = wait.kind == SpanKind::kAllreduceWaitNonblocking;
      b.post_end = post.end;
      b.wait_start = wait.start;
      b.wait_end = wait.end;
      ro.hidden_seconds += b.hidden();
      ro.exposed_seconds += b.exposed();
      ro.total_wait_seconds += b.total();
      ro.blocks.push_back(b);
    }
    ro.efficiency = ro.total_wait_seconds > 0.0
                        ? ro.hidden_seconds / ro.total_wait_seconds
                        : 0.0;
    report.hidden_seconds += ro.hidden_seconds;
    report.exposed_seconds += ro.exposed_seconds;
    report.total_wait_seconds += ro.total_wait_seconds;
    report.blocks = std::max(report.blocks, ro.blocks.size());
    std::size_t nb = 0;
    for (const BlockOverlap& b : ro.blocks) nb += b.nonblocking ? 1 : 0;
    report.nonblocking_blocks = std::max(report.nonblocking_blocks, nb);
    efficiencies.push_back(ro.efficiency);
    exposed.push_back(ro.exposed_seconds);
    report.per_rank.push_back(std::move(ro));
  }
  report.efficiency = report.total_wait_seconds > 0.0
                          ? report.hidden_seconds / report.total_wait_seconds
                          : 0.0;
  report.efficiency_over_ranks = min_med_max(std::move(efficiencies));
  report.exposed_over_ranks = min_med_max(std::move(exposed));
  report.critical_path = walk_critical_path(ranks);
  return report;
}

std::string overlap_summary(const OverlapReport& report) {
  std::ostringstream os;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  overlap (%d ranks, %zu allreduce pairs/rank, %zu "
                "non-blocking):\n",
                report.ranks, report.blocks, report.nonblocking_blocks);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "    hidden %.3e s  exposed %.3e s  total %.3e s  ->  "
                "efficiency %5.1f%%\n",
                report.hidden_seconds, report.exposed_seconds,
                report.total_wait_seconds, 100.0 * report.efficiency);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "    efficiency over ranks   min %5.1f%%  median %5.1f%%  "
                "max %5.1f%%\n",
                100.0 * report.efficiency_over_ranks.min,
                100.0 * report.efficiency_over_ranks.median,
                100.0 * report.efficiency_over_ranks.max);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                "    exposed wait over ranks min %.3e  median %.3e  max "
                "%.3e s\n",
                report.exposed_over_ranks.min,
                report.exposed_over_ranks.median,
                report.exposed_over_ranks.max);
  os << buf;
  const CriticalPath& cp = report.critical_path;
  std::snprintf(buf, sizeof(buf),
                "    critical path %.3e s (ends on rank %d, %zu rank "
                "switches):\n",
                cp.makespan, cp.end_rank, cp.rank_switches);
  os << buf;
  const std::size_t top = std::min<std::size_t>(3, cp.attribution.size());
  for (std::size_t i = 0; i < top; ++i) {
    const KindAttribution& a = cp.attribution[i];
    std::snprintf(buf, sizeof(buf), "      %zu. %-28s %.3e s (%5.1f%%)\n",
                  i + 1, a.kind.c_str(), a.seconds,
                  cp.makespan > 0.0 ? 100.0 * a.seconds / cp.makespan : 0.0);
    os << buf;
  }
  return os.str();
}

DriftReport drift_report(std::span<const sim::ScheduledSpan> schedule,
                         const SolveProfile& profile,
                         const OverlapReport& overlap,
                         double relative_threshold) {
  using SimKind = sim::ScheduledSpan::Kind;
  DriftReport report;
  report.threshold = relative_threshold;
  report.measured_makespan = overlap.critical_path.makespan;

  // Modeled seconds per kind from the captured schedule.
  constexpr SimKind kAllSimKinds[] = {
      SimKind::kCompute,      SimKind::kSpmv,      SimKind::kPcApply,
      SimKind::kPostOverhead, SimKind::kAllreduce, SimKind::kAllreduceWait};
  std::array<double, std::size(kAllSimKinds)> modeled{};
  for (const sim::ScheduledSpan& s : schedule) {
    modeled[static_cast<std::size_t>(s.kind)] += s.end - s.start;
    report.modeled_makespan = std::max(report.modeled_makespan, s.end);
  }

  // Measured counterpart per rank, then the median over ranks (the modeled
  // clock prices one representative rank).
  const int ranks = profile.ranks();
  auto median_of = [&](auto&& per_rank_seconds) {
    std::vector<double> v;
    v.reserve(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) v.push_back(per_rank_seconds(r));
    return min_med_max(std::move(v)).median;
  };
  auto kind_seconds = [&](int r, SpanKind k) {
    return profile.rank(r).total(k).seconds;
  };

  for (SimKind sk : kAllSimKinds) {
    DriftEntry e;
    e.kind = sim::to_string(sk);
    e.modeled_seconds = modeled[static_cast<std::size_t>(sk)];
    e.has_measured = true;
    switch (sk) {
      case SimKind::kCompute:
        // Only the dot partials of the modeled vector work are
        // span-instrumented; AXPY/VMA updates run untimed between spans.
        e.measured_seconds = median_of(
            [&](int r) { return kind_seconds(r, SpanKind::kDotLocal); });
        e.has_measured = false;
        e.note = "measured covers dot partials only; other vector work is "
                 "untimed (shows up as critical-path untracked time)";
        break;
      case SimKind::kSpmv:
        // The modeled SPMV prices compute + halo; measured = local CSR
        // compute plus the three halo epoch phases.
        e.measured_seconds = median_of([&](int r) {
          return kind_seconds(r, SpanKind::kSpmvLocal) +
                 kind_seconds(r, SpanKind::kHaloExpose) +
                 kind_seconds(r, SpanKind::kHaloPeerRead) +
                 kind_seconds(r, SpanKind::kHaloClose);
        });
        break;
      case SimKind::kPcApply:
        e.measured_seconds = median_of(
            [&](int r) { return kind_seconds(r, SpanKind::kPcApply); });
        break;
      case SimKind::kPostOverhead:
        e.measured_seconds = median_of([&](int r) {
          return kind_seconds(r, SpanKind::kAllreducePost);
        });
        break;
      case SimKind::kAllreduce:
        // In-flight window: post end to wait end, from the overlap pairing.
        e.measured_seconds = median_of([&](int r) {
          return overlap.per_rank[static_cast<std::size_t>(r)]
              .total_wait_seconds;
        });
        e.note = "measured as the post-end..wait-end window per allreduce";
        break;
      case SimKind::kAllreduceWait:
        e.measured_seconds = median_of([&](int r) {
          return kind_seconds(r, SpanKind::kAllreduceWaitBlocking) +
                 kind_seconds(r, SpanKind::kAllreduceWaitNonblocking);
        });
        break;
    }
    e.delta = e.measured_seconds - e.modeled_seconds;
    e.ratio = e.modeled_seconds > 0.0
                  ? e.measured_seconds / e.modeled_seconds
                  : 0.0;
    const double scale =
        std::max(std::abs(e.modeled_seconds), std::abs(e.measured_seconds));
    e.flagged = e.has_measured && scale > 0.0 &&
                std::abs(e.delta) > relative_threshold * scale;
    report.kinds.push_back(std::move(e));
  }
  return report;
}

}  // namespace pipescg::obs
